package als

import (
	"context"
	"errors"
	"fmt"
	"iter"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/baselines"
	"repro/internal/cell"
	"repro/internal/core"
	"repro/internal/netlist"
	"repro/internal/sizing"
	"repro/internal/sta"
	"repro/internal/trace"
)

// EventKind tags one element of a session's Run stream.
type EventKind uint8

const (
	// EventProgress reports one completed optimizer iteration (DCGWO) or
	// round (baselines); a run emits exactly one per iteration.
	EventProgress EventKind = iota + 1
	// EventImproved reports a new best feasible solution the moment the
	// optimizer finds it. The solution is pre-post-optimization: its
	// RatioCPD and Area are upper bounds on the final values.
	EventImproved
	// EventDone is the final event of a successful run, carrying the
	// FlowResult and the trade-off Front. It is always the last event.
	EventDone
)

// String names the event kind ("progress", "improved", "done").
func (k EventKind) String() string {
	switch k {
	case EventProgress:
		return "progress"
	case EventImproved:
		return "improved"
	case EventDone:
		return "done"
	}
	return fmt.Sprintf("EventKind(%d)", uint8(k))
}

// Event is one element of Session.Run's stream. Exactly one payload
// field is populated, selected by Kind.
type Event struct {
	Kind EventKind
	// Progress is set for EventProgress.
	Progress *FlowProgress
	// Solution is set for EventImproved.
	Solution *Solution
	// Result and Front are set for EventDone.
	Result *FlowResult
	Front  Front
	// Stats is set for EventDone: the run's evaluation-cache counters
	// (a copy of Result.Cache, surfaced separately so stream consumers
	// need not reach into the FlowResult).
	Stats *EvalCacheStats
}

// Session is one configured, single-shot flow execution — the v2 entry
// point of the package. Where the legacy Flow call collapses a run to a
// single FlowResult, a session streams the run (per-iteration progress,
// every improved solution as it is found) and ends with the optimizer's
// whole delay/area trade-off front:
//
//	circuit, err := als.BenchmarkByName("Adder16")
//	sess, err := als.NewSession(circuit, als.NewLibrary(),
//		als.WithMetric(als.MetricNMED), als.WithErrorBudget(0.0244))
//	for ev, err := range sess.Run(ctx) {
//		...
//	}
//
// A session runs once: Run's stream, then Result/Front/Err, describe that
// one execution. Results are bit-identical to the legacy Flow call at the
// same effective configuration and seed — Flow is now a thin shim over
// the same engine.
type Session struct {
	circuit *netlist.Circuit
	lib     *cell.Library
	cfg     FlowConfig // resolved; explicit zeros already honored
	topK    int

	started atomic.Bool
	mu      sync.Mutex
	done    bool
	result  *FlowResult
	front   Front
	err     error
}

// NewSession validates the options eagerly and prepares a flow run on a
// private clone of the circuit (so one accurate netlist can safely feed
// many concurrent sessions). A nil lib selects the default library.
func NewSession(circuit *netlist.Circuit, lib *cell.Library, opts ...Option) (*Session, error) {
	if circuit == nil {
		return nil, errors.New("als: nil circuit")
	}
	if lib == nil {
		lib = NewLibrary()
	}
	sc := sessionConfig{topK: DefaultTopK}
	for _, opt := range opts {
		if err := opt(&sc); err != nil {
			return nil, err
		}
	}
	return &Session{
		circuit: circuit.Clone(),
		lib:     lib,
		cfg:     sc.resolved(),
		topK:    sc.topK,
	}, nil
}

// Run executes the flow, streaming events as they happen: one
// EventProgress per optimizer iteration, one EventImproved per new best
// feasible solution, and a final EventDone carrying the FlowResult and
// the Front. A failed run yields a single terminal (Event{}, err) pair
// instead of EventDone. Breaking out of the loop cancels the run at its
// next iteration boundary: the session's Err then wraps context.Canceled
// — unless the optimizer had already passed its last cancellation check,
// in which case the run completes and Result/Front are populated with
// Err nil, exactly as if the stream had been drained. A second Run
// yields ErrSessionConsumed.
func (s *Session) Run(ctx context.Context) iter.Seq2[Event, error] {
	return func(yield func(Event, error) bool) {
		if !s.started.CompareAndSwap(false, true) {
			yield(Event{}, ErrSessionConsumed)
			return
		}
		runCtx, cancel := context.WithCancel(ctx)
		defer cancel()
		stopped := false
		emit := func(ev Event) {
			if stopped {
				return
			}
			if !yield(ev, nil) {
				stopped = true
				cancel()
			}
		}
		res, front, err := runFlow(runCtx, s.circuit, s.lib, s.cfg, runHooks{
			progress: func(p FlowProgress) {
				emit(Event{Kind: EventProgress, Progress: &p})
			},
			improved: func(sol Solution) {
				emit(Event{Kind: EventImproved, Solution: &sol})
			},
			wantFront: true,
			topK:      s.topK,
		})
		s.mu.Lock()
		s.done, s.result, s.front, s.err = true, res, front, err
		s.mu.Unlock()
		if stopped {
			return
		}
		if err != nil {
			yield(Event{}, err)
			return
		}
		stats := res.Cache
		yield(Event{Kind: EventDone, Result: res, Front: front, Stats: &stats}, nil)
	}
}

// Collect runs the session to completion, discarding intermediate events,
// and returns the final result and front — the non-streaming convenience
// form of Run.
func (s *Session) Collect(ctx context.Context) (*FlowResult, Front, error) {
	for ev, err := range s.Run(ctx) {
		if err != nil {
			return nil, nil, err
		}
		if ev.Kind == EventDone {
			return ev.Result, ev.Front, nil
		}
	}
	return nil, nil, s.Err()
}

// Done reports whether the session's run has finished (successfully or
// not).
func (s *Session) Done() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.done
}

// Result returns the finished run's FlowResult (nil until EventDone, or
// forever if the run failed).
func (s *Session) Result() *FlowResult {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.result
}

// Front returns the finished run's trade-off front (nil until EventDone,
// or forever if the run failed).
func (s *Session) Front() Front {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.front
}

// Err returns the finished run's error (nil while running and after a
// successful run).
func (s *Session) Err() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.err
}

// runHooks are the observation points runFlow offers its callers. Every
// hook draws no randomness and observes no mutable optimizer state, so an
// instrumented run is bit-identical to a bare one — which is why the v1
// Flow shims and the v2 streaming sessions can share this one engine.
type runHooks struct {
	progress  func(FlowProgress)
	improved  func(Solution)
	wantFront bool
	topK      int
}

// runFlow is the engine behind Flow, FlowContext and Session.Run: the
// complete three-step framework (representation → optimization →
// post-optimization) on an already-resolved FlowConfig. When
// hooks.wantFront is set it additionally post-optimizes the optimizer's
// feasible non-dominated set (capped at topK) into a Front.
func runFlow(ctx context.Context, accurate *netlist.Circuit, lib *cell.Library, cfg FlowConfig, hooks runHooks) (*FlowResult, Front, error) {
	ref, err := sta.Analyze(accurate, lib)
	if err != nil {
		return nil, nil, fmt.Errorf("als: accurate circuit: %w", err)
	}
	areaOri := accurate.Area(lib)
	areaCon := areaOri * cfg.AreaConRatio
	refCPD := ref.CPD
	if refCPD <= 0 {
		refCPD = 1 // degenerate PI→PO netlist: keep ratios finite
	}

	// Translate optimizer-level iteration stats into flow-level progress
	// (delay expressed as a ratio against the accurate circuit's CPD).
	var progress func(core.IterStats)
	if hooks.progress != nil {
		total := cfg.Iterations
		progress = func(st core.IterStats) {
			hooks.progress(FlowProgress{
				Iter:         st.Iter,
				Total:        total,
				BestRatioCPD: st.BestDelay / refCPD,
				BestErr:      st.BestErr,
				Evaluations:  st.Evaluations,
			})
		}
	}
	// When a trace span rides in on ctx, every optimizer iteration becomes
	// a retroactive child span ("previous checkpoint to this one") carrying
	// that generation's evaluation and cache deltas. The wrapper draws no
	// randomness and observes only the stats the hook already receives, so
	// a traced run stays bit-identical to a bare one.
	if parent := trace.FromContext(ctx); parent != nil {
		inner := progress
		genStart := time.Now()
		var prev core.IterStats
		progress = func(st core.IterStats) {
			now := time.Now()
			sp := parent.StartChildAt("als.generation", genStart)
			sp.SetAttr("iter", st.Iter)
			sp.SetAttr("best_fit", st.BestFit)
			sp.SetAttr("best_err", st.BestErr)
			sp.SetAttr("evaluations", st.Evaluations-prev.Evaluations)
			sp.SetAttr("cache_lookups", st.Cache.Lookups-prev.Cache.Lookups)
			sp.SetAttr("cache_hits", st.Cache.Hits-prev.Cache.Hits)
			sp.SetAttr("cache_composed", st.Cache.Composed-prev.Cache.Composed)
			sp.SetAttr("cache_fallbacks", st.Cache.Fallbacks-prev.Cache.Fallbacks)
			sp.EndAt(now)
			genStart, prev = now, st
			if inner != nil {
				inner(st)
			}
		}
	}
	var onImproved func(*core.Individual)
	if hooks.improved != nil {
		onImproved = func(ind *core.Individual) {
			hooks.improved(Solution{
				RatioCPD: ind.Delay / refCPD,
				Err:      ind.Err,
				Area:     ind.Area,
				CPD:      ind.Delay,
				Circuit:  ind.Circuit,
			})
		}
	}

	start := time.Now()
	var best *core.Individual
	var coreFront []*core.Individual
	var history []core.IterStats
	var cache core.CacheStats
	evaluations := 0
	if cfg.Method == MethodDCGWO {
		ccfg := core.DefaultConfig(cfg.Metric, cfg.ErrorBudget)
		ccfg.PopulationSize = cfg.Population
		ccfg.MaxIter = cfg.Iterations
		ccfg.Vectors = cfg.Vectors
		ccfg.DepthWeight = cfg.DepthWeight
		ccfg.EvalWorkers = cfg.EvalWorkers
		ccfg.Progress = progress
		ccfg.OnImproved = onImproved
		ccfg.Seed = cfg.Seed
		opt, err := core.New(accurate, lib, ccfg)
		if err != nil {
			return nil, nil, err
		}
		res, err := opt.RunContext(ctx)
		if err != nil {
			return nil, nil, err
		}
		best, coreFront, history, evaluations = res.Best, res.Front, res.History, res.Evaluations
		cache = res.Cache
	} else {
		bcfg := baselines.DefaultConfig(cfg.Metric, cfg.ErrorBudget)
		bcfg.Rounds = cfg.Iterations
		bcfg.Population = cfg.Population
		bcfg.Vectors = cfg.Vectors
		bcfg.DepthWeight = cfg.DepthWeight
		bcfg.EvalWorkers = cfg.EvalWorkers
		bcfg.Progress = progress
		bcfg.OnImproved = onImproved
		bcfg.Seed = cfg.Seed
		method := map[Method]baselines.Method{
			MethodVecbeeSasimi:   baselines.VecbeeSasimi,
			MethodVaACS:          baselines.VaACS,
			MethodHEDALS:         baselines.HEDALS,
			MethodSingleChaseGWO: baselines.SingleChaseGWO,
		}[cfg.Method]
		res, err := baselines.RunContext(ctx, method, accurate, lib, bcfg)
		if err != nil {
			return nil, nil, err
		}
		best, coreFront, evaluations = res.Best, res.Front, res.Evaluations
		cache = res.Cache
	}
	if best == nil {
		return nil, nil, fmt.Errorf("%w (budget %v)", ErrInfeasible, cfg.ErrorBudget)
	}

	postSpan := trace.FromContext(ctx).StartChild("als.post_optimize")
	post, err := sizing.PostOptimize(best.Circuit, lib, sizing.Options{AreaCon: areaCon})
	postSpan.End()
	if err != nil {
		return nil, nil, err
	}

	var front Front
	if hooks.wantFront {
		front, err = buildFront(coreFront, best, post, lib, areaCon, ref.CPD, hooks.topK)
		if err != nil {
			return nil, nil, err
		}
	}
	elapsed := time.Since(start)

	ratio := 1.0
	if ref.CPD > 0 {
		ratio = post.Report.CPD / ref.CPD
	}
	return &FlowResult{
		Circuit:     accurate.Name,
		Method:      cfg.Method,
		CPDOri:      ref.CPD,
		AreaOri:     areaOri,
		CPDFac:      post.Report.CPD,
		RatioCPD:    ratio,
		AreaCon:     areaCon,
		AreaFinal:   post.Area,
		Err:         best.Err,
		Runtime:     elapsed,
		Evaluations: evaluations,
		Approx:      best.Circuit,
		Final:       post.Circuit,
		History:     history,
		Cache:       evalCacheStatsFrom(cache),
	}, front, nil
}

// buildFront post-optimizes the optimizer's feasible non-dominated set
// (truncated to its topK fittest members, with best always retained) and
// sorts the resulting solutions by ascending RatioCPD. Post-optimization
// is deterministic, so the front never perturbs the run it summarizes.
func buildFront(members []*core.Individual, best *core.Individual, bestPost *sizing.Result,
	lib *cell.Library, areaCon, refCPD float64, topK int) (Front, error) {

	if topK < 1 {
		topK = DefaultTopK
	}
	if len(members) > topK {
		kept := append([]*core.Individual(nil), members[:topK]...)
		found := false
		for _, ind := range kept {
			if ind == best {
				found = true
				break
			}
		}
		if !found {
			kept[topK-1] = best
		}
		members = kept
	}
	if len(members) == 0 {
		members = []*core.Individual{best}
	}
	front := make(Front, 0, len(members))
	for _, ind := range members {
		post := bestPost
		if ind != best {
			var err error
			post, err = sizing.PostOptimize(ind.Circuit, lib, sizing.Options{AreaCon: areaCon})
			if err != nil {
				return nil, err
			}
		}
		ratio := 1.0
		if refCPD > 0 {
			ratio = post.Report.CPD / refCPD
		}
		front = append(front, Solution{
			RatioCPD: ratio,
			Err:      ind.Err,
			Area:     post.Area,
			CPD:      post.Report.CPD,
			Circuit:  post.Circuit,
		})
	}
	// Sort by the headline metric and collapse post-optimization
	// duplicates (distinct optimizer circuits can resize to the same
	// point).
	sort.SliceStable(front, func(i, j int) bool { return frontLess(front[i], front[j]) })
	dedup := front[:0]
	for _, s := range front {
		if n := len(dedup); n > 0 &&
			dedup[n-1].RatioCPD == s.RatioCPD && dedup[n-1].Err == s.Err && dedup[n-1].Area == s.Area {
			continue
		}
		dedup = append(dedup, s)
	}
	return dedup, nil
}

func frontLess(a, b Solution) bool {
	if a.RatioCPD != b.RatioCPD {
		return a.RatioCPD < b.RatioCPD
	}
	if a.Err != b.Err {
		return a.Err < b.Err
	}
	return a.Area < b.Area
}
