package als_test

import (
	"context"
	"fmt"

	als "repro"
)

// ExampleNewSession runs the paper's flow through the v2 session API and
// reads the whole delay/error/area trade-off front instead of only the
// single best solution.
func ExampleNewSession() {
	circuit, err := als.BenchmarkByName("Adder16")
	if err != nil {
		fmt.Println(err)
		return
	}
	sess, err := als.NewSession(circuit, als.NewLibrary(),
		als.WithMetric(als.MetricNMED),
		als.WithErrorBudget(0.0244),
		als.WithSeed(1),
	)
	if err != nil {
		fmt.Println(err)
		return
	}
	res, front, err := sess.Collect(context.Background())
	if err != nil {
		fmt.Println(err)
		return
	}
	best, _ := front.Best()
	fmt.Printf("speedup found: %v\n", res.RatioCPD < 1)
	fmt.Printf("front is non-empty: %v\n", len(front) >= 1)
	fmt.Printf("front best is within budget: %v\n", best.Err <= 0.0244)
	// Output:
	// speedup found: true
	// front is non-empty: true
	// front best is within budget: true
}

// ExampleNewSession_streaming consumes the run as a live event stream:
// one progress event per optimizer iteration, an improved event for every
// new best solution, and a final done event carrying the front.
func ExampleNewSession_streaming() {
	sess, err := als.NewSession(als.Benchmark("c880"), als.NewLibrary(),
		als.WithMetric(als.MetricER),
		als.WithErrorBudget(0.05),
		als.WithIterations(4),
	)
	if err != nil {
		fmt.Println(err)
		return
	}
	var progress, improved int
	var front als.Front
	for ev, err := range sess.Run(context.Background()) {
		if err != nil {
			fmt.Println(err)
			return
		}
		switch ev.Kind {
		case als.EventProgress:
			progress++
		case als.EventImproved:
			improved++
		case als.EventDone:
			front = ev.Front
		}
	}
	fmt.Printf("progress events: %d\n", progress)
	fmt.Printf("saw improvements: %v\n", improved >= 1)
	fmt.Printf("front delivered: %v\n", len(front) >= 1)
	// Output:
	// progress events: 4
	// saw improvements: true
	// front delivered: true
}

// ExampleBenchmarkByName shows the non-panicking benchmark lookup used
// for untrusted or configured names.
func ExampleBenchmarkByName() {
	circuit, err := als.BenchmarkByName("c880")
	fmt.Printf("built %s: %v\n", circuit.Name, err == nil)

	_, err = als.BenchmarkByName("c4242")
	fmt.Printf("unknown handled: %v\n", err != nil)
	// Output:
	// built c880: true
	// unknown handled: true
}
