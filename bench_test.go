// Benchmark harness: one testing.B target per table and figure of the
// paper's evaluation section. Each bench runs a scaled-down but
// structurally complete version of its experiment (small circuit subset,
// quick optimizer budget) and reports the headline metric via b.ReportMetric
// so `go test -bench=.` regenerates the paper's quantities:
//
//	BenchmarkTable1Stats      — TABLE I  (benchmark statistics)
//	BenchmarkTable2ER         — TABLE II (5% ER comparison, avg Ratiocpd)
//	BenchmarkTable3NMED       — TABLE III (2.44% NMED comparison)
//	BenchmarkFig6WeightSweep  — Fig. 6   (depth-weight sweep)
//	BenchmarkFig7ErrorSweep   — Fig. 7   (error-constraint sweep)
//	BenchmarkFig8AreaSweep    — Fig. 8   (area-constraint sweep)
//
// Full-scale regeneration: `go run ./cmd/experiments -exp all -scale paper`.
package als_test

import (
	"testing"

	als "repro"
	"repro/internal/exp"
)

// benchOpts is the scaled-down experiment configuration used inside the
// benchmarks: two small random/control circuits, two small arithmetic
// circuits, quick optimizer budget.
func benchOpts() exp.Opts {
	return exp.Opts{
		Circuits:   []string{"c880", "c1908", "Adder16", "Max16", "Int2float"},
		Seed:       1,
		Population: 8,
		Iterations: 6,
		Vectors:    2048,
	}
}

func BenchmarkTable1Stats(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := exp.Table1()
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) != 15 {
			b.Fatal("TABLE I must have 15 rows")
		}
	}
}

func BenchmarkTable2ER(b *testing.B) {
	var avg float64
	for i := 0; i < b.N; i++ {
		tab, err := exp.Table2(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		avg = tab.Avg[als.MethodDCGWO]
	}
	b.ReportMetric(avg, "ratio_cpd_ours")
}

func BenchmarkTable3NMED(b *testing.B) {
	var avg float64
	for i := 0; i < b.N; i++ {
		tab, err := exp.Table3(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		avg = tab.Avg[als.MethodDCGWO]
	}
	b.ReportMetric(avg, "ratio_cpd_ours")
}

func BenchmarkFig6WeightSweep(b *testing.B) {
	opts := benchOpts()
	opts.Circuits = []string{"c880", "Max16"}
	var atPaperWeight float64
	for i := 0; i < b.N; i++ {
		series, err := exp.Fig6(opts)
		if err != nil {
			b.Fatal(err)
		}
		// Report the loosest-NMED curve — series[3], "NMED 2.44%", the
		// last of exp.Fig6's four constraint settings — at the paper's
		// wd = 0.8, which is exp.Fig6Weights[4].
		atPaperWeight = series[3].Ratio[4]
	}
	b.ReportMetric(atPaperWeight, "ratio_cpd_wd0.8")
}

func BenchmarkFig7ErrorSweep(b *testing.B) {
	opts := benchOpts()
	opts.Circuits = []string{"c880", "Max16"}
	opts.Methods = []als.Method{als.MethodHEDALS, als.MethodDCGWO}
	var loosest float64
	for i := 0; i < b.N; i++ {
		er, _, err := exp.Fig7(opts)
		if err != nil {
			b.Fatal(err)
		}
		// Ours at the loosest ER point.
		loosest = er[1].Ratio[len(er[1].Ratio)-1]
	}
	b.ReportMetric(loosest, "ratio_cpd_er5")
}

func BenchmarkFig8AreaSweep(b *testing.B) {
	opts := benchOpts()
	opts.Circuits = []string{"c880", "Max16"}
	opts.Methods = []als.Method{als.MethodDCGWO}
	var at12 float64
	for i := 0; i < b.N; i++ {
		er, _, err := exp.Fig8(opts)
		if err != nil {
			b.Fatal(err)
		}
		at12 = er[0].Ratio[len(er[0].Ratio)-1]
	}
	b.ReportMetric(at12, "ratio_cpd_1.2x")
}

// BenchmarkFlowSingle measures one end-to-end DCGWO flow (the unit of
// every table cell) at the shared workload shape pinned in
// bench_workload_test.go.
func BenchmarkFlowSingle(b *testing.B) {
	lib := als.NewLibrary()
	c := als.Benchmark(benchWorkloadCircuit)
	for i := 0; i < b.N; i++ {
		if _, err := als.Flow(c, lib, als.FlowConfig{
			Metric:      als.MetricNMED,
			ErrorBudget: benchWorkloadNMED,
			Population:  benchWorkloadPop,
			Iterations:  benchWorkloadIters,
			Vectors:     benchWorkloadVectors,
			Seed:        benchWorkloadSeed,
		}); err != nil {
			b.Fatal(err)
		}
	}
}
