package als_test

import (
	"math/rand"
	"testing"

	als "repro"
	"repro/internal/errest"
	"repro/internal/gen"
	"repro/internal/sim"
	"repro/internal/verilog"
)

// TestAllBenchmarksRoundTripVerilog writes every TABLE I netlist as
// Verilog, parses it back, and checks functional equivalence on a shared
// random sample — the writer and parser must agree on the whole library.
func TestAllBenchmarksRoundTripVerilog(t *testing.T) {
	for _, b := range gen.All() {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			t.Parallel()
			c := b.Build()
			back, err := verilog.Parse(verilog.Write(c))
			if err != nil {
				t.Fatalf("round trip: %v", err)
			}
			v := sim.Random(rand.New(rand.NewSource(77)), len(c.PIs), 512)
			r1, err := sim.Run(c, v)
			if err != nil {
				t.Fatal(err)
			}
			r2, err := sim.Run(back, v)
			if err != nil {
				t.Fatal(err)
			}
			p1, p2 := sim.POSignals(c, r1), sim.POSignals(back, r2)
			for i := range p1 {
				if sim.CountDiff(p1[i], p2[i]) != 0 {
					t.Fatalf("PO %d differs after round trip", i)
				}
			}
		})
	}
}

// TestFlowErrorHoldsOnFreshSample validates the end-to-end error
// guarantee: the final approximate netlist's error, measured on a fresh
// vector sample the optimizer never saw, stays near the budget (within
// Monte-Carlo tolerance).
func TestFlowErrorHoldsOnFreshSample(t *testing.T) {
	lib := als.NewLibrary()
	acc := als.Benchmark("c1908")
	res, err := als.Flow(acc, lib, als.FlowConfig{
		Metric:      als.MetricER,
		ErrorBudget: 0.05,
		Population:  8,
		Iterations:  6,
		Vectors:     4096,
		Seed:        5,
	})
	if err != nil {
		t.Fatal(err)
	}
	fresh := sim.Random(rand.New(rand.NewSource(999)), len(acc.PIs), 1<<15)
	est, err := errest.New(acc, fresh)
	if err != nil {
		t.Fatal(err)
	}
	// Compare against the pre-compaction approximate circuit: it shares
	// the accurate circuit's interface.
	m, _, err := est.Evaluate(res.Approx)
	if err != nil {
		t.Fatal(err)
	}
	if m.ER > 0.05+0.01 {
		t.Errorf("fresh-sample ER %.4f blows the 5%% budget beyond MC tolerance", m.ER)
	}
	// Post-optimization must be function-preserving: the compacted,
	// resized netlist has the same error as the approximate one.
	mFinal, err2 := func() (errest.Metrics, error) {
		e2, err := errest.New(acc, fresh)
		if err != nil {
			return errest.Metrics{}, err
		}
		m, _, err := e2.Evaluate(res.Final)
		return m, err
	}()
	if err2 != nil {
		t.Fatal(err2)
	}
	if mFinal.ER != m.ER {
		t.Errorf("post-optimization changed the function: ER %.5f -> %.5f", m.ER, mFinal.ER)
	}
}

// TestNMEDNeverExceedsER checks the structural property NMED <= ER on
// randomly approximated circuits: each erroneous vector contributes at
// most (2^n-1)/(2^n-1) = 1 to the ED sum.
func TestNMEDNeverExceedsER(t *testing.T) {
	acc := als.Benchmark("Adder16")
	v := sim.Random(rand.New(rand.NewSource(4)), len(acc.PIs), 4096)
	est, err := errest.New(acc, v)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(8))
	for trial := 0; trial < 10; trial++ {
		app := acc.Clone()
		// Cut a few random gates to constants.
		for k := 0; k < 3; k++ {
			id := rng.Intn(len(app.Gates))
			if app.Gates[id].Func.IsPseudo() {
				continue
			}
			app.ReplaceFanin(id, app.Const0())
		}
		m, _, err := est.Evaluate(app)
		if err != nil {
			t.Fatal(err)
		}
		if m.NMED > m.ER+1e-12 {
			t.Fatalf("trial %d: NMED %v > ER %v", trial, m.NMED, m.ER)
		}
		// ER must also be at least every per-PO rate.
		for i, p := range m.PerPO {
			if p > m.ER+1e-12 {
				t.Fatalf("trial %d: PerPO[%d]=%v exceeds ER=%v", trial, i, p, m.ER)
			}
		}
	}
}

// TestFlowOnParsedVerilog drives the flow from a Verilog file rather than
// a generator — the downstream-user path.
func TestFlowOnParsedVerilog(t *testing.T) {
	lib := als.NewLibrary()
	src := als.WriteVerilog(als.Benchmark("Max16"))
	c, err := als.ParseVerilog(src)
	if err != nil {
		t.Fatal(err)
	}
	res, err := als.Flow(c, lib, als.FlowConfig{
		Metric:      als.MetricNMED,
		ErrorBudget: 0.0244,
		Population:  6,
		Iterations:  4,
		Vectors:     1024,
		Seed:        2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.RatioCPD <= 0 || res.Err > 0.0244 {
		t.Errorf("flow on parsed netlist: ratio %v err %v", res.RatioCPD, res.Err)
	}
}

// TestFlowDegenerateCircuit exercises the flow on a netlist whose POs are
// wired straight to PIs (no physical gates): every stage must cope.
func TestFlowDegenerateCircuit(t *testing.T) {
	c := als.Benchmark("Adder16")
	// Strip logic: wire each PO to a PI.
	for i, po := range c.POs {
		c.SetFanin(po, 0, c.PIs[i%len(c.PIs)])
	}
	res, err := als.Flow(c, als.NewLibrary(), als.FlowConfig{
		Metric:      als.MetricER,
		ErrorBudget: 0.05,
		Population:  6,
		Iterations:  3,
		Vectors:     512,
		Seed:        1,
	})
	if err != nil {
		t.Fatalf("degenerate circuit must not break the flow: %v", err)
	}
	if res.CPDOri != 0 {
		// PI->PO wires have zero delay; Ratio is 0/0 guarded upstream.
		t.Logf("CPDOri = %v", res.CPDOri)
	}
}
