// Exactness property tests for the generation-scoped evaluation cache:
// a cache-enabled Evaluator must return bit-identical Individuals to a
// cache-disabled one on the same candidates — every field, serial and
// parallel, across generations, on randomized and exhaustive vector sets,
// whatever mix of whole-candidate hits, composed disjoint deltas and
// plain incremental paths the candidates trigger.
package als_test

import (
	"fmt"
	"math/rand"
	"testing"

	als "repro"
	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/netlist"
	"repro/internal/sim"
)

// evalPair builds two Evaluators on the same base circuit and vector
// sample, one with the cache on (the default) and one with it off (the
// pre-reuse evaluation path).
func evalPair(t *testing.T, base *netlist.Circuit, metric core.Metric, v *sim.Vectors) (cached, plain *core.Evaluator) {
	t.Helper()
	lib := als.NewLibrary()
	cached, err := core.NewEvaluator(base, lib, metric, 0.8, v)
	if err != nil {
		t.Fatal(err)
	}
	plain, err = core.NewEvaluator(base, lib, metric, 0.8, v)
	if err != nil {
		t.Fatal(err)
	}
	plain.SetCacheEnabled(false)
	return cached, plain
}

func constBase(t *testing.T, c *netlist.Circuit) *netlist.Circuit {
	t.Helper()
	base := c.Clone()
	base.Const0()
	base.Const1()
	if err := base.Validate(); err != nil {
		t.Fatal(err)
	}
	return base
}

// requireIdentical asserts two Individuals of the same candidate agree
// bit-for-bit in every evaluated field.
func requireIdentical(t *testing.T, label string, got, want *core.Individual) {
	t.Helper()
	if got.Fit != want.Fit || got.Delay != want.Delay || got.Depth != want.Depth ||
		got.Area != want.Area || got.Err != want.Err {
		t.Fatalf("%s: scalar mismatch\n got %+v\nwant %+v", label, got, want)
	}
	if len(got.PerPO) != len(want.PerPO) {
		t.Fatalf("%s: PerPO length %d != %d", label, len(got.PerPO), len(want.PerPO))
	}
	for i := range got.PerPO {
		if got.PerPO[i] != want.PerPO[i] {
			t.Fatalf("%s: PerPO[%d] %v != %v", label, i, got.PerPO[i], want.PerPO[i])
		}
	}
	if len(got.POArrival) != len(want.POArrival) {
		t.Fatalf("%s: POArrival length %d != %d", label, len(got.POArrival), len(want.POArrival))
	}
	for i := range got.POArrival {
		if got.POArrival[i] != want.POArrival[i] {
			t.Fatalf("%s: POArrival[%d] %v != %v", label, i, got.POArrival[i], want.POArrival[i])
		}
	}
}

// reusePopulation builds one generation's candidate slice with every reuse
// shape present: multi-LAC random candidates, exact duplicates of them
// (whole-candidate hits), and disjoint PO-port rewire pairs (delta
// composition), shuffled deterministically.
func reusePopulation(base *netlist.Circuit, rng *rand.Rand, n int) []*netlist.Circuit {
	var out []*netlist.Circuit
	for len(out) < n {
		switch len(out) % 4 {
		case 0, 1:
			c := base.Clone()
			for k := 0; k < 1+rng.Intn(3); k++ {
				benchLAC(c, rng)
			}
			out = append(out, c)
		case 2:
			// Duplicate an earlier candidate's content on a fresh clone.
			out = append(out, out[rng.Intn(len(out))].Clone())
		default:
			c := base.Clone()
			k := rng.Intn(len(base.POs) / 2)
			poPortLAC(c, 2*k)
			poPortLAC(c, 2*k+1)
			out = append(out, c)
		}
	}
	rng.Shuffle(len(out), func(i, j int) { out[i], out[j] = out[j], out[i] })
	return out
}

// TestEvalCacheExactness drives several generations of reuse-heavy
// populations through cached and uncached Evaluators — serially and on a
// 4-worker pool — and requires bit-identical Individuals and evaluation
// counts throughout.
func TestEvalCacheExactness(t *testing.T) {
	cases := []struct {
		circuit string
		metric  core.Metric
	}{
		{"c880", core.MetricER},
		{"Adder16", core.MetricNMED},
	}
	for _, tc := range cases {
		for _, workers := range []int{1, 4} {
			t.Run(fmt.Sprintf("%s/%s/workers=%d", tc.circuit, tc.metric, workers), func(t *testing.T) {
				base := constBase(t, als.Benchmark(tc.circuit))
				rng := rand.New(rand.NewSource(7))
				v := sim.Random(rng, len(base.PIs), 1024)
				cached, plain := evalPair(t, base, tc.metric, v)
				cached.SetMaxWorkers(workers)
				plain.SetMaxWorkers(workers)
				for generation := 0; generation < 3; generation++ {
					cached.BeginGeneration()
					plain.BeginGeneration()
					pop := reusePopulation(base, rng, 12)
					got, err := cached.EvaluateBatch(pop)
					if err != nil {
						t.Fatal(err)
					}
					want, err := plain.EvaluateBatch(pop)
					if err != nil {
						t.Fatal(err)
					}
					for i := range pop {
						requireIdentical(t, fmt.Sprintf("gen %d candidate %d", generation, i), got[i], want[i])
					}
					// A second cached pass over the same generation must hit
					// and still agree.
					again, err := cached.EvaluateBatch(pop)
					if err != nil {
						t.Fatal(err)
					}
					for i := range pop {
						requireIdentical(t, fmt.Sprintf("gen %d candidate %d (replay)", generation, i), again[i], want[i])
					}
				}
				if cached.Count() != 2*plain.Count() {
					t.Fatalf("evaluation counts diverged: cached %d, plain %d (cached ran twice per generation)",
						cached.Count(), plain.Count())
				}
				st := cached.CacheStats()
				if st.Hits == 0 || st.Composed == 0 || st.Generations != 3 {
					t.Fatalf("population did not exercise every reuse shape: %+v", st)
				}
			})
		}
	}
}

// TestEvalCacheExactnessExhaustive repeats the comparison on Adder4 under
// every possible input vector, so composed error metrics are checked
// against ground truth with zero sampling noise.
func TestEvalCacheExactnessExhaustive(t *testing.T) {
	base := constBase(t, gen.Adder(4))
	v, err := sim.Exhaustive(len(base.PIs))
	if err != nil {
		t.Fatal(err)
	}
	for _, metric := range []core.Metric{core.MetricER, core.MetricNMED} {
		t.Run(metric.String(), func(t *testing.T) {
			cached, plain := evalPair(t, base, metric, v)
			rng := rand.New(rand.NewSource(11))
			for generation := 0; generation < 2; generation++ {
				cached.BeginGeneration()
				plain.BeginGeneration()
				pop := reusePopulation(base, rng, 10)
				got, err := cached.EvaluateBatch(pop)
				if err != nil {
					t.Fatal(err)
				}
				want, err := plain.EvaluateBatch(pop)
				if err != nil {
					t.Fatal(err)
				}
				for i := range pop {
					requireIdentical(t, fmt.Sprintf("gen %d candidate %d", generation, i), got[i], want[i])
				}
			}
		})
	}
}

// TestEvalCacheComposePath pins the delta-composition machinery
// specifically: disjoint PO-port rewires must take the composed path
// (Composed > 0, unit deltas cached and re-hit) and still match the
// uncached evaluation exactly.
func TestEvalCacheComposePath(t *testing.T) {
	base := constBase(t, als.Benchmark("Adder16"))
	v := sim.Random(rand.New(rand.NewSource(3)), len(base.PIs), 2048)
	cached, plain := evalPair(t, base, core.MetricNMED, v)
	cached.BeginGeneration()

	// Two candidates sharing one PO-port rewire: the second's unit delta
	// for the shared change must come from the cache.
	a := base.Clone()
	poPortLAC(a, 0)
	poPortLAC(a, 3)
	b := base.Clone()
	poPortLAC(b, 0)
	poPortLAC(b, 5)
	for i, c := range []*netlist.Circuit{a, b} {
		got, err := cached.Evaluate(c)
		if err != nil {
			t.Fatal(err)
		}
		want, err := plain.Evaluate(c)
		if err != nil {
			t.Fatal(err)
		}
		requireIdentical(t, fmt.Sprintf("candidate %d", i), got, want)
	}
	st := cached.CacheStats()
	if st.Composed != 2 {
		t.Fatalf("expected both candidates composed, got %+v", st)
	}
	if st.UnitHits == 0 {
		t.Fatalf("shared PO-port change did not hit the unit cache: %+v", st)
	}
	if r := st.HitRatio(); r < 0 || r > 1 {
		t.Fatalf("hit ratio %v outside [0,1]", r)
	}
}

// TestFlowCacheStats asserts a real DCGWO flow populates the cache
// counters and surfaces them through both FlowResult.Cache and the
// session's EventDone stats — without touching the frozen wire contracts
// (cmd/apicheck guards the exported surface separately).
func TestFlowCacheStats(t *testing.T) {
	sess, err := als.NewSession(gen.Adder(8), nil,
		als.WithMetric(als.MetricNMED), als.WithErrorBudget(0.02),
		als.WithPopulation(6), als.WithIterations(3), als.WithVectors(256))
	if err != nil {
		t.Fatal(err)
	}
	var stats *als.EvalCacheStats
	var result *als.FlowResult
	for ev, err := range sess.Run(t.Context()) {
		if err != nil {
			t.Fatal(err)
		}
		if ev.Kind == als.EventDone {
			stats, result = ev.Stats, ev.Result
		}
	}
	if stats == nil || result == nil {
		t.Fatal("run ended without EventDone")
	}
	if stats.Lookups == 0 {
		t.Fatalf("flow performed no cache lookups: %+v", *stats)
	}
	if stats.Generations == 0 {
		t.Fatalf("flow marked no generation boundaries: %+v", *stats)
	}
	if *stats != result.Cache {
		t.Fatalf("EventDone stats %+v differ from FlowResult.Cache %+v", *stats, result.Cache)
	}
	if got := result.Cache.HitRatio(); got < 0 || got > 1 {
		t.Fatalf("hit ratio %v outside [0,1]", got)
	}
}
