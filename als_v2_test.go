package als_test

import (
	"context"
	"errors"
	"testing"

	als "repro"
)

// sameFlowResult compares the deterministic fields of two flow results
// exactly (Runtime is wall clock; Approx/Final/History are structural).
func sameFlowResult(t *testing.T, label string, a, b *als.FlowResult) {
	t.Helper()
	if a.RatioCPD != b.RatioCPD || a.Err != b.Err || a.Evaluations != b.Evaluations ||
		a.CPDOri != b.CPDOri || a.CPDFac != b.CPDFac ||
		a.AreaCon != b.AreaCon || a.AreaFinal != b.AreaFinal || a.AreaOri != b.AreaOri {
		t.Errorf("%s: results differ:\n  legacy  RatioCPD=%v Err=%v Evals=%d CPDFac=%v AreaCon=%v AreaFinal=%v\n  session RatioCPD=%v Err=%v Evals=%d CPDFac=%v AreaCon=%v AreaFinal=%v",
			label,
			a.RatioCPD, a.Err, a.Evaluations, a.CPDFac, a.AreaCon, a.AreaFinal,
			b.RatioCPD, b.Err, b.Evaluations, b.CPDFac, b.AreaCon, b.AreaFinal)
	}
}

// TestSessionEquivalentToFlowConfig is the v1↔v2 equivalence suite: every
// configuration expressible as a legacy FlowConfig must produce a
// bit-identical result through an option-built session at the same seed —
// including explicit spellings of the defaults (DepthWeight 0.8,
// AreaConRatio 1.0) and every optimizer family.
func TestSessionEquivalentToFlowConfig(t *testing.T) {
	lib := als.NewLibrary()
	cases := []struct {
		name    string
		circuit string
		cfg     als.FlowConfig
		opts    []als.Option
	}{
		{
			name:    "dcgwo defaults",
			circuit: "c880",
			cfg:     als.FlowConfig{Metric: als.MetricER, ErrorBudget: 0.05},
			opts:    []als.Option{als.WithMetric(als.MetricER), als.WithErrorBudget(0.05)},
		},
		{
			name:    "dcgwo explicit default weights",
			circuit: "Adder16",
			cfg: als.FlowConfig{Metric: als.MetricNMED, ErrorBudget: 0.0244,
				DepthWeight: 0.8, AreaConRatio: 1.0, Seed: 1},
			opts: []als.Option{als.WithMetric(als.MetricNMED), als.WithErrorBudget(0.0244),
				als.WithDepthWeight(0.8), als.WithAreaConRatio(1.0), als.WithSeed(1)},
		},
		{
			name:    "dcgwo overrides",
			circuit: "Max16",
			cfg: als.FlowConfig{Metric: als.MetricNMED, ErrorBudget: 0.0244, Seed: 7,
				DepthWeight: 0.6, AreaConRatio: 1.1, Population: 8, Iterations: 5, Vectors: 512},
			opts: []als.Option{als.WithMetric(als.MetricNMED), als.WithErrorBudget(0.0244),
				als.WithSeed(7), als.WithDepthWeight(0.6), als.WithAreaConRatio(1.1),
				als.WithPopulation(8), als.WithIterations(5), als.WithVectors(512)},
		},
		{
			name:    "greedy baseline",
			circuit: "c880",
			cfg:     als.FlowConfig{Metric: als.MetricER, ErrorBudget: 0.05, Method: als.MethodHEDALS, Seed: 3},
			opts: []als.Option{als.WithMetric(als.MetricER), als.WithErrorBudget(0.05),
				als.WithMethod(als.MethodHEDALS), als.WithSeed(3)},
		},
		{
			name:    "population baseline",
			circuit: "Adder16",
			cfg: als.FlowConfig{Metric: als.MetricNMED, ErrorBudget: 0.0244,
				Method: als.MethodSingleChaseGWO, Population: 6, Iterations: 3, Vectors: 512},
			opts: []als.Option{als.WithMetric(als.MetricNMED), als.WithErrorBudget(0.0244),
				als.WithMethod(als.MethodSingleChaseGWO), als.WithPopulation(6),
				als.WithIterations(3), als.WithVectors(512)},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			legacy, err := als.Flow(als.Benchmark(tc.circuit), lib, tc.cfg)
			if err != nil {
				t.Fatalf("legacy flow: %v", err)
			}
			sess, err := als.NewSession(als.Benchmark(tc.circuit), lib, tc.opts...)
			if err != nil {
				t.Fatalf("NewSession: %v", err)
			}
			res, front, err := sess.Collect(context.Background())
			if err != nil {
				t.Fatalf("session run: %v", err)
			}
			sameFlowResult(t, tc.name, legacy, res)
			if len(front) < 1 {
				t.Error("session returned an empty front")
			}
		})
	}
}

// TestSessionExpressesZeroValues covers the settings the legacy
// FlowConfig could not express: DepthWeight 0 (pure-area fitness) and
// AreaConRatio 0 (tightest area budget). Both must run, resolve to a
// true zero rather than the paper default, and reproduce bit-identically.
func TestSessionExpressesZeroValues(t *testing.T) {
	lib := als.NewLibrary()
	run := func(opts ...als.Option) (*als.FlowResult, als.Front) {
		t.Helper()
		sess, err := als.NewSession(als.Benchmark("c880"), lib, opts...)
		if err != nil {
			t.Fatal(err)
		}
		res, front, err := sess.Collect(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		return res, front
	}
	base := []als.Option{
		als.WithMetric(als.MetricER), als.WithErrorBudget(0.05),
		als.WithPopulation(6), als.WithIterations(3), als.WithVectors(512),
	}

	t.Run("zero area constraint", func(t *testing.T) {
		res, _ := run(append(base[:len(base):len(base)], als.WithAreaConRatio(0))...)
		if res.AreaCon != 0 {
			t.Errorf("AreaCon = %v, want the explicit 0 (legacy resolution would give %v)", res.AreaCon, res.AreaOri)
		}
		legacyish, _ := run(base...)
		if legacyish.AreaCon != legacyish.AreaOri {
			t.Errorf("default AreaCon = %v, want AreaOri %v", legacyish.AreaCon, legacyish.AreaOri)
		}
	})

	t.Run("zero depth weight", func(t *testing.T) {
		first, firstFront := run(append(base[:len(base):len(base)], als.WithDepthWeight(0))...)
		second, secondFront := run(append(base[:len(base):len(base)], als.WithDepthWeight(0))...)
		sameFlowResult(t, "wd=0 determinism", first, second)
		if len(firstFront) != len(secondFront) {
			t.Errorf("front sizes differ across identical runs: %d vs %d", len(firstFront), len(secondFront))
		}
	})
}

// TestSessionStreaming pins the stream contract: one progress event per
// optimizer iteration, at least one improved solution, and a final done
// event whose front is non-empty, sorted by RatioCPD, and within budget.
func TestSessionStreaming(t *testing.T) {
	const iterations = 4
	const budget = 0.05
	sess, err := als.NewSession(als.Benchmark("c880"), als.NewLibrary(),
		als.WithMetric(als.MetricER), als.WithErrorBudget(budget),
		als.WithPopulation(6), als.WithIterations(iterations), als.WithVectors(512))
	if err != nil {
		t.Fatal(err)
	}
	var progress, improved, done int
	var last als.EventKind
	for ev, err := range sess.Run(context.Background()) {
		if err != nil {
			t.Fatalf("stream error: %v", err)
		}
		last = ev.Kind
		switch ev.Kind {
		case als.EventProgress:
			progress++
			if ev.Progress == nil || ev.Progress.Total != iterations {
				t.Fatalf("malformed progress event: %+v", ev.Progress)
			}
		case als.EventImproved:
			improved++
			if ev.Solution == nil || ev.Solution.Err > budget {
				t.Fatalf("improved solution outside budget: %+v", ev.Solution)
			}
		case als.EventDone:
			done++
			if ev.Result == nil || len(ev.Front) < 1 {
				t.Fatalf("done event without result/front: %+v", ev)
			}
			for i, sol := range ev.Front {
				if sol.Err > budget {
					t.Errorf("front[%d].Err = %v over budget %v", i, sol.Err, budget)
				}
				if i > 0 && sol.RatioCPD < ev.Front[i-1].RatioCPD {
					t.Errorf("front not sorted by RatioCPD at %d: %v < %v", i, sol.RatioCPD, ev.Front[i-1].RatioCPD)
				}
				if sol.Circuit == nil {
					t.Errorf("front[%d] has no circuit", i)
				}
			}
		}
	}
	if progress != iterations {
		t.Errorf("progress events = %d, want exactly %d (one per iteration)", progress, iterations)
	}
	if improved < 1 {
		t.Error("no improved-solution events")
	}
	if done != 1 || last != als.EventDone {
		t.Errorf("done events = %d (last kind %v), want exactly one, last", done, last)
	}
	if sess.Result() == nil || len(sess.Front()) < 1 || sess.Err() != nil || !sess.Done() {
		t.Errorf("post-run accessors inconsistent: result=%v front=%d err=%v done=%v",
			sess.Result(), len(sess.Front()), sess.Err(), sess.Done())
	}
}

// TestSessionEarlyBreakCancels: abandoning the stream cancels the run at
// its next iteration boundary.
func TestSessionEarlyBreakCancels(t *testing.T) {
	sess, err := als.NewSession(als.Benchmark("c880"), als.NewLibrary(),
		als.WithMetric(als.MetricER), als.WithErrorBudget(0.05),
		als.WithPopulation(6), als.WithIterations(8), als.WithVectors(512))
	if err != nil {
		t.Fatal(err)
	}
	for ev, err := range sess.Run(context.Background()) {
		if err != nil {
			t.Fatalf("stream error before break: %v", err)
		}
		if ev.Kind == als.EventProgress {
			break
		}
	}
	if !sess.Done() {
		t.Fatal("session not done after abandoning the stream")
	}
	if err := sess.Err(); !errors.Is(err, context.Canceled) {
		t.Errorf("session error = %v, want wrap of context.Canceled", err)
	}
	if sess.Result() != nil {
		t.Error("cancelled session still produced a result")
	}
}

// TestSessionSingleShot: a session runs exactly once.
func TestSessionSingleShot(t *testing.T) {
	sess, err := als.NewSession(als.Benchmark("c880"), als.NewLibrary(),
		als.WithMetric(als.MetricER), als.WithErrorBudget(0.05),
		als.WithPopulation(6), als.WithIterations(2), als.WithVectors(512))
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := sess.Collect(context.Background()); err != nil {
		t.Fatal(err)
	}
	_, _, err = sess.Collect(context.Background())
	if !errors.Is(err, als.ErrSessionConsumed) {
		t.Errorf("second run error = %v, want ErrSessionConsumed", err)
	}
}

// TestSessionOptionValidation: invalid options fail at NewSession, not at
// Run.
func TestSessionOptionValidation(t *testing.T) {
	circuit := als.Benchmark("c880")
	cases := []struct {
		name string
		opt  als.Option
	}{
		{"negative budget", als.WithErrorBudget(-0.1)},
		{"depth weight above one", als.WithDepthWeight(1.5)},
		{"negative area ratio", als.WithAreaConRatio(-1)},
		{"tiny population", als.WithPopulation(2)},
		{"zero iterations", als.WithIterations(0)},
		{"tiny vectors", als.WithVectors(8)},
		{"zero top-K", als.WithTopK(0)},
		{"unknown method", als.WithMethod(als.Method(250))},
	}
	for _, tc := range cases {
		if _, err := als.NewSession(circuit, nil, tc.opt); err == nil {
			t.Errorf("%s: NewSession accepted an invalid option", tc.name)
		}
	}
	if _, err := als.NewSession(nil, nil); err == nil {
		t.Error("NewSession accepted a nil circuit")
	}
}

// TestSessionTopKBoundsFront: the front honors WithTopK.
func TestSessionTopKBoundsFront(t *testing.T) {
	sess, err := als.NewSession(als.Benchmark("c880"), als.NewLibrary(),
		als.WithMetric(als.MetricER), als.WithErrorBudget(0.05),
		als.WithPopulation(8), als.WithIterations(4), als.WithVectors(512),
		als.WithTopK(1))
	if err != nil {
		t.Fatal(err)
	}
	_, front, err := sess.Collect(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(front) != 1 {
		t.Errorf("front size = %d, want 1 (TopK)", len(front))
	}
}

// TestBenchmarkByName: the non-panicking benchmark lookup and its
// sentinel.
func TestBenchmarkByName(t *testing.T) {
	c, err := als.BenchmarkByName("Adder16")
	if err != nil || c == nil {
		t.Fatalf("BenchmarkByName(Adder16) = %v, %v", c, err)
	}
	if c.Name != "Adder16" {
		t.Errorf("circuit name = %q", c.Name)
	}
	if _, err := als.BenchmarkByName("nope"); !errors.Is(err, als.ErrUnknownBenchmark) {
		t.Errorf("unknown name error = %v, want wrap of ErrUnknownBenchmark", err)
	}
}

// TestFrontHelpers covers the Front convenience methods.
func TestFrontHelpers(t *testing.T) {
	var empty als.Front
	if _, ok := empty.Best(); ok {
		t.Error("empty front reported a best solution")
	}
	f := als.Front{
		{RatioCPD: 0.9, Err: 0.01, Area: 100},
		{RatioCPD: 0.95, Err: 0.04, Area: 90},
	}
	if best, ok := f.Best(); !ok || best.RatioCPD != 0.9 {
		t.Errorf("Best = %v, %v", best, ok)
	}
	if tight := f.Within(0.02); len(tight) != 1 || tight[0].Err != 0.01 {
		t.Errorf("Within(0.02) = %v", tight)
	}
	if s := f.String(); s == "" {
		t.Error("empty String rendering")
	}
}
