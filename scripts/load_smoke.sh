#!/usr/bin/env bash
# load_smoke.sh — load-proof of the serving stack, run by the `load-smoke`
# CI job and reproducible locally with:
#
#     scripts/load_smoke.sh
#
# It boots a small fleet of alsd workers and drives hundreds of
# concurrent mixed /v2 sessions (cache-hitting and cache-missing, SSE and
# polling consumers) through cmd/loadgen, which exits non-zero unless the
# SLOs hold:
#
#   1. p99 submit latency stays under the bound (accepting is queueing,
#      never computing);
#   2. every SSE stream ends with exactly one terminal event — zero drops;
#   3. the hard-error rate stays under the ceiling (queue-full 503s are
#      backpressure and retried, not errors).
#
# Afterwards it scrapes /metrics on each worker and asserts the telemetry
# actually moved: submissions, executions, queue traffic and evaluation
# counters must all be non-zero, and the submitted total across the fleet
# must equal what loadgen delivered.
#
# Tracing is proven under the same load: loadgen -check-traces requires
# every accepted submission's trace to be complete on its worker (root
# request span + terminal job.run for queued ones), and the script spot
# checks /debug/traces and the queue-wait histogram afterwards.
#
# Finally it repeats the exercise in cluster mode: an alscoord control
# plane with two REGISTERED workers takes a mixed batch/webhook load
# through /v2/batches, and loadgen's local callback sink fails the run
# unless every hash is delivered exactly once with a valid HMAC
# signature. The coordinator's own telemetry is asserted afterwards.
#
# Requires: go, curl. Ports default to 8493/8494/8496
# (L1_PORT/L2_PORT/LC_PORT).
set -euo pipefail
cd "$(dirname "$0")/.."

L1_PORT=${L1_PORT:-8493}
L2_PORT=${L2_PORT:-8494}
LC_PORT=${LC_PORT:-8496}
L1=http://127.0.0.1:$L1_PORT
L2=http://127.0.0.1:$L2_PORT
LC=http://127.0.0.1:$LC_PORT
SESSIONS=${SESSIONS:-200}
PER_SESSION=${PER_SESSION:-2}

work=$(mktemp -d)
pids=()
cleanup() {
  for pid in "${pids[@]:-}"; do kill -9 "$pid" 2>/dev/null || true; done
  rm -rf "$work"
}
trap cleanup EXIT

say() { echo "== $*"; }

go build -o "$work/alsd" ./cmd/alsd
go build -o "$work/loadgen" ./cmd/loadgen
go build -o "$work/alscoord" ./cmd/alscoord

wait_ready() { # url
  for _ in $(seq 1 100); do
    curl -fsS "$1/healthz" >/dev/null 2>&1 && return 0
    sleep 0.1
  done
  echo "worker $1 never became ready" >&2
  return 1
}

start_worker() { # port store-file [extra alsd flags...]; appends the pid to pids
  local port=$1 sf=$2
  shift 2
  "$work/alsd" -addr "127.0.0.1:$port" -store "$work/$sf" -workers 2 \
    -log-format json -log-level debug -pprof -trace-buf 32768 "$@" \
    >"$work/$sf.log" 2>&1 &
  pids+=($!)
}

say "booting 2 alsd workers on :$L1_PORT and :$L2_PORT"
start_worker "$L1_PORT" l1.jsonl
start_worker "$L2_PORT" l2.jsonl
wait_ready "$L1"
wait_ready "$L2"

say "driving $SESSIONS sessions x $PER_SESSION submissions (mixed cached/uncached, SSE/polling)"
"$work/loadgen" -targets "$L1,$L2" \
  -sessions "$SESSIONS" -per-session "$PER_SESSION" \
  -check-traces -timeout 4m | tee "$work/loadgen.out"
grep -q "all SLOs met" "$work/loadgen.out"
grep -q "trace check: .* complete traces" "$work/loadgen.out"

# metric <url> <name> — print one un-labeled series value (integers only
# in practice; counters expose plain numbers).
metric() {
  curl -fsS "$1/metrics" | awk -v m="$2" '$1 == m { print $2; found=1 } END { exit !found }'
}

say "asserting the telemetry moved"
total_submitted=0
for url in "$L1" "$L2"; do
  curl -fsS "$url/metrics" >"$work/metrics.txt"
  for m in als_jobs_submitted_total als_jobs_executed_total \
           als_store_gets_total als_evaluations_total \
           als_evalcache_lookups_total; do
    v=$(metric "$url" "$m") \
      || { echo "$url: metric $m missing" >&2; cat "$work/metrics.txt" >&2; exit 1; }
    awk -v v="$v" 'BEGIN { exit !(v > 0) }' \
      || { echo "$url: metric $m never moved (= $v)" >&2; exit 1; }
  done
  sub=$(metric "$url" als_jobs_submitted_total)
  total_submitted=$(awk -v a="$total_submitted" -v b="$sub" 'BEGIN { print a + b }')
  # The run is over: nothing may still be queued, running or subscribed.
  for m in als_queue_depth als_jobs_running als_sse_subscribers; do
    v=$(metric "$url" "$m")
    [ "${v%.*}" = "0" ] || { echo "$url: $m = $v after the run drained" >&2; exit 1; }
  done
done

expected=$((SESSIONS * PER_SESSION))
[ "${total_submitted%.*}" -eq "$expected" ] \
  || { echo "fleet-wide als_jobs_submitted_total = $total_submitted, want $expected" >&2; exit 1; }
say "fleet accepted all $expected submissions and the counters agree"

say "pprof is live"
curl -fsS "$L1/debug/pprof/" >/dev/null

say "trace endpoint serves span trees and the queue-wait histogram moved"
curl -fsS "$L1/debug/traces?min_ms=0&limit=5" >"$work/traces.json"
grep -q '"spans"' "$work/traces.json" \
  || { echo "/debug/traces returned no span trees" >&2; exit 1; }
curl -fsS "$L1/debug/traces?format=jsonl&limit=5" >"$work/traces.jsonl"
grep -q '"trace_id"' "$work/traces.jsonl" \
  || { echo "/debug/traces?format=jsonl returned no records" >&2; exit 1; }
qw=$(metric "$L1" 'als_queue_wait_seconds_bucket{le="+Inf"}' || echo 0)
awk -v v="$qw" 'BEGIN { exit !(v > 0) }' \
  || { echo "als_queue_wait_seconds never observed a job (= $qw)" >&2; exit 1; }

say "request ids + structured logs"
curl -fsSi "$L1/healthz" | grep -qi '^x-request-id:' \
  || { echo "no X-Request-Id on responses" >&2; exit 1; }
grep -q '"msg":"http request"' "$work/l1.jsonl.log" \
  || { echo "no structured access-log lines in the worker log" >&2; exit 1; }

say "draining the fleet"
kill -TERM "${pids[0]}" "${pids[1]}"
wait "${pids[0]}" "${pids[1]}"

# ---- cluster mode: coordinator + registered workers, batch + webhook -----
say "cluster mode: alscoord + 2 registered workers under batch/webhook load"
"$work/alscoord" -addr "127.0.0.1:$LC_PORT" -store "$work/cluster.jsonl" \
  -hb-interval 300ms -log-format json >"$work/coord.log" 2>&1 &
pids+=($!)
wait_ready "$LC"
start_worker "$L1_PORT" c1.jsonl -register "$LC"
start_worker "$L2_PORT" c2.jsonl -register "$LC"
wait_ready "$L1"
wait_ready "$L2"
for _ in $(seq 1 100); do
  n=$(curl -fsS "$LC/cluster/workers" | grep -c '"id"' || true)
  [ "$n" = 2 ] && break
  sleep 0.1
done
[ "${n:-0}" = 2 ] \
  || { echo "workers never registered with the coordinator" >&2; cat "$work/coord.log" >&2; exit 1; }

say "mixed batch intake with a webhook sink asserting exactly-once delivery"
"$work/loadgen" -coord "$LC" -batch 24 -batch-chunk 8 -webhook \
  -timeout 4m | tee "$work/cluster.out"
grep -q "all SLOs met" "$work/cluster.out"
grep -q "delivered exactly once, all signatures valid" "$work/cluster.out"

say "asserting the cluster telemetry moved"
# The batch run can finish inside one heartbeat interval; wait for the
# first beat to land before freezing the counters.
for _ in $(seq 1 50); do
  hb=$(metric "$LC" als_cluster_heartbeats_total || echo 0)
  awk -v v="$hb" 'BEGIN { exit !(v > 0) }' && break
  sleep 0.1
done
curl -fsS "$LC/metrics" >"$work/coordmetrics.txt"
for m in als_cluster_heartbeats_total als_webhook_deliveries_total; do
  v=$(metric "$LC" "$m") \
    || { echo "coordinator metric $m missing" >&2; cat "$work/coordmetrics.txt" >&2; exit 1; }
  awk -v v="$v" 'BEGIN { exit !(v > 0) }' \
    || { echo "coordinator metric $m never moved (= $v)" >&2; exit 1; }
done
workers_live=$(metric "$LC" als_cluster_workers)
[ "${workers_live%.*}" = "2" ] \
  || { echo "als_cluster_workers = $workers_live, want 2" >&2; exit 1; }
deliv=$(metric "$LC" als_webhook_deliveries_total)
[ "${deliv%.*}" -eq 24 ] \
  || { echo "als_webhook_deliveries_total = $deliv, want 24" >&2; exit 1; }
say "cluster accepted the batches, workers stayed registered, 24/24 webhook deliveries"

say "graceful deregistration on worker shutdown"
kill -TERM "${pids[@]: -2}" 2>/dev/null || true
for pid in "${pids[@]: -2}"; do wait "$pid" 2>/dev/null || true; done
for _ in $(seq 1 50); do
  left=$(metric "$LC" als_cluster_workers)
  [ "${left%.*}" = "0" ] && break
  sleep 0.1
done
[ "${left%.*}" = "0" ] \
  || { echo "als_cluster_workers = $left after both workers deregistered" >&2; exit 1; }

say "load smoke passed"
