#!/usr/bin/env bash
# distributed_smoke.sh — end-to-end proof of the distributed sweep path,
# run by the `distributed-smoke` CI job and reproducible locally with:
#
#     scripts/distributed_smoke.sh
#
# It asserts the three guarantees the tentpole claims:
#
#   1. Determinism: a 2-worker distributed run of the quick TABLE II suite
#      renders byte-identical -format json output to a single-process
#      -jobs 4 run (cells are pure functions of their content hash).
#   2. Golden gate: the exact golden-metrics check passes when its cells
#      are computed through the fleet.
#   3. Failover + resume: with one worker SIGKILLed mid-sweep, the
#      coordinator fails its remaining cells over to the survivor, the
#      output is still byte-identical, and the -out store is complete —
#      a -resume re-run executes nothing.
#   4. Distributed tracing: the traced 2-worker run produces ONE trace ID
#      spanning coordinator and workers (and stays byte-identical to the
#      untraced single-process reference), and the merged tracecat render
#      shows the whole causal chain — dispatch submits, worker queue
#      waits, per-generation evaluation, store puts, critical path.
#
# Requires: go, curl, jq. Ports default to 8491/8492 (W1_PORT/W2_PORT).
set -euo pipefail
cd "$(dirname "$0")/.."

W1_PORT=${W1_PORT:-8491}
W2_PORT=${W2_PORT:-8492}
W1=http://127.0.0.1:$W1_PORT
W2=http://127.0.0.1:$W2_PORT

work=$(mktemp -d)
pids=()
cleanup() {
  for pid in "${pids[@]:-}"; do kill -9 "$pid" 2>/dev/null || true; done
  rm -rf "$work"
}
trap cleanup EXIT

say() { echo "== $*"; }

go build -o "$work/alsd" ./cmd/alsd
go build -o "$work/experiments" ./cmd/experiments
go build -o "$work/tracecat" ./cmd/tracecat

wait_ready() { # url
  for _ in $(seq 1 100); do
    curl -fsS "$1/healthz" >/dev/null 2>&1 && return 0
    sleep 0.1
  done
  echo "worker $1 never became ready" >&2
  return 1
}

start_worker() { # port store-file; appends the pid to pids
  "$work/alsd" -addr "127.0.0.1:$1" -store "$work/$2" -workers 2 \
    >"$work/$2.log" 2>&1 &
  pids+=($!)
}

# The quick suite: TABLE II at quick scale (35 cells, 7 circuits x 5
# methods). Machine-readable output omits wall clock, so bytes depend only
# on the job specs.
suite=(-exp table2 -format json -seed 1)

say "reference: single-process -jobs 4 run"
"$work/experiments" "${suite[@]}" -jobs 4 -out "$work/single" >"$work/single.json"

say "booting 2 alsd workers on :$W1_PORT and :$W2_PORT"
start_worker "$W1_PORT" w1.jsonl
start_worker "$W2_PORT" w2.jsonl
wait_ready "$W1"
wait_ready "$W2"

say "distributed run across both workers (traced)"
"$work/experiments" "${suite[@]}" -workers "$W1,$W2" -out "$work/dist" \
  -trace-out "$work/dist.trace.jsonl" \
  >"$work/dist.json" 2>"$work/dist.log"
cmp "$work/single.json" "$work/dist.json" \
  || { echo "distributed JSON differs from single-process run" >&2; exit 1; }
say "byte-identical json output confirmed (tracing did not perturb results)"

say "one trace ID spans the whole fleet"
tid=$(grep -oE '^trace [0-9a-f]{32}$' "$work/dist.log" | head -1 | awk '{print $2}')
[ -n "$tid" ] || { echo "coordinator never printed its trace ID" >&2; cat "$work/dist.log" >&2; exit 1; }
for url in "$W1" "$W2"; do
  curl -fsS "$url/debug/traces?trace=$tid&format=jsonl" >"$work/worker.trace.jsonl"
  grep -q "$tid" "$work/worker.trace.jsonl" \
    || { echo "worker $url holds no spans of trace $tid" >&2; exit 1; }
done
say "rendering the merged fleet timeline through tracecat"
"$work/tracecat" -trace "$tid" "$work/dist.trace.jsonl" \
  "$W1/debug/traces" "$W2/debug/traces" >"$work/trace.txt"
for span in dispatch.sweep dispatch.submit queue.wait job.run \
            als.generation store.put "critical path"; do
  grep -q "$span" "$work/trace.txt" \
    || { echo "fleet timeline is missing $span:" >&2; cat "$work/trace.txt" >&2; exit 1; }
done
say "fleet timeline complete: submit -> queue-wait -> evaluate -> store"

say "golden-metrics gate through the fleet"
"$work/experiments" -check testdata/golden_quick.json -workers "$W1,$W2" \
  2>&1 | tee "$work/golden.log"
grep -q "golden check passed" "$work/golden.log"

# ---- failover -------------------------------------------------------------
# Fresh seed (nothing cached anywhere) and a heavier per-cell budget so the
# sweep is long enough to lose a worker halfway through. W2 is SIGKILLed as
# soon as its own stats show it computed a cell — i.e. genuinely mid-run,
# with cells it still owns — and the coordinator must fail those over to W1.
failover_suite=(-exp table2 -format json -seed 99 -vectors 32768 -iters 8)
W2_PID=${pids[1]}

say "failover reference: single-process run at seed 99"
"$work/experiments" "${failover_suite[@]}" -jobs 4 >"$work/single99.json"

say "distributed run with W2 killed mid-sweep"
# W2's executed counter is cumulative across the earlier phases; the kill
# must wait for cells of *this* sweep, so trigger on growth past the
# pre-run baseline.
base=$(curl -fsS "$W2/healthz" | jq -re .stats.executed)
(
  while :; do
    ex=$(curl -fsS "$W2/healthz" 2>/dev/null | jq -re .stats.executed) || exit 0
    if [ "$ex" -gt "$base" ]; then
      kill -9 "$W2_PID"
      echo "killed W2 (pid $W2_PID) after it executed $((ex - base)) cell(s) of this sweep"
      exit 0
    fi
    sleep 0.05
  done
) &
killer=$!
"$work/experiments" "${failover_suite[@]}" -workers "$W1,$W2" \
  -out "$work/failover" >"$work/failover.json" 2>"$work/failover.log"
wait "$killer"
grep -q "dead" "$work/failover.log" \
  || { echo "coordinator never reported the dead lane" >&2; cat "$work/failover.log" >&2; exit 1; }
cmp "$work/single99.json" "$work/failover.json" \
  || { echo "failover run JSON differs from single-process run" >&2; exit 1; }
say "failover produced byte-identical output"

say "resume after failover: every cell must already be in the store"
"$work/experiments" "${failover_suite[@]}" -workers "$W1" -resume \
  -out "$work/failover" >"$work/resume.json" 2>"$work/resume.log"
grep -q "0 executed, 35 cached" "$work/resume.log" \
  || { echo "-resume after failover recomputed cells:" >&2; cat "$work/resume.log" >&2; exit 1; }
cmp "$work/single99.json" "$work/resume.json"

say "draining the surviving worker"
kill -TERM "${pids[0]}"
wait "${pids[0]}"

say "distributed smoke passed"
