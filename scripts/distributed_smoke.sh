#!/usr/bin/env bash
# distributed_smoke.sh — end-to-end proof of the distributed sweep path,
# run by the `distributed-smoke` CI job and reproducible locally with:
#
#     scripts/distributed_smoke.sh
#
# It asserts the three guarantees the tentpole claims:
#
#   1. Determinism: a 2-worker distributed run of the quick TABLE II suite
#      renders byte-identical -format json output to a single-process
#      -jobs 4 run (cells are pure functions of their content hash).
#   2. Golden gate: the exact golden-metrics check passes when its cells
#      are computed through the fleet.
#   3. Failover + resume: with one worker SIGKILLed mid-sweep, the
#      coordinator fails its remaining cells over to the survivor, the
#      output is still byte-identical, and the -out store is complete —
#      a -resume re-run executes nothing.
#   4. Distributed tracing: the traced 2-worker run produces ONE trace ID
#      spanning coordinator and workers (and stays byte-identical to the
#      untraced single-process reference), and the merged tracecat render
#      shows the whole causal chain — dispatch submits, worker queue
#      waits, per-generation evaluation, store puts, critical path.
#   5. Durability: an alsd SIGKILLed with accepted jobs still queued
#      replays its write-ahead log on restart, every accepted submission
#      completes, and each result is byte-identical to a fresh daemon
#      recomputing the same requests (runtime_ns is the only wall-clock
#      field and is excluded; see docs/STORAGE.md).
#   6. Backend matrix: the same distributed sweep through workers running
#      the embedded (binary-log) store backend stays byte-identical to
#      the single-process reference.
#   7. Shared store: a hub + satellite fleet where the satellite uses the
#      hub's /store surface as its result store (-store-remote) renders
#      byte-identical output, and every result lands in the hub's store.
#   8. Cluster mode: workers REGISTER with an alscoord control plane
#      (instead of the client naming them with -workers), and an
#      `experiments -coord` sweep is byte-identical to the single-process
#      reference — including when one registered worker is SIGKILLed
#      mid-sweep and the coordinator drains it and fails its cells over.
#
# Requires: go, curl, jq. Ports default to 8491-8495 (W1_PORT..W4_PORT,
# COORD_PORT).
set -euo pipefail
cd "$(dirname "$0")/.."

W1_PORT=${W1_PORT:-8491}
W2_PORT=${W2_PORT:-8492}
W3_PORT=${W3_PORT:-8493}
W4_PORT=${W4_PORT:-8494}
COORD_PORT=${COORD_PORT:-8495}
W1=http://127.0.0.1:$W1_PORT
W2=http://127.0.0.1:$W2_PORT
W3=http://127.0.0.1:$W3_PORT
W4=http://127.0.0.1:$W4_PORT
COORD=http://127.0.0.1:$COORD_PORT

work=$(mktemp -d)
pids=()
cleanup() {
  for pid in "${pids[@]:-}"; do kill -9 "$pid" 2>/dev/null || true; done
  rm -rf "$work"
}
trap cleanup EXIT

say() { echo "== $*"; }

go build -o "$work/alsd" ./cmd/alsd
go build -o "$work/experiments" ./cmd/experiments
go build -o "$work/tracecat" ./cmd/tracecat
go build -o "$work/alscoord" ./cmd/alscoord

wait_ready() { # url
  for _ in $(seq 1 100); do
    curl -fsS "$1/healthz" >/dev/null 2>&1 && return 0
    sleep 0.1
  done
  echo "worker $1 never became ready" >&2
  return 1
}

start_worker() { # port store-file [extra alsd flags...]; appends the pid to pids
  local port=$1 sf=$2
  shift 2
  "$work/alsd" -addr "127.0.0.1:$port" -store "$work/$sf" -workers 2 "$@" \
    >"$work/$sf.log" 2>&1 &
  pids+=($!)
}

# The quick suite: TABLE II at quick scale (35 cells, 7 circuits x 5
# methods). Machine-readable output omits wall clock, so bytes depend only
# on the job specs.
suite=(-exp table2 -format json -seed 1)

say "reference: single-process -jobs 4 run"
"$work/experiments" "${suite[@]}" -jobs 4 -out "$work/single" >"$work/single.json"

say "booting 2 alsd workers on :$W1_PORT and :$W2_PORT"
start_worker "$W1_PORT" w1.jsonl
start_worker "$W2_PORT" w2.jsonl
wait_ready "$W1"
wait_ready "$W2"

say "distributed run across both workers (traced)"
"$work/experiments" "${suite[@]}" -workers "$W1,$W2" -out "$work/dist" \
  -trace-out "$work/dist.trace.jsonl" \
  >"$work/dist.json" 2>"$work/dist.log"
cmp "$work/single.json" "$work/dist.json" \
  || { echo "distributed JSON differs from single-process run" >&2; exit 1; }
say "byte-identical json output confirmed (tracing did not perturb results)"

say "one trace ID spans the whole fleet"
tid=$(grep -oE '^trace [0-9a-f]{32}$' "$work/dist.log" | head -1 | awk '{print $2}')
[ -n "$tid" ] || { echo "coordinator never printed its trace ID" >&2; cat "$work/dist.log" >&2; exit 1; }
for url in "$W1" "$W2"; do
  curl -fsS "$url/debug/traces?trace=$tid&format=jsonl" >"$work/worker.trace.jsonl"
  grep -q "$tid" "$work/worker.trace.jsonl" \
    || { echo "worker $url holds no spans of trace $tid" >&2; exit 1; }
done
say "rendering the merged fleet timeline through tracecat"
"$work/tracecat" -trace "$tid" "$work/dist.trace.jsonl" \
  "$W1/debug/traces" "$W2/debug/traces" >"$work/trace.txt"
for span in dispatch.sweep dispatch.submit queue.wait job.run \
            als.generation store.put "critical path"; do
  grep -q "$span" "$work/trace.txt" \
    || { echo "fleet timeline is missing $span:" >&2; cat "$work/trace.txt" >&2; exit 1; }
done
say "fleet timeline complete: submit -> queue-wait -> evaluate -> store"

say "golden-metrics gate through the fleet"
"$work/experiments" -check testdata/golden_quick.json -workers "$W1,$W2" \
  2>&1 | tee "$work/golden.log"
grep -q "golden check passed" "$work/golden.log"

# ---- failover -------------------------------------------------------------
# Fresh seed (nothing cached anywhere) and a heavier per-cell budget so the
# sweep is long enough to lose a worker halfway through. W2 is SIGKILLed as
# soon as its own stats show it computed a cell — i.e. genuinely mid-run,
# with cells it still owns — and the coordinator must fail those over to W1.
failover_suite=(-exp table2 -format json -seed 99 -vectors 32768 -iters 8)
W2_PID=${pids[1]}

say "failover reference: single-process run at seed 99"
"$work/experiments" "${failover_suite[@]}" -jobs 4 >"$work/single99.json"

say "distributed run with W2 killed mid-sweep"
# W2's executed counter is cumulative across the earlier phases; the kill
# must wait for cells of *this* sweep, so trigger on growth past the
# pre-run baseline.
base=$(curl -fsS "$W2/healthz" | jq -re .stats.executed)
(
  while :; do
    ex=$(curl -fsS "$W2/healthz" 2>/dev/null | jq -re .stats.executed) || exit 0
    if [ "$ex" -gt "$base" ]; then
      kill -9 "$W2_PID"
      echo "killed W2 (pid $W2_PID) after it executed $((ex - base)) cell(s) of this sweep"
      exit 0
    fi
    sleep 0.05
  done
) &
killer=$!
"$work/experiments" "${failover_suite[@]}" -workers "$W1,$W2" \
  -out "$work/failover" >"$work/failover.json" 2>"$work/failover.log"
wait "$killer"
grep -q "dead" "$work/failover.log" \
  || { echo "coordinator never reported the dead lane" >&2; cat "$work/failover.log" >&2; exit 1; }
cmp "$work/single99.json" "$work/failover.json" \
  || { echo "failover run JSON differs from single-process run" >&2; exit 1; }
say "failover produced byte-identical output"

say "resume after failover: every cell must already be in the store"
"$work/experiments" "${failover_suite[@]}" -workers "$W1" -resume \
  -out "$work/failover" >"$work/resume.json" 2>"$work/resume.log"
grep -q "0 executed, 35 cached" "$work/resume.log" \
  || { echo "-resume after failover recomputed cells:" >&2; cat "$work/resume.log" >&2; exit 1; }
cmp "$work/single99.json" "$work/resume.json"

say "draining the surviving worker"
kill -TERM "${pids[0]}"
wait "${pids[0]}"

# ---- durability: SIGKILL mid-queue, WAL replay on restart ----------------
# One slow worker and heavy per-job budgets (quick-scale jobs finish in
# milliseconds — too fast to lose) so most submissions are still queued at
# the kill. The restarted daemon must replay its WAL, finish every
# accepted job, and each result must be byte-identical to a fresh daemon
# recomputing the same requests (ids and wall-clock timestamps differ by
# design; the result payload may not, except runtime_ns).
wal_seeds=(101 102 103 104)
wal_body() { # seed
  printf '{"circuit":"Adder16","metric":"nmed","budget":0.0244,"seed":%d,"vectors":32768,"iterations":8}' "$1"
}

poll_done() { # url seed out-file; resubmits (dedup/cache hit) until done
  local v
  for _ in $(seq 1 600); do
    v=$(curl -fsS -X POST "$1/v1/flows" -d "$(wal_body "$2")")
    if [ "$(jq -re .status <<<"$v")" = done ]; then
      jq -S '.result | del(.runtime_ns)' <<<"$v" >>"$3"
      return 0
    fi
    sleep 0.1
  done
  echo "job with seed $2 on $1 never finished" >&2
  return 1
}

say "durability: SIGKILL alsd with jobs queued, restart, WAL replay"
"$work/alsd" -addr "127.0.0.1:$W3_PORT" -store "$work/crash.jsonl" \
  -wal auto -workers 1 >"$work/crash1.log" 2>&1 &
W3_PID=$!
pids+=("$W3_PID")
wait_ready "$W3"
for seed in "${wal_seeds[@]}"; do
  curl -fsS -X POST "$W3/v1/flows" -d "$(wal_body "$seed")" | jq -re .hash >/dev/null
done
kill -9 "$W3_PID"
wait "$W3_PID" 2>/dev/null || true
say "killed the daemon with ${#wal_seeds[@]} accepted submissions; restarting on the same store + WAL"

"$work/alsd" -addr "127.0.0.1:$W3_PORT" -store "$work/crash.jsonl" \
  -wal auto -workers 1 >"$work/crash2.log" 2>&1 &
pids+=($!)
wait_ready "$W3"
grep -q '"wal opened"\|wal opened' "$work/crash2.log" \
  || { echo "restarted daemon never opened the WAL" >&2; cat "$work/crash2.log" >&2; exit 1; }

for seed in "${wal_seeds[@]}"; do
  poll_done "$W3" "$seed" "$work/replayed.results"
done
replayed=$(curl -fsS "$W3/metrics" | awk '$1 == "als_wal_replayed_total" {print $2}')
[ "${replayed:-0}" -ge 1 ] \
  || { echo "restart replayed no WAL records (als_wal_replayed_total=$replayed)" >&2; exit 1; }
say "all ${#wal_seeds[@]} submissions completed after restart ($replayed replayed from the WAL)"

say "durability reference: fresh daemon recomputes the same requests"
start_worker "$W4_PORT" crashref.jsonl
wait_ready "$W4"
for seed in "${wal_seeds[@]}"; do
  poll_done "$W4" "$seed" "$work/recomputed.results"
done
cmp "$work/replayed.results" "$work/recomputed.results" \
  || { echo "replayed results differ from a fresh recompute" >&2; exit 1; }
say "replayed results byte-identical to fresh recompute"
kill -TERM "${pids[@]: -2}" 2>/dev/null || true
for pid in "${pids[@]: -2}"; do wait "$pid" 2>/dev/null || true; done

# ---- backend matrix: the quick suite through embedded-backend workers ----
say "backend matrix: distributed run on embedded-store workers"
start_worker "$W1_PORT" w1.emb -store-backend embedded
start_worker "$W2_PORT" w2.emb -store-backend embedded
wait_ready "$W1"
wait_ready "$W2"
"$work/experiments" "${suite[@]}" -workers "$W1,$W2" >"$work/embedded.json"
cmp "$work/single.json" "$work/embedded.json" \
  || { echo "embedded-backend run differs from single-process run" >&2; exit 1; }
[ "$(head -c 9 "$work/w1.emb")" = "ALSEMBED1" ] \
  || { echo "w1.emb is not an embedded-format store" >&2; exit 1; }
say "embedded backend byte-identical"
kill -TERM "${pids[@]: -2}" 2>/dev/null || true
for pid in "${pids[@]: -2}"; do wait "$pid" 2>/dev/null || true; done

# ---- shared store: hub + satellite through the remote backend ------------
# The hub serves its store at /store; the satellite has no store file of
# its own and reads/writes the hub's over HTTP. Every cell either worker
# computes is a cache hit for the other, and the sweep output stays
# byte-identical to the single-process reference.
say "shared store: hub (jsonl) + satellite (-store-remote hub)"
start_worker "$W3_PORT" hub.jsonl -wal ""
start_worker "$W4_PORT" satellite -store-remote "$W3" -wal ""
wait_ready "$W3"
wait_ready "$W4"
"$work/experiments" "${suite[@]}" -workers "$W3,$W4" >"$work/remote.json"
cmp "$work/single.json" "$work/remote.json" \
  || { echo "remote-store run differs from single-process run" >&2; exit 1; }
sat_executed=$(curl -fsS "$W4/healthz" | jq -re .stats.executed)
[ "$sat_executed" -ge 1 ] \
  || { echo "satellite executed no cells; the remote backend went unexercised" >&2; exit 1; }
hub_records=$(curl -fsS "$W3/store/" | wc -l)
[ "$hub_records" -ge 35 ] \
  || { echo "hub store holds only $hub_records records for a 35-cell sweep" >&2; exit 1; }
say "remote-store fleet byte-identical; satellite computed $sat_executed cells into the hub's $hub_records-record store"

# ---- cluster mode: registration, -coord sweep, mid-sweep worker kill -----
# The coordinator owns the fleet: workers register with it (-register),
# heartbeat, and the experiments client names only the coordinator. The
# short heartbeat cadence makes a silent worker expire within ~a second.
say "cluster mode: alscoord + 2 registered workers"
kill -TERM "${pids[@]: -2}" 2>/dev/null || true
for pid in "${pids[@]: -2}"; do wait "$pid" 2>/dev/null || true; done
"$work/alscoord" -addr "127.0.0.1:$COORD_PORT" -store "$work/coord.jsonl" \
  -hb-interval 300ms -expire-after 2 >"$work/coord.log" 2>&1 &
pids+=($!)
wait_ready "$COORD"
start_worker "$W1_PORT" cw1.jsonl -register "$COORD"
start_worker "$W2_PORT" cw2.jsonl -register "$COORD"
CW2_PID=${pids[-1]}
wait_ready "$W1"
wait_ready "$W2"
for _ in $(seq 1 100); do
  [ "$(curl -fsS "$COORD/cluster/workers" | jq -re length)" = 2 ] && break
  sleep 0.1
done
[ "$(curl -fsS "$COORD/cluster/workers" | jq -re length)" = 2 ] \
  || { echo "workers never registered with the coordinator" >&2; cat "$work/coord.log" >&2; exit 1; }
say "both workers registered; -coord sweep must match the single-process reference"
"$work/experiments" "${suite[@]}" -coord "$COORD" >"$work/coord.json" 2>"$work/coordrun.log"
cmp "$work/single.json" "$work/coord.json" \
  || { echo "-coord run differs from single-process run" >&2; exit 1; }
say "cluster-mode output byte-identical"

say "cluster failover: SIGKILL one registered worker mid-sweep"
coord_suite=(-exp table2 -format json -seed 77 -vectors 32768 -iters 8)
"$work/experiments" "${coord_suite[@]}" -jobs 4 >"$work/single77.json"
base=$(curl -fsS "$W2/healthz" | jq -re .stats.executed)
(
  while :; do
    ex=$(curl -fsS "$W2/healthz" 2>/dev/null | jq -re .stats.executed) || exit 0
    if [ "$ex" -gt "$base" ]; then
      kill -9 "$CW2_PID"
      echo "killed registered worker (pid $CW2_PID) after $((ex - base)) cell(s) of this sweep"
      exit 0
    fi
    sleep 0.05
  done
) &
killer=$!
"$work/experiments" "${coord_suite[@]}" -coord "$COORD" \
  >"$work/coord77.json" 2>"$work/coord77.log"
wait "$killer"
cmp "$work/single77.json" "$work/coord77.json" \
  || { echo "cluster failover run differs from single-process run" >&2; exit 1; }
dropped=$(curl -fsS "$COORD/metrics" | awk '$1 == "als_cluster_workers_expired_total" {print $2}')
[ "${dropped:-0}" -ge 1 ] \
  || { echo "coordinator never drained the killed worker (als_cluster_workers_expired_total=$dropped)" >&2; exit 1; }
[ "$(curl -fsS "$COORD/cluster/workers" | jq -re length)" = 1 ] \
  || { echo "killed worker still in the registry" >&2; exit 1; }
say "cluster failover byte-identical; killed worker drained from the registry"

say "distributed smoke passed"
