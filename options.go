package als

import "fmt"

// DefaultTopK is how many trade-off solutions a session's Front carries
// unless WithTopK overrides it.
const DefaultTopK = 8

// Option configures a Session. Options replace the zero-value resolution
// of the legacy FlowConfig: a setting is defaulted only when its option
// is absent, so legal zero values — WithDepthWeight(0), the pure-area
// fitness, or WithAreaConRatio(0), the tightest possible area budget —
// are expressible rather than silently swapped for the paper defaults.
// Invalid values are rejected by NewSession immediately, not at Run time.
type Option func(*sessionConfig) error

// sessionConfig accumulates options on top of a FlowConfig. The *Set
// flags distinguish "explicitly zero" from "absent" for the fields whose
// zero value is legal but doubles as the legacy default marker.
type sessionConfig struct {
	cfg            FlowConfig
	depthWeightSet bool
	areaConSet     bool
	seedSet        bool
	topK           int
}

// resolved is the single defaults table of the package: zero-valued
// fields become the paper defaults unless their *Set flag marks them as
// explicitly zero. FlowConfig.resolve delegates here with no flags
// raised, so a session built only from options expressible in FlowConfig
// resolves to the identical configuration — the bit-identity bridge the
// v1 shims and the equivalence suite rely on.
func (sc sessionConfig) resolved() FlowConfig {
	f := sc.cfg
	if f.AreaConRatio == 0 && !sc.areaConSet {
		f.AreaConRatio = 1.0
	}
	if f.DepthWeight == 0 && !sc.depthWeightSet {
		f.DepthWeight = 0.8
	}
	if f.Seed == 0 && !sc.seedSet {
		f.Seed = 1
	}
	pop, iters, vecs := 10, 8, 2048
	if f.Scale == ScalePaper {
		pop, iters, vecs = 30, 20, 1<<17
	}
	if f.Population == 0 {
		f.Population = pop
	}
	if f.Iterations == 0 {
		f.Iterations = iters
	}
	if f.Vectors == 0 {
		f.Vectors = vecs
	}
	return f
}

// WithMetric sets the constrained error measure (default MetricER).
func WithMetric(m Metric) Option {
	return func(sc *sessionConfig) error {
		if m != MetricER && m != MetricNMED {
			return fmt.Errorf("als: unknown metric %v", m)
		}
		sc.cfg.Metric = m
		return nil
	}
}

// WithErrorBudget sets the error constraint (e.g. 0.05 for a 5% ER).
func WithErrorBudget(budget float64) Option {
	return func(sc *sessionConfig) error {
		if budget < 0 {
			return fmt.Errorf("als: negative error budget %v", budget)
		}
		sc.cfg.ErrorBudget = budget
		return nil
	}
}

// WithMethod picks the optimizer (default MethodDCGWO, the paper's
// contribution).
func WithMethod(m Method) Option {
	return func(sc *sessionConfig) error {
		known := false
		for _, k := range AllMethods() {
			if m == k {
				known = true
			}
		}
		if !known {
			return fmt.Errorf("als: unknown method %v", m)
		}
		sc.cfg.Method = m
		return nil
	}
}

// WithScale presets population/iterations/vectors (default ScaleQuick);
// the individual overrides below win over the preset.
func WithScale(s Scale) Option {
	return func(sc *sessionConfig) error {
		if s != ScaleQuick && s != ScalePaper {
			return fmt.Errorf("als: unknown scale %v", s)
		}
		sc.cfg.Scale = s
		return nil
	}
}

// WithDepthWeight sets wd, the fitness weight of the delay objective
// (default the paper's 0.8). Zero is a legal, meaningful setting — the
// pure-area fitness of the paper's Fig. 6 sweep origin — which the legacy
// FlowConfig could not express.
func WithDepthWeight(wd float64) Option {
	return func(sc *sessionConfig) error {
		if wd < 0 || wd > 1 {
			return fmt.Errorf("als: depth weight %v outside [0, 1]", wd)
		}
		sc.cfg.DepthWeight = wd
		sc.depthWeightSet = true
		return nil
	}
}

// WithAreaConRatio scales the post-optimization area budget relative to
// the accurate circuit's area (default 1.0, the paper's TABLE II/III
// setting). Zero is legal: it forces post-optimization to shrink the
// netlist as far as the cell library allows.
func WithAreaConRatio(ratio float64) Option {
	return func(sc *sessionConfig) error {
		if ratio < 0 {
			return fmt.Errorf("als: area constraint ratio %v must be >= 0", ratio)
		}
		sc.cfg.AreaConRatio = ratio
		sc.areaConSet = true
		return nil
	}
}

// WithSeed fixes all stochastic choices (default 1). Unlike the legacy
// FlowConfig, seed 0 is a real seed, not a request for the default.
func WithSeed(seed int64) Option {
	return func(sc *sessionConfig) error {
		sc.cfg.Seed = seed
		sc.seedSet = true
		return nil
	}
}

// WithPopulation overrides the scale preset's population size.
func WithPopulation(n int) Option {
	return func(sc *sessionConfig) error {
		if n < 5 {
			return fmt.Errorf("als: population %d < 5 (need leader + 3 elite + ω)", n)
		}
		sc.cfg.Population = n
		return nil
	}
}

// WithIterations overrides the scale preset's iteration/round budget.
func WithIterations(n int) Option {
	return func(sc *sessionConfig) error {
		if n < 1 {
			return fmt.Errorf("als: iterations %d must be positive", n)
		}
		sc.cfg.Iterations = n
		return nil
	}
}

// WithVectors overrides the scale preset's Monte-Carlo sample size.
func WithVectors(n int) Option {
	return func(sc *sessionConfig) error {
		if n < 64 {
			return fmt.Errorf("als: need at least 64 simulation vectors, got %d", n)
		}
		sc.cfg.Vectors = n
		return nil
	}
}

// WithEvalWorkers caps the candidate-evaluation worker pool (default
// GOMAXPROCS). Evaluation is pure, so the cap changes scheduling only —
// never results; schedulers running several sessions concurrently set it
// so nested pools don't oversubscribe the machine.
func WithEvalWorkers(n int) Option {
	return func(sc *sessionConfig) error {
		if n < 0 {
			return fmt.Errorf("als: eval workers %d must be >= 0", n)
		}
		sc.cfg.EvalWorkers = n
		return nil
	}
}

// WithTopK caps how many solutions the session's Front carries (default
// DefaultTopK). The front is the non-dominated set truncated to its K
// fittest members before post-optimization.
func WithTopK(k int) Option {
	return func(sc *sessionConfig) error {
		if k < 1 {
			return fmt.Errorf("als: top-K %d must be >= 1", k)
		}
		sc.topK = k
		return nil
	}
}
