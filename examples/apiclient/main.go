// Apiclient drives a running alsd daemon end to end: it submits a flow
// (a named benchmark by default, or an uploaded structural-Verilog file
// with -verilog), streams the optimizer's live progress, prints the
// result, and demonstrates the dedup cache by resubmitting the identical
// request.
//
// It imports service.Request/service.JobView for the wire types so the
// example can never drift from the daemon's JSON contract; an out-of-tree
// client would declare the same structs from the README's API reference.
//
// Start the daemon, then run the client:
//
//	go run ./cmd/alsd -addr :8080 -store /tmp/alsd.jsonl
//	go run ./examples/apiclient -addr http://localhost:8080 \
//	    -circuit Adder16 -metric nmed -budget 0.0244
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"time"

	"repro/internal/service"
)

func main() {
	var (
		addr    = flag.String("addr", "http://localhost:8080", "alsd base URL")
		circuit = flag.String("circuit", "Adder16", "benchmark name")
		verilog = flag.String("verilog", "", "path to a structural-Verilog netlist (overrides -circuit)")
		method  = flag.String("method", "dcgwo", "optimizer method")
		metric  = flag.String("metric", "nmed", "error metric: er|nmed")
		budget  = flag.Float64("budget", 0.0244, "error budget")
		scale   = flag.String("scale", "quick", "run scale: quick|paper")
		seed    = flag.Int64("seed", 1, "random seed")
	)
	flag.Parse()

	req := service.Request{Method: *method, Metric: *metric, Budget: *budget, Scale: *scale, Seed: *seed}
	if *verilog != "" {
		src, err := os.ReadFile(*verilog)
		if err != nil {
			log.Fatal(err)
		}
		req.Verilog = string(src)
	} else {
		req.Circuit = *circuit
	}

	first := submit(*addr, req)
	fmt.Printf("submitted: job %s (%s, cached=%v)\n", first.ID, first.Status, first.Cached)

	// Poll until terminal, printing progress as it moves.
	lastIter := -1
	v := first
	for v.Status == service.StatusQueued || v.Status == service.StatusRunning {
		time.Sleep(100 * time.Millisecond)
		v = fetch(*addr + "/v1/flows/" + first.ID)
		if p := v.Progress; p != nil && p.Iter != lastIter {
			lastIter = p.Iter
			fmt.Printf("  iter %d/%d  best Ratio_cpd so far %.4f\n", p.Iter, p.Total, p.BestRatioCPD)
		}
	}
	if v.Status != service.StatusDone {
		log.Fatalf("job ended %s: %s", v.Status, v.Error)
	}
	fmt.Printf("done: Ratio_cpd = %.4f, err = %.5g, %d evaluations, %v\n",
		v.Result.RatioCPD, v.Result.Err, v.Result.Evaluations,
		time.Duration(v.Result.RuntimeNS).Round(time.Millisecond))

	// An identical resubmission is answered from cache, no recomputation.
	again := submit(*addr, req)
	fmt.Printf("resubmitted: job %s answered immediately (status %s, cached=%v)\n",
		again.ID, again.Status, again.Cached)
}

func submit(addr string, req service.Request) service.JobView {
	body, err := json.Marshal(req)
	if err != nil {
		log.Fatal(err)
	}
	resp, err := http.Post(addr+"/v1/flows", "application/json", bytes.NewReader(body))
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 400 {
		var e struct {
			Error string `json:"error"`
		}
		json.NewDecoder(resp.Body).Decode(&e) //nolint:errcheck
		log.Fatalf("submit failed (%s): %s", resp.Status, e.Error)
	}
	var v service.JobView
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		log.Fatal(err)
	}
	return v
}

func fetch(url string) service.JobView {
	resp, err := http.Get(url)
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	var v service.JobView
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		log.Fatal(err)
	}
	return v
}
