// Apiclient drives a running alsd daemon end to end over the /v2 API: it
// submits a flow (a named benchmark by default, or an uploaded
// structural-Verilog file with -verilog), consumes the job's live
// Server-Sent Events stream (per-iteration progress and every improved
// solution — no polling), prints the result with its delay/error/area
// trade-off front, and demonstrates the dedup cache by resubmitting the
// identical request. Pass -v1 to run the same scenario over the legacy
// polling API instead.
//
// It imports service.Request/service.JobViewV2 for the wire types so the
// example can never drift from the daemon's JSON contract; an out-of-tree
// client would declare the same structs from the README's API reference.
//
// Start the daemon, then run the client:
//
//	go run ./cmd/alsd -addr :8080 -store /tmp/alsd.jsonl
//	go run ./examples/apiclient -addr http://localhost:8080 \
//	    -circuit Adder16 -metric nmed -budget 0.0244
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"strings"
	"time"

	"repro/internal/service"
)

func main() {
	var (
		addr    = flag.String("addr", "http://localhost:8080", "alsd base URL")
		circuit = flag.String("circuit", "Adder16", "benchmark name")
		verilog = flag.String("verilog", "", "path to a structural-Verilog netlist (overrides -circuit)")
		method  = flag.String("method", "dcgwo", "optimizer method")
		metric  = flag.String("metric", "nmed", "error metric: er|nmed")
		budget  = flag.Float64("budget", 0.0244, "error budget")
		scale   = flag.String("scale", "quick", "run scale: quick|paper")
		seed    = flag.Int64("seed", 1, "random seed")
		useV1   = flag.Bool("v1", false, "use the legacy /v1 polling API instead of /v2 SSE")
	)
	flag.Parse()

	req := service.Request{Method: *method, Metric: *metric, Budget: *budget, Scale: *scale, Seed: *seed}
	if *verilog != "" {
		src, err := os.ReadFile(*verilog)
		if err != nil {
			log.Fatal(err)
		}
		req.Verilog = string(src)
	} else {
		req.Circuit = *circuit
	}

	if *useV1 {
		runV1(*addr, req)
		return
	}

	first := submit(*addr, req)
	fmt.Printf("submitted: job %s (%s, cached=%v)\n", first.ID, first.Status, first.Cached)

	// One SSE connection replaces the whole polling loop: the stream ends
	// with a terminal event carrying the full job view.
	final := first
	if !first.terminalLike() {
		final = stream(*addr, first.ID)
	}
	if final.Status != service.StatusDone {
		log.Fatalf("job ended %s: %s", final.Status, final.Error)
	}
	fmt.Printf("done: Ratio_cpd = %.4f, err = %.5g, %d evaluations, %v\n",
		final.Result.RatioCPD, final.Result.Err, final.Result.Evaluations,
		time.Duration(final.Result.RuntimeNS).Round(time.Millisecond))
	fmt.Printf("front (%d solutions):\n", len(final.Front))
	for i, sol := range final.Front {
		fmt.Printf("  #%d Ratio_cpd=%.4f err=%.5g area=%.2f\n", i, sol.RatioCPD, sol.Err, sol.Area)
	}

	// An identical resubmission is answered from cache, no recomputation.
	again := submit(*addr, req)
	fmt.Printf("resubmitted: job %s answered immediately (status %s, cached=%v)\n",
		again.ID, again.Status, again.Cached)
}

func submit(addr string, req service.Request) submittedJob {
	body, err := json.Marshal(req)
	if err != nil {
		log.Fatal(err)
	}
	resp, err := http.Post(addr+"/v2/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 400 {
		var e service.ErrorBody
		json.NewDecoder(resp.Body).Decode(&e) //nolint:errcheck
		log.Fatalf("submit failed (%s): [%s] %s", resp.Status, e.Error.Code, e.Error.Message)
	}
	var v submittedJob
	if err := json.NewDecoder(resp.Body).Decode(&v.JobViewV2); err != nil {
		log.Fatal(err)
	}
	return v
}

type submittedJob struct {
	service.JobViewV2
}

func (v submittedJob) terminalLike() bool {
	return v.Status == service.StatusDone || v.Status == service.StatusFailed || v.Status == service.StatusCancelled
}

// stream consumes the job's SSE feed, printing progress and improved
// solutions, and returns the terminal job view the stream ends with.
func stream(addr, id string) submittedJob {
	resp, err := http.Get(addr + "/v2/jobs/" + id + "/events")
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		log.Fatalf("events stream failed: %s", resp.Status)
	}
	var event, data string
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "event: "):
			event = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			data = strings.TrimPrefix(line, "data: ")
		case line == "":
			switch event {
			case service.EventTypeProgress:
				var p service.Progress
				if err := json.Unmarshal([]byte(data), &p); err == nil {
					fmt.Printf("  iter %d/%d  best Ratio_cpd so far %.4f\n", p.Iter, p.Total, p.BestRatioCPD)
				}
			case service.EventTypeSolution:
				var s service.SolutionView
				if err := json.Unmarshal([]byte(data), &s); err == nil {
					fmt.Printf("  improved -> Ratio_cpd <= %.4f err=%.5g area=%.2f\n", s.RatioCPD, s.Err, s.Area)
				}
			case string(service.StatusDone), string(service.StatusFailed), string(service.StatusCancelled):
				var v submittedJob
				if err := json.Unmarshal([]byte(data), &v.JobViewV2); err != nil {
					log.Fatal(err)
				}
				return v
			}
			event, data = "", ""
		}
	}
	log.Fatalf("events stream ended without a terminal event: %v", sc.Err())
	return submittedJob{}
}

// runV1 is the original polling scenario, kept runnable against the
// compatibility surface.
func runV1(addr string, req service.Request) {
	body, err := json.Marshal(req)
	if err != nil {
		log.Fatal(err)
	}
	resp, err := http.Post(addr+"/v1/flows", "application/json", bytes.NewReader(body))
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 400 {
		var e struct {
			Error string `json:"error"`
		}
		json.NewDecoder(resp.Body).Decode(&e) //nolint:errcheck
		log.Fatalf("submit failed (%s): %s", resp.Status, e.Error)
	}
	var first service.JobView
	if err := json.NewDecoder(resp.Body).Decode(&first); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("submitted: job %s (%s, cached=%v)\n", first.ID, first.Status, first.Cached)

	lastIter := -1
	v := first
	for v.Status == service.StatusQueued || v.Status == service.StatusRunning {
		time.Sleep(100 * time.Millisecond)
		v = fetchV1(addr + "/v1/flows/" + first.ID)
		if p := v.Progress; p != nil && p.Iter != lastIter {
			lastIter = p.Iter
			fmt.Printf("  iter %d/%d  best Ratio_cpd so far %.4f\n", p.Iter, p.Total, p.BestRatioCPD)
		}
	}
	if v.Status != service.StatusDone {
		log.Fatalf("job ended %s: %s", v.Status, v.Error)
	}
	fmt.Printf("done: Ratio_cpd = %.4f, err = %.5g, %d evaluations, %v\n",
		v.Result.RatioCPD, v.Result.Err, v.Result.Evaluations,
		time.Duration(v.Result.RuntimeNS).Round(time.Millisecond))
}

func fetchV1(url string) service.JobView {
	resp, err := http.Get(url)
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	var v service.JobView
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		log.Fatal(err)
	}
	return v
}
