// Metricswatch is a minimal operational dashboard for a running alsd: it
// scrapes GET /metrics on an interval, parses the Prometheus text
// exposition with the same internal/telemetry parser the repo's tests
// use, and prints one status line per tick — queue depth, running and
// completed jobs, evaluation throughput (derived from successive scrapes)
// and the evaluation-cache hit rate.
//
// It is the scraping side of docs/OPERATIONS.md in ~100 lines: everything
// a real Prometheus would ingest is plain text a loop and a parser can
// consume.
//
// Start a daemon and some load, then watch:
//
//	go run ./cmd/alsd -addr :8080 -store /tmp/alsd.jsonl
//	go run ./cmd/loadgen -targets http://localhost:8080 -sessions 50
//	go run ./examples/metricswatch -addr http://localhost:8080 -interval 2s
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"strings"
	"time"

	"repro/internal/telemetry"
)

func main() {
	var (
		addr     = flag.String("addr", "http://localhost:8080", "alsd base URL")
		interval = flag.Duration("interval", 2*time.Second, "scrape interval")
		count    = flag.Int("count", 0, "number of scrapes (0 = forever)")
	)
	flag.Parse()
	log.SetFlags(0)
	base := *addr
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}

	var prevEvals, prevT float64
	for i := 0; *count == 0 || i < *count; i++ {
		if i > 0 {
			time.Sleep(*interval)
		}
		m, err := scrape(base + "/metrics")
		if err != nil {
			log.Printf("scrape: %v", err)
			continue
		}

		now := float64(time.Now().UnixNano()) / 1e9
		evalsPerSec := 0.0
		if prevT != 0 && now > prevT {
			evalsPerSec = (m["als_evaluations_total"] - prevEvals) / (now - prevT)
		}
		prevEvals, prevT = m["als_evaluations_total"], now

		hitRate := 0.0
		if lookups := m["als_evalcache_lookups_total"]; lookups > 0 {
			hitRate = (m["als_evalcache_hits_total"] + m["als_evalcache_composed_total"]) / lookups
		}

		fmt.Printf("queue=%-3.0f running=%-2.0f done=%-5.0f failed=%-3.0f sse=%-3.0f evals/s=%-10.0f cache-hit=%5.1f%% store-hits=%.0f/%.0f\n",
			m["als_queue_depth"],
			m["als_jobs_running"],
			m[`als_jobs_completed_total{status="done"}`],
			m[`als_jobs_completed_total{status="failed"}`],
			m["als_sse_subscribers"],
			evalsPerSec,
			100*hitRate,
			m["als_store_hits_total"], m["als_store_gets_total"])
	}
	os.Exit(0)
}

// scrape fetches and parses one exposition.
func scrape(url string) (map[string]float64, error) {
	resp, err := http.Get(url)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("GET %s: HTTP %d", url, resp.StatusCode)
	}
	return telemetry.Parse(resp.Body)
}
