// adder_nmed: the paper's arithmetic scenario — approximate a 16-bit
// adder under a sweep of NMED constraints and write the loosest-budget
// approximate netlist as structural Verilog.
//
// Run with:
//
//	go run ./examples/adder_nmed
package main

import (
	"fmt"
	"log"
	"os"

	als "repro"
)

func main() {
	lib := als.NewLibrary()

	fmt.Println("Adder16 under NMED constraints (Fig. 7(b) trend):")
	var last *als.FlowResult
	for _, budget := range []float64{0.0048, 0.0098, 0.0147, 0.0196, 0.0244} {
		res, err := als.Flow(als.Benchmark("Adder16"), lib, als.FlowConfig{
			Metric:      als.MetricNMED,
			ErrorBudget: budget,
			Scale:       als.ScaleQuick,
			Seed:        11,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  NMED <= %5.2f%%: Ratio_cpd = %.4f, area %.2f -> %.2f, err %.5f\n",
			budget*100, res.RatioCPD, res.AreaOri, res.AreaFinal, res.Err)
		last = res
	}

	// The final netlist round-trips through the Verilog subset — the
	// artifact a downstream flow would consume.
	src := als.WriteVerilog(last.Final)
	path := "adder16_approx.v"
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		log.Fatal(err)
	}
	reparsed, err := als.ParseVerilog(src)
	if err != nil {
		log.Fatalf("round-trip failed: %v", err)
	}
	fmt.Printf("\nwrote %s (%d gates, re-parsed OK with %d POs)\n",
		path, last.Final.NumPhysical(), len(reparsed.POs))
}
