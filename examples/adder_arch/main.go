// adder_arch: architecture study — how much timing ALS can recover
// depends on the adder micro-architecture it starts from. A ripple chain
// has one deep critical path (LACs on it are error-expensive); a prefix
// tree exposes many shallow paths. This example runs DCGWO on the same
// 32-bit addition implemented three ways.
//
// Run with:
//
//	go run ./examples/adder_arch
package main

import (
	"fmt"
	"log"

	als "repro"
	"repro/internal/gen"
	"repro/internal/sta"
)

func main() {
	lib := als.NewLibrary()
	fmt.Println("32-bit adder under 2.44% NMED, by micro-architecture:")
	fmt.Printf("%-14s %7s %7s %10s %10s %10s\n",
		"architecture", "gates", "depth", "CPDori", "CPDfac", "Ratio_cpd")
	for _, arch := range gen.Arches() {
		c := gen.AdderArch(32, arch)
		rep, err := sta.Analyze(c, lib)
		if err != nil {
			log.Fatal(err)
		}
		res, err := als.Flow(c, lib, als.FlowConfig{
			Metric:      als.MetricNMED,
			ErrorBudget: 0.0244,
			Scale:       als.ScaleQuick,
			Seed:        17,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-14s %7d %7d %10.1f %10.1f %10.4f\n",
			arch, c.NumPhysical(), rep.MaxDepth, res.CPDOri, res.CPDFac, res.RatioCPD)
	}
	fmt.Println("\nThe prefix adder starts fastest; the ripple adder has the most")
	fmt.Println("to gain but every critical-path LAC on its carry chain is")
	fmt.Println("error-expensive — the trade-off the paper's TABLE III circuits exhibit.")
}
