// Paretofront demonstrates the als/v2 session API: it streams a DCGWO
// run live (per-iteration progress on one line, every improved solution
// as the optimizer finds it) and then walks the returned delay/error/area
// trade-off front — the multi-solution view the paper's population
// optimizer naturally produces, which the legacy single-result Flow call
// hid.
//
//	go run ./examples/paretofront
//	go run ./examples/paretofront -bench Max16 -budget 0.03 -topk 5
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
)

import als "repro"

func main() {
	var (
		bench  = flag.String("bench", "Adder16", "benchmark name")
		budget = flag.Float64("budget", 0.0244, "NMED budget")
		topk   = flag.Int("topk", 4, "front size cap")
		seed   = flag.Int64("seed", 1, "random seed")
	)
	flag.Parse()

	circuit, err := als.BenchmarkByName(*bench)
	if err != nil {
		log.Fatal(err)
	}
	sess, err := als.NewSession(circuit, als.NewLibrary(),
		als.WithMetric(als.MetricNMED),
		als.WithErrorBudget(*budget),
		als.WithSeed(*seed),
		als.WithTopK(*topk),
	)
	if err != nil {
		log.Fatal(err)
	}

	var front als.Front
	var result *als.FlowResult
	for ev, err := range sess.Run(context.Background()) {
		if err != nil {
			log.Fatal(err)
		}
		switch ev.Kind {
		case als.EventProgress:
			fmt.Printf("iter %2d/%d: best Ratio_cpd <= %.4f (err %.5f, %d evaluations)\n",
				ev.Progress.Iter, ev.Progress.Total, ev.Progress.BestRatioCPD,
				ev.Progress.BestErr, ev.Progress.Evaluations)
		case als.EventImproved:
			fmt.Printf("  improved -> Ratio_cpd <= %.4f err=%.5f area=%.2f\n",
				ev.Solution.RatioCPD, ev.Solution.Err, ev.Solution.Area)
		case als.EventDone:
			result, front = ev.Result, ev.Front
		}
	}

	fmt.Printf("\nbest: Ratio_cpd = %.4f at err %.5f (area %.2f/%.2f um2)\n",
		result.RatioCPD, result.Err, result.AreaFinal, result.AreaCon)
	fmt.Printf("\ntrade-off front (%d solutions):\n%s", len(front), front)

	// The front is a plain slice, so a caller can trivially pick by any
	// policy — e.g. the tightest-error solution instead of the fastest.
	tightest, ok := front.Within(*budget / 2).Best()
	if ok {
		fmt.Printf("\nfastest solution within half the budget: Ratio_cpd = %.4f (err %.5f)\n",
			tightest.RatioCPD, tightest.Err)
	} else {
		fmt.Printf("\nno solution within half the budget (%g)\n", *budget/2)
	}
}
