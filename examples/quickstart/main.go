// Quickstart: the three-step flow of the paper on a 16-bit adder.
//
// Run with:
//
//	go run ./examples/quickstart
//
// It generates the Adder16 benchmark, runs DCGWO under a 2.44% NMED
// constraint, post-optimizes under the accurate circuit's area, and prints
// the paper's reporting metrics plus the convergence trace.
package main

import (
	"fmt"
	"log"

	als "repro"
)

func main() {
	lib := als.NewLibrary()
	circuit := als.Benchmark("Adder16")

	res, err := als.Flow(circuit, lib, als.FlowConfig{
		Metric:      als.MetricNMED,
		ErrorBudget: 0.0244,
		Method:      als.MethodDCGWO,
		Scale:       als.ScaleQuick,
		Seed:        42,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("Adder16 under NMED <= 2.44%%\n")
	fmt.Printf("  CPD:   %8.2f ps -> %8.2f ps  (Ratio_cpd = %.4f)\n", res.CPDOri, res.CPDFac, res.RatioCPD)
	fmt.Printf("  area:  %8.2f    -> %8.2f um2 (budget %.2f)\n", res.AreaOri, res.AreaFinal, res.AreaCon)
	fmt.Printf("  NMED:  %.5f\n", res.Err)
	fmt.Printf("  time:  %v, %d circuit evaluations\n\n", res.Runtime, res.Evaluations)

	fmt.Println("DCGWO convergence (best fitness per iteration):")
	for _, h := range res.History {
		fmt.Printf("  iter %2d: fit %.4f, delay %7.2f ps, area %6.2f, err %.5f (allowed %.5f)\n",
			h.Iter, h.BestFit, h.BestDelay, h.BestArea, h.BestErr, h.ErrAllowed)
	}
}
