// sweep_weights: the paper's Fig. 6 parameter study — how the fitness
// depth weight wd trades critical-path depth against area, and why the
// paper settles on wd = 0.8.
//
// Run with:
//
//	go run ./examples/sweep_weights
package main

import (
	"fmt"
	"log"

	als "repro"
)

func main() {
	lib := als.NewLibrary()
	weights := []float64{1e-9, 0.2, 0.4, 0.6, 0.8, 1.0} // 1e-9 stands for wd = 0

	fmt.Println("Max16 under 2.44% NMED: Ratio_cpd vs depth weight wd")
	bestW, bestR := 0.0, 2.0
	for _, wd := range weights {
		res, err := als.Flow(als.Benchmark("Max16"), lib, als.FlowConfig{
			Metric:      als.MetricNMED,
			ErrorBudget: 0.0244,
			DepthWeight: wd,
			Scale:       als.ScaleQuick,
			Seed:        13,
		})
		if err != nil {
			log.Fatal(err)
		}
		shown := wd
		if wd < 1e-6 {
			shown = 0
		}
		fmt.Printf("  wd = %.1f: Ratio_cpd = %.4f (area %.2f, err %.5f)\n",
			shown, res.RatioCPD, res.AreaFinal, res.Err)
		if res.RatioCPD < bestR {
			bestW, bestR = shown, res.RatioCPD
		}
	}
	fmt.Printf("\nbest wd on this run: %.1f (Ratio_cpd %.4f) — the paper reports 0.8\n", bestW, bestR)
}
