// alu_er: the paper's random/control scenario — approximate an 8-bit ALU
// (the c880 stand-in) under error-rate constraints, comparing all five
// optimizers of TABLE II on an identical substrate.
//
// Run with:
//
//	go run ./examples/alu_er
package main

import (
	"fmt"
	"log"

	als "repro"
)

func main() {
	lib := als.NewLibrary()

	fmt.Println("c880 (8-bit ALU) under 5% ER, post-optimization at 1.0x area")
	fmt.Printf("%-20s %10s %10s %10s %12s\n", "method", "Ratio_cpd", "ER", "area", "runtime")
	for _, method := range als.AllMethods() {
		res, err := als.Flow(als.Benchmark("c880"), lib, als.FlowConfig{
			Metric:      als.MetricER,
			ErrorBudget: 0.05,
			Method:      method,
			Scale:       als.ScaleQuick,
			Seed:        7,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-20s %10.4f %10.4f %10.2f %12v\n",
			method.String(), res.RatioCPD, res.Err, res.AreaFinal, res.Runtime)
	}

	// Tightening the constraint leaves less approximation headroom —
	// the trend of the paper's Fig. 7(a).
	fmt.Println("\nDCGWO across ER constraints (Fig. 7(a) trend):")
	for _, budget := range []float64{0.01, 0.02, 0.03, 0.04, 0.05} {
		res, err := als.Flow(als.Benchmark("c880"), lib, als.FlowConfig{
			Metric:      als.MetricER,
			ErrorBudget: budget,
			Scale:       als.ScaleQuick,
			Seed:        7,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  ER <= %4.1f%%: Ratio_cpd = %.4f (err %.4f)\n", budget*100, res.RatioCPD, res.Err)
	}
}
