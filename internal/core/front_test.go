package core

import "testing"

// TestFeasibleFrontRetainsDominatedBest pins the contract that the
// reported best individual is always part of the front. At the
// degenerate fitness weights (DepthWeight 0 or 1) an equal-fitness
// member can strictly Pareto-dominate the best — e.g. under the
// pure-area fitness, equal area but strictly lower delay — and the
// Pareto filter alone would drop it.
func TestFeasibleFrontRetainsDominatedBest(t *testing.T) {
	// Equal area ⇒ equal pure-area fitness; the dominator is strictly
	// faster, so it dominates best on (fd, fa).
	best := &Individual{Delay: 10, Area: 5, Err: 0.01, Fit: 2}
	dominator := &Individual{Delay: 8, Area: 5, Err: 0.02, Fit: 2}
	front := FeasibleFront(best, []*Individual{dominator}, 0.05, 10, 10)
	hasBest, hasDominator := false, false
	for _, ind := range front {
		hasBest = hasBest || ind == best
		hasDominator = hasDominator || ind == dominator
	}
	if !hasBest {
		t.Error("front dropped the reported best individual")
	}
	if !hasDominator {
		t.Error("front dropped the dominating individual")
	}
}

func TestFeasibleFrontFiltersAndDedups(t *testing.T) {
	best := &Individual{Delay: 10, Area: 5, Err: 0.01, Fit: 2}
	overBudget := &Individual{Delay: 1, Area: 1, Err: 0.5, Fit: 9}
	duplicate := &Individual{Delay: 10, Area: 5, Err: 0.01, Fit: 2}
	front := FeasibleFront(best, []*Individual{overBudget, duplicate, nil}, 0.05, 10, 10)
	if len(front) != 1 || front[0] != best {
		t.Errorf("front = %v, want exactly the best individual", front)
	}
	if got := FeasibleFront(nil, nil, 0.05, 10, 10); len(got) != 0 {
		t.Errorf("empty input produced %v", got)
	}
}
