package core

import (
	"sort"

	"repro/internal/netlist"
)

// Reproduce exposes circuit reproduction to the baseline optimizers (the
// VaACS genetic baseline uses the same crossover mechanism). It returns
// nil when the parents have different gate ID spaces or the merge would be
// cyclic.
func Reproduce(p1, p2 *Individual, wt, we float64) *netlist.Circuit {
	return reproduce(p1, p2, wt, we)
}

// minPOErr floors the per-PO error in the Level function so error-free
// outputs get a large but finite bonus (the paper divides by Error(POi)).
const minPOErr = 1e-3

// levels computes the PO-TFI pair evaluation function of Eq. 3 for every
// primary output of an evaluated individual:
//
//	Level(POi) = wt·1/Ta(POi) + we·1/Error(POi)
func levels(ind *Individual, wt, we float64) []float64 {
	out := make([]float64, len(ind.POArrival))
	for i := range out {
		ta := ind.POArrival[i]
		if ta <= 0 {
			ta = 1e-9 // PO wired straight to a PI or constant
		}
		errI := ind.PerPO[i]
		if errI < minPOErr {
			errI = minPOErr
		}
		out[i] = wt/ta + we/errI
	}
	return out
}

// reproduce builds a child circuit by aggregating the better PO-TFI pairs
// of two evaluated parents (circuit reproduction, paper §III-B): for each
// PO the parent with the higher Level donates that PO's whole transitive
// fan-in adjacency; gates shared between pairs accept only the first
// write; untouched gates keep parent 1's adjacency. Because parents share
// the accurate circuit's gate ID space, the merge is a per-gate adjacency
// choice. Cross-parent merges can create combinational loops — unique
// gate IDs make the check cheap — and a cyclic merge returns nil so the
// caller can fall back.
func reproduce(p1, p2 *Individual, wt, we float64) *netlist.Circuit {
	c1, c2 := p1.Circuit, p2.Circuit
	if len(c1.Gates) != len(c2.Gates) || len(c1.POs) != len(c2.POs) {
		return nil // different ID spaces: not reproducible
	}
	l1 := levels(p1, wt, we)
	l2 := levels(p2, wt, we)

	type pick struct {
		po    int
		donor *netlist.Circuit
		level float64
	}
	picks := make([]pick, len(c1.POs))
	for i := range picks {
		picks[i] = pick{po: i, donor: c1, level: l1[i]}
		if l2[i] > l1[i] {
			picks[i] = pick{po: i, donor: c2, level: l2[i]}
		}
	}
	// Higher-Level pairs write first, so shared gates follow the better
	// cone (the paper's "first write-in" rule applied best-first).
	sort.Slice(picks, func(a, b int) bool { return picks[a].level > picks[b].level })

	child := c1.Clone()
	written := make([]bool, len(child.Gates))
	for _, pk := range picks {
		donor := pk.donor
		tfi := donor.TFI(donor.POs[pk.po])
		for id, in := range tfi {
			if !in || written[id] {
				continue
			}
			written[id] = true
			if donor == c1 {
				continue // scaffold already holds parent 1's adjacency
			}
			g := donor.Gates[id]
			g.Name = child.Gates[id].Name
			child.SetGate(id, g) // invalidates the cloned topology cache
		}
	}
	if _, err := child.TopoOrder(); err != nil {
		return nil
	}
	return child
}
