package core

import (
	"context"
	"errors"
	"testing"
)

// TestRunContextUncancelledIsBitIdentical checks that context plumbing
// and an installed progress hook change nothing: RunContext with a live
// context must reproduce Run exactly, and progress must mirror History.
func TestRunContextUncancelledIsBitIdentical(t *testing.T) {
	cfg := smallConfig(MetricER, 0.05)

	opt1, err := New(adder8(), lib, cfg)
	if err != nil {
		t.Fatal(err)
	}
	plain, err := opt1.Run()
	if err != nil {
		t.Fatal(err)
	}

	var seen []IterStats
	cfg.Progress = func(st IterStats) { seen = append(seen, st) }
	opt2, err := New(adder8(), lib, cfg)
	if err != nil {
		t.Fatal(err)
	}
	hooked, err := opt2.RunContext(context.Background())
	if err != nil {
		t.Fatal(err)
	}

	if plain.Best.Fit != hooked.Best.Fit || plain.Best.Err != hooked.Best.Err ||
		plain.Best.Delay != hooked.Best.Delay || plain.Evaluations != hooked.Evaluations {
		t.Errorf("RunContext diverged from Run: (%v %v %v %d) vs (%v %v %v %d)",
			hooked.Best.Fit, hooked.Best.Err, hooked.Best.Delay, hooked.Evaluations,
			plain.Best.Fit, plain.Best.Err, plain.Best.Delay, plain.Evaluations)
	}
	if len(seen) != len(hooked.History) {
		t.Fatalf("progress fired %d times, history has %d entries", len(seen), len(hooked.History))
	}
	for i, st := range seen {
		if st != hooked.History[i] {
			t.Errorf("progress[%d] = %+v != history %+v", i, st, hooked.History[i])
		}
	}
}

// TestRunContextCancelMidIteration cancels from the progress hook after
// two iterations and checks the run stops at the next iteration boundary
// with an error wrapping context.Canceled — and that a fresh uncancelled
// run is unaffected by the earlier cancellation (bit-identical results,
// the serving layer's rerun-after-cancel guarantee).
func TestRunContextCancelMidIteration(t *testing.T) {
	cfg := smallConfig(MetricNMED, 0.0244)

	ref, err := New(adder8(), lib, cfg)
	if err != nil {
		t.Fatal(err)
	}
	want, err := ref.Run()
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	iters := 0
	cfg.Progress = func(IterStats) {
		if iters++; iters == 2 {
			cancel()
		}
	}
	opt, err := New(adder8(), lib, cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := opt.RunContext(ctx)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled run returned (%v, %v), want context.Canceled", res, err)
	}
	if iters != 2 {
		t.Errorf("progress fired %d times after cancellation at iteration 2", iters)
	}

	// Rerun the same spec uncancelled: the result must match the
	// never-cancelled reference exactly.
	cfg.Progress = nil
	opt2, err := New(adder8(), lib, cfg)
	if err != nil {
		t.Fatal(err)
	}
	got, err := opt2.RunContext(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if got.Best.Fit != want.Best.Fit || got.Best.Err != want.Best.Err ||
		got.Evaluations != want.Evaluations {
		t.Errorf("rerun after cancel = (%v %v %d), want (%v %v %d)",
			got.Best.Fit, got.Best.Err, got.Evaluations,
			want.Best.Fit, want.Best.Err, want.Evaluations)
	}
}

// TestRunContextPreCancelled checks the pre-start guard.
func TestRunContextPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	opt, err := New(adder8(), lib, smallConfig(MetricER, 0.05))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := opt.RunContext(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}
