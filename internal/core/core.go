// Package core implements the paper's contribution: the double-chase grey
// wolf optimizer (DCGWO) for timing-driven approximate logic synthesis.
//
// DCGWO evolves a population of approximate circuits (clones of the
// accurate netlist mutated by LACs) to simultaneously minimize critical
// path delay and area under an ER or NMED constraint:
//
//   - Population division (Fig. 4): the best-fitness circuit is the
//     leader, ranks 2-4 are the elite group Ge, the rest form the ω group
//     Gω.
//   - Two approximate actions: circuit searching (similarity-guided LACs
//     on critical-path gates) and circuit reproduction (per-PO TFI
//     crossover scored by the Level function, Eq. 3).
//   - Per-hierarchy decision rules (Eqs. 4-7): the fitness distance D to
//     the guiding hierarchy, scaled by the GWO encircling coefficient
//     A = (2·r1 - 1)·a with a decaying 2 → 0, yields W; comparing W with
//     thresholds Se/Sω picks the action.
//   - Candidates (old ∪ new population) are filtered by the current
//     relaxed error constraint, non-dominated sorted on the depth/area
//     ratio objectives with crowding distance (Eq. 9), and the best N
//     survive.
//   - Asymptotic error relaxation: Err(iter) = b·iter² + Err0 grows
//     quadratically to the user budget, preventing an early rush to the
//     constraint boundary.
package core

import (
	"fmt"
	"runtime"
	"sync"

	"repro/internal/cell"
	"repro/internal/errest"
	"repro/internal/netlist"
	"repro/internal/sim"
	"repro/internal/sta"
)

// Metric selects which error measure constrains the optimization.
type Metric uint8

const (
	// MetricER constrains the error rate (random/control circuits).
	MetricER Metric = iota
	// MetricNMED constrains the normalized mean error distance
	// (arithmetic circuits).
	MetricNMED
)

// String names the metric as in the paper.
func (m Metric) String() string {
	if m == MetricER {
		return "ER"
	}
	return "NMED"
}

// Config holds every DCGWO parameter. The zero value is invalid; use
// DefaultConfig and override fields as needed.
type Config struct {
	// Metric is the constrained error measure.
	Metric Metric
	// ErrorBudget is the user-specified maximum error constraint
	// (e.g. 0.05 for a 5% ER).
	ErrorBudget float64
	// PopulationSize is N (paper: 30).
	PopulationSize int
	// MaxIter is Imax (paper: 20).
	MaxIter int
	// DepthWeight is wd in the fitness (Eq. 8; paper sweeps Fig. 6 and
	// settles on 0.8). The area weight is 1 - DepthWeight.
	DepthWeight float64
	// WeightErr is we in the Level function (paper: 0.1 under ER, 0.2
	// under NMED). WeightTa (wt) is fixed at 0.9·CPDori by the paper and
	// computed internally.
	WeightErr float64
	// EliteThreshold is Se, the decision threshold of the elite group.
	EliteThreshold float64
	// OmegaThreshold is Sω, the decision threshold of the ω group.
	OmegaThreshold float64
	// InitErrorFrac sets Err0, the starting error constraint, as a
	// fraction of ErrorBudget.
	InitErrorFrac float64
	// RelaxAt is the fraction of MaxIter at which the quadratic
	// relaxation reaches the full budget (the paper's "appropriate
	// empirical parameter b"); the constraint stays at the budget
	// afterwards.
	RelaxAt float64
	// InitLACs is how many random LACs seed each initial individual.
	InitLACs int
	// CritMargin widens the searching targets set to paths within this
	// fraction of the CPD.
	CritMargin float64
	// SearchTries is how many Tc samples one searching action considers
	// before applying the highest-similarity change (1 = the paper's
	// single random draw).
	SearchTries int
	// Vectors is the Monte-Carlo sample size (paper: 1e5).
	Vectors int
	// DisableReproduction replaces every reproduction action with a
	// searching action (ablation of the crossover operator).
	DisableReproduction bool
	// EvalWorkers caps the parallel-evaluation pool (0 = GOMAXPROCS).
	// Results are identical at any value; outer schedulers that shard
	// whole flows set it to avoid nested-pool oversubscription.
	EvalWorkers int
	// Progress, when non-nil, is invoked once per iteration with the
	// iteration's convergence stats (the same record appended to
	// Result.History). It is called from the optimization goroutine and
	// draws no randomness, so installing it never perturbs results; a
	// serving layer uses it to report live per-job progress and to decide
	// when to cancel.
	Progress func(IterStats)
	// OnImproved, when non-nil, is invoked from the optimization goroutine
	// every time the running best feasible individual improves — once for
	// the first feasible individual found (the accurate circuit always
	// qualifies) and again for every later fitness improvement under the
	// final error budget. Like Progress it draws no randomness, so
	// installing it never perturbs results; the streaming session API uses
	// it to surface improved solutions as they are found.
	OnImproved func(*Individual)
	// Seed makes the run reproducible.
	Seed int64
}

// DefaultConfig returns the paper's parameter setting for the given
// metric and budget.
func DefaultConfig(m Metric, budget float64) Config {
	we := 0.1
	if m == MetricNMED {
		we = 0.2
	}
	return Config{
		Metric:         m,
		ErrorBudget:    budget,
		PopulationSize: 30,
		MaxIter:        20,
		DepthWeight:    0.8,
		WeightErr:      we,
		EliteThreshold: 0.5,
		OmegaThreshold: 0.3,
		InitErrorFrac:  0.5,
		RelaxAt:        0.5,
		InitLACs:       2,
		CritMargin:     0.1,
		SearchTries:    4,
		Vectors:        1 << 14,
		Seed:           1,
	}
}

func (c *Config) validate() error {
	if c.ErrorBudget < 0 {
		return fmt.Errorf("core: negative error budget %v", c.ErrorBudget)
	}
	if c.PopulationSize < 5 {
		return fmt.Errorf("core: population size %d < 5 (need leader + 3 elite + ω)", c.PopulationSize)
	}
	if c.MaxIter < 1 {
		return fmt.Errorf("core: MaxIter must be positive")
	}
	if c.DepthWeight < 0 || c.DepthWeight > 1 {
		return fmt.Errorf("core: DepthWeight %v outside [0,1]", c.DepthWeight)
	}
	if c.Vectors < 64 {
		return fmt.Errorf("core: need at least 64 simulation vectors")
	}
	return nil
}

// Individual is one approximate circuit with its evaluation.
type Individual struct {
	// Circuit shares the accurate circuit's gate ID space (constants
	// pre-materialized), so reproduction can merge adjacency by ID.
	Circuit *netlist.Circuit
	// Fit is the fitness of Eq. 8.
	Fit float64
	// Delay is the critical path delay ("depth" term, obtained by STA).
	Delay float64
	// Depth is the logic depth in gate levels (reported alongside).
	Depth int
	// Area is the live area (accurate area minus dangling gates).
	Area float64
	// Err is the constrained error metric's value.
	Err float64
	// PerPO is the per-output error rate (for the Level function).
	PerPO []float64
	// POArrival is Ta per PO (for the Level function).
	POArrival []float64
}

// fd and fa are the two objectives of the non-dominated sort: the depth
// function Depthori/Depthapp and the area function Areaori/Areaapp
// (both maximized).
func (ind *Individual) fd(refDelay float64) float64 { return refDelay / ind.Delay }
func (ind *Individual) fa(refArea float64) float64  { return refArea / ind.Area }

// IterStats records one iteration for convergence reporting.
type IterStats struct {
	Iter        int
	BestFit     float64
	BestDelay   float64
	BestArea    float64
	BestErr     float64
	ErrAllowed  float64
	Evaluations int
	// Cache snapshots the evaluation cache's cumulative counters as of
	// this iteration, so per-iteration deltas (and trace spans) can show
	// where an iteration's evaluation time went.
	Cache CacheStats
}

// Result is the outcome of one DCGWO run.
type Result struct {
	// Best is the highest-fitness individual meeting the final budget.
	Best *Individual
	// Front is the feasible non-dominated subset of the final population
	// (plus Best) under the depth/area objectives — the delay/area
	// trade-off set the population explored, of which Best is the
	// single-fitness summary. It is assembled by FeasibleFront after the
	// optimization loop, so collecting it never perturbs the run.
	Front []*Individual
	// History holds per-iteration convergence stats.
	History []IterStats
	// Evaluations counts circuit evaluations performed.
	Evaluations int
	// Cache reports the evaluation cache's effectiveness over the run.
	Cache CacheStats
}

// Evaluator bundles the fixed evaluation context of one optimization run:
// the cell library, the error estimator bound to the accurate circuit, the
// error metric, the fitness depth weight, and the accurate circuit's
// reference delay/area. The baseline optimizers share it so every method
// is compared on an identical substrate (as in the paper's experiments).
//
// Candidates are simulated by the incremental fanout-cone engine
// (sim.Simulator) against the accurate circuit's cached golden waveforms,
// and error metrics are recomputed only for primary outputs whose cones
// were touched — both exact, so an Evaluator returns bit-identical
// Individuals to full re-simulation. EvaluateBatch fans independent
// candidates out to a GOMAXPROCS-bounded worker pool, one simulator arena
// per worker; evaluation is pure (no RNG, no shared mutable state), so
// batch results are deterministic and identical to serial evaluation.
type Evaluator struct {
	lib      *cell.Library
	est      *errest.Estimator
	base     *netlist.Circuit
	metric   Metric
	wd       float64
	refDelay float64
	refArea  float64
	count    int

	serial *sim.Simulator // simulator for serial Evaluate/Simulate calls

	// Generation-scoped evaluation reuse (see evalcache.go). pos and
	// fanouts mirror the base circuit's memoized topology; cacheEnabled is
	// read on every evaluation and must only be toggled between runs.
	pos          []int
	fanouts      [][]int
	cache        *evalCache
	cacheEnabled bool

	// reach memoizes per-gate static transitive-fanout bitsets for the
	// Evaluator's lifetime (they depend only on the base structure).
	reachMu      sync.Mutex
	reach        map[int][]uint64
	reachScratch []int

	// maxWorkers caps EvaluateBatch's pool (0 = GOMAXPROCS). Outer
	// schedulers that already parallelize across flows set it so nested
	// pools don't oversubscribe the machine.
	maxWorkers int

	poolMu sync.Mutex
	pool   []*sim.Simulator // recycled worker simulators for EvaluateBatch
}

// NewEvaluator simulates the accurate circuit on n sampled vectors and
// measures its reference timing and area. The accurate circuit must
// already have its constant gates materialized if population members will
// share its ID space.
func NewEvaluator(accurate *netlist.Circuit, lib *cell.Library, metric Metric,
	depthWeight float64, vectors *sim.Vectors) (*Evaluator, error) {

	est, err := errest.New(accurate, vectors)
	if err != nil {
		return nil, err
	}
	rep, err := sta.Analyze(accurate, lib)
	if err != nil {
		return nil, err
	}
	refDelay := rep.CPD
	if refDelay <= 0 {
		refDelay = 1 // degenerate PI→PO netlist: keep ratios finite
	}
	refArea := accurate.Area(lib)
	if refArea <= 0 {
		refArea = 1
	}
	serial, err := sim.NewSimulator(accurate, vectors, est.GoldenResult())
	if err != nil {
		return nil, err
	}
	pos, err := accurate.TopoPos()
	if err != nil {
		return nil, err
	}
	return &Evaluator{
		lib:          lib,
		est:          est,
		base:         accurate,
		metric:       metric,
		wd:           depthWeight,
		refDelay:     refDelay,
		refArea:      refArea,
		serial:       serial,
		pos:          pos,
		fanouts:      accurate.Fanouts(),
		cache:        newEvalCache(),
		cacheEnabled: true,
		reach:        make(map[int][]uint64),
	}, nil
}

// Lib returns the cell library of this evaluation context.
func (e *Evaluator) Lib() *cell.Library { return e.lib }

// Vectors returns the shared Monte-Carlo input sample.
func (e *Evaluator) Vectors() *sim.Vectors { return e.est.Vectors() }

// Metric returns the constrained error metric.
func (e *Evaluator) Metric() Metric { return e.metric }

// RefDelay returns CPDori of the accurate circuit.
func (e *Evaluator) RefDelay() float64 { return e.refDelay }

// RefArea returns Areaori of the accurate circuit.
func (e *Evaluator) RefArea() float64 { return e.refArea }

// Count returns how many circuit evaluations have been performed.
func (e *Evaluator) Count() int { return e.count }

// SetMaxWorkers caps EvaluateBatch's worker pool (0 restores the default,
// GOMAXPROCS). Evaluation is pure, so the cap changes scheduling only —
// never results.
func (e *Evaluator) SetMaxWorkers(n int) { e.maxWorkers = n }

// BeginGeneration marks a generation boundary of the driving optimizer:
// the evaluation cache drops all entries (candidates of past generations
// are no longer likely to recur) while its counters keep accumulating.
// Optimizers call it before seeding the initial population and once per
// generation; calling it never changes results, only reuse opportunity.
func (e *Evaluator) BeginGeneration() { e.cache.reset() }

// CacheStats snapshots the evaluation cache's cumulative counters.
func (e *Evaluator) CacheStats() CacheStats { return e.cache.stats() }

// SetCacheEnabled turns cross-candidate evaluation reuse off (or back on).
// Results are bit-identical either way — the switch exists so exactness
// tests can compare the two paths and benchmarks can measure the gap. It
// must not be toggled while evaluations are in flight.
func (e *Evaluator) SetCacheEnabled(on bool) { e.cacheEnabled = on }

// Simulate runs the incremental engine on a candidate sharing the base
// circuit's gate ID space, returning the full per-gate waveforms (exactly
// what a full sim.Run would produce). The result is backed by the
// Evaluator's serial simulator arena and is valid only until the next
// Simulate or Evaluate call; it does not count as a circuit evaluation.
func (e *Evaluator) Simulate(c *netlist.Circuit) (*sim.Result, error) {
	return e.serial.Simulate(c)
}

// Evaluate runs STA and error estimation on one circuit and fills an
// Individual.
func (e *Evaluator) Evaluate(c *netlist.Circuit) (*Individual, error) {
	ind, err := e.evaluateWith(e.serial, c)
	if err != nil {
		return nil, err
	}
	e.count++
	return ind, nil
}

// evaluateWith performs one pure candidate evaluation on the given
// simulator, reusing cached work from equal or overlapping candidates of
// the same generation when possible (see evalcache.go). Cache hits replay
// stored results of identical pure evaluations and misses store what they
// computed, so results are bit-identical at any hit pattern — which is
// what keeps batch evaluation order-independent even with a shared cache.
func (e *Evaluator) evaluateWith(s *sim.Simulator, c *netlist.Circuit) (*Individual, error) {
	if !e.cacheEnabled {
		e.cache.fallbacks.Add(1)
		return e.evaluateFresh(s, c)
	}
	simChanged, key, ok := e.candidateDiff(c, make([]byte, 0, 64))
	if !ok {
		e.cache.fallbacks.Add(1)
		return e.evaluateFresh(s, c)
	}
	e.cache.lookups.Add(1)
	if t := e.cache.getL1(key); t != nil {
		e.cache.hits.Add(1)
		return t.instantiate(c), nil
	}
	var m errest.Metrics
	composed := false
	if len(simChanged) >= 2 && e.est.ComposeOK() {
		// Provably independent change components: compose the candidate's
		// error metrics from per-component cone deltas, skipping both the
		// combined simulation and the touched-PO metric scan.
		if units := e.partitionChanged(simChanged); len(units) >= 2 {
			deltas := make([]*errest.PODelta, len(units))
			for i, unit := range units {
				d, err := e.unitDelta(s, c, unit)
				if err != nil {
					return nil, err
				}
				deltas[i] = d
			}
			m = errest.ComposeMetrics(e.est, deltas)
			e.cache.composed.Add(1)
			composed = true
		}
	}
	if !composed {
		// Single (or overlapping) change component: the plain incremental
		// path, reusing the diff the key scan already computed.
		res, err := s.IncrementalRun(c, simChanged)
		if err != nil {
			return nil, err
		}
		m, err = e.est.MetricsDelta(c, res, s.SignalDiffers)
		if err != nil {
			return nil, err
		}
	}
	ind, err := e.finish(c, m)
	if err != nil {
		return nil, err
	}
	e.cache.putL1(key, templateOf(ind))
	return ind, nil
}

// evaluateFresh is the cache-ineligible evaluation: exactly the pre-reuse
// pipeline (diff, incremental simulation, touched-PO error estimation).
func (e *Evaluator) evaluateFresh(s *sim.Simulator, c *netlist.Circuit) (*Individual, error) {
	res, err := s.Simulate(c)
	if err != nil {
		return nil, err
	}
	m, err := e.est.MetricsDelta(c, res, s.SignalDiffers)
	if err != nil {
		return nil, err
	}
	return e.finish(c, m)
}

// unitDelta returns one change component's PO-level error delta, from the
// generation cache when an identical component was already evaluated (in
// any candidate), otherwise by an overlay cone simulation of just that
// component against the base circuit.
func (e *Evaluator) unitDelta(s *sim.Simulator, c *netlist.Circuit, unit []int) (*errest.PODelta, error) {
	key := make([]byte, 0, 32)
	for _, id := range unit {
		key = sim.AppendGateSig(key, id, &c.Gates[id])
	}
	if d := e.cache.getUnit(key); d != nil {
		e.cache.unitHits.Add(1)
		return d, nil
	}
	e.cache.unitMisses.Add(1)
	res, err := s.OverlayRun(c, unit)
	if err != nil {
		return nil, err
	}
	d, err := e.est.ExtractPODelta(c, res, s.SignalDiffers)
	if err != nil {
		return nil, err
	}
	e.cache.putUnit(key, d)
	return d, nil
}

// finish turns a candidate's error metrics into a full Individual: STA,
// area and the Eq. 8 fitness.
func (e *Evaluator) finish(c *netlist.Circuit, m errest.Metrics) (*Individual, error) {
	rep, err := sta.Analyze(c, e.lib)
	if err != nil {
		return nil, err
	}
	ind := &Individual{
		Circuit:   c,
		Delay:     rep.CPD,
		Depth:     rep.MaxDepth,
		Area:      c.Area(e.lib),
		PerPO:     m.PerPO,
		POArrival: append([]float64(nil), rep.POArrival...),
	}
	if e.metric == MetricER {
		ind.Err = m.ER
	} else {
		ind.Err = m.NMED
	}
	// Degenerate approximations (POs rewired to PIs/constants) reach zero
	// delay or area; floor both so fitness stays finite and comparable.
	delay, area := ind.Delay, ind.Area
	if delay <= 0 {
		delay = 1e-6
	}
	if area <= 0 {
		area = 1e-6
	}
	ind.Fit = e.wd*(e.refDelay/delay) + (1-e.wd)*(e.refArea/area)
	return ind, nil
}

// EvaluateBatch evaluates independent candidates on a worker pool and
// returns their Individuals in input order. Each worker owns a
// sim.Simulator (a preallocated arena bound to the accurate circuit's
// golden waveforms), workers are bounded by GOMAXPROCS, and evaluation is
// pure, so the results — and the evaluation count, bumped once by
// len(cs) — are bit-identical to evaluating the slice serially.
func (e *Evaluator) EvaluateBatch(cs []*netlist.Circuit) ([]*Individual, error) {
	out := make([]*Individual, len(cs))
	if len(cs) == 0 {
		return out, nil
	}
	workers := e.maxWorkers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(cs) {
		workers = len(cs)
	}
	if workers < 1 {
		workers = 1
	}
	// Borrow pooled simulators (rather than e.serial, even for one worker)
	// so a result an outer caller obtained from Simulate stays valid across
	// a batch regardless of GOMAXPROCS or batch size.
	sims := make([]*sim.Simulator, workers)
	for w := range sims {
		s, err := e.borrowSimulator()
		if err != nil {
			for _, prev := range sims[:w] {
				e.returnSimulator(prev)
			}
			return nil, err
		}
		sims[w] = s
	}
	defer func() {
		for _, s := range sims {
			e.returnSimulator(s)
		}
	}()
	err := ParallelFor(len(cs), workers, func(worker, i int) error {
		ind, err := e.evaluateWith(sims[worker], cs[i])
		if err != nil {
			return err
		}
		out[i] = ind
		return nil
	})
	if err != nil {
		return nil, err
	}
	e.count += len(cs)
	return out, nil
}

// borrowSimulator hands a worker an idle simulator, growing the pool on
// first use (the pool is unbounded, so a GOMAXPROCS raise between batches
// just grows it). Simulators live for the Evaluator's lifetime so their
// arenas amortize to zero allocation. Constructing one concurrently is
// safe: the serial simulator built in NewEvaluator already filled the
// base circuit's memoized topology/fanout caches, so workers only read
// them.
func (e *Evaluator) borrowSimulator() (*sim.Simulator, error) {
	e.poolMu.Lock()
	if n := len(e.pool); n > 0 {
		s := e.pool[n-1]
		e.pool = e.pool[:n-1]
		e.poolMu.Unlock()
		return s, nil
	}
	e.poolMu.Unlock()
	return sim.NewSimulator(e.base, e.est.Vectors(), e.est.GoldenResult())
}

func (e *Evaluator) returnSimulator(s *sim.Simulator) {
	e.poolMu.Lock()
	e.pool = append(e.pool, s)
	e.poolMu.Unlock()
}
