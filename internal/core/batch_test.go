package core

import (
	"math/rand"
	"runtime"
	"testing"
	"time"

	"repro/internal/netlist"
	"repro/internal/sim"
)

// lacMutate applies one loop-safe random rewire (TFI or constant switch).
func lacMutate(c *netlist.Circuit, rng *rand.Rand) {
	live := c.Live()
	var phys []int
	for id, g := range c.Gates {
		if live[id] && !g.Func.IsPseudo() {
			phys = append(phys, id)
		}
	}
	if len(phys) == 0 {
		return
	}
	target := phys[rng.Intn(len(phys))]
	tfi := c.TFI(target)
	var cands []int
	for id := range c.Gates {
		if tfi[id] && id != target && !c.Gates[id].Func.IsPseudo() {
			cands = append(cands, id)
		}
	}
	if len(cands) == 0 || rng.Intn(5) == 0 {
		c.ReplaceFanin(target, c.Const1())
		return
	}
	c.ReplaceFanin(target, cands[rng.Intn(len(cands))])
}

func individualsEqual(t *testing.T, what string, a, b *Individual) {
	t.Helper()
	if a.Fit != b.Fit || a.Delay != b.Delay || a.Depth != b.Depth ||
		a.Area != b.Area || a.Err != b.Err {
		t.Fatalf("%s: individuals differ:\n  %+v\n  %+v", what, a, b)
	}
	if len(a.PerPO) != len(b.PerPO) {
		t.Fatalf("%s: PerPO lengths differ", what)
	}
	for i := range a.PerPO {
		if a.PerPO[i] != b.PerPO[i] {
			t.Fatalf("%s: PerPO[%d] %v != %v", what, i, a.PerPO[i], b.PerPO[i])
		}
	}
	for i := range a.POArrival {
		if a.POArrival[i] != b.POArrival[i] {
			t.Fatalf("%s: POArrival[%d] %v != %v", what, i, a.POArrival[i], b.POArrival[i])
		}
	}
}

// TestEvaluateBatchMatchesSerial asserts that EvaluateBatch returns
// bit-identical Individuals, in input order, to one-at-a-time Evaluate on
// a fresh Evaluator, and that the evaluation count advances identically.
// The vector count is odd-sized to cover the tail mask in the batch path.
func TestEvaluateBatchMatchesSerial(t *testing.T) {
	base := adder8().Clone()
	base.Const0()
	base.Const1()
	rng := rand.New(rand.NewSource(9))
	vectors := sim.Random(rng, len(base.PIs), 1000)

	evBatch, err := NewEvaluator(base, lib, MetricNMED, 0.8, vectors)
	if err != nil {
		t.Fatal(err)
	}
	evSerial, err := NewEvaluator(base, lib, MetricNMED, 0.8, vectors)
	if err != nil {
		t.Fatal(err)
	}

	var cands []*netlist.Circuit
	for i := 0; i < 17; i++ {
		c := base.Clone()
		for k := 0; k < i%4; k++ {
			lacMutate(c, rng)
		}
		cands = append(cands, c)
	}

	batch, err := evBatch.EvaluateBatch(cands)
	if err != nil {
		t.Fatal(err)
	}
	if evBatch.Count() != len(cands) {
		t.Fatalf("batch count = %d, want %d", evBatch.Count(), len(cands))
	}
	for i, c := range cands {
		want, err := evSerial.Evaluate(c)
		if err != nil {
			t.Fatal(err)
		}
		individualsEqual(t, "batch vs serial", batch[i], want)
	}
	if evSerial.Count() != evBatch.Count() {
		t.Fatalf("serial count %d != batch count %d", evSerial.Count(), evBatch.Count())
	}
}

// TestEvaluateBatchParallelWorkers forces the multi-worker pool (this
// machine may run with GOMAXPROCS=1, where EvaluateBatch degrades to the
// serial loop) and checks order, values and count are unaffected.
func TestEvaluateBatchParallelWorkers(t *testing.T) {
	prev := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(prev)

	base := adder8().Clone()
	base.Const0()
	base.Const1()
	rng := rand.New(rand.NewSource(21))
	vectors := sim.Random(rng, len(base.PIs), 512)
	evPar, err := NewEvaluator(base, lib, MetricER, 0.8, vectors)
	if err != nil {
		t.Fatal(err)
	}
	evSer, err := NewEvaluator(base, lib, MetricER, 0.8, vectors)
	if err != nil {
		t.Fatal(err)
	}
	var cands []*netlist.Circuit
	for i := 0; i < 23; i++ {
		c := base.Clone()
		for k := 0; k < i%5; k++ {
			lacMutate(c, rng)
		}
		cands = append(cands, c)
	}
	got, err := evPar.EvaluateBatch(cands)
	if err != nil {
		t.Fatal(err)
	}
	if evPar.Count() != len(cands) {
		t.Fatalf("count = %d, want %d", evPar.Count(), len(cands))
	}
	for i, c := range cands {
		want, err := evSer.Evaluate(c)
		if err != nil {
			t.Fatal(err)
		}
		individualsEqual(t, "parallel vs serial", got[i], want)
	}
	// Reuse the same pool a second time to cover simulator recycling.
	again, err := evPar.EvaluateBatch(cands)
	if err != nil {
		t.Fatal(err)
	}
	for i := range cands {
		individualsEqual(t, "second batch", again[i], got[i])
	}
}

// TestEvaluateBatchGOMAXPROCSRaise is the regression test for the
// worker-pool sizing: an Evaluator built while GOMAXPROCS=1 must not
// deadlock (or mis-evaluate) when GOMAXPROCS is raised before the batch.
func TestEvaluateBatchGOMAXPROCSRaise(t *testing.T) {
	prev := runtime.GOMAXPROCS(1)
	defer runtime.GOMAXPROCS(prev)

	base := adder8().Clone()
	base.Const0()
	base.Const1()
	rng := rand.New(rand.NewSource(2))
	vectors := sim.Random(rng, len(base.PIs), 256)
	ev, err := NewEvaluator(base, lib, MetricER, 0.8, vectors)
	if err != nil {
		t.Fatal(err)
	}
	runtime.GOMAXPROCS(8)
	var cands []*netlist.Circuit
	for i := 0; i < 16; i++ {
		c := base.Clone()
		lacMutate(c, rng)
		cands = append(cands, c)
	}
	done := make(chan error, 1)
	go func() {
		_, err := ev.EvaluateBatch(cands)
		done <- err
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("EvaluateBatch deadlocked after a GOMAXPROCS raise")
	}
	if ev.Count() != len(cands) {
		t.Fatalf("count = %d, want %d", ev.Count(), len(cands))
	}
}

// TestEvaluateMatchesFullResimulation pins the incremental evaluator to
// ground truth: metrics computed through the Simulator + MetricsDelta path
// must equal a from-scratch sim.Run + full-scan estimate for both ER and
// NMED metrics.
func TestEvaluateMatchesFullResimulation(t *testing.T) {
	for _, metric := range []Metric{MetricER, MetricNMED} {
		base := adder8().Clone()
		base.Const0()
		base.Const1()
		rng := rand.New(rand.NewSource(4))
		vectors := sim.Random(rng, len(base.PIs), 999)
		ev, err := NewEvaluator(base, lib, metric, 0.8, vectors)
		if err != nil {
			t.Fatal(err)
		}
		for trial := 0; trial < 25; trial++ {
			cand := base.Clone()
			for k := 0; k < rng.Intn(4)+1; k++ {
				lacMutate(cand, rng)
			}
			got, err := ev.Evaluate(cand)
			if err != nil {
				t.Fatal(err)
			}
			// Ground truth: full re-simulation through the untouched
			// Estimator.Evaluate path.
			m, _, err := ev.est.Evaluate(cand)
			if err != nil {
				t.Fatal(err)
			}
			wantErr := m.ER
			if metric == MetricNMED {
				wantErr = m.NMED
			}
			if got.Err != wantErr {
				t.Fatalf("%v trial %d: incremental Err %v != full %v", metric, trial, got.Err, wantErr)
			}
			for i := range m.PerPO {
				if got.PerPO[i] != m.PerPO[i] {
					t.Fatalf("%v trial %d: PerPO[%d] %v != %v", metric, trial, i, got.PerPO[i], m.PerPO[i])
				}
			}
		}
	}
}
