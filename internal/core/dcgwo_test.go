package core

import (
	"math/rand"
	"testing"

	"repro/internal/cell"
	"repro/internal/lac"
	"repro/internal/netlist"
	"repro/internal/sim"
)

// smallConfig keeps end-to-end optimizer tests fast.
func smallConfig(m Metric, budget float64) Config {
	cfg := DefaultConfig(m, budget)
	cfg.PopulationSize = 8
	cfg.MaxIter = 6
	cfg.Vectors = 1024
	cfg.Seed = 7
	return cfg
}

func TestOptimizerRunNMED(t *testing.T) {
	acc := adder8()
	opt, err := New(acc, lib, smallConfig(MetricNMED, 0.0244))
	if err != nil {
		t.Fatal(err)
	}
	res, err := opt.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Best == nil {
		t.Fatal("no feasible individual found")
	}
	if res.Best.Err > 0.0244 {
		t.Errorf("best error %v exceeds budget", res.Best.Err)
	}
	// The accurate circuit (Fit = 1) is always in the initial population,
	// so the best must be at least as fit.
	if res.Best.Fit < 1.0-1e-9 {
		t.Errorf("best fitness %v below the accurate circuit's 1.0", res.Best.Fit)
	}
	if err := res.Best.Circuit.Validate(); err != nil {
		t.Errorf("best circuit invalid: %v", err)
	}
	if len(res.History) != 6 {
		t.Errorf("history has %d entries, want 6", len(res.History))
	}
	if res.Evaluations == 0 {
		t.Error("no evaluations recorded")
	}
}

func TestOptimizerRunERReducesDelayOrArea(t *testing.T) {
	acc := adder8()
	opt, err := New(acc, lib, smallConfig(MetricER, 0.05))
	if err != nil {
		t.Fatal(err)
	}
	res, err := opt.Run()
	if err != nil {
		t.Fatal(err)
	}
	best := res.Best
	if best.Fit <= 1.0 {
		t.Skip("no improving approximation found at this budget/seed")
	}
	if best.Delay >= opt.RefDelay() && best.Area >= opt.RefArea() {
		t.Error("fitness above 1 requires delay or area improvement")
	}
}

func TestOptimizerDeterministicAcrossRuns(t *testing.T) {
	run := func() float64 {
		opt, err := New(adder8(), lib, smallConfig(MetricNMED, 0.0244))
		if err != nil {
			t.Fatal(err)
		}
		res, err := opt.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res.Best.Fit
	}
	if a, b := run(), run(); a != b {
		t.Errorf("same seed produced different results: %v vs %v", a, b)
	}
}

func TestOptimizerHistoryMonotone(t *testing.T) {
	opt, err := New(adder8(), lib, smallConfig(MetricNMED, 0.0244))
	if err != nil {
		t.Fatal(err)
	}
	res, err := opt.Run()
	if err != nil {
		t.Fatal(err)
	}
	prev := 0.0
	for _, h := range res.History {
		if h.BestFit < prev {
			t.Error("tracked best fitness must be non-decreasing")
		}
		prev = h.BestFit
		if h.BestErr > 0.0244+1e-12 {
			t.Error("tracked best must always respect the final budget")
		}
	}
	// Error relaxation must reach the budget by Imax.
	last := res.History[len(res.History)-1]
	if last.ErrAllowed < 0.0244-1e-12 {
		t.Errorf("final relaxed constraint %v never reached the budget", last.ErrAllowed)
	}
	if res.History[0].ErrAllowed >= last.ErrAllowed {
		t.Error("the relaxed constraint must grow across iterations")
	}
}

func TestOptimizerTightBudgetStaysExact(t *testing.T) {
	// With a zero budget only the exact circuit is feasible.
	opt, err := New(adder8(), lib, smallConfig(MetricER, 0))
	if err != nil {
		t.Fatal(err)
	}
	res, err := opt.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Best.Err != 0 {
		t.Errorf("zero budget but best error = %v", res.Best.Err)
	}
}

// ---- reproduction --------------------------------------------------------

func evalFor(t *testing.T, o *Optimizer, c *netlist.Circuit) *Individual {
	t.Helper()
	ind, err := o.eval.Evaluate(c)
	if err != nil {
		t.Fatal(err)
	}
	return ind
}

func TestReproduceMergesParents(t *testing.T) {
	acc := adder8()
	opt, err := New(acc, lib, smallConfig(MetricER, 0.1))
	if err != nil {
		t.Fatal(err)
	}
	p1 := evalFor(t, opt, opt.base.Clone())

	// Parent 2: LAC somewhere in the carry chain.
	c2 := opt.base.Clone()
	res, err := sim.Run(c2, opt.eval.est.Vectors())
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	if _, ok := lac.RandomChange(c2, res, rng); !ok {
		t.Fatal("no LAC applied")
	}
	p2 := evalFor(t, opt, c2)

	child := reproduce(p1, p2, opt.wt, opt.cfg.WeightErr)
	if child == nil {
		t.Fatal("reproduce returned nil on two valid parents")
	}
	if err := child.Validate(); err != nil {
		t.Fatalf("child invalid: %v", err)
	}
	if len(child.Gates) != len(p1.Circuit.Gates) {
		t.Error("child must share the parents' gate ID space")
	}
}

func TestReproduceRejectsMismatchedParents(t *testing.T) {
	acc := adder8()
	opt, err := New(acc, lib, smallConfig(MetricER, 0.1))
	if err != nil {
		t.Fatal(err)
	}
	p1 := evalFor(t, opt, opt.base.Clone())
	// A parent with a different gate count cannot merge.
	other := opt.base.Clone()
	other.AddGate(cell.Inv, other.PIs[0])
	p2 := evalFor(t, opt, other)
	if reproduce(p1, p2, opt.wt, opt.cfg.WeightErr) != nil {
		t.Error("reproduce must reject parents with different ID spaces")
	}
}

func TestReproduceIdenticalParentsIsIdentity(t *testing.T) {
	acc := adder8()
	opt, err := New(acc, lib, smallConfig(MetricER, 0.1))
	if err != nil {
		t.Fatal(err)
	}
	p := evalFor(t, opt, opt.base.Clone())
	child := reproduce(p, p, opt.wt, opt.cfg.WeightErr)
	if child == nil {
		t.Fatal("identical parents must merge")
	}
	for id := range child.Gates {
		got, want := child.Gates[id], p.Circuit.Gates[id]
		if got.Func != want.Func || len(got.Fanin) != len(want.Fanin) {
			t.Fatal("identity merge changed structure")
		}
		for pin := range got.Fanin {
			if got.Fanin[pin] != want.Fanin[pin] {
				t.Fatal("identity merge changed adjacency")
			}
		}
	}
}

func TestBestFeasible(t *testing.T) {
	pop := []*Individual{
		{Fit: 2.0, Err: 0.5},
		{Fit: 1.5, Err: 0.01},
		{Fit: 1.2, Err: 0.0},
	}
	if got := bestFeasible(pop, 0.05); got != pop[1] {
		t.Error("bestFeasible must pick the fittest within budget")
	}
	if got := bestFeasible(pop, 1.0); got != pop[0] {
		t.Error("loose budget admits the fittest overall")
	}
	if got := bestFeasible(pop[:1], 0.1); got != nil {
		t.Error("no feasible individual must yield nil")
	}
}

func TestSuperiorPicksStrictlyBetter(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	pop := []*Individual{{Fit: 3}, {Fit: 2}, {Fit: 1}}
	for i := 0; i < 20; i++ {
		s := superior(pop, pop[2], rng)
		if s.Fit <= pop[2].Fit {
			t.Fatal("superior must return a strictly fitter individual")
		}
	}
	if superior(pop, pop[0], rng) != pop[0] {
		t.Error("the leader falls back to itself")
	}
}
