package core

import (
	"math"
	"sort"
)

// dominates reports whether a Pareto-dominates b under maximization of the
// depth function fd and area function fa: not inferior in either, strictly
// superior in at least one.
func dominates(a, b *Individual, refDelay, refArea float64) bool {
	afd, afa := a.fd(refDelay), a.fa(refArea)
	bfd, bfa := b.fd(refDelay), b.fa(refArea)
	if afd < bfd || afa < bfa {
		return false
	}
	return afd > bfd || afa > bfa
}

// nonDominatedSort partitions the candidates into Pareto fronts
// (0-ranked first) using the dominated-list construction of the paper:
// each circuit keeps the list Ld of circuits dominating it; circuits with
// empty Ld form the next front and are removed.
func nonDominatedSort(cands []*Individual, refDelay, refArea float64) [][]*Individual {
	n := len(cands)
	dominatedBy := make([][]int, n) // Ld: indices of dominators
	dominatesList := make([][]int, n)
	remaining := make([]bool, n)
	for i := range cands {
		remaining[i] = true
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if dominates(cands[i], cands[j], refDelay, refArea) {
				dominatedBy[j] = append(dominatedBy[j], i)
				dominatesList[i] = append(dominatesList[i], j)
			} else if dominates(cands[j], cands[i], refDelay, refArea) {
				dominatedBy[i] = append(dominatedBy[i], j)
				dominatesList[j] = append(dominatesList[j], i)
			}
		}
	}
	count := make([]int, n)
	for i := range count {
		count[i] = len(dominatedBy[i])
	}
	var fronts [][]*Individual
	left := n
	for left > 0 {
		var frontIdx []int
		for i := 0; i < n; i++ {
			if remaining[i] && count[i] == 0 {
				frontIdx = append(frontIdx, i)
			}
		}
		if len(frontIdx) == 0 {
			// Cannot happen with a strict partial order; guard anyway.
			for i := 0; i < n; i++ {
				if remaining[i] {
					frontIdx = append(frontIdx, i)
				}
			}
		}
		front := make([]*Individual, 0, len(frontIdx))
		for _, i := range frontIdx {
			remaining[i] = false
			left--
			front = append(front, cands[i])
			for _, j := range dominatesList[i] {
				count[j]--
			}
		}
		fronts = append(fronts, front)
	}
	return fronts
}

// crowdingDistance computes Eq. 9 for one Pareto front: per objective,
// sort the front, pin the extremes to +Inf, and accumulate the normalized
// gap between each circuit's neighbours.
func crowdingDistance(front []*Individual, refDelay, refArea float64) []float64 {
	n := len(front)
	dist := make([]float64, n)
	if n <= 2 {
		for i := range dist {
			dist[i] = math.Inf(1)
		}
		return dist
	}
	idx := make([]int, n)
	for _, objective := range []func(*Individual) float64{
		func(ind *Individual) float64 { return ind.fd(refDelay) },
		func(ind *Individual) float64 { return ind.fa(refArea) },
	} {
		for i := range idx {
			idx[i] = i
		}
		sort.Slice(idx, func(a, b int) bool {
			return objective(front[idx[a]]) < objective(front[idx[b]])
		})
		lo, hi := objective(front[idx[0]]), objective(front[idx[n-1]])
		dist[idx[0]] = math.Inf(1)
		dist[idx[n-1]] = math.Inf(1)
		span := hi - lo
		if span <= 0 {
			continue
		}
		for k := 1; k < n-1; k++ {
			gap := objective(front[idx[k+1]]) - objective(front[idx[k-1]])
			dist[idx[k]] += gap / span
		}
	}
	return dist
}

// ParetoFront returns the rank-0 (non-dominated) subset of cands under
// the depth/area ratio objectives, in input order. It draws no randomness
// and never mutates its inputs.
func ParetoFront(cands []*Individual, refDelay, refArea float64) []*Individual {
	if len(cands) == 0 {
		return nil
	}
	return nonDominatedSort(cands, refDelay, refArea)[0]
}

// FeasibleFront assembles the trade-off front an optimizer reports
// alongside its single best individual: candidates over the error budget
// are dropped, duplicate (delay, area, err) points are collapsed (keeping
// the first), and the non-dominated subset of the remainder is returned
// sorted by descending fitness (delay then area break ties), so the order
// is deterministic. best (when feasible) is always retained even if the
// Pareto filter would drop it — at the degenerate fitness weights 0 and 1
// an equal-fitness member can strictly dominate it, and the front must
// still contain the solution the optimizer's Result.Best reports. The
// whole computation draws no randomness, which is what lets Result
// surface a whole front without perturbing bit-identical replays.
func FeasibleFront(best *Individual, others []*Individual, budget, refDelay, refArea float64) []*Individual {
	type point struct{ delay, area, err float64 }
	cands := make([]*Individual, 0, len(others)+1)
	seen := make(map[point]bool, len(others)+1)
	add := func(ind *Individual) {
		if ind == nil || ind.Err > budget {
			return
		}
		p := point{ind.Delay, ind.Area, ind.Err}
		if seen[p] {
			return
		}
		seen[p] = true
		cands = append(cands, ind)
	}
	add(best)
	for _, ind := range others {
		add(ind)
	}
	front := ParetoFront(cands, refDelay, refArea)
	if best != nil && best.Err <= budget {
		present := false
		for _, ind := range front {
			if ind == best {
				present = true
				break
			}
		}
		if !present {
			front = append(front, best)
		}
	}
	sort.SliceStable(front, func(i, j int) bool {
		if front[i].Fit != front[j].Fit {
			return front[i].Fit > front[j].Fit
		}
		if front[i].Delay != front[j].Delay {
			return front[i].Delay < front[j].Delay
		}
		return front[i].Area < front[j].Area
	})
	return front
}

// selectSurvivors picks the next population of size n: fronts in rank
// order, each front sorted by descending crowding distance (with fitness
// as the tiebreaker so the selection is deterministic).
func selectSurvivors(cands []*Individual, n int, refDelay, refArea float64) []*Individual {
	fronts := nonDominatedSort(cands, refDelay, refArea)
	out := make([]*Individual, 0, n)
	for _, front := range fronts {
		dist := crowdingDistance(front, refDelay, refArea)
		order := make([]int, len(front))
		for i := range order {
			order[i] = i
		}
		sort.Slice(order, func(a, b int) bool {
			da, db := dist[order[a]], dist[order[b]]
			if da != db {
				return da > db
			}
			return front[order[a]].Fit > front[order[b]].Fit
		})
		for _, i := range order {
			if len(out) == n {
				return out
			}
			out = append(out, front[i])
		}
	}
	return out
}
