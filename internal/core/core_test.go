package core

import (
	"math"
	"testing"

	"repro/internal/cell"
	"repro/internal/netlist"
)

var lib = cell.Default28nm()

// adder8 builds a small ripple adder (the arithmetic test workload).
func adder8() *netlist.Circuit {
	c := netlist.New("adder8")
	a := make([]int, 8)
	b := make([]int, 8)
	for i := range a {
		a[i] = c.AddInput("a")
	}
	for i := range b {
		b[i] = c.AddInput("b")
	}
	carry := -1
	for i := 0; i < 8; i++ {
		var sum int
		if carry < 0 {
			sum = c.AddGate(cell.Xor2, a[i], b[i])
			carry = c.AddGate(cell.And2, a[i], b[i])
		} else {
			x := c.AddGate(cell.Xor2, a[i], b[i])
			sum = c.AddGate(cell.Xor2, x, carry)
			carry = c.AddGate(cell.Maj3, a[i], b[i], carry)
		}
		c.AddOutput("s", sum)
	}
	c.AddOutput("cout", carry)
	return c
}

func TestDefaultConfigMatchesPaper(t *testing.T) {
	er := DefaultConfig(MetricER, 0.05)
	if er.PopulationSize != 30 || er.MaxIter != 20 {
		t.Error("paper uses N=30, Imax=20")
	}
	if er.DepthWeight != 0.8 {
		t.Error("paper settles on wd=0.8 (Fig. 6)")
	}
	if er.WeightErr != 0.1 {
		t.Error("paper uses we=0.1 under ER")
	}
	nmed := DefaultConfig(MetricNMED, 0.0244)
	if nmed.WeightErr != 0.2 {
		t.Error("paper uses we=0.2 under NMED")
	}
	if MetricER.String() != "ER" || MetricNMED.String() != "NMED" {
		t.Error("metric names")
	}
}

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{ErrorBudget: -1, PopulationSize: 10, MaxIter: 5, Vectors: 1024},
		{ErrorBudget: 0.05, PopulationSize: 3, MaxIter: 5, Vectors: 1024},
		{ErrorBudget: 0.05, PopulationSize: 10, MaxIter: 0, Vectors: 1024},
		{ErrorBudget: 0.05, PopulationSize: 10, MaxIter: 5, DepthWeight: 2, Vectors: 1024},
		{ErrorBudget: 0.05, PopulationSize: 10, MaxIter: 5, Vectors: 1},
	}
	for i, cfg := range bad {
		if _, err := New(adder8(), lib, cfg); err == nil {
			t.Errorf("config %d must be rejected", i)
		}
	}
}

// ---- non-dominated sorting ---------------------------------------------

func ind(delay, area float64) *Individual { return &Individual{Delay: delay, Area: area} }

func TestDominates(t *testing.T) {
	// Lower delay and lower area -> higher fd and fa -> dominates.
	a, b := ind(50, 50), ind(100, 100)
	if !dominates(a, b, 100, 100) {
		t.Error("strictly better circuit must dominate")
	}
	if dominates(b, a, 100, 100) {
		t.Error("dominance must be asymmetric")
	}
	// Trade-off pair: no dominance either way.
	c, d := ind(50, 100), ind(100, 50)
	if dominates(c, d, 100, 100) || dominates(d, c, 100, 100) {
		t.Error("trade-off circuits must be incomparable")
	}
	// Equal circuits do not dominate each other.
	if dominates(a, ind(50, 50), 100, 100) {
		t.Error("equal objectives must not dominate")
	}
}

func TestNonDominatedSortFronts(t *testing.T) {
	cands := []*Individual{
		ind(50, 50),   // front 0 (dominates everything)
		ind(60, 80),   // front 1
		ind(80, 60),   // front 1
		ind(90, 90),   // front 2
		ind(100, 100), // front 3
	}
	fronts := nonDominatedSort(cands, 100, 100)
	if len(fronts) != 4 {
		t.Fatalf("got %d fronts, want 4", len(fronts))
	}
	if len(fronts[0]) != 1 || fronts[0][0] != cands[0] {
		t.Error("front 0 must contain exactly the dominant circuit")
	}
	if len(fronts[1]) != 2 {
		t.Errorf("front 1 size = %d, want 2", len(fronts[1]))
	}
	// No member of a front may dominate another member of the same front.
	for _, front := range fronts {
		for _, x := range front {
			for _, y := range front {
				if x != y && dominates(x, y, 100, 100) {
					t.Error("intra-front dominance found")
				}
			}
		}
	}
}

func TestCrowdingDistanceExtremes(t *testing.T) {
	front := []*Individual{ind(50, 100), ind(70, 80), ind(100, 50)}
	dist := crowdingDistance(front, 100, 100)
	if !math.IsInf(dist[0], 1) || !math.IsInf(dist[2], 1) {
		t.Error("objective extremes must get infinite distance")
	}
	if math.IsInf(dist[1], 1) || dist[1] <= 0 {
		t.Errorf("middle circuit distance = %v, want finite positive", dist[1])
	}
}

func TestCrowdingDistanceSmallFronts(t *testing.T) {
	for _, n := range []int{1, 2} {
		front := make([]*Individual, n)
		for i := range front {
			front[i] = ind(50+float64(i), 50)
		}
		for _, d := range crowdingDistance(front, 100, 100) {
			if !math.IsInf(d, 1) {
				t.Error("fronts of <=2 must be all infinite")
			}
		}
	}
}

func TestSelectSurvivorsCountAndRankOrder(t *testing.T) {
	cands := []*Individual{
		ind(50, 50), ind(60, 80), ind(80, 60), ind(90, 90), ind(100, 100), ind(110, 110),
	}
	out := selectSurvivors(cands, 3, 100, 100)
	if len(out) != 3 {
		t.Fatalf("got %d survivors, want 3", len(out))
	}
	if out[0] != cands[0] {
		t.Error("rank-0 circuit must survive first")
	}
	// The two front-1 circuits come next.
	got := map[*Individual]bool{out[1]: true, out[2]: true}
	if !got[cands[1]] || !got[cands[2]] {
		t.Error("front-1 circuits must fill the remaining slots")
	}
}

func TestSelectSurvivorsFewerCandidates(t *testing.T) {
	cands := []*Individual{ind(50, 50)}
	if got := len(selectSurvivors(cands, 5, 100, 100)); got != 1 {
		t.Errorf("got %d, want 1 (cannot invent circuits)", got)
	}
}

// ---- Level function ------------------------------------------------------

func TestLevelsPreferFastAndAccurate(t *testing.T) {
	indv := &Individual{
		POArrival: []float64{100, 50, 100},
		PerPO:     []float64{0.10, 0.10, 0.01},
	}
	l := levels(indv, 90, 0.1)
	if l[1] <= l[0] {
		t.Error("faster PO must score a higher Level")
	}
	if l[2] <= l[0] {
		t.Error("more accurate PO must score a higher Level")
	}
}

func TestLevelsGuardZeroes(t *testing.T) {
	indv := &Individual{POArrival: []float64{0}, PerPO: []float64{0}}
	l := levels(indv, 90, 0.1)
	if math.IsInf(l[0], 1) || math.IsNaN(l[0]) {
		t.Error("zero Ta/Error must not blow up the Level")
	}
}
