package core

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"sort"

	"repro/internal/cell"
	"repro/internal/lac"
	"repro/internal/netlist"
	"repro/internal/sim"
	"repro/internal/sta"
)

// Optimizer runs DCGWO on one accurate circuit.
type Optimizer struct {
	cfg  Config
	lib  *cell.Library
	base *netlist.Circuit // accurate circuit with constants materialized
	eval *Evaluator
	rng  *rand.Rand
	wt   float64 // Level weight wt = 0.9·CPDori
}

// New prepares a DCGWO run: it clones the accurate circuit, materializes
// the constant gates (so the whole population shares one gate ID space),
// samples the Monte-Carlo vectors, and measures the reference delay/area.
func New(accurate *netlist.Circuit, lib *cell.Library, cfg Config) (*Optimizer, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	base := accurate.Clone()
	base.Const0()
	base.Const1()
	if err := base.Validate(); err != nil {
		return nil, fmt.Errorf("core: accurate circuit: %w", err)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	vectors := sim.Random(rng, len(base.PIs), cfg.Vectors)
	eval, err := NewEvaluator(base, lib, cfg.Metric, cfg.DepthWeight, vectors)
	if err != nil {
		return nil, err
	}
	eval.SetMaxWorkers(cfg.EvalWorkers)
	return &Optimizer{
		cfg:  cfg,
		lib:  lib,
		base: base,
		rng:  rng,
		wt:   0.9 * eval.RefDelay(),
		eval: eval,
	}, nil
}

// Evaluator exposes the run's shared evaluation context (for the baseline
// optimizers and the experiment harness).
func (o *Optimizer) Evaluator() *Evaluator { return o.eval }

// Base returns the constant-materialized clone of the accurate circuit
// whose gate ID space the population shares.
func (o *Optimizer) Base() *netlist.Circuit { return o.base }

// RefDelay returns CPDori of the accurate circuit under this library.
func (o *Optimizer) RefDelay() float64 { return o.eval.RefDelay() }

// RefArea returns Areaori of the accurate circuit.
func (o *Optimizer) RefArea() float64 { return o.eval.RefArea() }

// searchClone applies one circuit-searching action to a fresh clone of the
// individual: simulate, time, build Tc, pick a target, substitute the most
// similar switch. When the netlist offers no searching move (e.g. the
// critical path is a bare wire) it falls back to a random LAC. The clone
// is simulated by the incremental engine (it differs from the accurate
// circuit only by the parent's accumulated LACs), which is exact, so the
// similarity-guided pick is identical to one made on a full simulation.
func (o *Optimizer) searchClone(ind *Individual) (*netlist.Circuit, error) {
	clone := ind.Circuit.Clone()
	res, err := o.eval.Simulate(clone)
	if err != nil {
		return nil, err
	}
	rep, err := sta.Analyze(clone, o.lib)
	if err != nil {
		return nil, err
	}
	tries := o.cfg.SearchTries
	if tries < 1 {
		tries = 1
	}
	if _, ok := lac.SearchN(clone, res, rep, o.rng, o.cfg.CritMargin, tries); !ok {
		lac.RandomChange(clone, res, o.rng)
	}
	return clone, nil
}

// reproduceWith merges ind with the partner (falling back to a clone of
// the better parent plus a searching move when the merge is cyclic).
func (o *Optimizer) reproduceWith(ind, partner *Individual) (*netlist.Circuit, error) {
	if o.cfg.DisableReproduction {
		return o.searchClone(ind)
	}
	child := reproduce(ind, partner, o.wt, o.cfg.WeightErr)
	if child != nil {
		return child, nil
	}
	better := ind
	if partner.Fit > ind.Fit {
		better = partner
	}
	return o.searchClone(better)
}

// Run executes the full DCGWO loop and returns the best approximate
// circuit found under the error budget.
func (o *Optimizer) Run() (*Result, error) { return o.RunContext(context.Background()) }

// RunContext is Run with cooperative cancellation: the context is checked
// once per iteration (and before the initial population is evaluated), and
// a cancelled run returns an error wrapping ctx.Err(). The check draws no
// randomness, so a run that is never cancelled is bit-identical to Run,
// and a cancelled-then-rerun flow reproduces the original result exactly.
func (o *Optimizer) RunContext(ctx context.Context) (*Result, error) {
	cfg := o.cfg
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("core: optimization cancelled before start: %w", err)
	}
	pop := make([]*Individual, 0, cfg.PopulationSize)

	// Initial population P0: the accurate circuit plus clones mutated by
	// random LACs (searching-style similarity picks on random targets).
	// The mutated clones are independent, so they are evaluated as one
	// parallel batch after the (serial, rng-consuming) mutation pass.
	o.eval.BeginGeneration()
	first, err := o.eval.Evaluate(o.base.Clone())
	if err != nil {
		return nil, err
	}
	pop = append(pop, first)
	clones := make([]*netlist.Circuit, 0, cfg.PopulationSize-1)
	for len(clones) < cfg.PopulationSize-1 {
		clone := o.base.Clone()
		for k := 0; k < cfg.InitLACs; k++ {
			res, err := o.eval.Simulate(clone)
			if err != nil {
				return nil, err
			}
			lac.RandomChange(clone, res, o.rng)
		}
		clones = append(clones, clone)
	}
	inds, err := o.eval.EvaluateBatch(clones)
	if err != nil {
		return nil, err
	}
	pop = append(pop, inds...)

	// Quadratic relaxation Err(iter) = b·iter² + Err0 (paper §III-B),
	// with b chosen so the constraint reaches the budget at
	// RelaxAt·Imax and holds there.
	err0 := cfg.InitErrorFrac * cfg.ErrorBudget
	relaxAt := cfg.RelaxAt
	if relaxAt <= 0 || relaxAt > 1 {
		relaxAt = 0.7
	}
	relaxIters := relaxAt * float64(cfg.MaxIter)
	bQuad := (cfg.ErrorBudget - err0) / (relaxIters * relaxIters)

	best := bestFeasible(pop, cfg.ErrorBudget)
	if best != nil && cfg.OnImproved != nil {
		cfg.OnImproved(best)
	}
	result := &Result{}
	// consider tracks the best individual over everything evaluated, not
	// just selection survivors: a child rejected by the current relaxed
	// constraint may still satisfy the user's final budget.
	consider := func(ind *Individual) {
		if ind.Err <= cfg.ErrorBudget && (best == nil || ind.Fit > best.Fit) {
			best = ind
			if cfg.OnImproved != nil {
				cfg.OnImproved(ind)
			}
		}
	}

	for iter := 1; iter <= cfg.MaxIter; iter++ {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("core: optimization cancelled at iteration %d/%d: %w", iter, cfg.MaxIter, err)
		}
		o.eval.BeginGeneration()
		errAllowed := math.Min(cfg.ErrorBudget, err0+bQuad*float64(iter*iter))
		a := 2 - 2*float64(iter)/float64(cfg.MaxIter)

		sort.Slice(pop, func(i, j int) bool { return pop[i].Fit > pop[j].Fit })
		leader := pop[0]
		elite := pop[1:4]
		omega := pop[4:]
		eliteMean := (elite[0].Fit + elite[1].Fit + elite[2].Fit) / 3

		candidates := append([]*Individual(nil), pop...)

		// Children are generated serially (every rng draw happens in the
		// original order) but evaluated as one parallel batch afterwards.
		// Evaluation is pure, so deferring it changes nothing; `children`
		// records the generation order so the candidate pool and the
		// running-best updates see the exact sequence the serial code
		// produced. The one exception is the ω "both actions" case, whose
		// searched circuit must be evaluated inline: circuit reproduction
		// consults its fitness and per-PO levels.
		var pending []*netlist.Circuit
		type childRef struct {
			ind   *Individual // non-nil for inline-evaluated children
			batch int         // index into pending otherwise
		}
		var children []childRef
		addChild := func(c *netlist.Circuit) {
			children = append(children, childRef{batch: len(pending)})
			pending = append(pending, c)
		}

		// Chase 1: elite circuits consult the leader.
		for _, ci := range elite {
			d := math.Abs(o.rng.Float64()*2*leader.Fit - ci.Fit)
			w := (2*o.rng.Float64() - 1) * a * d
			var child *netlist.Circuit
			if w > cfg.EliteThreshold {
				child, err = o.reproduceWith(ci, superior(pop, ci, o.rng))
			} else {
				child, err = o.searchClone(ci)
			}
			if err != nil {
				return nil, err
			}
			addChild(child)
		}

		// Chase 2: ω circuits consult the elite group.
		for _, ci := range omega {
			d := math.Abs(o.rng.Float64()*2*eliteMean - ci.Fit)
			w := (2*o.rng.Float64() - 1) * a * d
			partner := elite[o.rng.Intn(len(elite))]
			switch {
			case w > cfg.OmegaThreshold:
				// Both actions: search, evaluate, then reproduce the
				// searched circuit with an elite partner. Both results
				// join the candidate pool.
				searched, err := o.searchClone(ci)
				if err != nil {
					return nil, err
				}
				sInd, err := o.eval.Evaluate(searched)
				if err != nil {
					return nil, err
				}
				children = append(children, childRef{ind: sInd})
				child, err := o.reproduceWith(sInd, partner)
				if err != nil {
					return nil, err
				}
				addChild(child)
			case o.rng.Float64() < 0.5:
				child, err := o.searchClone(ci)
				if err != nil {
					return nil, err
				}
				addChild(child)
			default:
				child, err := o.reproduceWith(ci, partner)
				if err != nil {
					return nil, err
				}
				addChild(child)
			}
		}

		// The leader searches after the double chase to keep varying.
		leaderChild, err := o.searchClone(leader)
		if err != nil {
			return nil, err
		}
		addChild(leaderChild)

		evaluated, err := o.eval.EvaluateBatch(pending)
		if err != nil {
			return nil, err
		}
		for _, ref := range children {
			ind := ref.ind
			if ind == nil {
				ind = evaluated[ref.batch]
			}
			consider(ind)
			candidates = append(candidates, ind)
		}

		// Population update: drop over-constraint candidates, then
		// non-dominated sort + crowding selection.
		feasible := candidates[:0:0]
		for _, ind := range candidates {
			if ind.Err <= errAllowed {
				feasible = append(feasible, ind)
			}
		}
		if len(feasible) == 0 {
			feasible = append(feasible, first) // the exact circuit always fits
		}
		pop = selectSurvivors(feasible, cfg.PopulationSize, o.eval.RefDelay(), o.eval.RefArea())
		for len(pop) < cfg.PopulationSize {
			pop = append(pop, first)
		}
		// Elitism: the best feasible circuit found so far always stays in
		// the pack (it is the leader the next chase consults), replacing
		// the worst survivor if the Pareto selection dropped it.
		if best != nil && best.Err <= errAllowed {
			present := false
			for _, ind := range pop {
				if ind == best {
					present = true
					break
				}
			}
			if !present {
				worst := 0
				for i, ind := range pop {
					if ind.Fit < pop[worst].Fit {
						worst = i
					}
				}
				pop[worst] = best
			}
		}

		stats := IterStats{
			Iter:        iter,
			BestFit:     best.Fit,
			BestDelay:   best.Delay,
			BestArea:    best.Area,
			BestErr:     best.Err,
			ErrAllowed:  errAllowed,
			Evaluations: o.eval.Count(),
			Cache:       o.eval.CacheStats(),
		}
		result.History = append(result.History, stats)
		if cfg.Progress != nil {
			cfg.Progress(stats)
		}
	}

	result.Best = best
	result.Front = FeasibleFront(best, pop, cfg.ErrorBudget, o.eval.RefDelay(), o.eval.RefArea())
	result.Evaluations = o.eval.Count()
	result.Cache = o.eval.CacheStats()
	return result, nil
}

// superior returns a random population member with strictly better fitness
// than ci (the leader qualifies by construction).
func superior(pop []*Individual, ci *Individual, rng *rand.Rand) *Individual {
	var better []*Individual
	for _, p := range pop {
		if p.Fit > ci.Fit {
			better = append(better, p)
		}
	}
	if len(better) == 0 {
		return pop[0]
	}
	return better[rng.Intn(len(better))]
}

// bestFeasible returns the highest-fitness individual within the final
// error budget, or nil.
func bestFeasible(pop []*Individual, budget float64) *Individual {
	var best *Individual
	for _, ind := range pop {
		if ind.Err <= budget && (best == nil || ind.Fit > best.Fit) {
			best = ind
		}
	}
	return best
}
