// Generation-scoped cross-candidate evaluation reuse.
//
// Population optimizers evaluate many near-identical candidates per
// generation: children share their parent's accumulated LACs, elitism and
// converged searches repeat whole candidates, and independent changes
// touch disjoint fanout cones. The evaluation cache exploits all three
// without ever changing results:
//
//   - L1 (whole-candidate memo): the candidate's complete diff against the
//     accurate circuit — every gate whose function, fan-in adjacency or
//     drive differs, canonically encoded by sim.AppendGateSig — keys a
//     finished evaluation. Equal keys imply equal gate content (the key is
//     the content, not a hash), so a hit replays the exact Individual a
//     fresh evaluation would produce.
//   - L2 (per-change cone deltas): the changed gates are partitioned into
//     components whose static fanout cones overlap. When two or more
//     components are pairwise disjoint, each component's PO-level error
//     delta (errest.PODelta, computed by an overlay cone simulation) is
//     cached under the component's content key and the candidate's metrics
//     are recombined exactly (errest.ComposeMetrics) — skipping both the
//     simulation and the dominant touched-PO metric scan. Overlapping
//     changes merge into one component; a single component falls back to
//     the plain incremental path, so overlap costs nothing extra.
//
// Disjointness is decided on static transitive fanout masks of the base
// circuit (computed once per root gate and kept for the Evaluator's
// lifetime): the dynamic recomputed cone of a change is always a subset of
// its static cone, so statically disjoint components can never interact —
// the proof obligation behind bit-identical composition.
//
// The cache is generation-scoped: BeginGeneration drops all entries (the
// optimizer loops call it once per generation/round), bounding memory to
// one generation's working set; a byte cap additionally stops inserts in
// degenerate cases. Counters are cumulative across generations and are
// surfaced through CacheStats, core.Result and the session EventDone
// stats.
package core

import (
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/errest"
	"repro/internal/netlist"
	"repro/internal/sim"
)

// CacheStats reports the evaluation cache's cumulative effectiveness
// counters for one Evaluator (and therefore one optimization run).
type CacheStats struct {
	// Lookups counts cache-eligible candidate evaluations; Hits counts the
	// ones answered entirely from the whole-candidate memo.
	Lookups, Hits int64
	// UnitHits and UnitMisses count per-change cone-delta lookups on the
	// composition path.
	UnitHits, UnitMisses int64
	// Composed counts candidates whose metrics were recombined from
	// disjoint per-change deltas instead of a fresh incremental simulation.
	Composed int64
	// Fallbacks counts evaluations that bypassed the cache entirely
	// (candidates outside the base gate ID space, rewires breaking the
	// base topological order, or a disabled cache).
	Fallbacks int64
	// Generations counts BeginGeneration calls (cache resets).
	Generations int64
}

// HitRatio returns Hits/Lookups, or 0 before any lookup.
func (s CacheStats) HitRatio() float64 {
	if s.Lookups == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Lookups)
}

// evalTemplate is the circuit-independent part of one evaluated
// Individual: everything except the candidate pointer itself. Instances
// are immutable once inserted; instantiate copies the slices so cached
// state can never alias a caller's Individual.
type evalTemplate struct {
	fit, delay     float64
	depth          int
	area, errValue float64
	perPO          []float64
	poArrival      []float64
}

func templateOf(ind *Individual) *evalTemplate {
	return &evalTemplate{
		fit:       ind.Fit,
		delay:     ind.Delay,
		depth:     ind.Depth,
		area:      ind.Area,
		errValue:  ind.Err,
		perPO:     ind.PerPO,
		poArrival: ind.POArrival,
	}
}

func (t *evalTemplate) instantiate(c *netlist.Circuit) *Individual {
	return &Individual{
		Circuit:   c,
		Fit:       t.fit,
		Delay:     t.delay,
		Depth:     t.depth,
		Area:      t.area,
		Err:       t.errValue,
		PerPO:     append([]float64(nil), t.perPO...),
		POArrival: append([]float64(nil), t.poArrival...),
	}
}

func (t *evalTemplate) memBytes(keyLen int) int {
	return keyLen + 16*(len(t.perPO)+len(t.poArrival)) + 96
}

// evalCacheMaxBytes caps one generation's cached state. One generation of
// a realistic population is far below this; the cap only guards degenerate
// configurations (huge populations on huge circuits), where inserts stop
// and evaluation continues uncached.
const evalCacheMaxBytes = 64 << 20

// evalCache is the concurrent, generation-scoped store shared by every
// EvaluateBatch worker of one Evaluator. Entries are immutable after
// insertion; the maps are guarded by one RWMutex (lookups vastly outnumber
// inserts), the counters are atomics so workers never contend on them.
type evalCache struct {
	mu    sync.RWMutex
	l1    map[string]*evalTemplate
	units map[string]*errest.PODelta
	bytes int

	lookups, hits, unitHits, unitMisses, composed, fallbacks, generations atomic.Int64
}

func newEvalCache() *evalCache {
	return &evalCache{
		l1:    make(map[string]*evalTemplate),
		units: make(map[string]*errest.PODelta),
	}
}

// reset starts a new generation: all entries are dropped, counters keep
// accumulating.
func (c *evalCache) reset() {
	c.mu.Lock()
	c.l1 = make(map[string]*evalTemplate)
	c.units = make(map[string]*errest.PODelta)
	c.bytes = 0
	c.mu.Unlock()
	c.generations.Add(1)
}

// getL1 looks up a whole-candidate template. The []byte key avoids a
// string allocation on the (common) lookup path.
func (c *evalCache) getL1(key []byte) *evalTemplate {
	c.mu.RLock()
	t := c.l1[string(key)]
	c.mu.RUnlock()
	return t
}

func (c *evalCache) putL1(key []byte, t *evalTemplate) {
	c.mu.Lock()
	if c.bytes < evalCacheMaxBytes {
		if _, dup := c.l1[string(key)]; !dup {
			c.l1[string(key)] = t
			c.bytes += t.memBytes(len(key))
		}
	}
	c.mu.Unlock()
}

func (c *evalCache) getUnit(key []byte) *errest.PODelta {
	c.mu.RLock()
	d := c.units[string(key)]
	c.mu.RUnlock()
	return d
}

func (c *evalCache) putUnit(key []byte, d *errest.PODelta) {
	c.mu.Lock()
	if c.bytes < evalCacheMaxBytes {
		if _, dup := c.units[string(key)]; !dup {
			c.units[string(key)] = d
			c.bytes += d.MemBytes() + len(key)
		}
	}
	c.mu.Unlock()
}

// stats snapshots the cumulative counters.
func (c *evalCache) stats() CacheStats {
	return CacheStats{
		Lookups:     c.lookups.Load(),
		Hits:        c.hits.Load(),
		UnitHits:    c.unitHits.Load(),
		UnitMisses:  c.unitMisses.Load(),
		Composed:    c.composed.Load(),
		Fallbacks:   c.fallbacks.Load(),
		Generations: c.generations.Load(),
	}
}

// candidateDiff scans the candidate against the base circuit once,
// producing (a) the simulation-relevant changed set — gates whose function
// or fan-in adjacency differs, exactly netlist.DiffGates semantics — and
// (b) the whole-candidate cache key covering those gates plus any
// drive-only differences (drive never affects simulation but does affect
// timing and area, so it must distinguish keys). ok is false when the
// candidate cannot be cached or incrementally overlaid: a different gate
// ID space, mismatched port lists, or a rewire that broke the base
// topological order (LACs never do; greedy inverted-wire substitutions
// append gates and land here).
func (e *Evaluator) candidateDiff(c *netlist.Circuit, key []byte) (simChanged []int, outKey []byte, ok bool) {
	if len(c.Gates) != len(e.base.Gates) ||
		!equalInts(c.PIs, e.base.PIs) || !equalInts(c.POs, e.base.POs) {
		return nil, key, false
	}
	for id := range c.Gates {
		g, r := &c.Gates[id], &e.base.Gates[id]
		if !sameLogic(g, r) {
			for _, fi := range g.Fanin {
				if e.pos[fi] >= e.pos[id] {
					return nil, key, false
				}
			}
			simChanged = append(simChanged, id)
			key = sim.AppendGateSig(key, id, g)
		} else if g.Drive != r.Drive {
			key = sim.AppendGateSig(key, id, g)
		}
	}
	return simChanged, key, true
}

// sameLogic reports whether two same-ID gates are simulation-equivalent
// (function and fan-in adjacency; drive and name excluded) — the per-gate
// predicate of netlist.DiffGates.
func sameLogic(g, r *netlist.Gate) bool {
	if g.Func != r.Func || len(g.Fanin) != len(r.Fanin) {
		return false
	}
	for pin, fi := range g.Fanin {
		if fi != r.Fanin[pin] {
			return false
		}
	}
	return true
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i, v := range a {
		if v != b[i] {
			return false
		}
	}
	return true
}

// reachMask returns the static transitive-fanout bitset of one base gate
// (root included), memoized for the Evaluator's lifetime — the masks
// depend only on the accurate circuit's structure, never on candidates.
func (e *Evaluator) reachMask(root int) []uint64 {
	e.reachMu.Lock()
	defer e.reachMu.Unlock()
	if m, ok := e.reach[root]; ok {
		return m
	}
	mask := make([]uint64, (len(e.base.Gates)+63)/64)
	stack := e.reachScratch[:0]
	stack = append(stack, root)
	mask[root>>6] |= 1 << (root & 63)
	for len(stack) > 0 {
		id := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, fo := range e.fanouts[id] {
			if mask[fo>>6]>>(uint(fo)&63)&1 == 0 {
				mask[fo>>6] |= 1 << (uint(fo) & 63)
				stack = append(stack, fo)
			}
		}
	}
	e.reachScratch = stack[:0]
	e.reach[root] = mask
	return mask
}

func masksOverlap(a, b []uint64) bool {
	for w := range a {
		if a[w]&b[w] != 0 {
			return true
		}
	}
	return false
}

// partitionChanged groups the changed gates into components whose static
// fanout cones overlap. Components are returned with ascending members in
// a deterministic order; two components' dynamic recomputed cones can
// never intersect (each is a subset of its static union), which is what
// makes per-component deltas exactly composable.
func (e *Evaluator) partitionChanged(changed []int) [][]int {
	type group struct {
		members []int
		mask    []uint64
	}
	var groups []*group
	for _, id := range changed {
		m := e.reachMask(id)
		var into *group
		kept := groups[:0]
		for _, g := range groups {
			if !masksOverlap(g.mask, m) {
				kept = append(kept, g)
				continue
			}
			if into == nil {
				into = g
				kept = append(kept, g)
				continue
			}
			// The new gate bridges two groups: merge them.
			into.members = append(into.members, g.members...)
			orInto(into.mask, g.mask)
		}
		groups = kept
		if into == nil {
			into = &group{mask: append([]uint64(nil), m...)}
			groups = append(groups, into)
		} else {
			orInto(into.mask, m)
		}
		into.members = append(into.members, id)
	}
	out := make([][]int, len(groups))
	for i, g := range groups {
		sort.Ints(g.members)
		out[i] = g.members
	}
	return out
}

func orInto(dst, src []uint64) {
	for w := range dst {
		dst[w] |= src[w]
	}
}
