package core

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// ParallelFor runs fn(worker, i) for every i in [0, n) on at most workers
// goroutines (workers <= 0 means GOMAXPROCS). Indices are handed out by an
// atomic counter, so the work distribution is dynamic; worker identifies
// which goroutine runs the call (0 <= worker < effective worker count), so
// callers can give each worker private scratch state (EvaluateBatch hands
// each one its own simulator arena). The first error stops new work from
// being claimed and is returned; with one worker the loop runs inline on
// the calling goroutine, in index order, with no goroutines spawned.
//
// ParallelFor is the scheduling core behind Evaluator.EvaluateBatch and
// the experiment orchestrator's job pool: callers whose fn is pure (or
// writes only to its own index) get results independent of worker count
// and scheduling order.
func ParallelFor(n, workers int, fn func(worker, i int) error) error {
	if n <= 0 {
		return nil
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := fn(0, i); err != nil {
				return err
			}
		}
		return nil
	}
	var (
		next    atomic.Int64
		failed  atomic.Bool
		wg      sync.WaitGroup
		errOnce sync.Once
		jobErr  error
	)
	fail := func(err error) {
		errOnce.Do(func() { jobErr = err })
		failed.Store(true)
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n || failed.Load() {
					return
				}
				if err := fn(worker, i); err != nil {
					fail(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	return jobErr
}
