package core

import "testing"

// Ablation benches: each disables one DCGWO design choice DESIGN.md calls
// out and reports the resulting best fitness on the 8-bit adder workload,
// so `go test -bench=Ablation` quantifies what every ingredient buys.
//
//	AblationFull           — the full algorithm
//	AblationNoRelaxation   — error budget fully open from iteration 1
//	AblationSingleDraw     — searching samples one target (no best-of-K)
//	AblationNoReproduction — thresholds force searching-only actions
//	AblationTinyPopulation — N=5 (degenerate pack, no real ω group)
func ablationConfig() Config {
	cfg := DefaultConfig(MetricNMED, 0.0244)
	cfg.PopulationSize = 12
	cfg.MaxIter = 10
	cfg.Vectors = 2048
	cfg.Seed = 3
	return cfg
}

func runAblation(b *testing.B, mutate func(*Config)) {
	b.Helper()
	var fit float64
	for i := 0; i < b.N; i++ {
		cfg := ablationConfig()
		mutate(&cfg)
		opt, err := New(adder8(), lib, cfg)
		if err != nil {
			b.Fatal(err)
		}
		res, err := opt.Run()
		if err != nil {
			b.Fatal(err)
		}
		fit = res.Best.Fit
	}
	b.ReportMetric(fit, "best_fit")
}

func BenchmarkAblationFull(b *testing.B) {
	runAblation(b, func(*Config) {})
}

func BenchmarkAblationNoRelaxation(b *testing.B) {
	runAblation(b, func(cfg *Config) { cfg.InitErrorFrac = 1.0 })
}

func BenchmarkAblationSingleDraw(b *testing.B) {
	runAblation(b, func(cfg *Config) { cfg.SearchTries = 1 })
}

func BenchmarkAblationNoReproduction(b *testing.B) {
	runAblation(b, func(cfg *Config) { cfg.DisableReproduction = true })
}

func BenchmarkAblationTinyPopulation(b *testing.B) {
	runAblation(b, func(cfg *Config) { cfg.PopulationSize = 5 })
}
