package core

import (
	"errors"
	"sync/atomic"
	"testing"
)

func TestParallelForCoversEveryIndex(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 8, 100} {
		n := 57
		hits := make([]atomic.Int32, n)
		if err := ParallelFor(n, workers, func(_, i int) error {
			hits[i].Add(1)
			return nil
		}); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i := range hits {
			if got := hits[i].Load(); got != 1 {
				t.Fatalf("workers=%d: index %d visited %d times", workers, i, got)
			}
		}
	}
}

func TestParallelForEmpty(t *testing.T) {
	if err := ParallelFor(0, 4, func(_, _ int) error {
		t.Fatal("fn must not run for n=0")
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}

func TestParallelForWorkerIndexBounded(t *testing.T) {
	const workers = 3
	var bad atomic.Bool
	if err := ParallelFor(64, workers, func(w, _ int) error {
		if w < 0 || w >= workers {
			bad.Store(true)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if bad.Load() {
		t.Fatal("worker index out of [0, workers)")
	}
}

func TestParallelForErrorStopsNewWork(t *testing.T) {
	boom := errors.New("boom")
	var ran atomic.Int32
	err := ParallelFor(1000, 4, func(_, i int) error {
		ran.Add(1)
		if i == 3 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	// In-flight calls may finish, but the pool must not drain the whole
	// range after the failure.
	if got := ran.Load(); got >= 1000 {
		t.Fatalf("all %d indices ran despite early error", got)
	}
}

func TestParallelForSerialIsInOrder(t *testing.T) {
	var order []int
	if err := ParallelFor(5, 1, func(w, i int) error {
		if w != 0 {
			t.Fatalf("serial worker index = %d", w)
		}
		order = append(order, i)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	for i, got := range order {
		if got != i {
			t.Fatalf("serial order %v, want ascending", order)
		}
	}
}
