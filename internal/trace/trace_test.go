package trace

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestTraceparentRoundTrip(t *testing.T) {
	tr := New(Options{Service: "test"})
	root := tr.StartRoot("root")
	sc := root.Context()
	if !sc.Valid() {
		t.Fatalf("root span context invalid: %+v", sc)
	}
	header := sc.Traceparent()
	if len(header) != 55 {
		t.Fatalf("traceparent %q has length %d, want 55", header, len(header))
	}
	back, err := ParseTraceparent(header)
	if err != nil {
		t.Fatalf("ParseTraceparent(%q): %v", header, err)
	}
	if back != sc {
		t.Fatalf("round trip changed the context: %+v != %+v", back, sc)
	}
}

func TestTraceparentParseValid(t *testing.T) {
	for _, tc := range []struct {
		in      string
		sampled bool
	}{
		{"00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01", true},
		{"00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-00", false},
		// Unknown flag bits: only bit 0 is interpreted.
		{"00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-03", true},
		// A future version with trailing data parses as version 00.
		{"cc-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01-extra", true},
	} {
		sc, err := ParseTraceparent(tc.in)
		if err != nil {
			t.Errorf("ParseTraceparent(%q): unexpected error %v", tc.in, err)
			continue
		}
		if sc.TraceID.String() != "4bf92f3577b34da6a3ce929d0e0e4736" {
			t.Errorf("ParseTraceparent(%q): trace id %s", tc.in, sc.TraceID)
		}
		if sc.SpanID.String() != "00f067aa0ba902b7" {
			t.Errorf("ParseTraceparent(%q): span id %s", tc.in, sc.SpanID)
		}
		if sc.Sampled != tc.sampled {
			t.Errorf("ParseTraceparent(%q): sampled = %v, want %v", tc.in, sc.Sampled, tc.sampled)
		}
	}
}

func TestTraceparentParseMalformed(t *testing.T) {
	for _, corpus := range []string{
		"",
		"00",
		"garbage",
		"00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7",     // missing flags
		"00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-",    // empty flags
		"00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-0",   // short flags
		"0-4bf92f3577b34da6a3ce929d0e0e47366-00f067aa0ba902b7-01",  // short version
		"00-4bf92f3577b34da6a3ce929d0e0e473-00f067aa0ba902b70-01",  // 31-digit trace id
		"00-4BF92F3577B34DA6A3CE929D0E0E4736-00f067aa0ba902b7-01",  // uppercase hex
		"00-4bf92f3577b34da6a3ce929d0e0e4736-00F067AA0BA902B7-01",  // uppercase span
		"00-zzf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01",  // non-hex trace
		"00-4bf92f3577b34da6a3ce929d0e0e4736-zzf067aa0ba902b7-01",  // non-hex span
		"00-00000000000000000000000000000000-00f067aa0ba902b7-01",  // zero trace id
		"00-4bf92f3577b34da6a3ce929d0e0e4736-0000000000000000-01",  // zero span id
		"ff-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01",  // forbidden version
		"00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01x", // v00 trailing junk
		"cc-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01x", // unseparated trailer
		"00_4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01",  // wrong separator
		"00-4bf92f3577b34da6a3ce929d0e0e4736_00f067aa0ba902b7-01",
		"00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7_01",
	} {
		if sc, err := ParseTraceparent(corpus); err == nil {
			t.Errorf("ParseTraceparent(%q) accepted malformed input: %+v", corpus, sc)
		}
	}
}

// Fuzz-ish: Parse must never panic, and every accepted value must
// re-render to a header Parse accepts again.
func TestTraceparentNeverPanics(t *testing.T) {
	base := "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01"
	for i := 0; i <= len(base); i++ {
		for _, c := range []byte{0, '-', 'g', 'Z', 0xff} {
			mutated := base[:i] + string(c) + base[min(i+1, len(base)):]
			sc, err := ParseTraceparent(mutated)
			if err != nil {
				continue
			}
			if _, err := ParseTraceparent(sc.Traceparent()); err != nil {
				t.Fatalf("accepted %q but re-parse of %q failed: %v", mutated, sc.Traceparent(), err)
			}
		}
	}
}

func TestSpanTreeAndSnapshot(t *testing.T) {
	tr := New(Options{Service: "svc"})
	root := tr.StartRoot("root")
	root.SetAttr("kind", "test")
	root.SetAttr("n", 42)
	root.SetAttr("ratio", 0.5)
	root.SetAttr("ok", true)
	root.SetAttr("wait", 250*time.Millisecond)
	child := root.StartChild("child")
	child.AddEvent("woke")
	child.End()
	root.End()
	root.End() // second End is a no-op
	root.SetAttr("late", "ignored")

	spans := tr.Snapshot()
	if len(spans) != 2 {
		t.Fatalf("snapshot has %d spans, want 2", len(spans))
	}
	c, r := spans[0], spans[1] // collection order: child ended first
	if c.Name != "child" || r.Name != "root" {
		t.Fatalf("unexpected span order: %q, %q", c.Name, r.Name)
	}
	if c.TraceID != r.TraceID {
		t.Fatalf("child trace %s != root trace %s", c.TraceID, r.TraceID)
	}
	if c.Parent != r.SpanID {
		t.Fatalf("child parent %s != root span %s", c.Parent, r.SpanID)
	}
	if r.Parent != "" || c.Root() {
		t.Fatalf("root/child confusion: root parent %q, child root=%v", r.Parent, c.Root())
	}
	if r.Service != "svc" || c.Service != "svc" {
		t.Fatalf("service not stamped: %q/%q", r.Service, c.Service)
	}
	if got := r.Attrs["n"]; got != int64(42) {
		t.Fatalf("int attr = %#v, want int64(42)", got)
	}
	if got := r.Attrs["wait"]; got != 0.25 {
		t.Fatalf("duration attr = %#v, want 0.25", got)
	}
	if _, ok := r.Attrs["late"]; ok {
		t.Fatal("attribute set after End was recorded")
	}
	if len(c.Events) != 1 || c.Events[0].Name != "woke" {
		t.Fatalf("child events = %+v", c.Events)
	}
}

func TestRemoteParentContinuation(t *testing.T) {
	coord := New(Options{Service: "coordinator"})
	worker := New(Options{Service: "worker"})
	parent := coord.StartRoot("sweep")
	header := parent.Context().Traceparent()

	sc, err := ParseTraceparent(header)
	if err != nil {
		t.Fatal(err)
	}
	remote := worker.StartRemote("http POST /v1/jobs", sc)
	remote.End()
	parent.End()

	w := worker.Snapshot()
	if len(w) != 1 {
		t.Fatalf("worker has %d spans, want 1", len(w))
	}
	if w[0].TraceID != parent.TraceID() {
		t.Fatalf("worker span trace %s, want %s", w[0].TraceID, parent.TraceID())
	}
	if w[0].Parent != parent.Context().SpanID.String() {
		t.Fatalf("worker span parent %s, want %s", w[0].Parent, parent.Context().SpanID)
	}
	if !w[0].RemoteParent || !w[0].Root() {
		t.Fatalf("worker span should be a remote-parent root: %+v", w[0])
	}

	// An invalid parent falls back to a fresh root.
	fresh := worker.StartRemote("orphan", SpanContext{})
	if fresh.Context().TraceID == sc.TraceID {
		t.Fatal("invalid parent reused the remote trace ID")
	}
}

func TestRingEviction(t *testing.T) {
	tr := New(Options{Capacity: 4})
	for i := 0; i < 10; i++ {
		sp := tr.StartRoot(fmt.Sprintf("s%d", i))
		sp.End()
	}
	spans := tr.Snapshot()
	if len(spans) != 4 {
		t.Fatalf("ring holds %d spans, want 4", len(spans))
	}
	for i, sp := range spans {
		if want := fmt.Sprintf("s%d", 6+i); sp.Name != want {
			t.Fatalf("ring[%d] = %q, want %q (oldest-first order)", i, sp.Name, want)
		}
	}
	st := tr.Stats()
	if st.Ended != 10 || st.Dropped != 6 {
		t.Fatalf("stats = %+v, want Ended 10 Dropped 6", st)
	}
}

func TestJSONLRoundTrip(t *testing.T) {
	tr := New(Options{Service: "svc"})
	root := tr.StartRoot("root")
	child := root.StartChild("child")
	child.SetAttr("hash", "abc123")
	child.End()
	root.End()

	var buf bytes.Buffer
	if err := tr.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	if lines := strings.Count(buf.String(), "\n"); lines != 2 {
		t.Fatalf("JSONL has %d lines, want 2", lines)
	}
	back, err := ReadJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	want := tr.Snapshot()
	if len(back) != len(want) {
		t.Fatalf("decoded %d spans, want %d", len(back), len(want))
	}
	for i := range back {
		if back[i].SpanID != want[i].SpanID || back[i].Name != want[i].Name ||
			back[i].DurationNS != want[i].DurationNS {
			t.Fatalf("span %d changed in flight:\n got %+v\nwant %+v", i, back[i], want[i])
		}
		if !back[i].Start.Equal(want[i].Start) {
			t.Fatalf("span %d start drifted: %v != %v", i, back[i].Start, want[i].Start)
		}
	}

	if _, err := ReadJSONL(strings.NewReader("{not json}\n")); err == nil {
		t.Fatal("ReadJSONL accepted corrupt input")
	}
}

func TestTracesFilterAndHandler(t *testing.T) {
	tr := New(Options{Service: "svc"})
	slow := tr.startRootAt("slow", time.Now().Add(-time.Second))
	slowChild := slow.StartChild("inner")
	slowChild.End()
	slow.End()
	fast := tr.StartRoot("fast")
	fast.End()

	page := tr.Traces("", 0, 0)
	if page.Total != 2 || len(page.Traces) != 2 {
		t.Fatalf("page = %+v, want 2 traces", page)
	}
	// Most recent first.
	if page.Traces[0].Spans[0].Name != "fast" {
		t.Fatalf("first trace is %q, want the most recent", page.Traces[0].Spans[0].Name)
	}

	only := tr.Traces(slow.TraceID(), 0, 0)
	if only.Total != 1 || only.Traces[0].TraceID != slow.TraceID() || len(only.Traces[0].Spans) != 2 {
		t.Fatalf("trace filter returned %+v", only)
	}

	long := tr.Traces("", 500*time.Millisecond, 0)
	if long.Total != 1 || long.Traces[0].TraceID != slow.TraceID() {
		t.Fatalf("min-duration filter returned %+v", long)
	}

	// HTTP: JSON shape, trace filter, jsonl format, bad params.
	h := tr.Handler()
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/traces?trace="+slow.TraceID(), nil))
	if rec.Code != 200 {
		t.Fatalf("handler: HTTP %d: %s", rec.Code, rec.Body)
	}
	var got TracePage
	if err := json.Unmarshal(rec.Body.Bytes(), &got); err != nil {
		t.Fatal(err)
	}
	if got.Total != 1 || len(got.Traces[0].Spans) != 2 {
		t.Fatalf("handler returned %+v", got)
	}

	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/traces?format=jsonl&limit=1", nil))
	if rec.Code != 200 {
		t.Fatalf("jsonl: HTTP %d", rec.Code)
	}
	recs, err := ReadJSONL(rec.Body)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || recs[0].Name != "fast" {
		t.Fatalf("jsonl limit=1 returned %+v", recs)
	}

	for _, bad := range []string{"?min_ms=-1", "?limit=x", "?format=xml"} {
		rec = httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/traces"+bad, nil))
		if rec.Code != 400 {
			t.Errorf("%s: HTTP %d, want 400", bad, rec.Code)
		}
	}
}

func TestNilSafety(t *testing.T) {
	var tr *Tracer
	if tr.Enabled() {
		t.Fatal("nil tracer claims enabled")
	}
	sp := tr.StartRoot("x")
	if sp != nil {
		t.Fatal("nil tracer started a span")
	}
	sp.SetAttr("k", "v")
	sp.AddEvent("e")
	child := sp.StartChild("c")
	if child != nil {
		t.Fatal("nil span started a child")
	}
	sp.End()
	if sp.TraceID() != "" || sp.Context().Valid() {
		t.Fatal("nil span has an identity")
	}
	if got := tr.Snapshot(); got != nil {
		t.Fatalf("nil tracer snapshot = %v", got)
	}

	ctx := ContextWith(context.Background(), nil)
	if FromContext(ctx) != nil {
		t.Fatal("nil span stored in context")
	}
	real := New(Options{}).StartRoot("r")
	ctx = ContextWith(ctx, real)
	if FromContext(ctx) != real {
		t.Fatal("span not recovered from context")
	}

	rec := httptest.NewRecorder()
	tr.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/debug/traces", nil))
	if rec.Code != 404 {
		t.Fatalf("nil handler: HTTP %d, want 404", rec.Code)
	}
}

// Concurrent span creation, mutation, End and scraping must be race-clean
// (run under -race in CI).
func TestConcurrentSpans(t *testing.T) {
	tr := New(Options{Capacity: 64})
	root := tr.StartRoot("root")
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				sp := root.StartChild(fmt.Sprintf("g%d", g))
				sp.SetAttr("i", i)
				sp.AddEvent("tick")
				sp.End()
			}
		}(g)
	}
	stop := make(chan struct{})
	wg.Add(1)
	go func() { // concurrent scraper
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				tr.Snapshot()
				tr.Traces("", 0, 10)
			}
		}
	}()
	for g := 0; g < 4; g++ { // concurrent shared-span mutators
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				root.SetAttr("k", i)
			}
		}()
	}
	time.Sleep(10 * time.Millisecond)
	close(stop)
	wg.Wait()
	root.End()
	if st := tr.Stats(); st.Ended != 801 {
		t.Fatalf("ended %d spans, want 801", st.Ended)
	}
}
