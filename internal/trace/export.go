// Span export: the immutable record format finished spans collect into,
// the JSONL serialization cmd/tracecat consumes, and the GET /debug/traces
// HTTP handler (recent traces, filterable by trace ID and minimum
// duration). The record format is the cross-process contract: every
// process in a fleet — alsd workers, the experiments coordinator — emits
// the same shape, so records from any mix of files and /debug/traces
// endpoints merge into one timeline.

package trace

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"time"
)

// SpanRecord is one finished span, as exported. Times are RFC 3339 with
// nanoseconds; IDs are the lowercase-hex wire forms.
type SpanRecord struct {
	TraceID string `json:"trace_id"`
	SpanID  string `json:"span_id"`
	// Parent is the parent span ID ("" for a root span).
	Parent string `json:"parent_id,omitempty"`
	// RemoteParent marks a span whose parent lives in another process
	// (continued from a traceparent header) — the stitch points of a
	// fleet-wide trace.
	RemoteParent bool `json:"remote_parent,omitempty"`
	// Service names the emitting process (Tracer Options.Service).
	Service    string         `json:"service,omitempty"`
	Name       string         `json:"name"`
	Start      time.Time      `json:"start"`
	End        time.Time      `json:"end"`
	DurationNS int64          `json:"duration_ns"`
	Attrs      map[string]any `json:"attrs,omitempty"`
	Events     []EventRecord  `json:"events,omitempty"`
}

// Duration returns the span's length.
func (r SpanRecord) Duration() time.Duration { return time.Duration(r.DurationNS) }

// Root reports whether the span starts its process-local tree (no parent,
// or a parent in another process).
func (r SpanRecord) Root() bool { return r.Parent == "" || r.RemoteParent }

// EventRecord is one timestamped point event within a span.
type EventRecord struct {
	Time time.Time `json:"t"`
	Name string    `json:"name"`
}

// Stats reports the collector's lifetime counters.
type Stats struct {
	// Ended counts every span ever collected; Dropped counts the ones the
	// ring has since overwritten. Buffered = Ended - Dropped.
	Ended   int64
	Dropped int64
}

// Stats returns the collector counters (zero for nil).
func (t *Tracer) Stats() Stats {
	if t == nil {
		return Stats{}
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return Stats{Ended: t.ended, Dropped: t.dropped}
}

// Snapshot copies the buffered spans in collection order (oldest first).
// Nil-safe: a nil tracer snapshots nothing.
func (t *Tracer) Snapshot() []SpanRecord {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if !t.filled {
		return append([]SpanRecord(nil), t.ring[:t.next]...)
	}
	out := make([]SpanRecord, 0, len(t.ring))
	out = append(out, t.ring[t.next:]...)
	out = append(out, t.ring[:t.next]...)
	return out
}

// WriteJSONL writes every buffered span as one JSON object per line — the
// export format cmd/tracecat reads and the distributed smoke stitches
// across hosts.
func (t *Tracer) WriteJSONL(w io.Writer) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, rec := range t.Snapshot() {
		if err := enc.Encode(rec); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadJSONL decodes a JSONL span export, skipping blank lines. It is the
// inverse of WriteJSONL, shared by cmd/tracecat and the tests.
func ReadJSONL(r io.Reader) ([]SpanRecord, error) {
	var out []SpanRecord
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64<<10), 16<<20)
	line := 0
	for sc.Scan() {
		line++
		raw := sc.Bytes()
		if len(raw) == 0 {
			continue
		}
		var rec SpanRecord
		if err := json.Unmarshal(raw, &rec); err != nil {
			return nil, fmt.Errorf("trace: jsonl line %d: %w", line, err)
		}
		out = append(out, rec)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// TraceView is one trace in the grouped JSON response of /debug/traces.
type TraceView struct {
	TraceID string `json:"trace_id"`
	// Start and DurationNS cover the whole trace (earliest span start to
	// latest span end, as buffered).
	Start      time.Time    `json:"start"`
	DurationNS int64        `json:"duration_ns"`
	Spans      []SpanRecord `json:"spans"`
}

// TracePage is the JSON body of GET /debug/traces.
type TracePage struct {
	// Traces are grouped spans, most recently started trace first.
	Traces []TraceView `json:"traces"`
	// Total counts the traces that matched the filters before the limit
	// cut; Ended/Dropped are the collector's lifetime counters.
	Total   int   `json:"total"`
	Ended   int64 `json:"ended"`
	Dropped int64 `json:"dropped"`
}

// Traces groups the buffered spans by trace ID, filtered and ordered as
// the /debug/traces endpoint reports them: traces whose total duration is
// at least minDur (0 keeps all), most recent first, at most limit traces
// (0 = no limit). A non-empty traceID keeps only that trace.
func (t *Tracer) Traces(traceID string, minDur time.Duration, limit int) TracePage {
	byID := map[string]*TraceView{}
	var order []string
	for _, rec := range t.Snapshot() {
		if traceID != "" && rec.TraceID != traceID {
			continue
		}
		tv, ok := byID[rec.TraceID]
		if !ok {
			tv = &TraceView{TraceID: rec.TraceID, Start: rec.Start}
			byID[rec.TraceID] = tv
			order = append(order, rec.TraceID)
		}
		tv.Spans = append(tv.Spans, rec)
		if rec.Start.Before(tv.Start) {
			tv.Start = rec.Start
		}
		if end := rec.End.Sub(tv.Start); end.Nanoseconds() > tv.DurationNS {
			tv.DurationNS = end.Nanoseconds()
		}
	}
	page := TracePage{Traces: []TraceView{}}
	st := t.Stats()
	page.Ended, page.Dropped = st.Ended, st.Dropped
	for _, id := range order {
		tv := byID[id]
		if time.Duration(tv.DurationNS) < minDur {
			continue
		}
		page.Traces = append(page.Traces, *tv)
	}
	sort.SliceStable(page.Traces, func(i, j int) bool {
		return page.Traces[i].Start.After(page.Traces[j].Start)
	})
	page.Total = len(page.Traces)
	if limit > 0 && len(page.Traces) > limit {
		page.Traces = page.Traces[:limit]
	}
	return page
}

// Handler serves the collector:
//
//	GET /debug/traces                     recent traces, grouped JSON
//	GET /debug/traces?trace=<32 hex id>   one trace
//	GET /debug/traces?min_ms=50           only traces at least that long
//	GET /debug/traces?limit=20            at most N traces (default 100)
//	GET /debug/traces?format=jsonl        flat span records, one per line
//	                                      (the cmd/tracecat input format)
//
// Nil-safe: a nil tracer's handler answers 404 (tracing disabled).
func (t *Tracer) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if t == nil {
			http.Error(w, "tracing is disabled", http.StatusNotFound)
			return
		}
		q := r.URL.Query()
		var minDur time.Duration
		if raw := q.Get("min_ms"); raw != "" {
			ms, err := strconv.ParseFloat(raw, 64)
			if err != nil || ms < 0 {
				http.Error(w, fmt.Sprintf("bad min_ms %q", raw), http.StatusBadRequest)
				return
			}
			minDur = time.Duration(ms * float64(time.Millisecond))
		}
		limit := 100
		if raw := q.Get("limit"); raw != "" {
			n, err := strconv.Atoi(raw)
			if err != nil || n < 0 {
				http.Error(w, fmt.Sprintf("bad limit %q", raw), http.StatusBadRequest)
				return
			}
			limit = n
		}
		page := t.Traces(q.Get("trace"), minDur, limit)
		switch q.Get("format") {
		case "", "json":
			w.Header().Set("Content-Type", "application/json")
			enc := json.NewEncoder(w)
			enc.SetIndent("", "  ")
			enc.Encode(page) //nolint:errcheck // response already committed
		case "jsonl":
			w.Header().Set("Content-Type", "application/jsonl")
			bw := bufio.NewWriter(w)
			enc := json.NewEncoder(bw)
			for _, tv := range page.Traces {
				for _, rec := range tv.Spans {
					enc.Encode(rec) //nolint:errcheck // response already committed
				}
			}
			bw.Flush() //nolint:errcheck
		default:
			http.Error(w, fmt.Sprintf("bad format %q (want json or jsonl)", q.Get("format")), http.StatusBadRequest)
		}
	})
}
