// Package trace is a dependency-free distributed-tracing kernel for the
// serving stack, the sibling of internal/telemetry: where telemetry
// answers "how much, in aggregate", trace answers "where inside this one
// slow request did the time go".
//
// The design mirrors the W3C Trace Context model without importing
// anything: a 16-byte trace ID names one causal request tree across the
// whole fleet, an 8-byte span ID names one timed operation inside it, and
// the `traceparent` HTTP header (00-<trace>-<span>-<flags>) carries the
// identity across process boundaries — the coordinator stamps it on
// worker requests, the worker's middleware continues the remote parent
// instead of minting a new root, and a two-machine sweep renders as one
// timeline.
//
// Hot-path cost is kept span-shaped, not request-shaped: starting a span
// is two ChaCha8 draws and one allocation, attributes append to a
// goroutine-owned slice (spans are owned by one goroutine until End, like
// contexts), and End pushes one immutable SpanRecord into a bounded
// in-process ring buffer under a single mutex. There is no background
// goroutine, no export pipeline, no sampling state machine: the ring
// holds the most recent spans, GET /debug/traces (Handler) and WriteJSONL
// read them back, and cmd/tracecat renders the timeline.
//
// Every API is nil-safe: a nil *Tracer starts nil *Spans, and every
// method of a nil *Span is a no-op — call sites never branch on whether
// tracing is enabled.
package trace

import (
	"context"
	crand "crypto/rand"
	"encoding/hex"
	"fmt"
	mrand "math/rand/v2"
	"sync"
	"time"
)

// TraceID identifies one causal tree of spans, possibly spanning many
// processes. The zero value is invalid (the W3C forbids all-zero IDs).
type TraceID [16]byte

// SpanID identifies one span within a trace. The zero value is invalid.
type SpanID [8]byte

// String renders the ID as 32 lowercase hex digits.
func (t TraceID) String() string { return hex.EncodeToString(t[:]) }

// IsZero reports whether the ID is the invalid all-zero value.
func (t TraceID) IsZero() bool { return t == TraceID{} }

// String renders the ID as 16 lowercase hex digits.
func (s SpanID) String() string { return hex.EncodeToString(s[:]) }

// IsZero reports whether the ID is the invalid all-zero value.
func (s SpanID) IsZero() bool { return s == SpanID{} }

// SpanContext is the propagated identity of one span: what travels in a
// traceparent header and what a child span needs of its parent.
type SpanContext struct {
	TraceID TraceID
	SpanID  SpanID
	// Sampled is the recorded flag of the traceparent header. This
	// implementation records every span it is handed (the ring buffer is
	// the budget); the flag round-trips so downstream tracers see what the
	// origin decided.
	Sampled bool
}

// Valid reports whether the context names a real span (both IDs nonzero).
func (sc SpanContext) Valid() bool { return !sc.TraceID.IsZero() && !sc.SpanID.IsZero() }

// Traceparent renders the context in the W3C header format,
// version 00: "00-<32 hex trace>-<16 hex span>-<2 hex flags>".
func (sc SpanContext) Traceparent() string {
	flags := "00"
	if sc.Sampled {
		flags = "01"
	}
	return "00-" + sc.TraceID.String() + "-" + sc.SpanID.String() + "-" + flags
}

// ParseTraceparent parses a W3C traceparent header value. It accepts any
// version byte except the reserved ff (per spec, higher versions are
// parsed as version 00 ignoring trailing fields) and rejects malformed
// lengths, non-hex digits, uppercase hex (the spec mandates lowercase)
// and all-zero IDs.
func ParseTraceparent(s string) (SpanContext, error) {
	// Fixed layout: 2 (version) + 1 + 32 (trace) + 1 + 16 (span) + 1 + 2
	// (flags) = 55 bytes minimum; longer values are allowed only for
	// future versions and only with a '-' separator after the flags.
	const minLen = 55
	if len(s) < minLen {
		return SpanContext{}, fmt.Errorf("trace: traceparent %q too short", s)
	}
	if s[2] != '-' || s[35] != '-' || s[52] != '-' {
		return SpanContext{}, fmt.Errorf("trace: traceparent %q has misplaced separators", s)
	}
	version, err := hexByte(s[0:2])
	if err != nil {
		return SpanContext{}, fmt.Errorf("trace: traceparent version: %w", err)
	}
	if version == 0xff {
		return SpanContext{}, fmt.Errorf("trace: traceparent version ff is forbidden")
	}
	if len(s) > minLen {
		if version == 0 {
			return SpanContext{}, fmt.Errorf("trace: version-00 traceparent %q has trailing data", s)
		}
		if s[minLen] != '-' {
			return SpanContext{}, fmt.Errorf("trace: traceparent %q has malformed trailing data", s)
		}
	}
	var sc SpanContext
	if err := decodeLowerHex(sc.TraceID[:], s[3:35]); err != nil {
		return SpanContext{}, fmt.Errorf("trace: traceparent trace-id: %w", err)
	}
	if err := decodeLowerHex(sc.SpanID[:], s[36:52]); err != nil {
		return SpanContext{}, fmt.Errorf("trace: traceparent parent-id: %w", err)
	}
	flags, err := hexByte(s[53:55])
	if err != nil {
		return SpanContext{}, fmt.Errorf("trace: traceparent flags: %w", err)
	}
	if sc.TraceID.IsZero() {
		return SpanContext{}, fmt.Errorf("trace: traceparent trace-id is all zeros")
	}
	if sc.SpanID.IsZero() {
		return SpanContext{}, fmt.Errorf("trace: traceparent parent-id is all zeros")
	}
	sc.Sampled = flags&0x01 != 0
	return sc, nil
}

// hexByte decodes exactly two lowercase hex digits.
func hexByte(s string) (byte, error) {
	var b [1]byte
	if err := decodeLowerHex(b[:], s); err != nil {
		return 0, err
	}
	return b[0], nil
}

// decodeLowerHex fills dst from exactly len(dst)*2 lowercase hex digits.
// The W3C grammar forbids uppercase, so this is stricter than
// encoding/hex.
func decodeLowerHex(dst []byte, s string) error {
	if len(s) != len(dst)*2 {
		return fmt.Errorf("hex field %q has length %d, want %d", s, len(s), len(dst)*2)
	}
	for i := range dst {
		hi, ok1 := lowerHexVal(s[2*i])
		lo, ok2 := lowerHexVal(s[2*i+1])
		if !ok1 || !ok2 {
			return fmt.Errorf("hex field %q has a non-lowercase-hex digit", s)
		}
		dst[i] = hi<<4 | lo
	}
	return nil
}

func lowerHexVal(c byte) (byte, bool) {
	switch {
	case '0' <= c && c <= '9':
		return c - '0', true
	case 'a' <= c && c <= 'f':
		return c - 'a' + 10, true
	}
	return 0, false
}

// Options configures a Tracer.
type Options struct {
	// Service names the process in every exported span ("alsd:8080",
	// "experiments"), so a merged multi-host timeline shows who did what.
	Service string
	// Capacity bounds the span ring buffer (default 16384 records).
	// When full, the oldest records are overwritten; Dropped counts them.
	Capacity int
}

// DefaultCapacity is the ring-buffer bound when Options.Capacity is 0.
const DefaultCapacity = 16384

// Tracer mints spans and collects the finished ones in a bounded ring.
// A nil *Tracer is a valid disabled tracer: it starts nil spans and
// collects nothing.
type Tracer struct {
	service string

	mu      sync.Mutex
	rng     *mrand.ChaCha8 // ID source; never touches the flow RNGs
	ring    []SpanRecord
	next    int   // ring write index
	filled  bool  // ring has wrapped at least once
	ended   int64 // total spans ever collected
	dropped int64 // spans overwritten by the ring
}

// New creates a Tracer. The ID generator is seeded from crypto/rand once;
// span creation afterwards never blocks on the OS entropy pool.
func New(opts Options) *Tracer {
	capacity := opts.Capacity
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	var seed [32]byte
	if _, err := crand.Read(seed[:]); err != nil {
		// crypto/rand never fails on supported platforms; a zero seed
		// would still yield unique-within-process IDs.
		_ = err
	}
	return &Tracer{
		service: opts.Service,
		rng:     mrand.NewChaCha8(seed),
		ring:    make([]SpanRecord, capacity),
	}
}

// Enabled reports whether the tracer records spans (it is non-nil).
func (t *Tracer) Enabled() bool { return t != nil }

// Service returns the tracer's process name ("" for nil).
func (t *Tracer) Service() string {
	if t == nil {
		return ""
	}
	return t.service
}

// ids draws a fresh trace and span ID pair (or just a span ID).
func (t *Tracer) ids(withTrace bool) (tid TraceID, sid SpanID) {
	t.mu.Lock()
	for {
		if withTrace {
			fillRand(t.rng, tid[:])
		}
		fillRand(t.rng, sid[:])
		// All-zero IDs are invalid on the wire; redraw (probability ~0).
		if (!withTrace || !tid.IsZero()) && !sid.IsZero() {
			break
		}
	}
	t.mu.Unlock()
	return tid, sid
}

func fillRand(rng *mrand.ChaCha8, b []byte) {
	for i := 0; i < len(b); i += 8 {
		v := rng.Uint64()
		for j := i; j < len(b) && j < i+8; j++ {
			b[j] = byte(v)
			v >>= 8
		}
	}
}

// StartRoot begins a new trace with one root span. Nil-safe.
func (t *Tracer) StartRoot(name string) *Span {
	return t.startRootAt(name, time.Now())
}

func (t *Tracer) startRootAt(name string, start time.Time) *Span {
	if t == nil {
		return nil
	}
	tid, sid := t.ids(true)
	return &Span{
		tracer: t,
		sc:     SpanContext{TraceID: tid, SpanID: sid, Sampled: true},
		name:   name,
		start:  start,
	}
}

// StartRemote begins a span continuing a remote parent (typically parsed
// from an incoming traceparent header): same trace ID, new span ID, the
// remote span as parent. An invalid parent falls back to a new root, so
// callers can pass whatever they parsed. Nil-safe.
func (t *Tracer) StartRemote(name string, parent SpanContext) *Span {
	if t == nil {
		return nil
	}
	if !parent.Valid() {
		return t.StartRoot(name)
	}
	_, sid := t.ids(false)
	return &Span{
		tracer:       t,
		sc:           SpanContext{TraceID: parent.TraceID, SpanID: sid, Sampled: parent.Sampled},
		parent:       parent.SpanID,
		remoteParent: true,
		name:         name,
		start:        time.Now(),
	}
}

// Span is one timed operation. A span is mutated only by the goroutine
// that owns it (the same ownership discipline as a context) until End,
// which publishes an immutable record to the tracer's ring; SetAttr,
// AddEvent and End after End are no-ops. Every method is nil-safe.
type Span struct {
	tracer       *Tracer
	sc           SpanContext
	parent       SpanID
	remoteParent bool
	name         string
	start        time.Time
	attrs        []Attr
	events       []EventRecord
	mu           sync.Mutex
	ended        bool
}

// Attr is one span attribute. Values are kept as the small JSON-friendly
// set: string, bool, int64, float64.
type Attr struct {
	Key   string
	Value any
}

// Context returns the span's propagated identity (zero for nil).
func (s *Span) Context() SpanContext {
	if s == nil {
		return SpanContext{}
	}
	return s.sc
}

// TraceID returns the span's trace ID string ("" for nil) — what the
// serving stack reuses as the request ID for log correlation.
func (s *Span) TraceID() string {
	if s == nil {
		return ""
	}
	return s.sc.TraceID.String()
}

// SetAttr records one attribute. Allowed value types are string, bool,
// int/int64, float64 and time.Duration (stored as float seconds);
// anything else is stored via fmt.Sprint. No-op on nil or ended spans.
func (s *Span) SetAttr(key string, value any) {
	if s == nil {
		return
	}
	switch v := value.(type) {
	case int:
		value = int64(v)
	case time.Duration:
		value = v.Seconds()
	case string, bool, int64, float64:
	default:
		value = fmt.Sprint(value)
	}
	s.mu.Lock()
	if !s.ended {
		s.attrs = append(s.attrs, Attr{Key: key, Value: value})
	}
	s.mu.Unlock()
}

// AddEvent records a timestamped point event on the span.
func (s *Span) AddEvent(name string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	if !s.ended {
		s.events = append(s.events, EventRecord{Time: time.Now(), Name: name})
	}
	s.mu.Unlock()
}

// StartChild begins a child span on the same tracer. Nil-safe: a nil
// parent yields a nil child, so whole call trees disable together.
func (s *Span) StartChild(name string) *Span {
	return s.StartChildAt(name, time.Now())
}

// StartChildAt begins a child span with an explicit start time — the
// retroactive form used for phases whose boundaries are only known in
// hindsight (one optimizer generation spans "previous progress callback
// to this one").
func (s *Span) StartChildAt(name string, start time.Time) *Span {
	if s == nil {
		return nil
	}
	_, sid := s.tracer.ids(false)
	return &Span{
		tracer: s.tracer,
		sc:     SpanContext{TraceID: s.sc.TraceID, SpanID: sid, Sampled: s.sc.Sampled},
		parent: s.sc.SpanID,
		name:   name,
		start:  start,
	}
}

// End finishes the span at time.Now and publishes it to the collector.
// Only the first End wins.
func (s *Span) End() { s.EndAt(time.Now()) }

// EndAt finishes the span at an explicit time.
func (s *Span) EndAt(end time.Time) {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.ended {
		s.mu.Unlock()
		return
	}
	s.ended = true
	rec := SpanRecord{
		TraceID:      s.sc.TraceID.String(),
		SpanID:       s.sc.SpanID.String(),
		Name:         s.name,
		Service:      s.tracer.service,
		Start:        s.start,
		End:          end,
		DurationNS:   end.Sub(s.start).Nanoseconds(),
		Attrs:        attrMap(s.attrs),
		Events:       s.events,
		RemoteParent: s.remoteParent,
	}
	if !s.parent.IsZero() {
		rec.Parent = s.parent.String()
	}
	s.mu.Unlock()
	s.tracer.collect(rec)
}

func attrMap(attrs []Attr) map[string]any {
	if len(attrs) == 0 {
		return nil
	}
	m := make(map[string]any, len(attrs))
	for _, a := range attrs {
		m[a.Key] = a.Value
	}
	return m
}

// collect pushes one finished span into the ring.
func (t *Tracer) collect(rec SpanRecord) {
	t.mu.Lock()
	if t.filled {
		t.dropped++
	}
	t.ring[t.next] = rec
	t.next++
	if t.next == len(t.ring) {
		t.next = 0
		t.filled = true
	}
	t.ended++
	t.mu.Unlock()
}

// spanKey is the context key for the active span.
type spanKey struct{}

// ContextWith returns ctx carrying span as the active span. A nil span
// returns ctx unchanged, so disabled tracing adds no context layers.
func ContextWith(ctx context.Context, span *Span) context.Context {
	if span == nil {
		return ctx
	}
	return context.WithValue(ctx, spanKey{}, span)
}

// FromContext returns the active span, or nil when ctx carries none.
func FromContext(ctx context.Context) *Span {
	if ctx == nil {
		return nil
	}
	span, _ := ctx.Value(spanKey{}).(*Span)
	return span
}
