package telemetry

import (
	"fmt"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

// TestExpositionRoundTrip renders one of every metric kind and parses the
// output back, asserting every series survives byte-exact and
// value-exact — the same round trip the /metrics endpoint test and the
// load harness rely on.
func TestExpositionRoundTrip(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("test_ops_total", "operations")
	g := reg.Gauge("test_depth", "queue depth")
	reg.GaugeFunc("test_live", "sampled", func() float64 { return 3.5 })
	vec := reg.CounterVec("test_lane_total", "per-lane", "lane")
	h := reg.Histogram("test_latency_seconds", "latency", []float64{0.1, 1, 10})

	c.Add(41)
	c.Inc()
	g.Set(7)
	g.Dec()
	vec.With("local").Add(3)
	vec.With("http://w1:8080").Inc()
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(99)

	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	got, err := Parse(strings.NewReader(b.String()))
	if err != nil {
		t.Fatalf("Parse of own output: %v\n%s", err, b.String())
	}

	want := map[string]float64{
		"test_ops_total":                         42,
		"test_depth":                             6,
		"test_live":                              3.5,
		`test_lane_total{lane="http://w1:8080"}`: 1,
		`test_lane_total{lane="local"}`:          3,
		`test_latency_seconds_bucket{le="0.1"}`:  1,
		`test_latency_seconds_bucket{le="1"}`:    2,
		`test_latency_seconds_bucket{le="10"}`:   2,
		`test_latency_seconds_bucket{le="+Inf"}`: 3,
		"test_latency_seconds_sum":               99.55,
		"test_latency_seconds_count":             3,
	}
	for series, wantV := range want {
		gotV, ok := got[series]
		if !ok {
			t.Errorf("series %q missing from exposition:\n%s", series, b.String())
			continue
		}
		if gotV != wantV {
			t.Errorf("series %q = %v, want %v", series, gotV, wantV)
		}
	}
	if len(got) != len(want) {
		t.Errorf("exposition has %d series, want %d:\n%s", len(got), len(want), b.String())
	}
}

// TestExpositionFormat pins the literal text framing (# HELP/# TYPE
// ordering, histogram suffixes) that scrapers depend on.
func TestExpositionFormat(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("a_total", "things that\nhappened").Add(2)
	reg.Gauge("b", "").Set(-4)

	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	want := "# HELP a_total things that\\nhappened\n" +
		"# TYPE a_total counter\n" +
		"a_total 2\n" +
		"# TYPE b gauge\n" +
		"b -4\n"
	if b.String() != want {
		t.Errorf("exposition:\n%q\nwant:\n%q", b.String(), want)
	}
}

// TestCounterMonotonicUnderRace hammers one counter, one vec series and
// one histogram from many goroutines while a reader scrapes, asserting
// (under -race) that observed counter values never decrease and the final
// totals are exact.
func TestCounterMonotonicUnderRace(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("race_total", "")
	vec := reg.CounterVec("race_lane_total", "", "lane")
	h := reg.Histogram("race_hist", "", []float64{1})

	const writers, perWriter = 8, 1000
	stop := make(chan struct{})
	var readerWG sync.WaitGroup
	readerWG.Add(1)
	go func() {
		defer readerWG.Done()
		var last float64
		for {
			select {
			case <-stop:
				return
			default:
			}
			var b strings.Builder
			if err := reg.WritePrometheus(&b); err != nil {
				t.Error(err)
				return
			}
			m, err := Parse(strings.NewReader(b.String()))
			if err != nil {
				t.Error(err)
				return
			}
			if v := m["race_total"]; v < last {
				t.Errorf("counter went backwards: %v after %v", v, last)
				return
			} else {
				last = v
			}
		}
	}()

	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			lane := vec.With(fmt.Sprintf("lane%d", w%3))
			for i := 0; i < perWriter; i++ {
				c.Inc()
				lane.Inc()
				h.Observe(float64(i % 3))
			}
		}(w)
	}
	wg.Wait()
	close(stop)
	readerWG.Wait()

	if got := c.Value(); got != writers*perWriter {
		t.Errorf("counter = %d, want %d", got, writers*perWriter)
	}
	if got := h.Count(); got != writers*perWriter {
		t.Errorf("histogram count = %d, want %d", got, writers*perWriter)
	}
	var lanes int64
	for i := 0; i < 3; i++ {
		lanes += vec.With(fmt.Sprintf("lane%d", i)).Value()
	}
	if lanes != writers*perWriter {
		t.Errorf("vec total = %d, want %d", lanes, writers*perWriter)
	}
}

// TestHandler serves a scrape over HTTP with the standard content type.
func TestHandler(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("h_total", "x").Inc()
	ts := httptest.NewServer(reg.Handler())
	defer ts.Close()

	resp, err := ts.Client().Get(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("Content-Type = %q", ct)
	}
	m, err := Parse(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if m["h_total"] != 1 {
		t.Errorf("scraped h_total = %v, want 1", m["h_total"])
	}
}

// TestRegistrationPanics pins that name collisions and malformed names
// fail loudly at startup, not silently at scrape time.
func TestRegistrationPanics(t *testing.T) {
	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: no panic", name)
			}
		}()
		fn()
	}
	reg := NewRegistry()
	reg.Counter("dup_total", "")
	mustPanic("duplicate", func() { reg.Counter("dup_total", "") })
	mustPanic("invalid name", func() { reg.Gauge("9starts_with_digit", "") })
	mustPanic("empty name", func() { reg.Gauge("", "") })
	mustPanic("no labels", func() { reg.CounterVec("v_total", "") })
	mustPanic("bad buckets", func() { reg.Histogram("h", "", []float64{2, 1}) })
	mustPanic("label arity", func() { reg.CounterVec("v2_total", "", "a").With("x", "y") })
}

// TestCounterIgnoresNegative pins the monotonicity guard.
func TestCounterIgnoresNegative(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("neg_total", "")
	c.Add(5)
	c.Add(-3)
	if c.Value() != 5 {
		t.Errorf("counter = %d, want 5", c.Value())
	}
}

// TestParseTolerance: timestamps and unknown comment lines are accepted;
// garbage is named by line.
func TestParseTolerance(t *testing.T) {
	m, err := Parse(strings.NewReader("# EOF\nx_total 4 1712345678901\n\ny 2\n"))
	if err != nil {
		t.Fatal(err)
	}
	if m["x_total"] != 4 || m["y"] != 2 {
		t.Errorf("parsed %v", m)
	}
	if _, err := Parse(strings.NewReader("junk-without-value\n")); err == nil {
		t.Error("malformed line parsed without error")
	}
}

// TestGaugeVec pins the labeled-gauge family: TYPE gauge, sorted series,
// settable/decrementable children, and Forget dropping a retired series
// from the exposition.
func TestGaugeVec(t *testing.T) {
	reg := NewRegistry()
	v := reg.GaugeVec("depth", "Per-tenant depth.", "tenant")
	a := v.With("acme")
	b := v.With("zeta")
	a.Set(7)
	a.Add(-2)
	b.Inc()
	b.Dec()
	b.Inc()
	if a.Value() != 5 || b.Value() != 1 {
		t.Fatalf("values = %d, %d; want 5, 1", a.Value(), b.Value())
	}

	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	want := "# HELP depth Per-tenant depth.\n# TYPE depth gauge\ndepth{tenant=\"acme\"} 5\ndepth{tenant=\"zeta\"} 1\n"
	if sb.String() != want {
		t.Errorf("exposition:\n%s\nwant:\n%s", sb.String(), want)
	}

	v.Forget("acme")
	sb.Reset()
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(sb.String(), "acme") {
		t.Errorf("forgotten series still exposed:\n%s", sb.String())
	}
	if !strings.Contains(sb.String(), "depth{tenant=\"zeta\"} 1") {
		t.Errorf("surviving series lost:\n%s", sb.String())
	}
	// Re-resolving a forgotten series starts a fresh child.
	if v.With("acme").Value() != 0 {
		t.Error("re-created series kept its old value")
	}
}
