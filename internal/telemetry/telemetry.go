// Package telemetry is a dependency-free metrics kernel for the serving
// stack: counters, gauges and histograms registered in a Registry and
// exposed in the Prometheus text exposition format (version 0.0.4), so
// any standard scraper — or curl — can read them.
//
// The package trades generality for zero overhead on hot paths:
//
//   - Counters and gauges are single atomic words; Add/Inc/Set never
//     allocate and never take a lock.
//   - Histograms are fixed-bucket atomic arrays; Observe is a binary
//     search plus two atomic adds.
//   - Labels are supported through vectors (CounterVec) whose per-series
//     children are resolved once and cached by the caller; resolving a
//     child takes a mutex, using it does not.
//
// Metric names are frozen API: internal/service ships a contract test
// pinning every name it registers, so a rename is a deliberate,
// test-visible act — exactly like a wire-format change. Register metrics
// at construction time; registration panics on invalid or duplicate
// names because both are programmer errors, not runtime conditions.
//
// Parse implements the inverse direction (text exposition → series map)
// for tests, the load harness and the metrics-scrape example; it is not
// a general Prometheus parser, just enough for round-tripping what
// WritePrometheus emits.
package telemetry

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// A metric is one named family that can render itself into the text
// exposition format.
type metric interface {
	name() string
	write(w io.Writer) error
}

// Registry holds an ordered set of metric families. The zero value is not
// usable; create with NewRegistry. All methods are safe for concurrent
// use, but metrics are normally registered once at startup.
type Registry struct {
	mu      sync.Mutex
	metrics []metric
	byName  map[string]metric
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: map[string]metric{}}
}

// register indexes a new family, panicking on duplicate or invalid names
// (programmer errors: metric names are part of the frozen operational
// contract and must be unique and well-formed at compile time).
func (r *Registry) register(m metric) {
	if !validName(m.name()) {
		panic(fmt.Sprintf("telemetry: invalid metric name %q", m.name()))
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.byName[m.name()]; dup {
		panic(fmt.Sprintf("telemetry: metric %q registered twice", m.name()))
	}
	r.byName[m.name()] = m
	r.metrics = append(r.metrics, m)
}

// MetricNames returns every registered family name in registration order.
// The service's metric-name contract test pins this list.
func (r *Registry) MetricNames() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	names := make([]string, len(r.metrics))
	for i, m := range r.metrics {
		names[i] = m.name()
	}
	return names
}

// WritePrometheus renders every family in registration order.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	metrics := append([]metric(nil), r.metrics...)
	r.mu.Unlock()
	for _, m := range metrics {
		if err := m.write(w); err != nil {
			return err
		}
	}
	return nil
}

// Handler serves the registry as a text-exposition scrape endpoint.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		var b strings.Builder
		if err := r.WritePrometheus(&b); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		io.WriteString(w, b.String()) //nolint:errcheck // response already committed
	})
}

func validName(s string) bool {
	if s == "" {
		return false
	}
	for i, c := range s {
		alpha := c == '_' || c == ':' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
		if !alpha && (i == 0 || c < '0' || c > '9') {
			return false
		}
	}
	return true
}

// writeHeader emits the # HELP / # TYPE preamble of one family.
func writeHeader(w io.Writer, name, help, typ string) error {
	if help != "" {
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n", name, escapeHelp(help)); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintf(w, "# TYPE %s %s\n", name, typ)
	return err
}

func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

func escapeLabel(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, `"`, `\"`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// formatValue renders a sample value the way Prometheus expects: integers
// without an exponent, everything else in the shortest round-trip form.
func formatValue(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// ---- counter ---------------------------------------------------------------

// Counter is a monotonically increasing value. The zero value is usable
// but unregistered; obtain registered counters from Registry.Counter.
type Counter struct {
	nameStr, help string
	v             atomic.Int64
}

// Counter registers and returns a new counter family with one unlabeled
// series.
func (r *Registry) Counter(name, help string) *Counter {
	c := &Counter{nameStr: name, help: help}
	r.register(c)
	return c
}

// Inc adds 1.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n; negative deltas are ignored (counters only go up).
func (c *Counter) Add(n int64) {
	if n > 0 {
		c.v.Add(n)
	}
}

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

func (c *Counter) name() string { return c.nameStr }

func (c *Counter) write(w io.Writer) error {
	if err := writeHeader(w, c.nameStr, c.help, "counter"); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s %d\n", c.nameStr, c.v.Load())
	return err
}

// ---- gauge -----------------------------------------------------------------

// Gauge is a value that can go up and down.
type Gauge struct {
	nameStr, help string
	v             atomic.Int64
}

// Gauge registers and returns a new gauge family with one unlabeled
// series.
func (r *Registry) Gauge(name, help string) *Gauge {
	g := &Gauge{nameStr: name, help: help}
	r.register(g)
	return g
}

// Set replaces the value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add shifts the value by n (negative allowed).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Inc adds 1; Dec subtracts 1.
func (g *Gauge) Inc() { g.v.Add(1) }
func (g *Gauge) Dec() { g.v.Add(-1) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

func (g *Gauge) name() string { return g.nameStr }

func (g *Gauge) write(w io.Writer) error {
	if err := writeHeader(w, g.nameStr, g.help, "gauge"); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s %d\n", g.nameStr, g.v.Load())
	return err
}

// GaugeFunc is a gauge sampled at scrape time from a callback — for
// values something else already maintains (a queue length, a table size).
// The callback must be safe for concurrent use.
type GaugeFunc struct {
	nameStr, help string
	fn            func() float64
}

// GaugeFunc registers a callback-sampled gauge.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) *GaugeFunc {
	g := &GaugeFunc{nameStr: name, help: help, fn: fn}
	r.register(g)
	return g
}

func (g *GaugeFunc) name() string { return g.nameStr }

func (g *GaugeFunc) write(w io.Writer) error {
	if err := writeHeader(w, g.nameStr, g.help, "gauge"); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s %s\n", g.nameStr, formatValue(g.fn()))
	return err
}

// ---- vectors ---------------------------------------------------------------

// CounterVec is a counter family partitioned by label values.
type CounterVec struct {
	nameStr, help string
	labels        []string

	mu       sync.Mutex
	children map[string]*vecChild
	order    []string // insertion order of series keys; exposition sorts
}

type vecChild struct {
	labelValues []string
	v           atomic.Int64
}

// CounterVec registers a labeled counter family.
func (r *Registry) CounterVec(name, help string, labels ...string) *CounterVec {
	if len(labels) == 0 {
		panic("telemetry: CounterVec needs at least one label")
	}
	v := &CounterVec{nameStr: name, help: help, labels: labels, children: map[string]*vecChild{}}
	r.register(v)
	return v
}

// With returns the series for the given label values (created on first
// use). Callers on hot paths should resolve once and hold the child.
func (v *CounterVec) With(values ...string) *VecCounter {
	if len(values) != len(v.labels) {
		panic(fmt.Sprintf("telemetry: %s wants %d label value(s), got %d", v.nameStr, len(v.labels), len(values)))
	}
	key := strings.Join(values, "\x00")
	v.mu.Lock()
	defer v.mu.Unlock()
	c, ok := v.children[key]
	if !ok {
		c = &vecChild{labelValues: append([]string(nil), values...)}
		v.children[key] = c
		v.order = append(v.order, key)
	}
	return &VecCounter{c}
}

// VecCounter is one series of a CounterVec.
type VecCounter struct{ c *vecChild }

// Inc adds 1.
func (c *VecCounter) Inc() { c.c.v.Add(1) }

// Add adds n; negative deltas are ignored.
func (c *VecCounter) Add(n int64) {
	if n > 0 {
		c.c.v.Add(n)
	}
}

// Value returns the series' current count.
func (c *VecCounter) Value() int64 { return c.c.v.Load() }

func (v *CounterVec) name() string { return v.nameStr }

func (v *CounterVec) write(w io.Writer) error {
	if err := writeHeader(w, v.nameStr, v.help, "counter"); err != nil {
		return err
	}
	v.mu.Lock()
	keys := append([]string(nil), v.order...)
	sort.Strings(keys)
	type row struct {
		labels string
		val    int64
	}
	rows := make([]row, 0, len(keys))
	for _, k := range keys {
		c := v.children[k]
		var b strings.Builder
		for i, lv := range c.labelValues {
			if i > 0 {
				b.WriteByte(',')
			}
			fmt.Fprintf(&b, "%s=%q", v.labels[i], escapeLabel(lv))
		}
		rows = append(rows, row{labels: b.String(), val: c.v.Load()})
	}
	v.mu.Unlock()
	for _, rw := range rows {
		if _, err := fmt.Fprintf(w, "%s{%s} %d\n", v.nameStr, rw.labels, rw.val); err != nil {
			return err
		}
	}
	return nil
}

// GaugeVec is a gauge family partitioned by label values — the
// cluster-facing sibling of CounterVec (e.g. per-tenant queue depth,
// per-worker observed throughput). Children share CounterVec's storage
// and exposition machinery; only the TYPE line and the settable/decrement
// semantics differ.
type GaugeVec struct {
	nameStr, help string
	labels        []string

	mu       sync.Mutex
	children map[string]*vecChild
	order    []string
}

// GaugeVec registers a labeled gauge family.
func (r *Registry) GaugeVec(name, help string, labels ...string) *GaugeVec {
	if len(labels) == 0 {
		panic("telemetry: GaugeVec needs at least one label")
	}
	v := &GaugeVec{nameStr: name, help: help, labels: labels, children: map[string]*vecChild{}}
	r.register(v)
	return v
}

// With returns the series for the given label values (created on first
// use). Callers on hot paths should resolve once and hold the child.
func (v *GaugeVec) With(values ...string) *VecGauge {
	if len(values) != len(v.labels) {
		panic(fmt.Sprintf("telemetry: %s wants %d label value(s), got %d", v.nameStr, len(v.labels), len(values)))
	}
	key := strings.Join(values, "\x00")
	v.mu.Lock()
	defer v.mu.Unlock()
	c, ok := v.children[key]
	if !ok {
		c = &vecChild{labelValues: append([]string(nil), values...)}
		v.children[key] = c
		v.order = append(v.order, key)
	}
	return &VecGauge{c}
}

// Forget drops the series for the given label values, so a retired
// source (a deregistered worker, an idle tenant) stops appearing in the
// exposition instead of freezing at its last value forever.
func (v *GaugeVec) Forget(values ...string) {
	key := strings.Join(values, "\x00")
	v.mu.Lock()
	defer v.mu.Unlock()
	if _, ok := v.children[key]; !ok {
		return
	}
	delete(v.children, key)
	for i, k := range v.order {
		if k == key {
			v.order = append(v.order[:i], v.order[i+1:]...)
			break
		}
	}
}

// VecGauge is one series of a GaugeVec.
type VecGauge struct{ c *vecChild }

// Set replaces the value.
func (g *VecGauge) Set(n int64) { g.c.v.Store(n) }

// Add shifts the value by n (negative allowed).
func (g *VecGauge) Add(n int64) { g.c.v.Add(n) }

// Inc adds 1; Dec subtracts 1.
func (g *VecGauge) Inc() { g.c.v.Add(1) }
func (g *VecGauge) Dec() { g.c.v.Add(-1) }

// Value returns the series' current value.
func (g *VecGauge) Value() int64 { return g.c.v.Load() }

func (v *GaugeVec) name() string { return v.nameStr }

func (v *GaugeVec) write(w io.Writer) error {
	if err := writeHeader(w, v.nameStr, v.help, "gauge"); err != nil {
		return err
	}
	v.mu.Lock()
	keys := append([]string(nil), v.order...)
	sort.Strings(keys)
	type row struct {
		labels string
		val    int64
	}
	rows := make([]row, 0, len(keys))
	for _, k := range keys {
		c := v.children[k]
		var b strings.Builder
		for i, lv := range c.labelValues {
			if i > 0 {
				b.WriteByte(',')
			}
			fmt.Fprintf(&b, "%s=%q", v.labels[i], escapeLabel(lv))
		}
		rows = append(rows, row{labels: b.String(), val: c.v.Load()})
	}
	v.mu.Unlock()
	for _, rw := range rows {
		if _, err := fmt.Fprintf(w, "%s{%s} %d\n", v.nameStr, rw.labels, rw.val); err != nil {
			return err
		}
	}
	return nil
}

// ---- histogram -------------------------------------------------------------

// DefBuckets is a latency-shaped default bucket layout in seconds,
// spanning sub-millisecond submits to minute-long flows.
var DefBuckets = []float64{.001, .0025, .005, .01, .025, .05, .1, .25, .5, 1, 2.5, 5, 10, 30, 60, 120}

// Histogram observes a distribution into fixed cumulative buckets. Sum is
// kept in float64 bits under CAS; counts are plain atomic adds.
type Histogram struct {
	nameStr, help string
	bounds        []float64 // upper bounds, ascending; +Inf implicit
	counts        []atomic.Int64
	count         atomic.Int64
	sumBits       atomic.Uint64
}

// Histogram registers a histogram family with the given ascending bucket
// upper bounds (nil selects DefBuckets).
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	if buckets == nil {
		buckets = DefBuckets
	}
	for i := 1; i < len(buckets); i++ {
		if buckets[i] <= buckets[i-1] {
			panic(fmt.Sprintf("telemetry: %s buckets not ascending at %d", name, i))
		}
	}
	h := &Histogram{
		nameStr: name,
		help:    help,
		bounds:  append([]float64(nil), buckets...),
		counts:  make([]atomic.Int64, len(buckets)),
	}
	r.register(h)
	return h
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v)
	if i < len(h.counts) {
		h.counts[i].Add(1)
	}
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns how many samples were observed.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of all observed samples.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

func (h *Histogram) name() string { return h.nameStr }

func (h *Histogram) write(w io.Writer) error {
	if err := writeHeader(w, h.nameStr, h.help, "histogram"); err != nil {
		return err
	}
	var cum int64
	for i, b := range h.bounds {
		cum += h.counts[i].Load()
		if _, err := fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", h.nameStr, formatValue(b), cum); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", h.nameStr, h.count.Load()); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%s_sum %s\n", h.nameStr, formatValue(h.Sum())); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_count %d\n", h.nameStr, h.count.Load())
	return err
}

// ---- parsing ---------------------------------------------------------------

// Parse reads a text exposition and returns every sample keyed by its
// series string — the metric name plus any label set, byte-for-byte as
// emitted (e.g. `als_queue_depth` or `als_http_requests_total{code="200",
// route="POST /v2/jobs"}`). It understands exactly what WritePrometheus
// produces (and what real Prometheus servers emit for these types);
// comment and blank lines are skipped, anything else malformed is an
// error naming the line.
func Parse(r io.Reader) (map[string]float64, error) {
	out := map[string]float64{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<22)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		// The value is everything after the last space outside braces; the
		// series is everything before it. Label values may contain spaces,
		// so split from the right of the closing brace when one exists.
		var series, valStr string
		if end := strings.LastIndexByte(line, '}'); end >= 0 {
			series = line[:end+1]
			valStr = strings.TrimSpace(line[end+1:])
		} else {
			i := strings.IndexByte(line, ' ')
			if i < 0 {
				return nil, fmt.Errorf("telemetry: parse line %d: no value in %q", lineNo, line)
			}
			series, valStr = line[:i], strings.TrimSpace(line[i+1:])
		}
		// Exposition lines may carry an optional trailing timestamp.
		if fields := strings.Fields(valStr); len(fields) > 1 {
			valStr = fields[0]
		}
		v, err := strconv.ParseFloat(valStr, 64)
		if err != nil {
			return nil, fmt.Errorf("telemetry: parse line %d: value %q: %v", lineNo, valStr, err)
		}
		out[series] = v
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("telemetry: parse: %w", err)
	}
	return out, nil
}
