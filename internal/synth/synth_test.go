package synth

import (
	"math/rand"
	"testing"

	"repro/internal/cell"
	"repro/internal/netlist"
	"repro/internal/sim"
)

// equivalent checks functional equality by exhaustive simulation.
func equivalent(t *testing.T, a, b *netlist.Circuit) bool {
	t.Helper()
	v, err := sim.Exhaustive(len(a.PIs))
	if err != nil {
		t.Fatal(err)
	}
	ra, err := sim.Run(a, v)
	if err != nil {
		t.Fatal(err)
	}
	rb, err := sim.Run(b, v)
	if err != nil {
		t.Fatal(err)
	}
	pa, pb := sim.POSignals(a, ra), sim.POSignals(b, rb)
	for i := range pa {
		if sim.CountDiff(pa[i], pb[i]) != 0 {
			return false
		}
	}
	return true
}

func cleanupOK(t *testing.T, c *netlist.Circuit) *Result {
	t.Helper()
	res, err := Cleanup(c)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Circuit.Validate(); err != nil {
		t.Fatalf("cleaned circuit invalid: %v", err)
	}
	if !equivalent(t, c, res.Circuit) {
		t.Fatal("cleanup changed circuit function")
	}
	return res
}

func TestDoubleInverterRemoved(t *testing.T) {
	c := netlist.New("dinv")
	a := c.AddInput("a")
	i1 := c.AddGate(cell.Inv, a)
	i2 := c.AddGate(cell.Inv, i1)
	g := c.AddGate(cell.And2, i2, a)
	c.AddOutput("y", g)
	res := cleanupOK(t, c)
	// INV(INV(a)) -> a turns the AND into AND(a,a) -> a, so the whole
	// cone folds to a wire.
	if res.Circuit.NumPhysical() != 0 {
		t.Errorf("physical gates = %d, want 0", res.Circuit.NumPhysical())
	}
}

func TestBufferElimination(t *testing.T) {
	c := netlist.New("buf")
	a := c.AddInput("a")
	b1 := c.AddGate(cell.Buf, a)
	b2 := c.AddGate(cell.Buf, b1)
	c.AddOutput("y", b2)
	res := cleanupOK(t, c)
	if res.Circuit.NumPhysical() != 0 {
		t.Errorf("buffer chain must vanish, got %d gates", res.Circuit.NumPhysical())
	}
}

func TestConstantDominance(t *testing.T) {
	c := netlist.New("dom")
	a := c.AddInput("a")
	b := c.AddInput("b")
	and0 := c.AddGate(cell.And2, a, c.Const0()) // -> 0
	or1 := c.AddGate(cell.Or2, b, c.Const1())   // -> 1
	fin := c.AddGate(cell.And2, and0, or1)      // -> 0
	c.AddOutput("y", fin)
	res := cleanupOK(t, c)
	if res.Circuit.NumPhysical() != 0 {
		t.Errorf("constant cone must fold away, got %d gates", res.Circuit.NumPhysical())
	}
}

func TestXorConstBecomesInverter(t *testing.T) {
	c := netlist.New("xc")
	a := c.AddInput("a")
	x := c.AddGate(cell.Xor2, a, c.Const1())
	c.AddOutput("y", x)
	res := cleanupOK(t, c)
	found := false
	for _, g := range res.Circuit.Gates {
		if g.Func == cell.Inv {
			found = true
		}
		if g.Func == cell.Xor2 {
			t.Error("XOR with const must not survive")
		}
	}
	if !found {
		t.Error("XOR2(a, 1) must fold to INV(a)")
	}
}

func TestIdempotence(t *testing.T) {
	c := netlist.New("idem")
	a := c.AddInput("a")
	b := c.AddInput("b")
	andAA := c.AddGate(cell.And2, a, a)        // -> a
	xorBB := c.AddGate(cell.Xor2, b, b)        // -> 0
	orMix := c.AddGate(cell.Or2, andAA, xorBB) // -> a
	c.AddOutput("y", orMix)
	res := cleanupOK(t, c)
	if res.Circuit.NumPhysical() != 0 {
		t.Errorf("idempotent logic must fold to wire, got %d gates", res.Circuit.NumPhysical())
	}
}

func TestNandSameInputBecomesInverter(t *testing.T) {
	c := netlist.New("nand")
	a := c.AddInput("a")
	n := c.AddGate(cell.Nand2, a, a)
	c.AddOutput("y", n)
	res := cleanupOK(t, c)
	if res.Circuit.NumPhysical() != 1 {
		t.Fatalf("gates = %d, want 1", res.Circuit.NumPhysical())
	}
	for _, g := range res.Circuit.Gates {
		if g.Func == cell.Nand2 {
			t.Error("NAND(a,a) must become INV(a)")
		}
	}
}

func TestMuxConstSelect(t *testing.T) {
	c := netlist.New("mux")
	a := c.AddInput("a")
	b := c.AddInput("b")
	m := c.AddGate(cell.Mux2, a, b, c.Const1())
	g := c.AddGate(cell.And2, m, a)
	c.AddOutput("y", g)
	res := cleanupOK(t, c)
	for _, gg := range res.Circuit.Gates {
		if gg.Func == cell.Mux2 {
			t.Error("MUX with constant select must fold")
		}
	}
	_ = b
}

func TestMaj3WithConstant(t *testing.T) {
	c := netlist.New("maj")
	a := c.AddInput("a")
	b := c.AddInput("b")
	m0 := c.AddGate(cell.Maj3, a, b, c.Const0()) // -> AND
	m1 := c.AddGate(cell.Maj3, a, b, c.Const1()) // -> OR
	x := c.AddGate(cell.Xor2, m0, m1)
	c.AddOutput("y", x)
	res := cleanupOK(t, c)
	var haveAnd, haveOr bool
	for _, g := range res.Circuit.Gates {
		switch g.Func {
		case cell.Maj3:
			t.Error("MAJ3 with constant must degenerate")
		case cell.And2:
			haveAnd = true
		case cell.Or2:
			haveOr = true
		}
	}
	if !haveAnd || !haveOr {
		t.Error("expected AND and OR after MAJ3 degeneration")
	}
}

func TestAoiOaiConstC(t *testing.T) {
	c := netlist.New("aoi")
	a := c.AddInput("a")
	b := c.AddInput("b")
	aoi := c.AddGate(cell.Aoi21, a, b, c.Const0()) // -> NAND
	oai := c.AddGate(cell.Oai21, a, b, c.Const1()) // -> NOR
	g := c.AddGate(cell.And2, aoi, oai)
	c.AddOutput("y", g)
	res := cleanupOK(t, c)
	for _, gg := range res.Circuit.Gates {
		if gg.Func == cell.Aoi21 || gg.Func == cell.Oai21 {
			t.Error("AOI/OAI with constant C must degenerate")
		}
	}
}

func TestCleanupDoesNotMutateInput(t *testing.T) {
	c := netlist.New("keep")
	a := c.AddInput("a")
	i1 := c.AddGate(cell.Inv, a)
	i2 := c.AddGate(cell.Inv, i1)
	c.AddOutput("y", i2)
	n := c.NumGates()
	if _, err := Cleanup(c); err != nil {
		t.Fatal(err)
	}
	if c.NumGates() != n || c.Gates[i2].Fanin[0] != i1 {
		t.Error("Cleanup must not mutate its input")
	}
}

// Property test: cleanup preserves function on random circuits seeded with
// constants and redundancy.
func TestCleanupEquivalenceRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	funcs := []cell.Func{cell.Inv, cell.Buf, cell.And2, cell.Or2, cell.Xor2,
		cell.Nand2, cell.Nor2, cell.Xnor2, cell.Mux2, cell.Maj3, cell.Aoi21, cell.Oai21}
	for trial := 0; trial < 40; trial++ {
		c := netlist.New("rnd")
		nPI := 3 + rng.Intn(4)
		for i := 0; i < nPI; i++ {
			c.AddInput("i")
		}
		// Seed constants so folding rules fire.
		pool := append([]int{}, c.PIs...)
		pool = append(pool, c.Const0(), c.Const1())
		for i := 0; i < 30; i++ {
			f := funcs[rng.Intn(len(funcs))]
			fin := make([]int, f.Arity())
			for p := range fin {
				fin[p] = pool[rng.Intn(len(pool))]
			}
			pool = append(pool, c.AddGate(f, fin...))
		}
		for k := 0; k < 4; k++ {
			c.AddOutput("y", pool[len(pool)-1-rng.Intn(10)])
		}
		res := cleanupOK(t, c)
		if res.Circuit.NumPhysical() > c.NumPhysical() {
			t.Fatal("cleanup must never grow the circuit")
		}
	}
}
