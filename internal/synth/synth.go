// Package synth provides light technology-independent cleanup passes over
// gate-level netlists: constant propagation, identity/idempotence
// simplification, buffer and double-inverter elimination, and dangling
// sweep. Together they play the role of the final cleanup a synthesis tool
// (the paper uses Design Compiler) applies to generated netlists before
// hand-off; they are NOT used inside post-optimization, which must preserve
// structure.
package synth

import (
	"fmt"
	"slices"

	"repro/internal/cell"
	"repro/internal/netlist"
)

// Result summarizes one Cleanup run.
type Result struct {
	// Circuit is the cleaned, compacted netlist.
	Circuit *netlist.Circuit
	// Rewrites counts gate-level simplifications applied.
	Rewrites int
	// RemovedGates counts gates eliminated (rewrites + dangling sweep).
	RemovedGates int
}

// Cleanup applies simplification to a fixpoint and compacts the result.
// The input circuit is not modified.
func Cleanup(c *netlist.Circuit) (*Result, error) {
	work := c.Clone()
	total := 0
	for pass := 0; pass < 64; pass++ {
		n, progressed, err := simplifyPass(work)
		if err != nil {
			return nil, err
		}
		total += n
		if !progressed {
			break
		}
	}
	before := work.NumGates()
	compacted, _ := work.Compact()
	return &Result{
		Circuit:      compacted,
		Rewrites:     total,
		RemovedGates: before - compacted.NumGates() + total, // rewrites dangle their gate
	}, nil
}

// simplifyPass walks the circuit once in topological order, computing for
// every gate a replacement driver (possibly itself), then rewires all
// consumers through the replacement map. It returns the number of gates
// replaced, plus whether any mutation happened at all — simplifyGate may
// also rewrite a gate in place (e.g. MAJ3 with a constant degenerates to
// AND2/OR2) without replacing it, which must trigger both another
// fixpoint pass and cache invalidation even when no gate was replaced.
func simplifyPass(c *netlist.Circuit) (replaced int, progressed bool, err error) {
	order, err := c.TopoOrder()
	if err != nil {
		return 0, false, fmt.Errorf("synth: %w", err)
	}
	repl := make([]int, len(c.Gates))
	for i := range repl {
		repl[i] = i
	}
	// Gates created during the pass (materialized constants) have IDs
	// beyond the original repl range and are never themselves replaced.
	resolve := func(id int) int {
		for id < len(repl) && repl[id] != id {
			id = repl[id]
		}
		return id
	}
	changed, inplace := 0, 0
	for _, id := range order {
		g := &c.Gates[id]
		if g.Func.IsPseudo() {
			continue
		}
		// Canonicalize fan-ins through earlier replacements first.
		for p, fi := range g.Fanin {
			g.Fanin[p] = resolve(fi)
		}
		beforeFunc := g.Func
		var beforeFanin [3]int
		copy(beforeFanin[:], g.Fanin)
		if r := simplifyGate(c, id); r >= 0 && r != id {
			repl[id] = r
			changed++
			continue
		}
		g = &c.Gates[id] // simplifyGate may have appended gates
		if g.Func != beforeFunc || !slices.Equal(beforeFanin[:len(g.Fanin)], g.Fanin) {
			inplace++
		}
	}
	if changed == 0 && inplace == 0 {
		return 0, false, nil
	}
	for id := range c.Gates {
		for p, fi := range c.Gates[id].Fanin {
			c.Gates[id].Fanin[p] = resolve(fi)
		}
	}
	// The pass rewired fan-ins directly; drop the memoized topology.
	c.Invalidate()
	return changed, true, nil
}

// constVal classifies a driver as constant 0, constant 1, or non-constant.
func constVal(c *netlist.Circuit, id int) (bool, bool) {
	switch c.Gates[id].Func {
	case cell.Const0:
		return false, true
	case cell.Const1:
		return true, true
	}
	return false, false
}

// simplifyGate returns the replacement driver for gate id, or -1 when the
// gate cannot be simplified to an existing/new driver. It may rewrite the
// gate in place (e.g. MAJ3 with a constant degenerates to AND2/OR2), in
// which case it returns -1 and the next pass re-examines the new form.
func simplifyGate(c *netlist.Circuit, id int) int {
	g := &c.Gates[id]
	fin := g.Fanin
	switch g.Func {
	case cell.Buf:
		return fin[0]
	case cell.Inv:
		if v, ok := constVal(c, fin[0]); ok {
			return constGate(c, !v)
		}
		if c.Gates[fin[0]].Func == cell.Inv {
			return c.Gates[fin[0]].Fanin[0] // double inverter
		}
	case cell.And2, cell.Nand2:
		inverted := g.Func == cell.Nand2
		if v, ok := constVal(c, fin[0]); ok {
			return andWithConst(c, id, fin[1], v, inverted)
		}
		if v, ok := constVal(c, fin[1]); ok {
			return andWithConst(c, id, fin[0], v, inverted)
		}
		if fin[0] == fin[1] {
			return identityOrInv(c, id, fin[0], inverted)
		}
	case cell.Or2, cell.Nor2:
		inverted := g.Func == cell.Nor2
		if v, ok := constVal(c, fin[0]); ok {
			return orWithConst(c, id, fin[1], v, inverted)
		}
		if v, ok := constVal(c, fin[1]); ok {
			return orWithConst(c, id, fin[0], v, inverted)
		}
		if fin[0] == fin[1] {
			return identityOrInv(c, id, fin[0], inverted)
		}
	case cell.Xor2, cell.Xnor2:
		inverted := g.Func == cell.Xnor2
		if v, ok := constVal(c, fin[0]); ok {
			return xorWithConst(c, id, fin[1], v != inverted)
		}
		if v, ok := constVal(c, fin[1]); ok {
			return xorWithConst(c, id, fin[0], v != inverted)
		}
		if fin[0] == fin[1] {
			return constGate(c, inverted)
		}
	case cell.Mux2:
		if v, ok := constVal(c, fin[2]); ok {
			if v {
				return fin[1]
			}
			return fin[0]
		}
		if fin[0] == fin[1] {
			return fin[0]
		}
	case cell.Maj3:
		for p := 0; p < 3; p++ {
			if v, ok := constVal(c, fin[p]); ok {
				a, b := fin[(p+1)%3], fin[(p+2)%3]
				if v {
					g.Func, g.Fanin = cell.Or2, []int{a, b}
				} else {
					g.Func, g.Fanin = cell.And2, []int{a, b}
				}
				return -1
			}
		}
		if fin[0] == fin[1] {
			return fin[0]
		}
		if fin[1] == fin[2] {
			return fin[1]
		}
		if fin[0] == fin[2] {
			return fin[0]
		}
	case cell.Aoi21:
		// NOT((a AND b) OR c): constant c dominates.
		if v, ok := constVal(c, fin[2]); ok {
			if v {
				return constGate(c, false)
			}
			g.Func, g.Fanin = cell.Nand2, []int{fin[0], fin[1]}
			return -1
		}
	case cell.Oai21:
		// NOT((a OR b) AND c): constant c dominates.
		if v, ok := constVal(c, fin[2]); ok {
			if !v {
				return constGate(c, true)
			}
			g.Func, g.Fanin = cell.Nor2, []int{fin[0], fin[1]}
			return -1
		}
	}
	return -1
}

func constGate(c *netlist.Circuit, v bool) int {
	if v {
		return c.Const1()
	}
	return c.Const0()
}

// identityOrInv handles f(x,x): returns x, or rewrites the gate to INV(x).
func identityOrInv(c *netlist.Circuit, id, x int, inverted bool) int {
	if !inverted {
		return x
	}
	g := &c.Gates[id]
	g.Func, g.Fanin = cell.Inv, []int{x}
	return -1
}

func andWithConst(c *netlist.Circuit, id, other int, v, inverted bool) int {
	if !v { // AND with 0
		return constGate(c, inverted)
	}
	return identityOrInv(c, id, other, inverted)
}

func orWithConst(c *netlist.Circuit, id, other int, v, inverted bool) int {
	if v { // OR with 1
		return constGate(c, !inverted)
	}
	return identityOrInv(c, id, other, inverted)
}

// xorWithConst handles XOR/XNOR with a constant: invert=false means the
// result is the other input, invert=true means its inversion.
func xorWithConst(c *netlist.Circuit, id, other int, invert bool) int {
	return identityOrInv(c, id, other, invert)
}
