package netlist

import (
	"testing"

	"repro/internal/cell"
)

// chain builds a PI → inv → inv → … → PO line of n inverters.
func chain(n int) *Circuit {
	c := New("chain")
	prev := c.AddInput("a")
	for i := 0; i < n; i++ {
		prev = c.AddGate(cell.Inv, prev)
	}
	c.AddOutput("y", prev)
	return c
}

func assertValidOrder(t *testing.T, c *Circuit) {
	t.Helper()
	order, err := c.TopoOrder()
	if err != nil {
		t.Fatal(err)
	}
	if len(order) != len(c.Gates) {
		t.Fatalf("order covers %d of %d gates", len(order), len(c.Gates))
	}
	pos := make([]int, len(c.Gates))
	for i, id := range order {
		pos[id] = i
	}
	for id, g := range c.Gates {
		for _, fi := range g.Fanin {
			if pos[fi] >= pos[id] {
				t.Fatalf("order invalid: fan-in %d at %d not before gate %d at %d",
					fi, pos[fi], id, pos[id])
			}
		}
	}
}

func TestTopoOrderMemoized(t *testing.T) {
	c, _ := paperFig3(t)
	o1, err := c.TopoOrder()
	if err != nil {
		t.Fatal(err)
	}
	o2, err := c.TopoOrder()
	if err != nil {
		t.Fatal(err)
	}
	if &o1[0] != &o2[0] {
		t.Error("TopoOrder must return the memoized order between mutations")
	}
	pos, err := c.TopoPos()
	if err != nil {
		t.Fatal(err)
	}
	for i, id := range o1 {
		if pos[id] != i {
			t.Fatalf("TopoPos[%d] = %d, want %d", id, pos[id], i)
		}
	}
}

func TestTopoOrderInvalidatedByMutation(t *testing.T) {
	mutations := []struct {
		name string
		do   func(c *Circuit)
	}{
		{"AddGate", func(c *Circuit) { c.AddGate(cell.Inv, c.PIs[0]) }},
		{"AddInput", func(c *Circuit) { c.AddInput("extra") }},
		{"AddOutput", func(c *Circuit) { c.AddOutput("extra", c.PIs[0]) }},
		{"Const0", func(c *Circuit) { c.Const0() }},
		{"Const1", func(c *Circuit) { c.Const1() }},
		{"SetFanin", func(c *Circuit) { c.SetFanin(c.POs[0], 0, c.PIs[0]) }},
		{"SetGate", func(c *Circuit) { c.SetGate(2, Gate{Func: cell.Buf, Fanin: []int{c.PIs[0]}}) }},
	}
	for _, m := range mutations {
		c := chain(4)
		if _, err := c.TopoOrder(); err != nil {
			t.Fatal(err)
		}
		m.do(c)
		assertValidOrder(t, c)
	}
}

// TestTopoOrderDetectsLoopAfterCaching is the regression test for stale
// memoization: a loop created after the order was cached must still be
// detected.
func TestTopoOrderDetectsLoopAfterCaching(t *testing.T) {
	c := chain(4)
	if _, err := c.TopoOrder(); err != nil {
		t.Fatal(err)
	}
	// Gate 2 is the second inverter; wiring it to gate 3 forms a loop.
	c.SetFanin(2, 0, 3)
	if _, err := c.TopoOrder(); err == nil {
		t.Error("TopoOrder must detect a loop created after memoization")
	}
}

func TestReplaceFaninKeepsOrderForLACShapes(t *testing.T) {
	c, ids := paperFig3(t)
	c.Const0()
	if _, err := c.TopoOrder(); err != nil {
		t.Fatal(err)
	}
	// Wire-by-wire with a TFI switch and wire-by-const both preserve the
	// memoized order; the fast path must keep it and stay valid.
	tfi := c.TFI(ids[12])
	sw := -1
	for id := range c.Gates {
		if tfi[id] && id != ids[12] && !c.Gates[id].Func.IsPseudo() {
			sw = id
			break
		}
	}
	if sw < 0 {
		t.Fatal("no TFI switch found")
	}
	if n := c.ReplaceFanin(ids[12], sw); n == 0 {
		t.Fatal("ReplaceFanin rewired nothing")
	}
	if c.topo == nil {
		t.Error("TFI rewire should keep the memoized order")
	}
	assertValidOrder(t, c)

	if n := c.ReplaceFanin(ids[11], c.Const0()); n == 0 {
		t.Fatal("ReplaceFanin rewired nothing")
	}
	assertValidOrder(t, c)
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestFanoutsMemoizedAndInvalidated(t *testing.T) {
	c := chain(3)
	f1 := c.Fanouts()
	f2 := c.Fanouts()
	if &f1[0] != &f2[0] {
		t.Error("Fanouts must return the memoized table between mutations")
	}
	g := c.AddGate(cell.Inv, c.PIs[0])
	f3 := c.Fanouts()
	found := false
	for _, fo := range f3[c.PIs[0]] {
		if fo == g {
			found = true
		}
	}
	if !found {
		t.Error("Fanouts must reflect the post-mutation netlist")
	}
}

func TestDiffGates(t *testing.T) {
	base := chain(5)
	base.Const0()
	base.Const1()

	if d := base.Clone().DiffGates(base); len(d) != 0 {
		t.Fatalf("identical clone diffs as %v, want empty", d)
	}

	cand := base.Clone()
	cand.ReplaceFanin(2, cand.Gates[2].Fanin[0]) // rewire consumers of gate 2 to gate 1
	want := map[int]bool{3: true}                // gate 3 read gate 2, now reads gate 1
	got := cand.DiffGates(base)
	if len(got) != len(want) {
		t.Fatalf("DiffGates = %v, want keys %v", got, want)
	}
	for _, id := range got {
		if !want[id] {
			t.Fatalf("DiffGates reported %d, want keys %v", id, want)
		}
	}

	// Function change and appended gates are both reported.
	cand2 := base.Clone()
	cand2.SetGate(1, Gate{Func: cell.Buf, Fanin: []int{0}})
	extra := cand2.AddGate(cell.Inv, 0)
	got2 := cand2.DiffGates(base)
	want2 := map[int]bool{1: true, extra: true}
	if len(got2) != len(want2) {
		t.Fatalf("DiffGates = %v, want keys %v", got2, want2)
	}
	for _, id := range got2 {
		if !want2[id] {
			t.Fatalf("DiffGates reported %d, want keys %v", id, want2)
		}
	}
}
