// Package netlist implements the circuit representation of the paper's
// step 1: a gate-level netlist stored as gate fan-in adjacency lists.
//
// All wire information is discarded — a circuit is a slice of gates, each
// identified by a unique integer ID (its slice index) and carrying only its
// cell function, drive strength and the IDs of its fan-in gates. Local
// approximate changes are therefore O(1) edits of fan-in slices, and whole
// approximate circuits are cheap to clone for population-based search.
package netlist

import (
	"fmt"

	"repro/internal/cell"
)

// Gate is one node of the fan-in adjacency list. The gate's ID is its index
// in Circuit.Gates.
type Gate struct {
	// Func is the cell function (or pseudo-cell for ports/constants).
	Func cell.Func
	// Drive is the drive strength of the physical cell; ignored for
	// pseudo-cells.
	Drive cell.Drive
	// Fanin lists the IDs of the gates feeding each input pin, in pin
	// order. len(Fanin) == Func.Arity().
	Fanin []int
	// Name optionally labels the gate; ports always carry their name.
	Name string
}

// Circuit is a combinational gate-level netlist in fan-in adjacency form.
type Circuit struct {
	// Name identifies the design.
	Name string
	// Gates holds every gate; a gate's ID is its index. Gates may become
	// dangling (unreachable from any PO) after approximation; they remain
	// in the slice until Compact is called.
	Gates []Gate
	// PIs lists the IDs of Input gates in port order.
	PIs []int
	// POs lists the IDs of OutPort gates in port order.
	POs []int

	const0 int // cached Const0 gate ID, -1 if absent
	const1 int // cached Const1 gate ID, -1 if absent

	// topo and fanout memoize TopoOrder and Fanouts between structural
	// mutations; pos is the inverse of topo (gate ID → order position).
	// Every mutation routed through the Circuit API (AddGate,
	// ReplaceFanin, SetFanin, SetGate, ...) invalidates them; code that
	// writes Gates[i].Fanin directly must call Invalidate afterwards.
	topo   []int
	pos    []int
	fanout [][]int
}

// Invalidate drops the memoized topological order and fanout adjacency.
// The Circuit API calls it automatically; it is exported for callers that
// mutate Gates directly.
func (c *Circuit) Invalidate() {
	c.topo = nil
	c.pos = nil
	c.fanout = nil
}

// New returns an empty circuit with the given name.
func New(name string) *Circuit {
	return &Circuit{Name: name, const0: -1, const1: -1}
}

// NumGates returns the total number of gate slots (including pseudo-cells
// and dangling gates).
func (c *Circuit) NumGates() int { return len(c.Gates) }

// NumPhysical returns the number of live physical gates, i.e. gates that
// are not pseudo-cells and reach at least one PO.
func (c *Circuit) NumPhysical() int {
	live := c.Live()
	n := 0
	for id, g := range c.Gates {
		if live[id] && !g.Func.IsPseudo() {
			n++
		}
	}
	return n
}

// AddInput appends a primary input and returns its gate ID.
func (c *Circuit) AddInput(name string) int {
	c.Invalidate()
	id := len(c.Gates)
	c.Gates = append(c.Gates, Gate{Func: cell.Input, Name: name})
	c.PIs = append(c.PIs, id)
	return id
}

// AddGate appends a physical gate at drive X1 and returns its ID. The
// number of fan-ins must match the function's arity; AddGate panics
// otherwise, since generator code is the only caller and a mismatch is a
// programming error.
func (c *Circuit) AddGate(f cell.Func, fanin ...int) int {
	if len(fanin) != f.Arity() {
		panic(fmt.Sprintf("netlist: %v requires %d fan-ins, got %d", f, f.Arity(), len(fanin)))
	}
	c.Invalidate()
	id := len(c.Gates)
	c.Gates = append(c.Gates, Gate{Func: f, Drive: cell.X1, Fanin: append([]int(nil), fanin...)})
	return id
}

// AddOutput appends a primary output driven by the given gate and returns
// the OutPort gate's ID.
func (c *Circuit) AddOutput(name string, driver int) int {
	c.Invalidate()
	id := len(c.Gates)
	c.Gates = append(c.Gates, Gate{Func: cell.OutPort, Name: name, Fanin: []int{driver}})
	c.POs = append(c.POs, id)
	return id
}

// Const0 returns the ID of the shared Const0 gate, creating it on first
// use. Constants are ordinary zero-area gates, matching the paper's
// "constant '0'/'1' are also treated as gates".
func (c *Circuit) Const0() int {
	if c.const0 < 0 || c.const0 >= len(c.Gates) || c.Gates[c.const0].Func != cell.Const0 {
		c.Invalidate()
		c.const0 = len(c.Gates)
		c.Gates = append(c.Gates, Gate{Func: cell.Const0, Name: "const0"})
	}
	return c.const0
}

// ConstID returns the gate ID of the materialized constant (false = 0,
// true = 1) without creating it; ok is false when the circuit has never
// used that constant.
func (c *Circuit) ConstID(value bool) (int, bool) {
	id := c.const0
	want := cell.Const0
	if value {
		id, want = c.const1, cell.Const1
	}
	if id < 0 || id >= len(c.Gates) || c.Gates[id].Func != want {
		return -1, false
	}
	return id, true
}

// Const1 returns the ID of the shared Const1 gate, creating it on demand.
func (c *Circuit) Const1() int {
	if c.const1 < 0 || c.const1 >= len(c.Gates) || c.Gates[c.const1].Func != cell.Const1 {
		c.Invalidate()
		c.const1 = len(c.Gates)
		c.Gates = append(c.Gates, Gate{Func: cell.Const1, Name: "const1"})
	}
	return c.const1
}

// Clone returns a deep copy of the circuit. Fan-in slices are copied so the
// clone can be mutated independently — this is the population-cloning
// primitive of the optimizer. The memoized topological order carries over
// (the clone is structurally identical); the fanout cache does not, since
// clones are usually mutated immediately and rebuilding it is cheap.
func (c *Circuit) Clone() *Circuit {
	nc := &Circuit{
		Name:   c.Name,
		Gates:  make([]Gate, len(c.Gates)),
		PIs:    append([]int(nil), c.PIs...),
		POs:    append([]int(nil), c.POs...),
		const0: c.const0,
		const1: c.const1,
		topo:   append([]int(nil), c.topo...),
		pos:    append([]int(nil), c.pos...),
	}
	for i, g := range c.Gates {
		ng := g
		if g.Fanin != nil {
			ng.Fanin = append([]int(nil), g.Fanin...)
		}
		nc.Gates[i] = ng
	}
	return nc
}

// Validate checks structural well-formedness: fan-in arities and bounds,
// port invariants, and acyclicity. It returns the first violation found.
func (c *Circuit) Validate() error {
	for id, g := range c.Gates {
		if !g.Func.Valid() {
			return fmt.Errorf("netlist %q: gate %d has invalid function", c.Name, id)
		}
		if len(g.Fanin) != g.Func.Arity() {
			return fmt.Errorf("netlist %q: gate %d (%v) has %d fan-ins, want %d",
				c.Name, id, g.Func, len(g.Fanin), g.Func.Arity())
		}
		for pin, fi := range g.Fanin {
			if fi < 0 || fi >= len(c.Gates) {
				return fmt.Errorf("netlist %q: gate %d pin %d references out-of-range gate %d",
					c.Name, id, pin, fi)
			}
			if c.Gates[fi].Func == cell.OutPort {
				return fmt.Errorf("netlist %q: gate %d pin %d driven by OutPort %d",
					c.Name, id, pin, fi)
			}
		}
	}
	for _, pi := range c.PIs {
		if pi < 0 || pi >= len(c.Gates) || c.Gates[pi].Func != cell.Input {
			return fmt.Errorf("netlist %q: PI list entry %d is not an Input gate", c.Name, pi)
		}
	}
	for _, po := range c.POs {
		if po < 0 || po >= len(c.Gates) || c.Gates[po].Func != cell.OutPort {
			return fmt.Errorf("netlist %q: PO list entry %d is not an OutPort gate", c.Name, po)
		}
	}
	if _, err := c.TopoOrder(); err != nil {
		return err
	}
	return nil
}

// TopoOrder returns a topological order over all gates (fan-ins before
// consumers) using Kahn's algorithm, or an error naming a gate on a
// combinational loop. This is the loop-violation check enabled by unique
// integer gate IDs (paper §III-A).
//
// The order is memoized until the next structural mutation; callers must
// treat the returned slice as read-only.
func (c *Circuit) TopoOrder() ([]int, error) {
	if c.topo != nil {
		return c.topo, nil
	}
	n := len(c.Gates)
	indeg := make([]int, n)
	fanouts := c.Fanouts()
	for id := range c.Gates {
		indeg[id] = len(c.Gates[id].Fanin)
	}
	order := make([]int, 0, n)
	queue := make([]int, 0, n)
	for id := range c.Gates {
		if indeg[id] == 0 {
			queue = append(queue, id)
		}
	}
	for len(queue) > 0 {
		id := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		order = append(order, id)
		for _, fo := range fanouts[id] {
			indeg[fo]--
			if indeg[fo] == 0 {
				queue = append(queue, fo)
			}
		}
	}
	if len(order) != n {
		for id := range c.Gates {
			if indeg[id] > 0 {
				return nil, fmt.Errorf("netlist %q: combinational loop through gate %d (%v)",
					c.Name, id, c.Gates[id].Func)
			}
		}
	}
	c.topo = order
	c.pos = make([]int, n)
	for i, id := range order {
		c.pos[id] = i
	}
	return order, nil
}

// TopoPos returns the memoized gate ID → topological position index,
// computing the order first if needed. Callers must treat the returned
// slice as read-only.
func (c *Circuit) TopoPos() ([]int, error) {
	if c.pos == nil {
		if _, err := c.TopoOrder(); err != nil {
			return nil, err
		}
	}
	return c.pos, nil
}

// Fanouts returns, for every gate, the IDs of gates that list it as a
// fan-in. Multiple pins of one consumer appear multiple times so that load
// computation can count each pin.
//
// The table is memoized until the next structural mutation; callers must
// treat it as read-only.
func (c *Circuit) Fanouts() [][]int {
	if c.fanout != nil {
		return c.fanout
	}
	fo := make([][]int, len(c.Gates))
	for id, g := range c.Gates {
		for _, fi := range g.Fanin {
			fo[fi] = append(fo[fi], id)
		}
	}
	c.fanout = fo
	return fo
}

// Live returns a mask of gates reachable (via fan-ins) from any PO — the
// complement of the paper's "dangling gates". PIs and constants count as
// live only if some PO depends on them.
func (c *Circuit) Live() []bool {
	live := make([]bool, len(c.Gates))
	stack := make([]int, 0, len(c.POs))
	for _, po := range c.POs {
		if !live[po] {
			live[po] = true
			stack = append(stack, po)
		}
	}
	for len(stack) > 0 {
		id := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, fi := range c.Gates[id].Fanin {
			if !live[fi] {
				live[fi] = true
				stack = append(stack, fi)
			}
		}
	}
	return live
}

// TFI returns the transitive fan-in mask of the given gates (the roots are
// included).
func (c *Circuit) TFI(roots ...int) []bool {
	in := make([]bool, len(c.Gates))
	stack := append([]int(nil), roots...)
	for _, r := range roots {
		in[r] = true
	}
	for len(stack) > 0 {
		id := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, fi := range c.Gates[id].Fanin {
			if !in[fi] {
				in[fi] = true
				stack = append(stack, fi)
			}
		}
	}
	return in
}

// TFO returns the transitive fan-out mask of the given gates (roots
// included). It recomputes fan-outs; callers with a fanout table should
// walk it directly.
func (c *Circuit) TFO(roots ...int) []bool {
	fanouts := c.Fanouts()
	out := make([]bool, len(c.Gates))
	stack := append([]int(nil), roots...)
	for _, r := range roots {
		out[r] = true
	}
	for len(stack) > 0 {
		id := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, fo := range fanouts[id] {
			if !out[fo] {
				out[fo] = true
				stack = append(stack, fo)
			}
		}
	}
	return out
}

// Area returns the total area of live physical gates — the paper's
// Areaapp: accurate-circuit area minus dangling gates.
func (c *Circuit) Area(lib *cell.Library) float64 {
	live := c.Live()
	area := 0.0
	for id, g := range c.Gates {
		if live[id] {
			area += lib.Area(g.Func, g.Drive)
		}
	}
	return area
}

// TotalArea returns the area of every physical gate including dangling
// ones (the pre-sweep silicon the netlist would occupy).
func (c *Circuit) TotalArea(lib *cell.Library) float64 {
	area := 0.0
	for _, g := range c.Gates {
		area += lib.Area(g.Func, g.Drive)
	}
	return area
}

// Compact returns a copy with all dangling gates removed and IDs
// renumbered densely, plus the old→new ID mapping (-1 for removed gates).
// This implements the paper's "dangling gates deletion": gates with empty
// transitive fan-out are identified and removed transitively. Primary
// inputs are part of the module interface and are always kept, even when
// no live logic reads them.
func (c *Circuit) Compact() (*Circuit, []int) {
	live := c.Live()
	remap := make([]int, len(c.Gates))
	nc := New(c.Name)
	nc.Gates = make([]Gate, 0, len(c.Gates))
	for id := range c.Gates {
		if !live[id] && c.Gates[id].Func != cell.Input {
			remap[id] = -1
			continue
		}
		remap[id] = len(nc.Gates)
		g := c.Gates[id]
		g.Fanin = append([]int(nil), g.Fanin...)
		nc.Gates = append(nc.Gates, g)
	}
	for i := range nc.Gates {
		for pin, fi := range nc.Gates[i].Fanin {
			nc.Gates[i].Fanin[pin] = remap[fi]
		}
	}
	for _, pi := range c.PIs {
		nc.PIs = append(nc.PIs, remap[pi])
	}
	for _, po := range c.POs {
		nc.POs = append(nc.POs, remap[po])
	}
	if c.const0 >= 0 && remap[c.const0] >= 0 {
		nc.const0 = remap[c.const0]
	}
	if c.const1 >= 0 && remap[c.const1] >= 0 {
		nc.const1 = remap[c.const1]
	}
	return nc, remap
}

// ReplaceFanin rewires every live consumer of target to read from switch
// instead — the fundamental LAC edit. It returns the number of pins
// rewired. The caller is responsible for loop safety (switch must not be
// in target's TFO).
//
// The memoized topological order survives the rewire when the switch
// precedes every rewired consumer in it (always true for LACs, whose
// switch gates come from the target's transitive fan-in or the
// constants); otherwise the caches are invalidated.
func (c *Circuit) ReplaceFanin(target, sw int) int {
	n := 0
	orderOK := c.pos != nil && sw >= 0 && sw < len(c.pos)
	for id := range c.Gates {
		for pin, fi := range c.Gates[id].Fanin {
			if fi == target {
				c.Gates[id].Fanin[pin] = sw
				n++
				if orderOK && c.pos[sw] >= c.pos[id] {
					orderOK = false
				}
			}
		}
	}
	if n > 0 {
		if orderOK {
			// The order is still valid, but the fanout table is not.
			c.fanout = nil
		} else {
			c.Invalidate()
		}
	}
	return n
}

// SetFanin rewires one pin of one gate and invalidates the memoized
// topology. It is the cache-safe form of writing Gates[id].Fanin[pin]
// directly; like ReplaceFanin, loop safety is the caller's concern (use
// Validate or TopoOrder to check).
func (c *Circuit) SetFanin(id, pin, src int) {
	c.Gates[id].Fanin[pin] = src
	c.Invalidate()
}

// SetGate overwrites a gate's function, drive and fan-in adjacency (deep
// copying the fan-in slice) and invalidates the memoized topology — the
// per-gate adjacency write of circuit reproduction. Loop safety is the
// caller's concern.
func (c *Circuit) SetGate(id int, g Gate) {
	g.Fanin = append([]int(nil), g.Fanin...)
	c.Gates[id] = g
	c.Invalidate()
}

// DiffGates returns the IDs of gates whose function or fan-in adjacency
// differs from the same-ID gate of ref, in ascending ID order; gates
// beyond ref's range are always reported. Drive strength and names are
// ignored — the diff describes what simulation sees, so a candidate
// produced by LACs on a clone of ref reports exactly the gates its LACs
// rewired. This is the changed-set feed of incremental re-simulation.
func (c *Circuit) DiffGates(ref *Circuit) []int {
	var out []int
	n := len(ref.Gates)
	for id := range c.Gates {
		if id >= n {
			out = append(out, id)
			continue
		}
		g, r := &c.Gates[id], &ref.Gates[id]
		if g.Func != r.Func || len(g.Fanin) != len(r.Fanin) {
			out = append(out, id)
			continue
		}
		for pin, fi := range g.Fanin {
			if fi != r.Fanin[pin] {
				out = append(out, id)
				break
			}
		}
	}
	return out
}

// PINames returns the primary input names in port order.
func (c *Circuit) PINames() []string {
	names := make([]string, len(c.PIs))
	for i, pi := range c.PIs {
		names[i] = c.Gates[pi].Name
	}
	return names
}

// PONames returns the primary output names in port order.
func (c *Circuit) PONames() []string {
	names := make([]string, len(c.POs))
	for i, po := range c.POs {
		names[i] = c.Gates[po].Name
	}
	return names
}

// Stats summarizes a circuit for reporting (TABLE I).
type Stats struct {
	Name  string
	Gates int // live physical gates
	PIs   int
	POs   int
	Area  float64
}

// Summarize computes the TABLE I statistics of the circuit.
func (c *Circuit) Summarize(lib *cell.Library) Stats {
	return Stats{
		Name:  c.Name,
		Gates: c.NumPhysical(),
		PIs:   len(c.PIs),
		POs:   len(c.POs),
		Area:  c.Area(lib),
	}
}
