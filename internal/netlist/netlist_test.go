package netlist

import (
	"math/rand"
	"testing"

	"repro/internal/cell"
)

// paperFig3 builds the 15-gate example circuit of the paper's Fig. 3:
// four PIs (IDs 1-4 in the paper), gates 5-12, POs 13-15. Our IDs are
// 0-based but the adjacency structure is identical.
func paperFig3(t *testing.T) (*Circuit, map[int]int) {
	t.Helper()
	c := New("fig3")
	ids := map[int]int{}
	for i := 1; i <= 4; i++ {
		ids[i] = c.AddInput("n" + string(rune('0'+i)))
	}
	add := func(paperID int, f cell.Func, fin ...int) {
		mapped := make([]int, len(fin))
		for i, p := range fin {
			mapped[i] = ids[p]
		}
		ids[paperID] = c.AddGate(f, mapped...)
	}
	add(5, cell.And2, 1, 2)
	add(6, cell.Or2, 2, 3)
	add(7, cell.Nand2, 3, 4)
	add(8, cell.And2, 5, 6)
	add(9, cell.Xor2, 6, 7)
	add(10, cell.Or2, 4, 7)
	add(11, cell.Or2, 5, 8)
	add(12, cell.And2, 9, 10)
	ids[13] = c.AddOutput("po1", ids[11])
	ids[14] = c.AddOutput("po2", ids[9])
	ids[15] = c.AddOutput("po3", ids[12])
	if err := c.Validate(); err != nil {
		t.Fatalf("fig3 invalid: %v", err)
	}
	return c, ids
}

func TestBuildAndValidate(t *testing.T) {
	c, _ := paperFig3(t)
	if got := len(c.PIs); got != 4 {
		t.Errorf("PIs = %d, want 4", got)
	}
	if got := len(c.POs); got != 3 {
		t.Errorf("POs = %d, want 3", got)
	}
	if got := c.NumPhysical(); got != 8 {
		t.Errorf("NumPhysical = %d, want 8", got)
	}
}

func TestAddGateArityPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("AddGate with wrong arity must panic")
		}
	}()
	c := New("bad")
	a := c.AddInput("a")
	c.AddGate(cell.And2, a)
}

func TestTopoOrderRespectsEdges(t *testing.T) {
	c, _ := paperFig3(t)
	order, err := c.TopoOrder()
	if err != nil {
		t.Fatal(err)
	}
	pos := make([]int, len(c.Gates))
	for i, id := range order {
		pos[id] = i
	}
	for id, g := range c.Gates {
		for _, fi := range g.Fanin {
			if pos[fi] >= pos[id] {
				t.Errorf("gate %d appears before its fan-in %d", id, fi)
			}
		}
	}
}

func TestTopoOrderDetectsLoop(t *testing.T) {
	c := New("loop")
	a := c.AddInput("a")
	g1 := c.AddGate(cell.And2, a, a) // placeholder, rewired below
	g2 := c.AddGate(cell.Or2, g1, a)
	c.Gates[g1].Fanin[1] = g2 // creates g1 <-> g2 loop
	c.AddOutput("y", g2)
	if _, err := c.TopoOrder(); err == nil {
		t.Error("TopoOrder must report a combinational loop")
	}
	if err := c.Validate(); err == nil {
		t.Error("Validate must reject a cyclic netlist")
	}
}

func TestValidateRejectsOutPortDriver(t *testing.T) {
	c := New("bad")
	a := c.AddInput("a")
	po := c.AddOutput("y", a)
	c.AddGate(cell.Inv, po)
	if err := c.Validate(); err == nil {
		t.Error("Validate must reject gates driven by OutPort")
	}
}

func TestValidateRejectsOutOfRangeFanin(t *testing.T) {
	c := New("bad")
	a := c.AddInput("a")
	g := c.AddGate(cell.Inv, a)
	c.Gates[g].Fanin[0] = 99
	c.AddOutput("y", g)
	if err := c.Validate(); err == nil {
		t.Error("Validate must reject out-of-range fan-in")
	}
}

func TestCloneIndependence(t *testing.T) {
	c, ids := paperFig3(t)
	cl := c.Clone()
	cl.Gates[ids[11]].Fanin[1] = cl.Const0()
	if c.Gates[ids[11]].Fanin[1] == c.const0 && c.const0 >= 0 {
		t.Error("mutating clone changed original fan-in")
	}
	if len(cl.Gates) == len(c.Gates) {
		t.Error("clone's Const0 must not appear in the original")
	}
	if err := c.Validate(); err != nil {
		t.Errorf("original corrupted by clone mutation: %v", err)
	}
}

func TestConstSingletons(t *testing.T) {
	c := New("consts")
	if c.Const0() != c.Const0() {
		t.Error("Const0 must be a singleton per circuit")
	}
	if c.Const1() != c.Const1() {
		t.Error("Const1 must be a singleton per circuit")
	}
	if c.Const0() == c.Const1() {
		t.Error("Const0 and Const1 must differ")
	}
}

func TestLiveAndDangling(t *testing.T) {
	c, ids := paperFig3(t)
	live := c.Live()
	for paperID := 1; paperID <= 15; paperID++ {
		if !live[ids[paperID]] {
			t.Errorf("gate %d must be live in the accurate circuit", paperID)
		}
	}
	// Replicate the paper's Fig. 5 searched circuit cs2: PO3's fan-in
	// changes from gate 12 to gate 10, dangling gate 12 (and only 12,
	// since 9 and 10 still feed live logic).
	c.SetFanin(ids[15], 0, ids[10])
	live = c.Live()
	if live[ids[12]] {
		t.Error("gate 12 must be dangling after rewiring PO3 to gate 10")
	}
	if !live[ids[9]] || !live[ids[10]] {
		t.Error("gates 9 and 10 must stay live")
	}
}

func TestAreaExcludesDangling(t *testing.T) {
	lib := cell.Default28nm()
	c, ids := paperFig3(t)
	before := c.Area(lib)
	c.SetFanin(ids[15], 0, ids[10])
	after := c.Area(lib)
	want := before - lib.Area(cell.And2, cell.X1) // gate 12 is AND2
	if diff := after - want; diff > 1e-9 || diff < -1e-9 {
		t.Errorf("Area after dangling = %.4f, want %.4f", after, want)
	}
	if c.TotalArea(lib) != before {
		t.Error("TotalArea must still count dangling gates")
	}
}

func TestCompactRemovesDangling(t *testing.T) {
	c, ids := paperFig3(t)
	c.SetFanin(ids[15], 0, ids[10])
	nc, remap := c.Compact()
	if err := nc.Validate(); err != nil {
		t.Fatalf("compacted circuit invalid: %v", err)
	}
	if remap[ids[12]] != -1 {
		t.Error("gate 12 must be removed by Compact")
	}
	if nc.NumGates() != c.NumGates()-1 {
		t.Errorf("Compact removed %d gates, want 1", c.NumGates()-nc.NumGates())
	}
	if len(nc.POs) != len(c.POs) {
		t.Error("Compact must preserve PO count")
	}
	lib := cell.Default28nm()
	if a, b := nc.Area(lib), c.Area(lib); a != b {
		t.Errorf("live area changed by Compact: %.3f vs %.3f", a, b)
	}
}

func TestReplaceFaninMatchesPaperExample(t *testing.T) {
	// Paper Fig. 5, cs1: target gate 8, switch const0; gate 11's fan-in
	// changes from (5,8) to (5,con0).
	c, ids := paperFig3(t)
	con0 := c.Const0()
	n := c.ReplaceFanin(ids[8], con0)
	if n != 1 {
		t.Fatalf("ReplaceFanin rewired %d pins, want 1", n)
	}
	got := c.Gates[ids[11]].Fanin
	if got[0] != ids[5] || got[1] != con0 {
		t.Errorf("gate 11 fan-in = %v, want (5, con0)", got)
	}
	if !c.Live()[con0] {
		t.Error("const0 must be live after substitution")
	}
	if c.Live()[ids[8]] {
		t.Error("gate 8 must be dangling after substitution")
	}
}

func TestTFIAndTFO(t *testing.T) {
	c, ids := paperFig3(t)
	tfi := c.TFI(ids[11])
	for _, p := range []int{1, 2, 3, 5, 6, 8, 11} {
		if !tfi[ids[p]] {
			t.Errorf("gate %d must be in TFI(11)", p)
		}
	}
	for _, p := range []int{4, 7, 9, 10, 12} {
		if tfi[ids[p]] {
			t.Errorf("gate %d must not be in TFI(11)", p)
		}
	}
	tfo := c.TFO(ids[7])
	for _, p := range []int{7, 9, 10, 12, 14, 15} {
		if !tfo[ids[p]] {
			t.Errorf("gate %d must be in TFO(7)", p)
		}
	}
	if tfo[ids[5]] || tfo[ids[11]] {
		t.Error("TFO(7) must not include gates 5 or 11")
	}
}

func TestFanoutsCountPins(t *testing.T) {
	c := New("multi")
	a := c.AddInput("a")
	g := c.AddGate(cell.And2, a, a) // both pins from the same driver
	c.AddOutput("y", g)
	fo := c.Fanouts()
	if len(fo[a]) != 2 {
		t.Errorf("fanouts of a = %d entries, want 2 (one per pin)", len(fo[a]))
	}
}

func TestPortNames(t *testing.T) {
	c, _ := paperFig3(t)
	pis, pos := c.PINames(), c.PONames()
	if len(pis) != 4 || len(pos) != 3 {
		t.Fatalf("got %d PIs, %d POs", len(pis), len(pos))
	}
	if pos[0] != "po1" || pos[2] != "po3" {
		t.Errorf("PO names = %v", pos)
	}
}

func TestSummarize(t *testing.T) {
	lib := cell.Default28nm()
	c, _ := paperFig3(t)
	s := c.Summarize(lib)
	if s.Gates != 8 || s.PIs != 4 || s.POs != 3 {
		t.Errorf("Summarize = %+v", s)
	}
	if s.Area <= 0 {
		t.Error("area must be positive")
	}
}

// buildRandomDAG constructs a random valid circuit for property tests.
func buildRandomDAG(rng *rand.Rand, nPI, nGates int) *Circuit {
	c := New("rand")
	for i := 0; i < nPI; i++ {
		c.AddInput("i")
	}
	funcs := []cell.Func{cell.Inv, cell.And2, cell.Or2, cell.Xor2, cell.Nand2, cell.Nor2}
	for i := 0; i < nGates; i++ {
		f := funcs[rng.Intn(len(funcs))]
		fin := make([]int, f.Arity())
		for p := range fin {
			fin[p] = rng.Intn(len(c.Gates)) // only earlier gates: acyclic
		}
		ok := true
		for _, fi := range fin {
			if c.Gates[fi].Func == cell.OutPort {
				ok = false
			}
		}
		if !ok {
			continue
		}
		c.AddGate(f, fin...)
	}
	// Drive a few POs from random non-port gates.
	for k := 0; k < 4; k++ {
		id := rng.Intn(len(c.Gates))
		if c.Gates[id].Func != cell.OutPort {
			c.AddOutput("y", id)
		}
	}
	return c
}

func TestRandomDAGsValidateAndCompact(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	lib := cell.Default28nm()
	for trial := 0; trial < 50; trial++ {
		c := buildRandomDAG(rng, 3+rng.Intn(5), 10+rng.Intn(60))
		if len(c.POs) == 0 {
			continue
		}
		if err := c.Validate(); err != nil {
			t.Fatalf("trial %d: random DAG invalid: %v", trial, err)
		}
		nc, _ := c.Compact()
		if err := nc.Validate(); err != nil {
			t.Fatalf("trial %d: compacted DAG invalid: %v", trial, err)
		}
		if a, b := nc.Area(lib), c.Area(lib); a != b {
			t.Fatalf("trial %d: live area changed by Compact (%.3f vs %.3f)", trial, a, b)
		}
		// After Compact every gate except interface PIs must be live.
		live := nc.Live()
		for id := range nc.Gates {
			if !live[id] && nc.Gates[id].Func != cell.Input {
				t.Fatalf("trial %d: compacted circuit still has dangling gate %d", trial, id)
			}
		}
		if len(nc.PIs) != len(c.PIs) {
			t.Fatalf("trial %d: Compact dropped primary inputs", trial)
		}
	}
}
