// The /v2 API surface: the versioned HTTP contract aligned with the
// session-based als/v2 package. Where /v1 collapses a flow to one result
// polled by the client, /v2 exposes the run the way the optimizer
// produces it — live Server-Sent Events (per-iteration progress, every
// improved solution, a terminal event), a trade-off front of solutions in
// the result, paginated job listing, and machine-readable error codes
// mapped from the als sentinel errors with errors.Is (never by matching
// error prose). /v1 stays mounted unchanged as the compatibility adapter:
// both generations share the job table, the worker pool and the
// content-hash cache, so a job submitted on either surface is visible —
// and deduplicated — on both.

package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"

	als "repro"
)

// SolutionView is the wire form of one trade-off front solution.
type SolutionView struct {
	RatioCPD float64 `json:"ratio_cpd"`
	Err      float64 `json:"err"`
	Area     float64 `json:"area"`
}

// JobViewV2 is the /v2 snapshot of one job: the v1 view plus the run's
// solution front. Keeping the front out of JobView is what guarantees
// /v1 responses never change shape.
type JobViewV2 struct {
	JobView
	Front []SolutionView `json:"front,omitempty"`
}

// JobPage is one page of the /v2 job listing, in submission order.
type JobPage struct {
	Jobs   []JobViewV2 `json:"jobs"`
	Total  int         `json:"total"`
	Offset int         `json:"offset"`
	Limit  int         `json:"limit"`
	// NextOffset is set while more jobs follow this page.
	NextOffset *int `json:"next_offset,omitempty"`
}

// Machine-readable /v2 error codes. Clients (and the tests) branch on
// these; the accompanying message stays free-form human text.
const (
	CodeInvalidRequest   = "invalid_request"
	CodeUnknownBenchmark = "unknown_benchmark"
	CodeUnknownJob       = "unknown_job"
	CodeQueueFull        = "queue_full"
	CodeDraining         = "draining"
	CodeNotReady         = "not_ready"
	CodeInfeasible       = "infeasible"
	CodeJobFailed        = "job_failed"
	CodeJobCancelled     = "job_cancelled"
)

// ErrorBody is the /v2 error envelope: {"error": {"code": ..., "message": ...}}.
type ErrorBody struct {
	Error ErrorInfo `json:"error"`
}

// ErrorInfo carries one structured API error.
type ErrorInfo struct {
	Code    string `json:"code"`
	Message string `json:"message"`
}

// failCodeFor classifies a flow failure by its sentinel, for the /v2
// result endpoint's status mapping.
func failCodeFor(err error) string {
	if errors.Is(err, als.ErrInfeasible) {
		return CodeInfeasible
	}
	return CodeJobFailed
}

// frontKey derives the store key a job's solution front persists under.
// Job hashes are bare hex, so the suffixed key can never collide with
// one, and sweep tooling — which only ever looks up job hashes — skips
// front records entirely.
func frontKey(hash string) string { return hash + "/front" }

// Event type names of the /v2 SSE stream (terminal events are named
// after the job's final status: "done", "failed", "cancelled").
const (
	EventTypeProgress = "progress"
	EventTypeSolution = "solution"
)

// JobEvent is one live /v2 stream event; exactly one payload field is
// set, selected by Type. Terminal events (Type done/failed/cancelled)
// carry the full job view.
type JobEvent struct {
	Type     string
	Progress *Progress
	Solution *SolutionView
	Job      *JobViewV2
}

func (ev JobEvent) data() any {
	switch {
	case ev.Progress != nil:
		return ev.Progress
	case ev.Solution != nil:
		return ev.Solution
	}
	return ev.Job
}

// terminal reports whether the event ends its stream.
func (ev JobEvent) terminal() bool { return ev.Job != nil }

// broadcastLocked fans one event out to the job's subscribers without
// blocking: a slow consumer loses intermediate events (each progress
// event is a full snapshot, so catching up is lossless), never the
// terminal notification, which travels by channel close. s.mu held.
func (s *Server) broadcastLocked(j *jobState, ev JobEvent) {
	for ch := range j.subs {
		select {
		case ch <- ev:
		default:
		}
	}
}

// closeSubsLocked ends every subscription of a job that just reached a
// terminal state, delivering the terminal event (with the final job
// view) into each channel before closing it. The snapshot is taken here,
// not in the SSE handler after the close, because the job may be evicted
// from the table the instant the lock drops — a subscriber must still
// get its terminal event. Every channel send in the package happens
// under s.mu, so after dropping one buffered event there is always room
// for the terminal one. s.mu held.
func (s *Server) closeSubsLocked(j *jobState) {
	if len(j.subs) > 0 {
		v := s.viewV2Locked(j)
		ev := JobEvent{Type: string(j.status), Job: &v}
		for ch := range j.subs {
			select {
			case ch <- ev:
			default:
				select { // full: drop the oldest event to make room
				case <-ch:
				default:
				}
				select {
				case ch <- ev:
				default:
				}
			}
			close(ch)
		}
		s.metrics.sseSubscribers.Add(-int64(len(j.subs)))
	}
	j.subs = nil
}

// subscribe registers a live event subscription for a job. For a job
// already terminal it returns a nil channel and the terminal event as
// the snapshot; otherwise the snapshot replays the job's current
// progress so a mid-run subscriber starts consistent.
func (s *Server) subscribe(id string) (ch chan JobEvent, snapshot []JobEvent, ok bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, found := s.jobs[id]
	if !found {
		return nil, nil, false
	}
	if j.status.terminal() {
		v := s.viewV2Locked(j)
		return nil, []JobEvent{{Type: string(j.status), Job: &v}}, true
	}
	if j.progress.Total != 0 {
		p := j.progress
		snapshot = append(snapshot, JobEvent{Type: EventTypeProgress, Progress: &p})
	}
	ch = make(chan JobEvent, 256)
	if j.subs == nil {
		j.subs = map[chan JobEvent]struct{}{}
	}
	j.subs[ch] = struct{}{}
	s.metrics.sseSubscribers.Inc()
	return ch, snapshot, true
}

// unsubscribe drops a subscription whose consumer went away (client
// disconnect); a no-op after the job terminated and closed it.
func (s *Server) unsubscribe(id string, ch chan JobEvent) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if j, ok := s.jobs[id]; ok && j.subs != nil {
		if _, live := j.subs[ch]; live {
			delete(j.subs, ch)
			s.metrics.sseSubscribers.Dec()
		}
	}
}

// JobV2 returns a point-in-time /v2 view of one job.
func (s *Server) JobV2(id string) (JobViewV2, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return JobViewV2{}, false
	}
	return s.viewV2Locked(j), true
}

// JobsPage lists one page of jobs in submission order. A limit <= 0
// selects the default page size; limits beyond the maximum are clamped.
func (s *Server) JobsPage(offset, limit int) JobPage {
	const (
		defaultLimit = 50
		maxLimit     = 500
	)
	if limit <= 0 {
		limit = defaultLimit
	}
	if limit > maxLimit {
		limit = maxLimit
	}
	if offset < 0 {
		offset = 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	page := JobPage{Jobs: []JobViewV2{}, Total: len(s.order), Offset: offset, Limit: limit}
	if offset < len(s.order) {
		end := offset + limit
		if end > len(s.order) {
			end = len(s.order)
		}
		for _, id := range s.order[offset:end] {
			page.Jobs = append(page.Jobs, s.viewV2Locked(s.jobs[id]))
		}
		if end < len(s.order) {
			page.NextOffset = &end
		}
	}
	return page
}

// viewV2Locked snapshots a job with its front; s.mu held.
func (s *Server) viewV2Locked(j *jobState) JobViewV2 {
	v := JobViewV2{JobView: s.viewLocked(j)}
	if len(j.front) > 0 {
		v.Front = append([]SolutionView(nil), j.front...)
	}
	return v
}

// registerV2 mounts the /v2 surface:
//
//	POST /v2/jobs              submit a flow (same Request schema as /v1)
//	GET  /v2/jobs              paginated listing (?offset=&limit=) → JobPage
//	GET  /v2/jobs/{id}         one job's status, progress and front
//	GET  /v2/jobs/{id}/events  live SSE stream (progress/solution events,
//	                           then one terminal done/failed/cancelled
//	                           event; terminal jobs get the terminal event
//	                           immediately)
//	GET  /v2/jobs/{id}/result  200 done (with front), 409 not ready,
//	                           422 infeasible, 410 failed/cancelled
//	POST /v2/jobs/{id}/cancel  cancel a queued or running job
//
// Errors are {"error": {"code", "message"}} envelopes; see the Code*
// constants.
func (s *Server) registerV2(mux *http.ServeMux) {
	mux.HandleFunc("POST /v2/jobs", s.handleV2Submit)
	mux.HandleFunc("GET /v2/jobs", s.handleV2List)
	mux.HandleFunc("GET /v2/jobs/{id}", s.handleV2Status)
	mux.HandleFunc("GET /v2/jobs/{id}/events", s.handleV2Events)
	mux.HandleFunc("GET /v2/jobs/{id}/result", s.handleV2Result)
	mux.HandleFunc("POST /v2/jobs/{id}/cancel", s.handleV2Cancel)
}

func writeV2Error(w http.ResponseWriter, status int, code, message string) {
	writeJSON(w, status, ErrorBody{Error: ErrorInfo{Code: code, Message: message}})
}

func (s *Server) handleV2Submit(w http.ResponseWriter, r *http.Request) {
	var req Request
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeV2Error(w, http.StatusBadRequest, CodeInvalidRequest, err.Error())
		return
	}
	v, err := s.Submit(r.Context(), req)
	switch {
	case errors.Is(err, ErrQueueFull):
		writeV2Error(w, http.StatusServiceUnavailable, CodeQueueFull, err.Error())
	case errors.Is(err, ErrDraining):
		writeV2Error(w, http.StatusServiceUnavailable, CodeDraining, err.Error())
	case errors.Is(err, als.ErrUnknownBenchmark):
		writeV2Error(w, http.StatusNotFound, CodeUnknownBenchmark, err.Error())
	case err != nil:
		writeV2Error(w, http.StatusBadRequest, CodeInvalidRequest, err.Error())
	default:
		// Submit's view carries the per-submission cached/dedup flag the
		// job-table snapshot cannot know; the snapshot adds the front (and
		// is skipped entirely if the job was already evicted again).
		v2 := JobViewV2{JobView: v}
		if snap, ok := s.JobV2(v.ID); ok {
			snap.Cached = snap.Cached || v.Cached
			v2 = snap
		}
		if v2.Status == StatusDone {
			writeJSON(w, http.StatusOK, v2) // cache/dedup hit, result ready now
		} else {
			writeJSON(w, http.StatusAccepted, v2)
		}
	}
}

func (s *Server) handleV2List(w http.ResponseWriter, r *http.Request) {
	offset, limit := 0, 0
	q := r.URL.Query()
	for name, dst := range map[string]*int{"offset": &offset, "limit": &limit} {
		raw := q.Get(name)
		if raw == "" {
			continue
		}
		n, err := strconv.Atoi(raw)
		if err != nil || n < 0 {
			writeV2Error(w, http.StatusBadRequest, CodeInvalidRequest,
				fmt.Sprintf("service: %q must be a non-negative integer, got %q", name, raw))
			return
		}
		*dst = n
	}
	writeJSON(w, http.StatusOK, s.JobsPage(offset, limit))
}

func (s *Server) handleV2Status(w http.ResponseWriter, r *http.Request) {
	v, ok := s.JobV2(r.PathValue("id"))
	if !ok {
		writeV2Error(w, http.StatusNotFound, CodeUnknownJob, "service: unknown job")
		return
	}
	writeJSON(w, http.StatusOK, v)
}

func (s *Server) handleV2Result(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	v, ok := s.JobV2(id)
	if !ok {
		writeV2Error(w, http.StatusNotFound, CodeUnknownJob, "service: unknown job")
		return
	}
	switch v.Status {
	case StatusDone:
		writeJSON(w, http.StatusOK, v)
	case StatusFailed:
		code := CodeJobFailed
		s.mu.Lock()
		if j, ok := s.jobs[id]; ok && j.failCode != "" {
			code = j.failCode
		}
		s.mu.Unlock()
		status := http.StatusGone
		if code == CodeInfeasible {
			status = http.StatusUnprocessableEntity
		}
		writeV2Error(w, status, code, v.Error)
	case StatusCancelled:
		writeV2Error(w, http.StatusGone, CodeJobCancelled, v.Error)
	default:
		writeV2Error(w, http.StatusConflict, CodeNotReady,
			fmt.Sprintf("service: job %s is %s; stream /v2/jobs/%s/events or retry later", id, v.Status, id))
	}
}

func (s *Server) handleV2Cancel(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	v1, ok := s.Cancel(id)
	if !ok {
		writeV2Error(w, http.StatusNotFound, CodeUnknownJob, "service: unknown job")
		return
	}
	v := JobViewV2{JobView: v1}
	if snap, ok := s.JobV2(id); ok {
		v = snap
	}
	writeJSON(w, http.StatusOK, v)
}

// handleV2Events streams a job's run as Server-Sent Events. The stream
// replays the current progress on connect, forwards live progress and
// improved-solution events, and always ends with one terminal event named
// after the job's final status whose data is the full JobViewV2 — a
// subscriber never needs to poll after the stream closes.
func (s *Server) handleV2Events(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	ch, snapshot, ok := s.subscribe(id)
	if !ok {
		writeV2Error(w, http.StatusNotFound, CodeUnknownJob, "service: unknown job")
		return
	}
	flusher, canFlush := w.(http.Flusher)
	if !canFlush {
		if ch != nil {
			s.unsubscribe(id, ch)
		}
		writeV2Error(w, http.StatusInternalServerError, CodeInvalidRequest,
			"service: response writer does not support streaming")
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)

	for _, ev := range snapshot {
		writeSSE(w, ev.Type, ev.data())
	}
	flusher.Flush()
	if ch == nil { // already terminal: the snapshot was the terminal event
		return
	}
	defer s.unsubscribe(id, ch)
	for {
		select {
		case <-r.Context().Done():
			return
		case ev, open := <-ch:
			if !open {
				// The terminal event always precedes the close
				// (closeSubsLocked); reaching here without one means only
				// that this subscriber was dropped some other way.
				return
			}
			writeSSE(w, ev.Type, ev.data())
			flusher.Flush()
			if ev.terminal() {
				return
			}
		}
	}
}

// writeSSE emits one Server-Sent Event. json.Marshal output is a single
// line, so one data: field always suffices.
func writeSSE(w http.ResponseWriter, event string, v any) {
	raw, err := json.Marshal(v)
	if err != nil {
		raw = []byte(`{}`)
	}
	fmt.Fprintf(w, "event: %s\ndata: %s\n\n", event, raw)
}
