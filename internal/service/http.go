package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
)

// maxBodyBytes bounds a submission body (the verilog source dominates).
const maxBodyBytes = MaxVerilogBytes + 1<<20

// Handler returns the HTTP/JSON API. The preferred surface is /v2
// (registerV2 in v2.go): SSE event streaming, solution fronts, paginated
// listing and structured error codes. The legacy /v1 surface below stays
// mounted unchanged as a compatibility adapter over the same job table:
//
//	POST /v1/flows             submit a flow (Request body) → JobView
//	GET  /v1/flows             list jobs → []JobView
//	GET  /v1/flows/{id}        one job's status and progress → JobView
//	GET  /v1/flows/{id}/result finished result → JobView (409 while the
//	                           job is queued/running, 410 once it ended
//	                           failed or cancelled — stop polling)
//	POST /v1/flows/{id}/cancel cancel a queued or running job → JobView
//
// plus the worker-facing job API (worker.go) used by the distributed
// sweep coordinator:
//
//	POST /v1/jobs              batch-submit exp.Job specs → BatchResponse
//	GET  /v1/jobs/{hash}       status/result by content hash → JobView
//
// the shared-store surface (storehttp.go) that lets other workers use
// this daemon's store as their remote backend:
//
//	GET  /store/{key}          raw stored payload by content hash → JSON
//	PUT  /store/{key}          persist a payload → 204
//	GET  /store/               full store dump as JSONL (a valid store file)
//
// and the operational surface:
//
//	GET  /healthz              liveness + Stats counters
//	GET  /metrics              Prometheus text exposition (metrics.go)
//	GET  /debug/traces         recent spans, grouped by trace (404 when
//	                           Options.Tracer is nil; internal/trace)
//
// Every response is stamped with an X-Request-Id that also appears in the
// structured access log, and every request is counted/timed by route
// pattern (see instrument in metrics.go).
//
// /v1 errors are JSON objects {"error": "..."}: 400 malformed or invalid
// requests, 404 unknown job, 409 result not ready yet, 410 result will
// never exist, 503 queue full or draining.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/flows", s.handleSubmit)
	mux.HandleFunc("GET /v1/flows", s.handleList)
	mux.HandleFunc("GET /v1/flows/{id}", s.handleStatus)
	mux.HandleFunc("GET /v1/flows/{id}/result", s.handleResult)
	mux.HandleFunc("POST /v1/flows/{id}/cancel", s.handleCancel)
	mux.HandleFunc("POST /v1/jobs", s.handleBatchSubmit)
	mux.HandleFunc("GET /v1/jobs/{hash}", s.handleJobByHash)
	s.registerV2(mux)
	mux.HandleFunc("GET /store/{key...}", s.handleStoreGet)
	mux.HandleFunc("PUT /store/{key...}", s.handleStorePut)
	mux.HandleFunc("GET /healthz", s.handleHealth)
	mux.Handle("GET /metrics", s.metrics.registry.Handler())
	mux.Handle("GET /debug/traces", s.tracer.Handler())
	return s.instrument(mux)
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v) //nolint:errcheck // the response is already committed
}

func writeError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, map[string]string{"error": err.Error()})
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req Request
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	v, err := s.Submit(r.Context(), req)
	switch {
	case errors.Is(err, ErrQueueFull), errors.Is(err, ErrDraining):
		writeError(w, http.StatusServiceUnavailable, err)
	case err != nil:
		writeError(w, http.StatusBadRequest, err)
	case v.Status == StatusDone:
		writeJSON(w, http.StatusOK, v) // cache/dedup hit, result ready now
	default:
		writeJSON(w, http.StatusAccepted, v)
	}
}

func (s *Server) handleList(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.Jobs())
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	v, ok := s.Job(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, errors.New("service: unknown job"))
		return
	}
	writeJSON(w, http.StatusOK, v)
}

func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	v, ok := s.Job(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, errors.New("service: unknown job"))
		return
	}
	switch {
	case v.Status == StatusDone:
		writeJSON(w, http.StatusOK, v)
	case v.Status.terminal(): // failed/cancelled: no result will ever come
		writeJSON(w, http.StatusGone, v)
	default:
		writeJSON(w, http.StatusConflict, v)
	}
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	v, ok := s.Cancel(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, errors.New("service: unknown job"))
		return
	}
	writeJSON(w, http.StatusOK, v)
}

// handleBatchSubmit accepts job specs in order until one is rejected: an
// invalid spec fails the whole batch with 400 (it would be invalid on
// every worker — the coordinator must not retry it), while queue-full and
// draining return 503 with the accepted prefix so the coordinator can
// resubmit the remainder after a backoff.
func (s *Server) handleBatchSubmit(w http.ResponseWriter, r *http.Request) {
	var req BatchRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if len(req.Jobs) == 0 {
		writeError(w, http.StatusBadRequest, errors.New("service: batch has no jobs"))
		return
	}
	if len(req.Jobs) > MaxBatchJobs {
		writeError(w, http.StatusBadRequest,
			fmt.Errorf("service: batch of %d jobs exceeds the %d-job limit", len(req.Jobs), MaxBatchJobs))
		return
	}
	var resp BatchResponse
	for i, j := range req.Jobs {
		v, err := s.Submit(r.Context(), RequestFromJob(j))
		switch {
		case errors.Is(err, ErrQueueFull), errors.Is(err, ErrDraining):
			resp.Reason = ReasonQueueFull
			if errors.Is(err, ErrDraining) {
				resp.Reason = ReasonDraining
			}
			resp.Error = err.Error()
			writeJSON(w, http.StatusServiceUnavailable, resp)
			return
		case err != nil:
			writeError(w, http.StatusBadRequest, fmt.Errorf("service: batch job %d (%s): %w", i, j, err))
			return
		}
		resp.Jobs = append(resp.Jobs, v)
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleJobByHash(w http.ResponseWriter, r *http.Request) {
	v, ok := s.JobByHash(r.PathValue("hash"))
	if !ok {
		writeError(w, http.StatusNotFound, errors.New("service: unknown job hash"))
		return
	}
	writeJSON(w, http.StatusOK, v)
}

func (s *Server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"status": "ok",
		"stats":  s.Stats(),
	})
}
