// Telemetry for the serving stack. Every Server owns a serverMetrics: the
// full RED/USE-style instrument set for the submit → queue → evaluate →
// store pipeline, registered on the telemetry.Registry the daemon exposes
// at GET /metrics.
//
// The metric NAMES are frozen operational API — dashboards and alerts
// reference them — and are pinned by TestMetricNamesFrozen against
// testdata/metrics_v1.txt; renaming or removing one must update that
// contract file deliberately, exactly like an HTTP wire change must pass
// apicheck. Adding a new metric appends to the contract file.
//
// Instrumentation points:
//
//   - HTTP: every request is counted by route pattern and status code and
//     its duration observed, via the middleware in Handler(); the route
//     label is the ServeMux pattern (bounded cardinality), never the raw
//     URL. Requests also get an X-Request-Id for log correlation.
//   - Job lifecycle: submissions (accepted/deduped/store-served),
//     completions by terminal status, live running jobs, queue depth
//     (sampled from the queue buffer at scrape time) and the end-to-end
//     latency of executed jobs.
//   - Evaluation engine: total circuit evaluations and the PR 6
//     evaluation-cache counters (lookups/hits/composition/fallbacks),
//     accumulated from each finished run's FlowResult.Cache — the atomic
//     counters internal/core already maintains, so the optimizer hot path
//     gains zero new instructions.
//   - Store: puts/lookups/hits of the persistent result store, via
//     store.Instrument.
//   - Streaming: the live SSE subscriber count.
package service

import (
	"fmt"
	"net/http"
	"strconv"
	"time"

	als "repro"
	"repro/internal/telemetry"
	"repro/internal/trace"
)

// jobDurationBuckets spans quick-scale flows (tens of ms) through
// paper-scale runs (minutes).
var jobDurationBuckets = []float64{.01, .025, .05, .1, .25, .5, 1, 2.5, 5, 10, 30, 60, 120, 300, 600}

// queueWaitBuckets reach lower than jobDurationBuckets: on a healthy
// server the queue wait is sub-millisecond, and the interesting signal is
// exactly when it stops being so.
var queueWaitBuckets = []float64{.0001, .00025, .0005, .001, .0025, .005, .01, .025, .05, .1, .25, .5, 1, 2.5, 5, 10, 30, 60}

// serverMetrics bundles every instrument one Server registers.
type serverMetrics struct {
	registry *telemetry.Registry

	httpRequests *telemetry.CounterVec // route, code
	httpDuration *telemetry.Histogram

	jobsSubmitted *telemetry.Counter
	jobsDeduped   *telemetry.Counter
	jobsStoreHits *telemetry.Counter
	jobsExecuted  *telemetry.Counter
	jobsCompleted *telemetry.CounterVec // status
	jobsRunning   *telemetry.Gauge
	jobDuration   *telemetry.Histogram

	evaluations        *telemetry.Counter
	evalCacheLookups   *telemetry.Counter
	evalCacheHits      *telemetry.Counter
	evalCacheUnitHits  *telemetry.Counter
	evalCacheUnitMiss  *telemetry.Counter
	evalCacheComposed  *telemetry.Counter
	evalCacheFallbacks *telemetry.Counter

	storePuts *telemetry.Counter
	storeGets *telemetry.Counter
	storeHits *telemetry.Counter

	sseSubscribers *telemetry.Gauge

	queueWait *telemetry.Histogram

	walAppends  *telemetry.CounterVec // op
	walReplayed *telemetry.Counter
}

// newServerMetrics registers the server's instrument set on reg. The
// queue-depth gauge samples the queue buffer length at scrape time, which
// is why registration needs the Server.
func newServerMetrics(reg *telemetry.Registry, s *Server) *serverMetrics {
	m := &serverMetrics{registry: reg}

	m.httpRequests = reg.CounterVec("als_http_requests_total",
		"HTTP requests served, by ServeMux route pattern and status code.", "route", "code")
	m.httpDuration = reg.Histogram("als_http_request_duration_seconds",
		"HTTP request latency (SSE streams count their full lifetime).", nil)

	m.jobsSubmitted = reg.Counter("als_jobs_submitted_total",
		"Accepted submissions, including dedup and store-served ones.")
	m.jobsDeduped = reg.Counter("als_jobs_deduped_total",
		"Submissions attached to an identical live or finished job.")
	m.jobsStoreHits = reg.Counter("als_jobs_store_hits_total",
		"Submissions answered from the persistent result store.")
	m.jobsExecuted = reg.Counter("als_jobs_executed_total",
		"Flows actually computed by this process.")
	m.jobsCompleted = reg.CounterVec("als_jobs_completed_total",
		"Jobs reaching a terminal state, by status (done/failed/cancelled).", "status")
	m.jobsRunning = reg.Gauge("als_jobs_running",
		"Flows executing right now.")
	reg.GaugeFunc("als_queue_depth",
		"Jobs waiting in the submission queue buffer.", func() float64 {
			return float64(len(s.queue))
		})
	m.jobDuration = reg.Histogram("als_job_duration_seconds",
		"End-to-end latency of executed jobs that finished done.", jobDurationBuckets)

	m.evaluations = reg.Counter("als_evaluations_total",
		"Circuit evaluations performed by finished runs.")
	m.evalCacheLookups = reg.Counter("als_evalcache_lookups_total",
		"Evaluation-cache lookups (cache-eligible candidate evaluations).")
	m.evalCacheHits = reg.Counter("als_evalcache_hits_total",
		"Whole-candidate evaluation-cache hits.")
	m.evalCacheUnitHits = reg.Counter("als_evalcache_unit_hits_total",
		"Per-change cone-delta cache hits on the composition path.")
	m.evalCacheUnitMiss = reg.Counter("als_evalcache_unit_misses_total",
		"Per-change cone-delta cache misses on the composition path.")
	m.evalCacheComposed = reg.Counter("als_evalcache_composed_total",
		"Candidates recombined exactly from disjoint cached cone deltas.")
	m.evalCacheFallbacks = reg.Counter("als_evalcache_fallbacks_total",
		"Evaluations that bypassed the cache entirely.")

	m.storePuts = reg.Counter("als_store_puts_total",
		"Records appended to the persistent result store.")
	m.storeGets = reg.Counter("als_store_gets_total",
		"Lookups against the persistent result store.")
	m.storeHits = reg.Counter("als_store_hits_total",
		"Persistent-store lookups that found a record.")

	m.sseSubscribers = reg.Gauge("als_sse_subscribers",
		"Live /v2 event-stream subscriptions.")

	// Later metrics register below queueWait in the order they were added:
	// the metric-name contract file is append-only.
	m.queueWait = reg.Histogram("als_queue_wait_seconds",
		"Time an executed job waited between submission and run start.", queueWaitBuckets)

	m.walAppends = reg.CounterVec("als_wal_appends_total",
		"Submission write-ahead-log records appended, by op (accept/done/failed/cancelled).", "op")
	m.walReplayed = reg.Counter("als_wal_replayed_total",
		"Accepted submissions re-submitted from the write-ahead log at startup.")
	return m
}

// observeFlow folds one finished run's engine counters into the
// process-wide totals. FlowResult.Cache is cumulative over exactly that
// run (a fresh Evaluator per job), so per-run totals add without double
// counting.
func (m *serverMetrics) observeFlow(res *als.FlowResult) {
	m.evaluations.Add(int64(res.Evaluations))
	m.evalCacheLookups.Add(res.Cache.Lookups)
	m.evalCacheHits.Add(res.Cache.Hits)
	m.evalCacheUnitHits.Add(res.Cache.UnitHits)
	m.evalCacheUnitMiss.Add(res.Cache.UnitMisses)
	m.evalCacheComposed.Add(res.Cache.Composed)
	m.evalCacheFallbacks.Add(res.Cache.Fallbacks)
}

// statusWriter captures the response code for the request log and the
// route counter, forwarding Flush so SSE streaming keeps working through
// the middleware.
type statusWriter struct {
	http.ResponseWriter
	code  int
	wrote bool
}

func (w *statusWriter) WriteHeader(code int) {
	if !w.wrote {
		w.code, w.wrote = code, true
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if !w.wrote {
		w.code, w.wrote = http.StatusOK, true
	}
	return w.ResponseWriter.Write(b)
}

// Flush forwards to the underlying writer when it streams and is a no-op
// otherwise, so the SSE handler behaves through the wrapper exactly as it
// would against the bare writer of every real net/http server.
func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// Unwrap exposes the underlying writer to http.ResponseController.
func (w *statusWriter) Unwrap() http.ResponseWriter { return w.ResponseWriter }

// instrument wraps the mux with request-ID assignment, tracing, the
// per-route request counter/latency histogram, and a structured access
// log. The route label is resolved through the mux's own pattern matcher,
// so its cardinality is bounded by the registered routes ("other"
// collects unmatched paths and wrong-method requests).
//
// Request-ID policy: with tracing enabled, every request gets a span —
// continuing the remote parent when a valid traceparent header arrives
// (the distributed-sweep coordinator sends one), minting a root
// otherwise — and the request ID IS the trace ID, so a log line and a
// trace are the same lookup key. With tracing off, an incoming
// X-Request-Id is honored (bounded and sanitized) so multi-hop requests
// stay greppable end to end, and only a hopless request falls back to
// the legacy per-process sequence.
func (s *Server) instrument(mux *http.ServeMux) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		_, route := mux.Handler(r)
		if route == "" {
			route = "other"
		}
		var span *trace.Span
		var id string
		switch {
		case s.tracer.Enabled():
			if sc, err := trace.ParseTraceparent(r.Header.Get("traceparent")); err == nil {
				span = s.tracer.StartRemote("http "+route, sc)
			} else {
				span = s.tracer.StartRoot("http " + route)
			}
			span.SetAttr("http.method", r.Method)
			span.SetAttr("http.path", r.URL.Path)
			id = span.TraceID()
			r = r.WithContext(trace.ContextWith(r.Context(), span))
		default:
			id = sanitizeRequestID(r.Header.Get("X-Request-Id"))
		}
		if id == "" {
			id = fmt.Sprintf("r%06d", s.reqSeq.Add(1))
		}
		w.Header().Set("X-Request-Id", id)
		sw := &statusWriter{ResponseWriter: w}
		start := time.Now()
		mux.ServeHTTP(sw, r)
		elapsed := time.Since(start)
		code := sw.code
		if code == 0 {
			code = http.StatusOK // handler never wrote; net/http sends 200
		}
		span.SetAttr("http.status", code)
		span.End()
		s.metrics.httpRequests.With(route, strconv.Itoa(code)).Inc()
		s.metrics.httpDuration.Observe(elapsed.Seconds())
		s.log.Debug("http request",
			"request_id", id,
			"method", r.Method,
			"path", r.URL.Path,
			"route", route,
			"status", code,
			"duration_ms", float64(elapsed.Microseconds())/1e3,
			"remote", r.RemoteAddr)
	})
}

// sanitizeRequestID accepts a forwarded request ID only when it is short
// and shell/log safe (hex, alphanumerics, '-', '_', '.'); anything else —
// including the empty string — returns "" and the caller mints a fresh
// ID. Log injection through a crafted header is the attack being blocked.
func sanitizeRequestID(id string) string {
	const maxLen = 64
	if id == "" || len(id) > maxLen {
		return ""
	}
	for i := 0; i < len(id); i++ {
		c := id[i]
		switch {
		case '0' <= c && c <= '9', 'a' <= c && c <= 'z', 'A' <= c && c <= 'Z',
			c == '-', c == '_', c == '.':
		default:
			return ""
		}
	}
	return id
}
