package service

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"
	"time"

	als "repro"
	"repro/internal/store"
)

// postV2 submits a request on the /v2 surface and decodes either the job
// view or the structured error body.
func postV2(t *testing.T, ts *httptest.Server, req Request) (JobViewV2, ErrorBody, int) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/v2/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var v JobViewV2
	var e ErrorBody
	if resp.StatusCode < 400 {
		if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
			t.Fatal(err)
		}
	} else if err := json.NewDecoder(resp.Body).Decode(&e); err != nil {
		t.Fatal(err)
	}
	return v, e, resp.StatusCode
}

// getV2 fetches a /v2 path and decodes it into out (or the error body on
// a non-2xx status), returning the status code.
func getV2(t *testing.T, ts *httptest.Server, path string, out any) (ErrorBody, int) {
	t.Helper()
	resp, err := http.Get(ts.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var e ErrorBody
	if resp.StatusCode < 400 {
		if out != nil {
			if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
				t.Fatal(err)
			}
		}
	} else if err := json.NewDecoder(resp.Body).Decode(&e); err != nil {
		t.Fatal(err)
	}
	return e, resp.StatusCode
}

// sseEvent is one parsed Server-Sent Event.
type sseEvent struct {
	name string
	data string
}

// readSSE consumes a /v2 events stream until the first terminal event
// (done/failed/cancelled) or EOF, with a hard timeout.
func readSSE(t *testing.T, url string) []sseEvent {
	t.Helper()
	client := &http.Client{Timeout: 60 * time.Second}
	resp, err := client.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("SSE status = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("SSE content type = %q", ct)
	}
	var events []sseEvent
	var cur sseEvent
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "event: "):
			cur.name = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			cur.data = strings.TrimPrefix(line, "data: ")
		case line == "":
			if cur.name != "" {
				events = append(events, cur)
				if cur.name == string(StatusDone) || cur.name == string(StatusFailed) || cur.name == string(StatusCancelled) {
					return events
				}
			}
			cur = sseEvent{}
		}
	}
	return events
}

// TestV2SSEStreamsFullRun subscribes to a queued job (the single worker
// is busy with an earlier job), so the stream must carry every progress
// event of the run from iteration 1, any improved-solution events, and a
// terminal done event holding the result and the front.
func TestV2SSEStreamsFullRun(t *testing.T) {
	s, ts := newTestServer(t, Options{Workers: 1})

	// Occupy the single worker long enough for the SSE subscription to
	// attach while the watched job is still queued (submissions go through
	// Submit directly — on a loaded single-CPU machine even one HTTP
	// roundtrip can take tens of milliseconds).
	blocker := quickReq(50)
	blocker.Iterations = 300
	if _, err := s.Submit(context.Background(), blocker); err != nil {
		t.Fatal(err)
	}
	watched := quickReq(51)
	watched.Iterations = 5
	v, err := s.Submit(context.Background(), watched)
	if err != nil {
		t.Fatal(err)
	}

	events := readSSE(t, ts.URL+"/v2/jobs/"+v.ID+"/events")
	var progress, solutions int
	var terminal *sseEvent
	for i := range events {
		switch events[i].name {
		case EventTypeProgress:
			progress++
		case EventTypeSolution:
			solutions++
		case string(StatusDone):
			terminal = &events[i]
		default:
			t.Errorf("unexpected event %q", events[i].name)
		}
	}
	if progress != watched.Iterations {
		t.Errorf("progress events = %d, want %d (one per iteration)", progress, watched.Iterations)
	}
	if solutions < 1 {
		t.Error("no improved-solution events")
	}
	if terminal == nil {
		t.Fatal("stream ended without a done event")
	}
	var final JobViewV2
	if err := json.Unmarshal([]byte(terminal.data), &final); err != nil {
		t.Fatalf("terminal event data: %v", err)
	}
	if final.Status != StatusDone || final.Result == nil || len(final.Front) < 1 {
		t.Errorf("terminal view incomplete: status=%s result=%v front=%d", final.Status, final.Result, len(final.Front))
	}
	for i := 1; i < len(final.Front); i++ {
		if final.Front[i].RatioCPD < final.Front[i-1].RatioCPD {
			t.Errorf("front not sorted at %d", i)
		}
	}
}

// TestV2SSETerminalJobRepliesImmediately: subscribing to a finished job
// yields exactly the terminal event, no waiting.
func TestV2SSETerminalJobRepliesImmediately(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 1})
	v, _, _ := postV2(t, ts, quickReq(60))
	waitDone(t, ts, v.ID)

	events := readSSE(t, ts.URL+"/v2/jobs/"+v.ID+"/events")
	if len(events) != 1 || events[0].name != string(StatusDone) {
		t.Fatalf("events = %+v, want exactly one done event", events)
	}
}

// TestV2ResultCarriesFront: the /v2 result of a finished job includes the
// trade-off front while the /v1 view of the same job never does.
func TestV2ResultCarriesFront(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 1})
	v, _, _ := postV2(t, ts, quickReq(61))
	waitDone(t, ts, v.ID)

	var v2 JobViewV2
	if _, code := getV2(t, ts, "/v2/jobs/"+v.ID+"/result", &v2); code != http.StatusOK {
		t.Fatalf("v2 result status = %d", code)
	}
	if len(v2.Front) < 1 {
		t.Fatal("v2 result has no front")
	}
	if best := v2.Front[0]; v2.Result == nil || best.Err > 0.0244 {
		t.Errorf("front best outside budget: %+v", best)
	}

	// The raw /v1 body must not even contain the key.
	resp, err := http.Get(ts.URL + "/v1/flows/" + v.ID + "/result")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var raw bytes.Buffer
	if _, err := raw.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(raw.String(), `"front"`) {
		t.Errorf("/v1 response leaked the v2 front field:\n%s", raw.String())
	}
}

// TestV2Pagination covers the paged listing: totals, page boundaries,
// next_offset, clamping, and bad parameters.
func TestV2Pagination(t *testing.T) {
	s, ts := newTestServer(t, Options{Workers: 1, QueueDepth: 16})
	const n = 5
	for i := 0; i < n; i++ {
		req := quickReq(int64(70 + i))
		if _, err := s.Submit(context.Background(), req); err != nil {
			t.Fatal(err)
		}
	}

	var page JobPage
	if _, code := getV2(t, ts, "/v2/jobs?limit=2", &page); code != http.StatusOK {
		t.Fatalf("list status = %d", code)
	}
	if page.Total != n || len(page.Jobs) != 2 || page.NextOffset == nil || *page.NextOffset != 2 {
		t.Fatalf("first page = total %d, %d jobs, next %v", page.Total, len(page.Jobs), page.NextOffset)
	}
	first := page.Jobs[0].ID

	page = JobPage{} // fresh decode target: next_offset is omitempty
	if _, code := getV2(t, ts, "/v2/jobs?offset=4&limit=2", &page); code != http.StatusOK {
		t.Fatalf("last page status = %d", code)
	}
	if len(page.Jobs) != 1 || page.NextOffset != nil {
		t.Fatalf("last page = %d jobs, next %v", len(page.Jobs), page.NextOffset)
	}

	page = JobPage{}
	if _, code := getV2(t, ts, "/v2/jobs?offset=99", &page); code != http.StatusOK || len(page.Jobs) != 0 {
		t.Fatalf("beyond-end page: code %d, %d jobs", code, len(page.Jobs))
	}

	page = JobPage{}
	if _, code := getV2(t, ts, "/v2/jobs", &page); code != http.StatusOK || len(page.Jobs) != n {
		t.Fatalf("default page: code %d, %d jobs", code, len(page.Jobs))
	}
	if page.Jobs[0].ID != first {
		t.Error("pages not in stable submission order")
	}

	e, code := getV2(t, ts, "/v2/jobs?limit=bogus", nil)
	if code != http.StatusBadRequest || e.Error.Code != CodeInvalidRequest {
		t.Errorf("bad limit: code %d, error %+v", code, e.Error)
	}
	if _, code := getV2(t, ts, "/v2/jobs?offset=-1", nil); code != http.StatusBadRequest {
		t.Errorf("negative offset: code %d", code)
	}
}

// TestV2ErrorCodes pins the structured error mapping of the /v2 surface.
func TestV2ErrorCodes(t *testing.T) {
	s, ts := newTestServer(t, Options{Workers: 1})

	_, e, code := postV2(t, ts, Request{Circuit: "c4242", Metric: "ER", Budget: 0.05})
	if code != http.StatusNotFound || e.Error.Code != CodeUnknownBenchmark {
		t.Errorf("unknown benchmark: code %d, error %+v", code, e.Error)
	}

	_, e, code = postV2(t, ts, Request{Circuit: "c880", Metric: "MAE", Budget: 0.05})
	if code != http.StatusBadRequest || e.Error.Code != CodeInvalidRequest {
		t.Errorf("bad metric: code %d, error %+v", code, e.Error)
	}

	e, code = getV2(t, ts, "/v2/jobs/f999999", nil)
	if code != http.StatusNotFound || e.Error.Code != CodeUnknownJob {
		t.Errorf("unknown job: code %d, error %+v", code, e.Error)
	}

	// Result of a still-pending job: 409 not_ready. Block the single
	// worker with a long job so the probed job stays queued across the
	// HTTP roundtrips (which contend with the compute-bound worker for
	// CPU).
	blocker := quickReq(80)
	blocker.Iterations = 500
	if _, err := s.Submit(context.Background(), blocker); err != nil {
		t.Fatal(err)
	}
	pending, err := s.Submit(context.Background(), quickReq(81))
	if err != nil {
		t.Fatal(err)
	}
	e, code = getV2(t, ts, "/v2/jobs/"+pending.ID+"/result", nil)
	if code != http.StatusConflict || e.Error.Code != CodeNotReady {
		t.Errorf("pending result: code %d, error %+v", code, e.Error)
	}

	// Cancelled while queued: 410 job_cancelled.
	resp, err := http.Post(ts.URL+"/v2/jobs/"+pending.ID+"/cancel", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cancel status = %d", resp.StatusCode)
	}
	e, code = getV2(t, ts, "/v2/jobs/"+pending.ID+"/result", nil)
	if code != http.StatusGone || e.Error.Code != CodeJobCancelled {
		t.Errorf("cancelled result: code %d, error %+v", code, e.Error)
	}

	// An infeasible failure maps to 422 with its own code. The default
	// optimizers cannot produce one (the accurate circuit is always
	// feasible), so fabricate the terminal state the runner would record.
	s.mu.Lock()
	s.jobs["fxinfeasible"] = &jobState{
		id:       "fxinfeasible",
		spec:     &flowSpec{},
		status:   StatusFailed,
		errMsg:   "no feasible circuit",
		failCode: failCodeFor(fmt.Errorf("wrap: %w", als.ErrInfeasible)),
	}
	s.order = append(s.order, "fxinfeasible")
	s.mu.Unlock()
	e, code = getV2(t, ts, "/v2/jobs/fxinfeasible/result", nil)
	if code != http.StatusUnprocessableEntity || e.Error.Code != CodeInfeasible {
		t.Errorf("infeasible result: code %d, error %+v", code, e.Error)
	}
}

// TestFailCodeFor pins the sentinel classification (errors.Is, not prose).
func TestFailCodeFor(t *testing.T) {
	if c := failCodeFor(fmt.Errorf("outer: %w", als.ErrInfeasible)); c != CodeInfeasible {
		t.Errorf("wrapped ErrInfeasible → %q", c)
	}
	if c := failCodeFor(errors.New("als: no feasible approximate circuit under the error budget")); c != CodeJobFailed {
		t.Errorf("prose lookalike must NOT classify as infeasible, got %q", c)
	}
}

// TestV2FrontPersistsAcrossRestart: a daemon restarted over the same
// store serves cached /v2 results complete with their fronts.
func TestV2FrontPersistsAcrossRestart(t *testing.T) {
	path := filepath.Join(t.TempDir(), "results.jsonl")
	st, err := store.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	s1, ts1 := newTestServer(t, Options{Workers: 1, Store: st})
	v, _, _ := postV2(t, ts1, quickReq(90))
	waitDone(t, ts1, v.ID)
	var withFront JobViewV2
	if _, code := getV2(t, ts1, "/v2/jobs/"+v.ID+"/result", &withFront); code != http.StatusOK {
		t.Fatalf("first result status = %d", code)
	}
	if len(withFront.Front) < 1 {
		t.Fatal("first run produced no front")
	}
	ts1.Close()
	s1.Close()
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	st2, err := store.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	_, ts2 := newTestServer(t, Options{Workers: 1, Store: st2})
	cached, _, code := postV2(t, ts2, quickReq(90))
	if code != http.StatusOK || !cached.Cached {
		t.Fatalf("resubmit after restart: code %d, cached %v", code, cached.Cached)
	}
	if len(cached.Front) != len(withFront.Front) {
		t.Errorf("cached front size = %d, want %d", len(cached.Front), len(withFront.Front))
	}
}
