package service

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"
	"time"

	als "repro"
	"repro/internal/store"
)

// quickReq is the canonical fast test job: Adder16 under the TABLE III
// NMED constraint at quick scale.
func quickReq(seed int64) Request {
	return Request{Circuit: "Adder16", Metric: "nmed", Budget: 0.0244, Seed: seed}
}

func newTestServer(t *testing.T, opts Options) (*Server, *httptest.Server) {
	t.Helper()
	if opts.Logf == nil {
		opts.Logf = t.Logf
	}
	s := New(opts)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return s, ts
}

// postFlow submits a request over HTTP and decodes the JobView.
func postFlow(t *testing.T, ts *httptest.Server, req Request) (JobView, int) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/v1/flows", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var v JobView
	if resp.StatusCode < 400 {
		if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
			t.Fatal(err)
		}
	}
	return v, resp.StatusCode
}

// getJob fetches one job's status view.
func getJob(t *testing.T, ts *httptest.Server, id string) JobView {
	t.Helper()
	resp, err := http.Get(ts.URL + "/v1/flows/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var v JobView
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatal(err)
	}
	return v
}

// waitDone polls a job over HTTP until it reaches a terminal state.
func waitDone(t *testing.T, ts *httptest.Server, id string) JobView {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		v := getJob(t, ts, id)
		if v.Status.terminal() {
			return v
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("job %s did not finish in time", id)
	return JobView{}
}

// TestSubmitMatchesDirectFlow is the end-to-end identity check: an
// HTTP-submitted quick-scale flow must return metrics identical to a
// direct als.Flow call at the same seed.
func TestSubmitMatchesDirectFlow(t *testing.T) {
	_, ts := newTestServer(t, Options{})

	v, code := postFlow(t, ts, quickReq(7))
	if code != http.StatusAccepted {
		t.Fatalf("submit status = %d, want 202", code)
	}
	if v.Status != StatusQueued && v.Status != StatusRunning {
		t.Fatalf("fresh submission status = %q", v.Status)
	}
	got := waitDone(t, ts, v.ID)
	if got.Status != StatusDone || got.Result == nil {
		t.Fatalf("job ended %q (error %q), want done with result", got.Status, got.Error)
	}

	want, err := als.Flow(als.Benchmark("Adder16"), als.NewLibrary(), als.FlowConfig{
		Metric: als.MetricNMED, ErrorBudget: 0.0244, Scale: als.ScaleQuick, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	if got.Result.RatioCPD != want.RatioCPD || got.Result.Err != want.Err ||
		got.Result.Evaluations != want.Evaluations {
		t.Errorf("HTTP flow = (ratio %v, err %v, evals %d); direct flow = (%v, %v, %d)",
			got.Result.RatioCPD, got.Result.Err, got.Result.Evaluations,
			want.RatioCPD, want.Err, want.Evaluations)
	}

	// The result endpoint serves the finished job.
	resp, err := http.Get(ts.URL + "/v1/flows/" + v.ID + "/result")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("result status = %d, want 200", resp.StatusCode)
	}
	// Progress must have reached the final iteration of the quick preset.
	if got.Progress == nil || got.Progress.Iter != got.Progress.Total || got.Progress.Total != 8 {
		t.Errorf("final progress = %+v, want iter == total == 8", got.Progress)
	}
}

// TestDuplicateServedFromCache covers in-process dedup, the persistent
// store, and a daemon restart: the second identical submission and every
// submission to a fresh server over the same store must be answered
// without recomputation.
func TestDuplicateServedFromCache(t *testing.T) {
	path := filepath.Join(t.TempDir(), "results.jsonl")
	st, err := store.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	s, ts := newTestServer(t, Options{Store: st})

	first, _ := postFlow(t, ts, quickReq(1))
	if first.Cached {
		t.Fatal("first submission must not be cached")
	}
	done := waitDone(t, ts, first.ID)
	if done.Status != StatusDone {
		t.Fatalf("first job ended %q: %s", done.Status, done.Error)
	}

	// Identical second POST: answered immediately from the finished job.
	second, code := postFlow(t, ts, quickReq(1))
	if code != http.StatusOK || second.Status != StatusDone || !second.Cached {
		t.Fatalf("duplicate: code=%d status=%q cached=%v, want 200/done/true", code, second.Status, second.Cached)
	}
	if second.ID != first.ID {
		t.Errorf("duplicate attached to job %s, want %s", second.ID, first.ID)
	}
	if st := s.Stats(); st.Executed != 1 || st.Deduped != 1 {
		t.Errorf("stats = %+v, want exactly 1 executed and 1 deduped", st)
	}
	if second.Result.RatioCPD != done.Result.RatioCPD {
		t.Errorf("cached ratio %v != computed %v", second.Result.RatioCPD, done.Result.RatioCPD)
	}

	// Restart: a new server over the same store must serve the result
	// from disk without recomputation.
	ts.Close()
	s.Close()
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	st2, err := store.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	s2, ts2 := newTestServer(t, Options{Store: st2})
	third, code := postFlow(t, ts2, quickReq(1))
	if code != http.StatusOK || third.Status != StatusDone || !third.Cached {
		t.Fatalf("post-restart: code=%d status=%q cached=%v, want 200/done/true", code, third.Status, third.Cached)
	}
	if third.Result == nil || third.Result.RatioCPD != done.Result.RatioCPD {
		t.Errorf("post-restart result %+v != original %v", third.Result, done.Result.RatioCPD)
	}
	if st := s2.Stats(); st.Executed != 0 || st.CacheHits != 1 {
		t.Errorf("post-restart stats = %+v, want 0 executed, 1 cache hit", st)
	}
}

// TestVerilogUpload submits an uploaded netlist and checks both that it
// runs and that a formatting variant of the same source dedups onto the
// same content hash.
func TestVerilogUpload(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	src := als.WriteVerilog(als.Benchmark("Adder16"))

	req := Request{Verilog: src, Metric: "NMED", Budget: 0.0244, Vectors: 256, Iterations: 2}
	v, code := postFlow(t, ts, req)
	if code != http.StatusAccepted {
		t.Fatalf("verilog submit status = %d, want 202", code)
	}
	if !strings.HasPrefix(v.Spec.Circuit, "verilog:") {
		t.Fatalf("verilog job circuit key = %q", v.Spec.Circuit)
	}
	done := waitDone(t, ts, v.ID)
	if done.Status != StatusDone {
		t.Fatalf("verilog job ended %q: %s", done.Status, done.Error)
	}
	if r := done.Result.RatioCPD; !(r > 0 && r <= 1.0001) {
		t.Errorf("Ratio_cpd = %v, want in (0, 1]", r)
	}

	// The same netlist with different formatting must hash identically.
	variant := "// a comment\n" + strings.ReplaceAll(src, "\n", "\n\n")
	req.Verilog = variant
	dup, code := postFlow(t, ts, req)
	if code != http.StatusOK || !dup.Cached || dup.Hash != done.Hash {
		t.Errorf("formatting variant: code=%d cached=%v hash match=%v, want cache hit",
			code, dup.Cached, dup.Hash == done.Hash)
	}
}

// TestCancelMidIteration submits a deliberately long job, cancels it once
// progress shows the optimizer mid-run, and checks it lands in the
// cancelled state with the iteration count frozen short of the total.
func TestCancelMidIteration(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	req := quickReq(1)
	req.Iterations = 5000 // minutes of work if never cancelled

	v, _ := postFlow(t, ts, req)
	deadline := time.Now().Add(60 * time.Second)
	for {
		if time.Now().After(deadline) {
			t.Fatal("job never reported progress")
		}
		jv := getJob(t, ts, v.ID)
		if jv.Progress != nil && jv.Progress.Iter >= 1 {
			break
		}
		time.Sleep(2 * time.Millisecond)
	}
	resp, err := http.Post(ts.URL+"/v1/flows/"+v.ID+"/cancel", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cancel status = %d", resp.StatusCode)
	}

	done := waitDone(t, ts, v.ID)
	if done.Status != StatusCancelled {
		t.Fatalf("job ended %q, want cancelled", done.Status)
	}
	if done.Progress == nil || done.Progress.Iter >= done.Progress.Total {
		t.Errorf("cancelled progress = %+v, want mid-run", done.Progress)
	}
	if !strings.Contains(done.Error, "cancelled") {
		t.Errorf("error = %q, want a cancellation message", done.Error)
	}

	// A cancelled job's result is gone for good (410), not "retry later".
	rr, err := http.Get(ts.URL + "/v1/flows/" + v.ID + "/result")
	if err != nil {
		t.Fatal(err)
	}
	rr.Body.Close()
	if rr.StatusCode != http.StatusGone {
		t.Errorf("cancelled result status = %d, want 410", rr.StatusCode)
	}

	// A cancelled job's hash is not poisoned: resubmitting runs afresh.
	again, code := postFlow(t, ts, quickReq(1))
	if code != http.StatusAccepted || again.Cached {
		t.Fatalf("resubmit after cancel: code=%d cached=%v, want a fresh run", code, again.Cached)
	}
	if fin := waitDone(t, ts, again.ID); fin.Status != StatusDone {
		t.Fatalf("fresh run after cancel ended %q: %s", fin.Status, fin.Error)
	}
}

// TestDrain covers graceful shutdown: running jobs finish, new
// submissions are rejected, and an expired drain deadline cancels
// in-flight jobs instead of hanging.
func TestDrain(t *testing.T) {
	s, ts := newTestServer(t, Options{})
	v, _ := postFlow(t, ts, quickReq(3))

	if err := s.Drain(context.Background()); err != nil {
		t.Fatalf("drain: %v", err)
	}
	if jv, _ := s.Job(v.ID); jv.Status != StatusDone {
		t.Errorf("after drain, job is %q, want done", jv.Status)
	}
	if _, code := postFlow(t, ts, quickReq(4)); code != http.StatusServiceUnavailable {
		t.Errorf("submit while drained: status %d, want 503", code)
	}
}

func TestDrainDeadlineCancelsInFlight(t *testing.T) {
	s, ts := newTestServer(t, Options{})
	req := quickReq(1)
	req.Iterations = 5000
	v, _ := postFlow(t, ts, req)

	// Wait until it is actually running so drain has something in flight.
	deadline := time.Now().Add(60 * time.Second)
	for {
		if jv := getJob(t, ts, v.ID); jv.Status == StatusRunning {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("job never started")
		}
		time.Sleep(2 * time.Millisecond)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if err := s.Drain(ctx); err == nil {
		t.Fatal("drain with expired deadline must report the timeout")
	}
	if jv, _ := s.Job(v.ID); jv.Status != StatusCancelled {
		t.Errorf("after timed-out drain, job is %q, want cancelled", jv.Status)
	}
}

// TestCancelQueuedJob cancels a job before any worker picks it up: with a
// single worker busy on a long job, the second queued job must go
// straight to cancelled and never run.
func TestCancelQueuedJob(t *testing.T) {
	s, ts := newTestServer(t, Options{})
	long := quickReq(1)
	long.Iterations = 5000
	running, _ := postFlow(t, ts, long)
	queued, _ := postFlow(t, ts, quickReq(9))

	if v, ok := s.Cancel(queued.ID); !ok || v.Status != StatusCancelled {
		t.Fatalf("cancel queued: ok=%v status=%q", ok, v.Status)
	}
	s.Cancel(running.ID)
	waitDone(t, ts, running.ID)
	if st := s.Stats(); st.Executed != 0 || st.Cancelled != 2 {
		t.Errorf("stats = %+v, want 0 executed, 2 cancelled", st)
	}
}

func TestValidationErrors(t *testing.T) {
	cases := []struct {
		name string
		req  Request
		want string
	}{
		{"neither circuit nor verilog", Request{Metric: "ER", Budget: 0.05}, "exactly one"},
		{"both circuit and verilog", Request{Circuit: "c880", Verilog: "module m; endmodule", Metric: "ER", Budget: 0.05}, "exactly one"},
		{"unknown circuit", Request{Circuit: "c4242", Metric: "ER", Budget: 0.05}, "unknown circuit"},
		{"missing metric", Request{Circuit: "c880", Budget: 0.05}, "metric"},
		{"bad metric", Request{Circuit: "c880", Metric: "MAE", Budget: 0.05}, "unknown metric"},
		{"zero budget", Request{Circuit: "c880", Metric: "ER"}, "budget"},
		{"budget above one", Request{Circuit: "c880", Metric: "ER", Budget: 1.5}, "budget"},
		{"bad method", Request{Circuit: "c880", Metric: "ER", Budget: 0.05, Method: "annealing"}, "unknown method"},
		{"bad scale", Request{Circuit: "c880", Metric: "ER", Budget: 0.05, Scale: "huge"}, "unknown scale"},
		{"tiny population", Request{Circuit: "c880", Metric: "ER", Budget: 0.05, Population: 2}, "population"},
		{"huge vectors", Request{Circuit: "c880", Metric: "ER", Budget: 0.05, Vectors: 1 << 30}, "vectors"},
		{"bad depth weight", Request{Circuit: "c880", Metric: "ER", Budget: 0.05, DepthWeight: 2}, "depth_weight"},
		{"malformed verilog", Request{Verilog: "module busted", Metric: "ER", Budget: 0.05}, "verilog"},
	}
	for _, tc := range cases {
		_, err := validate(tc.req)
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: err = %v, want mention of %q", tc.name, err, tc.want)
		}
	}
}

// TestNamedBenchmarkHashMatchesExperimentCell pins the dedup contract
// with internal/exp: a default service submission of a benchmark hashes
// identically to the corresponding experiment-orchestrator cell, so the
// daemon's store and an experiment sweep's store are one cache.
func TestNamedBenchmarkHashMatchesExperimentCell(t *testing.T) {
	sp, err := validate(Request{Circuit: "Adder16", Metric: "NMED", Budget: 0.0244})
	if err != nil {
		t.Fatal(err)
	}
	// The TABLE III cell for Adder16/DCGWO at quick scale, seed 1.
	cell := sp.job
	cell.Method = "Ours"
	cell.Metric = "NMED"
	want, err := cell.Hash()
	if err != nil {
		t.Fatal(err)
	}
	if sp.hash != want {
		t.Errorf("service hash %s != experiment cell hash %s", sp.hash, want)
	}
	// Case-insensitive spellings collapse onto the same canonical hash.
	sp2, err := validate(Request{Circuit: "Adder16", Metric: "nmed", Budget: 0.0244, Method: "dcgwo", Scale: "QUICK"})
	if err != nil {
		t.Fatal(err)
	}
	if sp2.hash != sp.hash {
		t.Errorf("spelling variants hash differently: %s vs %s", sp2.hash, sp.hash)
	}
}

func TestHTTPErrorPaths(t *testing.T) {
	_, ts := newTestServer(t, Options{})

	get := func(path string) int {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	if code := get("/v1/flows/f999999"); code != http.StatusNotFound {
		t.Errorf("unknown job status = %d, want 404", code)
	}
	if code := get("/v1/flows/f999999/result"); code != http.StatusNotFound {
		t.Errorf("unknown result status = %d, want 404", code)
	}

	// Malformed JSON and unknown fields are 400s.
	for _, body := range []string{"{not json", `{"circut":"Adder16"}`} {
		resp, err := http.Post(ts.URL+"/v1/flows", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("body %q: status %d, want 400", body, resp.StatusCode)
		}
	}

	// A not-yet-finished job's result is a 409 conflict.
	req := quickReq(1)
	req.Iterations = 5000
	v, _ := postFlow(t, ts, req)
	resp, err := http.Get(ts.URL + "/v1/flows/" + v.ID + "/result")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Errorf("pending result status = %d, want 409", resp.StatusCode)
	}

	// healthz answers with counters.
	var health struct {
		Status string `json:"status"`
		Stats  Stats  `json:"stats"`
	}
	hr, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer hr.Body.Close()
	if err := json.NewDecoder(hr.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	if health.Status != "ok" || health.Stats.Submitted < 1 {
		t.Errorf("healthz = %+v", health)
	}
}

// TestQueueFull fills the queue past its depth with one busy worker and
// expects 503s rather than unbounded buffering — and the rejections must
// not count as accepted submissions.
func TestQueueFull(t *testing.T) {
	s, ts := newTestServer(t, Options{QueueDepth: 2})
	long := quickReq(1)
	long.Iterations = 5000
	postFlow(t, ts, long) // occupies the single worker

	accepted, full := 1, 0
	for seed := int64(10); seed < 16; seed++ {
		if _, code := postFlow(t, ts, quickReq(seed)); code == http.StatusServiceUnavailable {
			full++
		} else {
			accepted++
		}
	}
	if full == 0 {
		t.Error("expected at least one 503 once the queue filled")
	}
	if st := s.Stats(); st.Submitted != accepted {
		t.Errorf("stats.Submitted = %d, want %d (rejections must not count)", st.Submitted, accepted)
	}
}

// TestJobTableEviction bounds the daemon's memory: once the table reaches
// MaxJobs, each new submission evicts the oldest terminal jobs, while the
// persistent store keeps serving their results.
func TestJobTableEviction(t *testing.T) {
	path := filepath.Join(t.TempDir(), "results.jsonl")
	st, err := store.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	s, ts := newTestServer(t, Options{Store: st, MaxJobs: 2})

	req := quickReq(1)
	req.Iterations = 1
	var ids []string
	for seed := int64(1); seed <= 4; seed++ {
		req.Seed = seed
		v, code := postFlow(t, ts, req)
		if code != http.StatusAccepted {
			t.Fatalf("seed %d: code %d", seed, code)
		}
		ids = append(ids, v.ID)
		waitDone(t, ts, v.ID)
	}
	if n := len(s.Jobs()); n > 2 {
		t.Errorf("job table holds %d entries, want <= MaxJobs=2", n)
	}
	// Eviction bounds memory but no longer breaks id polling: the oldest
	// terminal job resolves through its id→hash tombstone, result re-read
	// from the store (per-run detail is gone by design).
	v0, ok := s.Job(ids[0])
	if !ok {
		t.Error("evicted terminal job must still resolve by id (tombstone)")
	} else if v0.Status != StatusDone || v0.Result == nil {
		t.Errorf("tombstoned job view = status %s, result %v; want done with a store-read result", v0.Status, v0.Result)
	}
	// The evicted job's result is still one store lookup away.
	req.Seed = 1
	v, code := postFlow(t, ts, req)
	if code != http.StatusOK || !v.Cached {
		t.Errorf("evicted job resubmission: code=%d cached=%v, want store hit", code, v.Cached)
	}
}

// TestListOrders checks the list endpoint returns jobs in submission
// order with distinct IDs.
func TestListOrders(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	var ids []string
	for seed := int64(1); seed <= 3; seed++ {
		req := quickReq(seed)
		req.Iterations = 1
		v, _ := postFlow(t, ts, req)
		ids = append(ids, v.ID)
	}
	resp, err := http.Get(ts.URL + "/v1/flows")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var list []JobView
	if err := json.NewDecoder(resp.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	if len(list) != 3 {
		t.Fatalf("list has %d jobs, want 3", len(list))
	}
	for i, v := range list {
		if v.ID != ids[i] {
			t.Errorf("list[%d] = %s, want %s", i, v.ID, ids[i])
		}
	}
	if fmt.Sprint(ids) != fmt.Sprint([]string{"f000001", "f000002", "f000003"}) {
		t.Errorf("ids = %v, want sequential f%%06d", ids)
	}
}
