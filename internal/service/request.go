package service

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"strings"

	als "repro"
	"repro/internal/exp"
	"repro/internal/gen"
	"repro/internal/netlist"
	"repro/internal/verilog"
)

// Resource guardrails for untrusted API input. They bound one job's cost,
// not correctness: anything under the caps runs exactly like a CLI flow.
const (
	// MaxVerilogBytes bounds an uploaded netlist source.
	MaxVerilogBytes = 4 << 20
	// MaxPopulation bounds the optimizer population override.
	MaxPopulation = 512
	// MaxIterations bounds the iteration/round override.
	MaxIterations = 10000
	// MaxVectors bounds the Monte-Carlo sample override.
	MaxVectors = 1 << 21
)

// Request is the JSON body of a flow submission. Exactly one of Circuit
// (a TABLE I benchmark name) and Verilog (a structural-Verilog netlist
// over the cell library) must be set. Method, metric and scale names are
// parsed case-insensitively ("dcgwo", "nmed", "quick"); every numeric
// field except Metric/Budget is optional and 0 means "the default".
type Request struct {
	// Circuit names a built-in benchmark (e.g. "Adder16", "c880").
	Circuit string `json:"circuit,omitempty"`
	// Verilog is an uploaded structural-Verilog netlist source.
	Verilog string `json:"verilog,omitempty"`
	// Method picks the optimizer (default DCGWO, the paper's method).
	Method string `json:"method,omitempty"`
	// Metric is the constrained error measure: "ER" or "NMED". Required.
	Metric string `json:"metric"`
	// Budget is the error constraint (e.g. 0.05 for 5% ER). Required.
	Budget float64 `json:"budget"`
	// Scale presets the run budget: "quick" (default) or "paper".
	Scale string `json:"scale,omitempty"`
	// Seed fixes all stochastic choices (default 1).
	Seed int64 `json:"seed,omitempty"`
	// DepthWeight overrides wd (0 = the paper's 0.8).
	DepthWeight float64 `json:"depth_weight,omitempty"`
	// AreaConRatio scales the post-optimization area budget (0 = 1.0).
	AreaConRatio float64 `json:"area_con_ratio,omitempty"`
	// Population, Iterations, Vectors override the scale preset (0 = preset).
	Population int `json:"population,omitempty"`
	Iterations int `json:"iterations,omitempty"`
	Vectors    int `json:"vectors,omitempty"`
}

// flowSpec is a validated, canonicalized request: the exp.Job that gives
// the flow its content-hash identity, the parsed enum values, and (for
// uploads) the parsed netlist. Named-benchmark specs hash identically to
// the corresponding cmd/experiments cells, so the daemon's store and an
// experiment sweep's store are interchangeable caches.
type flowSpec struct {
	job    exp.Job
	hash   string
	method als.Method
	metric als.Metric
	scale  als.Scale
	// parsed is the uploaded netlist (nil for named benchmarks, which are
	// rebuilt from the generator at run time).
	parsed *netlist.Circuit
}

// buildCircuit returns a fresh accurate circuit for one run. Every run
// gets its own copy: flows memoize topology on the circuit they are
// handed, so sharing one instance across concurrent runs would race.
func (sp *flowSpec) buildCircuit() (*netlist.Circuit, error) {
	if sp.parsed != nil {
		return sp.parsed.Clone(), nil
	}
	c, err := als.BenchmarkByName(sp.job.Circuit)
	if err != nil {
		return nil, fmt.Errorf("service: %w", err)
	}
	return c, nil
}

// validate canonicalizes one untrusted request into a flowSpec, rejecting
// anything malformed, unknown, or over the resource caps.
func validate(req Request) (*flowSpec, error) {
	if (req.Circuit == "") == (req.Verilog == "") {
		return nil, fmt.Errorf("service: exactly one of \"circuit\" and \"verilog\" must be set")
	}
	methodName := req.Method
	if methodName == "" {
		methodName = als.MethodDCGWO.String()
	}
	method, err := als.ParseMethod(methodName)
	if err != nil {
		return nil, fmt.Errorf("service: %w (valid: %s)", err, methodNames())
	}
	if req.Metric == "" {
		return nil, fmt.Errorf("service: \"metric\" is required (ER or NMED)")
	}
	metric, err := als.ParseMetric(req.Metric)
	if err != nil {
		return nil, fmt.Errorf("service: %w (valid: ER, NMED)", err)
	}
	if !(req.Budget > 0) || req.Budget > 1 {
		return nil, fmt.Errorf("service: \"budget\" must be in (0, 1], got %v", req.Budget)
	}
	scaleName := req.Scale
	if scaleName == "" {
		scaleName = als.ScaleQuick.String()
	}
	scale, err := als.ParseScale(scaleName)
	if err != nil {
		return nil, fmt.Errorf("service: %w (valid: quick, paper)", err)
	}
	if req.DepthWeight < 0 || req.DepthWeight > 1 {
		return nil, fmt.Errorf("service: \"depth_weight\" must be in [0, 1], got %v", req.DepthWeight)
	}
	if req.AreaConRatio < 0 {
		return nil, fmt.Errorf("service: \"area_con_ratio\" must be >= 0, got %v", req.AreaConRatio)
	}
	if req.Population != 0 && (req.Population < 5 || req.Population > MaxPopulation) {
		return nil, fmt.Errorf("service: \"population\" must be in [5, %d], got %d", MaxPopulation, req.Population)
	}
	if req.Iterations != 0 && (req.Iterations < 1 || req.Iterations > MaxIterations) {
		return nil, fmt.Errorf("service: \"iterations\" must be in [1, %d], got %d", MaxIterations, req.Iterations)
	}
	if req.Vectors != 0 && (req.Vectors < 64 || req.Vectors > MaxVectors) {
		return nil, fmt.Errorf("service: \"vectors\" must be in [64, %d], got %d", MaxVectors, req.Vectors)
	}
	seed := req.Seed
	if seed == 0 {
		seed = 1 // the convention FlowConfig.resolve and exp.Opts share
	}

	sp := &flowSpec{method: method, metric: metric, scale: scale}
	circuitKey := req.Circuit
	if req.Verilog != "" {
		if len(req.Verilog) > MaxVerilogBytes {
			return nil, fmt.Errorf("service: verilog source exceeds %d bytes", MaxVerilogBytes)
		}
		c, err := verilog.Parse(req.Verilog)
		if err != nil {
			return nil, fmt.Errorf("service: %w", err)
		}
		// Hash the canonical re-rendered form, not the raw upload, so
		// formatting/comment variants of one netlist share a cache entry.
		sum := sha256.Sum256([]byte(verilog.Write(c)))
		circuitKey = "verilog:" + hex.EncodeToString(sum[:])
		sp.parsed = c
	} else if _, ok := gen.ByName(req.Circuit); !ok {
		// The cheap existence probe keeps validation off the generator
		// path, but the error unwraps to the same sentinel BenchmarkByName
		// (the runtime path in buildCircuit) would wrap, so the /v2 layer
		// maps it to a status code with errors.Is instead of matching
		// prose — while the /v1 message text stays exactly what it always
		// was (a plain %w would append the sentinel's text).
		return nil, &unknownCircuitError{msg: fmt.Sprintf("service: unknown circuit %q (valid: %s)",
			req.Circuit, strings.Join(gen.Names(), ", "))}
	}

	sp.job = exp.Job{
		Circuit:      circuitKey,
		Method:       method.String(),
		Metric:       metric.String(),
		Budget:       req.Budget,
		Scale:        scale.String(),
		Seed:         seed,
		DepthWeight:  req.DepthWeight,
		AreaConRatio: req.AreaConRatio,
		Population:   req.Population,
		Iterations:   req.Iterations,
		Vectors:      req.Vectors,
	}
	h, err := sp.job.Hash()
	if err != nil {
		return nil, fmt.Errorf("service: %w", err)
	}
	sp.hash = h
	return sp, nil
}

// unknownCircuitError keeps the legacy /v1 message text byte-stable
// while classifying as als.ErrUnknownBenchmark for errors.Is.
type unknownCircuitError struct{ msg string }

func (e *unknownCircuitError) Error() string { return e.msg }
func (e *unknownCircuitError) Unwrap() error { return als.ErrUnknownBenchmark }

// request rebuilds a resubmittable Request from a validated spec — the
// form the write-ahead log persists. For a named benchmark this is just
// RequestFromJob; an uploaded netlist swaps its opaque "verilog:<sha>"
// circuit key for the canonical re-rendered source, so a crash-replayed
// submission re-validates to the identical content hash (and result) the
// client was promised.
func (sp *flowSpec) request() Request {
	req := RequestFromJob(sp.job)
	if sp.parsed != nil {
		req.Circuit = ""
		req.Verilog = verilog.Write(sp.parsed)
	}
	return req
}

// sessionOptions maps a validated spec onto the option list its run
// uses. Zero-valued overrides stay absent, so the session resolves them
// exactly like the legacy FlowConfig did — keeping the spec's content
// hash and its result bit-identical across the API generations.
func (sp *flowSpec) sessionOptions(evalWorkers int) []als.Option {
	opts := []als.Option{
		als.WithMetric(sp.metric),
		als.WithErrorBudget(sp.job.Budget),
		als.WithMethod(sp.method),
		als.WithScale(sp.scale),
		als.WithSeed(sp.job.Seed),
	}
	if sp.job.DepthWeight != 0 {
		opts = append(opts, als.WithDepthWeight(sp.job.DepthWeight))
	}
	if sp.job.AreaConRatio != 0 {
		opts = append(opts, als.WithAreaConRatio(sp.job.AreaConRatio))
	}
	if sp.job.Population != 0 {
		opts = append(opts, als.WithPopulation(sp.job.Population))
	}
	if sp.job.Iterations != 0 {
		opts = append(opts, als.WithIterations(sp.job.Iterations))
	}
	if sp.job.Vectors != 0 {
		opts = append(opts, als.WithVectors(sp.job.Vectors))
	}
	if evalWorkers != 0 {
		opts = append(opts, als.WithEvalWorkers(evalWorkers))
	}
	return opts
}

func methodNames() string {
	var names []string
	for _, m := range als.AllMethods() {
		names = append(names, m.String())
	}
	return strings.Join(names, ", ")
}
