// The submission write-ahead log. A 202 Accepted is a promise; without a
// WAL, a daemon SIGKILLed with jobs queued or running breaks it silently
// — the client polls a restarted process that has never heard of the job.
// The WAL makes the promise durable: every genuinely queued submission
// appends an accept record before the 202 goes out, every terminal
// transition appends a completion record, and a restarting Server replays
// the unresolved accepts through the normal Submit path. Replayed jobs
// whose results were already persisted are answered from the store
// (bit-identical, no recomputation — the content-hash dedup contract);
// only genuinely lost work runs again.
//
// On-disk format (a frozen contract — docs/STORAGE.md): one JSON object
// per line, append-only,
//
//	{"op":"accept","hash":"<content hash>","req":{...Request...}}
//	{"op":"done","hash":"<content hash>","id":"f000123"}   // or "failed"/"cancelled"
//	{"op":"job","id":"f000123","hash":"<content hash>","status":"done"}
//
// Terminal records carry the job's table ID (PR 10; absent in older
// logs, which still parse), and "job" records — written by Compact — are
// the durable job-table snapshot: id → hash/status mappings that let a
// restarted daemon keep answering /v1 and /v2 polls for jobs that
// finished (or were evicted) before the crash, instead of 404ing ids it
// once promised.
//
// The file is corrupt-tolerant the same way the JSONL store is: an
// undecodable line (the torn tail of a SIGKILLed append) is skipped and
// counted, every whole record is kept, and a partial tail is newline-
// terminated before new appends. On startup, once replay has re-queued
// the losses, the Server compacts the log — rewrites it to hold exactly
// the still-live accepts via tmp+rename — so it stays proportional to the
// in-flight set, not to the daemon's lifetime.
package service

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"sync"
)

// walOpAccept marks an accepted submission; terminal records use the
// job's Status string ("done", "failed", "cancelled") as their op, and
// walOpJob records one row of the compacted job-table snapshot.
const (
	walOpAccept = "accept"
	walOpJob    = "job"
)

// walRecord is one WAL line.
type walRecord struct {
	Op   string `json:"op"`
	Hash string `json:"hash"`
	// ID is the job-table id, present on terminal and job records so the
	// id → hash mapping survives a restart.
	ID string `json:"id,omitempty"`
	// Status is present on job (snapshot) records only.
	Status string `json:"status,omitempty"`
	// Req is present on accept records only: the validated submission,
	// canonicalized so replay re-validates to the identical content hash.
	Req *Request `json:"req,omitempty"`
}

// WALPending is one accepted submission with no terminal record — work a
// crashed daemon still owes its clients.
type WALPending struct {
	Hash string
	Req  Request
}

// WALJob is one durable job-table row: a terminal job id and where its
// result lives. A restarted Server loads these as tombstones so old ids
// keep resolving.
type WALJob struct {
	ID     string
	Hash   string
	Status string
}

// WAL is the submission write-ahead log. Open it with OpenWAL, hand it to
// service.New via Options.WAL (the Server replays and compacts it), and
// Close it after Drain/Close returns. Appends are serialized and synced
// to the file before they return.
type WAL struct {
	mu      sync.Mutex
	path    string
	f       *os.File
	pending []WALPending
	jobs    []WALJob
	corrupt int
}

// OpenWAL loads (or creates) the WAL at path and scans it: accepts
// without a matching terminal record become Pending, in first-accept
// order. Undecodable lines are skipped and counted in Corrupt.
func OpenWAL(path string) (*WAL, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("service: open wal: %w", err)
	}
	w := &WAL{path: path, f: f}
	open := map[string]*WALPending{} // hash → live accept
	jobs := map[string]WALJob{}      // id → terminal row (last wins)
	var order, jobOrder []string
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<24)
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var r walRecord
		if err := json.Unmarshal(line, &r); err != nil || r.Hash == "" || r.Op == "" {
			w.corrupt++
			continue
		}
		switch r.Op {
		case walOpAccept:
			if r.Req == nil {
				w.corrupt++
				continue
			}
			if _, seen := open[r.Hash]; !seen {
				order = append(order, r.Hash)
			}
			open[r.Hash] = &WALPending{Hash: r.Hash, Req: *r.Req}
		case string(StatusDone), string(StatusFailed), string(StatusCancelled):
			delete(open, r.Hash)
			if r.ID != "" {
				if _, seen := jobs[r.ID]; !seen {
					jobOrder = append(jobOrder, r.ID)
				}
				jobs[r.ID] = WALJob{ID: r.ID, Hash: r.Hash, Status: r.Op}
			}
		case walOpJob:
			if r.ID == "" || r.Status == "" {
				w.corrupt++
				continue
			}
			if _, seen := jobs[r.ID]; !seen {
				jobOrder = append(jobOrder, r.ID)
			}
			jobs[r.ID] = WALJob{ID: r.ID, Hash: r.Hash, Status: r.Status}
		default:
			w.corrupt++
		}
	}
	if err := sc.Err(); err != nil {
		f.Close()
		return nil, fmt.Errorf("service: scan wal %s: %w", path, err)
	}
	for _, h := range order {
		if p, ok := open[h]; ok {
			w.pending = append(w.pending, *p)
		}
	}
	for _, id := range jobOrder {
		w.jobs = append(w.jobs, jobs[id])
	}
	// Newline-terminate a torn tail so the next append starts a fresh line
	// (same heal the JSONL store applies).
	if end, err := f.Seek(0, 2); err == nil && end > 0 {
		buf := make([]byte, 1)
		if _, err := f.ReadAt(buf, end-1); err == nil && buf[0] != '\n' {
			if _, err := f.Write([]byte("\n")); err != nil {
				f.Close()
				return nil, fmt.Errorf("service: terminate wal tail: %w", err)
			}
		}
	}
	return w, nil
}

// Pending returns the unresolved accepts found at open, in first-accept
// order. The slice is a snapshot of the open scan; later appends don't
// change it.
func (w *WAL) Pending() []WALPending {
	w.mu.Lock()
	defer w.mu.Unlock()
	return append([]WALPending(nil), w.pending...)
}

// Jobs returns the durable job-table rows found at open (snapshot
// records plus terminal records carrying ids), oldest first.
func (w *WAL) Jobs() []WALJob {
	w.mu.Lock()
	defer w.mu.Unlock()
	return append([]WALJob(nil), w.jobs...)
}

// Corrupt reports how many undecodable lines the open scan skipped.
func (w *WAL) Corrupt() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.corrupt
}

// Path returns the log file's path.
func (w *WAL) Path() string { return w.path }

// Accept records an accepted submission. It must return before the
// client's 202 does — that ordering is the durability guarantee.
func (w *WAL) Accept(hash string, req Request) error {
	return w.append(walRecord{Op: walOpAccept, Hash: hash, Req: &req})
}

// Resolve records a terminal transition (op is the Status string). The
// job id, when known, makes the id → hash mapping durable; "" is fine
// (replay-rejection records have no table entry).
func (w *WAL) Resolve(op, hash, id string) error {
	return w.append(walRecord{Op: op, Hash: hash, ID: id})
}

func (w *WAL) append(r walRecord) error {
	line, err := json.Marshal(r)
	if err != nil {
		return fmt.Errorf("service: wal append: %w", err)
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.f == nil {
		return fmt.Errorf("service: wal %s is closed", w.path)
	}
	if _, err := w.f.Write(append(line, '\n')); err != nil {
		return fmt.Errorf("service: wal append: %w", err)
	}
	// Write-through to the disk, not just the page cache: the record must
	// survive power loss, not only a killed process, before the 202 goes
	// out. Submission rate is human-scale; the fsync cost is noise.
	if err := w.f.Sync(); err != nil {
		return fmt.Errorf("service: wal sync: %w", err)
	}
	return nil
}

// Compact rewrites the log to hold exactly live (one accept record each)
// plus the durable job-table snapshot (one job record per remembered
// terminal id), via tmp file + rename, and reopens it for appending. The
// Server calls it once per startup, after replay; a Resolve racing the
// rewrite is lost with the old file, which only means the next restart
// replays a store-answered submission — harmless, by the dedup contract.
func (w *WAL) Compact(live []WALPending, jobs []WALJob) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.f == nil {
		return fmt.Errorf("service: wal %s is closed", w.path)
	}
	tmp := w.path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("service: compact wal: %w", err)
	}
	bw := bufio.NewWriter(f)
	enc := json.NewEncoder(bw)
	for i := range jobs {
		if err := enc.Encode(walRecord{Op: walOpJob, ID: jobs[i].ID, Hash: jobs[i].Hash, Status: jobs[i].Status}); err != nil {
			f.Close()
			os.Remove(tmp) //nolint:errcheck // best-effort cleanup
			return fmt.Errorf("service: compact wal: %w", err)
		}
	}
	for i := range live {
		if err := enc.Encode(walRecord{Op: walOpAccept, Hash: live[i].Hash, Req: &live[i].Req}); err != nil {
			f.Close()
			os.Remove(tmp) //nolint:errcheck // best-effort cleanup
			return fmt.Errorf("service: compact wal: %w", err)
		}
	}
	if err := bw.Flush(); err != nil {
		f.Close()
		os.Remove(tmp) //nolint:errcheck // best-effort cleanup
		return fmt.Errorf("service: compact wal: %w", err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp) //nolint:errcheck // best-effort cleanup
		return fmt.Errorf("service: compact wal: %w", err)
	}
	if err := os.Rename(tmp, w.path); err != nil {
		os.Remove(tmp) //nolint:errcheck // best-effort cleanup
		return fmt.Errorf("service: compact wal: %w", err)
	}
	nf, err := os.OpenFile(w.path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("service: reopen compacted wal: %w", err)
	}
	w.f.Close() //nolint:errcheck // the old handle's file was renamed away
	w.f = nf
	return nil
}

// Close closes the log file; further appends fail.
func (w *WAL) Close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.f == nil {
		return nil
	}
	err := w.f.Close()
	w.f = nil
	return err
}
