package service

import (
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"repro/internal/store"
	"repro/internal/telemetry"
)

// scrape fetches and parses the server's /metrics exposition.
func scrape(t *testing.T, url string) map[string]float64 {
	t.Helper()
	resp, err := http.Get(url + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics: HTTP %d", resp.StatusCode)
	}
	m, err := telemetry.Parse(resp.Body)
	if err != nil {
		t.Fatalf("parse /metrics: %v", err)
	}
	return m
}

// TestMetricsEndpoint walks one job through every serving path — executed
// uncached, answered from the store, deduped against a finished job — and
// asserts the whole pipeline's counters via a real HTTP scrape.
func TestMetricsEndpoint(t *testing.T) {
	st, err := store.Open(filepath.Join(t.TempDir(), "results.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	_, ts := newTestServer(t, Options{Workers: 1, Store: st})

	v, code := postFlow(t, ts, quickReq(1))
	if code >= 300 {
		t.Fatalf("submit: HTTP %d", code)
	}
	waitDone(t, ts, v.ID)
	// Identical resubmission: the job is still in the table, so this is a
	// dedup hit (not a store hit), answered synchronously.
	if _, code := postFlow(t, ts, quickReq(1)); code != http.StatusOK {
		t.Fatalf("dedup resubmit: HTTP %d, want 200", code)
	}

	m := scrape(t, ts.URL)
	for series, want := range map[string]float64{
		"als_jobs_submitted_total":                                   2,
		"als_jobs_executed_total":                                    1,
		"als_jobs_deduped_total":                                     1,
		`als_jobs_completed_total{status="done"}`:                    1,
		"als_jobs_running":                                           0,
		"als_queue_depth":                                            0,
		"als_job_duration_seconds_count":                             1,
		"als_store_puts_total":                                       2, // result + front
		"als_sse_subscribers":                                        0,
		`als_http_requests_total{route="POST /v1/flows",code="202"}`: 1,
		`als_http_requests_total{route="POST /v1/flows",code="200"}`: 1,
	} {
		if m[series] != want {
			t.Errorf("%s = %v, want %v", series, m[series], want)
		}
	}
	for _, positive := range []string{
		"als_evaluations_total",
		"als_evalcache_lookups_total",
		"als_http_request_duration_seconds_count",
	} {
		if m[positive] <= 0 {
			t.Errorf("%s = %v, want > 0", positive, m[positive])
		}
	}

	// Every response carries a request id for log correlation.
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.Header.Get("X-Request-Id") == "" {
		t.Error("response has no X-Request-Id header")
	}
}

// TestMetricNamesFrozen pins the registered metric names (and their
// registration order) against the operational contract file. Renaming or
// dropping a metric breaks dashboards exactly like renaming a JSON field
// breaks clients; the contract file makes that a deliberate diff, not an
// accident.
func TestMetricNamesFrozen(t *testing.T) {
	s := New(Options{Workers: 1})
	defer s.Close()

	raw, err := os.ReadFile(filepath.Join("testdata", "metrics_v1.txt"))
	if err != nil {
		t.Fatal(err)
	}
	// The contract file also freezes the coordinator's names (appended,
	// never reordered); those register in internal/coord, not here.
	var want []string
	for _, name := range strings.Fields(string(raw)) {
		if strings.HasPrefix(name, "als_cluster_") || strings.HasPrefix(name, "als_webhook_") {
			continue
		}
		want = append(want, name)
	}
	got := s.Metrics().MetricNames()
	if len(got) != len(want) {
		t.Fatalf("registry has %d metrics, contract lists %d:\ngot  %v\nwant %v",
			len(got), len(want), got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("metric %d = %q, contract says %q", i, got[i], want[i])
		}
	}
}

// TestMetricsMonotonicUnderConcurrentJobs submits distinct jobs from many
// goroutines while a scraper reads /metrics concurrently, asserting —
// under -race — that the submission counter never moves backwards and the
// final counts are exact.
func TestMetricsMonotonicUnderConcurrentJobs(t *testing.T) {
	const jobs = 6
	_, ts := newTestServer(t, Options{Workers: 2, QueueDepth: jobs})

	stop := make(chan struct{})
	var scraper sync.WaitGroup
	scraper.Add(1)
	go func() {
		defer scraper.Done()
		var last float64
		for {
			select {
			case <-stop:
				return
			default:
			}
			m := scrape(t, ts.URL)
			if v := m["als_jobs_submitted_total"]; v < last {
				t.Errorf("als_jobs_submitted_total went backwards: %v after %v", v, last)
				return
			} else {
				last = v
			}
		}
	}()

	var wg sync.WaitGroup
	ids := make([]string, jobs)
	for i := 0; i < jobs; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			v, code := postFlow(t, ts, quickReq(int64(100+i)))
			if code >= 300 {
				t.Errorf("submit %d: HTTP %d", i, code)
				return
			}
			ids[i] = v.ID
		}(i)
	}
	wg.Wait()
	for i, id := range ids {
		if id == "" {
			continue
		}
		if v := waitDone(t, ts, id); v.Status != StatusDone {
			t.Errorf("job %d finished %s: %s", i, v.Status, v.Error)
		}
	}
	close(stop)
	scraper.Wait()

	m := scrape(t, ts.URL)
	if got := m["als_jobs_submitted_total"]; got != jobs {
		t.Errorf("als_jobs_submitted_total = %v, want %d", got, jobs)
	}
	if got := m["als_jobs_executed_total"]; got != jobs {
		t.Errorf("als_jobs_executed_total = %v, want %d", got, jobs)
	}
	if got := m[`als_jobs_completed_total{status="done"}`]; got != jobs {
		t.Errorf(`als_jobs_completed_total{status="done"} = %v, want %d`, got, jobs)
	}
	if got := m["als_jobs_running"]; got != 0 {
		t.Errorf("als_jobs_running = %v after all jobs finished", got)
	}
	if got := m["als_job_duration_seconds_count"]; got != jobs {
		t.Errorf("als_job_duration_seconds_count = %v, want %d", got, jobs)
	}
}
