// The shared-store HTTP surface: every alsd exposes its persistent result
// store at /store, speaking the protocol internal/store's remote backend
// consumes —
//
//	GET /store/{key}   raw JSON payload (200) or 404
//	PUT /store/{key}   store a payload → 204
//	GET /store/        full dump, one JSONL record per line (exactly the
//	                   default store-file format, so piping it to a file
//	                   yields a valid local store)
//
// so a fleet can point satellite workers at one hub daemon
// (-store-backend remote -store-remote http://hub) and share a single
// dedup cache: any cell any worker ever computed is a store hit for every
// other worker. Without a configured store the routes answer 404.
//
// Keys are content hashes plus derived segments ("<hash>/front"), so the
// routes use a trailing-wildcard pattern and validate the key shape
// themselves.
package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
)

// maxStoreKeyLen bounds a /store key. Real keys are a 64-hex-rune hash
// plus at most one short derived segment; 256 leaves headroom without
// letting a client persist arbitrary blobs under kilobyte key names.
const maxStoreKeyLen = 256

// validStoreKey accepts hash-shaped keys: non-empty segments of safe
// characters joined by single '/'. It is a write guard — the store file
// format embeds keys verbatim, so this is where the daemon refuses to
// persist something another tool could choke on.
func validStoreKey(key string) bool {
	if key == "" || len(key) > maxStoreKeyLen {
		return false
	}
	prevSlash := true // leading '/' (empty first segment) is invalid
	for i := 0; i < len(key); i++ {
		c := key[i]
		switch {
		case c == '/':
			if prevSlash {
				return false
			}
			prevSlash = true
		case '0' <= c && c <= '9', 'a' <= c && c <= 'z', 'A' <= c && c <= 'Z',
			c == '-', c == '_', c == '.', c == ':':
			prevSlash = false
		default:
			return false
		}
	}
	return !prevSlash // trailing '/' is invalid
}

// handleStoreGet serves one payload, or — for the empty key — the full
// JSONL dump.
func (s *Server) handleStoreGet(w http.ResponseWriter, r *http.Request) {
	if s.store == nil {
		writeError(w, http.StatusNotFound, errors.New("service: no store configured"))
		return
	}
	key := r.PathValue("key")
	if key == "" {
		w.Header().Set("Content-Type", "application/jsonl")
		if err := s.store.Export(w); err != nil {
			// The response is already streaming; all we can do is log.
			s.log.Warn("store export aborted", "error", err)
		}
		return
	}
	payload, ok := s.store.Get(key)
	if !ok {
		writeError(w, http.StatusNotFound, errors.New("service: no such hash"))
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(payload) //nolint:errcheck // the response is already committed
}

func (s *Server) handleStorePut(w http.ResponseWriter, r *http.Request) {
	if s.store == nil {
		writeError(w, http.StatusNotFound, errors.New("service: no store configured"))
		return
	}
	key := r.PathValue("key")
	if !validStoreKey(key) {
		writeError(w, http.StatusBadRequest, errors.New("service: invalid store key"))
		return
	}
	payload, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("service: read payload: %w", err))
		return
	}
	if !json.Valid(payload) {
		writeError(w, http.StatusBadRequest, errors.New("service: store payload must be valid JSON"))
		return
	}
	if err := s.store.PutRaw(key, payload); err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}
