package service

import (
	"io"
	"net/http"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/store"
	"repro/internal/trace"
)

// doGet issues one GET with optional headers and returns the response
// (body drained and closed) for header inspection.
func doGet(t *testing.T, url string, hdr map[string]string) *http.Response {
	t.Helper()
	req, err := http.NewRequest(http.MethodGet, url, nil)
	if err != nil {
		t.Fatal(err)
	}
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body) //nolint:errcheck
	resp.Body.Close()
	return resp
}

// The middleware must continue a remote parent: an incoming valid
// traceparent keeps its trace ID (which also becomes the request ID) and
// the server's span records the remote span as its parent — the stitch a
// fleet-wide trace depends on.
func TestMiddlewareContinuesRemoteParent(t *testing.T) {
	tr := trace.New(trace.Options{Service: "test"})
	_, ts := newTestServer(t, Options{Tracer: tr})

	const (
		remoteTrace = "0af7651916cd43dd8448eb211c80319c"
		remoteSpan  = "b7ad6b7169203331"
	)
	resp := doGet(t, ts.URL+"/healthz", map[string]string{
		"traceparent":  "00-" + remoteTrace + "-" + remoteSpan + "-01",
		"X-Request-Id": "should-be-ignored-when-tracing",
	})
	if id := resp.Header.Get("X-Request-Id"); id != remoteTrace {
		t.Fatalf("request ID = %q, want continued trace ID %q", id, remoteTrace)
	}
	found := false
	for _, r := range tr.Snapshot() {
		if r.TraceID == remoteTrace && r.Parent == remoteSpan && r.RemoteParent &&
			strings.HasPrefix(r.Name, "http ") {
			found = true
		}
	}
	if !found {
		t.Fatalf("no remote-parent http span collected; snapshot: %+v", tr.Snapshot())
	}
}

// A malformed traceparent must not be continued: the request gets a fresh
// root trace.
func TestMiddlewareRootsOnBadTraceparent(t *testing.T) {
	tr := trace.New(trace.Options{Service: "test"})
	_, ts := newTestServer(t, Options{Tracer: tr})

	resp := doGet(t, ts.URL+"/healthz", map[string]string{
		"traceparent": "00-ffffffffffffffffffffffffffffffff-0000000000000000-01", // all-zero span ID
	})
	id := resp.Header.Get("X-Request-Id")
	if len(id) != 32 || id == "ffffffffffffffffffffffffffffffff" {
		t.Fatalf("bad traceparent should mint a fresh root trace ID, got %q", id)
	}
	for _, r := range tr.Snapshot() {
		if r.RemoteParent {
			t.Fatalf("span continued a malformed parent: %+v", r)
		}
	}
}

// With tracing off, a sane forwarded X-Request-Id is honored (multi-hop
// log correlation) and a hostile one is replaced.
func TestRequestIDForwardingWithoutTracing(t *testing.T) {
	_, ts := newTestServer(t, Options{})

	resp := doGet(t, ts.URL+"/healthz", map[string]string{"X-Request-Id": "sweep-0123abcd"})
	if id := resp.Header.Get("X-Request-Id"); id != "sweep-0123abcd" {
		t.Fatalf("forwarded request ID not honored: got %q", id)
	}
	resp = doGet(t, ts.URL+"/healthz", map[string]string{"X-Request-Id": "evil id{};$(rm)"})
	if id := resp.Header.Get("X-Request-Id"); !strings.HasPrefix(id, "r") || len(id) != 7 {
		t.Fatalf("hostile request ID should be replaced with a minted one, got %q", id)
	}
}

// One executed submission must leave the full span pipeline behind:
// root request span (outcome=queued), queue.wait, job.run with terminal
// status, store.put, and at least one als.generation span — and the
// queue-wait histogram must have observed it.
func TestSubmitTracePipeline(t *testing.T) {
	st, err := store.Open(filepath.Join(t.TempDir(), "trace.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	tr := trace.New(trace.Options{Service: "test"})
	_, ts := newTestServer(t, Options{Tracer: tr, Store: st})

	v, code := postFlow(t, ts, quickReq(11))
	if code != http.StatusAccepted && code != http.StatusOK {
		t.Fatalf("submit: HTTP %d", code)
	}
	if got := waitDone(t, ts, v.ID); got.Status != StatusDone {
		t.Fatalf("job finished %s", got.Status)
	}

	// Find the submit's trace: the root span whose outcome is "queued".
	var traceID string
	for _, r := range tr.Snapshot() {
		if r.Root() && r.Attrs["outcome"] == "queued" {
			traceID = r.TraceID
		}
	}
	if traceID == "" {
		t.Fatalf("no queued root span; snapshot: %+v", tr.Snapshot())
	}
	byName := map[string][]trace.SpanRecord{}
	for _, r := range tr.Snapshot() {
		if r.TraceID == traceID {
			byName[r.Name] = append(byName[r.Name], r)
		}
	}
	if q := byName["queue.wait"]; len(q) != 1 || q[0].Attrs["outcome"] != "started" {
		t.Errorf("queue.wait span wrong: %+v", q)
	}
	if jr := byName["job.run"]; len(jr) != 1 || jr[0].Attrs["status"] != string(StatusDone) {
		t.Errorf("job.run span wrong: %+v", jr)
	}
	if len(byName["store.put"]) != 1 {
		t.Errorf("store.put span missing: %v", byName)
	}
	if len(byName["als.generation"]) == 0 {
		t.Errorf("no als.generation spans in trace; names: %v", names(byName))
	}
	if len(byName["als.post_optimize"]) != 1 {
		t.Errorf("als.post_optimize span missing; names: %v", names(byName))
	}

	// The queue-wait histogram observed exactly this one executed job.
	body := getBody(t, ts.URL+"/metrics")
	if !strings.Contains(body, "als_queue_wait_seconds_bucket{le=\"+Inf\"} 1") {
		t.Errorf("queue-wait histogram did not observe the job:\n%s", grepLines(body, "als_queue_wait"))
	}

	// The trace must be served back by /debug/traces, filtered by ID.
	page := getBody(t, ts.URL+"/debug/traces?trace="+traceID)
	if !strings.Contains(page, traceID) || !strings.Contains(page, "job.run") {
		t.Errorf("/debug/traces?trace= did not return the trace:\n%.400s", page)
	}
}

func names(m map[string][]trace.SpanRecord) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out
}

func getBody(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

func grepLines(s, sub string) string {
	var out []string
	for _, l := range strings.Split(s, "\n") {
		if strings.Contains(l, sub) {
			out = append(out, l)
		}
	}
	return strings.Join(out, "\n")
}
