// Worker-facing job API: the endpoints a distributed-sweep coordinator
// (internal/dispatch) drives. Where the flow API (/v1/flows) speaks the
// client-friendly Request schema and addresses jobs by server-assigned ID,
// the worker API speaks canonical exp.Job specs and addresses results by
// content hash — the same identity cmd/experiments and the store use — so
// any running alsd is a valid sweep worker with no extra configuration:
//
//	POST /v1/jobs        batch-submit job specs → BatchResponse
//	GET  /v1/jobs/{hash} status/result by content hash → JobView
//	GET  /healthz        readiness (shared with the flow API)

package service

import (
	"repro/internal/exp"
)

// MaxBatchJobs bounds one batch submission; a coordinator with more cells
// submits several batches (and must anyway, to respect the queue depth).
const MaxBatchJobs = 256

// BatchRequest is the body of POST /v1/jobs.
type BatchRequest struct {
	Jobs []exp.Job `json:"jobs"`
}

// Machine-readable BatchResponse.Reason values for a 503. A coordinator
// must branch on these, not on the human-readable Error text: queue-full
// means "the worker is alive, resubmit after a backoff", draining means
// "this worker will never accept again, fail its cells over now".
const (
	ReasonQueueFull = "queue_full"
	ReasonDraining  = "draining"
)

// BatchResponse answers a batch submission. Jobs holds the accepted
// prefix of the request in order; when the queue filled (or the server
// began draining) mid-batch the response is 503, Reason carries the
// machine-readable cause (Error the human-readable one), and Jobs still
// lists what was accepted before the cut — submissions are idempotent by
// content hash (identical specs dedup), so a coordinator may simply
// resubmit the remainder after a backoff.
type BatchResponse struct {
	Jobs   []JobView `json:"jobs"`
	Reason string    `json:"reason,omitempty"`
	Error  string    `json:"error,omitempty"`
}

// RequestFromJob maps a canonical job spec onto the submission request
// schema. validate() reconstructs the identical exp.Job from it (method,
// metric and scale names round-trip through their parsers, every numeric
// field is copied verbatim), so a spec submitted this way carries the same
// content hash the coordinator computed locally — the server's returned
// JobView.Hash is the coordinator's lookup key.
func RequestFromJob(j exp.Job) Request {
	return Request{
		Circuit:      j.Circuit,
		Method:       j.Method,
		Metric:       j.Metric,
		Budget:       j.Budget,
		Scale:        j.Scale,
		Seed:         j.Seed,
		DepthWeight:  j.DepthWeight,
		AreaConRatio: j.AreaConRatio,
		Population:   j.Population,
		Iterations:   j.Iterations,
		Vectors:      j.Vectors,
	}
}

// ValidateJobSpec reports whether a canonical job spec would be accepted
// by the worker job API (known circuit, parsable names, budgets and
// overrides within the resource caps). The dispatch coordinator runs it
// over the whole job set before anything goes on the wire, so a spec the
// fleet would 400 fails the run up front with a clear message instead of
// mid-sweep.
func ValidateJobSpec(j exp.Job) error {
	_, err := validate(RequestFromJob(j))
	return err
}

// CanonicalJobSpec validates a job spec and returns its canonical form
// plus the content hash every worker in the fleet will compute for it.
// Method, metric and scale names accept the same aliases the flow API
// does ("dcgwo", "sasimi", ...), but the HASH is always of the canonical
// spelling — an intake layer that indexes cells by hash MUST canonicalize
// first, or an alias-spelled submission gets filed under a hash no worker
// ever reports back.
func CanonicalJobSpec(j exp.Job) (exp.Job, string, error) {
	sp, err := validate(RequestFromJob(j))
	if err != nil {
		return exp.Job{}, "", err
	}
	return sp.job, sp.hash, nil
}

// JobByHash resolves a job by content hash: first against the live job
// table (latest submission wins, any status), then against the persistent
// store — so a worker restarted between submit and fetch, or one whose
// table evicted an old terminal job, still serves every result it ever
// persisted. A store-served view carries only Hash, Status done, Cached
// and the Result (the original spec was not retained).
func (s *Server) JobByHash(hash string) (JobView, bool) {
	s.mu.Lock()
	if id, ok := s.byHash[hash]; ok {
		v := s.viewLocked(s.jobs[id])
		s.mu.Unlock()
		return v, true
	}
	s.mu.Unlock()
	if s.store != nil {
		var r exp.JobResult
		if ok, err := s.store.Decode(hash, &r); err == nil && ok {
			return JobView{
				Hash:   hash,
				Status: StatusDone,
				Cached: true,
				Result: &r,
			}, true
		}
	}
	return JobView{}, false
}
