package service

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/store"
)

// TestStoreHTTPSurface pins the /store wire protocol a remote-backend
// worker consumes: PUT → 204, GET → the exact payload, 404 for absent
// hashes, 400 for invalid keys or non-JSON payloads, and the full dump as
// store-file-compatible JSONL.
func TestStoreHTTPSurface(t *testing.T) {
	st, err := store.Open(filepath.Join(t.TempDir(), "results.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	_, ts := newTestServer(t, Options{Store: st})

	put := func(key, body string) int {
		req, err := http.NewRequest(http.MethodPut, ts.URL+"/store/"+key, strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body) //nolint:errcheck
		resp.Body.Close()
		return resp.StatusCode
	}

	if code := put("aaaa1111", `{"n":1}`); code != http.StatusNoContent {
		t.Fatalf("PUT = %d, want 204", code)
	}
	if code := put("aaaa1111/front", `[{"x":2}]`); code != http.StatusNoContent {
		t.Fatalf("PUT derived key = %d, want 204", code)
	}
	if code := put("aaaa1111", `{not json`); code != http.StatusBadRequest {
		t.Fatalf("PUT invalid JSON = %d, want 400", code)
	}
	// (A key with doubled slashes never reaches the handler — ServeMux
	// path-cleans it — so the charset rule is what the handler enforces.)
	if code := put("bad*key", `{}`); code != http.StatusBadRequest {
		t.Fatalf("PUT invalid key = %d, want 400", code)
	}
	if code := put(strings.Repeat("k", 300), `{}`); code != http.StatusBadRequest {
		t.Fatalf("PUT oversized key = %d, want 400", code)
	}

	resp, err := http.Get(ts.URL + "/store/aaaa1111")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !bytes.Equal(body, []byte(`{"n":1}`)) {
		t.Fatalf("GET = (%d, %s), want (200, {\"n\":1})", resp.StatusCode, body)
	}
	resp, err = http.Get(ts.URL + "/store/absent")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body) //nolint:errcheck
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("GET absent = %d, want 404", resp.StatusCode)
	}

	// The dump is JSONL in the store-file record shape.
	resp, err = http.Get(ts.URL + "/store/")
	if err != nil {
		t.Fatal(err)
	}
	dump, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	lines := bytes.Split(bytes.TrimSpace(dump), []byte("\n"))
	if len(lines) != 2 {
		t.Fatalf("dump has %d lines, want 2:\n%s", len(lines), dump)
	}
	var rec struct {
		Hash    string          `json:"hash"`
		Payload json.RawMessage `json:"payload"`
	}
	if err := json.Unmarshal(lines[0], &rec); err != nil || rec.Hash != "aaaa1111" {
		t.Fatalf("dump line 0 = %s (err %v), want hash aaaa1111", lines[0], err)
	}
}

// TestStoreHTTPWithoutStore: a storeless daemon answers 404 on the whole
// surface instead of panicking.
func TestStoreHTTPWithoutStore(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	for _, path := range []string{"/store/", "/store/abcd"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body) //nolint:errcheck
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Fatalf("GET %s without store = %d, want 404", path, resp.StatusCode)
		}
	}
}

// TestRemoteStoreSharedCache is the fleet scenario end to end: a
// satellite daemon whose store is the hub daemon's /store surface
// persists its results into the hub, and answers a repeat submission from
// the shared cache — as does the hub itself, which never computed the
// job.
func TestRemoteStoreSharedCache(t *testing.T) {
	hubStore, err := store.Open(filepath.Join(t.TempDir(), "hub.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	defer hubStore.Close()
	hub := New(Options{Store: hubStore, Logf: t.Logf})
	defer hub.Close()
	hubTS := httptest.NewServer(hub.Handler())
	defer hubTS.Close()

	satStore, err := store.OpenRemote(hubTS.URL, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer satStore.Close()
	sat := New(Options{Store: satStore, Logf: t.Logf})
	defer sat.Close()

	v, err := sat.Submit(context.Background(), quickReq(71))
	if err != nil {
		t.Fatal(err)
	}
	done := waitServerDone(t, sat, v.ID)
	if done.Status != StatusDone {
		t.Fatalf("satellite job ended %q (error %q)", done.Status, done.Error)
	}

	// The result must live in the hub's store file, not on the satellite.
	if got := hubStore.Len(); got == 0 {
		t.Fatal("hub store is empty after a satellite job")
	}

	// The hub itself — which never ran the job — serves it from cache.
	hv, err := hub.Submit(context.Background(), quickReq(71))
	if err != nil {
		t.Fatal(err)
	}
	if hv.Status != StatusDone || !hv.Cached {
		t.Fatalf("hub submission = (%q, cached=%v), want cached done", hv.Status, hv.Cached)
	}
	if hv.Result.RatioCPD != done.Result.RatioCPD || hv.Result.Err != done.Result.Err {
		t.Fatalf("hub result %+v differs from satellite's %+v", hv.Result, done.Result)
	}
	if n := hub.Stats().Executed; n != 0 {
		t.Fatalf("hub executed %d jobs, want 0", n)
	}

	// And a second satellite sharing the hub gets the same cache hit.
	sat2Store, err := store.OpenRemote(hubTS.URL, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer sat2Store.Close()
	sat2 := New(Options{Store: sat2Store, Logf: t.Logf})
	defer sat2.Close()
	v2, err := sat2.Submit(context.Background(), quickReq(71))
	if err != nil {
		t.Fatal(err)
	}
	if v2.Status != StatusDone || !v2.Cached {
		t.Fatalf("second satellite = (%q, cached=%v), want cached done", v2.Status, v2.Cached)
	}
}
