// Package service runs the ALS flow as a long-lived, cancellable service:
// clients submit flow requests (a named benchmark or an uploaded
// structural-Verilog netlist) over HTTP/JSON, a bounded worker pool runs
// them with per-job status and live progress, and identical requests are
// deduplicated by the same canonical content hash the experiment
// orchestrator uses (internal/exp), with finished results persisted
// through internal/store — so a restarted daemon answers repeats from
// cache without recomputation.
//
// The package splits into focused files:
//
//   - request.go: untrusted-input validation and canonical job identity
//     (flowSpec wraps an exp.Job, so a named-benchmark submission shares
//     its cache entry with the equivalent cmd/experiments cell);
//   - service.go (this file): the job table, queue, worker pool,
//     cancellation and graceful drain;
//   - http.go: the HTTP/JSON API (submit/list/status/result/cancel);
//   - v2.go: the /v2 surface — SSE event streaming, solution fronts,
//     pagination, structured error codes;
//   - worker.go: the worker-facing job API (batch submit by canonical
//     exp.Job spec, result fetch by content hash) that lets any running
//     daemon serve as a distributed-sweep worker for internal/dispatch;
//   - metrics.go: the telemetry instrument set (GET /metrics), request
//     instrumentation middleware and the frozen metric-name contract.
//
// Observability: every Server owns a telemetry.Registry (or shares one
// via Options.Metrics) exposed at GET /metrics, logs through log/slog
// (Options.Logger) with job_id/request_id correlation, and stamps every
// HTTP response with an X-Request-Id. docs/OPERATIONS.md is the
// operator-facing reference.
package service

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	als "repro"
	"repro/internal/cell"
	"repro/internal/exp"
	"repro/internal/store"
	"repro/internal/telemetry"
	"repro/internal/trace"
)

// Status is one job's lifecycle state.
type Status string

// The job lifecycle: queued → running → done|failed|cancelled. A queued
// job cancelled before a worker picks it up goes straight to cancelled.
const (
	StatusQueued    Status = "queued"
	StatusRunning   Status = "running"
	StatusDone      Status = "done"
	StatusFailed    Status = "failed"
	StatusCancelled Status = "cancelled"
)

// terminal reports whether no further transitions can happen.
func (s Status) terminal() bool {
	return s == StatusDone || s == StatusFailed || s == StatusCancelled
}

// Progress is one job's live optimization progress, updated once per
// optimizer iteration by the flow's progress hook.
type Progress struct {
	// Iter counts completed optimizer iterations out of Total.
	Iter  int `json:"iter"`
	Total int `json:"total"`
	// BestRatioCPD is the best delay so far over CPDori — an upper bound
	// on the final ratio, which post-optimization only improves.
	BestRatioCPD float64 `json:"best_ratio_cpd"`
	// BestErr is the best individual's error under the job's metric.
	BestErr float64 `json:"best_err"`
	// Evaluations counts circuit evaluations so far.
	Evaluations int `json:"evaluations"`
}

// Stats counts what the server did since it started.
type Stats struct {
	// Submitted counts accepted submissions (including dedup/cache hits).
	Submitted int `json:"submitted"`
	// Executed counts flows actually computed by this process.
	Executed int `json:"executed"`
	// CacheHits counts submissions answered from the persistent store.
	CacheHits int `json:"cache_hits"`
	// Deduped counts submissions attached to an identical live or
	// finished job instead of spawning a new one.
	Deduped int `json:"deduped"`
	// Cancelled and Failed count terminal outcomes.
	Cancelled int `json:"cancelled"`
	Failed    int `json:"failed"`
}

// Options configures a Server. The zero value is usable: no persistence,
// one worker, a 64-deep queue, the default cell library.
type Options struct {
	// Store persists finished results keyed by job content hash; nil
	// disables persistence (dedup still works within the process).
	Store *store.Store
	// Workers bounds how many flows run concurrently (default 1).
	Workers int
	// QueueDepth bounds how many jobs may wait (default 64); submissions
	// beyond it are rejected with ErrQueueFull rather than queued
	// unboundedly.
	QueueDepth int
	// EvalWorkers caps each flow's internal candidate-evaluation pool.
	// 0 picks GOMAXPROCS/Workers (min 1) so total parallelism stays
	// GOMAXPROCS-bounded, mirroring the experiment scheduler's split.
	EvalWorkers int
	// MaxJobs bounds the in-memory job table (default 1024). When a new
	// job would exceed it, the oldest terminal jobs are evicted (their
	// results stay served by the store); queued and running jobs are
	// never evicted, so the table is bounded by MaxJobs + QueueDepth +
	// Workers in the worst case.
	MaxJobs int
	// Lib is the cell library (default the synthetic 28nm library).
	Lib *cell.Library
	// Metrics is the telemetry registry the server instruments and the
	// Handler serves at GET /metrics. Nil allocates a private registry, so
	// metrics always work; pass one to share the scrape endpoint with other
	// subsystems (alsd passes its process registry).
	Metrics *telemetry.Registry
	// Logger receives structured log records (job transitions with job and
	// hash IDs, HTTP access records with request IDs). Nil falls back to
	// Logf; with both nil, logging is disabled.
	Logger *slog.Logger
	// Logf, when non-nil and Logger is nil, receives the same records
	// rendered to single lines (legacy bridge; tests pass t.Logf).
	Logf func(format string, args ...any)
	// Tracer records request and job spans (internal/trace) and serves
	// them at GET /debug/traces. Nil disables tracing: every span call
	// site degrades to a no-op, and request IDs fall back to the legacy
	// per-process sequence.
	Tracer *trace.Tracer
	// WAL makes accepted submissions durable (wal.go): every genuinely
	// queued job appends an accept record before Submit returns, terminal
	// transitions append completion records, and New replays the log's
	// unresolved accepts — so a daemon SIGKILLed mid-queue re-enqueues the
	// lost jobs on restart and answers already-persisted ones from the
	// store, bit-identically. Nil disables write-ahead logging. The caller
	// owns the WAL (OpenWAL) and closes it after Drain/Close returns.
	WAL *WAL
}

// Submission errors the HTTP layer maps to 503; anything else from Submit
// is a validation error (400).
var (
	// ErrQueueFull rejects a submission when the pending queue is at
	// QueueDepth.
	ErrQueueFull = errors.New("service: queue full")
	// ErrDraining rejects submissions after Drain or Close began.
	ErrDraining = errors.New("service: server is draining")
)

// jobState is one submitted flow. All mutable fields are guarded by the
// server mutex.
type jobState struct {
	id       string
	spec     *flowSpec
	status   Status
	cached   bool // answered from the persistent store, never computed here
	progress Progress
	result   *exp.JobResult
	// front is the run's trade-off solution set (v2 surface only; v1
	// responses never carry it).
	front []SolutionView
	// errMsg is the human-readable failure text; failCode is the
	// machine-readable /v2 error code derived from the failure's sentinel
	// (errors.Is, never prose matching).
	errMsg   string
	failCode string
	// subs holds the live /v2 event subscribers; entries are closed (and
	// the map nilled) when the job reaches a terminal state.
	subs map[chan JobEvent]struct{}
	// parent is the submitting request's span: job spans (queue.wait,
	// job.run, store.put) parent onto its immutable identity, which stays
	// valid after the HTTP request span ends. queueSpan covers
	// submission→run-start and is ended by runJob or by a queued cancel.
	parent    *trace.Span
	queueSpan *trace.Span
	// cancelRun cancels the in-flight flow; non-nil only while running.
	cancelRun context.CancelFunc
	created   time.Time
	started   time.Time
	finished  time.Time
}

// Server owns the job table and worker pool. Create with New, serve its
// Handler, and shut down with Drain (graceful) or Close (immediate).
type Server struct {
	store       *store.Store
	lib         *cell.Library
	evalWorkers int
	maxJobs     int
	log         *slog.Logger
	metrics     *serverMetrics
	tracer      *trace.Tracer
	wal         *WAL
	reqSeq      atomic.Int64 // request-ID sequence for the access log

	baseCtx    context.Context // parent of every job run; Close cancels it
	baseCancel context.CancelFunc
	queue      chan *jobState
	wg         sync.WaitGroup

	mu       sync.Mutex
	draining bool
	seq      int
	jobs     map[string]*jobState
	order    []string          // job IDs in submission order
	byHash   map[string]string // content hash → job ID (latest)
	// tombs remembers terminal jobs whose full state is gone — evicted
	// from the table, or finished by a previous process and recovered from
	// the WAL's job snapshot — so their ids keep resolving. Bounded at
	// maxTombstones, oldest forgotten first.
	tombs     map[string]jobTomb
	tombOrder []string
	stats     Stats
}

// jobTomb is the durable residue of a terminal job: enough to answer
// "what happened to id X" (and, for done jobs, re-fetch the result from
// the store) after everything else about it is gone.
type jobTomb struct {
	hash   string
	status Status
}

// maxTombstones bounds the remembered terminal-id set. Beyond it the
// oldest mappings are forgotten; their results stay store-addressable by
// content hash either way.
const maxTombstones = 4096

// New starts a Server with opts.Workers worker goroutines. The caller
// owns opts.Store and closes it after Drain/Close returns.
func New(opts Options) *Server {
	workers := opts.Workers
	if workers <= 0 {
		workers = 1
	}
	depth := opts.QueueDepth
	if depth <= 0 {
		depth = 64
	}
	evalWorkers := opts.EvalWorkers
	if evalWorkers <= 0 && workers > 1 {
		evalWorkers = runtime.GOMAXPROCS(0) / workers
		if evalWorkers < 1 {
			evalWorkers = 1
		}
	}
	maxJobs := opts.MaxJobs
	if maxJobs <= 0 {
		maxJobs = 1024
	}
	lib := opts.Lib
	if lib == nil {
		lib = als.NewLibrary()
	}
	logger := opts.Logger
	switch {
	case logger != nil:
	case opts.Logf != nil:
		logger = slog.New(slog.NewTextHandler(logfWriter{opts.Logf},
			&slog.HandlerOptions{Level: slog.LevelDebug}))
	default:
		logger = slog.New(slog.DiscardHandler)
	}
	reg := opts.Metrics
	if reg == nil {
		reg = telemetry.NewRegistry()
	}
	// Replayed WAL accepts ride on top of the configured queue depth, so a
	// restart after a crash with a full queue can never fail its own
	// replay with ErrQueueFull.
	var pending []WALPending
	if opts.WAL != nil {
		pending = opts.WAL.Pending()
	}
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		store:       opts.Store,
		lib:         lib,
		evalWorkers: evalWorkers,
		maxJobs:     maxJobs,
		log:         logger,
		tracer:      opts.Tracer,
		wal:         opts.WAL,
		baseCtx:     ctx,
		baseCancel:  cancel,
		queue:       make(chan *jobState, depth+len(pending)),
		jobs:        map[string]*jobState{},
		byHash:      map[string]string{},
		tombs:       map[string]jobTomb{},
	}
	// Load the durable job table before anything can allocate an id: the
	// sequence must restart past every remembered id so a fresh job never
	// collides with one a previous process already promised a client.
	if opts.WAL != nil {
		for _, wj := range opts.WAL.Jobs() {
			s.rememberLocked(wj.ID, wj.Hash, Status(wj.Status))
			if n := idSeq(wj.ID); n > s.seq {
				s.seq = n
			}
		}
	}
	s.metrics = newServerMetrics(reg, s)
	if s.store != nil {
		s.store.Instrument(s.metrics.storePuts, s.metrics.storeGets, s.metrics.storeHits)
	}
	for i := 0; i < workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	if s.wal != nil {
		s.replayWAL(pending)
	}
	return s
}

// replayWAL re-submits every unresolved accept from a previous process
// through the normal Submit path: submissions whose results the crashed
// daemon already persisted are answered from the store (no recomputation,
// bit-identical by the content-hash contract), the rest re-queue and run
// again. Afterwards the log is compacted down to the still-live set.
func (s *Server) replayWAL(pending []WALPending) {
	for _, p := range pending {
		v, err := s.Submit(context.Background(), p.Req)
		if err != nil {
			// The record can no longer be submitted (e.g. validation rules
			// changed across the restart). Resolve it so it stops replaying
			// on every future startup, and leave the reason in the log.
			s.log.Warn("wal replay rejected", "hash", p.Hash, "error", err)
			s.walAppend(nil, string(StatusFailed), p.Hash)
			continue
		}
		s.metrics.walReplayed.Inc()
		s.log.Info("wal replay", "hash", p.Hash, "job_id", v.ID,
			"from_store", v.Cached, "status", string(v.Status))
	}
	s.mu.Lock()
	var live []WALPending
	for _, id := range s.order {
		if j := s.jobs[id]; !j.status.terminal() {
			live = append(live, WALPending{Hash: j.spec.hash, Req: j.spec.request()})
		}
	}
	jobsSnap := make([]WALJob, 0, len(s.tombOrder))
	for _, id := range s.tombOrder {
		t := s.tombs[id]
		jobsSnap = append(jobsSnap, WALJob{ID: id, Hash: t.hash, Status: string(t.status)})
	}
	s.mu.Unlock()
	if err := s.wal.Compact(live, jobsSnap); err != nil {
		s.log.Warn("wal compaction failed", "error", err)
	}
}

// rememberLocked records a terminal id → hash/status tombstone, evicting
// the oldest beyond maxTombstones. Held under s.mu once the server is
// serving (New calls it before any concurrency exists).
func (s *Server) rememberLocked(id, hash string, st Status) {
	if id == "" || !st.terminal() {
		return
	}
	if _, ok := s.tombs[id]; !ok {
		s.tombOrder = append(s.tombOrder, id)
	}
	s.tombs[id] = jobTomb{hash: hash, status: st}
	for len(s.tombOrder) > maxTombstones {
		delete(s.tombs, s.tombOrder[0])
		s.tombOrder = s.tombOrder[1:]
	}
}

// idSeq parses the numeric tail of a job id ("f%06d" from newJobLocked);
// 0 for anything malformed.
func idSeq(id string) int {
	if len(id) < 2 || id[0] != 'f' {
		return 0
	}
	n, err := strconv.Atoi(id[1:])
	if err != nil || n < 0 {
		return 0
	}
	return n
}

// walAppend records one WAL transition (nil-safe without a WAL): op is
// walOpAccept — accompanied by the job's replayable request — or a
// terminal Status string. Append failures are logged, not returned: the
// job proceeds either way (availability over durability; the operator
// sees the warning and the als_wal_appends_total/op counter).
func (s *Server) walAppend(j *jobState, op, hash string) {
	if s.wal == nil {
		return
	}
	var span *trace.Span
	var err error
	if op == walOpAccept {
		span = j.parent.StartChild("wal.append")
		req := j.spec.request()
		err = s.wal.Accept(hash, req)
	} else {
		var id string
		if j != nil {
			span = j.parent.StartChild("wal.append")
			id = j.id
		}
		err = s.wal.Resolve(op, hash, id)
	}
	span.SetAttr("op", op)
	if err != nil {
		span.SetAttr("error", err.Error())
		s.log.Warn("wal append failed", "op", op, "hash", hash, "error", err)
	}
	span.End()
	s.metrics.walAppends.With(op).Inc()
}

// Metrics returns the registry the server instruments (served by the
// Handler at GET /metrics).
func (s *Server) Metrics() *telemetry.Registry { return s.metrics.registry }

// logfWriter adapts a printf-style sink into an io.Writer for the legacy
// Options.Logf bridge: every rendered slog line becomes one Logf call.
type logfWriter struct {
	logf func(format string, args ...any)
}

func (w logfWriter) Write(b []byte) (int, error) {
	n := len(b)
	for n > 0 && b[n-1] == '\n' {
		n--
	}
	w.logf("%s", b[:n])
	return len(b), nil
}

// Submit validates a request and either attaches it to an identical live
// or finished job (dedup), answers it from the persistent store (cache),
// or enqueues a new job. The returned view's Cached field is true when no
// computation will happen for this submission. When ctx carries a trace
// span (the HTTP middleware roots one per request), the span is stamped
// with the submission outcome and, for a genuinely queued job, becomes
// the parent of the job's queue.wait/job.run/store.put spans.
func (s *Server) Submit(ctx context.Context, req Request) (JobView, error) {
	reqSpan := trace.FromContext(ctx)
	sp, err := validate(req)
	if err != nil {
		reqSpan.SetAttr("outcome", "invalid")
		return JobView{}, err
	}
	reqSpan.SetAttr("hash", sp.hash)
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		reqSpan.SetAttr("outcome", "draining")
		return JobView{}, ErrDraining
	}

	// Dedup against a live or successfully finished job with the same
	// content hash. Failed and cancelled jobs don't count — an identical
	// resubmission gets a fresh run.
	if id, ok := s.byHash[sp.hash]; ok {
		j := s.jobs[id]
		if j.status != StatusFailed && j.status != StatusCancelled {
			s.stats.Submitted++
			s.stats.Deduped++
			s.metrics.jobsSubmitted.Inc()
			s.metrics.jobsDeduped.Inc()
			reqSpan.SetAttr("outcome", "dedup")
			reqSpan.SetAttr("job_id", j.id)
			v := s.viewLocked(j)
			v.Cached = v.Cached || j.status == StatusDone
			return v, nil
		}
	}

	// Cache: a result persisted by an earlier run of this daemon, a
	// previous daemon over the same store, or a cmd/experiments sweep.
	if s.store != nil {
		var r exp.JobResult
		if ok, err := s.store.Decode(sp.hash, &r); err == nil && ok {
			j := s.newJobLocked(sp)
			now := time.Now()
			j.status = StatusDone
			j.cached = true
			j.result = &r
			// The front is persisted separately (sweep stores predate it);
			// a miss just means the cached v2 result has no front.
			var front []SolutionView
			if ok, err := s.store.Decode(frontKey(sp.hash), &front); err == nil && ok {
				j.front = front
			}
			j.started, j.finished = now, now
			s.stats.Submitted++
			s.stats.CacheHits++
			s.metrics.jobsSubmitted.Inc()
			s.metrics.jobsStoreHits.Inc()
			reqSpan.SetAttr("outcome", "store_hit")
			reqSpan.SetAttr("job_id", j.id)
			s.log.Info("job served from store",
				"job_id", j.id, "hash", sp.hash, "spec", j.spec.job.String())
			return s.viewLocked(j), nil
		}
	}

	j := s.newJobLocked(sp)
	select {
	case s.queue <- j:
	default:
		delete(s.jobs, j.id)
		delete(s.byHash, sp.hash)
		s.order = s.order[:len(s.order)-1]
		reqSpan.SetAttr("outcome", "queue_full")
		return JobView{}, ErrQueueFull
	}
	reqSpan.SetAttr("outcome", "queued")
	reqSpan.SetAttr("job_id", j.id)
	j.parent = reqSpan
	j.queueSpan = reqSpan.StartChild("queue.wait")
	// Write-ahead: the accept record is durable before the caller (and
	// therefore the client's 202) learns the job was queued. Dedup and
	// store-served submissions never reach here — they owe no future work.
	s.walAppend(j, walOpAccept, sp.hash)
	s.stats.Submitted++
	s.metrics.jobsSubmitted.Inc()
	s.log.Info("job queued",
		"job_id", j.id, "hash", sp.hash, "spec", j.spec.job.String(), "queue_depth", len(s.queue))
	return s.viewLocked(j), nil
}

// newJobLocked allocates a queued jobState and indexes it, evicting the
// oldest terminal jobs once the table exceeds MaxJobs; s.mu held.
func (s *Server) newJobLocked(sp *flowSpec) *jobState {
	s.evictLocked()
	s.seq++
	j := &jobState{
		id:      fmt.Sprintf("f%06d", s.seq),
		spec:    sp,
		status:  StatusQueued,
		created: time.Now(),
	}
	s.jobs[j.id] = j
	s.order = append(s.order, j.id)
	s.byHash[sp.hash] = j.id
	return j
}

// evictLocked drops the oldest terminal jobs while the table is at or
// above MaxJobs, so a long-lived daemon's memory stays bounded. Queued
// and running jobs are never evicted; an evicted done job's result is
// still served by the persistent store (in-process dedup for its hash is
// lost, which costs at most one store lookup). s.mu held.
func (s *Server) evictLocked() {
	if len(s.jobs) < s.maxJobs {
		return
	}
	kept := s.order[:0]
	for _, id := range s.order {
		j := s.jobs[id]
		if len(s.jobs) >= s.maxJobs && j.status.terminal() {
			delete(s.jobs, id)
			if s.byHash[j.spec.hash] == id {
				delete(s.byHash, j.spec.hash)
			}
			// The id keeps resolving (status + store-backed result) after
			// the full state is dropped.
			s.rememberLocked(id, j.spec.hash, j.status)
			continue
		}
		kept = append(kept, id)
	}
	s.order = kept
}

// Job returns a point-in-time view of one job. Terminal jobs that were
// evicted from the table — or finished by a previous process and
// recovered from the WAL's job snapshot — resolve to a synthesized view:
// identity and final status survive, and a done job's result is re-read
// from the persistent store; per-run detail (spec, progress, timings) is
// gone.
func (s *Server) Job(id string) (JobView, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		if t, ok := s.tombs[id]; ok {
			return s.tombViewLocked(id, t), true
		}
		return JobView{}, false
	}
	return s.viewLocked(j), true
}

// tombViewLocked synthesizes the view of a tombstoned terminal job;
// s.mu held.
func (s *Server) tombViewLocked(id string, t jobTomb) JobView {
	v := JobView{ID: id, Hash: t.hash, Status: t.status}
	switch t.status {
	case StatusDone:
		v.Cached = true
		if s.store != nil {
			var r exp.JobResult
			if ok, err := s.store.Decode(t.hash, &r); err == nil && ok {
				v.Result = &r
			}
		}
	case StatusFailed:
		v.Error = "job failed; detail evicted from the job table"
	case StatusCancelled:
		v.Error = "job cancelled; detail evicted from the job table"
	}
	return v
}

// Jobs lists every job in submission order.
func (s *Server) Jobs() []JobView {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]JobView, 0, len(s.order))
	for _, id := range s.order {
		out = append(out, s.viewLocked(s.jobs[id]))
	}
	return out
}

// QueueDepth reports how many accepted jobs are waiting for a worker —
// the backlog figure a registered worker's heartbeat carries to its
// coordinator.
func (s *Server) QueueDepth() int { return len(s.queue) }

// EvalsTotal reports the total circuit evaluations finished runs have
// performed (the als_evaluations_total counter) — the throughput basis a
// coordinator's adaptive scheduler works from.
func (s *Server) EvalsTotal() int64 { return s.metrics.evaluations.Value() }

// Stats returns the server's counters.
func (s *Server) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// Cancel stops a job: a queued job becomes cancelled immediately, a
// running job's context is cancelled (the flow stops at its next
// iteration boundary), and a terminal job is left untouched. The second
// return is false when no job has that ID.
func (s *Server) Cancel(id string) (JobView, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		// A tombstoned job is terminal by definition: like any terminal
		// job, cancel leaves it untouched and reports its state.
		if t, ok := s.tombs[id]; ok {
			return s.tombViewLocked(id, t), true
		}
		return JobView{}, false
	}
	switch j.status {
	case StatusQueued:
		j.status = StatusCancelled
		j.errMsg = "cancelled before start"
		j.finished = time.Now()
		s.walAppend(j, string(StatusCancelled), j.spec.hash)
		s.stats.Cancelled++
		s.metrics.jobsCompleted.With(string(StatusCancelled)).Inc()
		j.queueSpan.SetAttr("outcome", "cancelled")
		j.queueSpan.End()
		j.queueSpan = nil
		s.closeSubsLocked(j)
		s.log.Info("job cancelled while queued", "job_id", j.id)
	case StatusRunning:
		// The worker observes the context at the next iteration boundary
		// and marks the job cancelled; report the current state meanwhile.
		j.cancelRun()
		s.log.Info("job cancellation requested", "job_id", j.id)
	}
	return s.viewLocked(j), true
}

// Drain shuts the server down gracefully: new submissions are rejected
// with ErrDraining, queued and running jobs are allowed to finish, and
// Drain returns when the workers exit. If ctx expires first, every
// in-flight job is cancelled (stopping at its next iteration boundary,
// with its partial work discarded but every previously finished result
// already flushed to the store) and Drain waits for the workers before
// returning ctx's error.
func (s *Server) Drain(ctx context.Context) error {
	s.beginDrain()
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		s.baseCancel()
		<-done
		return fmt.Errorf("service: drain timed out, in-flight jobs cancelled: %w", ctx.Err())
	}
}

// Close shuts down immediately: submissions are rejected, in-flight jobs
// are cancelled, and Close returns when the workers exit.
func (s *Server) Close() {
	s.beginDrain()
	s.baseCancel()
	s.wg.Wait()
}

// beginDrain flips the draining flag and closes the queue exactly once.
// Sends to the queue only happen in Submit under s.mu with !draining, so
// closing under the same lock cannot race a send.
func (s *Server) beginDrain() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.draining {
		s.draining = true
		close(s.queue)
	}
}

// worker runs queued jobs until the queue is closed and empty.
func (s *Server) worker() {
	defer s.wg.Done()
	for j := range s.queue {
		s.runJob(j)
	}
}

// runJob executes one queued job end to end and records its outcome.
func (s *Server) runJob(j *jobState) {
	s.mu.Lock()
	if j.status != StatusQueued { // cancelled while waiting in the queue
		s.mu.Unlock()
		return
	}
	ctx, cancel := context.WithCancel(s.baseCtx)
	j.status = StatusRunning
	j.cancelRun = cancel
	j.started = time.Now()
	sp := j.spec
	queueSpan := j.queueSpan
	j.queueSpan = nil
	s.mu.Unlock()
	defer cancel()
	s.metrics.queueWait.Observe(j.started.Sub(j.created).Seconds())
	queueSpan.SetAttr("outcome", "started")
	queueSpan.End()
	runSpan := j.parent.StartChild("job.run")
	runSpan.SetAttr("job_id", j.id)
	runSpan.SetAttr("hash", sp.hash)
	ctx = trace.ContextWith(ctx, runSpan)
	s.metrics.jobsRunning.Inc()
	defer s.metrics.jobsRunning.Dec()
	s.log.Info("job running", "job_id", j.id, "spec", sp.job.String())

	res, front, err := s.execute(ctx, j, sp)

	// Persist before publishing "done": once a client sees done, a
	// restarted daemon must also be able to serve the result. The front
	// rides along under a derived key so legacy stores (and the sweep
	// tooling, which only reads job hashes) are unaffected.
	if err == nil && s.store != nil {
		putSpan := runSpan.StartChild("store.put")
		if perr := s.store.Put(sp.hash, res); perr != nil {
			s.log.Warn("job result not persisted", "job_id", j.id, "error", perr)
		}
		if len(front) > 0 {
			if perr := s.store.Put(frontKey(sp.hash), front); perr != nil {
				s.log.Warn("job front not persisted", "job_id", j.id, "error", perr)
			}
		}
		putSpan.End()
	}

	// End the run span before the terminal status becomes visible, so a
	// client that polls the job to "done" and immediately scrapes
	// /debug/traces never catches the span still open.
	switch {
	case err == nil:
		runSpan.SetAttr("status", string(StatusDone))
	case errors.Is(err, context.Canceled):
		runSpan.SetAttr("status", string(StatusCancelled))
	default:
		runSpan.SetAttr("status", string(StatusFailed))
	}
	runSpan.End()

	s.mu.Lock()
	defer s.mu.Unlock()
	j.cancelRun = nil
	j.finished = time.Now()
	// The completion record lands before the terminal status is visible:
	// once a client observes the end state, a restart will not replay the
	// job. (The reverse order could replay an already-answered job — safe,
	// via the store, but wasteful.)
	switch {
	case err == nil:
		s.walAppend(j, string(StatusDone), sp.hash)
		j.status = StatusDone
		j.result = &res
		j.front = front
		s.stats.Executed++
		s.metrics.jobsExecuted.Inc()
		s.metrics.jobsCompleted.With(string(StatusDone)).Inc()
		s.metrics.jobDuration.Observe(j.finished.Sub(j.started).Seconds())
		s.log.Info("job done",
			"job_id", j.id,
			"ratio_cpd", res.RatioCPD,
			"err", res.Err,
			"front", len(front),
			"duration", j.finished.Sub(j.started).Round(time.Millisecond).String())
	case errors.Is(err, context.Canceled):
		s.walAppend(j, string(StatusCancelled), sp.hash)
		j.status = StatusCancelled
		j.errMsg = err.Error()
		s.stats.Cancelled++
		s.metrics.jobsCompleted.With(string(StatusCancelled)).Inc()
		s.log.Info("job cancelled", "job_id", j.id, "iterations", j.progress.Iter)
	default:
		s.walAppend(j, string(StatusFailed), sp.hash)
		j.status = StatusFailed
		j.errMsg = err.Error()
		j.failCode = failCodeFor(err)
		s.stats.Failed++
		s.metrics.jobsCompleted.With(string(StatusFailed)).Inc()
		s.log.Warn("job failed", "job_id", j.id, "error", err)
	}
	s.closeSubsLocked(j)
}

// execute runs the flow for one job as a streaming session, mirroring
// progress into the job table and broadcasting live events to the /v2
// subscribers. It holds no locks while computing; the session's effective
// configuration resolves identically to the legacy FlowConfig path, so
// results (and the shared content-hash cache) are unchanged.
func (s *Server) execute(ctx context.Context, j *jobState, sp *flowSpec) (exp.JobResult, []SolutionView, error) {
	circuit, err := sp.buildCircuit()
	if err != nil {
		return exp.JobResult{}, nil, err
	}
	sess, err := als.NewSession(circuit, s.lib, sp.sessionOptions(s.evalWorkers)...)
	if err != nil {
		return exp.JobResult{}, nil, err
	}
	var res *als.FlowResult
	var front als.Front
	for ev, err := range sess.Run(ctx) {
		if err != nil {
			return exp.JobResult{}, nil, err
		}
		switch ev.Kind {
		case als.EventProgress:
			p := Progress{
				Iter:         ev.Progress.Iter,
				Total:        ev.Progress.Total,
				BestRatioCPD: ev.Progress.BestRatioCPD,
				BestErr:      ev.Progress.BestErr,
				Evaluations:  ev.Progress.Evaluations,
			}
			s.mu.Lock()
			j.progress = p
			s.broadcastLocked(j, JobEvent{Type: EventTypeProgress, Progress: &p})
			s.mu.Unlock()
		case als.EventImproved:
			s.mu.Lock()
			s.broadcastLocked(j, JobEvent{Type: EventTypeSolution, Solution: &SolutionView{
				RatioCPD: ev.Solution.RatioCPD,
				Err:      ev.Solution.Err,
				Area:     ev.Solution.Area,
			}})
			s.mu.Unlock()
		case als.EventDone:
			res, front = ev.Result, ev.Front
			s.metrics.observeFlow(res)
		}
	}
	if res == nil {
		// Unreachable: a stream that is never broken ends in EventDone or
		// an error; keep the invariant explicit for future refactors.
		return exp.JobResult{}, nil, fmt.Errorf("service: job %s produced no result", j.id)
	}
	views := make([]SolutionView, len(front))
	for i, sol := range front {
		views[i] = SolutionView{RatioCPD: sol.RatioCPD, Err: sol.Err, Area: sol.Area}
	}
	return exp.JobResult{
		RatioCPD:    res.RatioCPD,
		Err:         res.Err,
		Evaluations: res.Evaluations,
		CPDOri:      res.CPDOri,
		CPDFac:      res.CPDFac,
		AreaCon:     res.AreaCon,
		AreaFinal:   res.AreaFinal,
		RuntimeNS:   int64(res.Runtime),
	}, views, nil
}

// JobView is the API's point-in-time snapshot of one job.
type JobView struct {
	ID   string `json:"id"`
	Hash string `json:"hash"`
	// Spec is the canonical job (uploaded netlists appear as their
	// content key "verilog:<sha256>").
	Spec   exp.Job `json:"spec"`
	Status Status  `json:"status"`
	// Cached is true when the submission required no computation: the
	// result came from the persistent store or from an identical
	// already-finished job.
	Cached   bool           `json:"cached"`
	Progress *Progress      `json:"progress,omitempty"`
	Result   *exp.JobResult `json:"result,omitempty"`
	Error    string         `json:"error,omitempty"`
	Created  time.Time      `json:"created"`
	Started  time.Time      `json:"started,omitzero"`
	Finished time.Time      `json:"finished,omitzero"`
}

// viewLocked snapshots a job; s.mu held.
func (s *Server) viewLocked(j *jobState) JobView {
	v := JobView{
		ID:       j.id,
		Hash:     j.spec.hash,
		Spec:     j.spec.job,
		Status:   j.status,
		Cached:   j.cached,
		Error:    j.errMsg,
		Created:  j.created,
		Started:  j.started,
		Finished: j.finished,
	}
	if j.progress.Total != 0 {
		p := j.progress
		v.Progress = &p
	}
	if j.result != nil {
		r := *j.result
		v.Result = &r
	}
	return v
}
