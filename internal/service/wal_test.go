package service

import (
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	als "repro"
	"repro/internal/exp"
	"repro/internal/store"
	"repro/internal/verilog"
)

// The crash in these tests is simulated by construction, not by killing
// the process: a SIGKILLed daemon leaves exactly (a) the WAL and store
// files as they were at the kill and (b) nothing else — no drain, no
// terminal records, no flushes beyond what each append already synced.
// Writing those files directly and opening a fresh Server over them is
// therefore the same state a real kill produces; the end-to-end
// SIGKILL-of-a-live-alsd variant runs in scripts/distributed_smoke.sh.

// walServer builds a Server over a store and WAL rooted in dir.
func walServer(t *testing.T, dir string, opts Options) (*Server, *store.Store, *WAL) {
	t.Helper()
	st, err := store.Open(filepath.Join(dir, "results.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	wal, err := OpenWAL(filepath.Join(dir, "queue.wal"))
	if err != nil {
		t.Fatal(err)
	}
	opts.Store = st
	opts.WAL = wal
	if opts.Logf == nil {
		opts.Logf = t.Logf
	}
	s := New(opts)
	t.Cleanup(func() {
		s.Close()
		wal.Close()
		st.Close()
	})
	return s, st, wal
}

// waitServerDone polls the job table directly until id is terminal.
func waitServerDone(t *testing.T, s *Server, id string) JobView {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		if v, ok := s.Job(id); ok && v.Status.terminal() {
			return v
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("job %s did not finish in time", id)
	return JobView{}
}

// TestWALReplayCompletesLostJobs is the core crash-recovery property:
// submissions accepted (202) by a daemon that dies before running them
// are re-enqueued on restart and finish with results byte-identical to an
// uninterrupted run.
func TestWALReplayCompletesLostJobs(t *testing.T) {
	dir := t.TempDir()
	walPath := filepath.Join(dir, "queue.wal")

	// The WAL a killed daemon leaves: three accepts, no terminal records.
	reqs := []Request{quickReq(11), quickReq(12), quickReq(13)}
	var lines []string
	hashes := make([]string, len(reqs))
	for i, r := range reqs {
		sp, err := validate(r)
		if err != nil {
			t.Fatal(err)
		}
		hashes[i] = sp.hash
		raw, err := json.Marshal(walRecord{Op: walOpAccept, Hash: sp.hash, Req: &r})
		if err != nil {
			t.Fatal(err)
		}
		lines = append(lines, string(raw))
	}
	if err := os.WriteFile(walPath, []byte(strings.Join(lines, "\n")+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}

	s, st, _ := walServer(t, dir, Options{Workers: 2})
	var scrape strings.Builder
	if err := s.Metrics().WritePrometheus(&scrape); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(scrape.String(), "als_wal_replayed_total 3") {
		t.Fatalf("als_wal_replayed_total after replay:\n%s", scrape.String())
	}
	views := s.Jobs()
	if len(views) != 3 {
		t.Fatalf("job table has %d jobs after replay, want 3", len(views))
	}
	for _, v := range views {
		got := waitServerDone(t, s, v.ID)
		if got.Status != StatusDone {
			t.Fatalf("replayed job %s ended %q (error %q)", v.ID, got.Status, got.Error)
		}
	}

	// Byte-identical to an uninterrupted run: each replayed result's
	// persisted bytes must equal what a fresh daemon (same seed, no crash)
	// persists.
	refDir := t.TempDir()
	ref, refStore, _ := walServer(t, refDir, Options{Workers: 2})
	for _, r := range reqs {
		v, err := ref.Submit(context.Background(), r)
		if err != nil {
			t.Fatal(err)
		}
		waitServerDone(t, ref, v.ID)
	}
	for i, h := range hashes {
		var got, want exp.JobResult
		if ok, err := st.Decode(h, &got); !ok || err != nil {
			t.Fatalf("replayed result %d missing: (%v, %v)", i, ok, err)
		}
		if ok, err := refStore.Decode(h, &want); !ok || err != nil {
			t.Fatalf("reference result %d missing: (%v, %v)", i, ok, err)
		}
		got.RuntimeNS, want.RuntimeNS = 0, 0 // wall clock, the one impure field
		if !reflect.DeepEqual(got, want) {
			t.Errorf("replayed result %d = %+v, reference = %+v", i, got, want)
		}
	}
}

// TestWALStoreHitReplayNoRecompute: a job whose result the killed daemon
// already persisted (it crashed after store.Put, before the terminal
// record) replays as a store hit — served bit-identically with no second
// execution.
func TestWALStoreHitReplayNoRecompute(t *testing.T) {
	dir := t.TempDir()

	// Run the job once to obtain its real persisted result.
	s1, st1, _ := walServer(t, dir, Options{Workers: 1})
	v, err := s1.Submit(context.Background(), quickReq(21))
	if err != nil {
		t.Fatal(err)
	}
	done := waitServerDone(t, s1, v.ID)
	if done.Status != StatusDone {
		t.Fatalf("seed job ended %q", done.Status)
	}
	s1.Close()

	// Reconstruct the crash window: result persisted, accept unresolved.
	req := quickReq(21)
	raw, err := json.Marshal(walRecord{Op: walOpAccept, Hash: v.Hash, Req: &req})
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "queue.wal"), append(raw, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	st1.Close()

	s2, _, _ := walServer(t, dir, Options{Workers: 1})
	views := s2.Jobs()
	if len(views) != 1 {
		t.Fatalf("job table has %d jobs, want 1", len(views))
	}
	got := views[0]
	if got.Status != StatusDone || !got.Cached {
		t.Fatalf("replayed persisted job = (%q, cached=%v), want done from store", got.Status, got.Cached)
	}
	if got.Result == nil || got.Result.RatioCPD != done.Result.RatioCPD || got.Result.Err != done.Result.Err {
		t.Fatalf("store-replayed result %+v differs from original %+v", got.Result, done.Result)
	}
	if n := s2.Stats().Executed; n != 0 {
		t.Fatalf("replay executed %d jobs, want 0 (store hit)", n)
	}
}

// TestWALTerminalNotReplayed: resolved accepts (and a corrupt torn tail)
// are not replayed.
func TestWALTerminalNotReplayed(t *testing.T) {
	dir := t.TempDir()
	reqDone, reqLost := quickReq(31), quickReq(32)
	spDone, err := validate(reqDone)
	if err != nil {
		t.Fatal(err)
	}
	spLost, err := validate(reqLost)
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	enc := json.NewEncoder(&b)
	enc.Encode(walRecord{Op: walOpAccept, Hash: spDone.hash, Req: &reqDone}) //nolint:errcheck
	enc.Encode(walRecord{Op: walOpAccept, Hash: spLost.hash, Req: &reqLost}) //nolint:errcheck
	enc.Encode(walRecord{Op: string(StatusDone), Hash: spDone.hash})         //nolint:errcheck
	b.WriteString(`{"op":"accept","hash":"torn-tail-no-closing`)             // SIGKILL mid-append
	if err := os.WriteFile(filepath.Join(dir, "queue.wal"), []byte(b.String()), 0o644); err != nil {
		t.Fatal(err)
	}

	wal, err := OpenWAL(filepath.Join(dir, "queue.wal"))
	if err != nil {
		t.Fatal(err)
	}
	defer wal.Close()
	pending := wal.Pending()
	if len(pending) != 1 || pending[0].Hash != spLost.hash {
		t.Fatalf("Pending() = %+v, want exactly the unresolved accept %s", pending, spLost.hash)
	}
	if wal.Corrupt() != 1 {
		t.Fatalf("Corrupt() = %d, want 1 (the torn tail)", wal.Corrupt())
	}
	// The healed file must accept appends on a fresh line: reopen and
	// check the new record parses.
	if err := wal.Resolve(string(StatusCancelled), pending[0].Hash, ""); err != nil {
		t.Fatal(err)
	}
	wal.Close()
	wal2, err := OpenWAL(filepath.Join(dir, "queue.wal"))
	if err != nil {
		t.Fatal(err)
	}
	defer wal2.Close()
	if got := wal2.Pending(); len(got) != 0 {
		t.Fatalf("Pending() after resolve = %+v, want none", got)
	}
}

// TestWALCompaction: after a restart replays and the jobs finish, the
// next open finds nothing pending and a log proportional to the live set
// plus the bounded job-table snapshot — not to submission history.
func TestWALCompaction(t *testing.T) {
	dir := t.TempDir()
	s, _, wal := walServer(t, dir, Options{Workers: 1})
	for seed := int64(41); seed <= 43; seed++ {
		v, err := s.Submit(context.Background(), quickReq(seed))
		if err != nil {
			t.Fatal(err)
		}
		waitServerDone(t, s, v.ID)
	}
	s.Close()
	wal.Close()

	wal2, err := OpenWAL(wal.Path())
	if err != nil {
		t.Fatal(err)
	}
	if got := wal2.Pending(); len(got) != 0 {
		t.Fatalf("Pending() after clean run = %+v, want none", got)
	}
	wal2.Close()

	// A second daemon generation over the same WAL compacts it: the file
	// must not keep growing with resolved history.
	st2, err := store.Open(filepath.Join(dir, "results.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	wal3, err := OpenWAL(wal.Path())
	if err != nil {
		t.Fatal(err)
	}
	defer wal3.Close()
	s2 := New(Options{Store: st2, WAL: wal3, Logf: t.Logf})
	s2.Close()
	raw, err := os.ReadFile(wal.Path())
	if err != nil {
		t.Fatal(err)
	}
	// No accepts survive a clean run; what remains is exactly the durable
	// job-table snapshot (one job record per finished id), so the file is
	// bounded by maxTombstones no matter how much history ran through.
	lines := strings.Split(strings.TrimSuffix(string(raw), "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("compacted WAL has %d records, want 3 job-snapshot rows:\n%s", len(lines), raw)
	}
	for _, ln := range lines {
		var r walRecord
		if err := json.Unmarshal([]byte(ln), &r); err != nil {
			t.Fatalf("compacted record %q: %v", ln, err)
		}
		if r.Op != walOpJob || r.ID == "" || r.Status != string(StatusDone) {
			t.Fatalf("compacted record = %+v, want a done job-snapshot row", r)
		}
	}
}

// TestWALVerilogReplay: an uploaded-netlist submission survives the crash
// too — the WAL record carries the canonical re-rendered source, and the
// replayed job lands on the identical content hash.
func TestWALVerilogReplay(t *testing.T) {
	c := als.Benchmark("Adder")
	src := verilog.Write(c)
	req := Request{Verilog: src, Metric: "er", Budget: 0.05, Seed: 3}
	sp, err := validate(req)
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	canon := sp.request()
	raw, err := json.Marshal(walRecord{Op: walOpAccept, Hash: sp.hash, Req: &canon})
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "queue.wal"), append(raw, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	s, _, _ := walServer(t, dir, Options{Workers: 1})
	views := s.Jobs()
	if len(views) != 1 {
		t.Fatalf("job table has %d jobs, want 1", len(views))
	}
	if views[0].Hash != sp.hash {
		t.Fatalf("replayed verilog job hash = %s, want %s", views[0].Hash, sp.hash)
	}
	got := waitServerDone(t, s, views[0].ID)
	if got.Status != StatusDone {
		t.Fatalf("replayed verilog job ended %q (error %q)", got.Status, got.Error)
	}
}

// TestWALRecordShapeFrozen pins the on-disk record schema documented in
// docs/STORAGE.md: op/hash/req field names and the op vocabulary are a
// contract with every future daemon that replays today's files.
func TestWALRecordShapeFrozen(t *testing.T) {
	req := quickReq(5)
	raw, err := json.Marshal(walRecord{Op: walOpAccept, Hash: "abc", Req: &req})
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]json.RawMessage
	if err := json.Unmarshal(raw, &m); err != nil {
		t.Fatal(err)
	}
	for _, k := range []string{"op", "hash", "req"} {
		if _, ok := m[k]; !ok {
			t.Errorf("accept record lacks %q field: %s", k, raw)
		}
	}
	if len(m) != 3 {
		t.Errorf("accept record has %d fields, want op/hash/req only: %s", len(m), raw)
	}
	terminal, err := json.Marshal(walRecord{Op: string(StatusDone), Hash: "abc"})
	if err != nil {
		t.Fatal(err)
	}
	// Legacy shape (no id) must still render byte-identically: old logs
	// and new daemons interoperate in both directions.
	if want := `{"op":"done","hash":"abc"}`; string(terminal) != want {
		t.Errorf("terminal record = %s, want %s", terminal, want)
	}
	withID, err := json.Marshal(walRecord{Op: string(StatusDone), Hash: "abc", ID: "f000007"})
	if err != nil {
		t.Fatal(err)
	}
	if want := `{"op":"done","hash":"abc","id":"f000007"}`; string(withID) != want {
		t.Errorf("id-carrying terminal record = %s, want %s", withID, want)
	}
	snap, err := json.Marshal(walRecord{Op: walOpJob, Hash: "abc", ID: "f000007", Status: string(StatusDone)})
	if err != nil {
		t.Fatal(err)
	}
	if want := `{"op":"job","hash":"abc","id":"f000007","status":"done"}`; string(snap) != want {
		t.Errorf("job-snapshot record = %s, want %s", snap, want)
	}
	for _, op := range []string{walOpAccept, walOpJob, string(StatusDone), string(StatusFailed), string(StatusCancelled)} {
		switch op {
		case "accept", "job", "done", "failed", "cancelled":
		default:
			t.Errorf("op vocabulary changed: %q", op)
		}
	}
}

// TestWALQueuedCancelResolved: cancelling a queued job resolves its
// accept, so a later restart does not resurrect work the client
// explicitly abandoned.
func TestWALQueuedCancelResolved(t *testing.T) {
	dir := t.TempDir()
	// One worker pinned down by a slow job keeps the second submission
	// queued long enough to cancel it deterministically.
	s, _, wal := walServer(t, dir, Options{Workers: 1, QueueDepth: 4})
	slow := quickReq(51)
	slow.Vectors = 1 << 16
	slow.Iterations = 40
	v1, err := s.Submit(context.Background(), slow)
	if err != nil {
		t.Fatal(err)
	}
	v2, err := s.Submit(context.Background(), quickReq(52))
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Cancel(v2.ID); !ok {
		t.Fatal("cancel of queued job failed")
	}
	s.Cancel(v1.ID)
	waitServerDone(t, s, v1.ID)
	s.Close()
	wal.Close()

	wal2, err := OpenWAL(wal.Path())
	if err != nil {
		t.Fatal(err)
	}
	defer wal2.Close()
	if got := wal2.Pending(); len(got) != 0 {
		t.Fatalf("Pending() after cancels = %+v, want none", got)
	}
}

// TestWALDedupSingleExecution: N accepts of the SAME spec in a crashed
// WAL replay as one execution — the open scan collapses them to one
// pending entry per hash, so recovery cannot multiply work for deduped
// hashes.
func TestWALDedupSingleExecution(t *testing.T) {
	dir := t.TempDir()
	req := quickReq(61)
	sp, err := validate(req)
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	enc := json.NewEncoder(&b)
	for i := 0; i < 4; i++ {
		enc.Encode(walRecord{Op: walOpAccept, Hash: sp.hash, Req: &req}) //nolint:errcheck
	}
	if err := os.WriteFile(filepath.Join(dir, "queue.wal"), []byte(b.String()), 0o644); err != nil {
		t.Fatal(err)
	}
	s, _, _ := walServer(t, dir, Options{Workers: 2})
	views := s.Jobs()
	if len(views) != 1 {
		t.Fatalf("job table has %d jobs after deduped replay, want 1", len(views))
	}
	got := waitServerDone(t, s, views[0].ID)
	if got.Status != StatusDone {
		t.Fatalf("deduped replay ended %q", got.Status)
	}
	if n := s.Stats().Executed; n != 1 {
		t.Fatalf("deduped replay executed %d times, want 1", n)
	}
}

// TestWALJobTableSurvivesRestart is the durable-job-table property: a
// job id handed to a client before a crash keeps resolving on the
// restarted daemon — terminal status intact and the done result re-read
// from the store — and fresh ids never collide with remembered ones.
func TestWALJobTableSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	s1, _, wal1 := walServer(t, dir, Options{Workers: 1})
	v, err := s1.Submit(context.Background(), quickReq(71))
	if err != nil {
		t.Fatal(err)
	}
	done := waitServerDone(t, s1, v.ID)
	if done.Status != StatusDone {
		t.Fatalf("seed job ended %q", done.Status)
	}
	s1.Close()
	wal1.Close()

	st2, err := store.Open(filepath.Join(dir, "results.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	wal2, err := OpenWAL(wal1.Path())
	if err != nil {
		t.Fatal(err)
	}
	defer wal2.Close()
	s2 := New(Options{Store: st2, WAL: wal2, Logf: t.Logf})
	defer s2.Close()

	got, ok := s2.Job(v.ID)
	if !ok {
		t.Fatalf("restarted daemon forgot job id %s", v.ID)
	}
	if got.Status != StatusDone || got.Hash != v.Hash || !got.Cached {
		t.Fatalf("recovered view = %+v, want done/%s from store", got, v.Hash)
	}
	if got.Result == nil || got.Result.RatioCPD != done.Result.RatioCPD || got.Result.Err != done.Result.Err {
		t.Fatalf("recovered result %+v differs from original %+v", got.Result, done.Result)
	}
	// Cancel of a remembered terminal id reports it untouched, like any
	// other terminal job.
	if cv, ok := s2.Cancel(v.ID); !ok || cv.Status != StatusDone {
		t.Fatalf("Cancel(%s) on restarted daemon = (%+v, %v)", v.ID, cv, ok)
	}
	// The id sequence restarts past every remembered id: a new submission
	// must not reuse the promised id.
	nv, err := s2.Submit(context.Background(), quickReq(72))
	if err != nil {
		t.Fatal(err)
	}
	if nv.ID == v.ID {
		t.Fatalf("fresh job reused remembered id %s", v.ID)
	}
	if idSeq(nv.ID) <= idSeq(v.ID) {
		t.Fatalf("fresh id %s does not follow remembered id %s", nv.ID, v.ID)
	}
	waitServerDone(t, s2, nv.ID)
}

// TestEvictedJobIDStillResolves: terminal-job eviction (MaxJobs) leaves a
// tombstone behind, so a client polling an old id gets its final status
// and store-backed result instead of a 404.
func TestEvictedJobIDStillResolves(t *testing.T) {
	dir := t.TempDir()
	s, _, _ := walServer(t, dir, Options{Workers: 1, MaxJobs: 2})
	var views []JobView
	for seed := int64(81); seed <= 83; seed++ {
		v, err := s.Submit(context.Background(), quickReq(seed))
		if err != nil {
			t.Fatal(err)
		}
		done := waitServerDone(t, s, v.ID)
		if done.Status != StatusDone {
			t.Fatalf("job %s ended %q", v.ID, done.Status)
		}
		views = append(views, done)
	}
	// MaxJobs 2 forces the oldest terminal job out when the third arrives.
	if n := len(s.Jobs()); n >= 3 {
		t.Fatalf("job table holds %d jobs, eviction never happened", n)
	}
	first := views[0]
	got, ok := s.Job(first.ID)
	if !ok {
		t.Fatalf("evicted job id %s no longer resolves", first.ID)
	}
	if got.Status != StatusDone || got.Hash != first.Hash || got.Result == nil {
		t.Fatalf("evicted view = %+v, want done/%s with store-backed result", got, first.Hash)
	}
	if got.Result.RatioCPD != first.Result.RatioCPD {
		t.Fatalf("evicted result %+v differs from original %+v", got.Result, first.Result)
	}
}
