package service

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"
	"time"

	als "repro"
	"repro/internal/exp"
	"repro/internal/store"
)

// quickJob is the worker-API twin of quickReq: a canonical exp.Job spec.
func quickJob(seed int64) exp.Job {
	return exp.Job{
		Circuit: "Adder16",
		Method:  als.MethodDCGWO.String(),
		Metric:  als.MetricNMED.String(),
		Budget:  0.0244,
		Scale:   als.ScaleQuick.String(),
		Seed:    seed,
	}
}

// postBatch submits a job-spec batch and decodes the response.
func postBatch(t *testing.T, ts *httptest.Server, jobs ...exp.Job) (BatchResponse, int) {
	t.Helper()
	body, err := json.Marshal(BatchRequest{Jobs: jobs})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var br BatchResponse
	if err := json.NewDecoder(resp.Body).Decode(&br); err != nil {
		t.Fatal(err)
	}
	return br, resp.StatusCode
}

// getByHash fetches one job by content hash.
func getByHash(t *testing.T, ts *httptest.Server, hash string) (JobView, int) {
	t.Helper()
	resp, err := http.Get(ts.URL + "/v1/jobs/" + hash)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var v JobView
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil && resp.StatusCode < 400 {
		t.Fatal(err)
	}
	return v, resp.StatusCode
}

// waitDoneByHash polls the worker API until the hash reaches a terminal
// state.
func waitDoneByHash(t *testing.T, ts *httptest.Server, hash string) JobView {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		v, code := getByHash(t, ts, hash)
		if code != http.StatusOK {
			t.Fatalf("GET /v1/jobs/%s = %d", hash, code)
		}
		if v.Status.terminal() {
			return v
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("hash %s never finished", hash)
	return JobView{}
}

// TestBatchSubmitAndFetchByHash is the worker-API round trip: the hashes
// the server returns must equal the ones a coordinator computes locally,
// and fetching by hash must yield the finished result.
func TestBatchSubmitAndFetchByHash(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 2})

	jobs := []exp.Job{quickJob(5), quickJob(6)}
	br, code := postBatch(t, ts, jobs...)
	if code != http.StatusOK || len(br.Jobs) != 2 {
		t.Fatalf("batch submit: code=%d accepted=%d error=%q", code, len(br.Jobs), br.Error)
	}
	for i, v := range br.Jobs {
		want, err := jobs[i].Hash()
		if err != nil {
			t.Fatal(err)
		}
		if v.Hash != want {
			t.Fatalf("job %d: server hash %s, local hash %s", i, v.Hash, want)
		}
		got := waitDoneByHash(t, ts, v.Hash)
		if got.Status != StatusDone || got.Result == nil {
			t.Fatalf("job %d ended %q (error %q)", i, got.Status, got.Error)
		}
		if got.Result.RatioCPD <= 0 || got.Result.Evaluations <= 0 {
			t.Fatalf("job %d result implausible: %+v", i, got.Result)
		}
	}
}

// TestBatchSubmitDedupsAgainstFlowAPI: a spec batch and an equivalent
// /v1/flows submission share one content hash, so only one flow executes.
func TestBatchSubmitDedupsAgainstFlowAPI(t *testing.T) {
	s, ts := newTestServer(t, Options{})

	v, code := postFlow(t, ts, quickReq(9))
	if code != http.StatusAccepted {
		t.Fatalf("flow submit: %d", code)
	}
	waitDone(t, ts, v.ID)

	br, code := postBatch(t, ts, quickJob(9))
	if code != http.StatusOK || len(br.Jobs) != 1 {
		t.Fatalf("batch: code=%d accepted=%d", code, len(br.Jobs))
	}
	if br.Jobs[0].Status != StatusDone || !br.Jobs[0].Cached {
		t.Fatalf("equivalent spec must dedup against the finished flow: %+v", br.Jobs[0])
	}
	if st := s.Stats(); st.Executed != 1 {
		t.Fatalf("executed = %d, want 1", st.Executed)
	}
}

func TestFetchByHashSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "results.jsonl")
	st, err := store.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	s1 := New(Options{Store: st, Logf: t.Logf})
	ts1 := httptest.NewServer(s1.Handler())
	br, code := postBatch(t, ts1, quickJob(11))
	if code != http.StatusOK {
		t.Fatalf("submit: %d", code)
	}
	hash := br.Jobs[0].Hash
	first := waitDoneByHash(t, ts1, hash)
	ts1.Close()
	s1.Close()
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	st2, err := store.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	s2 := New(Options{Store: st2, Logf: t.Logf})
	ts2 := httptest.NewServer(s2.Handler())
	t.Cleanup(func() { ts2.Close(); s2.Close(); st2.Close() })

	v, code := getByHash(t, ts2, hash)
	if code != http.StatusOK || v.Status != StatusDone || !v.Cached || v.Result == nil {
		t.Fatalf("restarted worker must serve the hash from its store: code=%d view=%+v", code, v)
	}
	if v.Result.RatioCPD != first.Result.RatioCPD || v.Result.Evaluations != first.Result.Evaluations {
		t.Fatalf("restart changed the result: %+v vs %+v", v.Result, first.Result)
	}
}

func TestFetchUnknownHashIs404(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	if _, code := getByHash(t, ts, strings.Repeat("ab", 32)); code != http.StatusNotFound {
		t.Fatalf("unknown hash: code=%d, want 404", code)
	}
}

func TestBatchRejectsInvalidSpecWith400(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	bad := quickJob(1)
	bad.Circuit = "NoSuchCircuit"
	body, _ := json.Marshal(BatchRequest{Jobs: []exp.Job{bad}})
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("invalid spec: code=%d, want 400", resp.StatusCode)
	}
	var e map[string]string
	if err := json.NewDecoder(resp.Body).Decode(&e); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(e["error"], "NoSuchCircuit") {
		t.Fatalf("error must name the bad circuit: %q", e["error"])
	}

	if _, code := postBatch(t, ts); code != http.StatusBadRequest {
		t.Fatalf("empty batch: code=%d, want 400", code)
	}
}

// TestBatchDrainingReturns503: once the server drains, batch submissions
// are rejected with 503 so a coordinator fails over to another worker.
func TestBatchDrainingReturns503(t *testing.T) {
	s := New(Options{Logf: t.Logf})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	s.Close()

	br, code := postBatch(t, ts, quickJob(1))
	if code != http.StatusServiceUnavailable {
		t.Fatalf("draining batch: code=%d, want 503", code)
	}
	if br.Reason != ReasonDraining {
		t.Fatalf("503 must carry the machine-readable reason %q: %+v", ReasonDraining, br)
	}
	if !strings.Contains(br.Error, "draining") {
		t.Fatalf("503 body must name the cause: %+v", br)
	}
}
