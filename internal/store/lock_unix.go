//go:build unix

package store

import (
	"os"
	"syscall"
)

// flockFile takes an advisory flock(2) on f — exclusive for writers,
// shared for readers — blocking until granted and retrying EINTR.
func flockFile(f *os.File, exclusive bool) error {
	how := syscall.LOCK_SH
	if exclusive {
		how = syscall.LOCK_EX
	}
	for {
		err := syscall.Flock(int(f.Fd()), how)
		if err != syscall.EINTR {
			return err
		}
	}
}

func funlockFile(f *os.File) error {
	return syscall.Flock(int(f.Fd()), syscall.LOCK_UN)
}
