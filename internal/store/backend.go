// The Backend interface and the default JSONL implementation.
//
// A Backend is the raw content-addressed byte layer under a Store: an
// opaque-payload map keyed by canonical content hash (plus derived keys
// such as "<hash>/front"). Store layers JSON encoding, telemetry and the
// legacy convenience API on top, so every backend stays small and every
// consumer (the experiment scheduler, the serving daemon, the dispatch
// coordinator) is oblivious to which one is underneath.
package store

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"sync"
)

// Backend is a content-addressed byte store. Implementations must be safe
// for concurrent use by multiple goroutines; the embedded backend is
// additionally safe for concurrent use by multiple processes.
//
// Contract, shared by every implementation and pinned by the conformance
// suite in backend_test.go:
//
//   - Get returns (payload, true, nil) for a stored hash, (nil, false,
//     nil) for an absent one, and a non-nil error only for infrastructure
//     failures (I/O, transport) — absence is never an error.
//   - Put overwrites: the last write for a hash wins, matching the
//     append-log semantics the JSONL format always had.
//   - Scan visits every distinct stored hash exactly once, in first-
//     insertion order, with its latest payload; fn's error aborts the scan.
//   - Close releases resources. Implementations backed by an in-memory
//     index keep Get/Scan readable after Close; Put fails.
type Backend interface {
	Get(hash string) (payload []byte, ok bool, err error)
	Put(hash string, payload []byte) error
	Scan(fn func(hash string, payload []byte) error) error
	Close() error
}

// sizer and corrupter are optional Backend refinements: local backends
// know their record count and how many undecodable records they skipped
// at open without a Scan; the Store methods fall back to scanning (Len)
// or zero (Corrupt) otherwise.
type (
	sizer     interface{ Len() int }
	corrupter interface{ Corrupt() int }
)

// record is one JSONL line — also the wire shape of the remote backend's
// full-dump listing, and therefore a frozen contract (docs/STORAGE.md).
type record struct {
	Hash    string          `json:"hash"`
	Payload json.RawMessage `json:"payload"`
}

// jsonlBackend is the default file format: one JSON object per line,
// append-only, flushed per Put, fully indexed in memory at open. It is
// bit-compatible with every store file written since the format was
// introduced; Open auto-detects it (anything without the embedded
// backend's magic header).
//
// Concurrency: safe within one process. Two processes appending to one
// JSONL file interleave whole lines only by luck of the flush size — use
// the embedded backend when daemons must share a file.
type jsonlBackend struct {
	mu      sync.Mutex
	path    string
	f       *os.File
	w       *bufio.Writer
	mem     map[string][]byte
	order   []string // insertion order, for deterministic iteration
	corrupt int
}

// openJSONL loads (or creates) the JSONL file at path. Undecodable lines
// — e.g. the tail of a run killed mid-write — are skipped and counted in
// Corrupt(); every well-formed record is kept. A record whose hash
// repeats overwrites the earlier payload (last writer wins).
func openJSONL(path string) (*jsonlBackend, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("store: open: %w", err)
	}
	b := &jsonlBackend{path: path, f: f, mem: map[string][]byte{}}
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<24)
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var r record
		if err := json.Unmarshal(line, &r); err != nil || r.Hash == "" || len(r.Payload) == 0 {
			b.corrupt++
			continue
		}
		if _, seen := b.mem[r.Hash]; !seen {
			b.order = append(b.order, r.Hash)
		}
		b.mem[r.Hash] = append([]byte(nil), r.Payload...)
	}
	if err := sc.Err(); err != nil {
		f.Close()
		return nil, fmt.Errorf("store: scan %s: %w", path, err)
	}
	// A run killed mid-write leaves an unterminated partial line at the
	// tail. Terminate it before appending, or the first new record would
	// be glued onto the garbage and lost at the next open.
	if end, err := f.Seek(0, 2); err == nil && end > 0 {
		buf := make([]byte, 1)
		if _, err := f.ReadAt(buf, end-1); err == nil && buf[0] != '\n' {
			if _, err := f.Write([]byte("\n")); err != nil {
				f.Close()
				return nil, fmt.Errorf("store: terminate partial tail: %w", err)
			}
		}
	}
	b.w = bufio.NewWriter(f)
	return b, nil
}

func (b *jsonlBackend) Get(hash string) ([]byte, bool, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	p, ok := b.mem[hash]
	return p, ok, nil
}

func (b *jsonlBackend) Put(hash string, payload []byte) error {
	line, err := json.Marshal(record{Hash: hash, Payload: payload})
	if err != nil {
		return fmt.Errorf("store: put: %w", err)
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.f == nil {
		return fmt.Errorf("store: put %.12s…: store is closed", hash)
	}
	if _, err := b.w.Write(append(line, '\n')); err != nil {
		return fmt.Errorf("store: append: %w", err)
	}
	if err := b.w.Flush(); err != nil {
		return fmt.Errorf("store: flush: %w", err)
	}
	if _, seen := b.mem[hash]; !seen {
		b.order = append(b.order, hash)
	}
	b.mem[hash] = append([]byte(nil), payload...)
	return nil
}

func (b *jsonlBackend) Scan(fn func(hash string, payload []byte) error) error {
	b.mu.Lock()
	hashes := append([]string(nil), b.order...)
	b.mu.Unlock()
	for _, h := range hashes {
		b.mu.Lock()
		p := b.mem[h]
		b.mu.Unlock()
		if err := fn(h, p); err != nil {
			return err
		}
	}
	return nil
}

func (b *jsonlBackend) Len() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.mem)
}

func (b *jsonlBackend) Corrupt() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.corrupt
}

// Close flushes and closes the backing file. The in-memory index stays
// readable; further Puts fail.
func (b *jsonlBackend) Close() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.f == nil {
		return nil
	}
	flushErr := b.w.Flush()
	closeErr := b.f.Close()
	b.f = nil
	if flushErr != nil {
		return fmt.Errorf("store: close: %w", flushErr)
	}
	return closeErr
}
