package store

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

func TestHashStableAcrossFieldReordering(t *testing.T) {
	a := json.RawMessage(`{"circuit":"c880","seed":7,"budget":0.05,"nested":{"x":1,"y":[1,2,3]}}`)
	b := json.RawMessage(`{ "nested" : {"y":[1,2,3], "x": 1}, "budget" :0.05, "seed":7, "circuit":"c880" }`)
	ha, err := Hash(a)
	if err != nil {
		t.Fatal(err)
	}
	hb, err := Hash(b)
	if err != nil {
		t.Fatal(err)
	}
	if ha != hb {
		t.Fatalf("reordered fields changed the hash: %s vs %s", ha, hb)
	}
	// A changed value must change the hash.
	hc, err := Hash(json.RawMessage(`{"circuit":"c880","seed":8,"budget":0.05,"nested":{"x":1,"y":[1,2,3]}}`))
	if err != nil {
		t.Fatal(err)
	}
	if hc == ha {
		t.Fatal("different seed hashed identically")
	}
}

func TestHashStructMatchesEquivalentMap(t *testing.T) {
	type job struct {
		Circuit string  `json:"circuit"`
		Seed    int64   `json:"seed"`
		Budget  float64 `json:"budget"`
	}
	hs, err := Hash(job{Circuit: "Max16", Seed: 3, Budget: 0.0244})
	if err != nil {
		t.Fatal(err)
	}
	hm, err := Hash(map[string]any{"seed": 3, "budget": 0.0244, "circuit": "Max16"})
	if err != nil {
		t.Fatal(err)
	}
	if hs != hm {
		t.Fatalf("struct and equivalent map hash differently: %s vs %s", hs, hm)
	}
}

type payload struct {
	Ratio float64 `json:"ratio"`
	Evals int     `json:"evals"`
}

func TestJSONLRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "results.jsonl")
	s, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]payload{
		"h1": {Ratio: 0.8602, Evals: 120},
		"h2": {Ratio: 0.9219, Evals: 88},
		"h3": {Ratio: 0.3865, Evals: 512},
	}
	for h, p := range want {
		if err := s.Put(h, p); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	re, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if re.Len() != len(want) {
		t.Fatalf("reloaded %d records, want %d", re.Len(), len(want))
	}
	if re.Corrupt() != 0 {
		t.Fatalf("clean file reported %d corrupt lines", re.Corrupt())
	}
	for h, p := range want {
		var got payload
		ok, err := re.Decode(h, &got)
		if err != nil || !ok {
			t.Fatalf("decode %s: ok=%v err=%v", h, ok, err)
		}
		if got != p {
			t.Fatalf("%s round-tripped to %+v, want %+v", h, got, p)
		}
	}
	if _, ok := re.Get("missing"); ok {
		t.Fatal("absent hash reported present")
	}
}

func TestCorruptLineRecovery(t *testing.T) {
	path := filepath.Join(t.TempDir(), "results.jsonl")
	s, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put("good1", payload{Ratio: 1}); err != nil {
		t.Fatal(err)
	}
	if err := s.Put("good2", payload{Ratio: 2}); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Simulate a crash mid-write plus stray garbage between valid records:
	// truncate the last line and interleave junk.
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSuffix(string(raw), "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("expected 2 lines, got %d", len(lines))
	}
	mangled := "not json at all\n" + lines[0] + "\n{\"hash\":\"\"}\n" + lines[1][:len(lines[1])/2] + "\n"
	if err := os.WriteFile(path, []byte(mangled), 0o644); err != nil {
		t.Fatal(err)
	}

	re, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if re.Len() != 1 {
		t.Fatalf("recovered %d records, want 1 (good1)", re.Len())
	}
	var got payload
	if ok, err := re.Decode("good1", &got); !ok || err != nil || got.Ratio != 1 {
		t.Fatalf("good1 lost after corruption: ok=%v err=%v got=%+v", ok, err, got)
	}
	if re.Corrupt() != 3 {
		t.Fatalf("Corrupt() = %d, want 3 (garbage, empty-hash, truncated)", re.Corrupt())
	}
	// Appending after recovery must still produce a loadable file.
	if err := re.Put("good3", payload{Ratio: 3}); err != nil {
		t.Fatal(err)
	}
	if err := re.Close(); err != nil {
		t.Fatal(err)
	}
	re2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer re2.Close()
	if re2.Len() != 2 {
		t.Fatalf("after append-and-reload Len = %d, want 2", re2.Len())
	}
}

func TestPutAfterUnterminatedTailSurvivesReopen(t *testing.T) {
	path := filepath.Join(t.TempDir(), "results.jsonl")
	s, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put("good1", payload{Ratio: 1}); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// Kill mid-write: the tail line is truncated and has NO trailing
	// newline.
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	partial := append(raw, []byte(`{"hash":"bbbb","payload":{"x"`)...)
	if err := os.WriteFile(path, partial, 0o644); err != nil {
		t.Fatal(err)
	}

	// The resumed run recomputes the lost cell and persists it; the new
	// record must not be glued onto the partial line.
	re, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if re.Corrupt() != 1 {
		t.Fatalf("Corrupt() = %d, want 1", re.Corrupt())
	}
	if err := re.Put("good2", payload{Ratio: 2}); err != nil {
		t.Fatal(err)
	}
	if err := re.Close(); err != nil {
		t.Fatal(err)
	}

	re2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer re2.Close()
	if re2.Len() != 2 {
		t.Fatalf("after reopen Len = %d, want 2 (good1 + good2)", re2.Len())
	}
	var got payload
	if ok, err := re2.Decode("good2", &got); !ok || err != nil || got.Ratio != 2 {
		t.Fatalf("record written after a partial tail was lost: ok=%v err=%v got=%+v", ok, err, got)
	}
	if re2.Corrupt() != 1 {
		t.Fatalf("reopen Corrupt() = %d, want 1 (terminated partial line)", re2.Corrupt())
	}
}

func TestResumeSkipsFinishedJobs(t *testing.T) {
	path := filepath.Join(t.TempDir(), "results.jsonl")
	jobs := []string{"a", "b", "c", "d"}

	// First run finishes two jobs, then "dies".
	s, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	executed := 0
	runAll := func(st *Store, upTo int) {
		for i, h := range jobs {
			if i >= upTo {
				return
			}
			if _, done := st.Get(h); done {
				continue
			}
			executed++
			if err := st.Put(h, payload{Ratio: float64(i)}); err != nil {
				t.Fatal(err)
			}
		}
	}
	runAll(s, 2)
	if executed != 2 {
		t.Fatalf("first run executed %d, want 2", executed)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Resumed run executes only the remaining jobs.
	re, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	runAll(re, len(jobs))
	if executed != len(jobs) {
		t.Fatalf("resume re-executed finished jobs: total executed %d, want %d", executed, len(jobs))
	}
	if re.Len() != len(jobs) {
		t.Fatalf("store has %d records, want %d", re.Len(), len(jobs))
	}
}

func TestPutOverwritesLastWriterWins(t *testing.T) {
	path := filepath.Join(t.TempDir(), "results.jsonl")
	s, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put("h", payload{Ratio: 1}); err != nil {
		t.Fatal(err)
	}
	if err := s.Put("h", payload{Ratio: 2}); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	re, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	var got payload
	if ok, err := re.Decode("h", &got); !ok || err != nil {
		t.Fatal(ok, err)
	}
	if got.Ratio != 2 {
		t.Fatalf("last writer must win, got ratio %v", got.Ratio)
	}
	if re.Len() != 1 || len(re.Hashes()) != 1 {
		t.Fatal("duplicate hash must not duplicate the index")
	}
}

// TestConcurrentPutIsTornFree hammers one store from many goroutines —
// the access pattern of a multi-lane dispatch run streaming cells back
// concurrently. Requirements: race-clean, every JSONL line intact (no
// interleaved or torn writes), and a reload sees every record with its
// exact payload.
func TestConcurrentPutIsTornFree(t *testing.T) {
	const goroutines, puts = 16, 64
	path := filepath.Join(t.TempDir(), "results.jsonl")
	s, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < puts; i++ {
				hash := fmt.Sprintf("g%02d-i%02d", g, i)
				if err := s.Put(hash, payload{Ratio: float64(g) + float64(i)/1000, Evals: g*puts + i}); err != nil {
					t.Errorf("Put(%s): %v", hash, err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if s.Len() != goroutines*puts {
		t.Fatalf("in-memory index has %d records, want %d", s.Len(), goroutines*puts)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Every line on disk must be an intact record: one JSON object per
	// line, no fragments of two writes glued together.
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(string(raw), "\n"), "\n")
	if len(lines) != goroutines*puts {
		t.Fatalf("file has %d lines, want %d", len(lines), goroutines*puts)
	}
	for i, line := range lines {
		var rec struct {
			Hash    string          `json:"hash"`
			Payload json.RawMessage `json:"payload"`
		}
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("line %d is torn: %v\n%s", i+1, err, line)
		}
		if rec.Hash == "" || len(rec.Payload) == 0 {
			t.Fatalf("line %d lost fields: %s", i+1, line)
		}
	}

	// A reload must decode every record to the exact payload written.
	re, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if re.Corrupt() != 0 {
		t.Fatalf("reload found %d corrupt line(s)", re.Corrupt())
	}
	if re.Len() != goroutines*puts {
		t.Fatalf("reload has %d records, want %d", re.Len(), goroutines*puts)
	}
	for g := 0; g < goroutines; g++ {
		for i := 0; i < puts; i++ {
			hash := fmt.Sprintf("g%02d-i%02d", g, i)
			var got payload
			if ok, err := re.Decode(hash, &got); !ok || err != nil {
				t.Fatalf("record %s lost: ok=%v err=%v", hash, ok, err)
			}
			if want := (payload{Ratio: float64(g) + float64(i)/1000, Evals: g*puts + i}); got != want {
				t.Fatalf("record %s = %+v, want %+v", hash, got, want)
			}
		}
	}
}
