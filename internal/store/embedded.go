// The embedded backend: a single-file, log-structured, binary store that
// two daemons may open concurrently. It exists for the deployment the
// JSONL format cannot serve: several alsd processes on one host sharing
// one dedup cache through the filesystem, with no external database.
package store

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sync"
)

// embMagic is the file-format header Open sniffs to auto-detect an
// embedded store. JSONL records always start with '{', so the formats can
// never be confused.
const embMagic = "ALSEMBED1\n"

// Frame sanity bounds. A header whose lengths exceed them is treated as a
// torn tail, not a record.
const (
	embMaxKey = 4 << 10
	embMaxVal = 64 << 20
)

// embeddedBackend appends length-prefixed, CRC-framed records to one
// file:
//
//	magic "ALSEMBED1\n"
//	record := keyLen(u32 LE) valLen(u32 LE) key val crc32(u32 LE, IEEE(key‖val))
//
// Crash safety: a process killed mid-append leaves a torn frame at the
// tail; the CRC (or an implausible header) detects it, readers stop at
// the last whole record, and the next exclusive-lock operation truncates
// the garbage before appending. Every record before the tail is kept.
//
// Multi-process safety: every write takes an exclusive flock(2) on the
// file and every cold read a shared one, and each operation first
// re-scans the log from the last known-good offset — appends are the only
// mutation, so another daemon's writes are picked up incrementally, never
// re-read from the start. Within a process a mutex serializes operations.
//
// Like the JSONL backend it keeps the full payload index in memory:
// results here are small JSON records, and the trade buys lock-free warm
// Gets.
type embeddedBackend struct {
	mu      sync.Mutex
	path    string
	f       *os.File
	mem     map[string][]byte
	order   []string
	corrupt int
	off     int64 // end of the last whole record we have parsed
}

func openEmbedded(path string) (*embeddedBackend, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("store: open: %w", err)
	}
	b := &embeddedBackend{path: path, f: f, mem: map[string][]byte{}}
	if err := flockFile(f, true); err != nil {
		f.Close()
		return nil, fmt.Errorf("store: lock %s: %w", path, err)
	}
	defer funlockFile(f) //nolint:errcheck // advisory unlock; close drops it anyway
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("store: stat %s: %w", path, err)
	}
	if st.Size() == 0 {
		if _, err := f.WriteAt([]byte(embMagic), 0); err != nil {
			f.Close()
			return nil, fmt.Errorf("store: write magic: %w", err)
		}
	} else {
		hdr := make([]byte, len(embMagic))
		if _, err := f.ReadAt(hdr, 0); err != nil || string(hdr) != embMagic {
			f.Close()
			return nil, fmt.Errorf("store: %s is not an embedded store (bad or short magic header)", path)
		}
	}
	b.off = int64(len(embMagic))
	if err := b.refreshLocked(true); err != nil {
		f.Close()
		return nil, err
	}
	return b, nil
}

// refreshLocked parses records from b.off to EOF into the index. The
// caller holds b.mu and an flock (shared is enough to read; heal requires
// exclusive). With heal set, a torn tail is counted corrupt and truncated
// so the next append lands on a record boundary; without it (shared lock)
// the garbage is simply not advanced over.
func (b *embeddedBackend) refreshLocked(heal bool) error {
	end, err := b.f.Seek(0, io.SeekEnd)
	if err != nil {
		return fmt.Errorf("store: seek %s: %w", b.path, err)
	}
	if end < b.off {
		// The file shrank under us — some other tool truncated it. Refuse
		// to guess; re-opening rebuilds a consistent index.
		return fmt.Errorf("store: %s shrank from offset %d to %d (truncated by another process?)", b.path, b.off, end)
	}
	r := bufio.NewReader(io.NewSectionReader(b.f, b.off, end-b.off))
	off := b.off
	for {
		var hdr [8]byte
		if _, err := io.ReadFull(r, hdr[:]); err != nil {
			break // clean EOF or torn header
		}
		klen := binary.LittleEndian.Uint32(hdr[0:4])
		vlen := binary.LittleEndian.Uint32(hdr[4:8])
		if klen == 0 || klen > embMaxKey || vlen > embMaxVal {
			break // implausible header: torn tail
		}
		buf := make([]byte, int(klen)+int(vlen)+4)
		if _, err := io.ReadFull(r, buf); err != nil {
			break
		}
		body := buf[:klen+vlen]
		if crc32.ChecksumIEEE(body) != binary.LittleEndian.Uint32(buf[klen+vlen:]) {
			break
		}
		key := string(buf[:klen])
		if _, seen := b.mem[key]; !seen {
			b.order = append(b.order, key)
		}
		b.mem[key] = append([]byte(nil), buf[klen:klen+vlen]...)
		off += 8 + int64(len(buf))
	}
	b.off = off
	if end > off && heal {
		// Torn tail from a crashed writer. We hold the exclusive lock, so
		// no live writer can be mid-append: truncate the garbage away.
		b.corrupt++
		if err := b.f.Truncate(off); err != nil {
			return fmt.Errorf("store: truncate torn tail of %s: %w", b.path, err)
		}
	}
	return nil
}

func (b *embeddedBackend) Get(hash string) ([]byte, bool, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if p, ok := b.mem[hash]; ok {
		return p, true, nil
	}
	if b.f == nil {
		return nil, false, nil
	}
	// Cold miss: another process may have appended it. Rescan the tail
	// under a shared lock, then decide.
	if err := flockFile(b.f, false); err != nil {
		return nil, false, fmt.Errorf("store: lock %s: %w", b.path, err)
	}
	err := b.refreshLocked(false)
	funlockFile(b.f) //nolint:errcheck // advisory unlock
	if err != nil {
		return nil, false, err
	}
	p, ok := b.mem[hash]
	return p, ok, nil
}

func (b *embeddedBackend) Put(hash string, payload []byte) error {
	if hash == "" || len(hash) > embMaxKey {
		return fmt.Errorf("store: put: key length %d out of range (0, %d]", len(hash), embMaxKey)
	}
	if len(payload) > embMaxVal {
		return fmt.Errorf("store: put %.12s…: payload of %d bytes exceeds %d", hash, len(payload), embMaxVal)
	}
	rec := make([]byte, 8+len(hash)+len(payload)+4)
	binary.LittleEndian.PutUint32(rec[0:4], uint32(len(hash)))
	binary.LittleEndian.PutUint32(rec[4:8], uint32(len(payload)))
	copy(rec[8:], hash)
	copy(rec[8+len(hash):], payload)
	binary.LittleEndian.PutUint32(rec[8+len(hash)+len(payload):], crc32.ChecksumIEEE(rec[8:8+len(hash)+len(payload)]))

	b.mu.Lock()
	defer b.mu.Unlock()
	if b.f == nil {
		return fmt.Errorf("store: put %.12s…: store is closed", hash)
	}
	if err := flockFile(b.f, true); err != nil {
		return fmt.Errorf("store: lock %s: %w", b.path, err)
	}
	defer funlockFile(b.f) //nolint:errcheck // advisory unlock
	// Catch up on other writers (and heal any torn tail) so the append
	// lands exactly at the end of the last whole record.
	if err := b.refreshLocked(true); err != nil {
		return err
	}
	if _, err := b.f.WriteAt(rec, b.off); err != nil {
		return fmt.Errorf("store: append %s: %w", b.path, err)
	}
	b.off += int64(len(rec))
	if _, seen := b.mem[hash]; !seen {
		b.order = append(b.order, hash)
	}
	b.mem[hash] = append([]byte(nil), payload...)
	return nil
}

func (b *embeddedBackend) Scan(fn func(hash string, payload []byte) error) error {
	b.mu.Lock()
	if b.f != nil {
		if err := flockFile(b.f, false); err != nil {
			b.mu.Unlock()
			return fmt.Errorf("store: lock %s: %w", b.path, err)
		}
		err := b.refreshLocked(false)
		funlockFile(b.f) //nolint:errcheck // advisory unlock
		if err != nil {
			b.mu.Unlock()
			return err
		}
	}
	hashes := append([]string(nil), b.order...)
	b.mu.Unlock()
	for _, h := range hashes {
		b.mu.Lock()
		p := b.mem[h]
		b.mu.Unlock()
		if err := fn(h, p); err != nil {
			return err
		}
	}
	return nil
}

func (b *embeddedBackend) Len() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.mem)
}

func (b *embeddedBackend) Corrupt() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.corrupt
}

// Close closes the backing file (dropping its locks). The in-memory index
// stays readable; further Puts — and cross-process refreshes — fail.
func (b *embeddedBackend) Close() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.f == nil {
		return nil
	}
	err := b.f.Close()
	b.f = nil
	return err
}
