// Package store persists per-job experiment results as append-only JSONL
// keyed by a canonical content hash of the job specification.
//
// The store is the substrate of the experiment orchestrator's -resume and
// caching behavior: a scheduler asks Get(hash) before running a job and
// Put(hash, result) after, so a re-run — or a run killed halfway and
// re-invoked — skips every finished cell. One line holds one record:
//
//	{"hash":"<hex sha-256>","payload":{...}}
//
// Records are flushed per Put, so a crash loses at most the line being
// written; Open tolerates (and counts) corrupt or truncated lines, keeping
// every decodable record before and after them.
//
// A Store can be instrumented with telemetry counters (Instrument) so a
// serving daemon's /metrics endpoint reports cache traffic — lookups,
// hits and writes — without the store growing a metrics dependency on its
// own hot path beyond three nil checks.
package store

import (
	"bufio"
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"sync"

	"repro/internal/telemetry"
)

// Hash returns the canonical content hash (hex SHA-256) of any
// JSON-marshalable value. The value is marshaled, decoded into generic
// form and re-marshaled, so object keys are serialized in sorted order and
// insignificant whitespace is dropped: two values that represent the same
// logical object hash identically regardless of field order or
// formatting. Numbers are kept as their literal JSON tokens (json.Number),
// so no float re-formatting can perturb the hash.
func Hash(v any) (string, error) {
	raw, err := json.Marshal(v)
	if err != nil {
		return "", fmt.Errorf("store: hash: %w", err)
	}
	canon, err := canonicalize(raw)
	if err != nil {
		return "", fmt.Errorf("store: hash: %w", err)
	}
	sum := sha256.Sum256(canon)
	return hex.EncodeToString(sum[:]), nil
}

// canonicalize round-trips raw JSON through generic decoding so maps
// (and therefore object keys) re-marshal sorted.
func canonicalize(raw []byte) ([]byte, error) {
	dec := json.NewDecoder(bytes.NewReader(raw))
	dec.UseNumber()
	var v any
	if err := dec.Decode(&v); err != nil {
		return nil, err
	}
	return json.Marshal(v)
}

// record is one JSONL line.
type record struct {
	Hash    string          `json:"hash"`
	Payload json.RawMessage `json:"payload"`
}

// Store is a hash-keyed result cache backed by one JSONL file. All methods
// are safe for concurrent use.
type Store struct {
	mu      sync.Mutex
	path    string
	f       *os.File
	w       *bufio.Writer
	mem     map[string]json.RawMessage
	order   []string // insertion order, for deterministic iteration
	corrupt int

	// Optional telemetry (Instrument); nil counters are simply not bumped.
	cPuts, cGets, cHits *telemetry.Counter
}

// Instrument attaches telemetry counters: puts counts Put calls, gets
// counts Get/Decode lookups, hits the lookups that found a record. Any
// counter may be nil. Counters are bumped under the store mutex, so
// Instrument may be called at any time, including between operations of a
// live daemon (in practice it is called once, right after Open).
func (s *Store) Instrument(puts, gets, hits *telemetry.Counter) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.cPuts, s.cGets, s.cHits = puts, gets, hits
}

// Open loads (or creates) the store at path. Undecodable lines — e.g. the
// tail of a run killed mid-write — are skipped and counted in Corrupt();
// every well-formed record is kept. A record whose hash repeats overwrites
// the earlier payload (last writer wins), matching append semantics.
func Open(path string) (*Store, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("store: open: %w", err)
	}
	s := &Store{path: path, f: f, mem: map[string]json.RawMessage{}}
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<24)
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var r record
		if err := json.Unmarshal(line, &r); err != nil || r.Hash == "" || len(r.Payload) == 0 {
			s.corrupt++
			continue
		}
		if _, seen := s.mem[r.Hash]; !seen {
			s.order = append(s.order, r.Hash)
		}
		s.mem[r.Hash] = append(json.RawMessage(nil), r.Payload...)
	}
	if err := sc.Err(); err != nil {
		f.Close()
		return nil, fmt.Errorf("store: scan %s: %w", path, err)
	}
	// A run killed mid-write leaves an unterminated partial line at the
	// tail. Terminate it before appending, or the first new record would
	// be glued onto the garbage and lost at the next Open.
	if end, err := f.Seek(0, 2); err == nil && end > 0 {
		buf := make([]byte, 1)
		if _, err := f.ReadAt(buf, end-1); err == nil && buf[0] != '\n' {
			if _, err := f.Write([]byte("\n")); err != nil {
				f.Close()
				return nil, fmt.Errorf("store: terminate partial tail: %w", err)
			}
		}
	}
	s.w = bufio.NewWriter(f)
	return s, nil
}

// Get returns the stored payload for hash, if present.
func (s *Store) Get(hash string) (json.RawMessage, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.cGets != nil {
		s.cGets.Inc()
	}
	p, ok := s.mem[hash]
	if ok && s.cHits != nil {
		s.cHits.Inc()
	}
	return p, ok
}

// Decode unmarshals the stored payload for hash into out, reporting
// whether the hash was present. A present-but-undecodable payload is an
// error (the caller's schema disagrees with the file).
func (s *Store) Decode(hash string, out any) (bool, error) {
	p, ok := s.Get(hash)
	if !ok {
		return false, nil
	}
	if err := json.Unmarshal(p, out); err != nil {
		return true, fmt.Errorf("store: payload for %.12s…: %w", hash, err)
	}
	return true, nil
}

// Put marshals payload, appends the record to the file and flushes it, and
// updates the in-memory index.
func (s *Store) Put(hash string, payload any) error {
	raw, err := json.Marshal(payload)
	if err != nil {
		return fmt.Errorf("store: put: %w", err)
	}
	line, err := json.Marshal(record{Hash: hash, Payload: raw})
	if err != nil {
		return fmt.Errorf("store: put: %w", err)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.cPuts != nil {
		s.cPuts.Inc()
	}
	if _, err := s.w.Write(append(line, '\n')); err != nil {
		return fmt.Errorf("store: append: %w", err)
	}
	if err := s.w.Flush(); err != nil {
		return fmt.Errorf("store: flush: %w", err)
	}
	if _, seen := s.mem[hash]; !seen {
		s.order = append(s.order, hash)
	}
	s.mem[hash] = raw
	return nil
}

// Len counts distinct stored hashes.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.mem)
}

// Hashes returns the distinct stored hashes in first-insertion order.
func (s *Store) Hashes() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]string(nil), s.order...)
}

// Corrupt reports how many undecodable lines Open skipped.
func (s *Store) Corrupt() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.corrupt
}

// Path returns the backing file's path.
func (s *Store) Path() string { return s.path }

// Close flushes and closes the backing file. The in-memory index stays
// readable; further Puts fail.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.f == nil {
		return nil
	}
	flushErr := s.w.Flush()
	closeErr := s.f.Close()
	s.f = nil
	if flushErr != nil {
		return fmt.Errorf("store: close: %w", flushErr)
	}
	return closeErr
}
