// Package store persists per-job experiment results keyed by a canonical
// content hash of the job specification, over a pluggable storage
// backend.
//
// The store is the substrate of the experiment orchestrator's -resume and
// caching behavior and of the serving daemon's restart-safe result cache:
// a scheduler asks Get(hash) before running a job and Put(hash, result)
// after, so a re-run — or a run killed halfway and re-invoked — skips
// every finished cell. Payloads are opaque JSON; keys are the hex SHA-256
// content hash (Hash) plus derived keys such as "<hash>/front".
//
// Three backends implement the same content-addressed contract (the
// Backend interface in backend.go; docs/STORAGE.md is the operator-facing
// matrix):
//
//   - JSONL (default): one {"hash":...,"payload":...} object per line,
//     append-only, flushed per Put, corrupt-line tolerant. Bit-compatible
//     with every store file this repo ever wrote. Single-process.
//   - Embedded: a single-file, CRC-framed binary log safe for several
//     daemons on one host via flock(2); torn tails from a SIGKILLed
//     writer are detected and healed (embedded.go).
//   - Remote: an HTTP client for the GET/PUT /store/{hash} surface every
//     alsd serves, so a worker fleet shares one dedup cache (remote.go).
//
// Open auto-detects the format (an embedded file carries a magic header;
// an http(s) target is remote; anything else is JSONL), so existing
// callers and store files keep working unchanged.
//
// A Store can be instrumented with telemetry counters (Instrument) so a
// serving daemon's /metrics endpoint reports cache traffic — lookups,
// hits and writes — without the store growing a metrics dependency on its
// own hot path beyond three nil checks.
package store

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"sync"

	"repro/internal/telemetry"
)

// Hash returns the canonical content hash (hex SHA-256) of any
// JSON-marshalable value. The value is marshaled, decoded into generic
// form and re-marshaled, so object keys are serialized in sorted order and
// insignificant whitespace is dropped: two values that represent the same
// logical object hash identically regardless of field order or
// formatting. Numbers are kept as their literal JSON tokens (json.Number),
// so no float re-formatting can perturb the hash.
func Hash(v any) (string, error) {
	raw, err := json.Marshal(v)
	if err != nil {
		return "", fmt.Errorf("store: hash: %w", err)
	}
	canon, err := canonicalize(raw)
	if err != nil {
		return "", fmt.Errorf("store: hash: %w", err)
	}
	sum := sha256.Sum256(canon)
	return hex.EncodeToString(sum[:]), nil
}

// canonicalize round-trips raw JSON through generic decoding so maps
// (and therefore object keys) re-marshal sorted.
func canonicalize(raw []byte) ([]byte, error) {
	dec := json.NewDecoder(bytes.NewReader(raw))
	dec.UseNumber()
	var v any
	if err := dec.Decode(&v); err != nil {
		return nil, err
	}
	return json.Marshal(v)
}

// Store is a hash-keyed result cache over one Backend. All methods are
// safe for concurrent use. Create one with Open (auto-detect), OpenKind,
// or a specific constructor (OpenJSONL, OpenEmbedded, OpenRemote).
type Store struct {
	b    Backend
	kind string // "jsonl", "embedded" or "remote"
	desc string // path or base URL, for messages

	// Optional telemetry (Instrument); nil counters are simply not bumped.
	mu                  sync.Mutex
	cPuts, cGets, cHits *telemetry.Counter
}

// Open loads (or creates) the store at target, auto-detecting the
// backend: an http(s) URL is a remote store, a file carrying the embedded
// magic header is an embedded store, anything else — including a new or
// empty file — is the default JSONL format.
func Open(target string) (*Store, error) {
	return OpenKind("auto", target)
}

// OpenKind opens target as an explicit backend kind: "jsonl", "embedded",
// "remote" (target is the base URL of an alsd serving /store), or
// "auto"/"" for Open's detection.
func OpenKind(kind, target string) (*Store, error) {
	switch kind {
	case "", "auto":
		if strings.HasPrefix(target, "http://") || strings.HasPrefix(target, "https://") {
			return OpenRemote(target, nil)
		}
		embedded, err := sniffEmbedded(target)
		if err != nil {
			return nil, err
		}
		if embedded {
			return OpenEmbedded(target)
		}
		return OpenJSONL(target)
	case "jsonl":
		return OpenJSONL(target)
	case "embedded":
		return OpenEmbedded(target)
	case "remote":
		return OpenRemote(target, nil)
	default:
		return nil, fmt.Errorf("store: unknown backend kind %q (valid: auto, jsonl, embedded, remote)", kind)
	}
}

// sniffEmbedded reports whether the file at path starts with the embedded
// backend's magic header. A missing or short file is not embedded.
func sniffEmbedded(path string) (bool, error) {
	f, err := os.Open(path)
	if err != nil {
		return false, nil // missing/unreadable: let the real open report it
	}
	defer f.Close()
	hdr := make([]byte, len(embMagic))
	if _, err := io.ReadFull(f, hdr); err != nil {
		return false, nil
	}
	return string(hdr) == embMagic, nil
}

// OpenJSONL opens target as a JSONL store (the default file format).
func OpenJSONL(path string) (*Store, error) {
	b, err := openJSONL(path)
	if err != nil {
		return nil, err
	}
	return &Store{b: b, kind: "jsonl", desc: path}, nil
}

// OpenEmbedded opens target as an embedded (single-file binary log)
// store, creating it if absent. The file may be shared by several
// processes on one host; see embeddedBackend.
func OpenEmbedded(path string) (*Store, error) {
	b, err := openEmbedded(path)
	if err != nil {
		return nil, err
	}
	return &Store{b: b, kind: "embedded", desc: path}, nil
}

// OpenRemote opens the store served by the alsd at baseURL (its
// GET/PUT /store/{hash} surface). A nil client gets a 30-second-timeout
// default.
func OpenRemote(baseURL string, client *http.Client) (*Store, error) {
	b, err := openRemote(baseURL, client)
	if err != nil {
		return nil, err
	}
	return &Store{b: b, kind: "remote", desc: b.base}, nil
}

// Instrument attaches telemetry counters: puts counts Put calls, gets
// counts Get/Decode lookups, hits the lookups that found a record. Any
// counter may be nil. Instrument may be called at any time, including
// between operations of a live daemon (in practice it is called once,
// right after Open).
func (s *Store) Instrument(puts, gets, hits *telemetry.Counter) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.cPuts, s.cGets, s.cHits = puts, gets, hits
}

func (s *Store) bump(c **telemetry.Counter) {
	s.mu.Lock()
	if *c != nil {
		(*c).Inc()
	}
	s.mu.Unlock()
}

// Get returns the stored payload for hash, if present. A backend
// infrastructure error (e.g. an unreachable remote store) reads as a
// miss here — the cache is advisory on this legacy path; use Decode
// where a transport failure must be distinguished from absence.
func (s *Store) Get(hash string) (json.RawMessage, bool) {
	s.bump(&s.cGets)
	p, ok, err := s.b.Get(hash)
	if err != nil || !ok {
		return nil, false
	}
	s.bump(&s.cHits)
	return p, true
}

// Decode unmarshals the stored payload for hash into out, reporting
// whether the hash was present. A present-but-undecodable payload is an
// error (the caller's schema disagrees with the record), and so is a
// backend infrastructure failure — absence alone is (false, nil).
func (s *Store) Decode(hash string, out any) (bool, error) {
	s.bump(&s.cGets)
	p, ok, err := s.b.Get(hash)
	if err != nil {
		return false, err
	}
	if !ok {
		return false, nil
	}
	s.bump(&s.cHits)
	if err := json.Unmarshal(p, out); err != nil {
		return true, fmt.Errorf("store: payload for %.12s…: %w", hash, err)
	}
	return true, nil
}

// Put marshals payload and stores it under hash, overwriting any earlier
// record (last writer wins). Local backends have flushed the record to
// the file when Put returns.
func (s *Store) Put(hash string, payload any) error {
	raw, err := json.Marshal(payload)
	if err != nil {
		return fmt.Errorf("store: put: %w", err)
	}
	return s.PutRaw(hash, raw)
}

// PutRaw stores an already-marshaled JSON payload under hash. The payload
// must be valid JSON — the JSONL format embeds it verbatim in its record
// line, so garbage here would corrupt the line for every later reader.
func (s *Store) PutRaw(hash string, raw json.RawMessage) error {
	if !json.Valid(raw) {
		return fmt.Errorf("store: put %.12s…: payload is not valid JSON", hash)
	}
	s.bump(&s.cPuts)
	return s.b.Put(hash, raw)
}

// Scan visits every stored record in first-insertion order.
func (s *Store) Scan(fn func(hash string, payload json.RawMessage) error) error {
	return s.b.Scan(func(h string, p []byte) error { return fn(h, p) })
}

// Export writes every record as JSONL — exactly the default backend's
// file format, so the output of Export (and of GET /store/ on a daemon)
// is itself a valid JSONL store file. This is the migration path between
// backends; see docs/STORAGE.md.
func (s *Store) Export(w io.Writer) error {
	enc := json.NewEncoder(w)
	return s.b.Scan(func(h string, p []byte) error {
		return enc.Encode(record{Hash: h, Payload: p})
	})
}

// Len counts distinct stored hashes. Local backends answer from their
// index; a remote store is scanned (0 on transport failure — Len is a
// convenience for startup logging, not a correctness primitive).
func (s *Store) Len() int {
	if b, ok := s.b.(sizer); ok {
		return b.Len()
	}
	n := 0
	if err := s.b.Scan(func(string, []byte) error { n++; return nil }); err != nil {
		return 0
	}
	return n
}

// Hashes returns the distinct stored hashes in first-insertion order.
func (s *Store) Hashes() []string {
	var hs []string
	if err := s.b.Scan(func(h string, _ []byte) error { hs = append(hs, h); return nil }); err != nil {
		return nil
	}
	return hs
}

// Corrupt reports how many undecodable records the backend skipped (and,
// for the embedded backend, healed) at open. Remote stores report 0 —
// corruption is accounted where the file lives.
func (s *Store) Corrupt() int {
	if b, ok := s.b.(corrupter); ok {
		return b.Corrupt()
	}
	return 0
}

// Kind names the backend: "jsonl", "embedded" or "remote".
func (s *Store) Kind() string { return s.kind }

// Path returns the backing file's path, or the remote store's base URL.
func (s *Store) Path() string { return s.desc }

// Close releases the backend's resources. For file backends the
// in-memory index stays readable; further Puts fail.
func (s *Store) Close() error { return s.b.Close() }
