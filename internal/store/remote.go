// The remote backend: a thin HTTP client for the store surface every
// alsd daemon serves (GET/PUT /store/{hash}, GET /store/ for the full
// dump). It lets a worker fleet share one dedup cache — a worker opened
// with -store-remote persists into (and answers repeats from) the hub's
// store, so a restarted worker forgets nothing the fleet ever computed.
package store

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strings"
	"time"
)

// remoteBackend speaks the /store protocol:
//
//	GET /store/{hash}   200 + raw JSON payload | 404 absent
//	PUT /store/{hash}   payload in the body → 204
//	GET /store/         full dump, one JSONL record per line
//
// Transport failures surface as errors from Get/Put/Scan; the Store
// wrapper's legacy Get treats them as misses (the cache is advisory)
// while Decode — the path the scheduler and the daemon use — propagates
// them, so a dead hub fails a sweep fast instead of silently recomputing.
type remoteBackend struct {
	base   string
	client *http.Client
}

func openRemote(baseURL string, client *http.Client) (*remoteBackend, error) {
	u, err := url.Parse(baseURL)
	if err != nil {
		return nil, fmt.Errorf("store: remote %q: %w", baseURL, err)
	}
	if (u.Scheme != "http" && u.Scheme != "https") || u.Host == "" {
		return nil, fmt.Errorf("store: remote %q: want an http(s) base URL like http://host:8080", baseURL)
	}
	if client == nil {
		client = &http.Client{Timeout: 30 * time.Second}
	}
	return &remoteBackend{base: strings.TrimRight(u.String(), "/"), client: client}, nil
}

func (b *remoteBackend) Get(hash string) ([]byte, bool, error) {
	resp, err := b.client.Get(b.base + "/store/" + hash)
	if err != nil {
		return nil, false, fmt.Errorf("store: remote get %.12s…: %w", hash, err)
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusOK:
		p, err := io.ReadAll(io.LimitReader(resp.Body, embMaxVal+1))
		if err != nil {
			return nil, false, fmt.Errorf("store: remote get %.12s…: %w", hash, err)
		}
		if len(p) > embMaxVal {
			return nil, false, fmt.Errorf("store: remote get %.12s…: payload exceeds %d bytes", hash, embMaxVal)
		}
		return p, true, nil
	case http.StatusNotFound:
		io.Copy(io.Discard, resp.Body) //nolint:errcheck // drain for connection reuse
		return nil, false, nil
	default:
		return nil, false, fmt.Errorf("store: remote get %.12s…: HTTP %d: %s", hash, resp.StatusCode, snippet(resp.Body))
	}
}

func (b *remoteBackend) Put(hash string, payload []byte) error {
	req, err := http.NewRequest(http.MethodPut, b.base+"/store/"+hash, bytes.NewReader(payload))
	if err != nil {
		return fmt.Errorf("store: remote put %.12s…: %w", hash, err)
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := b.client.Do(req)
	if err != nil {
		return fmt.Errorf("store: remote put %.12s…: %w", hash, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		return fmt.Errorf("store: remote put %.12s…: HTTP %d: %s", hash, resp.StatusCode, snippet(resp.Body))
	}
	io.Copy(io.Discard, resp.Body) //nolint:errcheck // drain for connection reuse
	return nil
}

func (b *remoteBackend) Scan(fn func(hash string, payload []byte) error) error {
	resp, err := b.client.Get(b.base + "/store/")
	if err != nil {
		return fmt.Errorf("store: remote scan: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("store: remote scan: HTTP %d: %s", resp.StatusCode, snippet(resp.Body))
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<24)
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var r record
		if err := json.Unmarshal(line, &r); err != nil || r.Hash == "" {
			return fmt.Errorf("store: remote scan: undecodable record line %q", truncateLine(line))
		}
		if err := fn(r.Hash, r.Payload); err != nil {
			return err
		}
	}
	if err := sc.Err(); err != nil {
		return fmt.Errorf("store: remote scan: %w", err)
	}
	return nil
}

// Close is a no-op: the backend holds no connection state beyond the
// shared http.Client's pool.
func (b *remoteBackend) Close() error { return nil }

func snippet(r io.Reader) string {
	raw, _ := io.ReadAll(io.LimitReader(r, 256))
	s := strings.TrimSpace(string(raw))
	if s == "" {
		return "(empty body)"
	}
	return s
}

func truncateLine(line []byte) string {
	if len(line) > 120 {
		return string(line[:120]) + "…"
	}
	return string(line)
}
