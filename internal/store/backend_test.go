package store

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

// openerFor returns a constructor for each backend kind so the
// conformance suite below runs identically against all three. The remote
// backend is exercised against an in-test HTTP server speaking the
// /store protocol over a plain map — the same surface alsd serves
// (internal/service has its own end-to-end test against the real
// handler; here we pin the client side of the contract).
func backendsUnderTest(t *testing.T) map[string]func(t *testing.T) *Store {
	t.Helper()
	return map[string]func(t *testing.T) *Store{
		"jsonl": func(t *testing.T) *Store {
			s, err := OpenJSONL(filepath.Join(t.TempDir(), "s.jsonl"))
			if err != nil {
				t.Fatalf("OpenJSONL: %v", err)
			}
			return s
		},
		"embedded": func(t *testing.T) *Store {
			s, err := OpenEmbedded(filepath.Join(t.TempDir(), "s.emb"))
			if err != nil {
				t.Fatalf("OpenEmbedded: %v", err)
			}
			return s
		},
		"remote": func(t *testing.T) *Store {
			srv := newStoreServer()
			ts := httptest.NewServer(srv)
			t.Cleanup(ts.Close)
			s, err := OpenRemote(ts.URL, nil)
			if err != nil {
				t.Fatalf("OpenRemote: %v", err)
			}
			return s
		},
	}
}

// storeServer is a minimal in-memory implementation of the /store wire
// protocol (GET/PUT /store/{hash}, GET /store/ JSONL dump).
type storeServer struct {
	mu    sync.Mutex
	mem   map[string][]byte
	order []string
}

func newStoreServer() *storeServer { return &storeServer{mem: map[string][]byte{}} }

func (s *storeServer) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	hash := strings.TrimPrefix(r.URL.Path, "/store/")
	s.mu.Lock()
	defer s.mu.Unlock()
	switch {
	case r.Method == http.MethodGet && hash == "":
		enc := json.NewEncoder(w)
		for _, h := range s.order {
			enc.Encode(record{Hash: h, Payload: s.mem[h]}) //nolint:errcheck
		}
	case r.Method == http.MethodGet:
		p, ok := s.mem[hash]
		if !ok {
			http.Error(w, "no such hash", http.StatusNotFound)
			return
		}
		w.Write(p) //nolint:errcheck
	case r.Method == http.MethodPut:
		p, err := io.ReadAll(r.Body)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		if _, seen := s.mem[hash]; !seen {
			s.order = append(s.order, hash)
		}
		s.mem[hash] = p
		w.WriteHeader(http.StatusNoContent)
	default:
		http.Error(w, "bad method", http.StatusMethodNotAllowed)
	}
}

// TestBackendConformance pins the shared Backend contract for every
// implementation: miss → hit, overwrite (last writer wins), derived
// "/front" keys, Scan order and completeness, Decode error semantics.
func TestBackendConformance(t *testing.T) {
	for kind, open := range backendsUnderTest(t) {
		t.Run(kind, func(t *testing.T) {
			s := open(t)
			defer s.Close()

			if s.Kind() != kind {
				t.Fatalf("Kind() = %q, want %q", s.Kind(), kind)
			}
			if _, ok := s.Get("absent"); ok {
				t.Fatal("Get on empty store reported a hit")
			}
			var out map[string]any
			if ok, err := s.Decode("absent", &out); ok || err != nil {
				t.Fatalf("Decode(absent) = (%v, %v), want (false, nil)", ok, err)
			}

			type payload struct {
				N int    `json:"n"`
				S string `json:"s"`
			}
			hashes := make([]string, 6)
			for i := range hashes {
				h, err := Hash(map[string]int{"cell": i})
				if err != nil {
					t.Fatalf("Hash: %v", err)
				}
				hashes[i] = h
				if err := s.Put(h, payload{N: i, S: "v1"}); err != nil {
					t.Fatalf("Put: %v", err)
				}
			}
			// Derived key alongside a plain hash.
			front := hashes[0] + "/front"
			if err := s.Put(front, []int{1, 2, 3}); err != nil {
				t.Fatalf("Put front key: %v", err)
			}
			// Overwrite: last writer wins.
			if err := s.Put(hashes[2], payload{N: 2, S: "v2"}); err != nil {
				t.Fatalf("Put overwrite: %v", err)
			}

			for i, h := range hashes {
				var p payload
				ok, err := s.Decode(h, &p)
				if err != nil || !ok {
					t.Fatalf("Decode(%d) = (%v, %v)", i, ok, err)
				}
				wantS := "v1"
				if i == 2 {
					wantS = "v2"
				}
				if p.N != i || p.S != wantS {
					t.Fatalf("Decode(%d) = %+v, want {%d %s}", i, p, i, wantS)
				}
			}
			var f []int
			if ok, err := s.Decode(front, &f); err != nil || !ok || len(f) != 3 {
				t.Fatalf("Decode(front) = (%v, %v, %v)", f, ok, err)
			}

			if got, want := s.Len(), len(hashes)+1; got != want {
				t.Fatalf("Len() = %d, want %d", got, want)
			}
			wantOrder := append(append([]string(nil), hashes...), front)
			if got := s.Hashes(); fmt.Sprint(got) != fmt.Sprint(wantOrder) {
				t.Fatalf("Hashes() = %v, want %v", got, wantOrder)
			}

			// Scan must visit each key once with the latest payload, and
			// propagate fn's error.
			seen := map[string]bool{}
			if err := s.Scan(func(h string, p json.RawMessage) error {
				if seen[h] {
					return fmt.Errorf("hash %s visited twice", h)
				}
				seen[h] = true
				if !json.Valid(p) {
					return fmt.Errorf("invalid payload for %s", h)
				}
				return nil
			}); err != nil {
				t.Fatalf("Scan: %v", err)
			}
			if len(seen) != len(hashes)+1 {
				t.Fatalf("Scan visited %d keys, want %d", len(seen), len(hashes)+1)
			}
			wantErr := fmt.Errorf("stop")
			if err := s.Scan(func(string, json.RawMessage) error { return wantErr }); err != wantErr {
				t.Fatalf("Scan error propagation: got %v", err)
			}

			// Export emits valid JSONL-store lines for every record.
			var buf bytes.Buffer
			if err := s.Export(&buf); err != nil {
				t.Fatalf("Export: %v", err)
			}
			lines := bytes.Split(bytes.TrimSpace(buf.Bytes()), []byte("\n"))
			if len(lines) != len(hashes)+1 {
				t.Fatalf("Export wrote %d lines, want %d", len(lines), len(hashes)+1)
			}
			var r record
			if err := json.Unmarshal(lines[0], &r); err != nil || r.Hash == "" {
				t.Fatalf("Export line undecodable: %v (%s)", err, lines[0])
			}

			// Undecodable-for-schema payload is a present-record error.
			var wrong int
			if ok, err := s.Decode(hashes[0], &wrong); !ok || err == nil {
				t.Fatalf("Decode with wrong schema = (%v, %v), want (true, err)", ok, err)
			}

			// PutRaw rejects garbage before it can corrupt the file.
			if err := s.PutRaw("badkey", json.RawMessage("{not json")); err == nil {
				t.Fatal("PutRaw accepted invalid JSON")
			}
		})
	}
}

// TestBackendPersistence reopens each file-backed store and checks every
// record (including overwrites and derived keys) survives.
func TestBackendPersistence(t *testing.T) {
	for _, kind := range []string{"jsonl", "embedded"} {
		t.Run(kind, func(t *testing.T) {
			path := filepath.Join(t.TempDir(), "s.db")
			s, err := OpenKind(kind, path)
			if err != nil {
				t.Fatalf("open: %v", err)
			}
			if err := s.Put("aaaa", map[string]string{"v": "1"}); err != nil {
				t.Fatalf("put: %v", err)
			}
			if err := s.Put("bbbb", map[string]string{"v": "2"}); err != nil {
				t.Fatalf("put: %v", err)
			}
			if err := s.Put("aaaa", map[string]string{"v": "3"}); err != nil {
				t.Fatalf("overwrite: %v", err)
			}
			if err := s.Close(); err != nil {
				t.Fatalf("close: %v", err)
			}

			// Auto-detection must pick the right backend back up.
			s2, err := Open(path)
			if err != nil {
				t.Fatalf("reopen: %v", err)
			}
			defer s2.Close()
			if s2.Kind() != kind {
				t.Fatalf("auto-detected kind %q, want %q", s2.Kind(), kind)
			}
			var out map[string]string
			if ok, err := s2.Decode("aaaa", &out); !ok || err != nil || out["v"] != "3" {
				t.Fatalf("aaaa after reopen = (%v, %v, %v), want v=3", out, ok, err)
			}
			if ok, err := s2.Decode("bbbb", &out); !ok || err != nil || out["v"] != "2" {
				t.Fatalf("bbbb after reopen = (%v, %v, %v), want v=2", out, ok, err)
			}
			if got := s2.Len(); got != 2 {
				t.Fatalf("Len after reopen = %d, want 2", got)
			}
		})
	}
}

// TestEmbeddedTornTail simulates a writer SIGKILLed mid-append: the file
// holds whole records plus a torn frame. Reopen must keep every whole
// record, count the tail corrupt, and heal it so the next Put appends on
// a clean boundary.
func TestEmbeddedTornTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "s.emb")
	s, err := OpenEmbedded(path)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	for i := 0; i < 3; i++ {
		if err := s.Put(fmt.Sprintf("h%04d", i), map[string]int{"i": i}); err != nil {
			t.Fatalf("put: %v", err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	// Append half a frame: a plausible header and a few body bytes.
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatalf("reopen raw: %v", err)
	}
	if _, err := f.Write([]byte{6, 0, 0, 0, 200, 0, 0, 0, 'h', 'a', 'l'}); err != nil {
		t.Fatalf("write torn frame: %v", err)
	}
	f.Close()

	s2, err := OpenEmbedded(path)
	if err != nil {
		t.Fatalf("reopen after tear: %v", err)
	}
	defer s2.Close()
	if got := s2.Len(); got != 3 {
		t.Fatalf("Len after tear = %d, want 3", got)
	}
	if got := s2.Corrupt(); got != 1 {
		t.Fatalf("Corrupt after tear = %d, want 1", got)
	}
	// The heal must leave a clean append point.
	if err := s2.Put("h0003", map[string]int{"i": 3}); err != nil {
		t.Fatalf("put after heal: %v", err)
	}
	if err := s2.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	s3, err := OpenEmbedded(path)
	if err != nil {
		t.Fatalf("third open: %v", err)
	}
	defer s3.Close()
	if got := s3.Len(); got != 4 {
		t.Fatalf("Len after heal+append = %d, want 4", got)
	}
	if got := s3.Corrupt(); got != 0 {
		t.Fatalf("Corrupt on clean file = %d, want 0", got)
	}
}

// TestEmbeddedTwoHandles opens the same file twice (as two daemons on one
// host would) and checks writes through one handle become visible through
// the other — the cross-process sharing contract, exercised in-process
// with two independent backend instances and real flock calls.
func TestEmbeddedTwoHandles(t *testing.T) {
	path := filepath.Join(t.TempDir(), "s.emb")
	a, err := OpenEmbedded(path)
	if err != nil {
		t.Fatalf("open a: %v", err)
	}
	defer a.Close()
	b, err := OpenEmbedded(path)
	if err != nil {
		t.Fatalf("open b: %v", err)
	}
	defer b.Close()

	if err := a.Put("written-by-a", map[string]int{"n": 1}); err != nil {
		t.Fatalf("a.Put: %v", err)
	}
	var out map[string]int
	if ok, err := b.Decode("written-by-a", &out); !ok || err != nil || out["n"] != 1 {
		t.Fatalf("b sees a's write = (%v, %v, %v)", out, ok, err)
	}
	if err := b.Put("written-by-b", map[string]int{"n": 2}); err != nil {
		t.Fatalf("b.Put: %v", err)
	}
	if ok, err := a.Decode("written-by-b", &out); !ok || err != nil || out["n"] != 2 {
		t.Fatalf("a sees b's write = (%v, %v, %v)", out, ok, err)
	}
	// Interleaved appends must all survive a fresh open.
	c, err := OpenEmbedded(path)
	if err != nil {
		t.Fatalf("open c: %v", err)
	}
	defer c.Close()
	if got := c.Len(); got != 2 {
		t.Fatalf("Len = %d, want 2", got)
	}
}

// TestOpenKindRejectsMismatch pins the safety rails: opening a JSONL file
// as embedded fails loudly (bad magic) rather than treating the JSON text
// as binary frames, and an unknown kind is an error.
func TestOpenKindRejectsMismatch(t *testing.T) {
	path := filepath.Join(t.TempDir(), "s.jsonl")
	s, err := OpenJSONL(path)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	if err := s.Put("aaaa", map[string]int{"n": 1}); err != nil {
		t.Fatalf("put: %v", err)
	}
	s.Close()

	if _, err := OpenEmbedded(path); err == nil {
		t.Fatal("OpenEmbedded accepted a JSONL file")
	}
	if _, err := OpenKind("bolt", path); err == nil {
		t.Fatal("OpenKind accepted an unknown kind")
	}
	if _, err := OpenKind("remote", "not-a-url"); err == nil {
		t.Fatal("OpenKind(remote) accepted a non-URL target")
	}
}

// TestRemoteGetIsAdvisory pins the wrapper split: with a dead hub, the
// legacy Get path reads as a miss while Decode surfaces the transport
// error, so schedulers fail fast instead of silently recomputing a fleet's
// worth of cells.
func TestRemoteGetIsAdvisory(t *testing.T) {
	ts := httptest.NewServer(http.NotFoundHandler())
	url := ts.URL
	ts.Close() // dead hub

	s, err := OpenRemote(url, nil)
	if err != nil {
		t.Fatalf("OpenRemote: %v", err)
	}
	if _, ok := s.Get("deadbeef"); ok {
		t.Fatal("Get against a dead hub reported a hit")
	}
	var out map[string]any
	if _, err := s.Decode("deadbeef", &out); err == nil {
		t.Fatal("Decode against a dead hub returned no error")
	}
	if err := s.Put("deadbeef", map[string]int{"n": 1}); err == nil {
		t.Fatal("Put against a dead hub returned no error")
	}
}
