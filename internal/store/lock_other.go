//go:build !unix

package store

import "os"

// Non-unix platforms get no advisory file locking: the embedded backend
// is still safe within one process (its mutex serializes operations) but
// two daemons must not share one file there.
func flockFile(*os.File, bool) error { return nil }

func funlockFile(*os.File) error { return nil }
