// Package sim implements 64-way bit-parallel logic simulation of netlist
// circuits. It is the Monte-Carlo engine underneath VECBEE-style error and
// similarity estimation (package errest): one Run evaluates every gate of
// the circuit on a shared sample of input vectors, packing 64 vectors per
// machine word.
package sim

import (
	"fmt"
	"math/bits"
	"math/rand"

	"repro/internal/cell"
	"repro/internal/netlist"
)

// Vectors is a set of sampled primary-input assignments in bit-parallel
// form: PI i's values across all vectors live in PerPI[i], 64 vectors per
// uint64 word. Bits beyond N in the last word are zero.
type Vectors struct {
	// PerPI holds one word-slice per primary input, in PI port order.
	PerPI [][]uint64
	// N is the number of vectors represented.
	N int
}

// Words returns the number of uint64 words per signal.
func (v *Vectors) Words() int { return (v.N + 63) / 64 }

// TailMask returns the valid-bit mask of the final word.
func TailMask(n int) uint64 {
	if r := n % 64; r != 0 {
		return (uint64(1) << r) - 1
	}
	return ^uint64(0)
}

// Random samples n uniform input vectors for a circuit with nPI inputs,
// matching the paper's uniform input distribution (pi = 2^-m). The rng
// makes sampling deterministic and reproducible.
func Random(rng *rand.Rand, nPI, n int) *Vectors {
	words := (n + 63) / 64
	v := &Vectors{PerPI: make([][]uint64, nPI), N: n}
	mask := TailMask(n)
	for i := range v.PerPI {
		s := make([]uint64, words)
		for w := range s {
			s[w] = rng.Uint64()
		}
		if words > 0 {
			s[words-1] &= mask
		}
		v.PerPI[i] = s
	}
	return v
}

// Exhaustive enumerates all 2^nPI input vectors (nPI ≤ 20). Vector k
// assigns bit i of k to PI i, so error rates computed on it are exact.
func Exhaustive(nPI int) (*Vectors, error) {
	if nPI > 20 {
		return nil, fmt.Errorf("sim: exhaustive simulation limited to 20 PIs, got %d", nPI)
	}
	n := 1 << nPI
	words := (n + 63) / 64
	tail := TailMask(n)
	v := &Vectors{PerPI: make([][]uint64, nPI), N: n}
	for i := 0; i < nPI; i++ {
		s := make([]uint64, words)
		period := 1 << i // PI i toggles every 2^i vectors
		if period >= 64 {
			// Whole words alternate between all-0 and all-1.
			for w := 0; w < words; w++ {
				if (w/(period/64))%2 == 1 {
					s[w] = ^uint64(0)
				}
			}
		} else {
			var pattern uint64
			for b := 0; b < 64; b++ {
				if (b/period)%2 == 1 {
					pattern |= uint64(1) << b
				}
			}
			for w := range s {
				s[w] = pattern
			}
		}
		s[words-1] &= tail
		v.PerPI[i] = s
	}
	return v, nil
}

// Result holds the simulated waveform of every gate of a circuit: Signals
// is indexed by gate ID, each signal being Words() uint64 words.
type Result struct {
	Signals [][]uint64
	N       int
}

// Words returns the number of words per signal.
func (r *Result) Words() int { return (r.N + 63) / 64 }

// Run simulates the circuit on the given vectors and returns per-gate
// signals. It fails if the vector PI count mismatches the circuit or the
// netlist contains a loop.
func Run(c *netlist.Circuit, v *Vectors) (*Result, error) {
	if len(v.PerPI) != len(c.PIs) {
		return nil, fmt.Errorf("sim: circuit %q has %d PIs, vectors have %d", c.Name, len(c.PIs), len(v.PerPI))
	}
	order, err := c.TopoOrder()
	if err != nil {
		return nil, err
	}
	words := v.Words()
	res := &Result{Signals: make([][]uint64, len(c.Gates)), N: v.N}
	for i, pi := range c.PIs {
		res.Signals[pi] = v.PerPI[i]
	}
	tail := TailMask(v.N)
	for _, id := range order {
		g := &c.Gates[id]
		if g.Func == cell.Input {
			continue
		}
		sig := make([]uint64, words)
		if err := evalGate(g, res.Signals, sig, tail); err != nil {
			return nil, fmt.Errorf("sim: gate %d: %w", id, err)
		}
		res.Signals[id] = sig
	}
	return res, nil
}

// evalGate computes one gate's bit-parallel waveform into sig (len = words
// per signal), reading fan-in waveforms from signals and applying the tail
// mask. It is the shared kernel of Run and Simulator.
func evalGate(g *netlist.Gate, signals [][]uint64, sig []uint64, tail uint64) error {
	var in [3][]uint64
	for p, fi := range g.Fanin {
		in[p] = signals[fi]
	}
	switch g.Func {
	case cell.Const0:
		for w := range sig {
			sig[w] = 0
		}
	case cell.Const1:
		for w := range sig {
			sig[w] = ^uint64(0)
		}
	case cell.OutPort, cell.Buf:
		copy(sig, in[0])
	case cell.Inv:
		for w := range sig {
			sig[w] = ^in[0][w]
		}
	case cell.And2:
		for w := range sig {
			sig[w] = in[0][w] & in[1][w]
		}
	case cell.Nand2:
		for w := range sig {
			sig[w] = ^(in[0][w] & in[1][w])
		}
	case cell.Or2:
		for w := range sig {
			sig[w] = in[0][w] | in[1][w]
		}
	case cell.Nor2:
		for w := range sig {
			sig[w] = ^(in[0][w] | in[1][w])
		}
	case cell.Xor2:
		for w := range sig {
			sig[w] = in[0][w] ^ in[1][w]
		}
	case cell.Xnor2:
		for w := range sig {
			sig[w] = ^(in[0][w] ^ in[1][w])
		}
	case cell.Mux2:
		for w := range sig {
			sig[w] = (in[0][w] &^ in[2][w]) | (in[1][w] & in[2][w])
		}
	case cell.Aoi21:
		for w := range sig {
			sig[w] = ^((in[0][w] & in[1][w]) | in[2][w])
		}
	case cell.Oai21:
		for w := range sig {
			sig[w] = ^((in[0][w] | in[1][w]) & in[2][w])
		}
	case cell.Maj3:
		for w := range sig {
			sig[w] = (in[0][w] & in[1][w]) | (in[1][w] & in[2][w]) | (in[0][w] & in[2][w])
		}
	default:
		return fmt.Errorf("unsupported function %v", g.Func)
	}
	if n := len(sig); n > 0 {
		sig[n-1] &= tail
	}
	return nil
}

// POSignals returns the PO waveforms of a result in PO port order.
func POSignals(c *netlist.Circuit, r *Result) [][]uint64 {
	out := make([][]uint64, len(c.POs))
	for i, po := range c.POs {
		out[i] = r.Signals[po]
	}
	return out
}

// CountDiff returns the number of vectors on which the two signals differ.
// Signals are tail-masked by Run, so no extra masking is needed.
func CountDiff(a, b []uint64) int {
	d := 0
	for w := range a {
		d += bits.OnesCount64(a[w] ^ b[w])
	}
	return d
}

// CountOnes returns the number of vectors on which the signal is 1.
func CountOnes(a []uint64) int {
	d := 0
	for _, w := range a {
		d += bits.OnesCount64(w)
	}
	return d
}

// OutputValue decodes PO signals into the unsigned integer value of vector
// k, treating PO i as bit i (LSB-first), accumulated in float64. Exact for
// ≤53 output bits; for wider buses the relative rounding error is ≤2^-52,
// far below the Monte-Carlo noise floor of the estimators built on it.
func OutputValue(po [][]uint64, k int) float64 {
	w, b := k/64, uint(k%64)
	val, scale := 0.0, 1.0
	for i := range po {
		if po[i][w]>>b&1 == 1 {
			val += scale
		}
		scale *= 2
	}
	return val
}
