package sim

import (
	"fmt"

	"repro/internal/cell"
	"repro/internal/netlist"
)

// Simulator is a reusable incremental simulation engine bound to one
// reference ("golden") circuit and one shared vector sample. It exploits
// the structure of approximate-logic-synthesis workloads: every candidate
// circuit is the reference plus a handful of local approximate changes, so
// only the transitive fanout cone of the changed gates can carry a
// different waveform. IncrementalRun recomputes exactly that cone against
// the cached golden waveforms — in topological order, pruning propagation
// the moment a recomputed signal turns out bit-identical to the cached one
// — and returns a Result that is exact, bit-for-bit, with a full Run of
// the candidate.
//
// All working memory (the signal arena, the propagation heap, the
// dirty-tracking state) is preallocated and recycled across calls, so the
// steady-state hot loop performs no per-gate allocation. The returned
// Result is owned by the Simulator and only valid until the next call; a
// Simulator is not safe for concurrent use — use one per worker.
type Simulator struct {
	base    *netlist.Circuit
	vectors *Vectors
	golden  *Result
	pos     []int   // gate ID → position in the base topological order
	fanouts [][]int // base fanout adjacency (read-only, from the circuit)
	words   int
	tail    uint64

	res        Result     // reusable result; signals reset from golden
	arena      [][]uint64 // recycled signal buffers, one per recomputed gate
	differs    []bool     // gate signal differs from golden (last run)
	state      []byte     // propagation state per gate (last run)
	seen       []int      // gates with non-zero state/differs, for O(cone) reset
	heap       []int      // pending-gate min-heap ordered by pos
	allTouched bool       // full-run fallback: every signal counts as touched
}

const (
	stateIdle   byte = iota
	stateQueued      // in the propagation heap
	stateDone        // recomputed this run
)

// NewSimulator builds a Simulator for candidates derived from the base
// circuit on the given vectors. golden may be a previously computed full
// simulation of base on v (it is trusted, not recomputed); pass nil to
// have the constructor run it.
func NewSimulator(base *netlist.Circuit, v *Vectors, golden *Result) (*Simulator, error) {
	if golden == nil {
		var err error
		golden, err = Run(base, v)
		if err != nil {
			return nil, err
		}
	}
	if golden.N != v.N || len(golden.Signals) != len(base.Gates) {
		return nil, fmt.Errorf("sim: golden result does not match base circuit %q", base.Name)
	}
	pos, err := base.TopoPos()
	if err != nil {
		return nil, err
	}
	n := len(base.Gates)
	s := &Simulator{
		base:    base,
		vectors: v,
		golden:  golden,
		pos:     pos,
		fanouts: base.Fanouts(),
		words:   v.Words(),
		tail:    TailMask(v.N),
		differs: make([]bool, n),
		state:   make([]byte, n),
	}
	s.res.Signals = make([][]uint64, n)
	s.res.N = v.N
	return s, nil
}

// Golden returns the cached full simulation of the base circuit.
func (s *Simulator) Golden() *Result { return s.golden }

// Vectors returns the shared input sample.
func (s *Simulator) Vectors() *Vectors { return s.vectors }

// SignalDiffers reports whether, in the most recent run, gate id's
// waveform differs from the golden one. After a full-run fallback every
// gate conservatively reports true.
func (s *Simulator) SignalDiffers(id int) bool {
	return s.allTouched || (id < len(s.differs) && s.differs[id])
}

// Simulate diffs the candidate against the base circuit and runs the
// incremental engine. The returned Result is owned by the Simulator and
// valid only until its next call.
func (s *Simulator) Simulate(app *netlist.Circuit) (*Result, error) {
	return s.IncrementalRun(app, app.DiffGates(s.base))
}

// IncrementalRun simulates a candidate that shares the base circuit's gate
// ID space, given the IDs of the gates whose function or fan-in adjacency
// differs from the base (see netlist.DiffGates). Candidates that do not
// share the ID space — or whose rewires broke the base topological order,
// which LACs never do — fall back to FullRun transparently. The returned
// Result is exact and owned by the Simulator (valid until the next call).
func (s *Simulator) IncrementalRun(app *netlist.Circuit, changed []int) (*Result, error) {
	if len(app.Gates) != len(s.base.Gates) || len(app.PIs) != len(s.base.PIs) {
		return s.FullRun(app)
	}
	// The base order stays valid iff every changed gate still reads only
	// gates that precede it; unchanged gates kept their base fan-ins.
	for _, id := range changed {
		for _, fi := range app.Gates[id].Fanin {
			if s.pos[fi] >= s.pos[id] {
				return s.FullRun(app)
			}
		}
	}
	s.reset(len(app.Gates))
	copy(s.res.Signals, s.golden.Signals)
	for _, id := range changed {
		s.push(id)
	}
	arenaNext := 0
	for len(s.heap) > 0 {
		id := s.pop()
		s.state[id] = stateDone
		g := &app.Gates[id]
		if g.Func == cell.Input {
			continue // PIs always carry the shared input sample
		}
		sig := s.slot(arenaNext)
		if err := evalGate(g, s.res.Signals, sig, s.tail); err != nil {
			return nil, fmt.Errorf("sim: gate %d: %w", id, err)
		}
		gold := s.golden.Signals[id]
		if wordsEqual(sig, gold) {
			// Bit-identical to the cached waveform: keep sharing the
			// golden signal, recycle the arena slot, and prune the cone —
			// nothing downstream of this gate can change through it.
			s.res.Signals[id] = gold
			continue
		}
		arenaNext++
		s.res.Signals[id] = sig
		s.differs[id] = true
		for _, fo := range s.fanouts[id] {
			s.push(fo)
		}
	}
	return &s.res, nil
}

// FullRun simulates the candidate from scratch into the recycled arena —
// the fallback for candidates outside the base gate ID space (e.g. greedy
// baselines' inverted-wire substitutions append gates). The returned
// Result is owned by the Simulator; every gate reports SignalDiffers.
func (s *Simulator) FullRun(app *netlist.Circuit) (*Result, error) {
	if len(app.PIs) != len(s.vectors.PerPI) {
		return nil, fmt.Errorf("sim: circuit %q has %d PIs, vectors have %d",
			app.Name, len(app.PIs), len(s.vectors.PerPI))
	}
	order, err := app.TopoOrder()
	if err != nil {
		return nil, err
	}
	s.reset(len(app.Gates))
	s.allTouched = true
	for i, pi := range app.PIs {
		s.res.Signals[pi] = s.vectors.PerPI[i]
	}
	arenaNext := 0
	for _, id := range order {
		g := &app.Gates[id]
		if g.Func == cell.Input {
			continue
		}
		sig := s.slot(arenaNext)
		arenaNext++
		if err := evalGate(g, s.res.Signals, sig, s.tail); err != nil {
			return nil, fmt.Errorf("sim: gate %d: %w", id, err)
		}
		s.res.Signals[id] = sig
	}
	return &s.res, nil
}

// reset prepares the recycled buffers for a run over n gates, clearing
// only the state touched by the previous run.
func (s *Simulator) reset(n int) {
	s.allTouched = false
	for _, id := range s.seen {
		s.state[id] = stateIdle
		s.differs[id] = false
	}
	s.seen = s.seen[:0]
	s.heap = s.heap[:0]
	if cap(s.res.Signals) < n {
		s.res.Signals = make([][]uint64, n)
	}
	s.res.Signals = s.res.Signals[:n]
	s.res.N = s.vectors.N
}

// slot returns the k-th recycled signal buffer, allocating it on first
// use. Buffers persist for the Simulator's lifetime, so the steady state
// allocates nothing.
func (s *Simulator) slot(k int) []uint64 {
	for k >= len(s.arena) {
		s.arena = append(s.arena, make([]uint64, s.words))
	}
	return s.arena[k]
}

// push enqueues a gate for recomputation unless it is already pending or
// done. Pushes always target gates downstream of the one being processed,
// so a popped gate can never need re-processing.
func (s *Simulator) push(id int) {
	if s.state[id] != stateIdle {
		return
	}
	s.state[id] = stateQueued
	s.seen = append(s.seen, id)
	s.heap = append(s.heap, id)
	i := len(s.heap) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if s.pos[s.heap[parent]] <= s.pos[s.heap[i]] {
			break
		}
		s.heap[parent], s.heap[i] = s.heap[i], s.heap[parent]
		i = parent
	}
}

// pop removes and returns the pending gate with the smallest topological
// position, guaranteeing fan-ins are finalized before consumers.
func (s *Simulator) pop() int {
	top := s.heap[0]
	last := len(s.heap) - 1
	s.heap[0] = s.heap[last]
	s.heap = s.heap[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < len(s.heap) && s.pos[s.heap[l]] < s.pos[s.heap[small]] {
			small = l
		}
		if r < len(s.heap) && s.pos[s.heap[r]] < s.pos[s.heap[small]] {
			small = r
		}
		if small == i {
			break
		}
		s.heap[i], s.heap[small] = s.heap[small], s.heap[i]
		i = small
	}
	return top
}

func wordsEqual(a, b []uint64) bool {
	for w := range a {
		if a[w] != b[w] {
			return false
		}
	}
	return true
}
