package sim

import (
	"encoding/binary"
	"fmt"

	"repro/internal/cell"
	"repro/internal/netlist"
)

// AppendGateSig appends a canonical, collision-free encoding of one gate's
// evaluation-relevant content — ID, function, drive strength and fan-in
// adjacency — to dst and returns the extended slice. Names are excluded
// (they never affect simulation, timing or area). Two gates append the
// same bytes iff they are behaviorally interchangeable at the same ID, so
// concatenated signatures of a candidate's changed gates form an exact
// memoization key for cross-candidate evaluation reuse: unlike a 64-bit
// hash, equal keys imply equal content, never merely probable equality.
func AppendGateSig(dst []byte, id int, g *netlist.Gate) []byte {
	dst = binary.AppendUvarint(dst, uint64(id))
	dst = append(dst, byte(g.Func), byte(g.Drive))
	dst = binary.AppendUvarint(dst, uint64(len(g.Fanin)))
	for _, fi := range g.Fanin {
		dst = binary.AppendUvarint(dst, uint64(fi))
	}
	return dst
}

// OverlayRun simulates the base circuit with only the unit gates' content
// replaced by the candidate's — the single-change (or single-component)
// cone evaluation behind cross-candidate reuse. It behaves exactly like
// IncrementalRun(app, unit) would if unit were the candidate's complete
// changed set: propagation starts at the unit gates, reads every other
// gate's content from the base circuit (so changes outside the unit do not
// leak into the unit's delta), and prunes the moment a recomputed waveform
// matches the golden one.
//
// The returned Result is owned by the Simulator and valid until its next
// call; SignalDiffers afterwards reports exactly the gates whose waveform
// the unit changed. The caller must ensure the candidate shares the base
// gate ID space and that every unit gate's fan-ins precede it in the base
// topological order (the same validity condition IncrementalRun checks);
// OverlayRun returns an error instead of falling back, since a fallback
// full run of the hybrid overlay circuit is never meaningful.
func (s *Simulator) OverlayRun(app *netlist.Circuit, unit []int) (*Result, error) {
	if len(app.Gates) != len(s.base.Gates) || len(app.PIs) != len(s.base.PIs) {
		return nil, fmt.Errorf("sim: overlay candidate %q does not share the base gate ID space", app.Name)
	}
	for _, id := range unit {
		for _, fi := range app.Gates[id].Fanin {
			if s.pos[fi] >= s.pos[id] {
				return nil, fmt.Errorf("sim: overlay unit gate %d breaks the base topological order", id)
			}
		}
	}
	s.reset(len(app.Gates))
	copy(s.res.Signals, s.golden.Signals)
	for _, id := range unit {
		s.push(id)
	}
	arenaNext := 0
	for len(s.heap) > 0 {
		id := s.pop()
		s.state[id] = stateDone
		g := &s.base.Gates[id]
		for _, u := range unit { // units are tiny; a linear scan beats a map
			if u == id {
				g = &app.Gates[id]
				break
			}
		}
		if g.Func == cell.Input {
			continue // PIs always carry the shared input sample
		}
		sig := s.slot(arenaNext)
		if err := evalGate(g, s.res.Signals, sig, s.tail); err != nil {
			return nil, fmt.Errorf("sim: gate %d: %w", id, err)
		}
		gold := s.golden.Signals[id]
		if wordsEqual(sig, gold) {
			s.res.Signals[id] = gold
			continue
		}
		arenaNext++
		s.res.Signals[id] = sig
		s.differs[id] = true
		for _, fo := range s.fanouts[id] {
			s.push(fo)
		}
	}
	return &s.res, nil
}
