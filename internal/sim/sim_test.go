package sim

import (
	"math/rand"
	"testing"

	"repro/internal/cell"
	"repro/internal/netlist"
)

// xorChain builds a circuit computing parity of nPI inputs.
func xorChain(nPI int) *netlist.Circuit {
	c := netlist.New("parity")
	acc := c.AddInput("i0")
	for i := 1; i < nPI; i++ {
		in := c.AddInput("i")
		acc = c.AddGate(cell.Xor2, acc, in)
	}
	c.AddOutput("p", acc)
	return c
}

func TestTailMask(t *testing.T) {
	if TailMask(64) != ^uint64(0) {
		t.Error("TailMask(64) must be all ones")
	}
	if TailMask(1) != 1 {
		t.Error("TailMask(1) must be 1")
	}
	if TailMask(65) != 1 {
		t.Error("TailMask(65) must be 1")
	}
}

func TestRandomVectorsShape(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	v := Random(rng, 5, 130)
	if v.Words() != 3 {
		t.Fatalf("Words() = %d, want 3", v.Words())
	}
	if len(v.PerPI) != 5 {
		t.Fatalf("PerPI = %d, want 5", len(v.PerPI))
	}
	for _, s := range v.PerPI {
		if s[2]&^TailMask(130) != 0 {
			t.Error("tail bits beyond N must be zero")
		}
	}
}

func TestRandomDeterministic(t *testing.T) {
	a := Random(rand.New(rand.NewSource(9)), 3, 200)
	b := Random(rand.New(rand.NewSource(9)), 3, 200)
	for i := range a.PerPI {
		for w := range a.PerPI[i] {
			if a.PerPI[i][w] != b.PerPI[i][w] {
				t.Fatal("same seed must give identical vectors")
			}
		}
	}
}

func TestExhaustiveCovers(t *testing.T) {
	v, err := Exhaustive(3)
	if err != nil {
		t.Fatal(err)
	}
	if v.N != 8 {
		t.Fatalf("N = %d, want 8", v.N)
	}
	seen := map[int]bool{}
	for k := 0; k < 8; k++ {
		pat := 0
		for i := 0; i < 3; i++ {
			if v.PerPI[i][k/64]>>(k%64)&1 == 1 {
				pat |= 1 << i
			}
		}
		seen[pat] = true
	}
	if len(seen) != 8 {
		t.Errorf("exhaustive vectors cover %d patterns, want 8", len(seen))
	}
}

func TestExhaustiveWidePIPeriod(t *testing.T) {
	v, err := Exhaustive(8) // 256 vectors, PI 7 toggles every 128
	if err != nil {
		t.Fatal(err)
	}
	for k := 0; k < v.N; k++ {
		want := (k >> 7) & 1
		got := int(v.PerPI[7][k/64] >> (k % 64) & 1)
		if got != want {
			t.Fatalf("PI7 vector %d = %d, want %d", k, got, want)
		}
	}
}

func TestExhaustiveLimit(t *testing.T) {
	if _, err := Exhaustive(21); err == nil {
		t.Error("Exhaustive must reject >20 PIs")
	}
}

func TestRunParityExhaustive(t *testing.T) {
	c := xorChain(4)
	v, err := Exhaustive(4)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(c, v)
	if err != nil {
		t.Fatal(err)
	}
	po := POSignals(c, res)[0]
	for k := 0; k < 16; k++ {
		parity := 0
		for i := 0; i < 4; i++ {
			parity ^= k >> i & 1
		}
		got := int(po[0] >> k & 1)
		if got != parity {
			t.Errorf("parity(%04b) = %d, want %d", k, got, parity)
		}
	}
}

func TestRunAllFunctions(t *testing.T) {
	// One gate of every physical function, exhaustively simulated and
	// checked against EvalBool.
	c := netlist.New("all")
	a := c.AddInput("a")
	b := c.AddInput("b")
	s := c.AddInput("s")
	type gateRef struct {
		f  cell.Func
		id int
	}
	var gates []gateRef
	for f := cell.Buf; f < cell.NumFuncs; f++ {
		var id int
		switch f.Arity() {
		case 1:
			id = c.AddGate(f, a)
		case 2:
			id = c.AddGate(f, a, b)
		case 3:
			id = c.AddGate(f, a, b, s)
		}
		c.AddOutput("y", id)
		gates = append(gates, gateRef{f, id})
	}
	// Constants too.
	c.AddOutput("c0", c.Const0())
	c.AddOutput("c1", c.Const1())
	v, err := Exhaustive(3)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(c, v)
	if err != nil {
		t.Fatal(err)
	}
	for _, gr := range gates {
		sig := res.Signals[gr.id]
		for k := 0; k < 8; k++ {
			in := []bool{k&1 == 1, k>>1&1 == 1, k>>2&1 == 1}[:gr.f.Arity()]
			want := gr.f.EvalBool(in)
			if got := sig[0]>>k&1 == 1; got != want {
				t.Errorf("%v vector %03b: got %v, want %v", gr.f, k, got, want)
			}
		}
	}
	if CountOnes(res.Signals[c.Const0()]) != 0 {
		t.Error("const0 signal must be all zero")
	}
	if CountOnes(res.Signals[c.Const1()]) != v.N {
		t.Error("const1 signal must be all ones over N vectors")
	}
}

func TestRunRejectsMismatchedPIs(t *testing.T) {
	c := xorChain(4)
	v := Random(rand.New(rand.NewSource(1)), 3, 64)
	if _, err := Run(c, v); err == nil {
		t.Error("Run must reject PI-count mismatch")
	}
}

func TestRunRejectsLoop(t *testing.T) {
	c := netlist.New("loop")
	a := c.AddInput("a")
	g1 := c.AddGate(cell.And2, a, a)
	g2 := c.AddGate(cell.Or2, g1, a)
	c.Gates[g1].Fanin[1] = g2
	c.AddOutput("y", g2)
	v := Random(rand.New(rand.NewSource(1)), 1, 64)
	if _, err := Run(c, v); err == nil {
		t.Error("Run must reject cyclic netlists")
	}
}

func TestCountDiff(t *testing.T) {
	a := []uint64{0b1010, 0}
	b := []uint64{0b0110, 1}
	if got := CountDiff(a, b); got != 3 {
		t.Errorf("CountDiff = %d, want 3", got)
	}
}

func TestOutputValue(t *testing.T) {
	// Two POs: value = po0 + 2*po1. Vector 0: 1,0 -> 1; vector 1: 1,1 -> 3.
	po := [][]uint64{{0b11}, {0b10}}
	if got := OutputValue(po, 0); got != 1 {
		t.Errorf("vector 0 value = %v, want 1", got)
	}
	if got := OutputValue(po, 1); got != 3 {
		t.Errorf("vector 1 value = %v, want 3", got)
	}
}

func TestRunTailMasked(t *testing.T) {
	c := netlist.New("inv")
	a := c.AddInput("a")
	g := c.AddGate(cell.Inv, a)
	c.AddOutput("y", g)
	v := Random(rand.New(rand.NewSource(3)), 1, 70)
	res, err := Run(c, v)
	if err != nil {
		t.Fatal(err)
	}
	if res.Signals[g][1]&^TailMask(70) != 0 {
		t.Error("inverter output must have masked tail bits")
	}
}

func BenchmarkRunParity64k(b *testing.B) {
	c := xorChain(32)
	v := Random(rand.New(rand.NewSource(1)), 32, 65536)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Run(c, v); err != nil {
			b.Fatal(err)
		}
	}
}
