package sim_test

import (
	"math/rand"
	"testing"

	"repro/internal/cell"
	"repro/internal/gen"
	"repro/internal/netlist"
	"repro/internal/sim"
)

// applyRandomLAC mimics one local approximate change without importing
// package lac (which would not cycle, but keeping the dependency direction
// clean is nicer): rewire all consumers of a random live physical gate to
// a random member of its transitive fan-in or to a constant. Switches from
// TFI ∪ constants can never create a loop, exactly like real LACs.
func applyRandomLAC(t *testing.T, c *netlist.Circuit, rng *rand.Rand) int {
	t.Helper()
	live := c.Live()
	var phys []int
	for id, g := range c.Gates {
		if live[id] && !g.Func.IsPseudo() {
			phys = append(phys, id)
		}
	}
	if len(phys) == 0 {
		t.Fatal("no physical gates to approximate")
	}
	target := phys[rng.Intn(len(phys))]
	tfi := c.TFI(target)
	var cands []int
	for id := range c.Gates {
		if tfi[id] && id != target && c.Gates[id].Func != cell.OutPort {
			cands = append(cands, id)
		}
	}
	var sw int
	switch rng.Intn(3) {
	case 0:
		sw = c.Const0()
	case 1:
		sw = c.Const1()
	default:
		if len(cands) == 0 {
			sw = c.Const0()
		} else {
			sw = cands[rng.Intn(len(cands))]
		}
	}
	c.ReplaceFanin(target, sw)
	return target
}

func freshBase(t *testing.T, name string) *netlist.Circuit {
	t.Helper()
	var c *netlist.Circuit
	if name == "Adder4" {
		c = gen.Adder(4) // small enough for exhaustive vectors
	} else {
		c = gen.MustBuild(name)
	}
	base := c.Clone()
	base.Const0()
	base.Const1()
	if err := base.Validate(); err != nil {
		t.Fatal(err)
	}
	return base
}

// TestIncrementalMatchesFull is the exactness property test of the
// incremental engine: across randomized LAC sets, every per-gate waveform
// of IncrementalRun must be bit-identical to a from-scratch Run — on
// random vectors with a non-64-divisible count (tail-mask edge case), on
// word-aligned samples, and on exhaustive vectors.
func TestIncrementalMatchesFull(t *testing.T) {
	cases := []struct {
		circuit string
		vectors int // ≤ 0 selects exhaustive enumeration
		trials  int
		maxLACs int
	}{
		{"c880", 1000, 20, 4}, // 1000 % 64 != 0: exercises the tail mask
		{"c880", 2048, 10, 4},
		{"Adder16", 100, 20, 4},
		{"Adder16", 4096, 10, 6},
		{"Adder4", -1, 20, 3}, // exhaustive: 256 vectors, exact error rates
	}
	for _, tc := range cases {
		base := freshBase(t, tc.circuit)
		rng := rand.New(rand.NewSource(7))
		var v *sim.Vectors
		if tc.vectors <= 0 {
			var err error
			v, err = sim.Exhaustive(len(base.PIs))
			if err != nil {
				t.Fatal(err)
			}
		} else {
			v = sim.Random(rng, len(base.PIs), tc.vectors)
		}
		s, err := sim.NewSimulator(base, v, nil)
		if err != nil {
			t.Fatal(err)
		}
		for trial := 0; trial < tc.trials; trial++ {
			cand := base.Clone()
			for k := rng.Intn(tc.maxLACs) + 1; k > 0; k-- {
				applyRandomLAC(t, cand, rng)
			}
			full, err := sim.Run(cand, v)
			if err != nil {
				t.Fatal(err)
			}
			incr, err := s.Simulate(cand)
			if err != nil {
				t.Fatal(err)
			}
			for id := range cand.Gates {
				fs, is := full.Signals[id], incr.Signals[id]
				if len(fs) != len(is) {
					t.Fatalf("%s trial %d gate %d: word count %d != %d",
						tc.circuit, trial, id, len(is), len(fs))
				}
				for w := range fs {
					if fs[w] != is[w] {
						t.Fatalf("%s (n=%d) trial %d gate %d word %d: incremental %x != full %x",
							tc.circuit, v.N, trial, id, w, is[w], fs[w])
					}
				}
				// In the shared-ID-space path the touched flag is exact:
				// untouched gates share the golden waveform verbatim.
				if !s.SignalDiffers(id) {
					gold := s.Golden().Signals[id]
					for w := range fs {
						if fs[w] != gold[w] {
							t.Fatalf("%s trial %d gate %d: reported untouched but differs from golden",
								tc.circuit, trial, id)
						}
					}
				}
			}
		}
	}
}

// TestIncrementalIdentityCandidate checks the degenerate diff: a candidate
// identical to the base must come back as the golden waveforms with no
// gate reported touched.
func TestIncrementalIdentityCandidate(t *testing.T) {
	base := freshBase(t, "Adder16")
	v := sim.Random(rand.New(rand.NewSource(3)), len(base.PIs), 777)
	s, err := sim.NewSimulator(base, v, nil)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Simulate(base.Clone())
	if err != nil {
		t.Fatal(err)
	}
	for id := range base.Gates {
		if s.SignalDiffers(id) {
			t.Fatalf("gate %d reported touched on an identical candidate", id)
		}
		for w := range res.Signals[id] {
			if res.Signals[id][w] != s.Golden().Signals[id][w] {
				t.Fatalf("gate %d: identity candidate signal differs from golden", id)
			}
		}
	}
}

// TestIncrementalFallbackAppendedGate covers the greedy baselines'
// inverted-wire substitution: the candidate grows a gate, leaving the base
// ID space, and the simulator must transparently fall back to a full run
// with identical results.
func TestIncrementalFallbackAppendedGate(t *testing.T) {
	base := freshBase(t, "c880")
	v := sim.Random(rand.New(rand.NewSource(11)), len(base.PIs), 500)
	s, err := sim.NewSimulator(base, v, nil)
	if err != nil {
		t.Fatal(err)
	}
	cand := base.Clone()
	// Invert some mid-circuit gate's influence: rewire its consumers
	// through a fresh inverter (the WireByInvWire shape).
	target := -1
	for id, g := range cand.Gates {
		if !g.Func.IsPseudo() {
			target = id
		}
	}
	inv := cand.AddGate(cell.Inv, cand.Gates[target].Fanin[0])
	cand.ReplaceFanin(target, inv)
	full, err := sim.Run(cand, v)
	if err != nil {
		t.Fatal(err)
	}
	incr, err := s.Simulate(cand)
	if err != nil {
		t.Fatal(err)
	}
	for id := range cand.Gates {
		for w := range full.Signals[id] {
			if full.Signals[id][w] != incr.Signals[id][w] {
				t.Fatalf("gate %d word %d: fallback result differs from full run", id, w)
			}
		}
		if !s.SignalDiffers(id) {
			t.Fatalf("full-run fallback must conservatively report every gate touched")
		}
	}
}

// TestSimulatorReuseAcrossCandidates drives one Simulator through many
// candidates, interleaving identity and heavily-mutated ones, to verify
// the recycled arena and dirty-tracking reset leave no state behind.
func TestSimulatorReuseAcrossCandidates(t *testing.T) {
	base := freshBase(t, "Adder16")
	rng := rand.New(rand.NewSource(5))
	v := sim.Random(rng, len(base.PIs), 320)
	s, err := sim.NewSimulator(base, v, nil)
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 30; trial++ {
		cand := base.Clone()
		if trial%3 != 0 {
			for k := 0; k < trial%5+1; k++ {
				applyRandomLAC(t, cand, rng)
			}
		}
		full, err := sim.Run(cand, v)
		if err != nil {
			t.Fatal(err)
		}
		incr, err := s.Simulate(cand)
		if err != nil {
			t.Fatal(err)
		}
		for id := range cand.Gates {
			for w := range full.Signals[id] {
				if full.Signals[id][w] != incr.Signals[id][w] {
					t.Fatalf("trial %d gate %d: stale simulator state", trial, id)
				}
			}
		}
	}
}
