package lac

import (
	"math/rand"
	"testing"

	"repro/internal/cell"
	"repro/internal/errest"
	"repro/internal/netlist"
	"repro/internal/sim"
	"repro/internal/sta"
)

var lib = cell.Default28nm()

// fig3 rebuilds the paper's running example (see netlist tests).
func fig3(t *testing.T) (*netlist.Circuit, map[int]int) {
	t.Helper()
	c := netlist.New("fig3")
	ids := map[int]int{}
	for i := 1; i <= 4; i++ {
		ids[i] = c.AddInput("n")
	}
	add := func(p int, f cell.Func, fin ...int) {
		m := make([]int, len(fin))
		for i, x := range fin {
			m[i] = ids[x]
		}
		ids[p] = c.AddGate(f, m...)
	}
	add(5, cell.And2, 1, 2)
	add(6, cell.Or2, 2, 3)
	add(7, cell.Nand2, 3, 4)
	add(8, cell.And2, 5, 6)
	add(9, cell.Xor2, 6, 7)
	add(10, cell.Or2, 4, 7)
	add(11, cell.Or2, 5, 8)
	add(12, cell.And2, 9, 10)
	ids[13] = c.AddOutput("po1", ids[11])
	ids[14] = c.AddOutput("po2", ids[9])
	ids[15] = c.AddOutput("po3", ids[12])
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	return c, ids
}

func simAndTime(t *testing.T, c *netlist.Circuit) (*sim.Result, *sta.Report) {
	t.Helper()
	v, err := sim.Exhaustive(len(c.PIs))
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run(c, v)
	if err != nil {
		t.Fatal(err)
	}
	r, err := sta.Analyze(c, lib)
	if err != nil {
		t.Fatal(err)
	}
	return res, r
}

func TestTargetsOnlyPhysicalGates(t *testing.T) {
	c, _ := fig3(t)
	_, r := simAndTime(t, c)
	rng := rand.New(rand.NewSource(1))
	tc := Targets(c, r, rng, 0.2)
	if len(tc) == 0 {
		t.Fatal("Tc must not be empty on a non-trivial circuit")
	}
	for _, id := range tc {
		if c.Gates[id].Func.IsPseudo() {
			t.Errorf("Tc contains pseudo gate %d (%v)", id, c.Gates[id].Func)
		}
	}
}

func TestTargetsIncludesCriticalPathGates(t *testing.T) {
	c, _ := fig3(t)
	_, r := simAndTime(t, c)
	crit := map[int]bool{}
	for _, id := range r.CriticalPath(c) {
		if !c.Gates[id].Func.IsPseudo() {
			crit[id] = true
		}
	}
	tc := Targets(c, r, rand.New(rand.NewSource(2)), 0)
	inTc := map[int]bool{}
	for _, id := range tc {
		inTc[id] = true
	}
	for id := range crit {
		if !inTc[id] {
			t.Errorf("critical-path gate %d missing from Tc", id)
		}
	}
}

func TestBestSwitchStaysInTFI(t *testing.T) {
	c, ids := fig3(t)
	res, r := simAndTime(t, c)
	for p := 5; p <= 12; p++ {
		target := ids[p]
		ch, ok := BestSwitch(c, res, r, target)
		if !ok {
			t.Fatalf("no switch for gate %d", p)
		}
		if ch.Kind == WireByWire {
			tfi := c.TFI(target)
			if !tfi[ch.Switch] || ch.Switch == target {
				t.Errorf("switch %d for target %d escapes its TFI", ch.Switch, target)
			}
		} else if !c.Gates[ch.Switch].Func.IsConst() {
			t.Errorf("wire-by-const change selected non-const gate %d", ch.Switch)
		}
		if ch.Similarity < 0 || ch.Similarity > 1 {
			t.Errorf("similarity %v out of range", ch.Similarity)
		}
	}
}

func TestBestSwitchPicksMaxSimilarity(t *testing.T) {
	c, ids := fig3(t)
	res, r := simAndTime(t, c)
	target := ids[8]
	ch, ok := BestSwitch(c, res, r, target)
	if !ok {
		t.Fatal("no switch found")
	}
	// Verify no candidate beats the chosen similarity.
	tfi := c.TFI(target)
	for id := range c.Gates {
		if !tfi[id] || id == target || c.Gates[id].Func == cell.OutPort || c.Gates[id].Func.IsConst() {
			continue
		}
		if s := errest.Similarity(res, target, id); s > ch.Similarity+1e-12 {
			t.Errorf("candidate %d has similarity %v > chosen %v", id, s, ch.Similarity)
		}
	}
	for _, cs := range []float64{errest.ConstSimilarity(res, target, false), errest.ConstSimilarity(res, target, true)} {
		if cs > ch.Similarity+1e-12 {
			t.Errorf("constant similarity %v beats chosen %v", cs, ch.Similarity)
		}
	}
}

func TestApplyNeverCreatesLoop(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 100; trial++ {
		c, _ := fig3(t)
		res, r := simAndTime(t, c)
		if _, ok := Search(c, res, r, rng, 0.3); !ok {
			continue
		}
		if _, err := c.TopoOrder(); err != nil {
			t.Fatalf("trial %d: LAC created a loop: %v", trial, err)
		}
		if err := c.Validate(); err != nil {
			t.Fatalf("trial %d: LAC broke the netlist: %v", trial, err)
		}
	}
}

func TestSearchShortensOrHoldsCriticalPathArea(t *testing.T) {
	// A LAC rewires consumers to an earlier-arriving signal, so the live
	// area must never grow and CPD must not increase on the touched path
	// beyond the original (depth can only shrink at the changed pin).
	rng := rand.New(rand.NewSource(3))
	c, _ := fig3(t)
	areaBefore := c.Area(lib)
	res, r := simAndTime(t, c)
	if _, ok := Search(c, res, r, rng, 0.2); !ok {
		t.Skip("no change applied")
	}
	if c.Area(lib) > areaBefore+1e-9 {
		t.Error("a LAC must never increase live area")
	}
}

func TestRandomChangeValid(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 50; trial++ {
		c, _ := fig3(t)
		res, _ := simAndTime(t, c)
		if _, ok := RandomChange(c, res, rng); !ok {
			t.Fatal("RandomChange found no target on a live circuit")
		}
		if err := c.Validate(); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
	}
}

func TestPickTargetEmpty(t *testing.T) {
	if PickTarget(nil, rand.New(rand.NewSource(1))) != -1 {
		t.Error("PickTarget on empty Tc must return -1")
	}
}

func TestBestSwitchRejectsPseudoTargets(t *testing.T) {
	c, _ := fig3(t)
	res, r := simAndTime(t, c)
	if _, ok := BestSwitch(c, res, r, c.PIs[0]); ok {
		t.Error("PIs must not be accepted as targets")
	}
	if _, ok := BestSwitch(c, res, r, c.POs[0]); ok {
		t.Error("POs must not be accepted as targets")
	}
	if _, ok := BestSwitch(c, res, r, -1); ok {
		t.Error("negative target must be rejected")
	}
}

func TestKindString(t *testing.T) {
	if WireByWire.String() != "wire-by-wire" || WireByConst.String() != "wire-by-const" {
		t.Error("Kind.String mismatch")
	}
	if WireByInvWire.String() != "wire-by-inv-wire" {
		t.Error("inverted kind name")
	}
}

func TestBestSwitchInvFindsComplement(t *testing.T) {
	// Build a target that is exactly the complement of a TFI signal: the
	// inverted substitution must win with similarity 1.
	c := netlist.New("inv")
	a := c.AddInput("a")
	b := c.AddInput("b")
	and := c.AddGate(cell.And2, a, b)
	nand := c.AddGate(cell.Nand2, a, b) // complement of and... but not in its TFI
	_ = nand
	inv := c.AddGate(cell.Inv, and) // INV(and) is in no one's TFI yet
	target := c.AddGate(cell.Inv, inv)
	deep := c.AddGate(cell.Buf, target)
	c.AddOutput("y", deep)
	v, err := sim.Exhaustive(2)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run(c, v)
	if err != nil {
		t.Fatal(err)
	}
	// target == and (double inversion); its TFI contains inv == NOT(and).
	// Plain BestSwitch finds `and` (sim 1); inverted search may tie.
	ch, ok := BestSwitchInv(c, res, nil, target)
	if !ok {
		t.Fatal("no switch")
	}
	if ch.Similarity != 1 {
		t.Fatalf("similarity = %v, want 1", ch.Similarity)
	}
	n := c.NumGates()
	Apply(c, ch)
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	if ch.Kind == WireByInvWire && c.NumGates() != n+1 {
		t.Error("inverted substitution must materialize one inverter")
	}
	// Function must be preserved exactly (similarity was 1).
	res2, err := sim.Run(c, v)
	if err != nil {
		t.Fatal(err)
	}
	if sim.CountDiff(res2.Signals[c.POs[0]], res.Signals[c.POs[0]]) != 0 {
		t.Error("similarity-1 substitution changed the function")
	}
}

func TestBestSwitchInvNeverCreatesLoop(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 50; trial++ {
		c, ids := fig3(t)
		res, r := simAndTime(t, c)
		target := ids[5+rng.Intn(8)]
		ch, ok := BestSwitchInv(c, res, r, target)
		if !ok {
			continue
		}
		Apply(c, ch)
		if _, err := c.TopoOrder(); err != nil {
			t.Fatalf("trial %d: inverted LAC created a loop: %v", trial, err)
		}
	}
}
