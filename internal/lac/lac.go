// Package lac implements the local approximate changes (LACs) of the
// paper: wire-by-wire and wire-by-constant substitution on the fan-in
// adjacency representation, plus the candidate machinery of the circuit
// searching action — the critical-path targets set Tc and similarity-based
// switch-gate selection.
//
// Terminology follows §III-A of the paper: the gate being replaced is the
// "target gate"; the gate (or constant, which is also a gate) wired into
// the target's consumers is the "switch gate". Because switch candidates
// are drawn from the target's transitive fan-in or the constants, applying
// a LAC can never create a combinational loop.
package lac

import (
	"math/rand"

	"repro/internal/cell"
	"repro/internal/errest"
	"repro/internal/netlist"
	"repro/internal/sim"
	"repro/internal/sta"
)

// Kind distinguishes the two LAC flavours.
type Kind uint8

const (
	// WireByWire substitutes the target's output with another gate's
	// output (SASIMI-style substitution).
	WireByWire Kind = iota
	// WireByConst substitutes the target's output with constant 0/1
	// (gate-level pruning).
	WireByConst
	// WireByInvWire substitutes the target's output with the
	// *complement* of another gate's output through a fresh inverter —
	// the second half of SASIMI's substitute-and-simplify catalogue.
	// Population-based optimizers avoid it (a new gate breaks the shared
	// gate ID space reproduction merges on); the greedy baselines use it.
	WireByInvWire
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case WireByWire:
		return "wire-by-wire"
	case WireByConst:
		return "wire-by-const"
	case WireByInvWire:
		return "wire-by-inv-wire"
	}
	return "wire-by-?"
}

// Change is one selected LAC: rewire all consumers of Target to Switch
// (through a new inverter for WireByInvWire).
type Change struct {
	Target int
	Switch int
	Kind   Kind
	// Similarity is the fraction of sampled vectors on which target and
	// switch (after any inversion) agree — the selection criterion.
	Similarity float64
}

// Apply performs the change on the circuit and returns the number of
// fan-in pins rewired. Constants and inverters are materialized in the
// circuit on demand.
func Apply(c *netlist.Circuit, ch Change) int {
	sw := ch.Switch
	if ch.Kind == WireByInvWire {
		sw = c.AddGate(cell.Inv, ch.Switch)
	}
	return c.ReplaceFanin(ch.Target, sw)
}

// Targets builds the searching action's targets set Tc (paper §III-B):
// every physical gate on a critical path enters Tc; each such gate is
// sampled from uniform(0,1) and the fan-ins of gates drawing > 0.5 join Tc
// as well. The margin widens "critical" to paths within margin·CPD.
func Targets(c *netlist.Circuit, r *sta.Report, rng *rand.Rand, margin float64) []int {
	onPath := r.CriticalGates(c, margin)
	seen := make(map[int]bool, len(onPath)*2)
	tc := make([]int, 0, len(onPath)*2)
	addPhysical := func(id int) {
		if !seen[id] && !c.Gates[id].Func.IsPseudo() {
			seen[id] = true
			tc = append(tc, id)
		}
	}
	for _, id := range onPath {
		addPhysical(id)
		if rng.Float64() > 0.5 {
			for _, fi := range c.Gates[id].Fanin {
				addPhysical(fi)
			}
		}
	}
	return tc
}

// PickTarget selects a uniformly random target from Tc; it returns -1 when
// Tc is empty.
func PickTarget(tc []int, rng *rand.Rand) int {
	if len(tc) == 0 {
		return -1
	}
	return tc[rng.Intn(len(tc))]
}

// BestSwitch selects the switch gate for a target: the candidate with the
// highest similarity among the target's transitive fan-in (excluding the
// target itself) and the two constants. The simulation result must belong
// to the same circuit. Ties break toward the earlier-arriving candidate
// when a timing report is supplied (nil is allowed), which favours path
// shortening at equal error cost. It returns false when the target has no
// usable candidate.
func BestSwitch(c *netlist.Circuit, res *sim.Result, r *sta.Report, target int) (Change, bool) {
	return bestSwitch(c, res, r, target, false)
}

// BestSwitchInv is BestSwitch with the inverted-wire substitution also in
// the candidate set (SASIMI's full catalogue).
func BestSwitchInv(c *netlist.Circuit, res *sim.Result, r *sta.Report, target int) (Change, bool) {
	return bestSwitch(c, res, r, target, true)
}

func bestSwitch(c *netlist.Circuit, res *sim.Result, r *sta.Report, target int, allowInv bool) (Change, bool) {
	if target < 0 || target >= len(c.Gates) || c.Gates[target].Func.IsPseudo() {
		return Change{}, false
	}
	tfi := c.TFI(target)
	best := Change{Target: target, Switch: -1, Similarity: -1}
	better := func(sim float64, id int) bool {
		if sim != best.Similarity {
			return sim > best.Similarity
		}
		if r == nil || best.Switch < 0 {
			return false
		}
		return r.Arrival[id] < r.Arrival[best.Switch]
	}
	for id := range c.Gates {
		if !tfi[id] || id == target {
			continue
		}
		f := c.Gates[id].Func
		if f == cell.OutPort || f.IsConst() {
			continue
		}
		s := errest.Similarity(res, target, id)
		if better(s, id) {
			best = Change{Target: target, Switch: id, Kind: WireByWire, Similarity: s}
		}
		if allowInv {
			if si := 1 - s; better(si, id) {
				best = Change{Target: target, Switch: id, Kind: WireByInvWire, Similarity: si}
			}
		}
	}
	// Constants: materialize lazily only if selected.
	s0 := errest.ConstSimilarity(res, target, false)
	s1 := errest.ConstSimilarity(res, target, true)
	constKind := -1
	if s0 > best.Similarity {
		best = Change{Target: target, Switch: -1, Kind: WireByConst, Similarity: s0}
		constKind = 0
	}
	if s1 > best.Similarity {
		best = Change{Target: target, Switch: -1, Kind: WireByConst, Similarity: s1}
		constKind = 1
	}
	if best.Similarity < 0 {
		return Change{}, false
	}
	if best.Kind == WireByConst {
		if constKind == 0 {
			best.Switch = c.Const0()
		} else {
			best.Switch = c.Const1()
		}
	}
	return best, true
}

// Search performs one full circuit-searching action: build Tc from the
// timing report, pick a random target, select the best switch and apply
// it. It reports whether a change was applied.
func Search(c *netlist.Circuit, res *sim.Result, r *sta.Report, rng *rand.Rand, margin float64) (Change, bool) {
	return SearchN(c, res, r, rng, margin, 1)
}

// SearchN is Search with up to tries random targets sampled from Tc; the
// change with the highest similarity (lowest expected error) is applied.
// One LAC is still applied per action — extra tries only de-noise the
// similarity-guided pick on error-sensitive circuits.
func SearchN(c *netlist.Circuit, res *sim.Result, r *sta.Report, rng *rand.Rand, margin float64, tries int) (Change, bool) {
	tc := Targets(c, r, rng, margin)
	best := Change{Similarity: -1}
	found := false
	for k := 0; k < tries; k++ {
		target := PickTarget(tc, rng)
		if target < 0 {
			break
		}
		ch, ok := BestSwitch(c, res, r, target)
		if ok && ch.Similarity > best.Similarity {
			best = ch
			found = true
		}
	}
	if !found {
		return Change{}, false
	}
	Apply(c, best)
	return best, true
}

// RandomChange applies a LAC to a uniformly random live physical gate —
// the population-initialization move (the paper performs LACs "on randomly
// selected target gates of the accurate circuit"). It reports whether a
// change was applied.
func RandomChange(c *netlist.Circuit, res *sim.Result, rng *rand.Rand) (Change, bool) {
	live := c.Live()
	var phys []int
	for id, g := range c.Gates {
		if live[id] && !g.Func.IsPseudo() {
			phys = append(phys, id)
		}
	}
	if len(phys) == 0 {
		return Change{}, false
	}
	target := phys[rng.Intn(len(phys))]
	ch, ok := BestSwitch(c, res, nil, target)
	if !ok {
		return Change{}, false
	}
	Apply(c, ch)
	return ch, true
}
