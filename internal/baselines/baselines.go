// Package baselines implements the four comparison methods of the paper's
// evaluation on the same substrate (simulation, STA, LACs, error
// estimation) as DCGWO, so the experiments compare optimizer strategies
// and nothing else:
//
//   - VECBEE-SASIMI [Su et al., TCAD'22]: area-driven greedy
//     substitution — repeatedly apply the highest-similarity LAC with the
//     best area saving that keeps the error within budget.
//   - VaACS [Balaskas et al., TCSI'22]: genetic optimization of
//     approximate circuits, depth-driven fitness.
//   - HEDALS [Meng et al., TCAD'23]: delay-driven greedy — apply the LAC
//     on the critical path with the best delay reduction under the error
//     budget.
//   - Single-chase GWO [Mirjalili et al.]: the traditional grey wolf
//     optimizer with one guidance hierarchy and plain fitness-truncation
//     selection (no population division, no non-dominated sorting).
package baselines

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"sort"

	"repro/internal/cell"
	"repro/internal/core"
	"repro/internal/lac"
	"repro/internal/netlist"
	"repro/internal/sim"
	"repro/internal/sta"
)

// Method identifies one baseline optimizer.
type Method uint8

const (
	// VecbeeSasimi is the area-driven greedy method.
	VecbeeSasimi Method = iota
	// VaACS is the genetic depth-driven method.
	VaACS
	// HEDALS is the delay-driven greedy method.
	HEDALS
	// SingleChaseGWO is the traditional grey wolf optimizer.
	SingleChaseGWO
)

// String names the method as in the paper's tables.
func (m Method) String() string {
	switch m {
	case VecbeeSasimi:
		return "VECBEE-S"
	case VaACS:
		return "VaACS"
	case HEDALS:
		return "HEDALS"
	case SingleChaseGWO:
		return "GWO (single-chase)"
	}
	return fmt.Sprintf("Method(%d)", uint8(m))
}

// Methods lists all baselines in the tables' column order.
func Methods() []Method { return []Method{VecbeeSasimi, VaACS, HEDALS, SingleChaseGWO} }

// Config tunes a baseline run. Rounds/population are scaled so every
// method gets a comparable evaluation budget to DCGWO.
type Config struct {
	// Metric and ErrorBudget mirror core.Config.
	Metric      core.Metric
	ErrorBudget float64
	// Rounds bounds greedy iterations / GA generations / GWO iterations.
	Rounds int
	// Population is the GA/GWO population size.
	Population int
	// CandidatesPerRound bounds how many LAC candidates a greedy method
	// evaluates per round.
	CandidatesPerRound int
	// Vectors is the Monte-Carlo sample size.
	Vectors int
	// CritMargin widens the critical-path candidate set.
	CritMargin float64
	// DepthWeight is the fitness weight used for reporting Fit; greedy
	// baselines optimize their own single objective regardless.
	DepthWeight float64
	// EvalWorkers caps the parallel-evaluation pool (0 = GOMAXPROCS);
	// mirrors core.Config.EvalWorkers.
	EvalWorkers int
	// Progress, when non-nil, is invoked once per round/generation with
	// the best individual found so far, mirroring core.Config.Progress.
	// It draws no randomness, so installing it never perturbs results.
	Progress func(core.IterStats)
	// OnImproved, when non-nil, is invoked every time the running best
	// feasible individual improves, mirroring core.Config.OnImproved. It
	// draws no randomness, so installing it never perturbs results.
	OnImproved func(*core.Individual)
	// Seed fixes the run.
	Seed int64
}

// DefaultConfig mirrors the evaluation budget of core.DefaultConfig.
func DefaultConfig(m core.Metric, budget float64) Config {
	return Config{
		Metric:             m,
		ErrorBudget:        budget,
		Rounds:             20,
		Population:         30,
		CandidatesPerRound: 24,
		Vectors:            1 << 14,
		CritMargin:         0.05,
		DepthWeight:        0.8,
		Seed:               1,
	}
}

// Result mirrors core.Result for a baseline run. Front is the feasible
// non-dominated set the method ends with: the final population's front
// for the population methods (VaACS, single-chase GWO), and the best/
// current pair for the greedy methods (which keep no population).
type Result struct {
	Best        *core.Individual
	Front       []*core.Individual
	Evaluations int
	// Cache reports the evaluation cache's effectiveness over the run.
	Cache core.CacheStats
}

// Run executes the selected baseline on the accurate circuit.
func Run(method Method, accurate *netlist.Circuit, lib *cell.Library, cfg Config) (*Result, error) {
	return RunContext(context.Background(), method, accurate, lib, cfg)
}

// RunContext is Run with cooperative cancellation: the context is checked
// once per greedy round / GA generation / GWO iteration, and a cancelled
// run returns an error wrapping ctx.Err(). The check draws no randomness,
// so an uncancelled run is bit-identical to Run and a cancelled-then-rerun
// flow reproduces the original result exactly.
func RunContext(ctx context.Context, method Method, accurate *netlist.Circuit, lib *cell.Library, cfg Config) (*Result, error) {
	base := accurate.Clone()
	base.Const0()
	base.Const1()
	rng := rand.New(rand.NewSource(cfg.Seed))
	vectors := sim.Random(rng, len(base.PIs), cfg.Vectors)
	eval, err := core.NewEvaluator(base, lib, cfg.Metric, cfg.DepthWeight, vectors)
	if err != nil {
		return nil, err
	}
	eval.SetMaxWorkers(cfg.EvalWorkers)
	r := &runner{ctx: ctx, cfg: cfg, lib: lib, base: base, eval: eval, rng: rng}
	switch method {
	case VecbeeSasimi:
		return r.greedy(objectiveArea)
	case HEDALS:
		return r.greedy(objectiveDelay)
	case VaACS:
		return r.genetic()
	case SingleChaseGWO:
		return r.singleChaseGWO()
	}
	return nil, fmt.Errorf("baselines: unknown method %v", method)
}

type runner struct {
	ctx  context.Context
	cfg  Config
	lib  *cell.Library
	base *netlist.Circuit
	eval *core.Evaluator
	rng  *rand.Rand
}

// checkpoint reports cancellation at a round boundary and emits progress
// for the best individual so far; it consumes no randomness.
func (r *runner) checkpoint(round int, best *core.Individual) error {
	if err := r.ctx.Err(); err != nil {
		return fmt.Errorf("baselines: cancelled at round %d/%d: %w", round, r.cfg.Rounds, err)
	}
	if r.cfg.Progress != nil && best != nil {
		r.cfg.Progress(core.IterStats{
			Iter:        round,
			BestFit:     best.Fit,
			BestDelay:   best.Delay,
			BestArea:    best.Area,
			BestErr:     best.Err,
			ErrAllowed:  r.cfg.ErrorBudget,
			Evaluations: r.eval.Count(),
			Cache:       r.eval.CacheStats(),
		})
	}
	return nil
}

// improved reports a new running best to the OnImproved hook; like
// checkpoint it consumes no randomness.
func (r *runner) improved(best *core.Individual) {
	if r.cfg.OnImproved != nil && best != nil {
		r.cfg.OnImproved(best)
	}
}

// front assembles the Result.Front from the method's final candidates via
// the shared core helper (feasible, deduplicated, non-dominated, best
// always retained, deterministic order).
func (r *runner) front(best *core.Individual, others []*core.Individual) []*core.Individual {
	return core.FeasibleFront(best, others, r.cfg.ErrorBudget, r.eval.RefDelay(), r.eval.RefArea())
}

// objective scores a candidate individual for the greedy methods; lower is
// better.
type objective func(ind *core.Individual) float64

func objectiveArea(ind *core.Individual) float64  { return ind.Area }
func objectiveDelay(ind *core.Individual) float64 { return ind.Delay }

// greedy implements both VECBEE-SASIMI (area objective, targets anywhere)
// and HEDALS (delay objective, targets on critical paths): per round,
// enumerate candidate LACs, evaluate each on a clone, and commit the best
// feasible improvement. Rounds without a feasible improvement end the run.
func (r *runner) greedy(score objective) (*Result, error) {
	r.eval.BeginGeneration()
	cur, err := r.eval.Evaluate(r.base.Clone())
	if err != nil {
		return nil, err
	}
	best := cur
	r.improved(best)
	failures := 0
	for round := 0; round < r.cfg.Rounds; round++ {
		if err := r.checkpoint(round, best); err != nil {
			return nil, err
		}
		r.eval.BeginGeneration()
		res, err := r.eval.Simulate(cur.Circuit)
		if err != nil {
			return nil, err
		}
		rep, err := sta.Analyze(cur.Circuit, r.lib)
		if err != nil {
			return nil, err
		}
		targets := r.pickTargets(cur.Circuit, rep, score)
		improved := false
		// Candidate LACs are selected serially against the shared
		// simulation, then the clones are evaluated as one parallel batch
		// — the pick below scans them in the same order as the serial
		// code did.
		clones := make([]*netlist.Circuit, 0, len(targets))
		for _, target := range targets {
			// The greedy methods use SASIMI's full catalogue including
			// the inverted-wire substitution.
			ch, ok := lac.BestSwitchInv(cur.Circuit, res, rep, target)
			if !ok {
				continue
			}
			clone := cur.Circuit.Clone()
			lac.Apply(clone, ch)
			clones = append(clones, clone)
		}
		kids, err := r.eval.EvaluateBatch(clones)
		if err != nil {
			return nil, err
		}
		var bestChild *core.Individual
		for _, child := range kids {
			if child.Err > r.cfg.ErrorBudget {
				continue
			}
			if score(child) >= score(cur) {
				continue
			}
			if bestChild == nil || score(child) < score(bestChild) {
				bestChild = child
			}
		}
		if bestChild != nil {
			cur = bestChild
			improved = true
			if cur.Fit > best.Fit {
				best = cur
				r.improved(best)
			}
		}
		// A dry round may just be an unlucky target sample; give the
		// greedy a few more draws before concluding it has converged.
		if improved {
			failures = 0
		} else if failures++; failures >= 3 {
			break
		}
	}
	return &Result{Best: best, Front: r.front(best, []*core.Individual{cur}), Evaluations: r.eval.Count(), Cache: r.eval.CacheStats()}, nil
}

// pickTargets selects candidate target gates for one greedy round: HEDALS
// draws from the critical paths; SASIMI samples live physical gates
// uniformly. Both are capped at CandidatesPerRound.
func (r *runner) pickTargets(c *netlist.Circuit, rep *sta.Report, score objective) []int {
	var pool []int
	if isDelayObjective(score) {
		pool = rep.CriticalGates(c, r.cfg.CritMargin)
	} else {
		live := c.Live()
		for id, g := range c.Gates {
			if live[id] && !g.Func.IsPseudo() {
				pool = append(pool, id)
			}
		}
	}
	r.rng.Shuffle(len(pool), func(i, j int) { pool[i], pool[j] = pool[j], pool[i] })
	if len(pool) > r.cfg.CandidatesPerRound {
		pool = pool[:r.cfg.CandidatesPerRound]
	}
	return pool
}

func isDelayObjective(score objective) bool {
	probe := &core.Individual{Delay: 2, Area: 1}
	return score(probe) == 2
}

// seedPopulation builds the initial population shared by the GA and GWO
// baselines: the exact circuit plus batch-evaluated single-LAC mutants.
func (r *runner) seedPopulation(exact *core.Individual, popSize int) ([]*core.Individual, error) {
	pop := []*core.Individual{exact}
	if popSize <= 1 {
		return pop, nil
	}
	seeds := make([]*netlist.Circuit, 0, popSize-1)
	for len(pop)+len(seeds) < popSize {
		c, err := r.mutateClone(exact)
		if err != nil {
			return nil, err
		}
		seeds = append(seeds, c)
	}
	inds, err := r.eval.EvaluateBatch(seeds)
	if err != nil {
		return nil, err
	}
	return append(pop, inds...), nil
}

// genetic implements the VaACS-style GA: elitist selection on a
// delay-driven fitness, offspring by LAC mutation and reproduction-style
// crossover, infeasible individuals discarded. Offspring are generated
// serially (preserving the rng stream) and evaluated in parallel batches.
func (r *runner) genetic() (*Result, error) {
	popSize := r.cfg.Population
	r.eval.BeginGeneration()
	exact, err := r.eval.Evaluate(r.base.Clone())
	if err != nil {
		return nil, err
	}
	pop, err := r.seedPopulation(exact, popSize)
	if err != nil {
		return nil, err
	}
	best := exact
	r.improved(best)
	wt := 0.9 * r.eval.RefDelay()
	for gen := 0; gen < r.cfg.Rounds; gen++ {
		if err := r.checkpoint(gen, best); err != nil {
			return nil, err
		}
		r.eval.BeginGeneration()
		// Delay-driven fitness: feasible first, then faster first.
		sort.Slice(pop, func(i, j int) bool {
			fi, fj := pop[i].Err <= r.cfg.ErrorBudget, pop[j].Err <= r.cfg.ErrorBudget
			if fi != fj {
				return fi
			}
			return pop[i].Delay < pop[j].Delay
		})
		if pop[0].Err <= r.cfg.ErrorBudget && pop[0].Fit > best.Fit {
			best = pop[0]
			r.improved(best)
		}
		elite := pop[:max(2, popSize/4)]
		next := append([]*core.Individual(nil), elite...)
		offspring := make([]*netlist.Circuit, 0, popSize-len(next))
		for len(next)+len(offspring) < popSize {
			p1 := elite[r.rng.Intn(len(elite))]
			if r.rng.Float64() < 0.5 {
				p2 := pop[r.rng.Intn(len(pop))]
				if child := core.Reproduce(p1, p2, wt, 0.1); child != nil {
					offspring = append(offspring, child)
					continue
				}
			}
			child, err := r.mutateClone(p1)
			if err != nil {
				return nil, err
			}
			offspring = append(offspring, child)
		}
		inds, err := r.eval.EvaluateBatch(offspring)
		if err != nil {
			return nil, err
		}
		pop = append(next, inds...)
	}
	for _, ind := range pop {
		if ind.Err <= r.cfg.ErrorBudget && ind.Fit > best.Fit {
			best = ind
			r.improved(best)
		}
	}
	return &Result{Best: best, Front: r.front(best, pop), Evaluations: r.eval.Count(), Cache: r.eval.CacheStats()}, nil
}

// mutateClone clones the individual and applies one similarity-guided LAC
// (consuming rng); evaluation is left to the caller so independent mutants
// can be batched.
func (r *runner) mutateClone(ind *core.Individual) (*netlist.Circuit, error) {
	clone := ind.Circuit.Clone()
	res, err := r.eval.Simulate(clone)
	if err != nil {
		return nil, err
	}
	lac.RandomChange(clone, res, r.rng)
	return clone, nil
}

// singleChaseGWO implements the traditional GWO baseline: every non-alpha
// wolf consults the alpha only (one chase), actions decided by the same
// W-threshold rule, survivors picked by plain fitness truncation — no
// population division and no Pareto selection.
func (r *runner) singleChaseGWO() (*Result, error) {
	popSize := r.cfg.Population
	r.eval.BeginGeneration()
	exact, err := r.eval.Evaluate(r.base.Clone())
	if err != nil {
		return nil, err
	}
	pop, err := r.seedPopulation(exact, popSize)
	if err != nil {
		return nil, err
	}
	best := bestFeasible(pop, r.cfg.ErrorBudget)
	r.improved(best)
	wt := 0.9 * r.eval.RefDelay()
	const threshold = 0.5
	for iter := 1; iter <= r.cfg.Rounds; iter++ {
		if err := r.checkpoint(iter-1, best); err != nil {
			return nil, err
		}
		r.eval.BeginGeneration()
		a := 2 - 2*float64(iter)/float64(r.cfg.Rounds)
		sort.Slice(pop, func(i, j int) bool { return pop[i].Fit > pop[j].Fit })
		alpha := pop[0]
		candidates := append([]*core.Individual(nil), pop...)
		// Per-wolf actions consume rng serially; the resulting children
		// are independent and evaluated as one batch.
		offspring := make([]*netlist.Circuit, 0, len(pop)-1)
		for _, ci := range pop[1:] {
			d := math.Abs(r.rng.Float64()*2*alpha.Fit - ci.Fit)
			w := (2*r.rng.Float64() - 1) * a * d
			var childC *netlist.Circuit
			if w > threshold {
				childC = core.Reproduce(ci, alpha, wt, 0.1)
			}
			if childC == nil {
				clone := ci.Circuit.Clone()
				res, err := r.eval.Simulate(clone)
				if err != nil {
					return nil, err
				}
				rep, err := sta.Analyze(clone, r.lib)
				if err != nil {
					return nil, err
				}
				if _, ok := lac.Search(clone, res, rep, r.rng, r.cfg.CritMargin); !ok {
					lac.RandomChange(clone, res, r.rng)
				}
				childC = clone
			}
			offspring = append(offspring, childC)
		}
		kids, err := r.eval.EvaluateBatch(offspring)
		if err != nil {
			return nil, err
		}
		candidates = append(candidates, kids...)
		// Plain truncation: feasible under the FULL budget (no asymptotic
		// relaxation — that refinement is DCGWO's), fittest first.
		feasible := candidates[:0:0]
		for _, ind := range candidates {
			if ind.Err <= r.cfg.ErrorBudget {
				feasible = append(feasible, ind)
			}
		}
		if len(feasible) == 0 {
			feasible = append(feasible, exact)
		}
		sort.Slice(feasible, func(i, j int) bool { return feasible[i].Fit > feasible[j].Fit })
		if len(feasible) > popSize {
			feasible = feasible[:popSize]
		}
		pop = feasible
		if b := bestFeasible(pop, r.cfg.ErrorBudget); b != nil && (best == nil || b.Fit > best.Fit) {
			best = b
			r.improved(best)
		}
	}
	return &Result{Best: best, Front: r.front(best, pop), Evaluations: r.eval.Count(), Cache: r.eval.CacheStats()}, nil
}

func bestFeasible(pop []*core.Individual, budget float64) *core.Individual {
	var best *core.Individual
	for _, ind := range pop {
		if ind.Err <= budget && (best == nil || ind.Fit > best.Fit) {
			best = ind
		}
	}
	return best
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
