package baselines

import (
	"testing"

	"repro/internal/cell"
	"repro/internal/core"
	"repro/internal/netlist"
)

var lib = cell.Default28nm()

// adder8 mirrors the core test workload.
func adder8() *netlist.Circuit {
	c := netlist.New("adder8")
	a := make([]int, 8)
	b := make([]int, 8)
	for i := range a {
		a[i] = c.AddInput("a")
	}
	for i := range b {
		b[i] = c.AddInput("b")
	}
	carry := -1
	for i := 0; i < 8; i++ {
		var sum int
		if carry < 0 {
			sum = c.AddGate(cell.Xor2, a[i], b[i])
			carry = c.AddGate(cell.And2, a[i], b[i])
		} else {
			x := c.AddGate(cell.Xor2, a[i], b[i])
			sum = c.AddGate(cell.Xor2, x, carry)
			carry = c.AddGate(cell.Maj3, a[i], b[i], carry)
		}
		c.AddOutput("s", sum)
	}
	c.AddOutput("cout", carry)
	return c
}

func smallConfig(m core.Metric, budget float64) Config {
	cfg := DefaultConfig(m, budget)
	cfg.Rounds = 5
	cfg.Population = 8
	cfg.CandidatesPerRound = 10
	cfg.Vectors = 1024
	cfg.Seed = 5
	return cfg
}

func TestMethodNames(t *testing.T) {
	want := map[Method]string{
		VecbeeSasimi:   "VECBEE-S",
		VaACS:          "VaACS",
		HEDALS:         "HEDALS",
		SingleChaseGWO: "GWO (single-chase)",
	}
	for m, name := range want {
		if m.String() != name {
			t.Errorf("%d.String() = %q, want %q", m, m.String(), name)
		}
	}
	if len(Methods()) != 4 {
		t.Error("Methods() must list all four baselines")
	}
}

func TestAllBaselinesRespectBudget(t *testing.T) {
	for _, m := range Methods() {
		m := m
		t.Run(m.String(), func(t *testing.T) {
			t.Parallel()
			res, err := Run(m, adder8(), lib, smallConfig(core.MetricNMED, 0.0244))
			if err != nil {
				t.Fatal(err)
			}
			if res.Best == nil {
				t.Fatal("no result")
			}
			if res.Best.Err > 0.0244 {
				t.Errorf("error %v exceeds budget", res.Best.Err)
			}
			if err := res.Best.Circuit.Validate(); err != nil {
				t.Errorf("best circuit invalid: %v", err)
			}
			if res.Evaluations == 0 {
				t.Error("no evaluations recorded")
			}
		})
	}
}

func TestGreedySasimiReducesArea(t *testing.T) {
	res, err := Run(VecbeeSasimi, adder8(), lib, smallConfig(core.MetricNMED, 0.05))
	if err != nil {
		t.Fatal(err)
	}
	accurateArea := adder8().Area(lib)
	if res.Best.Area > accurateArea {
		t.Errorf("area-driven greedy grew the area: %v > %v", res.Best.Area, accurateArea)
	}
}

func TestHedalsTargetsDelay(t *testing.T) {
	cfg := smallConfig(core.MetricER, 0.05)
	res, err := Run(HEDALS, adder8(), lib, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// HEDALS must never return something slower than the exact circuit
	// (it only commits strict delay improvements).
	opt, err := core.New(adder8(), lib, core.DefaultConfig(core.MetricER, 0.05))
	if err != nil {
		t.Fatal(err)
	}
	if res.Best.Delay > opt.RefDelay()+1e-9 {
		t.Errorf("HEDALS result slower than accurate: %v > %v", res.Best.Delay, opt.RefDelay())
	}
}

func TestZeroBudgetKeepsExact(t *testing.T) {
	for _, m := range Methods() {
		res, err := Run(m, adder8(), lib, smallConfig(core.MetricER, 0))
		if err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		if res.Best.Err != 0 {
			t.Errorf("%v: zero budget but error %v", m, res.Best.Err)
		}
	}
}

func TestDeterministicRuns(t *testing.T) {
	for _, m := range Methods() {
		a, err := Run(m, adder8(), lib, smallConfig(core.MetricNMED, 0.0244))
		if err != nil {
			t.Fatal(err)
		}
		b, err := Run(m, adder8(), lib, smallConfig(core.MetricNMED, 0.0244))
		if err != nil {
			t.Fatal(err)
		}
		if a.Best.Fit != b.Best.Fit {
			t.Errorf("%v: same seed, different fitness (%v vs %v)", m, a.Best.Fit, b.Best.Fit)
		}
	}
}

func TestUnknownMethod(t *testing.T) {
	if _, err := Run(Method(99), adder8(), lib, smallConfig(core.MetricER, 0.05)); err == nil {
		t.Error("unknown method must error")
	}
	if Method(99).String() == "" {
		t.Error("unknown method must still stringify")
	}
}

func TestObjectiveProbe(t *testing.T) {
	if !isDelayObjective(objectiveDelay) || isDelayObjective(objectiveArea) {
		t.Error("objective probe misclassifies")
	}
}
