package baselines

import (
	"context"
	"errors"
	"testing"

	"repro/internal/core"
)

// TestRunContextCancelAllMethods checks every baseline stops at a round
// boundary when its context is cancelled, and that the progress hook both
// fires and never perturbs results.
func TestRunContextCancelAllMethods(t *testing.T) {
	for _, m := range Methods() {
		m := m
		t.Run(m.String(), func(t *testing.T) {
			t.Parallel()

			// Reference run, no hooks.
			want, err := Run(m, adder8(), lib, smallConfig(core.MetricNMED, 0.0244))
			if err != nil {
				t.Fatal(err)
			}

			// Progress-hooked run must be bit-identical and report rounds.
			cfg := smallConfig(core.MetricNMED, 0.0244)
			fired := 0
			cfg.Progress = func(st core.IterStats) {
				fired++
				if st.Evaluations == 0 {
					t.Errorf("progress reported zero evaluations: %+v", st)
				}
			}
			got, err := RunContext(context.Background(), m, adder8(), lib, cfg)
			if err != nil {
				t.Fatal(err)
			}
			if fired == 0 {
				t.Error("progress hook never fired")
			}
			if got.Best.Fit != want.Best.Fit || got.Best.Err != want.Best.Err ||
				got.Evaluations != want.Evaluations {
				t.Errorf("hooked run = (%v %v %d), plain run = (%v %v %d)",
					got.Best.Fit, got.Best.Err, got.Evaluations,
					want.Best.Fit, want.Best.Err, want.Evaluations)
			}

			// Cancel after the first round via the progress hook.
			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			cfg2 := smallConfig(core.MetricNMED, 0.0244)
			cfg2.Progress = func(core.IterStats) { cancel() }
			if _, err := RunContext(ctx, m, adder8(), lib, cfg2); !errors.Is(err, context.Canceled) {
				t.Fatalf("cancelled run err = %v, want context.Canceled", err)
			}

			// Cancellation must not leak into a later identical run.
			again, err := Run(m, adder8(), lib, smallConfig(core.MetricNMED, 0.0244))
			if err != nil {
				t.Fatal(err)
			}
			if again.Best.Fit != want.Best.Fit || again.Evaluations != want.Evaluations {
				t.Errorf("rerun after cancel diverged: (%v %d) vs (%v %d)",
					again.Best.Fit, again.Evaluations, want.Best.Fit, want.Evaluations)
			}
		})
	}
}
