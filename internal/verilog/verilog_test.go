package verilog

import (
	"strings"
	"testing"

	"repro/internal/cell"
	"repro/internal/netlist"
	"repro/internal/sim"
)

func sampleCircuit() *netlist.Circuit {
	c := netlist.New("sample")
	a := c.AddInput("a")
	b := c.AddInput("b")
	s := c.AddInput("sel")
	n1 := c.AddGate(cell.Nand2, a, b)
	n2 := c.AddGate(cell.Xor2, n1, s)
	n3 := c.AddGate(cell.Mux2, n1, n2, s)
	c.Gates[n3].Drive = cell.X4
	andc := c.AddGate(cell.And2, n2, c.Const1())
	c.AddOutput("y0", n3)
	c.AddOutput("y1", andc)
	return c
}

// equivalent checks functional equality of two circuits by exhaustive
// simulation.
func equivalent(t *testing.T, a, b *netlist.Circuit) bool {
	t.Helper()
	if len(a.PIs) != len(b.PIs) || len(a.POs) != len(b.POs) {
		return false
	}
	v, err := sim.Exhaustive(len(a.PIs))
	if err != nil {
		t.Fatal(err)
	}
	ra, err := sim.Run(a, v)
	if err != nil {
		t.Fatal(err)
	}
	rb, err := sim.Run(b, v)
	if err != nil {
		t.Fatal(err)
	}
	pa, pb := sim.POSignals(a, ra), sim.POSignals(b, rb)
	for i := range pa {
		if sim.CountDiff(pa[i], pb[i]) != 0 {
			return false
		}
	}
	return true
}

func TestWriteContainsStructure(t *testing.T) {
	src := Write(sampleCircuit())
	for _, want := range []string{"module sample", "input a;", "output y0;", "NAND2X1", "MUX2X4", "TIE1", "endmodule"} {
		if !strings.Contains(src, want) {
			t.Errorf("output missing %q:\n%s", want, src)
		}
	}
}

func TestRoundTripEquivalent(t *testing.T) {
	orig := sampleCircuit()
	src := Write(orig)
	parsed, err := Parse(src)
	if err != nil {
		t.Fatalf("parse failed: %v\n%s", err, src)
	}
	if err := parsed.Validate(); err != nil {
		t.Fatal(err)
	}
	if !equivalent(t, orig, parsed) {
		t.Error("round-tripped circuit is not functionally equivalent")
	}
	if parsed.Gates[parsedGateByFunc(parsed, cell.Mux2)].Drive != cell.X4 {
		t.Error("drive strength lost in round trip")
	}
}

func parsedGateByFunc(c *netlist.Circuit, f cell.Func) int {
	for id, g := range c.Gates {
		if g.Func == f {
			return id
		}
	}
	return -1
}

func TestRoundTripPortOrder(t *testing.T) {
	orig := sampleCircuit()
	parsed, err := Parse(Write(orig))
	if err != nil {
		t.Fatal(err)
	}
	if got, want := parsed.PINames(), orig.PINames(); strings.Join(got, ",") != strings.Join(want, ",") {
		t.Errorf("PI order %v != %v", got, want)
	}
	if got, want := parsed.PONames(), orig.PONames(); strings.Join(got, ",") != strings.Join(want, ",") {
		t.Errorf("PO order %v != %v", got, want)
	}
}

func TestWriteSkipsDangling(t *testing.T) {
	c := sampleCircuit()
	// Dangle the AND gate by rewiring its PO to const0.
	c.SetFanin(c.POs[1], 0, c.Const0())
	src := Write(c)
	if strings.Contains(src, " AND2X1 ") {
		t.Errorf("dangling gate must not be written:\n%s", src)
	}
	if !strings.Contains(src, "TIE0") {
		t.Error("const0 must be written once it drives a PO")
	}
}

func TestParseConstantLiterals(t *testing.T) {
	src := `module m (a, y);
  input a;
  output y;
  wire n1;
  AND2X1 g1 (.A(a), .B(1'b1), .Y(n1));
  assign y = n1;
endmodule`
	c, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := c.ConstID(true); !ok {
		t.Error("1'b1 literal must materialize Const1")
	}
}

func TestParseAssignAlias(t *testing.T) {
	src := `module m (a, y);
  input a;
  output y;
  wire n1, n2;
  INVX2 g1 (.A(a), .Y(n1));
  assign n2 = n1;
  assign y = n2;
endmodule`
	c, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(c.POs) != 1 {
		t.Fatal("expected one PO")
	}
	drv := c.Gates[c.POs[0]].Fanin[0]
	if c.Gates[drv].Func != cell.Inv || c.Gates[drv].Drive != cell.X2 {
		t.Errorf("PO driver is %v%v, want INVX2", c.Gates[drv].Func, c.Gates[drv].Drive)
	}
}

func TestParseErrors(t *testing.T) {
	cases := map[string]string{
		"unknown cell": `module m (a, y); input a; output y; wire n;
			FOO9X1 g (.A(a), .Y(n)); assign y = n; endmodule`,
		"missing Y pin": `module m (a, y); input a; output y; wire n;
			INVX1 g (.A(a)); assign y = n; endmodule`,
		"undeclared net": `module m (a, y); input a; output y;
			INVX1 g (.A(bogus), .Y(y)); endmodule`,
		"double driver": `module m (a, y); input a; output y; wire n;
			INVX1 g1 (.A(a), .Y(n)); INVX1 g2 (.A(a), .Y(n)); assign y = n; endmodule`,
		"no endmodule": `module m (a, y); input a; output y;`,
		"alias loop": `module m (a, y); input a; output y; wire n1, n2;
			assign n1 = n2; assign n2 = n1; assign y = n1; endmodule`,
	}
	for name, src := range cases {
		if _, err := Parse(src); err == nil {
			t.Errorf("%s: Parse must fail", name)
		}
	}
}

func TestParseComments(t *testing.T) {
	src := `// header
module m (a, y); /* block
comment */ input a; output y; wire n;
INVX1 g (.A(a), .Y(n)); // trailing
assign y = n;
endmodule`
	if _, err := Parse(src); err != nil {
		t.Fatal(err)
	}
}

func TestSanitizeIdent(t *testing.T) {
	if got := sanitizeIdent("a[3].x-y"); got != "a_3__x_y" {
		t.Errorf("sanitizeIdent = %q", got)
	}
	if got := sanitizeIdent("3abc"); got != "abc" {
		t.Errorf("leading digit must be dropped, got %q", got)
	}
}

func TestWriteUniqueNames(t *testing.T) {
	c := netlist.New("dup")
	a1 := c.AddInput("x")
	a2 := c.AddInput("x") // duplicate port name
	g := c.AddGate(cell.And2, a1, a2)
	c.AddOutput("x", g) // collides again
	src := Write(c)
	if _, err := Parse(src); err != nil {
		t.Fatalf("writer must uniquify colliding names: %v\n%s", err, src)
	}
}

// TestParseErrorMessages pins down the error each malformed-input class
// produces: the alsd daemon ingests untrusted .v uploads through Parse,
// so every rejection must be a clean, located error — never a panic, and
// specific enough for the client to act on.
func TestParseErrorMessages(t *testing.T) {
	cases := []struct {
		name, src, want string
	}{
		{"empty source", "", `expected "module"`},
		{"missing module keyword", "modul m (a, y); endmodule", `expected "module"`},
		{"missing module name", "module ; endmodule", "missing module name"},
		{"missing port list", "module m; endmodule", `expected "("`},
		{"unterminated port list", "module m (a, y; endmodule", `expected ")"`},
		{"missing semicolon after header", "module m (a, y) endmodule", `expected ";"`},
		{"unknown cell", `module m (a, y); input a; output y; wire n;
			FOO9X1 g (.A(a), .Y(n)); assign y = n; endmodule`, `unknown cell "FOO9X1"`},
		{"unknown drive suffix", `module m (a, y); input a; output y; wire n;
			INVX9 g (.A(a), .Y(n)); assign y = n; endmodule`, `unknown cell "INVX9"`},
		{"undeclared wire", `module m (a, y); input a; output y;
			INVX1 g (.A(bogus), .Y(y)); endmodule`, `undeclared net "bogus"`},
		{"declared but undriven wire", `module m (a, y); input a; output y; wire n;
			INVX1 g (.A(n), .Y(y)); endmodule`, `net "n" has no driver`},
		{"duplicate driver", `module m (a, y); input a; output y; wire n;
			INVX1 g1 (.A(a), .Y(n)); INVX1 g2 (.A(a), .Y(n)); assign y = n; endmodule`,
			`net "n" driven twice`},
		{"missing output pin", `module m (a, y); input a; output y; wire n;
			INVX1 g (.A(a)); assign y = n; endmodule`, "missing .Y pin"},
		{"missing input pin", `module m (a, b, y); input a, b; output y;
			NAND2X1 g (.A(a), .Y(y)); endmodule`, "missing .B pin"},
		{"missing instance name", `module m (a, y); input a; output y;
			INVX1 (.A(a), .Y(y)); endmodule`, "missing instance name"},
		{"bad wire declaration", `module m (a, y); input a; output y; wire ;
			INVX1 g (.A(a), .Y(y)); endmodule`, "bad wire declaration"},
		{"truncated instance", `module m (a, y); input a; output y;
			INVX1 g (.A(a), .Y(y)`, `expected ")"`},
		{"missing endmodule", `module m (a, y); input a; output y;
			INVX1 g (.A(a), .Y(y));`, "missing endmodule"},
		{"stray character", "module m (a, y); input a; output y; @", "unexpected character"},
		{"undriven output port", `module m (a, y); input a; output y; endmodule`,
			`output "y"`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c, err := Parse(tc.src)
			if err == nil {
				t.Fatalf("Parse accepted %q (got circuit with %d gates)", tc.src, len(c.Gates))
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error = %q, want mention of %q", err, tc.want)
			}
			if !strings.HasPrefix(err.Error(), "verilog:") && !strings.Contains(err.Error(), "netlist") {
				t.Errorf("error %q must identify its source package", err)
			}
		})
	}
}

// TestParseErrorsReportLineNumbers checks the parser locates errors on
// the offending source line.
func TestParseErrorsReportLineNumbers(t *testing.T) {
	src := "module m (a, y);\ninput a;\noutput y;\nwire n;\nFOO9X1 g (.A(a), .Y(n));\nassign y = n;\nendmodule"
	_, err := Parse(src)
	if err == nil {
		t.Fatal("Parse must reject the unknown cell")
	}
	if !strings.Contains(err.Error(), "line 5") {
		t.Errorf("error = %q, want it located on line 5", err)
	}
}

// TestParseNeverPanics throws structurally broken fragments at the parser
// (truncations of a valid module plus hostile inputs); every one must
// come back as (nil, error) or a valid circuit — never a panic.
func TestParseNeverPanics(t *testing.T) {
	valid := `module m (a, b, y);
  input a, b;
  output y;
  wire n1, n2;
  NAND2X1 g1 (.A(a), .B(b), .Y(n1));
  INVX2 g2 (.A(n1), .Y(n2));
  assign y = n2;
endmodule`
	var inputs []string
	for i := 0; i <= len(valid); i += 7 {
		inputs = append(inputs, valid[:i])
	}
	inputs = append(inputs,
		"((((((((",
		"module",
		"module m (",
		"module m (); ; ; endmodule",
		"module m (y); output y; assign y = y; endmodule",
		"module m (y); output y; assign y = 1'b0; endmodule; endmodule",
		"module m (a, y); input a; output y; TIE0 t (); endmodule",
		strings.Repeat("wire ", 2000),
	)
	for _, src := range inputs {
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Errorf("Parse(%.40q…) panicked: %v", src, r)
				}
			}()
			c, err := Parse(src)
			if err == nil && c == nil {
				t.Errorf("Parse(%.40q…) returned neither circuit nor error", src)
			}
		}()
	}
}
