// Package cell provides a synthetic 28nm-class standard-cell library used
// by the whole flow: combinational cell functions, drive strengths, and a
// linear RC timing/area model.
//
// The library substitutes for the TSMC 28nm library the paper synthesizes
// against. The ALS framework only consumes relative orderings — upsizing a
// cell makes it faster but larger, deeper paths are slower — so a monotone
// NLDM-like model (delay = intrinsic + Rdrive·Cload) preserves the
// optimization landscape without proprietary data.
package cell

import "fmt"

// Func identifies the logic function of a cell (or pseudo-cell).
type Func uint8

// Cell functions. Input, Const0/Const1 and OutPort are pseudo-cells: they
// occupy gate slots in a netlist but have zero area and zero delay.
const (
	// Input is a primary-input pseudo-cell with no fan-in.
	Input Func = iota
	// OutPort is a primary-output pseudo-cell with exactly one fan-in.
	OutPort
	// Const0 is the constant logic 0 pseudo-cell.
	Const0
	// Const1 is the constant logic 1 pseudo-cell.
	Const1
	// Buf is a non-inverting buffer.
	Buf
	// Inv is an inverter.
	Inv
	// And2 is a 2-input AND.
	And2
	// Nand2 is a 2-input NAND.
	Nand2
	// Or2 is a 2-input OR.
	Or2
	// Nor2 is a 2-input NOR.
	Nor2
	// Xor2 is a 2-input XOR.
	Xor2
	// Xnor2 is a 2-input XNOR.
	Xnor2
	// Mux2 selects fan-in 0 when the select (fan-in 2) is 0, else fan-in 1.
	Mux2
	// Aoi21 computes NOT((a AND b) OR c).
	Aoi21
	// Oai21 computes NOT((a OR b) AND c).
	Oai21
	// Maj3 is the 3-input majority function (full-adder carry).
	Maj3
	// NumFuncs is the number of defined functions.
	NumFuncs
)

var funcNames = [NumFuncs]string{
	Input: "INPUT", OutPort: "OUTPORT", Const0: "CONST0", Const1: "CONST1",
	Buf: "BUF", Inv: "INV", And2: "AND2", Nand2: "NAND2", Or2: "OR2",
	Nor2: "NOR2", Xor2: "XOR2", Xnor2: "XNOR2", Mux2: "MUX2",
	Aoi21: "AOI21", Oai21: "OAI21", Maj3: "MAJ3",
}

var funcArity = [NumFuncs]int{
	Input: 0, OutPort: 1, Const0: 0, Const1: 0,
	Buf: 1, Inv: 1, And2: 2, Nand2: 2, Or2: 2, Nor2: 2,
	Xor2: 2, Xnor2: 2, Mux2: 3, Aoi21: 3, Oai21: 3, Maj3: 3,
}

// String returns the library name of the function, e.g. "NAND2".
func (f Func) String() string {
	if f >= NumFuncs {
		return fmt.Sprintf("FUNC(%d)", uint8(f))
	}
	return funcNames[f]
}

// Arity returns the number of fan-ins the function requires.
func (f Func) Arity() int {
	if f >= NumFuncs {
		return 0
	}
	return funcArity[f]
}

// Valid reports whether f is a defined function.
func (f Func) Valid() bool { return f < NumFuncs }

// IsPseudo reports whether f is a port or constant pseudo-cell that has no
// physical implementation (zero area, zero delay).
func (f Func) IsPseudo() bool {
	return f == Input || f == OutPort || f == Const0 || f == Const1
}

// IsConst reports whether f is one of the constant pseudo-cells.
func (f Func) IsConst() bool { return f == Const0 || f == Const1 }

// FuncByName returns the function with the given library name.
func FuncByName(name string) (Func, bool) {
	for f := Func(0); f < NumFuncs; f++ {
		if funcNames[f] == name {
			return f, true
		}
	}
	return 0, false
}

// Eval64 evaluates the function over 64 parallel input patterns packed in
// uint64 words. in must hold Arity() words. Pseudo-cells evaluate to their
// defining value (Input returns 0 and must be overridden by the caller).
func (f Func) Eval64(in []uint64) uint64 {
	switch f {
	case Input:
		return 0
	case OutPort, Buf:
		return in[0]
	case Const0:
		return 0
	case Const1:
		return ^uint64(0)
	case Inv:
		return ^in[0]
	case And2:
		return in[0] & in[1]
	case Nand2:
		return ^(in[0] & in[1])
	case Or2:
		return in[0] | in[1]
	case Nor2:
		return ^(in[0] | in[1])
	case Xor2:
		return in[0] ^ in[1]
	case Xnor2:
		return ^(in[0] ^ in[1])
	case Mux2:
		// in[2] selects: 0 -> in[0], 1 -> in[1].
		return (in[0] &^ in[2]) | (in[1] & in[2])
	case Aoi21:
		return ^((in[0] & in[1]) | in[2])
	case Oai21:
		return ^((in[0] | in[1]) & in[2])
	case Maj3:
		return (in[0] & in[1]) | (in[1] & in[2]) | (in[0] & in[2])
	}
	return 0
}

// EvalBool evaluates the function on single boolean inputs.
func (f Func) EvalBool(in []bool) bool {
	words := make([]uint64, len(in))
	for i, b := range in {
		if b {
			words[i] = 1
		}
	}
	return f.Eval64(words)&1 == 1
}

// Drive is a cell drive-strength index (X1..X8).
type Drive uint8

// Drive strengths available for every physical cell.
const (
	X1 Drive = iota
	X2
	X4
	X8
	NumDrives
)

var driveNames = [NumDrives]string{"X1", "X2", "X4", "X8"}

// String returns the drive suffix, e.g. "X4".
func (d Drive) String() string {
	if d >= NumDrives {
		return fmt.Sprintf("X(%d)", uint8(d))
	}
	return driveNames[d]
}

// Valid reports whether d is a defined drive strength.
func (d Drive) Valid() bool { return d < NumDrives }

// DriveByName returns the drive with the given suffix.
func DriveByName(name string) (Drive, bool) {
	for d := Drive(0); d < NumDrives; d++ {
		if driveNames[d] == name {
			return d, true
		}
	}
	return 0, false
}

// Timing holds the linear delay model of one cell variant:
//
//	delay(ps) = Intrinsic + Resistance × Cload(fF)
type Timing struct {
	// Intrinsic is the zero-load propagation delay in picoseconds.
	Intrinsic float64
	// Resistance is the effective output resistance in ps per fF of load.
	Resistance float64
	// InputCap is the capacitance each input pin presents, in fF.
	InputCap float64
	// Area is the cell footprint in square micrometres.
	Area float64
}

// Variant names one physical cell: a function at a drive strength.
type Variant struct {
	Func  Func
	Drive Drive
}

// Name returns the library cell name, e.g. "NAND2X2".
func (v Variant) Name() string { return v.Func.String() + v.Drive.String() }

// Library is an immutable standard-cell library: timing and area for every
// (Func, Drive) pair plus the constant wire load per fan-out connection.
type Library struct {
	timing [NumFuncs][NumDrives]Timing
	// WireCap is the fixed interconnect capacitance charged per fan-out
	// connection, in fF.
	WireCap float64
	// DefaultPOLoad is the capacitive load presented by a primary output.
	DefaultPOLoad float64
}

// base parameters per function for the X1 variant. Derived loosely from
// public 28nm-class numbers: an X1 inverter is ~0.6 µm², ~10 ps intrinsic.
var baseParams = [NumFuncs]Timing{
	//                Intrinsic  Resist  InCap  Area
	Input:   {0, 0, 0, 0},
	OutPort: {0, 0, 0, 0},
	Const0:  {0, 0, 0, 0},
	Const1:  {0, 0, 0, 0},
	Buf:     {14.0, 5.2, 0.9, 0.89},
	Inv:     {9.0, 5.8, 1.0, 0.59},
	And2:    {19.0, 6.0, 1.1, 1.18},
	Nand2:   {13.0, 6.4, 1.1, 0.89},
	Or2:     {21.0, 6.2, 1.1, 1.18},
	Nor2:    {15.0, 7.0, 1.1, 0.89},
	Xor2:    {28.0, 7.4, 1.7, 1.78},
	Xnor2:   {28.0, 7.4, 1.7, 1.78},
	Mux2:    {26.0, 6.8, 1.4, 2.08},
	Aoi21:   {18.0, 7.2, 1.2, 1.18},
	Oai21:   {18.0, 7.2, 1.2, 1.18},
	Maj3:    {30.0, 7.6, 1.5, 2.37},
}

// driveScale maps a Drive to its relative strength (1, 2, 4, 8).
var driveScale = [NumDrives]float64{1, 2, 4, 8}

// Default28nm returns the synthetic 28nm-class library used across the
// repository. Upsizing by one step halves the drive resistance, grows the
// area sub-linearly (×1.6) and the input capacitance (×1.5), and trims a
// little intrinsic delay — the standard shape of a real cell family.
func Default28nm() *Library {
	lib := &Library{WireCap: 0.6, DefaultPOLoad: 2.0}
	for f := Func(0); f < NumFuncs; f++ {
		for d := Drive(0); d < NumDrives; d++ {
			b := baseParams[f]
			if f.IsPseudo() {
				lib.timing[f][d] = Timing{}
				continue
			}
			s := driveScale[d]
			lib.timing[f][d] = Timing{
				Intrinsic:  b.Intrinsic * (1 - 0.04*float64(d)),
				Resistance: b.Resistance / s,
				InputCap:   b.InputCap * pow(1.5, float64(d)),
				Area:       b.Area * pow(1.6, float64(d)),
			}
		}
	}
	return lib
}

func pow(base, exp float64) float64 {
	// Tiny integer-ish power helper to avoid importing math for 3 calls.
	r := 1.0
	for i := 0; i < int(exp+0.5); i++ {
		r *= base
	}
	return r
}

// Timing returns the timing/area record for the variant. Pseudo-cells
// return the zero Timing.
func (l *Library) Timing(f Func, d Drive) Timing {
	if !f.Valid() || !d.Valid() {
		return Timing{}
	}
	return l.timing[f][d]
}

// Area returns the area of the variant in µm².
func (l *Library) Area(f Func, d Drive) float64 { return l.Timing(f, d).Area }

// InputCap returns the input pin capacitance of the variant in fF.
func (l *Library) InputCap(f Func, d Drive) float64 { return l.Timing(f, d).InputCap }

// Delay returns the propagation delay in ps of the variant driving load fF.
func (l *Library) Delay(f Func, d Drive, load float64) float64 {
	t := l.Timing(f, d)
	if f.IsPseudo() {
		return 0
	}
	return t.Intrinsic + t.Resistance*load
}
