package cell

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestFuncArity(t *testing.T) {
	cases := map[Func]int{
		Input: 0, OutPort: 1, Const0: 0, Const1: 0,
		Buf: 1, Inv: 1, And2: 2, Nand2: 2, Or2: 2, Nor2: 2,
		Xor2: 2, Xnor2: 2, Mux2: 3, Aoi21: 3, Oai21: 3, Maj3: 3,
	}
	for f, want := range cases {
		if got := f.Arity(); got != want {
			t.Errorf("%v.Arity() = %d, want %d", f, got, want)
		}
	}
}

func TestFuncByNameRoundTrip(t *testing.T) {
	for f := Func(0); f < NumFuncs; f++ {
		got, ok := FuncByName(f.String())
		if !ok || got != f {
			t.Errorf("FuncByName(%q) = %v, %v; want %v, true", f.String(), got, ok, f)
		}
	}
	if _, ok := FuncByName("NAND9"); ok {
		t.Error("FuncByName accepted unknown name")
	}
}

func TestDriveByNameRoundTrip(t *testing.T) {
	for d := Drive(0); d < NumDrives; d++ {
		got, ok := DriveByName(d.String())
		if !ok || got != d {
			t.Errorf("DriveByName(%q) = %v, %v; want %v, true", d.String(), got, ok, d)
		}
	}
	if _, ok := DriveByName("X3"); ok {
		t.Error("DriveByName accepted unknown name")
	}
}

func TestVariantName(t *testing.T) {
	v := Variant{Nand2, X4}
	if v.Name() != "NAND2X4" {
		t.Errorf("Name() = %q, want NAND2X4", v.Name())
	}
}

// truth tables per function, indexed by input bits packed little-endian.
var truth = map[Func][]bool{
	Buf:   {false, true},
	Inv:   {true, false},
	And2:  {false, false, false, true},
	Nand2: {true, true, true, false},
	Or2:   {false, true, true, true},
	Nor2:  {true, false, false, false},
	Xor2:  {false, true, true, false},
	Xnor2: {true, false, false, true},
	// inputs (a,b,s): out = s ? b : a
	Mux2: {false, true, false, true, false, false, true, true},
	// NOT((a AND b) OR c)
	Aoi21: {true, true, true, false, false, false, false, false},
	// NOT((a OR b) AND c)
	Oai21: {true, true, true, true, true, false, false, false},
	Maj3:  {false, false, false, true, false, true, true, true},
}

func TestEvalBoolTruthTables(t *testing.T) {
	for f, table := range truth {
		n := f.Arity()
		for pat := 0; pat < 1<<n; pat++ {
			in := make([]bool, n)
			for i := 0; i < n; i++ {
				in[i] = pat>>i&1 == 1
			}
			if got := f.EvalBool(in); got != table[pat] {
				t.Errorf("%v(%v) = %v, want %v", f, in, got, table[pat])
			}
		}
	}
}

func TestEval64MatchesEvalBool(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for f := Buf; f < NumFuncs; f++ {
		n := f.Arity()
		words := make([]uint64, n)
		for i := range words {
			words[i] = rng.Uint64()
		}
		out := f.Eval64(words)
		for bit := 0; bit < 64; bit++ {
			in := make([]bool, n)
			for i := 0; i < n; i++ {
				in[i] = words[i]>>bit&1 == 1
			}
			want := f.EvalBool(in)
			if got := out>>bit&1 == 1; got != want {
				t.Fatalf("%v bit %d: Eval64 = %v, EvalBool = %v", f, bit, got, want)
			}
		}
	}
}

func TestConstEval(t *testing.T) {
	if Const0.Eval64(nil) != 0 {
		t.Error("Const0 must evaluate to all-zero word")
	}
	if Const1.Eval64(nil) != ^uint64(0) {
		t.Error("Const1 must evaluate to all-one word")
	}
}

func TestDefaultLibraryMonotoneDrives(t *testing.T) {
	lib := Default28nm()
	for f := Buf; f < NumFuncs; f++ {
		for d := X1; d < X8; d++ {
			lo, hi := lib.Timing(f, d), lib.Timing(f, d+1)
			if hi.Resistance >= lo.Resistance {
				t.Errorf("%v%v: resistance must drop when upsizing (%.2f -> %.2f)", f, d, lo.Resistance, hi.Resistance)
			}
			if hi.Area <= lo.Area {
				t.Errorf("%v%v: area must grow when upsizing", f, d)
			}
			if hi.InputCap <= lo.InputCap {
				t.Errorf("%v%v: input cap must grow when upsizing", f, d)
			}
		}
	}
}

func TestPseudoCellsAreFree(t *testing.T) {
	lib := Default28nm()
	for _, f := range []Func{Input, OutPort, Const0, Const1} {
		if lib.Area(f, X1) != 0 || lib.Delay(f, X1, 10) != 0 {
			t.Errorf("pseudo-cell %v must have zero area and delay", f)
		}
	}
}

func TestDelayIncreasesWithLoad(t *testing.T) {
	lib := Default28nm()
	for f := Buf; f < NumFuncs; f++ {
		if lib.Delay(f, X2, 8) <= lib.Delay(f, X2, 1) {
			t.Errorf("%v: delay must increase with load", f)
		}
	}
}

func TestUpsizingReducesLoadedDelay(t *testing.T) {
	lib := Default28nm()
	const heavyLoad = 20.0
	for f := Buf; f < NumFuncs; f++ {
		for d := X1; d < X8; d++ {
			if lib.Delay(f, d+1, heavyLoad) >= lib.Delay(f, d, heavyLoad) {
				t.Errorf("%v: upsizing %v->%v must reduce delay under heavy load", f, d, d+1)
			}
		}
	}
}

func TestInvalidLookupsReturnZero(t *testing.T) {
	lib := Default28nm()
	if lib.Timing(NumFuncs, X1) != (Timing{}) {
		t.Error("invalid func must return zero Timing")
	}
	if lib.Timing(Inv, NumDrives) != (Timing{}) {
		t.Error("invalid drive must return zero Timing")
	}
}

// Property: Mux2 equals (a AND NOT s) OR (b AND s) for random words.
func TestMuxProperty(t *testing.T) {
	f := func(a, b, s uint64) bool {
		got := Mux2.Eval64([]uint64{a, b, s})
		want := (a &^ s) | (b & s)
		return got == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Maj3 is symmetric under input permutation.
func TestMajSymmetry(t *testing.T) {
	f := func(a, b, c uint64) bool {
		x := Maj3.Eval64([]uint64{a, b, c})
		return x == Maj3.Eval64([]uint64{b, c, a}) && x == Maj3.Eval64([]uint64{c, a, b})
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: De Morgan — NAND2(a,b) == NOT(AND2(a,b)), NOR2 == NOT(OR2).
func TestDeMorganPairs(t *testing.T) {
	f := func(a, b uint64) bool {
		return Nand2.Eval64([]uint64{a, b}) == ^And2.Eval64([]uint64{a, b}) &&
			Nor2.Eval64([]uint64{a, b}) == ^Or2.Eval64([]uint64{a, b}) &&
			Xnor2.Eval64([]uint64{a, b}) == ^Xor2.Eval64([]uint64{a, b})
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
