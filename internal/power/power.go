// Package power estimates circuit power from simulated switching
// activity: dynamic power from per-net signal probabilities (a net with
// probability p toggles between uncorrelated vectors with activity
// 2·p·(1-p)) and leakage proportional to active-cell area. Approximate
// circuits save power two ways the report separates — dangled logic stops
// switching, and similarity-driven substitutions lower activity.
//
// The absolute scale is synthetic (the library is); the useful quantities
// are the ratios between an accurate circuit and its approximations.
package power

import (
	"fmt"

	"repro/internal/cell"
	"repro/internal/netlist"
	"repro/internal/sim"
)

// Report holds one power estimate, in arbitrary-but-consistent units
// (µW-class at the default coefficients).
type Report struct {
	// Dynamic is the switching power over live nets.
	Dynamic float64
	// Leakage is the area-proportional static power over live cells.
	Leakage float64
	// Total = Dynamic + Leakage.
	Total float64
	// Activity is the mean toggle activity across live physical nets.
	Activity float64
	// LiveGates counts the cells contributing.
	LiveGates int
}

// Coefficients scale the model; the zero value selects defaults.
type Coefficients struct {
	// VddSquaredF folds supply² and clock frequency into one factor
	// multiplying C·activity (default 0.5).
	VddSquaredF float64
	// LeakPerArea is static power per µm² (default 0.02).
	LeakPerArea float64
}

func (c Coefficients) defaults() Coefficients {
	if c.VddSquaredF == 0 {
		c.VddSquaredF = 0.5
	}
	if c.LeakPerArea == 0 {
		c.LeakPerArea = 0.02
	}
	return c
}

// Estimate computes the power report of a circuit from an existing
// simulation result on n vectors.
func Estimate(c *netlist.Circuit, lib *cell.Library, res *sim.Result, coef Coefficients) (*Report, error) {
	if len(res.Signals) != len(c.Gates) {
		return nil, fmt.Errorf("power: simulation result has %d signals, circuit has %d gates",
			len(res.Signals), len(c.Gates))
	}
	coef = coef.defaults()
	live := c.Live()
	rep := &Report{}
	activitySum := 0.0

	// Load per net mirrors the STA model: consumer input caps plus wire
	// cap per pin, PO load for output ports.
	load := make([]float64, len(c.Gates))
	for id := range c.Gates {
		g := &c.Gates[id]
		for _, fi := range g.Fanin {
			if g.Func == cell.OutPort {
				load[fi] += lib.DefaultPOLoad
			} else {
				load[fi] += lib.InputCap(g.Func, g.Drive) + lib.WireCap
			}
		}
	}

	n := float64(res.N)
	for id, g := range c.Gates {
		if !live[id] || g.Func.IsPseudo() {
			continue
		}
		rep.LiveGates++
		rep.Leakage += lib.Area(g.Func, g.Drive) * coef.LeakPerArea
		p := float64(sim.CountOnes(res.Signals[id])) / n
		activity := 2 * p * (1 - p)
		activitySum += activity
		rep.Dynamic += coef.VddSquaredF * activity * load[id]
	}
	if rep.LiveGates > 0 {
		rep.Activity = activitySum / float64(rep.LiveGates)
	}
	rep.Total = rep.Dynamic + rep.Leakage
	return rep, nil
}

// Of simulates the circuit on the given vectors and estimates its power.
func Of(c *netlist.Circuit, lib *cell.Library, v *sim.Vectors, coef Coefficients) (*Report, error) {
	res, err := sim.Run(c, v)
	if err != nil {
		return nil, err
	}
	return Estimate(c, lib, res, coef)
}
