package power

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/cell"
	"repro/internal/netlist"
	"repro/internal/sim"
)

var lib = cell.Default28nm()

func xorTree(n int) *netlist.Circuit {
	c := netlist.New("xt")
	acc := c.AddInput("i")
	for i := 1; i < n; i++ {
		acc = c.AddGate(cell.Xor2, acc, c.AddInput("i"))
	}
	c.AddOutput("y", acc)
	return c
}

func estimate(t *testing.T, c *netlist.Circuit, nVec int) *Report {
	t.Helper()
	v := sim.Random(rand.New(rand.NewSource(3)), len(c.PIs), nVec)
	r, err := Of(c, lib, v, Coefficients{})
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestXorNetsAreHighActivity(t *testing.T) {
	// XOR of independent uniform inputs has p = 0.5: activity 0.5 per net.
	r := estimate(t, xorTree(8), 1<<14)
	if math.Abs(r.Activity-0.5) > 0.02 {
		t.Errorf("xor-tree activity = %v, want ~0.5", r.Activity)
	}
	if r.Dynamic <= 0 || r.Leakage <= 0 || r.Total != r.Dynamic+r.Leakage {
		t.Errorf("inconsistent report %+v", r)
	}
}

func TestConstantNetsAreZeroActivity(t *testing.T) {
	c := netlist.New("and0")
	a := c.AddInput("a")
	g := c.AddGate(cell.And2, a, c.Const0()) // output stuck at 0
	c.AddOutput("y", g)
	r := estimate(t, c, 1<<12)
	if r.Activity != 0 {
		t.Errorf("stuck-at net must have zero activity, got %v", r.Activity)
	}
	if r.Dynamic != 0 {
		t.Errorf("no switching means no dynamic power, got %v", r.Dynamic)
	}
	if r.Leakage <= 0 {
		t.Error("the cell still leaks")
	}
}

func TestDanglingGatesDoNotBurn(t *testing.T) {
	c := xorTree(6)
	full := estimate(t, c, 1<<12)
	// Dangle half the tree: rewire the PO to an early gate.
	var early int
	for id, g := range c.Gates {
		if g.Func == cell.Xor2 {
			early = id
			break
		}
	}
	c.SetFanin(c.POs[0], 0, early)
	cut := estimate(t, c, 1<<12)
	if cut.Total >= full.Total {
		t.Errorf("dangling logic must reduce power: %.3f -> %.3f", full.Total, cut.Total)
	}
	if cut.LiveGates >= full.LiveGates {
		t.Error("live gate count must drop")
	}
}

func TestApproximationSavesPower(t *testing.T) {
	// The headline property: substituting logic with a constant saves
	// both dynamic (fewer toggles) and leakage (dangled cells) power.
	c := xorTree(10)
	accurate := estimate(t, c, 1<<12)
	app := c.Clone()
	// Find a mid-tree gate and cut it to const0.
	var mid int
	count := 0
	for id, g := range app.Gates {
		if g.Func == cell.Xor2 {
			count++
			if count == 5 {
				mid = id
			}
		}
	}
	app.ReplaceFanin(mid, app.Const0())
	approx := estimate(t, app, 1<<12)
	if approx.Total >= accurate.Total {
		t.Errorf("approximation must save power: %.3f -> %.3f", accurate.Total, approx.Total)
	}
}

func TestUpsizingCostsPower(t *testing.T) {
	c := xorTree(6)
	base := estimate(t, c, 1<<12)
	for id := range c.Gates {
		if !c.Gates[id].Func.IsPseudo() {
			c.Gates[id].Drive = cell.X8
		}
	}
	big := estimate(t, c, 1<<12)
	if big.Total <= base.Total {
		t.Errorf("X8 cells must burn more power: %.3f -> %.3f", base.Total, big.Total)
	}
}

func TestEstimateRejectsForeignResult(t *testing.T) {
	a := xorTree(4)
	b := xorTree(8)
	v := sim.Random(rand.New(rand.NewSource(1)), len(a.PIs), 256)
	res, err := sim.Run(a, v)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Estimate(b, lib, res, Coefficients{}); err == nil {
		t.Error("mismatched simulation result must be rejected")
	}
}

func TestCoefficientOverrides(t *testing.T) {
	c := xorTree(4)
	v := sim.Random(rand.New(rand.NewSource(2)), len(c.PIs), 512)
	lo, err := Of(c, lib, v, Coefficients{VddSquaredF: 0.1, LeakPerArea: 0.001})
	if err != nil {
		t.Fatal(err)
	}
	hi, err := Of(c, lib, v, Coefficients{VddSquaredF: 1.0, LeakPerArea: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	if hi.Dynamic <= lo.Dynamic || hi.Leakage <= lo.Leakage {
		t.Error("coefficients must scale the estimate")
	}
}
