package sta

import (
	"math"
	"testing"

	"repro/internal/cell"
	"repro/internal/netlist"
)

// chain builds a linear inverter chain of depth n.
func chain(n int) *netlist.Circuit {
	c := netlist.New("chain")
	id := c.AddInput("a")
	for i := 0; i < n; i++ {
		id = c.AddGate(cell.Inv, id)
	}
	c.AddOutput("y", id)
	return c
}

func TestChainDepthAndCPD(t *testing.T) {
	lib := cell.Default28nm()
	for _, n := range []int{1, 3, 10} {
		c := chain(n)
		r, err := Analyze(c, lib)
		if err != nil {
			t.Fatal(err)
		}
		if r.MaxDepth != n {
			t.Errorf("chain(%d): MaxDepth = %d, want %d", n, r.MaxDepth, n)
		}
		// Interior inverters drive one INV pin + wire; the last drives
		// the PO load.
		interior := lib.Delay(cell.Inv, cell.X1, lib.InputCap(cell.Inv, cell.X1)+lib.WireCap)
		last := lib.Delay(cell.Inv, cell.X1, lib.DefaultPOLoad)
		want := float64(n-1)*interior + last
		if math.Abs(r.CPD-want) > 1e-9 {
			t.Errorf("chain(%d): CPD = %v, want %v", n, r.CPD, want)
		}
	}
}

func TestArrivalMonotoneAlongPath(t *testing.T) {
	lib := cell.Default28nm()
	c := chain(5)
	r, err := Analyze(c, lib)
	if err != nil {
		t.Fatal(err)
	}
	path := r.CriticalPath(c)
	if len(path) != 7 { // PI + 5 INV + PO
		t.Fatalf("critical path has %d nodes, want 7", len(path))
	}
	for i := 1; i < len(path); i++ {
		if r.Arrival[path[i]] < r.Arrival[path[i-1]] {
			t.Error("arrival must be non-decreasing along the critical path")
		}
	}
	if got := r.Arrival[path[len(path)-1]]; math.Abs(got-r.CPD) > 1e-9 {
		t.Errorf("path endpoint arrival %v != CPD %v", got, r.CPD)
	}
}

// diamond: two parallel branches of different depth reconverging.
func diamond() *netlist.Circuit {
	c := netlist.New("diamond")
	a := c.AddInput("a")
	b := c.AddInput("b")
	short := c.AddGate(cell.Inv, a)
	l1 := c.AddGate(cell.Inv, b)
	l2 := c.AddGate(cell.Inv, l1)
	l3 := c.AddGate(cell.Inv, l2)
	out := c.AddGate(cell.And2, short, l3)
	c.AddOutput("y", out)
	return c
}

func TestCriticalPathTakesLongerBranch(t *testing.T) {
	lib := cell.Default28nm()
	c := diamond()
	r, err := Analyze(c, lib)
	if err != nil {
		t.Fatal(err)
	}
	if r.MaxDepth != 4 {
		t.Errorf("MaxDepth = %d, want 4", r.MaxDepth)
	}
	path := r.CriticalPath(c)
	if path[0] != c.PIs[1] {
		t.Errorf("critical path must start at PI b, got gate %d", path[0])
	}
}

func TestSlackZeroOnCriticalPath(t *testing.T) {
	lib := cell.Default28nm()
	c := diamond()
	r, err := Analyze(c, lib)
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range r.CriticalPath(c) {
		if math.Abs(r.Slack[id]) > 1e-9 {
			t.Errorf("gate %d on critical path has slack %v, want 0", id, r.Slack[id])
		}
	}
	// The short branch must have positive slack.
	shortInv := -1
	for id, g := range c.Gates {
		if g.Func == cell.Inv && g.Fanin[0] == c.PIs[0] {
			shortInv = id
		}
	}
	if r.Slack[shortInv] <= 0 {
		t.Errorf("short-branch inverter slack = %v, want > 0", r.Slack[shortInv])
	}
}

// heavyFanout builds a chain whose middle gate drives many consumers, so
// upsizing it wins despite the input-cap penalty on its driver.
func heavyFanout(fanout int) (*netlist.Circuit, int) {
	c := netlist.New("heavy")
	a := c.AddInput("a")
	drv := c.AddGate(cell.Inv, a)
	hub := c.AddGate(cell.Inv, drv)
	for i := 0; i < fanout; i++ {
		leaf := c.AddGate(cell.Inv, hub)
		c.AddOutput("y", leaf)
	}
	return c, hub
}

func TestUpsizingHeavilyLoadedGateReducesCPD(t *testing.T) {
	lib := cell.Default28nm()
	c, hub := heavyFanout(10)
	r1, err := Analyze(c, lib)
	if err != nil {
		t.Fatal(err)
	}
	c.Gates[hub].Drive = cell.X8
	r2, err := Analyze(c, lib)
	if err != nil {
		t.Fatal(err)
	}
	if r2.CPD >= r1.CPD {
		t.Errorf("upsizing a heavily loaded gate must reduce CPD: %v -> %v", r1.CPD, r2.CPD)
	}
}

func TestUpsizingLightlyLoadedGateCanHurt(t *testing.T) {
	// The converse property: on a fanout-of-one chain, upsizing the
	// middle inverter costs more in upstream load than it saves — which
	// is exactly why the sizing pass must evaluate the true CPD delta
	// instead of blindly upsizing critical gates.
	lib := cell.Default28nm()
	c := chain(6)
	r1, err := Analyze(c, lib)
	if err != nil {
		t.Fatal(err)
	}
	mid := r1.CriticalPath(c)[3]
	c.Gates[mid].Drive = cell.X8
	r2, err := Analyze(c, lib)
	if err != nil {
		t.Fatal(err)
	}
	if r2.CPD <= r1.CPD {
		t.Skip("library rebalanced; light-load upsizing no longer hurts")
	}
}

func TestUpsizingIncreasesUpstreamLoad(t *testing.T) {
	lib := cell.Default28nm()
	c := chain(3)
	r1, _ := Analyze(c, lib)
	path := r1.CriticalPath(c)
	second := path[2] // second inverter
	c.Gates[second].Drive = cell.X8
	r2, _ := Analyze(c, lib)
	first := path[1]
	if r2.Load[first] <= r1.Load[first] {
		t.Error("upsizing a consumer must increase the driver's load")
	}
	if r2.Delay[first] <= r1.Delay[first] {
		t.Error("higher load must slow the driver")
	}
}

func TestConstantsArriveAtZero(t *testing.T) {
	lib := cell.Default28nm()
	c := netlist.New("const")
	a := c.AddInput("a")
	g := c.AddGate(cell.And2, a, c.Const1())
	c.AddOutput("y", g)
	r, err := Analyze(c, lib)
	if err != nil {
		t.Fatal(err)
	}
	if r.Arrival[c.Const1()] != 0 {
		t.Error("constants must arrive at t=0")
	}
	if r.MaxDepth != 1 {
		t.Errorf("MaxDepth = %d, want 1", r.MaxDepth)
	}
}

func TestPOArrivalPerOutput(t *testing.T) {
	lib := cell.Default28nm()
	c := netlist.New("two")
	a := c.AddInput("a")
	fast := c.AddGate(cell.Inv, a)
	slow1 := c.AddGate(cell.Inv, a)
	slow2 := c.AddGate(cell.Inv, slow1)
	c.AddOutput("f", fast)
	c.AddOutput("s", slow2)
	r, err := Analyze(c, lib)
	if err != nil {
		t.Fatal(err)
	}
	if r.POArrival[0] >= r.POArrival[1] {
		t.Error("deeper PO must arrive later")
	}
	if r.CritPO != 1 {
		t.Errorf("CritPO = %d, want 1", r.CritPO)
	}
}

func TestCriticalGatesMargin(t *testing.T) {
	lib := cell.Default28nm()
	c := netlist.New("two")
	a := c.AddInput("a")
	fast := c.AddGate(cell.Inv, a)
	slow1 := c.AddGate(cell.Inv, a)
	slow2 := c.AddGate(cell.Inv, slow1)
	c.AddOutput("f", fast)
	c.AddOutput("s", slow2)
	r, _ := Analyze(c, lib)
	strict := r.CriticalGates(c, 0)
	if len(strict) != 2 { // slow1, slow2
		t.Errorf("strict critical gates = %v, want the 2 slow inverters", strict)
	}
	loose := r.CriticalGates(c, 1.0) // everything within 100% of CPD
	if len(loose) != 3 {
		t.Errorf("loose critical gates = %d, want 3", len(loose))
	}
}

func TestAnalyzeRejectsLoop(t *testing.T) {
	lib := cell.Default28nm()
	c := netlist.New("loop")
	a := c.AddInput("a")
	g1 := c.AddGate(cell.And2, a, a)
	g2 := c.AddGate(cell.Or2, g1, a)
	c.Gates[g1].Fanin[1] = g2
	c.AddOutput("y", g2)
	if _, err := Analyze(c, lib); err == nil {
		t.Error("Analyze must reject cyclic netlists")
	}
}

func TestDanglingGatesUnconstrained(t *testing.T) {
	lib := cell.Default28nm()
	c := diamond()
	// Add a dangling heavy chain; it must not affect CPD.
	d := c.AddGate(cell.Inv, c.PIs[0])
	for i := 0; i < 10; i++ {
		d = c.AddGate(cell.Inv, d)
	}
	r, err := Analyze(c, lib)
	if err != nil {
		t.Fatal(err)
	}
	rRef, _ := Analyze(diamond(), lib)
	if math.Abs(r.CPD-rRef.CPD) > 1e-9 {
		t.Errorf("dangling logic changed CPD: %v vs %v", r.CPD, rRef.CPD)
	}
	if r.MaxDepth != rRef.MaxDepth {
		t.Error("dangling logic changed MaxDepth")
	}
}

func BenchmarkAnalyzeChain1000(b *testing.B) {
	lib := cell.Default28nm()
	c := chain(1000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Analyze(c, lib); err != nil {
			b.Fatal(err)
		}
	}
}
