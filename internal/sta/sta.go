// Package sta implements static timing analysis on netlist circuits with
// the cell library's load-dependent linear delay model. It stands in for
// PrimeTime in the paper's flow and provides exactly what the framework
// queries: per-gate arrival times, per-PO worst arrival Ta(PO), the
// critical path (as a gate sequence), circuit logic depth and critical
// path delay (CPD), plus required times and slack for the sizing step.
package sta

import (
	"fmt"

	"repro/internal/cell"
	"repro/internal/netlist"
)

// Report holds the results of one timing analysis.
type Report struct {
	// Arrival is the worst-case signal arrival time at each gate's output
	// in ps. Primary inputs and constants arrive at t = 0.
	Arrival []float64
	// Required is the latest tolerable arrival per gate for the CPD to
	// hold (required time under clock = CPD).
	Required []float64
	// Slack is Required - Arrival per gate; the critical path has ~0
	// slack.
	Slack []float64
	// Load is the capacitive load each gate drives, in fF.
	Load []float64
	// Delay is the propagation delay of each gate at its load.
	Delay []float64
	// Depth is the logic depth (number of physical gates on the longest
	// PI-to-gate path, inclusive).
	Depth []int
	// POArrival is Ta(PO) per primary output in port order.
	POArrival []float64
	// CPD is the critical path delay: max over POs of POArrival.
	CPD float64
	// MaxDepth is the logic depth of the circuit (max over POs).
	MaxDepth int
	// CritPO is the index (in port order) of the PO with the worst
	// arrival; -1 when the circuit has no POs.
	CritPO int

	order []int
}

// Analyze runs full forward/backward timing propagation.
func Analyze(c *netlist.Circuit, lib *cell.Library) (*Report, error) {
	order, err := c.TopoOrder()
	if err != nil {
		return nil, fmt.Errorf("sta: %w", err)
	}
	n := len(c.Gates)
	r := &Report{
		Arrival:   make([]float64, n),
		Required:  make([]float64, n),
		Slack:     make([]float64, n),
		Load:      make([]float64, n),
		Delay:     make([]float64, n),
		Depth:     make([]int, n),
		POArrival: make([]float64, len(c.POs)),
		CritPO:    -1,
		order:     order,
	}

	// Loads: each fan-in pin of a consumer adds its input cap plus a
	// fixed wire cap; primary outputs present the library's PO load.
	for id := range c.Gates {
		g := &c.Gates[id]
		for _, fi := range g.Fanin {
			if g.Func == cell.OutPort {
				r.Load[fi] += lib.DefaultPOLoad
			} else {
				r.Load[fi] += lib.InputCap(g.Func, g.Drive) + lib.WireCap
			}
		}
	}

	// Forward pass: arrival and depth.
	for _, id := range order {
		g := &c.Gates[id]
		r.Delay[id] = lib.Delay(g.Func, g.Drive, r.Load[id])
		maxA, maxD := 0.0, 0
		for _, fi := range g.Fanin {
			if r.Arrival[fi] > maxA {
				maxA = r.Arrival[fi]
			}
			if r.Depth[fi] > maxD {
				maxD = r.Depth[fi]
			}
		}
		r.Arrival[id] = maxA + r.Delay[id]
		if g.Func.IsPseudo() {
			r.Depth[id] = maxD
		} else {
			r.Depth[id] = maxD + 1
		}
	}

	for i, po := range c.POs {
		r.POArrival[i] = r.Arrival[po]
		if r.CritPO < 0 || r.POArrival[i] > r.CPD {
			r.CPD = r.POArrival[i]
			r.CritPO = i
		}
		if d := r.Depth[po]; d > r.MaxDepth {
			r.MaxDepth = d
		}
	}

	// Backward pass: required time under an implicit clock equal to the
	// CPD; dangling gates get no constraint (infinite required time,
	// represented by a large sentinel so slack stays finite).
	const unconstrained = 1e18
	for id := range r.Required {
		r.Required[id] = unconstrained
	}
	for _, po := range c.POs {
		if r.CPD < r.Required[po] {
			r.Required[po] = r.CPD
		}
	}
	for i := len(order) - 1; i >= 0; i-- {
		id := order[i]
		req := r.Required[id]
		for _, fi := range c.Gates[id].Fanin {
			if cand := req - r.Delay[id]; cand < r.Required[fi] {
				r.Required[fi] = cand
			}
		}
	}
	for id := range r.Slack {
		r.Slack[id] = r.Required[id] - r.Arrival[id]
	}
	return r, nil
}

// CriticalPathForPO backtracks the worst path ending at PO index i,
// returning gate IDs from a primary input (or constant) to the PO.
func (r *Report) CriticalPathForPO(c *netlist.Circuit, i int) []int {
	if i < 0 || i >= len(c.POs) {
		return nil
	}
	var rev []int
	id := c.POs[i]
	for {
		rev = append(rev, id)
		g := &c.Gates[id]
		if len(g.Fanin) == 0 {
			break
		}
		best, bestA := g.Fanin[0], r.Arrival[g.Fanin[0]]
		for _, fi := range g.Fanin[1:] {
			if r.Arrival[fi] > bestA {
				best, bestA = fi, r.Arrival[fi]
			}
		}
		id = best
	}
	// Reverse to PI→PO order.
	for l, h := 0, len(rev)-1; l < h; l, h = l+1, h-1 {
		rev[l], rev[h] = rev[h], rev[l]
	}
	return rev
}

// CriticalPath returns the overall worst path (the path realizing the CPD).
func (r *Report) CriticalPath(c *netlist.Circuit) []int {
	return r.CriticalPathForPO(c, r.CritPO)
}

// CriticalGates returns the set of physical gates lying on any PO's worst
// path whose arrival is within margin·CPD of the CPD — the candidate
// targets set the searching action draws from. With margin = 0 only the
// single worst path contributes; the paper samples over "the critical
// paths", so callers typically pass a small margin (e.g. 0.05).
func (r *Report) CriticalGates(c *netlist.Circuit, margin float64) []int {
	thresh := r.CPD * (1 - margin)
	seen := make(map[int]bool)
	var out []int
	for i := range c.POs {
		if r.POArrival[i] < thresh {
			continue
		}
		for _, id := range r.CriticalPathForPO(c, i) {
			if seen[id] || c.Gates[id].Func.IsPseudo() {
				continue
			}
			seen[id] = true
			out = append(out, id)
		}
	}
	return out
}
