package coord

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	als "repro"
	"repro/internal/dispatch"
	"repro/internal/exp"
	"repro/internal/service"
	"repro/internal/store"
)

// testJobs is a cheap real job matrix: TABLE II on c880 plus TABLE III on
// Adder16, five methods each — 10 cells, milliseconds apiece.
func testJobs(seed int64) []exp.Job {
	opts := exp.Opts{
		Scale: als.ScaleQuick, Seed: seed,
		Population: 6, Iterations: 3, Vectors: 512,
		Circuits: []string{"c880", "Adder16"},
	}
	return append(exp.Table2Jobs(opts), exp.Table3Jobs(opts)...)
}

// cheapJob is one fast unique cell (canonical spelling) for
// intake-focused tests.
func cheapJob(seed int64) exp.Job {
	return exp.Job{
		Circuit: "Adder16", Method: "Ours", Metric: "NMED", Budget: 0.0244,
		Scale: "quick", Seed: seed, Population: 6, Iterations: 3, Vectors: 512,
	}
}

func mustHash(t *testing.T, j exp.Job) string {
	t.Helper()
	h, err := j.Hash()
	if err != nil {
		t.Fatal(err)
	}
	return h
}

// wantResults computes the reference ResultSet on the local scheduler.
func wantResults(t *testing.T, jobs []exp.Job) exp.ResultSet {
	t.Helper()
	rs, _, err := exp.RunJobs(jobs, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	return rs
}

func assertSameMetrics(t *testing.T, got, want exp.ResultSet) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("result set has %d cells, want %d", len(got), len(want))
	}
	for h, w := range want {
		g, ok := got[h]
		if !ok {
			t.Fatalf("missing cell %.12s…", h)
		}
		if g.RatioCPD != w.RatioCPD || g.Err != w.Err || g.Evaluations != w.Evaluations {
			t.Fatalf("cell %.12s… = (%v, %v, %d), want (%v, %v, %d)",
				h, g.RatioCPD, g.Err, g.Evaluations, w.RatioCPD, w.Err, w.Evaluations)
		}
	}
}

// newWorker boots an in-process alsd equivalent.
func newWorker(t *testing.T, opts service.Options) *httptest.Server {
	t.Helper()
	if opts.Workers == 0 {
		opts.Workers = 2
	}
	if opts.Logf == nil {
		opts.Logf = t.Logf
	}
	s := service.New(opts)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return ts
}

// fastOpts keeps lane and webhook pacing test-friendly. The heartbeat
// interval is long so registered workers never expire unless a test
// shortens it on purpose.
func fastOpts(o Options) Options {
	o.PollInterval = 2 * time.Millisecond
	o.Backoff = 2 * time.Millisecond
	o.MaxBackoff = 10 * time.Millisecond
	o.RetryBudget = 2
	if o.HeartbeatInterval == 0 {
		o.HeartbeatInterval = time.Minute
	}
	if o.WebhookBackoff == 0 {
		o.WebhookBackoff = 2 * time.Millisecond
	}
	if o.WebhookMaxBackoff == 0 {
		o.WebhookMaxBackoff = 10 * time.Millisecond
	}
	return o
}

// newCoord builds a coordinator over a fresh store (unless opts.Store is
// set) and serves its handler.
func newCoord(t *testing.T, opts Options) (*Coordinator, *httptest.Server) {
	t.Helper()
	if opts.Store == nil {
		st, err := store.Open(filepath.Join(t.TempDir(), "results.jsonl"))
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { st.Close() })
		opts.Store = st
	}
	c, err := New(fastOpts(opts))
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(c.Handler())
	t.Cleanup(func() {
		ts.Close()
		c.Close()
	})
	return c, ts
}

func TestFairQueueWeightedAcrossTenants(t *testing.T) {
	q := newFairQueue(map[string]int{"heavy": 2}, nil)
	for i := 0; i < 4; i++ {
		q.push(&cellState{hash: fmt.Sprintf("h%d", i), tenant: "heavy"})
		q.push(&cellState{hash: fmt.Sprintf("l%d", i), tenant: "light"})
	}
	var order []string
	for {
		c, ok := q.tryPop()
		if !ok {
			break
		}
		order = append(order, c.tenant)
	}
	if len(order) != 8 {
		t.Fatalf("popped %d cells, want 8", len(order))
	}
	// Weight 2 vs 1: across the first two full revolutions heavy is served
	// twice per light turn (where the revolution starts is unspecified).
	var heavyFirst6 int
	for _, tn := range order[:6] {
		if tn == "heavy" {
			heavyFirst6++
		}
	}
	if heavyFirst6 != 4 {
		t.Fatalf("first 6 pops served heavy %d times, want 4 (2:1 weighting): %v", heavyFirst6, order)
	}
	// Light must not starve: it appears within every three consecutive pops.
	for i := 0; i+3 <= len(order); i++ {
		if order[i] != "light" && order[i+1] != "light" && order[i+2] != "light" {
			t.Fatalf("tenant light starved in window %d: %v", i, order)
		}
	}
}

func TestFairQueuePriorityWithinTenant(t *testing.T) {
	q := newFairQueue(nil, nil)
	q.push(&cellState{hash: "a", priority: 0})
	q.push(&cellState{hash: "b", priority: 5})
	q.push(&cellState{hash: "c", priority: 5})
	q.push(&cellState{hash: "d", priority: 1})
	var got []string
	for {
		c, ok := q.tryPop()
		if !ok {
			break
		}
		got = append(got, c.hash)
	}
	if want := "b,c,d,a"; strings.Join(got, ",") != want {
		t.Fatalf("priority dequeue order = %v, want %s", got, want)
	}
}

func TestFairQueueBlockingPop(t *testing.T) {
	q := newFairQueue(nil, nil)
	done := make(chan *cellState, 1)
	go func() {
		c, _ := q.pop(context.Background())
		done <- c
	}()
	time.Sleep(10 * time.Millisecond)
	q.push(&cellState{hash: "x"})
	select {
	case c := <-done:
		if c.hash != "x" {
			t.Fatalf("popped %q, want x", c.hash)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("blocked pop never woke")
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, ok := q.pop(ctx); ok {
		t.Fatal("cancelled pop must report not-ok")
	}
}

// TestCoordinatorSweepMatchesLocal is the tentpole acceptance check at
// package level: a sweep dispatched through the coordinator (two
// registered in-process workers) must produce exactly the local
// scheduler's deterministic metrics. cmd/experiments -coord is this same
// client (dispatch.Run with the coordinator as the only worker URL).
func TestCoordinatorSweepMatchesLocal(t *testing.T) {
	jobs := testJobs(31)
	want := wantResults(t, jobs)

	c, ts := newCoord(t, Options{})
	w1 := newWorker(t, service.Options{})
	w2 := newWorker(t, service.Options{})
	if _, _, err := c.Register(w1.URL); err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.Register(w2.URL); err != nil {
		t.Fatal(err)
	}

	got, stats, err := dispatch.Run(context.Background(), jobs, dispatch.Options{
		Workers:      []string{ts.URL},
		PollInterval: 2 * time.Millisecond,
		Backoff:      2 * time.Millisecond,
		Logf:         t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	assertSameMetrics(t, got, want)
	if stats.Executed != len(want) {
		t.Fatalf("executed = %d, want %d", stats.Executed, len(want))
	}
	if n := c.met.workers.Value(); n != 2 {
		t.Fatalf("als_cluster_workers = %d, want 2", n)
	}
}

// stuckWorker implements the worker job API but never finishes anything:
// it accepts batches (computing real hashes so the lane's sanity check
// passes) and answers every poll "running". It is how a test holds cells
// hostage on a worker that then goes silent.
func stuckWorker(t *testing.T) *httptest.Server {
	t.Helper()
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		fmt.Fprintln(w, `{"status":"ok"}`)
	})
	mux.HandleFunc("POST /v1/jobs", func(w http.ResponseWriter, r *http.Request) {
		var req service.BatchRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		var resp service.BatchResponse
		for _, j := range req.Jobs {
			h, err := j.Hash()
			if err != nil {
				http.Error(w, err.Error(), http.StatusBadRequest)
				return
			}
			resp.Jobs = append(resp.Jobs, service.JobView{Hash: h, Status: service.StatusQueued})
		}
		json.NewEncoder(w).Encode(resp) //nolint:errcheck
	})
	mux.HandleFunc("GET /v1/jobs/{hash}", func(w http.ResponseWriter, r *http.Request) {
		json.NewEncoder(w).Encode(service.JobView{ //nolint:errcheck
			Hash: r.PathValue("hash"), Status: service.StatusRunning,
		})
	})
	ts := httptest.NewServer(mux)
	t.Cleanup(ts.Close)
	return ts
}

// TestHeartbeatExpiryFailsOver: a worker that registers, takes cells and
// then never heartbeats is drained after ExpireAfter intervals; its
// in-flight cells return to the queue and the surviving (heartbeating)
// worker completes the sweep with identical results.
func TestHeartbeatExpiryFailsOver(t *testing.T) {
	jobs := testJobs(32)
	want := wantResults(t, jobs)

	c, ts := newCoord(t, Options{
		HeartbeatInterval: 50 * time.Millisecond,
		ExpireAfter:       2,
	})
	healthy := newWorker(t, service.Options{})
	stuck := stuckWorker(t)

	healthyID, _, err := c.Register(healthy.URL)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.Register(stuck.URL); err != nil {
		t.Fatal(err)
	}

	// Keep the healthy worker beating; the stuck one stays silent and must
	// expire mid-sweep.
	stopBeat := make(chan struct{})
	defer close(stopBeat)
	go func() {
		tick := time.NewTicker(25 * time.Millisecond)
		defer tick.Stop()
		for {
			select {
			case <-stopBeat:
				return
			case <-tick.C:
				c.Heartbeat(healthyID, 0, 0, 0)
			}
		}
	}()

	got, _, err := dispatch.Run(context.Background(), jobs, dispatch.Options{
		Workers:      []string{ts.URL},
		PollInterval: 2 * time.Millisecond,
		Backoff:      2 * time.Millisecond,
		Logf:         t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	assertSameMetrics(t, got, want)
	if n := c.met.expired.Value(); n < 1 {
		t.Fatalf("als_cluster_workers_expired_total = %d, want >= 1", n)
	}
	if n := c.met.steals.Value(); n < 1 {
		t.Fatalf("als_cluster_steals_total = %d, want >= 1 (failover reassigns cells)", n)
	}
	ws := c.Workers()
	for _, w := range ws {
		if w.URL == stuck.URL {
			t.Fatalf("expired worker still registered: %+v", ws)
		}
	}
}

// TestTenantQuotaCutsBatch: intake beyond the tenant's pending cap is cut
// with the accepted prefix and the queue-full reason — and a WAL replay
// of those same accepts is exempt, so a coordinator restarted with a
// lower cap (or a big batch) never self-rejects its own promises.
func TestTenantQuotaCutsBatchAndReplayIsExempt(t *testing.T) {
	dir := t.TempDir()
	st, err := store.Open(filepath.Join(dir, "results.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	wal, err := OpenWAL(filepath.Join(dir, "coord.wal"))
	if err != nil {
		t.Fatal(err)
	}

	c1, err := New(fastOpts(Options{Store: st, WAL: wal, MaxPendingPerTenant: 2}))
	if err != nil {
		t.Fatal(err)
	}
	jobs := []exp.Job{cheapJob(1), cheapJob(2), cheapJob(3), cheapJob(4)}
	views, reason, err := c1.Submit(jobs, "acme", 0)
	if reason != service.ReasonQueueFull {
		t.Fatalf("reason = %q, want %q (err %v)", reason, service.ReasonQueueFull, err)
	}
	if len(views) != 2 {
		t.Fatalf("accepted prefix has %d views, want 2", len(views))
	}
	c1.Close()
	wal.Close()

	// Crash-restart with a HARSHER cap: the replayed promises must all
	// come back regardless.
	wal2, err := OpenWAL(filepath.Join(dir, "coord.wal"))
	if err != nil {
		t.Fatal(err)
	}
	defer wal2.Close()
	if n := len(wal2.Pending()); n != 2 {
		t.Fatalf("wal holds %d pending cells, want 2", n)
	}
	c2, err := New(fastOpts(Options{Store: st, WAL: wal2, MaxPendingPerTenant: 1}))
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	if n := c2.QueueLen(); n != 2 {
		t.Fatalf("replayed queue has %d cells, want 2 (quota must not apply to replay)", n)
	}
}

// TestWALReplayResumesSweep: a coordinator killed with queued cells
// re-enqueues them on restart and a newly registered worker finishes the
// sweep — the client polling by hash never notices.
func TestWALReplayResumesSweep(t *testing.T) {
	dir := t.TempDir()
	st, err := store.Open(filepath.Join(dir, "results.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	jobs := []exp.Job{cheapJob(11), cheapJob(12), cheapJob(13)}
	want := wantResults(t, jobs)

	wal, err := OpenWAL(filepath.Join(dir, "coord.wal"))
	if err != nil {
		t.Fatal(err)
	}
	c1, err := New(fastOpts(Options{Store: st, WAL: wal}))
	if err != nil {
		t.Fatal(err)
	}
	if _, reason, err := c1.Submit(jobs, "", 0); err != nil || reason != "" {
		t.Fatalf("submit: reason=%q err=%v", reason, err)
	}
	// Simulated SIGKILL: no Close, no drain — only the file contents count.
	wal2, err := OpenWAL(filepath.Join(dir, "coord.wal"))
	if err != nil {
		t.Fatal(err)
	}
	defer wal2.Close()
	c2, err := New(fastOpts(Options{Store: st, WAL: wal2}))
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		c2.Close()
		c1.Close()
	}()
	if n := c2.QueueLen(); n != len(jobs) {
		t.Fatalf("replayed queue has %d cells, want %d", n, len(jobs))
	}

	w := newWorker(t, service.Options{})
	if _, _, err := c2.Register(w.URL); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(time.Minute)
	got := exp.ResultSet{}
	for len(got) < len(jobs) {
		if time.Now().After(deadline) {
			t.Fatalf("only %d/%d cells finished", len(got), len(jobs))
		}
		for _, j := range jobs {
			h := mustHash(t, j)
			if _, ok := got[h]; ok {
				continue
			}
			if v, ok := c2.JobByHash(h); ok && v.Status == service.StatusDone && v.Result != nil {
				got[h] = *v.Result
			}
		}
		time.Sleep(5 * time.Millisecond)
	}
	assertSameMetrics(t, got, want)
}

// hookSink is a controllable webhook receiver.
type hookSink struct {
	secret string
	mu     sync.Mutex
	accept bool
	seen   map[string]int
	badSig int
}

func (s *hookSink) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	body, _ := io.ReadAll(r.Body)
	s.mu.Lock()
	defer s.mu.Unlock()
	if !VerifySignature([]byte(s.secret), body, r.Header.Get(SignatureHeader)) {
		s.badSig++
		http.Error(w, "bad signature", http.StatusForbidden)
		return
	}
	if !s.accept {
		http.Error(w, "not yet", http.StatusServiceUnavailable)
		return
	}
	var env Envelope
	if err := json.Unmarshal(body, &env); err != nil {
		http.Error(w, "bad envelope", http.StatusBadRequest)
		return
	}
	s.seen[env.Hash]++
	w.WriteHeader(http.StatusOK)
}

func (s *hookSink) counts() (map[string]int, int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[string]int, len(s.seen))
	for k, v := range s.seen {
		out[k] = v
	}
	return out, s.badSig
}

// TestWebhookExactlyOnce: subscribe before anything runs, sweep through a
// registered worker, and require exactly one signed delivery per hash —
// including for a second subscription created after the results exist
// (the already-done fast path).
func TestWebhookExactlyOnce(t *testing.T) {
	jobs := []exp.Job{cheapJob(21), cheapJob(22)}
	hashes := []string{mustHash(t, jobs[0]), mustHash(t, jobs[1])}

	c, _ := newCoord(t, Options{})
	snk := &hookSink{secret: "s3cret", accept: true, seen: map[string]int{}}
	hs := httptest.NewServer(snk)
	t.Cleanup(hs.Close)

	subID, ready, err := c.Subscribe(hs.URL+"/hook", snk.secret, hashes)
	if err != nil {
		t.Fatal(err)
	}
	if ready != 0 {
		t.Fatalf("fresh subscription reported %d already-done hashes", ready)
	}
	if subID == "" {
		t.Fatal("empty subscription id")
	}

	w := newWorker(t, service.Options{})
	if _, _, err := c.Register(w.URL); err != nil {
		t.Fatal(err)
	}
	if _, reason, err := c.Submit(jobs, "", 0); err != nil || reason != "" {
		t.Fatalf("submit: reason=%q err=%v", reason, err)
	}

	deadline := time.Now().Add(time.Minute)
	for {
		seen, _ := snk.counts()
		if len(seen) == len(hashes) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("deliveries incomplete: %v", seen)
		}
		time.Sleep(5 * time.Millisecond)
	}
	// Grace window: any duplicate would arrive promptly after the first.
	time.Sleep(50 * time.Millisecond)
	seen, badSig := snk.counts()
	for _, h := range hashes {
		if seen[h] != 1 {
			t.Fatalf("hash %.12s… delivered %d times, want exactly 1", h, seen[h])
		}
	}
	if badSig != 0 {
		t.Fatalf("%d envelope(s) failed signature verification", badSig)
	}

	// Late subscriber: everything is done, so delivery is immediate.
	snk2 := &hookSink{secret: "other", accept: true, seen: map[string]int{}}
	hs2 := httptest.NewServer(snk2)
	t.Cleanup(hs2.Close)
	_, ready, err = c.Subscribe(hs2.URL+"/hook", snk2.secret, hashes)
	if err != nil {
		t.Fatal(err)
	}
	if ready != len(hashes) {
		t.Fatalf("late subscription reported %d already-done hashes, want %d", ready, len(hashes))
	}
	deadline = time.Now().Add(10 * time.Second)
	for {
		seen, _ := snk2.counts()
		if len(seen) == len(hashes) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("late-subscriber deliveries incomplete: %v", seen)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if n := c.met.deliveries.Value(); n != int64(2*len(hashes)) {
		t.Fatalf("als_webhook_deliveries_total = %d, want %d", n, 2*len(hashes))
	}
}

// TestWebhookRedeliveryAfterRestart: a subscriber that was down when its
// envelope's retry budget ran out gets the envelope again after the
// coordinator restarts — the WAL holds the subscription but no delivered
// record, which is exactly the at-least-once contract.
func TestWebhookRedeliveryAfterRestart(t *testing.T) {
	dir := t.TempDir()
	st, err := store.Open(filepath.Join(dir, "results.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	j := cheapJob(41)
	h := mustHash(t, j)
	// Pre-seed the store so intake completes the cell instantly — the test
	// is about delivery durability, not scheduling.
	want := wantResults(t, []exp.Job{j})
	if err := st.Put(h, want[h]); err != nil {
		t.Fatal(err)
	}

	snk := &hookSink{secret: "k", accept: false, seen: map[string]int{}}
	hs := httptest.NewServer(snk)
	t.Cleanup(hs.Close)

	wal, err := OpenWAL(filepath.Join(dir, "coord.wal"))
	if err != nil {
		t.Fatal(err)
	}
	c1, err := New(fastOpts(Options{Store: st, WAL: wal, WebhookRetryBudget: 2}))
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := c1.Subscribe(hs.URL+"/hook", snk.secret, []string{h}); err != nil {
		t.Fatal(err)
	}
	if _, reason, err := c1.Submit([]exp.Job{j}, "", 0); err != nil || reason != "" {
		t.Fatalf("submit: reason=%q err=%v", reason, err)
	}
	// Wait for the budget to burn out against the refusing sink.
	deadline := time.Now().Add(10 * time.Second)
	for c1.met.retries.Value() < 2 {
		if time.Now().After(deadline) {
			t.Fatalf("delivery attempts never exhausted (retries=%d)", c1.met.retries.Value())
		}
		time.Sleep(5 * time.Millisecond)
	}
	c1.Close()
	wal.Close()
	if n, _ := snk.counts(); len(n) != 0 {
		t.Fatalf("refusing sink recorded deliveries: %v", n)
	}

	// Sink comes back; a restarted coordinator must re-deliver.
	snk.mu.Lock()
	snk.accept = true
	snk.mu.Unlock()
	wal2, err := OpenWAL(filepath.Join(dir, "coord.wal"))
	if err != nil {
		t.Fatal(err)
	}
	defer wal2.Close()
	c2, err := New(fastOpts(Options{Store: st, WAL: wal2}))
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	deadline = time.Now().Add(10 * time.Second)
	for {
		seen, _ := snk.counts()
		if seen[h] == 1 {
			break
		}
		if seen[h] > 1 {
			t.Fatalf("hash delivered %d times after restart", seen[h])
		}
		if time.Now().After(deadline) {
			t.Fatal("restart never re-delivered the unacknowledged envelope")
		}
		time.Sleep(5 * time.Millisecond)
	}

	// A third lifetime must NOT deliver again: the delivery is now in the
	// WAL.
	c2.Close()
	wal2.Close()
	wal3, err := OpenWAL(filepath.Join(dir, "coord.wal"))
	if err != nil {
		t.Fatal(err)
	}
	defer wal3.Close()
	c3, err := New(fastOpts(Options{Store: st, WAL: wal3}))
	if err != nil {
		t.Fatal(err)
	}
	defer c3.Close()
	time.Sleep(100 * time.Millisecond)
	if seen, _ := snk.counts(); seen[h] != 1 {
		t.Fatalf("acknowledged envelope re-delivered: %d", seen[h])
	}
}

// TestIntakeDedup: live-cell and store dedup both answer without
// scheduling anything twice.
func TestIntakeDedup(t *testing.T) {
	c, _ := newCoord(t, Options{})
	j := cheapJob(51)
	h := mustHash(t, j)

	v1, _, err := c.Submit([]exp.Job{j}, "", 0)
	if err != nil {
		t.Fatal(err)
	}
	v2, _, err := c.Submit([]exp.Job{j}, "", 0)
	if err != nil {
		t.Fatal(err)
	}
	if v1[0].Hash != h || v2[0].Hash != h {
		t.Fatal("hash mismatch")
	}
	if c.QueueLen() != 1 {
		t.Fatalf("duplicate submit queued %d cells, want 1", c.QueueLen())
	}

	// Store dedup: a different coordinator sharing the store answers done
	// immediately.
	want := wantResults(t, []exp.Job{j})
	st2, err := store.Open(filepath.Join(t.TempDir(), "r.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	if err := st2.Put(h, want[h]); err != nil {
		t.Fatal(err)
	}
	c2, err := New(fastOpts(Options{Store: st2}))
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	views, _, err := c2.Submit([]exp.Job{j}, "", 0)
	if err != nil {
		t.Fatal(err)
	}
	if views[0].Status != service.StatusDone || !views[0].Cached {
		t.Fatalf("store-seeded submit = %+v, want done+cached", views[0])
	}
	if c2.QueueLen() != 0 {
		t.Fatal("store-answered cell must not be queued")
	}
}

// TestIntakeCanonicalizesAliases: a spec spelled with flow-API aliases
// ("dcgwo"/"nmed") must land on the same cell — and the same content
// hash the workers will report — as its canonical form. Before intake
// canonicalized, an alias-spelled batch was filed under a hash no worker
// ever answered for and polled as "queued" forever.
func TestIntakeCanonicalizesAliases(t *testing.T) {
	c, _ := newCoord(t, Options{})
	canonical := cheapJob(71)
	alias := canonical
	alias.Method = "dcgwo"
	alias.Metric = "nmed"
	wantHash := mustHash(t, canonical)

	aliasRaw, err := alias.Hash()
	if err != nil {
		t.Fatal(err)
	}
	if aliasRaw == wantHash {
		t.Fatal("test is vacuous: alias spelling already hashes canonically")
	}

	views, _, err := c.Submit([]exp.Job{alias}, "", 0)
	if err != nil {
		t.Fatal(err)
	}
	if views[0].Hash != wantHash {
		t.Fatalf("alias intake filed under %.12s…, want canonical %.12s…", views[0].Hash, wantHash)
	}
	// The canonical spelling dedups against the alias-submitted cell.
	views, _, err = c.Submit([]exp.Job{canonical}, "", 0)
	if err != nil {
		t.Fatal(err)
	}
	if views[0].Hash != wantHash || c.QueueLen() != 1 {
		t.Fatalf("canonical resubmit: hash %.12s…, queue %d — want dedup against the alias cell",
			views[0].Hash, c.QueueLen())
	}
}

// TestHTTPSurface drives the cluster and /v2 routes end to end over HTTP:
// registration contract (including the 404-means-re-register heartbeat
// answer), batch intake, and per-hash polling.
func TestHTTPSurface(t *testing.T) {
	_, ts := newCoord(t, Options{})
	post := func(path string, body any) (*http.Response, []byte) {
		raw, _ := json.Marshal(body)
		resp, err := http.Post(ts.URL+path, "application/json", bytes.NewReader(raw))
		if err != nil {
			t.Fatal(err)
		}
		payload, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		return resp, payload
	}

	// Registration contract.
	resp, _ := post("/cluster/register", map[string]string{"url": "not a url"})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad register URL: HTTP %d, want 400", resp.StatusCode)
	}
	w := newWorker(t, service.Options{})
	resp, payload := post("/cluster/register", map[string]string{"url": w.URL})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("register: HTTP %d: %s", resp.StatusCode, payload)
	}
	var reg RegisterResponse
	if err := json.Unmarshal(payload, &reg); err != nil || reg.ID == "" {
		t.Fatalf("register response: %s", payload)
	}
	if _, err := time.ParseDuration(reg.HeartbeatInterval); err != nil {
		t.Fatalf("heartbeat_interval %q unparsable: %v", reg.HeartbeatInterval, err)
	}

	resp, _ = post("/cluster/heartbeat", map[string]any{"id": reg.ID})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("heartbeat: HTTP %d", resp.StatusCode)
	}
	resp, _ = post("/cluster/heartbeat", map[string]any{"id": "w9999"})
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown heartbeat: HTTP %d, want 404 (the re-register signal)", resp.StatusCode)
	}

	// /v2 batch intake, then poll by hash until done.
	jobs := []exp.Job{cheapJob(61), cheapJob(62)}
	resp, payload = post("/v2/batches", map[string]any{"jobs": jobs, "tenant": "acme"})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("batch: HTTP %d: %s", resp.StatusCode, payload)
	}
	var bv BatchView
	if err := json.Unmarshal(payload, &bv); err != nil || bv.Accepted != 2 {
		t.Fatalf("batch view: %s", payload)
	}
	deadline := time.Now().Add(time.Minute)
	for _, j := range jobs {
		h := mustHash(t, j)
		for {
			r, err := http.Get(ts.URL + "/v1/jobs/" + h)
			if err != nil {
				t.Fatal(err)
			}
			body, _ := io.ReadAll(r.Body)
			r.Body.Close()
			var v service.JobView
			if err := json.Unmarshal(body, &v); err != nil {
				t.Fatalf("poll: %s", body)
			}
			if v.Status == service.StatusDone {
				break
			}
			if v.Status == service.StatusFailed {
				t.Fatalf("cell failed: %s", v.Error)
			}
			if time.Now().After(deadline) {
				t.Fatalf("cell %.12s… stuck at %s", h, v.Status)
			}
			time.Sleep(5 * time.Millisecond)
		}
	}

	// Workers snapshot and unknown-hash 404.
	r, err := http.Get(ts.URL + "/cluster/workers")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(r.Body)
	r.Body.Close()
	var fleet []WorkerView
	if err := json.Unmarshal(body, &fleet); err != nil || len(fleet) != 1 {
		t.Fatalf("workers: %s", body)
	}
	r, err = http.Get(ts.URL + "/v1/jobs/deadbeef")
	if err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if r.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown hash: HTTP %d, want 404", r.StatusCode)
	}
}

// TestClusterMetricNamesFrozen pins the coordinator's registration order
// and requires the shared contract file to end with exactly these names.
func TestClusterMetricNamesFrozen(t *testing.T) {
	m := newCoordMetrics(nil)
	got := m.registry.MetricNames()
	if len(got) < len(clusterMetricNames) {
		t.Fatalf("registry has %d metrics, want at least %d", len(got), len(clusterMetricNames))
	}
	for i, name := range clusterMetricNames {
		if got[i] != name {
			t.Errorf("metric %d = %q, want %q", i, got[i], name)
		}
	}

	raw, err := os.ReadFile(filepath.Join("..", "service", "testdata", "metrics_v1.txt"))
	if err != nil {
		t.Fatal(err)
	}
	names := strings.Fields(string(raw))
	if len(names) < len(clusterMetricNames) {
		t.Fatalf("contract file lists %d names", len(names))
	}
	tail := names[len(names)-len(clusterMetricNames):]
	for i, name := range clusterMetricNames {
		if tail[i] != name {
			t.Errorf("contract tail %d = %q, want %q (append, never reorder)", i, tail[i], name)
		}
	}
}
