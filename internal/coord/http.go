// The coordinator's HTTP surface. Three audiences share one handler:
//
// Workers (cluster membership):
//
//	POST /cluster/register    {"url":"http://me:8080"} → {"id","heartbeat_interval"}
//	POST /cluster/heartbeat   {"id","queue_depth","evals_total","evals_per_sec"}
//	                          404 ⇒ the coordinator forgot you: re-register
//	POST /cluster/deregister  {"id"} — clean shutdown
//	GET  /cluster/workers     live fleet snapshot (operator surface)
//
// Sweep clients (the same worker job API every alsd serves, so
// `experiments -coord=URL` is just the legacy client with one URL):
//
//	POST /v1/jobs             batch submit → accepted-prefix BatchResponse
//	GET  /v1/jobs/{hash}      status/result by content hash
//
// /v2 intake (batch + webhook, additive surface):
//
//	POST /v2/batches          {"jobs":[…],"tenant","priority"} → 202,
//	                          deduped against the shared store up front
//	POST /v2/subscriptions    {"url","secret","hashes":[…]} → 201; each
//	                          result POSTs back once, HMAC-signed
//
// Plus GET /healthz, /metrics and /debug/traces, like every daemon here.
package coord

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"

	"repro/internal/exp"
	"repro/internal/service"
)

// maxBodyBytes caps request bodies, mirroring the service's guard.
const maxBodyBytes = 16 << 20

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v) //nolint:errcheck // the response is already committed
}

func writeError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, map[string]string{"error": err.Error()})
}

// Handler returns the coordinator's full route table.
func (c *Coordinator) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /cluster/register", c.handleRegister)
	mux.HandleFunc("POST /cluster/heartbeat", c.handleHeartbeat)
	mux.HandleFunc("POST /cluster/deregister", c.handleDeregister)
	mux.HandleFunc("GET /cluster/workers", c.handleWorkers)
	mux.HandleFunc("POST /v1/jobs", c.handleBatchSubmit)
	mux.HandleFunc("GET /v1/jobs/{hash}", c.handleJobByHash)
	mux.HandleFunc("POST /v2/batches", c.handleBatch)
	mux.HandleFunc("POST /v2/subscriptions", c.handleSubscribe)
	mux.HandleFunc("GET /healthz", c.handleHealth)
	mux.Handle("GET /metrics", c.met.registry.Handler())
	mux.Handle("GET /debug/traces", c.opts.Tracer.Handler())
	return mux
}

// RegisterRequest is the body of POST /cluster/register.
type RegisterRequest struct {
	URL string `json:"url"`
}

// RegisterResponse tells the worker its id and the heartbeat cadence the
// sweeper expects.
type RegisterResponse struct {
	ID                string `json:"id"`
	HeartbeatInterval string `json:"heartbeat_interval"`
	ExpireAfter       int    `json:"expire_after"`
}

// HeartbeatRequest is the body of POST /cluster/heartbeat: the worker's
// id plus the load figures its own telemetry counters report.
type HeartbeatRequest struct {
	ID          string  `json:"id"`
	QueueDepth  int     `json:"queue_depth"`
	EvalsTotal  int64   `json:"evals_total"`
	EvalsPerSec float64 `json:"evals_per_sec"`
}

func decode[T any](w http.ResponseWriter, r *http.Request, into *T) bool {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(into); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return false
	}
	return true
}

func (c *Coordinator) handleRegister(w http.ResponseWriter, r *http.Request) {
	var req RegisterRequest
	if !decode(w, r, &req) {
		return
	}
	id, interval, err := c.Register(req.URL)
	switch {
	case errors.Is(err, errDraining):
		writeError(w, http.StatusServiceUnavailable, err)
	case err != nil:
		writeError(w, http.StatusBadRequest, err)
	default:
		writeJSON(w, http.StatusOK, RegisterResponse{
			ID:                id,
			HeartbeatInterval: interval.String(),
			ExpireAfter:       c.opts.ExpireAfter,
		})
	}
}

func (c *Coordinator) handleHeartbeat(w http.ResponseWriter, r *http.Request) {
	var req HeartbeatRequest
	if !decode(w, r, &req) {
		return
	}
	if !c.Heartbeat(req.ID, req.QueueDepth, req.EvalsTotal, req.EvalsPerSec) {
		writeError(w, http.StatusNotFound, fmt.Errorf("coord: unknown worker %q (re-register)", req.ID))
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func (c *Coordinator) handleDeregister(w http.ResponseWriter, r *http.Request) {
	var req struct {
		ID string `json:"id"`
	}
	if !decode(w, r, &req) {
		return
	}
	if !c.Deregister(req.ID) {
		writeError(w, http.StatusNotFound, fmt.Errorf("coord: unknown worker %q", req.ID))
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func (c *Coordinator) handleWorkers(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, c.Workers())
}

// handleBatchSubmit is the worker-job-API intake: same request/response
// contract as the alsd endpoint (accepted prefix, 400 on the first
// invalid spec, 503 + reason on quota/draining), so dispatch.Lane drives
// a coordinator exactly like a worker. Tenant and priority ride optional
// headers; absent means the default tenant at priority 0.
func (c *Coordinator) handleBatchSubmit(w http.ResponseWriter, r *http.Request) {
	var req service.BatchRequest
	if !decode(w, r, &req) {
		return
	}
	if len(req.Jobs) == 0 {
		writeError(w, http.StatusBadRequest, errors.New("coord: batch has no jobs"))
		return
	}
	if len(req.Jobs) > service.MaxBatchJobs {
		writeError(w, http.StatusBadRequest,
			fmt.Errorf("coord: batch of %d jobs exceeds the %d-job limit", len(req.Jobs), service.MaxBatchJobs))
		return
	}
	tenant := r.Header.Get("X-ALS-Tenant")
	priority := 0
	fmt.Sscanf(r.Header.Get("X-ALS-Priority"), "%d", &priority) //nolint:errcheck // absent/garbage means 0
	views, reason, err := c.Submit(req.Jobs, tenant, priority)
	resp := service.BatchResponse{Jobs: views}
	switch {
	case reason != "":
		resp.Reason = reason
		resp.Error = err.Error()
		writeJSON(w, http.StatusServiceUnavailable, resp)
	case err != nil:
		writeError(w, http.StatusBadRequest, err)
	default:
		writeJSON(w, http.StatusOK, resp)
	}
}

func (c *Coordinator) handleJobByHash(w http.ResponseWriter, r *http.Request) {
	v, ok := c.JobByHash(r.PathValue("hash"))
	if !ok {
		writeError(w, http.StatusNotFound, errors.New("coord: unknown job hash"))
		return
	}
	writeJSON(w, http.StatusOK, v)
}

// BatchIntake is the body of POST /v2/batches.
type BatchIntake struct {
	Jobs     []exp.Job `json:"jobs"`
	Tenant   string    `json:"tenant,omitempty"`
	Priority int       `json:"priority,omitempty"`
}

// BatchView answers a /v2 batch: one row per accepted job, counts for
// the intake outcome split.
type BatchView struct {
	Accepted int            `json:"accepted"`
	Cached   int            `json:"cached"`
	Jobs     []BatchJobView `json:"jobs"`
}

// BatchJobView is one accepted job of a /v2 batch.
type BatchJobView struct {
	Hash   string         `json:"hash"`
	Status service.Status `json:"status"`
}

func (c *Coordinator) handleBatch(w http.ResponseWriter, r *http.Request) {
	var req BatchIntake
	if !decode(w, r, &req) {
		return
	}
	if len(req.Jobs) == 0 {
		writeError(w, http.StatusBadRequest, errors.New("coord: batch has no jobs"))
		return
	}
	if len(req.Jobs) > service.MaxBatchJobs {
		writeError(w, http.StatusBadRequest,
			fmt.Errorf("coord: batch of %d jobs exceeds the %d-job limit", len(req.Jobs), service.MaxBatchJobs))
		return
	}
	views, reason, err := c.Submit(req.Jobs, req.Tenant, req.Priority)
	switch {
	case reason != "":
		writeJSON(w, http.StatusServiceUnavailable, map[string]any{
			"error":    err.Error(),
			"reason":   reason,
			"accepted": len(views),
		})
		return
	case err != nil:
		writeError(w, http.StatusBadRequest, err)
		return
	}
	bv := BatchView{Accepted: len(views)}
	for _, v := range views {
		if v.Cached {
			bv.Cached++
		}
		bv.Jobs = append(bv.Jobs, BatchJobView{Hash: v.Hash, Status: v.Status})
	}
	writeJSON(w, http.StatusAccepted, bv)
}

// SubscribeRequest is the body of POST /v2/subscriptions.
type SubscribeRequest struct {
	URL    string   `json:"url"`
	Secret string   `json:"secret"`
	Hashes []string `json:"hashes"`
}

func (c *Coordinator) handleSubscribe(w http.ResponseWriter, r *http.Request) {
	var req SubscribeRequest
	if !decode(w, r, &req) {
		return
	}
	id, ready, err := c.Subscribe(req.URL, req.Secret, req.Hashes)
	switch {
	case errors.Is(err, errDraining):
		writeError(w, http.StatusServiceUnavailable, err)
	case err != nil:
		writeError(w, http.StatusBadRequest, err)
	default:
		writeJSON(w, http.StatusCreated, map[string]any{
			"id":           id,
			"hashes":       len(req.Hashes),
			"already_done": ready,
		})
	}
}

func (c *Coordinator) handleHealth(w http.ResponseWriter, _ *http.Request) {
	c.mu.Lock()
	workers, cells := len(c.workers), len(c.cells)
	c.mu.Unlock()
	writeJSON(w, http.StatusOK, map[string]any{
		"status":  "ok",
		"workers": workers,
		"cells":   cells,
		"queued":  c.queue.len(),
	})
}
