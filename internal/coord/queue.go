// The cluster work queue: weighted-fair across tenants, priority-ordered
// within one. Unlike the static hash partitions of the legacy fleet mode,
// every registered worker's lane pulls from this one queue, so placement
// follows observed throughput (a fast worker simply comes back for more
// sooner) and an idle lane naturally steals cells another worker had to
// hand back. None of this affects results: a cell is a pure function of
// its content hash, so scheduling only decides who computes what first.
package coord

import (
	"context"
	"sync"

	"repro/internal/telemetry"
)

// fairQueue dequeues cells weighted-fair across tenants: the tenant ring
// is served round-robin, each tenant taking up to its weight of
// consecutive cells per turn, and within a tenant the highest priority
// goes first (FIFO among equals). Starvation-free by construction: a
// tenant with queued work is at most one ring revolution away from its
// next turn no matter how much higher-priority work other tenants hold.
type fairQueue struct {
	mu      sync.Mutex
	tenants map[string]*tenantQueue
	ring    []string // tenant round-robin order (grows, never shrinks)
	cursor  int
	credit  int // cells left in the current tenant's turn
	weights map[string]int
	depth   *telemetry.GaugeVec // als_cluster_queue_depth by tenant; may be nil
	// signal wakes one blocked pop per push; a successful pop re-signals
	// while items remain, so concurrent lanes drain without thundering.
	signal chan struct{}
}

type tenantQueue struct {
	// items stays sorted: priority descending, FIFO within a priority
	// (push inserts after the last equal-priority cell).
	items []*cellState
}

func newFairQueue(weights map[string]int, depth *telemetry.GaugeVec) *fairQueue {
	return &fairQueue{
		tenants: map[string]*tenantQueue{},
		weights: weights,
		depth:   depth,
		signal:  make(chan struct{}, 1),
	}
}

func (q *fairQueue) weightOf(tenant string) int {
	if w, ok := q.weights[tenant]; ok && w > 0 {
		return w
	}
	return 1
}

// push enqueues one cell and wakes a waiting lane.
func (q *fairQueue) push(c *cellState) {
	q.mu.Lock()
	tq := q.tenants[c.tenant]
	if tq == nil {
		tq = &tenantQueue{}
		q.tenants[c.tenant] = tq
		q.ring = append(q.ring, c.tenant)
	}
	i := len(tq.items)
	for i > 0 && tq.items[i-1].priority < c.priority {
		i--
	}
	tq.items = append(tq.items, nil)
	copy(tq.items[i+1:], tq.items[i:])
	tq.items[i] = c
	if q.depth != nil {
		q.depth.With(c.tenant).Inc()
	}
	q.mu.Unlock()
	q.wake()
}

func (q *fairQueue) wake() {
	select {
	case q.signal <- struct{}{}:
	default:
	}
}

// popLocked runs one weighted-round-robin step; nil when nothing is
// queued anywhere.
func (q *fairQueue) popLocked() *cellState {
	n := len(q.ring)
	if n == 0 {
		return nil
	}
	// One extra step lets an exhausted-credit turn advance before the
	// full-ring scan starts.
	for scanned := 0; scanned <= n; scanned++ {
		t := q.ring[q.cursor%n]
		tq := q.tenants[t]
		if q.credit > 0 && len(tq.items) > 0 {
			c := tq.items[0]
			tq.items = tq.items[1:]
			q.credit--
			if q.credit == 0 || len(tq.items) == 0 {
				q.advanceLocked()
			}
			if q.depth != nil {
				q.depth.With(c.tenant).Dec()
			}
			return c
		}
		q.advanceLocked()
	}
	return nil
}

func (q *fairQueue) advanceLocked() {
	q.cursor = (q.cursor + 1) % len(q.ring)
	q.credit = q.weightOf(q.ring[q.cursor])
}

// tryPop dequeues without blocking.
func (q *fairQueue) tryPop() (*cellState, bool) {
	q.mu.Lock()
	c := q.popLocked()
	q.mu.Unlock()
	if c == nil {
		return nil, false
	}
	return c, true
}

// pop blocks until a cell is available or ctx ends.
func (q *fairQueue) pop(ctx context.Context) (*cellState, bool) {
	for {
		q.mu.Lock()
		c := q.popLocked()
		more := false
		if c != nil {
			for _, tq := range q.tenants {
				if len(tq.items) > 0 {
					more = true
					break
				}
			}
		}
		q.mu.Unlock()
		if c != nil {
			if more {
				q.wake() // pass the signal on to the next waiting lane
			}
			return c, true
		}
		select {
		case <-q.signal:
		case <-ctx.Done():
			return nil, false
		}
	}
}

// len reports the total queued cells across tenants.
func (q *fairQueue) len() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	n := 0
	for _, tq := range q.tenants {
		n += len(tq.items)
	}
	return n
}
