// Package coord is the cluster control plane: a long-lived coordinator
// daemon (cmd/alscoord) that owns fleet membership, scheduling and result
// delivery for a fleet of alsd workers.
//
// Where the legacy fleet mode (cmd/experiments -workers) hand-lists
// worker URLs and partitions cells statically by content hash, the
// coordinator is registration-driven and throughput-adaptive:
//
//   - Workers join with POST /cluster/register and stay live by
//     heartbeating (queue depth and evals/sec from their own telemetry
//     counters ride along). A worker that misses ExpireAfter heartbeats
//     is drained: its lane stops, its in-flight cells fail over to the
//     queue, and it is forgotten until it re-registers — never re-probed.
//   - Each registered worker is driven by the same lane engine the legacy
//     mode uses (dispatch.Lane: batch submit, poll by hash, capped
//     backoff, store-consulted 404 resubmit), but lanes pull from one
//     shared weighted-fair queue instead of a static partition, sized by
//     the worker's observed completion rate, so fast workers naturally
//     take more and idle lanes steal queue-full handbacks.
//   - Jobs carry a tenant and a priority; dequeue is weighted-fair across
//     tenants (queue.go) and per-tenant quotas bound how much any one
//     tenant may keep pending.
//   - Results fan out without per-client connections: /v2/batches accepts
//     many specs in one 202 (deduplicated against the shared store before
//     anything is scheduled) and /v2/subscriptions registers a callback
//     URL for a set of content hashes — each result is POSTed once as an
//     HMAC-signed envelope with capped-backoff retries (webhook.go).
//
// Everything the coordinator promises is write-ahead logged (wal.go):
// accepted cells, terminal transitions, subscriptions and acknowledged
// deliveries survive a SIGKILL and replay on restart.
//
// The coordinator serves the same worker job API as every alsd
// (POST /v1/jobs, GET /v1/jobs/{hash}, /healthz), so `experiments
// -coord=URL` is simply the legacy client pointed at one URL — results
// are byte-identical to local and static-fleet runs because a cell is a
// pure function of its content hash, wherever it runs.
package coord

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"sync"
	"time"

	"repro/internal/dispatch"
	"repro/internal/exp"
	"repro/internal/service"
	"repro/internal/store"
	"repro/internal/telemetry"
	"repro/internal/trace"
)

// DefaultTenant labels submissions that carry no explicit tenant (the
// worker job API used by cmd/experiments, for instance).
const DefaultTenant = "default"

// maxCells bounds the in-memory cell table; beyond it the oldest terminal
// cells are evicted. Their results stay store-addressable by hash, so
// GET /v1/jobs/{hash} keeps answering.
const maxCells = 8192

// Options configures a Coordinator.
type Options struct {
	// Store is the shared result store every accepted cell is deduped
	// against and every finished result is persisted to. Required: the
	// control plane's exactly-once story leans on content-hash identity.
	Store *store.Store
	// WAL makes the coordinator's promises durable (wal.go). Nil disables
	// durability. The caller owns it and closes it after Close returns.
	WAL *WAL
	// Logger receives structured records; nil discards.
	Logger *slog.Logger
	// Tracer records registration, steal and delivery spans; nil disables.
	Tracer *trace.Tracer
	// Metrics is the registry to instrument (GET /metrics); nil allocates
	// a private one.
	Metrics *telemetry.Registry
	// HeartbeatInterval is the cadence workers are told to beat at
	// (default 2s); ExpireAfter is how many intervals of silence drain a
	// worker (default 3).
	HeartbeatInterval time.Duration
	ExpireAfter       int
	// MaxPendingPerTenant caps one tenant's queued+running cells (default
	// 4096); batch intake beyond it is cut with the accepted prefix, like
	// a full worker queue. WAL replay is exempt — re-accepting yesterday's
	// promises must never self-reject (the PR 9 depth+pending guard,
	// applied to batch intake).
	MaxPendingPerTenant int
	// TenantWeights skews the fair dequeue (default weight 1 per tenant).
	TenantWeights map[string]int
	// Lane knobs, same semantics and defaults as dispatch.Options.
	Client       *http.Client
	SubmitBatch  int
	RetryBudget  int
	Backoff      time.Duration
	MaxBackoff   time.Duration
	PollInterval time.Duration
	// WebhookRetryBudget caps delivery attempts per envelope per process
	// lifetime (default 6; the WAL re-arms undelivered envelopes across
	// restarts). WebhookBackoff/WebhookMaxBackoff pace the retries
	// (defaults 100ms and 5s).
	WebhookRetryBudget int
	WebhookBackoff     time.Duration
	WebhookMaxBackoff  time.Duration
}

func (o Options) withDefaults() Options {
	if o.Logger == nil {
		o.Logger = slog.New(slog.DiscardHandler)
	}
	if o.HeartbeatInterval <= 0 {
		o.HeartbeatInterval = 2 * time.Second
	}
	if o.ExpireAfter <= 0 {
		o.ExpireAfter = 3
	}
	if o.MaxPendingPerTenant <= 0 {
		o.MaxPendingPerTenant = 4096
	}
	if o.Client == nil {
		o.Client = &http.Client{Timeout: 30 * time.Second}
	}
	if o.SubmitBatch <= 0 {
		o.SubmitBatch = 16
	}
	if o.SubmitBatch > service.MaxBatchJobs {
		o.SubmitBatch = service.MaxBatchJobs
	}
	if o.RetryBudget <= 0 {
		o.RetryBudget = 4
	}
	if o.Backoff <= 0 {
		o.Backoff = 100 * time.Millisecond
	}
	if o.MaxBackoff <= 0 {
		o.MaxBackoff = 2 * time.Second
	}
	if o.PollInterval <= 0 {
		o.PollInterval = 50 * time.Millisecond
	}
	if o.WebhookRetryBudget <= 0 {
		o.WebhookRetryBudget = 6
	}
	if o.WebhookBackoff <= 0 {
		o.WebhookBackoff = 100 * time.Millisecond
	}
	if o.WebhookMaxBackoff <= 0 {
		o.WebhookMaxBackoff = 5 * time.Second
	}
	return o
}

// cellState is one scheduled cell. Mutable fields are guarded by the
// coordinator mutex.
type cellState struct {
	hash     string
	job      exp.Job
	tenant   string
	priority int
	status   service.Status // queued, running, done, failed
	cached   bool
	result   *exp.JobResult
	errMsg   string
	// lastWorker is the worker id that last held the cell; a different
	// worker picking it up counts as a steal (offload or failover).
	lastWorker string
}

// Coordinator owns the cluster state. Create with New, serve Handler,
// shut down with Close.
type Coordinator struct {
	opts Options
	log  *slog.Logger
	met  *coordMetrics

	queue      *fairQueue
	baseCtx    context.Context
	baseCancel context.CancelFunc
	wg         sync.WaitGroup

	mu        sync.Mutex
	draining  bool
	cells     map[string]*cellState
	cellOrder []string
	// pendingByTenant counts queued+running cells per tenant for the
	// quota check.
	pendingByTenant map[string]int
	workers         map[string]*worker
	workerSeq       int
	subs            map[string]*subscription
	subSeq          int
}

// New builds the coordinator, replays its WAL, and starts the heartbeat
// sweeper. opts.Store is required.
func New(opts Options) (*Coordinator, error) {
	opts = opts.withDefaults()
	if opts.Store == nil {
		return nil, errors.New("coord: a shared result store is required")
	}
	ctx, cancel := context.WithCancel(context.Background())
	c := &Coordinator{
		opts:            opts,
		log:             opts.Logger,
		met:             newCoordMetrics(opts.Metrics),
		baseCtx:         ctx,
		baseCancel:      cancel,
		cells:           map[string]*cellState{},
		pendingByTenant: map[string]int{},
		workers:         map[string]*worker{},
		subs:            map[string]*subscription{},
	}
	c.queue = newFairQueue(opts.TenantWeights, c.met.queueDepth)
	if opts.WAL != nil {
		c.replayWAL()
	}
	c.wg.Add(1)
	go c.sweeper()
	return c, nil
}

// replayWAL rebuilds the promise ledger: pending cells rejoin their
// tenant queues (store hits complete immediately, nothing recomputes),
// subscriptions re-arm, and every done-but-unacknowledged envelope is
// re-queued for delivery. Afterwards the journal is compacted to the
// live state.
func (c *Coordinator) replayWAL() {
	wal := c.opts.WAL
	replayed := 0
	for _, wc := range wal.Pending() {
		if _, err := c.submitOne(wc.Job, wc.Tenant, wc.Priority, true); err != nil {
			c.log.Warn("wal replay rejected", "hash", wc.Hash, "error", err)
			c.walResolve(walOpFailed, wc.Hash)
			continue
		}
		replayed++
	}
	for _, ws := range wal.Subs() {
		c.restoreSubscription(ws)
	}
	if replayed > 0 || len(wal.Subs()) > 0 {
		c.log.Info("wal replayed", "cells", replayed, "subscriptions", len(c.subs))
	}
	c.mu.Lock()
	var cells []WALCell
	for _, h := range c.cellOrder {
		if cl := c.cells[h]; cl != nil && !terminal(cl.status) {
			cells = append(cells, WALCell{Hash: cl.hash, Job: cl.job, Tenant: cl.tenant, Priority: cl.priority})
		}
	}
	subs := make([]WALSubscription, 0, len(c.subs))
	for _, s := range c.subs {
		subs = append(subs, s.walState())
	}
	c.mu.Unlock()
	if err := wal.Compact(cells, subs); err != nil {
		c.log.Warn("wal compaction failed", "error", err)
	}
}

func terminal(s service.Status) bool {
	return s == service.StatusDone || s == service.StatusFailed || s == service.StatusCancelled
}

// walAccept / walResolve are nil-safe WAL appends; failures are logged,
// not returned (availability over durability, like the service WAL).
func (c *Coordinator) walAccept(cl *cellState) {
	if c.opts.WAL == nil {
		return
	}
	if err := c.opts.WAL.Accept(WALCell{Hash: cl.hash, Job: cl.job, Tenant: cl.tenant, Priority: cl.priority}); err != nil {
		c.log.Warn("wal append failed", "op", walOpAccept, "hash", cl.hash, "error", err)
	}
}

func (c *Coordinator) walResolve(op, hash string) {
	if c.opts.WAL == nil {
		return
	}
	if err := c.opts.WAL.Resolve(op, hash); err != nil {
		c.log.Warn("wal append failed", "op", op, "hash", hash, "error", err)
	}
}

// errTenantQuota cuts a batch at the tenant's pending cap; the HTTP layer
// maps it to the same 503 + accepted-prefix contract as a full worker
// queue.
var errTenantQuota = errors.New("coord: tenant pending quota exceeded")

// errDraining rejects intake after Close began.
var errDraining = errors.New("coord: coordinator is draining")

// Submit feeds a batch into the cluster queue for tenant at priority and
// returns the accepted-prefix views. A validation failure rejects the
// remainder with the offending index named (reason ""); hitting the
// tenant quota cuts the batch with reason service.ReasonQueueFull.
func (c *Coordinator) Submit(jobs []exp.Job, tenant string, priority int) (views []service.JobView, reason string, err error) {
	for i, j := range jobs {
		v, err := c.submitOne(j, tenant, priority, false)
		switch {
		case errors.Is(err, errTenantQuota):
			return views, service.ReasonQueueFull, fmt.Errorf("coord: tenant %q has %d cells pending (cap %d)", tenant, c.tenantPending(tenant), c.opts.MaxPendingPerTenant)
		case errors.Is(err, errDraining):
			return views, service.ReasonDraining, err
		case err != nil:
			return views, "", fmt.Errorf("coord: batch job %d (%s): %w", i, j, err)
		}
		views = append(views, v)
	}
	return views, "", nil
}

func (c *Coordinator) tenantPending(tenant string) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.pendingByTenant[tenant]
}

// submitOne runs the intake path for a single job: validate, dedup
// against live cells, dedup against the shared store, check the tenant
// quota (skipped on WAL replay — the depth+pending guard: yesterday's
// accepted promises must never self-reject on restart), then log the
// accept and enqueue.
func (c *Coordinator) submitOne(j exp.Job, tenant string, priority int, replay bool) (service.JobView, error) {
	if tenant == "" {
		tenant = DefaultTenant
	}
	// Canonicalize BEFORE hashing: alias spellings ("dcgwo" for "Ours")
	// must land on the same cell — and the same hash the workers will
	// report — as the canonical form.
	j, hash, err := service.CanonicalJobSpec(j)
	if err != nil {
		return service.JobView{}, err
	}

	c.mu.Lock()
	if c.draining {
		c.mu.Unlock()
		return service.JobView{}, errDraining
	}
	if cl, ok := c.cells[hash]; ok && cl.status != service.StatusFailed {
		v := c.viewLocked(cl)
		c.mu.Unlock()
		return v, nil
	}
	c.mu.Unlock()

	// Shared-store dedup before anything is scheduled: a hash any party
	// ever computed is answered immediately, cluster-wide.
	var r exp.JobResult
	if ok, err := c.opts.Store.Decode(hash, &r); err == nil && ok {
		c.mu.Lock()
		cl := c.newCellLocked(hash, j, tenant, priority)
		cl.status = service.StatusDone
		cl.cached = true
		cl.result = &r
		v := c.viewLocked(cl)
		deliveries := c.matchSubsLocked(hash)
		c.mu.Unlock()
		c.dispatchDeliveries(deliveries, hash)
		return v, nil
	}

	c.mu.Lock()
	if !replay && c.pendingByTenant[tenant] >= c.opts.MaxPendingPerTenant {
		c.mu.Unlock()
		return service.JobView{}, errTenantQuota
	}
	cl := c.newCellLocked(hash, j, tenant, priority)
	cl.status = service.StatusQueued
	c.pendingByTenant[tenant]++
	v := c.viewLocked(cl)
	c.mu.Unlock()
	c.walAccept(cl)
	c.queue.push(cl)
	c.log.Info("cell queued", "hash", hash, "tenant", tenant, "priority", priority, "spec", j.String())
	return v, nil
}

// newCellLocked indexes a fresh cell, evicting the oldest terminal cells
// past maxCells; a failed cell being resubmitted is replaced in place.
func (c *Coordinator) newCellLocked(hash string, j exp.Job, tenant string, priority int) *cellState {
	if old, ok := c.cells[hash]; ok {
		// Only a failed cell reaches here (resubmission gets a fresh run);
		// reuse its table slot.
		old.job, old.tenant, old.priority = j, tenant, priority
		old.status, old.result, old.errMsg, old.cached = service.StatusQueued, nil, "", false
		old.lastWorker = ""
		return old
	}
	if len(c.cells) >= maxCells {
		kept := c.cellOrder[:0]
		for _, h := range c.cellOrder {
			cl := c.cells[h]
			if len(c.cells) >= maxCells && cl != nil && terminal(cl.status) {
				delete(c.cells, h)
				continue
			}
			kept = append(kept, h)
		}
		c.cellOrder = kept
	}
	cl := &cellState{hash: hash, job: j, tenant: tenant, priority: priority}
	c.cells[hash] = cl
	c.cellOrder = append(c.cellOrder, hash)
	return cl
}

func (c *Coordinator) viewLocked(cl *cellState) service.JobView {
	v := service.JobView{Hash: cl.hash, Spec: cl.job, Status: cl.status, Cached: cl.cached, Error: cl.errMsg}
	if cl.result != nil {
		r := *cl.result
		v.Result = &r
	}
	return v
}

// JobByHash resolves a cell by content hash: live table first, then the
// shared store — the same fallback every alsd worker serves, so a
// coordinator restarted past its cell table still answers every result
// the fleet ever persisted.
func (c *Coordinator) JobByHash(hash string) (service.JobView, bool) {
	c.mu.Lock()
	if cl, ok := c.cells[hash]; ok {
		v := c.viewLocked(cl)
		c.mu.Unlock()
		return v, true
	}
	c.mu.Unlock()
	var r exp.JobResult
	if ok, err := c.opts.Store.Decode(hash, &r); err == nil && ok {
		return service.JobView{Hash: hash, Status: service.StatusDone, Cached: true, Result: &r}, true
	}
	return service.JobView{}, false
}

// assign hands a dequeued cell to a worker's lane, counting a steal when
// a different worker last held it.
func (c *Coordinator) assign(w *worker, cl *cellState) *dispatch.Task {
	c.mu.Lock()
	cl.status = service.StatusRunning
	if cl.lastWorker != "" && cl.lastWorker != w.id {
		c.met.steals.Inc()
		sp := c.opts.Tracer.StartRoot("coord.steal")
		sp.SetAttr("hash", cl.hash)
		sp.SetAttr("from", cl.lastWorker)
		sp.SetAttr("to", w.id)
		sp.End()
	}
	cl.lastWorker = w.id
	c.mu.Unlock()
	return &dispatch.Task{Job: cl.job, Hash: cl.hash}
}

// completeCell publishes one finished cell: persist first (the store is
// the durable copy subscribers and restarts rely on), then flip the
// table, log the terminal record, and fan out to subscriptions.
func (c *Coordinator) completeCell(w *worker, hash string, r exp.JobResult) error {
	if err := c.opts.Store.Put(hash, r); err != nil {
		return fmt.Errorf("coord: persist %s: %w", hash, err)
	}
	c.mu.Lock()
	cl := c.cells[hash]
	var deliveries []*subscription
	if cl != nil && !terminal(cl.status) {
		cl.status = service.StatusDone
		cl.result = &r
		c.pendingByTenant[cl.tenant]--
		deliveries = c.matchSubsLocked(hash)
	}
	if w != nil {
		w.noteCompletion()
	}
	c.mu.Unlock()
	c.walResolve(walOpDone, hash)
	c.dispatchDeliveries(deliveries, hash)
	return nil
}

// failCell records a deterministic job failure. Only that cell is
// poisoned — the cluster keeps serving other tenants and cells; clients
// polling the hash observe the failure and apply their own policy.
func (c *Coordinator) failCell(hash, errMsg string) {
	c.mu.Lock()
	cl := c.cells[hash]
	if cl != nil && !terminal(cl.status) {
		cl.status = service.StatusFailed
		cl.errMsg = errMsg
		c.pendingByTenant[cl.tenant]--
	}
	c.mu.Unlock()
	c.walResolve(walOpFailed, hash)
	c.log.Warn("cell failed", "hash", hash, "error", errMsg)
}

// requeue returns a dead or drained lane's leftovers to the fair queue.
func (c *Coordinator) requeue(tasks []*dispatch.Task) {
	for _, t := range tasks {
		c.mu.Lock()
		cl := c.cells[t.Hash]
		if cl == nil || terminal(cl.status) {
			c.mu.Unlock()
			continue
		}
		cl.status = service.StatusQueued
		c.mu.Unlock()
		c.queue.push(cl)
	}
}

// Handler and registration/heartbeat live in http.go and registry.go;
// webhook delivery in webhook.go.

// QueueLen reports the cells currently waiting in the fair queue.
func (c *Coordinator) QueueLen() int { return c.queue.len() }

// Metrics returns the registry the coordinator instruments.
func (c *Coordinator) Metrics() *telemetry.Registry { return c.met.registry }

// Close drains the control plane: intake stops, worker lanes and delivery
// runners stop, and Close returns when they have. Queued and in-flight
// cells stay in the WAL as unresolved accepts, so the next start
// re-enqueues them.
func (c *Coordinator) Close() {
	c.mu.Lock()
	c.draining = true
	c.mu.Unlock()
	c.baseCancel()
	c.wg.Wait()
}
