// Result fan-out without per-client connections: clients subscribe a
// callback URL to a set of content hashes, and the coordinator POSTs each
// result exactly once (per process lifetime; at-least-once across a
// crash, deduplicated by the WAL's delivered records) as an HMAC-signed
// JSON envelope with capped-backoff retries.
//
// Verification recipe for subscribers (docs/OPERATIONS.md repeats it):
// read the raw request body, compute hex(HMAC-SHA256(secret, body)), and
// compare "sha256=<hex>" against the X-ALS-Signature header with a
// constant-time comparison — VerifySignature does exactly that.
package coord

import (
	"bytes"
	"crypto/hmac"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"net/http"
	"net/url"
	"time"

	"repro/internal/exp"
	"repro/internal/service"
)

// SignatureHeader carries the envelope's HMAC: "sha256=<hex>".
const SignatureHeader = "X-ALS-Signature"

// Envelope is the webhook delivery body.
type Envelope struct {
	Subscription string        `json:"subscription"`
	Hash         string        `json:"hash"`
	Result       exp.JobResult `json:"result"`
}

// Sign computes the envelope signature header value for a body.
func Sign(secret, body []byte) string {
	mac := hmac.New(sha256.New, secret)
	mac.Write(body)
	return "sha256=" + hex.EncodeToString(mac.Sum(nil))
}

// VerifySignature checks a received signature header against the raw
// body in constant time.
func VerifySignature(secret, body []byte, header string) bool {
	return hmac.Equal([]byte(Sign(secret, body)), []byte(header))
}

// subscription is one registered callback. Mutable fields are guarded by
// the coordinator mutex; ch is buffered to the subscribed-hash count and
// the queued guard bounds sends, so enqueues never block.
type subscription struct {
	id     string
	url    string
	secret string
	hashes map[string]bool
	// delivered marks hashes whose envelope got a 2xx; queued marks those
	// sitting in ch or mid-attempt. Together they make in-process delivery
	// exactly-once per hash.
	delivered map[string]bool
	queued    map[string]bool
	ch        chan string
}

func (s *subscription) walState() WALSubscription {
	ws := WALSubscription{ID: s.id, URL: s.url, Secret: s.secret}
	for h := range s.hashes {
		ws.Hashes = append(ws.Hashes, h)
	}
	for h := range s.delivered {
		ws.Delivered = append(ws.Delivered, h)
	}
	return ws
}

// Subscribe registers a callback URL for a set of content hashes and
// returns the subscription id plus how many of the hashes are already
// done (their envelopes are queued immediately).
func (c *Coordinator) Subscribe(rawURL, secret string, hashes []string) (string, int, error) {
	u, err := url.Parse(rawURL)
	if err != nil || (u.Scheme != "http" && u.Scheme != "https") || u.Host == "" {
		return "", 0, fmt.Errorf("coord: subscribe: %q is not an http(s) callback URL", rawURL)
	}
	if len(hashes) == 0 {
		return "", 0, fmt.Errorf("coord: subscribe: no hashes")
	}

	c.mu.Lock()
	if c.draining {
		c.mu.Unlock()
		return "", 0, errDraining
	}
	c.subSeq++
	sub := &subscription{
		id:        fmt.Sprintf("sub-%04d", c.subSeq),
		url:       rawURL,
		secret:    secret,
		hashes:    map[string]bool{},
		delivered: map[string]bool{},
		queued:    map[string]bool{},
		ch:        make(chan string, len(hashes)),
	}
	for _, h := range hashes {
		sub.hashes[h] = true
	}
	c.subs[sub.id] = sub
	c.mu.Unlock()

	if c.opts.WAL != nil {
		if err := c.opts.WAL.Sub(sub.walState()); err != nil {
			c.log.Warn("wal append failed", "op", walOpSub, "sub", sub.id, "error", err)
		}
	}
	c.wg.Add(1)
	go c.runSubscription(sub)

	// Anything already finished delivers right away.
	ready := 0
	for h := range sub.hashes {
		if _, ok := c.resultFor(h); ok {
			c.mu.Lock()
			c.enqueueDeliveryLocked(sub, h)
			c.mu.Unlock()
			ready++
		}
	}
	c.log.Info("subscription registered", "sub", sub.id, "url", rawURL,
		"hashes", len(hashes), "already_done", ready)
	return sub.id, ready, nil
}

// restoreSubscription re-arms one WAL-recovered subscription: delivered
// hashes stay delivered, done-but-unacknowledged ones re-queue (the
// at-least-once half of the crash contract), the rest wait for their
// cells to finish.
func (c *Coordinator) restoreSubscription(ws WALSubscription) {
	c.mu.Lock()
	// Keep the id sequence past every recovered id so fresh subscriptions
	// never collide with remembered ones.
	var n int
	if _, err := fmt.Sscanf(ws.ID, "sub-%d", &n); err == nil && n > c.subSeq {
		c.subSeq = n
	}
	sub := &subscription{
		id:        ws.ID,
		url:       ws.URL,
		secret:    ws.Secret,
		hashes:    map[string]bool{},
		delivered: map[string]bool{},
		queued:    map[string]bool{},
		ch:        make(chan string, len(ws.Hashes)),
	}
	for _, h := range ws.Hashes {
		sub.hashes[h] = true
	}
	for _, h := range ws.Delivered {
		sub.delivered[h] = true
	}
	c.subs[sub.id] = sub
	c.mu.Unlock()
	c.wg.Add(1)
	go c.runSubscription(sub)
	for h := range sub.hashes {
		if sub.delivered[h] {
			continue
		}
		if _, ok := c.resultFor(h); ok {
			c.mu.Lock()
			c.enqueueDeliveryLocked(sub, h)
			c.mu.Unlock()
		}
	}
}

// matchSubsLocked collects the subscriptions watching hash; the caller
// then dispatches outside no lock via dispatchDeliveries. Coordinator
// mutex held.
func (c *Coordinator) matchSubsLocked(hash string) []*subscription {
	var out []*subscription
	for _, sub := range c.subs {
		if sub.hashes[hash] && !sub.delivered[hash] && !sub.queued[hash] {
			out = append(out, sub)
		}
	}
	return out
}

func (c *Coordinator) dispatchDeliveries(subs []*subscription, hash string) {
	if len(subs) == 0 {
		return
	}
	c.mu.Lock()
	for _, sub := range subs {
		c.enqueueDeliveryLocked(sub, hash)
	}
	c.mu.Unlock()
}

// enqueueDeliveryLocked queues one envelope at most once; coordinator
// mutex held. The channel is buffered to the subscribed-hash count and
// the queued guard caps sends at one per hash, so this never blocks.
func (c *Coordinator) enqueueDeliveryLocked(sub *subscription, hash string) {
	if !sub.hashes[hash] || sub.delivered[hash] || sub.queued[hash] {
		return
	}
	sub.queued[hash] = true
	sub.ch <- hash
}

// resultFor fetches a finished result by hash from the cell table or the
// shared store.
func (c *Coordinator) resultFor(hash string) (exp.JobResult, bool) {
	c.mu.Lock()
	if cl, ok := c.cells[hash]; ok && cl.status == service.StatusDone && cl.result != nil {
		r := *cl.result
		c.mu.Unlock()
		return r, true
	}
	c.mu.Unlock()
	var r exp.JobResult
	if ok, err := c.opts.Store.Decode(hash, &r); err == nil && ok {
		return r, true
	}
	return exp.JobResult{}, false
}

// runSubscription delivers one subscription's envelopes serially until
// the coordinator closes.
func (c *Coordinator) runSubscription(sub *subscription) {
	defer c.wg.Done()
	for {
		select {
		case <-c.baseCtx.Done():
			return
		case hash := <-sub.ch:
			c.deliver(sub, hash)
		}
	}
}

// deliver POSTs one signed envelope with capped-backoff retries. Success
// is a 2xx: the delivery is recorded in the WAL so a restart will not
// repeat it. A spent retry budget leaves the hash undelivered-but-logged;
// the WAL still holds no delivered record, so the next coordinator start
// tries again.
func (c *Coordinator) deliver(sub *subscription, hash string) {
	r, ok := c.resultFor(hash)
	if !ok {
		// Completion raced eviction and the store lost it somehow; requeue
		// on the next completion of this hash.
		c.mu.Lock()
		sub.queued[hash] = false
		c.mu.Unlock()
		return
	}
	body, err := json.Marshal(Envelope{Subscription: sub.id, Hash: hash, Result: r})
	if err != nil {
		c.log.Error("webhook marshal failed", "sub", sub.id, "hash", hash, "error", err.Error())
		return
	}
	sig := Sign([]byte(sub.secret), body)

	sp := c.opts.Tracer.StartRoot("webhook.deliver")
	sp.SetAttr("sub", sub.id)
	sp.SetAttr("hash", hash)
	defer sp.End()

	backoff := c.opts.WebhookBackoff
	for attempt := 1; attempt <= c.opts.WebhookRetryBudget; attempt++ {
		if c.baseCtx.Err() != nil {
			return
		}
		req, err := http.NewRequestWithContext(c.baseCtx, http.MethodPost, sub.url, bytes.NewReader(body))
		if err != nil {
			c.log.Error("webhook request failed", "sub", sub.id, "hash", hash, "error", err.Error())
			return
		}
		req.Header.Set("Content-Type", "application/json")
		req.Header.Set(SignatureHeader, sig)
		resp, err := c.opts.Client.Do(req)
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode >= 200 && resp.StatusCode < 300 {
				c.mu.Lock()
				sub.delivered[hash] = true
				c.mu.Unlock()
				if c.opts.WAL != nil {
					if werr := c.opts.WAL.Delivered(sub.id, hash); werr != nil {
						c.log.Warn("wal append failed", "op", walOpDelivered, "sub", sub.id, "error", werr)
					}
				}
				c.met.deliveries.Inc()
				sp.SetAttr("attempts", attempt)
				return
			}
			err = fmt.Errorf("HTTP %d", resp.StatusCode)
		}
		c.met.retries.Inc()
		c.log.Warn("webhook delivery failed", "sub", sub.id, "hash", hash,
			"attempt", attempt, "budget", c.opts.WebhookRetryBudget, "error", err.Error())
		if attempt == c.opts.WebhookRetryBudget {
			break
		}
		timer := time.NewTimer(backoff)
		select {
		case <-timer.C:
		case <-c.baseCtx.Done():
			timer.Stop()
			return
		}
		timer.Stop()
		if backoff *= 2; backoff > c.opts.WebhookMaxBackoff {
			backoff = c.opts.WebhookMaxBackoff
		}
	}
	sp.SetAttr("error", "retry budget spent")
	c.mu.Lock()
	sub.queued[hash] = false // a future completion (or restart) may retry
	c.mu.Unlock()
	c.log.Error("webhook delivery abandoned", "sub", sub.id, "hash", hash,
		"attempts", c.opts.WebhookRetryBudget)
}
