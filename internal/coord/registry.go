// Fleet membership: registration, heartbeats, expiry, and the per-worker
// lane that drives each registered alsd through the shared fair queue.
package coord

import (
	"context"
	"fmt"
	"net/http"
	"net/url"
	"strings"
	"time"

	"repro/internal/dispatch"
	"repro/internal/exp"
	"repro/internal/trace"
)

// worker is one registered alsd. Mutable fields are guarded by the
// coordinator mutex.
type worker struct {
	id     string
	url    string
	cancel context.CancelFunc

	lastBeat    time.Time
	queueDepth  int
	evalsTotal  int64
	evalsPerSec float64
	// rate is the EWMA of completed cells/sec observed by the coordinator
	// itself — the basis of the adaptive submit window.
	rate         float64
	lastComplete time.Time
}

// noteCompletion folds one finished cell into the worker's observed
// throughput; caller holds the coordinator mutex.
func (w *worker) noteCompletion() {
	now := time.Now()
	if !w.lastComplete.IsZero() {
		if dt := now.Sub(w.lastComplete).Seconds(); dt > 0 {
			const alpha = 0.3
			w.rate = alpha*(1/dt) + (1-alpha)*w.rate
		}
	}
	w.lastComplete = now
}

// windowHorizon is how much work the adaptive window keeps a worker fed
// with: enough cells for ~2s at its observed completion rate.
const windowHorizon = 2 * time.Second

// optimisticWindow seeds a worker with no throughput history yet.
const optimisticWindow = 4

// window is the adaptive submit cap for one worker: observed rate times
// the horizon, clamped to [1, SubmitBatch]; a worker whose heartbeat
// reports a saturated queue is held to 1 until it drains.
func (c *Coordinator) window(w *worker) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	if w.queueDepth >= c.opts.SubmitBatch*2 {
		return 1
	}
	if w.rate == 0 {
		return optimisticWindow
	}
	n := int(w.rate * windowHorizon.Seconds())
	if n < 1 {
		n = 1
	}
	if n > c.opts.SubmitBatch {
		n = c.opts.SubmitBatch
	}
	return n
}

// Register adds (or re-adds) a worker by base URL and starts its lane.
// The same URL re-registering replaces the old entry: the stale lane is
// cancelled and its cells return to the queue before the new lane starts.
func (c *Coordinator) Register(rawURL string) (id string, interval time.Duration, err error) {
	u, err := url.Parse(rawURL)
	if err != nil || (u.Scheme != "http" && u.Scheme != "https") || u.Host == "" {
		return "", 0, fmt.Errorf("coord: register: %q is not an http(s) base URL", rawURL)
	}
	base := strings.TrimRight(rawURL, "/")

	c.mu.Lock()
	if c.draining {
		c.mu.Unlock()
		return "", 0, errDraining
	}
	var stale *worker
	for _, w := range c.workers {
		if w.url == base {
			stale = w
			break
		}
	}
	if stale != nil {
		delete(c.workers, stale.id)
		c.met.workers.Dec()
	}
	c.workerSeq++
	w := &worker{id: fmt.Sprintf("w%04d", c.workerSeq), url: base, lastBeat: time.Now()}
	ctx, cancel := context.WithCancel(c.baseCtx)
	w.cancel = cancel
	c.workers[w.id] = w
	c.met.workers.Inc()
	c.mu.Unlock()

	if stale != nil {
		stale.cancel() // its lane requeues leftovers on the way out
	}
	sp := c.opts.Tracer.StartRoot("cluster.register")
	sp.SetAttr("worker", w.id)
	sp.SetAttr("url", base)
	sp.End()
	c.wg.Add(1)
	go c.runWorkerLane(w, ctx)
	c.log.Info("worker registered", "worker", w.id, "url", base)
	return w.id, c.opts.HeartbeatInterval, nil
}

// Heartbeat records one beat; false means the id is unknown (expired or
// never registered) and the worker must re-register.
func (c *Coordinator) Heartbeat(id string, queueDepth int, evalsTotal int64, evalsPerSec float64) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	w, ok := c.workers[id]
	if !ok {
		return false
	}
	w.lastBeat = time.Now()
	w.queueDepth = queueDepth
	w.evalsTotal = evalsTotal
	w.evalsPerSec = evalsPerSec
	c.met.heartbeats.Inc()
	return true
}

// Deregister removes a worker gracefully (clean shutdown); its lane stops
// and in-flight cells return to the queue.
func (c *Coordinator) Deregister(id string) bool {
	c.mu.Lock()
	w, ok := c.workers[id]
	if ok {
		delete(c.workers, id)
		c.met.workers.Dec()
	}
	c.mu.Unlock()
	if !ok {
		return false
	}
	w.cancel()
	c.log.Info("worker deregistered", "worker", id, "url", w.url)
	return true
}

// Workers snapshots the live fleet for the operator surface.
func (c *Coordinator) Workers() []WorkerView {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]WorkerView, 0, len(c.workers))
	for _, w := range c.workers {
		out = append(out, WorkerView{
			ID: w.id, URL: w.url,
			LastHeartbeat: w.lastBeat,
			QueueDepth:    w.queueDepth,
			EvalsTotal:    w.evalsTotal,
			EvalsPerSec:   w.evalsPerSec,
			CellsPerSec:   w.rate,
		})
	}
	return out
}

// WorkerView is one registered worker as reported by GET /cluster/workers.
type WorkerView struct {
	ID            string    `json:"id"`
	URL           string    `json:"url"`
	LastHeartbeat time.Time `json:"last_heartbeat"`
	QueueDepth    int       `json:"queue_depth"`
	EvalsTotal    int64     `json:"evals_total"`
	EvalsPerSec   float64   `json:"evals_per_sec"`
	CellsPerSec   float64   `json:"cells_per_sec"`
}

// sweeper expires workers that stopped heartbeating: ExpireAfter silent
// intervals cancel the worker's lane (failing its cells over to the
// queue) and drop it from the registry — it is never probed again unless
// it re-registers. This replaces the legacy mode's dead-base re-probing
// with a structural guarantee.
func (c *Coordinator) sweeper() {
	defer c.wg.Done()
	ticker := time.NewTicker(c.opts.HeartbeatInterval)
	defer ticker.Stop()
	for {
		select {
		case <-c.baseCtx.Done():
			return
		case <-ticker.C:
		}
		deadline := time.Duration(c.opts.ExpireAfter) * c.opts.HeartbeatInterval
		var expired []*worker
		c.mu.Lock()
		for id, w := range c.workers {
			if time.Since(w.lastBeat) > deadline {
				delete(c.workers, id)
				c.met.workers.Dec()
				c.met.expired.Inc()
				expired = append(expired, w)
			}
		}
		c.mu.Unlock()
		for _, w := range expired {
			c.log.Warn("worker expired", "worker", w.id, "url", w.url,
				"missed", c.opts.ExpireAfter, "interval", c.opts.HeartbeatInterval.String())
			w.cancel()
		}
	}
}

// runWorkerLane drives one registered worker with the shared lane engine
// until the worker is expired, deregistered, dies, or the coordinator
// closes. Leftovers always return to the fair queue.
func (c *Coordinator) runWorkerLane(w *worker, ctx context.Context) {
	defer c.wg.Done()
	laneSpan := c.opts.Tracer.StartRoot("coord.lane")
	laneSpan.SetAttr("worker", w.id)
	laneSpan.SetAttr("url", w.url)
	l := &dispatch.Lane{
		Name:         w.url,
		Base:         w.url,
		Client:       c.opts.Client,
		SubmitBatch:  c.opts.SubmitBatch,
		RetryBudget:  c.opts.RetryBudget,
		Backoff:      c.opts.Backoff,
		MaxBackoff:   c.opts.MaxBackoff,
		PollInterval: c.opts.PollInterval,
		Logf: func(format string, args ...any) {
			c.log.Info(fmt.Sprintf(format, args...), "worker", w.id)
		},
		Metrics: c.met.dispatch,
		Sched:   &laneSched{c: c, w: w, ctx: ctx, span: laneSpan},
	}
	leftovers, cause := l.Run()
	c.requeue(leftovers)
	laneSpan.SetAttr("requeued", len(leftovers))
	if cause != nil {
		laneSpan.SetAttr("error", cause.Error())
		c.dropDeadWorker(w, cause)
	}
	laneSpan.End()
}

// dropDeadWorker removes a worker whose lane died (retry budget spent,
// draining, incompatible build). Unlike a transient blip — which the
// lane's own backoff rides out — a dead lane means the worker is gone
// for good as far as this registration is concerned: it must register
// again to rejoin, and nothing re-probes it meanwhile.
func (c *Coordinator) dropDeadWorker(w *worker, cause error) {
	c.mu.Lock()
	_, present := c.workers[w.id]
	if present {
		delete(c.workers, w.id)
		c.met.workers.Dec()
		c.met.expired.Inc()
	}
	c.mu.Unlock()
	w.cancel()
	if present {
		c.log.Warn("worker dropped", "worker", w.id, "url", w.url, "error", cause.Error())
	}
}

// laneSched adapts the coordinator's shared queue to the lane engine:
// Next/Fill pull from the weighted-fair queue (Fill capped by the
// worker's adaptive window), Offload returns cells for other lanes to
// steal, completions and failures land in the cell table.
type laneSched struct {
	c    *Coordinator
	w    *worker
	ctx  context.Context
	span *trace.Span
}

func (s *laneSched) Next() (*dispatch.Task, bool) {
	cl, ok := s.c.queue.pop(s.ctx)
	if !ok {
		return nil, false
	}
	return s.c.assign(s.w, cl), true
}

func (s *laneSched) Fill(n int) []*dispatch.Task {
	if limit := s.c.window(s.w) - 1; n > limit {
		n = limit
	}
	var out []*dispatch.Task
	for len(out) < n {
		cl, ok := s.c.queue.tryPop()
		if !ok {
			break
		}
		out = append(out, s.c.assign(s.w, cl))
	}
	return out
}

func (s *laneSched) Context() context.Context { return s.ctx }

// Offload returns queue-full remainders to the shared queue, where any
// idle lane steals them — the whole point of scheduling by throughput.
func (s *laneSched) Offload(tasks []*dispatch.Task) bool {
	s.c.requeue(tasks)
	return true
}

func (s *laneSched) Sleep(d time.Duration) {
	timer := time.NewTimer(d)
	defer timer.Stop()
	select {
	case <-timer.C:
	case <-s.ctx.Done():
	}
}

func (s *laneSched) Complete(t *dispatch.Task, r exp.JobResult) error {
	return s.c.completeCell(s.w, t.Hash, r)
}

// JobFailed poisons only the failing cell; the lane (and the cluster)
// keeps going. Clients polling the hash see the failure and decide.
func (s *laneSched) JobFailed(t *dispatch.Task, msg string) error {
	s.c.failCell(t.Hash, msg)
	return nil
}

// Fatal ends this worker's registration (incompatible build, rejected
// batch): the worker is dropped outright — the lane context dies with it
// and runWorkerLane requeues whatever the lane still held.
func (s *laneSched) Fatal(err error) {
	s.c.log.Error("worker lane fatal", "worker", s.w.id, "url", s.w.url, "error", err.Error())
	s.c.dropDeadWorker(s.w, err)
}

func (s *laneSched) Lookup(hash string) (exp.JobResult, bool) {
	var r exp.JobResult
	if ok, err := s.c.opts.Store.Decode(hash, &r); err != nil || !ok {
		return exp.JobResult{}, false
	}
	return r, true
}

func (s *laneSched) Stamp(req *http.Request, sp *trace.Span) {
	req.Header.Set("X-Request-Id", "coord-"+s.w.id)
	if sc := sp.Context(); sc.Valid() {
		req.Header.Set("traceparent", sc.Traceparent())
	}
}

func (s *laneSched) StartSpan(name string) *trace.Span { return s.span.StartChild(name) }

// Hopeless is always false: the registry holds exactly one lane per
// worker, and a dead worker is dropped outright rather than left for
// sibling lanes to re-probe.
func (s *laneSched) Hopeless() bool { return false }
