// The coordinator's write-ahead log. Like the service WAL it is a
// newline-delimited JSON journal replayed on startup, but it covers the
// control plane's promises instead of one daemon's queue: accepted cells
// (with tenant and priority, so a replayed cell rejoins the same fair
// queue), their terminal transitions, result subscriptions, and completed
// webhook deliveries. A SIGKILLed coordinator therefore re-enqueues the
// cells it owed, re-arms its subscriptions, and re-delivers exactly the
// envelopes that never got a 2xx — at-least-once across the crash,
// exactly-once within one process lifetime.
//
// Record shapes (one JSON object per line):
//
//	{"op":"accept","hash":"…","tenant":"acme","priority":2,"job":{…exp.Job…}}
//	{"op":"done","hash":"…"}          // or "failed"
//	{"op":"sub","sub_id":"sub-1","url":"http://…","secret":"…","hashes":["…"]}
//	{"op":"delivered","sub_id":"sub-1","hash":"…"}
package coord

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sync"

	"repro/internal/exp"
)

// WAL op vocabulary.
const (
	walOpAccept    = "accept"
	walOpDone      = "done"
	walOpFailed    = "failed"
	walOpSub       = "sub"
	walOpDelivered = "delivered"
)

// walRecord is the on-disk union of every record shape.
type walRecord struct {
	Op       string   `json:"op"`
	Hash     string   `json:"hash,omitempty"`
	Tenant   string   `json:"tenant,omitempty"`
	Priority int      `json:"priority,omitempty"`
	Job      *exp.Job `json:"job,omitempty"`
	SubID    string   `json:"sub_id,omitempty"`
	URL      string   `json:"url,omitempty"`
	Secret   string   `json:"secret,omitempty"`
	Hashes   []string `json:"hashes,omitempty"`
}

// WALCell is one accepted cell with no terminal record — work a crashed
// coordinator still owes.
type WALCell struct {
	Hash     string
	Job      exp.Job
	Tenant   string
	Priority int
}

// WALSubscription is one recovered subscription: its registration plus
// the hashes whose envelopes already got a 2xx before the crash.
type WALSubscription struct {
	ID        string
	URL       string
	Secret    string
	Hashes    []string
	Delivered []string
}

// WAL is the append-only journal. Open with OpenWAL; every append is
// fsynced before it returns.
type WAL struct {
	mu      sync.Mutex
	path    string
	f       *os.File
	pending []WALCell
	subs    []WALSubscription
	corrupt int
}

// OpenWAL opens (creating if needed) the journal at path and scans it:
// unresolved accepts become Pending, subscription state becomes Subs.
// Undecodable lines are counted, not fatal, and a torn final line — the
// SIGKILL landed mid-append — is healed so the next append starts clean.
func OpenWAL(path string) (*WAL, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("coord: open wal: %w", err)
	}
	w := &WAL{path: path, f: f}
	open := map[string]*WALCell{}
	subs := map[string]*WALSubscription{}
	var order, subOrder []string
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<24)
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var r walRecord
		if err := json.Unmarshal(line, &r); err != nil {
			w.corrupt++
			continue
		}
		switch r.Op {
		case walOpAccept:
			if r.Job == nil || r.Hash == "" {
				w.corrupt++
				continue
			}
			if _, ok := open[r.Hash]; !ok {
				order = append(order, r.Hash)
			}
			open[r.Hash] = &WALCell{Hash: r.Hash, Job: *r.Job, Tenant: r.Tenant, Priority: r.Priority}
		case walOpDone, walOpFailed:
			delete(open, r.Hash)
		case walOpSub:
			if r.SubID == "" || r.URL == "" {
				w.corrupt++
				continue
			}
			if _, ok := subs[r.SubID]; !ok {
				subOrder = append(subOrder, r.SubID)
			}
			subs[r.SubID] = &WALSubscription{ID: r.SubID, URL: r.URL, Secret: r.Secret, Hashes: r.Hashes}
		case walOpDelivered:
			if s, ok := subs[r.SubID]; ok {
				s.Delivered = append(s.Delivered, r.Hash)
			}
		default:
			w.corrupt++
		}
	}
	if err := sc.Err(); err != nil {
		f.Close()
		return nil, fmt.Errorf("coord: scan wal: %w", err)
	}
	for _, h := range order {
		if c, ok := open[h]; ok {
			w.pending = append(w.pending, *c)
		}
	}
	for _, id := range subOrder {
		w.subs = append(w.subs, *subs[id])
	}
	if info, err := f.Stat(); err == nil && info.Size() > 0 {
		var last [1]byte
		if _, err := f.ReadAt(last[:], info.Size()-1); err == nil && last[0] != '\n' {
			if _, err := f.Write([]byte("\n")); err != nil {
				f.Close()
				return nil, fmt.Errorf("coord: heal wal tail: %w", err)
			}
		}
	}
	if _, err := f.Seek(0, io.SeekEnd); err != nil {
		f.Close()
		return nil, fmt.Errorf("coord: seek wal: %w", err)
	}
	return w, nil
}

// Pending returns the accepted-but-unresolved cells found at open, in
// first-accept order.
func (w *WAL) Pending() []WALCell {
	w.mu.Lock()
	defer w.mu.Unlock()
	return append([]WALCell(nil), w.pending...)
}

// Subs returns the subscriptions found at open, registration order.
func (w *WAL) Subs() []WALSubscription {
	w.mu.Lock()
	defer w.mu.Unlock()
	return append([]WALSubscription(nil), w.subs...)
}

// Corrupt reports how many undecodable lines the open scan skipped.
func (w *WAL) Corrupt() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.corrupt
}

// Path returns the journal's file path.
func (w *WAL) Path() string { return w.path }

// Accept records one accepted cell; durable before it returns.
func (w *WAL) Accept(c WALCell) error {
	return w.append(walRecord{Op: walOpAccept, Hash: c.Hash, Tenant: c.Tenant, Priority: c.Priority, Job: &c.Job})
}

// Resolve records a cell's terminal transition (walOpDone or walOpFailed).
func (w *WAL) Resolve(op, hash string) error {
	return w.append(walRecord{Op: op, Hash: hash})
}

// Sub records one subscription registration.
func (w *WAL) Sub(s WALSubscription) error {
	return w.append(walRecord{Op: walOpSub, SubID: s.ID, URL: s.URL, Secret: s.Secret, Hashes: s.Hashes})
}

// Delivered records one 2xx-acknowledged envelope, so a restart does not
// re-deliver it.
func (w *WAL) Delivered(subID, hash string) error {
	return w.append(walRecord{Op: walOpDelivered, SubID: subID, Hash: hash})
}

func (w *WAL) append(r walRecord) error {
	raw, err := json.Marshal(r)
	if err != nil {
		return fmt.Errorf("coord: marshal wal record: %w", err)
	}
	raw = append(raw, '\n')
	w.mu.Lock()
	defer w.mu.Unlock()
	if _, err := w.f.Write(raw); err != nil {
		return fmt.Errorf("coord: append wal: %w", err)
	}
	if err := w.f.Sync(); err != nil {
		return fmt.Errorf("coord: sync wal: %w", err)
	}
	return nil
}

// Compact rewrites the journal to exactly the live state — one accept per
// still-pending cell, one sub plus its delivered records per subscription
// — via tmp file + rename, then reopens for appending. The coordinator
// calls it once per startup, after replay.
func (w *WAL) Compact(cells []WALCell, subs []WALSubscription) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	tmp := w.path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return fmt.Errorf("coord: compact wal: %w", err)
	}
	bw := bufio.NewWriter(f)
	enc := json.NewEncoder(bw)
	write := func(r walRecord) error {
		if err := enc.Encode(r); err != nil {
			f.Close()
			os.Remove(tmp) //nolint:errcheck // best-effort cleanup
			return fmt.Errorf("coord: compact wal: %w", err)
		}
		return nil
	}
	for _, s := range subs {
		if err := write(walRecord{Op: walOpSub, SubID: s.ID, URL: s.URL, Secret: s.Secret, Hashes: s.Hashes}); err != nil {
			return err
		}
		for _, h := range s.Delivered {
			if err := write(walRecord{Op: walOpDelivered, SubID: s.ID, Hash: h}); err != nil {
				return err
			}
		}
	}
	for i := range cells {
		c := cells[i]
		if err := write(walRecord{Op: walOpAccept, Hash: c.Hash, Tenant: c.Tenant, Priority: c.Priority, Job: &c.Job}); err != nil {
			return err
		}
	}
	if err := bw.Flush(); err != nil {
		f.Close()
		os.Remove(tmp) //nolint:errcheck // best-effort cleanup
		return fmt.Errorf("coord: compact wal: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp) //nolint:errcheck // best-effort cleanup
		return fmt.Errorf("coord: compact wal: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("coord: compact wal: %w", err)
	}
	if err := os.Rename(tmp, w.path); err != nil {
		return fmt.Errorf("coord: compact wal: %w", err)
	}
	if err := w.f.Close(); err != nil {
		return fmt.Errorf("coord: compact wal: %w", err)
	}
	nf, err := os.OpenFile(w.path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("coord: reopen wal: %w", err)
	}
	w.f = nf
	return nil
}

// Close releases the journal file.
func (w *WAL) Close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.f.Close()
}
