// The coordinator's instrument set. The cluster metric names are part of
// the frozen exposition contract: they are appended to
// internal/service/testdata/metrics_v1.txt (never reordered, never
// renamed) and pinned by TestClusterMetricNamesFrozen, exactly like the
// service names before them. The dispatch lane instruments
// (als_dispatch_*) register on the same registry via dispatch.NewMetrics,
// so one /metrics scrape covers intake, scheduling and delivery.
package coord

import (
	"repro/internal/dispatch"
	"repro/internal/telemetry"
)

// clusterMetricNames is the frozen registration order of the
// coordinator-specific instruments — the tail of metrics_v1.txt.
var clusterMetricNames = []string{
	"als_cluster_workers",
	"als_cluster_heartbeats_total",
	"als_cluster_workers_expired_total",
	"als_cluster_steals_total",
	"als_cluster_queue_depth",
	"als_webhook_deliveries_total",
	"als_webhook_retries_total",
}

type coordMetrics struct {
	registry *telemetry.Registry
	dispatch *dispatch.Metrics

	workers    *telemetry.Gauge
	heartbeats *telemetry.Counter
	expired    *telemetry.Counter
	steals     *telemetry.Counter
	queueDepth *telemetry.GaugeVec // tenant
	deliveries *telemetry.Counter
	retries    *telemetry.Counter
}

func newCoordMetrics(reg *telemetry.Registry) *coordMetrics {
	if reg == nil {
		reg = telemetry.NewRegistry()
	}
	return &coordMetrics{
		registry: reg,
		workers: reg.Gauge("als_cluster_workers",
			"Registered workers currently live (heartbeating)."),
		heartbeats: reg.Counter("als_cluster_heartbeats_total",
			"Worker heartbeats received."),
		expired: reg.Counter("als_cluster_workers_expired_total",
			"Workers drained after missing heartbeats or dying mid-lane."),
		steals: reg.Counter("als_cluster_steals_total",
			"Cells reassigned to a different worker than last held them."),
		queueDepth: reg.GaugeVec("als_cluster_queue_depth",
			"Cells waiting in the cluster queue, by tenant.", "tenant"),
		deliveries: reg.Counter("als_webhook_deliveries_total",
			"Webhook envelopes acknowledged (2xx) by subscribers."),
		retries: reg.Counter("als_webhook_retries_total",
			"Webhook delivery attempts that failed and were retried."),
		dispatch: dispatch.NewMetrics(reg),
	}
}
