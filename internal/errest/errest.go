// Package errest implements VECBEE-style batch error estimation by
// Monte-Carlo simulation: error rate (ER), normalized mean error distance
// (NMED), per-PO error rates (for the reproduction Level function), and
// target/switch signal similarity.
//
// An Estimator caches the accurate circuit's simulated signals once; every
// approximate candidate is then evaluated against the cached golden outputs
// on the same shared vector sample. With the paper's 1e5 sampled vectors
// the estimates are unbiased with negligible variance; the sample size is
// configurable so tests and benchmarks can trade accuracy for speed.
package errest

import (
	"fmt"
	"math"
	"math/bits"

	"repro/internal/netlist"
	"repro/internal/sim"
)

// Metrics bundles every error figure computed from one simulation of an
// approximate circuit.
type Metrics struct {
	// ER is the probability that any PO differs from the accurate circuit
	// (Eq. 1 of the paper).
	ER float64
	// NMED is the mean |Vori-Vapp| normalized by 2^n - 1 (Eq. 2).
	NMED float64
	// PerPO is the per-output bit error rate, used by the reproduction
	// Level function (Eq. 3).
	PerPO []float64
}

// Estimator evaluates approximate circuits against one accurate circuit on
// a fixed shared vector sample.
type Estimator struct {
	vectors  *sim.Vectors
	goldenPO [][]uint64
	// goldenRes keeps the full accurate-circuit simulation for callers
	// that need internal signals (e.g. similarity of the untouched
	// accurate netlist).
	goldenRes *sim.Result
	nPO       int
	norm      float64   // 2^nPO - 1 in float64
	pow2      []float64 // 2^i per PO index, for incremental error distances
}

// New simulates the accurate circuit on the given vectors and returns an
// estimator bound to them.
func New(accurate *netlist.Circuit, v *sim.Vectors) (*Estimator, error) {
	res, err := sim.Run(accurate, v)
	if err != nil {
		return nil, fmt.Errorf("errest: simulating accurate circuit: %w", err)
	}
	nPO := len(accurate.POs)
	pow2 := make([]float64, nPO)
	for i, scale := 0, 1.0; i < nPO; i, scale = i+1, scale*2 {
		pow2[i] = scale
	}
	return &Estimator{
		vectors:   v,
		goldenPO:  sim.POSignals(accurate, res),
		goldenRes: res,
		nPO:       nPO,
		norm:      math.Pow(2, float64(nPO)) - 1,
		pow2:      pow2,
	}, nil
}

// Vectors returns the shared input sample.
func (e *Estimator) Vectors() *sim.Vectors { return e.vectors }

// GoldenResult returns the cached accurate-circuit simulation.
func (e *Estimator) GoldenResult() *sim.Result { return e.goldenRes }

// N returns the number of sampled vectors.
func (e *Estimator) N() int { return e.vectors.N }

// Evaluate simulates the approximate circuit and returns all metrics plus
// the simulation result for reuse (similarity queries, Level computation).
func (e *Estimator) Evaluate(app *netlist.Circuit) (Metrics, *sim.Result, error) {
	res, err := sim.Run(app, e.vectors)
	if err != nil {
		return Metrics{}, nil, fmt.Errorf("errest: simulating %q: %w", app.Name, err)
	}
	m, err := e.MetricsFromResult(app, res)
	return m, res, err
}

// MetricsFromResult computes metrics from an existing simulation result of
// the approximate circuit.
func (e *Estimator) MetricsFromResult(app *netlist.Circuit, res *sim.Result) (Metrics, error) {
	if len(app.POs) != e.nPO {
		return Metrics{}, fmt.Errorf("errest: circuit %q has %d POs, accurate has %d", app.Name, len(app.POs), e.nPO)
	}
	appPO := sim.POSignals(app, res)
	n := e.vectors.N
	words := e.vectors.Words()

	perPO := make([]float64, e.nPO)
	for i := range appPO {
		perPO[i] = float64(sim.CountDiff(appPO[i], e.goldenPO[i])) / float64(n)
	}

	// ER and NMED share a scan over differing vectors: for each word,
	// OR the per-PO XOR words; set bits mark vectors with any mismatch.
	erCount := 0
	sumED := 0.0
	for w := 0; w < words; w++ {
		var anyDiff uint64
		for i := range appPO {
			anyDiff |= appPO[i][w] ^ e.goldenPO[i][w]
		}
		if anyDiff == 0 {
			continue
		}
		erCount += bits.OnesCount64(anyDiff)
		for rest := anyDiff; rest != 0; rest &= rest - 1 {
			k := w*64 + bits.TrailingZeros64(rest)
			vOri := sim.OutputValue(e.goldenPO, k)
			vApp := sim.OutputValue(appPO, k)
			sumED += math.Abs(vOri - vApp)
		}
	}
	return Metrics{
		ER:    float64(erCount) / float64(n),
		NMED:  sumED / e.norm / float64(n),
		PerPO: perPO,
	}, nil
}

// MetricsDelta computes metrics from a simulation of the approximate
// circuit given an oracle telling which PO gates' waveforms may differ
// from the accurate circuit's (an over-approximation is fine; typically
// sim.(*Simulator).SignalDiffers after an incremental run). POs outside
// the touched set contribute exactly nothing to ER, NMED and PerPO — their
// waveforms equal the golden ones — so the scan runs over the touched POs
// only. The result is bit-identical to MetricsFromResult on the same
// simulation: the per-vector error distance restricted to touched POs is
// the same exact integer, and it is accumulated in the same vector order.
func (e *Estimator) MetricsDelta(app *netlist.Circuit, res *sim.Result, touched func(gateID int) bool) (Metrics, error) {
	if len(app.POs) != e.nPO {
		return Metrics{}, fmt.Errorf("errest: circuit %q has %d POs, accurate has %d", app.Name, len(app.POs), e.nPO)
	}
	if touched == nil || e.nPO > 53 {
		// Beyond 53 POs the full path's float64 rounding of Vori and Vapp
		// is no longer exactly recoverable from the touched bits alone;
		// keep bit-identical results by running the full scan.
		return e.MetricsFromResult(app, res)
	}
	idx := make([]int, 0, e.nPO) // touched PO port indices
	for i, po := range app.POs {
		if touched(po) {
			idx = append(idx, i)
		}
	}
	perPO := make([]float64, e.nPO)
	m := Metrics{PerPO: perPO}
	if len(idx) == 0 {
		return m, nil // bit-identical to the accurate circuit
	}
	n := e.vectors.N
	words := e.vectors.Words()
	appPO := sim.POSignals(app, res)
	for _, i := range idx {
		perPO[i] = float64(sim.CountDiff(appPO[i], e.goldenPO[i])) / float64(n)
	}
	erCount := 0
	sumED := 0.0
	for w := 0; w < words; w++ {
		var anyDiff uint64
		for _, i := range idx {
			anyDiff |= appPO[i][w] ^ e.goldenPO[i][w]
		}
		if anyDiff == 0 {
			continue
		}
		erCount += bits.OnesCount64(anyDiff)
		for rest := anyDiff; rest != 0; rest &= rest - 1 {
			b := uint(bits.TrailingZeros64(rest))
			// Vori - Vapp restricted to the touched bits: exact, since
			// every partial sum is an integer below 2^54.
			d := 0.0
			for _, i := range idx {
				ori := float64(e.goldenPO[i][w] >> b & 1)
				apx := float64(appPO[i][w] >> b & 1)
				d += (ori - apx) * e.pow2[i]
			}
			sumED += math.Abs(d)
		}
	}
	m.ER = float64(erCount) / float64(n)
	m.NMED = sumED / e.norm / float64(n)
	return m, nil
}

// ER is a convenience wrapper returning only the error rate.
func (e *Estimator) ER(app *netlist.Circuit) (float64, error) {
	m, _, err := e.Evaluate(app)
	return m.ER, err
}

// NMED is a convenience wrapper returning only the normalized mean error
// distance.
func (e *Estimator) NMED(app *netlist.Circuit) (float64, error) {
	m, _, err := e.Evaluate(app)
	return m.NMED, err
}

// Similarity returns the fraction of vectors on which two simulated gate
// signals agree — the paper's switch-gate selection criterion.
func Similarity(res *sim.Result, a, b int) float64 {
	return 1 - float64(sim.CountDiff(res.Signals[a], res.Signals[b]))/float64(res.N)
}

// ConstSimilarity returns the fraction of vectors on which the gate's
// signal equals the constant value (false = 0, true = 1).
func ConstSimilarity(res *sim.Result, id int, value bool) float64 {
	ones := sim.CountOnes(res.Signals[id])
	if value {
		return float64(ones) / float64(res.N)
	}
	return 1 - float64(ones)/float64(res.N)
}
