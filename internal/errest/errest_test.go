package errest

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/cell"
	"repro/internal/netlist"
	"repro/internal/sim"
)

// adder2 builds an exact 2-bit adder: s = a + b, 3 output bits.
func adder2() *netlist.Circuit {
	c := netlist.New("adder2")
	a0, a1 := c.AddInput("a0"), c.AddInput("a1")
	b0, b1 := c.AddInput("b0"), c.AddInput("b1")
	s0 := c.AddGate(cell.Xor2, a0, b0)
	c0 := c.AddGate(cell.And2, a0, b0)
	x1 := c.AddGate(cell.Xor2, a1, b1)
	s1 := c.AddGate(cell.Xor2, x1, c0)
	c1 := c.AddGate(cell.Maj3, a1, b1, c0)
	c.AddOutput("s0", s0)
	c.AddOutput("s1", s1)
	c.AddOutput("s2", c1)
	return c
}

func exhaustiveEstimator(t *testing.T, c *netlist.Circuit) *Estimator {
	t.Helper()
	v, err := sim.Exhaustive(len(c.PIs))
	if err != nil {
		t.Fatal(err)
	}
	e, err := New(c, v)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestZeroErrorOnIdenticalCircuit(t *testing.T) {
	acc := adder2()
	e := exhaustiveEstimator(t, acc)
	m, _, err := e.Evaluate(acc.Clone())
	if err != nil {
		t.Fatal(err)
	}
	if m.ER != 0 || m.NMED != 0 {
		t.Errorf("identical circuit must have zero error, got ER=%v NMED=%v", m.ER, m.NMED)
	}
	for i, p := range m.PerPO {
		if p != 0 {
			t.Errorf("PerPO[%d] = %v, want 0", i, p)
		}
	}
}

// TestERExactHandComputed checks ER against a hand-enumerated truth table:
// approximating s2 (carry-out) with constant 0 makes exactly the vectors
// with a+b >= 4 erroneous.
func TestERExactHandComputed(t *testing.T) {
	acc := adder2()
	e := exhaustiveEstimator(t, acc)

	app := acc.Clone()
	carryGate := app.Gates[app.POs[2]].Fanin[0]
	app.ReplaceFanin(carryGate, app.Const0())
	m, _, err := e.Evaluate(app)
	if err != nil {
		t.Fatal(err)
	}
	// a,b in 0..3: a+b>=4 for (1,3),(3,1),(2,2),(2,3),(3,2),(3,3) = 6/16.
	if want := 6.0 / 16.0; math.Abs(m.ER-want) > 1e-12 {
		t.Errorf("ER = %v, want %v", m.ER, want)
	}
	// Each erroneous vector loses exactly 4 (the carry bit): NMED =
	// (6*4)/7/16.
	if want := 6.0 * 4 / 7 / 16; math.Abs(m.NMED-want) > 1e-12 {
		t.Errorf("NMED = %v, want %v", m.NMED, want)
	}
	if m.PerPO[0] != 0 || m.PerPO[1] != 0 {
		t.Error("s0/s1 must be error-free")
	}
	if want := 6.0 / 16.0; math.Abs(m.PerPO[2]-want) > 1e-12 {
		t.Errorf("PerPO[2] = %v, want %v", m.PerPO[2], want)
	}
}

func TestNMEDWeighsBitSignificance(t *testing.T) {
	acc := adder2()
	e := exhaustiveEstimator(t, acc)

	// Forcing s0 to 0 flips only bit 0 (weight 1) on half the vectors.
	appLow := acc.Clone()
	s0 := appLow.Gates[appLow.POs[0]].Fanin[0]
	appLow.ReplaceFanin(s0, appLow.Const0())
	mLow, _, err := e.Evaluate(appLow)
	if err != nil {
		t.Fatal(err)
	}

	// Forcing s2 to 0 flips bit 2 (weight 4) on 6/16 vectors.
	appHigh := acc.Clone()
	s2 := appHigh.Gates[appHigh.POs[2]].Fanin[0]
	appHigh.ReplaceFanin(s2, appHigh.Const0())
	mHigh, _, err := e.Evaluate(appHigh)
	if err != nil {
		t.Fatal(err)
	}

	if mLow.ER <= mHigh.ER {
		t.Errorf("LSB cut must have higher ER: %v vs %v", mLow.ER, mHigh.ER)
	}
	if mLow.NMED >= mHigh.NMED {
		t.Errorf("MSB cut must have higher NMED: %v vs %v", mLow.NMED, mHigh.NMED)
	}
}

func TestEvaluateRejectsPOMismatch(t *testing.T) {
	acc := adder2()
	e := exhaustiveEstimator(t, acc)
	other := netlist.New("tiny")
	a := other.AddInput("a")
	other.AddInput("b")
	other.AddInput("c")
	other.AddInput("d")
	other.AddOutput("y", a)
	if _, _, err := e.Evaluate(other); err == nil {
		t.Error("Evaluate must reject PO-count mismatch")
	}
}

func TestSimilarityBounds(t *testing.T) {
	c := adder2()
	v, _ := sim.Exhaustive(4)
	res, err := sim.Run(c, v)
	if err != nil {
		t.Fatal(err)
	}
	for id := range c.Gates {
		if s := Similarity(res, id, id); s != 1 {
			t.Errorf("self-similarity of gate %d = %v, want 1", id, s)
		}
	}
	// a0 and NOT pattern: similarity of a0 with itself is 1; with b0 it
	// should be 0.5 on the exhaustive sample.
	if s := Similarity(res, c.PIs[0], c.PIs[2]); math.Abs(s-0.5) > 1e-12 {
		t.Errorf("similarity(a0,b0) = %v, want 0.5", s)
	}
}

func TestConstSimilarity(t *testing.T) {
	c := adder2()
	v, _ := sim.Exhaustive(4)
	res, err := sim.Run(c, v)
	if err != nil {
		t.Fatal(err)
	}
	// AND2(a0,b0) is 1 on 4/16 vectors.
	var andGate int = -1
	for id, g := range c.Gates {
		if g.Func == cell.And2 {
			andGate = id
			break
		}
	}
	if s := ConstSimilarity(res, andGate, false); math.Abs(s-12.0/16) > 1e-12 {
		t.Errorf("const0 similarity = %v, want 0.75", s)
	}
	if s := ConstSimilarity(res, andGate, true); math.Abs(s-4.0/16) > 1e-12 {
		t.Errorf("const1 similarity = %v, want 0.25", s)
	}
}

// TestPaperSimilarityExample reproduces Fig. 5's wire-by-constant pick: a
// gate outputting 14 cycles of '0' out of 16 has const0 similarity 0.875.
func TestPaperSimilarityExample(t *testing.T) {
	c := netlist.New("fig5")
	pis := make([]int, 4)
	for i := range pis {
		pis[i] = c.AddInput("i")
	}
	// AND of all four inputs is 1 on exactly 1/16 vectors; AND of three is
	// 2/16. Build the 2/16 case: 14 cycles of '0'.
	g1 := c.AddGate(cell.And2, pis[0], pis[1])
	g2 := c.AddGate(cell.And2, g1, pis[2])
	c.AddOutput("y", g2)
	v, _ := sim.Exhaustive(4)
	res, err := sim.Run(c, v)
	if err != nil {
		t.Fatal(err)
	}
	if s := ConstSimilarity(res, g2, false); math.Abs(s-0.875) > 1e-12 {
		t.Errorf("const0 similarity = %v, want 0.875 (paper Fig. 5)", s)
	}
}

// TestMonteCarloConvergesToExhaustive checks that sampled ER approaches
// the exact exhaustive ER within Monte-Carlo tolerance.
func TestMonteCarloConvergesToExhaustive(t *testing.T) {
	acc := adder2()
	app := acc.Clone()
	carryGate := app.Gates[app.POs[2]].Fanin[0]
	app.ReplaceFanin(carryGate, app.Const0())

	exact := exhaustiveEstimator(t, acc)
	mExact, _, err := exact.Evaluate(app)
	if err != nil {
		t.Fatal(err)
	}

	v := sim.Random(rand.New(rand.NewSource(11)), 4, 1<<16)
	sampled, err := New(acc, v)
	if err != nil {
		t.Fatal(err)
	}
	mMC, _, err := sampled.Evaluate(app)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(mMC.ER-mExact.ER) > 0.01 {
		t.Errorf("MC ER %v deviates from exact %v", mMC.ER, mExact.ER)
	}
	if math.Abs(mMC.NMED-mExact.NMED) > 0.01 {
		t.Errorf("MC NMED %v deviates from exact %v", mMC.NMED, mExact.NMED)
	}
}

func BenchmarkEvaluateAdder2(b *testing.B) {
	acc := adder2()
	v := sim.Random(rand.New(rand.NewSource(2)), 4, 1<<14)
	e, err := New(acc, v)
	if err != nil {
		b.Fatal(err)
	}
	app := acc.Clone()
	carryGate := app.Gates[app.POs[2]].Fanin[0]
	app.ReplaceFanin(carryGate, app.Const0())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := e.Evaluate(app); err != nil {
			b.Fatal(err)
		}
	}
}
