package errest

import (
	"math/rand"
	"testing"

	"repro/internal/netlist"
	"repro/internal/sim"
)

// randomLAC rewires all consumers of a random live physical gate to a
// random TFI member or constant (loop-safe by construction).
func randomLAC(c *netlist.Circuit, rng *rand.Rand) {
	live := c.Live()
	var phys []int
	for id, g := range c.Gates {
		if live[id] && !g.Func.IsPseudo() {
			phys = append(phys, id)
		}
	}
	if len(phys) == 0 {
		return
	}
	target := phys[rng.Intn(len(phys))]
	tfi := c.TFI(target)
	var cands []int
	for id := range c.Gates {
		if tfi[id] && id != target && !c.Gates[id].Func.IsPseudo() {
			cands = append(cands, id)
		}
	}
	if len(cands) == 0 || rng.Intn(4) == 0 {
		if rng.Intn(2) == 0 {
			c.ReplaceFanin(target, c.Const0())
		} else {
			c.ReplaceFanin(target, c.Const1())
		}
		return
	}
	c.ReplaceFanin(target, cands[rng.Intn(len(cands))])
}

// metricsEqual requires bit-identical float64s — the incremental path
// promises exactness, not approximation.
func metricsEqual(t *testing.T, what string, a, b Metrics) {
	t.Helper()
	if a.ER != b.ER {
		t.Fatalf("%s: ER %v != %v", what, a.ER, b.ER)
	}
	if a.NMED != b.NMED {
		t.Fatalf("%s: NMED %v != %v", what, a.NMED, b.NMED)
	}
	if len(a.PerPO) != len(b.PerPO) {
		t.Fatalf("%s: PerPO lengths %d != %d", what, len(a.PerPO), len(b.PerPO))
	}
	for i := range a.PerPO {
		if a.PerPO[i] != b.PerPO[i] {
			t.Fatalf("%s: PerPO[%d] %v != %v", what, i, a.PerPO[i], b.PerPO[i])
		}
	}
}

// TestMetricsDeltaMatchesFull asserts bit-identical ER/NMED/PerPO between
// the touched-PO incremental scan and the full scan, across randomized
// LAC sets, with both an exact touched oracle (the incremental simulator)
// and a maximally conservative one (everything touched). The vector count
// is deliberately not a multiple of 64 to cover the tail mask.
func TestMetricsDeltaMatchesFull(t *testing.T) {
	for _, n := range []int{64, 100, 1000} {
		base := adder2().Clone()
		base.Const0()
		base.Const1()
		rng := rand.New(rand.NewSource(int64(n)))
		v := sim.Random(rng, len(base.PIs), n)
		est, err := New(base, v)
		if err != nil {
			t.Fatal(err)
		}
		simr, err := sim.NewSimulator(base, v, est.GoldenResult())
		if err != nil {
			t.Fatal(err)
		}
		for trial := 0; trial < 40; trial++ {
			cand := base.Clone()
			for k := rng.Intn(3) + 1; k > 0; k-- {
				randomLAC(cand, rng)
			}
			full, _, err := est.Evaluate(cand)
			if err != nil {
				t.Fatal(err)
			}
			res, err := simr.Simulate(cand)
			if err != nil {
				t.Fatal(err)
			}
			delta, err := est.MetricsDelta(cand, res, simr.SignalDiffers)
			if err != nil {
				t.Fatal(err)
			}
			metricsEqual(t, "exact oracle", delta, full)
			conservative, err := est.MetricsDelta(cand, res, func(int) bool { return true })
			if err != nil {
				t.Fatal(err)
			}
			metricsEqual(t, "all-touched oracle", conservative, full)
		}
	}
}

// TestMetricsDeltaUntouched asserts the zero-cost path: a candidate whose
// cone diff reaches no PO must produce exactly zero error.
func TestMetricsDeltaUntouched(t *testing.T) {
	base := adder2().Clone()
	base.Const0()
	base.Const1()
	v := sim.Random(rand.New(rand.NewSource(1)), len(base.PIs), 256)
	est, err := New(base, v)
	if err != nil {
		t.Fatal(err)
	}
	simr, err := sim.NewSimulator(base, v, est.GoldenResult())
	if err != nil {
		t.Fatal(err)
	}
	cand := base.Clone() // identical candidate
	res, err := simr.Simulate(cand)
	if err != nil {
		t.Fatal(err)
	}
	m, err := est.MetricsDelta(cand, res, simr.SignalDiffers)
	if err != nil {
		t.Fatal(err)
	}
	if m.ER != 0 || m.NMED != 0 {
		t.Fatalf("identity candidate must have zero error, got ER=%v NMED=%v", m.ER, m.NMED)
	}
	for i, p := range m.PerPO {
		if p != 0 {
			t.Fatalf("PerPO[%d] = %v, want 0", i, p)
		}
	}
}
