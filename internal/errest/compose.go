// Delta composition: per-change PO-level error deltas and their exact
// recombination into whole-candidate metrics.
//
// A PODelta captures everything one localized change contributes to the
// error metrics: which POs its cone touched, the per-PO XOR waveforms
// against the golden outputs, and the precomputed ER/NMED partial sums.
// When a multi-change candidate's changes have provably disjoint fanout
// cones, each PO is touched by at most one change, so the candidate's
// metrics are recombined from the per-change deltas without re-simulating
// or re-scanning anything:
//
//   - PerPO scatters directly (PO sets are disjoint).
//   - ER counts the popcount of the OR of the per-delta any-diff masks.
//   - NMED sums the per-delta error-distance sums, then corrects the
//     vectors where two or more deltas fire at once: the combined error
//     distance is |Σ d_u|, not Σ |d_u|.
//
// All quantities involved are integers below 2^53 whenever ComposeOK
// reports true, so every float64 partial sum is exact and the recombined
// metrics are bit-identical to MetricsDelta on a full incremental
// simulation of the candidate — the invariant the evaluation cache's
// exactness tests pin down.
package errest

import (
	"fmt"
	"math"
	"math/bits"

	"repro/internal/netlist"
	"repro/internal/sim"
)

// PODelta is the PO-level error delta of one localized change (or one
// merged component of overlapping changes), extracted from an overlay
// simulation. It is immutable after construction and safe to share across
// evaluation workers.
type PODelta struct {
	// POIdx lists the touched PO port indices in ascending order — the POs
	// whose waveform the change altered.
	POIdx []int
	// Xor holds, per touched PO, the XOR of the approximate and golden
	// waveforms (one row per POIdx entry, backed by a single array).
	Xor [][]uint64
	// Counts holds, per touched PO, the number of differing vectors.
	Counts []int
	// AnyDiff is the word-wise OR of the Xor rows: set bits mark vectors
	// where this change flips at least one PO.
	AnyDiff []uint64
	// ERCount is the popcount of AnyDiff.
	ERCount int
	// SumED is the sum over differing vectors of |Vori - Vapp| restricted
	// to the touched POs — an exact integer below 2^53 when ComposeOK
	// holds.
	SumED float64
}

// MemBytes approximates the delta's memory footprint for cache accounting.
func (d *PODelta) MemBytes() int {
	words := 0
	for _, row := range d.Xor {
		words += len(row)
	}
	return 8*(words+len(d.AnyDiff)) + 16*len(d.POIdx) + 64
}

// ComposeOK reports whether per-change deltas can be recombined exactly:
// every per-vector error distance and every partial sum must be an integer
// that float64 represents exactly. Beyond 53 POs a single error distance
// already rounds; beyond n·(2^nPO-1) ≥ 2^53 the accumulated sum could
// round differently than the full scan's accumulation order. Callers fall
// back to full incremental simulation when this is false.
func (e *Estimator) ComposeOK() bool {
	const maxExact = float64(1 << 53)
	return e.nPO <= 53 && float64(e.vectors.N)*e.norm < maxExact
}

// ExtractPODelta builds the PO-level delta of one overlay simulation:
// res must come from (*sim.Simulator).OverlayRun (or IncrementalRun) of a
// single change unit, and touched must be the simulator's SignalDiffers.
// The returned delta owns its storage — it stays valid after the simulator
// arena is reused.
func (e *Estimator) ExtractPODelta(app *netlist.Circuit, res *sim.Result, touched func(gateID int) bool) (*PODelta, error) {
	if len(app.POs) != e.nPO {
		return nil, fmt.Errorf("errest: circuit %q has %d POs, accurate has %d", app.Name, len(app.POs), e.nPO)
	}
	d := &PODelta{}
	for i, po := range app.POs {
		if touched(po) {
			d.POIdx = append(d.POIdx, i)
		}
	}
	if len(d.POIdx) == 0 {
		return d, nil // the change simplified away: bit-identical outputs
	}
	words := e.vectors.Words()
	appPO := sim.POSignals(app, res)
	backing := make([]uint64, (len(d.POIdx)+1)*words)
	d.AnyDiff = backing[len(d.POIdx)*words:]
	d.Xor = make([][]uint64, len(d.POIdx))
	d.Counts = make([]int, len(d.POIdx))
	for j, i := range d.POIdx {
		row := backing[j*words : (j+1)*words]
		count := 0
		for w := 0; w < words; w++ {
			x := appPO[i][w] ^ e.goldenPO[i][w]
			row[w] = x
			d.AnyDiff[w] |= x
			count += bits.OnesCount64(x)
		}
		d.Xor[j] = row
		d.Counts[j] = count
	}
	// ER and NMED partial sums, in the same per-word, per-bit order the
	// full MetricsDelta scan uses, so the integers agree term by term.
	for w := 0; w < words; w++ {
		any := d.AnyDiff[w]
		if any == 0 {
			continue
		}
		d.ERCount += bits.OnesCount64(any)
		for rest := any; rest != 0; rest &= rest - 1 {
			b := uint(bits.TrailingZeros64(rest))
			d.SumED += math.Abs(d.vectorED(e, w, b))
		}
	}
	return d, nil
}

// vectorED returns the signed error distance Vori - Vapp this delta
// contributes at bit b of word w, restricted to its touched POs — an exact
// integer with |d| ≤ 2^nPO - 1.
func (d *PODelta) vectorED(e *Estimator, w int, b uint) float64 {
	v := 0.0
	for j, i := range d.POIdx {
		if d.Xor[j][w]>>b&1 == 0 {
			continue
		}
		// The bit differs: golden 1 means the approximation lost 2^i,
		// golden 0 means it gained 2^i.
		if e.goldenPO[i][w]>>b&1 == 1 {
			v += e.pow2[i]
		} else {
			v -= e.pow2[i]
		}
	}
	return v
}

// ComposeMetrics recombines the metrics of a candidate whose changes have
// pairwise-disjoint fanout cones from their cached per-change deltas. The
// units must touch pairwise-disjoint PO sets (guaranteed by cone
// disjointness) and the caller must have checked ComposeOK; the result is
// then bit-identical to MetricsDelta on a full incremental simulation of
// the candidate.
func ComposeMetrics(e *Estimator, units []*PODelta) Metrics {
	n := e.vectors.N
	words := e.vectors.Words()
	perPO := make([]float64, e.nPO)
	m := Metrics{PerPO: perPO}
	sumED := 0.0
	for _, u := range units {
		for j, i := range u.POIdx {
			perPO[i] = float64(u.Counts[j]) / float64(n)
		}
		sumED += u.SumED
	}
	erCount := 0
	for w := 0; w < words; w++ {
		var cum, coll uint64
		for _, u := range units {
			if u.AnyDiff == nil {
				continue
			}
			x := u.AnyDiff[w]
			coll |= cum & x
			cum |= x
		}
		if cum != 0 {
			erCount += bits.OnesCount64(cum)
		}
		// Vectors where two or more units fire: the combined error
		// distance is |Σ d_u| over disjoint PO sets, so replace the
		// independently accumulated Σ |d_u| for exactly those vectors.
		for rest := coll; rest != 0; rest &= rest - 1 {
			b := uint(bits.TrailingZeros64(rest))
			dTot, absSum := 0.0, 0.0
			for _, u := range units {
				if u.AnyDiff == nil || u.AnyDiff[w]>>b&1 == 0 {
					continue
				}
				d := u.vectorED(e, w, b)
				dTot += d
				absSum += math.Abs(d)
			}
			sumED += math.Abs(dTot) - absSum
		}
	}
	m.ER = float64(erCount) / float64(n)
	m.NMED = sumED / e.norm / float64(n)
	return m
}
