package exp

import (
	"testing"

	als "repro"
	"repro/internal/core"
	"repro/internal/gen"
)

func TestOptsDefaults(t *testing.T) {
	var o Opts
	if got := o.methods(); len(got) != 5 {
		t.Errorf("default methods = %d, want all 5", len(got))
	}
	if o.seed() != 1 {
		t.Error("default seed must be 1")
	}
	j := o.cellJob("c880", als.MethodDCGWO, core.MetricER, 0.05)
	if j.Budget != 0.05 || j.Metric != core.MetricER.String() {
		t.Error("cellJob must forward the constraint")
	}
	if j.Seed != 1 || j.Scale != "quick" {
		t.Errorf("cellJob defaults lost: %+v", j)
	}
}

func TestOptsCircuitFiltering(t *testing.T) {
	o := Opts{Circuits: []string{"Max16", "c880", "nonexistent"}}
	rc := o.circuitSet(gen.RandomControl)
	if len(rc) != 1 || rc[0] != "c880" {
		t.Errorf("random/control subset = %v, want [c880]", rc)
	}
	arith := o.circuitSet(gen.Arithmetic)
	if len(arith) != 1 || arith[0] != "Max16" {
		t.Errorf("arithmetic subset = %v, want [Max16]", arith)
	}
	// nil filter keeps the full TABLE I sets.
	full := Opts{}
	if len(full.circuitSet(gen.RandomControl)) != 7 || len(full.circuitSet(gen.Arithmetic)) != 8 {
		t.Error("nil filter must keep all circuits")
	}
}

func TestOptsOverridesReachJob(t *testing.T) {
	o := Opts{Population: 6, Iterations: 3, Vectors: 512, Seed: 9}
	j := o.cellJob("Max16", als.MethodHEDALS, core.MetricNMED, 0.01)
	if j.Population != 6 || j.Iterations != 3 || j.Vectors != 512 || j.Seed != 9 {
		t.Errorf("overrides lost: %+v", j)
	}
}

func TestFig7MethodsOrder(t *testing.T) {
	m := Fig7Methods()
	if len(m) != 3 || m[2] != als.MethodDCGWO {
		t.Error("Fig. 7 plots HEDALS, GWO, Ours")
	}
}

func TestConstraintGrids(t *testing.T) {
	if len(ERConstraints) != 5 || ERConstraints[4] != 0.05 {
		t.Error("ER grid must end at the TABLE II setting")
	}
	if len(NMEDConstraints) != 5 || NMEDConstraints[4] != 0.0244 {
		t.Error("NMED grid must end at the TABLE III setting")
	}
	if len(AreaRatios) != 5 || AreaRatios[0] != 0.8 || AreaRatios[4] != 1.2 {
		t.Error("area grid must span 0.8-1.2")
	}
	if len(Fig6Weights) != 6 {
		t.Error("Fig. 6 sweeps six weights")
	}
}

func TestRenderSweepEmpty(t *testing.T) {
	if got := RenderSweep("t", "x", nil); got == "" {
		t.Error("empty sweep must still render a header")
	}
}
