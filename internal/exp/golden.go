package exp

import (
	"encoding/json"
	"fmt"
	"os"
	"strings"

	als "repro"
	"repro/internal/core"
)

// GoldenRecipe is the command that regenerates the committed golden file
// after an intentional metrics change.
const GoldenRecipe = "go run ./cmd/experiments -update-golden testdata/golden_quick.json"

// GoldenCell pins one job's deterministic metrics. Runtime is deliberately
// absent: the golden gate compares only quantities that are bit-exact at a
// given job spec.
type GoldenCell struct {
	Job         Job     `json:"job"`
	RatioCPD    float64 `json:"ratio_cpd"`
	Err         float64 `json:"err"`
	Evaluations int     `json:"evaluations"`
}

// Golden is the committed golden-metrics regression reference: a set of
// quick-scale cells whose RatioCPD/Err/Evaluations must match a fresh run
// exactly (the determinism PR 1 guarantees).
type Golden struct {
	// Recipe documents how to regenerate this file (see GoldenRecipe).
	Recipe string       `json:"_recipe"`
	Cells  []GoldenCell `json:"cells"`
}

// GoldenJobs is the quick-scale regression suite: the smallest circuit of
// each kind class (c880 under the TABLE II ER setting; Adder16 and Max16
// under the TABLE III NMED setting) across all five methods — 15 cells,
// seconds of CI time, every optimizer exercised.
func GoldenJobs(seed int64) []Job {
	opts := Opts{Scale: als.ScaleQuick, Seed: seed}
	var jobs []Job
	for _, m := range als.AllMethods() {
		jobs = append(jobs, opts.cellJob("c880", m, core.MetricER, 0.05))
	}
	for _, circuit := range []string{"Adder16", "Max16"} {
		for _, m := range als.AllMethods() {
			jobs = append(jobs, opts.cellJob(circuit, m, core.MetricNMED, 0.0244))
		}
	}
	return jobs
}

// NewGolden assembles a golden reference from computed results, in job
// order.
func NewGolden(jobs []Job, rs ResultSet) (*Golden, error) {
	g := &Golden{Recipe: GoldenRecipe}
	for _, j := range jobs {
		r, err := rs.get(j)
		if err != nil {
			return nil, err
		}
		g.Cells = append(g.Cells, GoldenCell{Job: j, RatioCPD: r.RatioCPD, Err: r.Err, Evaluations: r.Evaluations})
	}
	return g, nil
}

// Jobs lists the golden file's job specs — what -check re-runs.
func (g *Golden) Jobs() []Job {
	jobs := make([]Job, len(g.Cells))
	for i, c := range g.Cells {
		jobs[i] = c.Job
	}
	return jobs
}

// FieldDiff is one mismatching metric of a golden cell, pre-rendered for
// reporting.
type FieldDiff struct {
	Field string
	Got   string
	Want  string
}

// CellDiff collects every mismatching field of one golden cell, so a
// single gate run reports the complete blast radius of a metrics change
// instead of one discrepancy at a time. Missing marks a cell the fresh
// run produced no result for.
type CellDiff struct {
	Job     Job
	Missing bool
	Fields  []FieldDiff
}

// String flattens the diff to one line (tests and logs; checkGolden
// renders the multi-line form).
func (d CellDiff) String() string {
	if d.Missing {
		return fmt.Sprintf("%s: missing result", d.Job)
	}
	parts := make([]string, len(d.Fields))
	for i, f := range d.Fields {
		parts[i] = fmt.Sprintf("%s got %s want %s", f.Field, f.Got, f.Want)
	}
	return fmt.Sprintf("%s: %s", d.Job, strings.Join(parts, "; "))
}

// DiffGolden compares fresh results against the golden reference with
// exact equality on RatioCPD, Err and Evaluations. It returns one entry
// per mismatching (or missing) cell — never stopping at the first — in
// golden-file order, each carrying a got/want pair per differing field.
// An empty slice means the gate passes.
func DiffGolden(g *Golden, rs ResultSet) []CellDiff {
	var diffs []CellDiff
	for _, c := range g.Cells {
		r, err := rs.get(c.Job)
		if err != nil {
			diffs = append(diffs, CellDiff{Job: c.Job, Missing: true})
			continue
		}
		var fields []FieldDiff
		if r.RatioCPD != c.RatioCPD {
			fields = append(fields, FieldDiff{"RatioCPD", fmt.Sprintf("%v", r.RatioCPD), fmt.Sprintf("%v", c.RatioCPD)})
		}
		if r.Err != c.Err {
			fields = append(fields, FieldDiff{"Err", fmt.Sprintf("%v", r.Err), fmt.Sprintf("%v", c.Err)})
		}
		if r.Evaluations != c.Evaluations {
			fields = append(fields, FieldDiff{"Evaluations", fmt.Sprintf("%d", r.Evaluations), fmt.Sprintf("%d", c.Evaluations)})
		}
		if len(fields) > 0 {
			diffs = append(diffs, CellDiff{Job: c.Job, Fields: fields})
		}
	}
	return diffs
}

// LoadGolden reads a golden reference file.
func LoadGolden(path string) (*Golden, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("exp: golden: %w", err)
	}
	var g Golden
	if err := json.Unmarshal(raw, &g); err != nil {
		return nil, fmt.Errorf("exp: golden %s: %w", path, err)
	}
	if len(g.Cells) == 0 {
		return nil, fmt.Errorf("exp: golden %s: no cells", path)
	}
	return &g, nil
}

// WriteGolden writes a golden reference file (indented, trailing newline,
// recipe header first).
func WriteGolden(path string, g *Golden) error {
	raw, err := json.MarshalIndent(g, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(raw, '\n'), 0o644)
}
