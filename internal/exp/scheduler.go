package exp

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	als "repro"
	"repro/internal/core"
	"repro/internal/store"
)

// ResultSet maps job content hashes to results. Assemblers look cells up
// by recomputing the job's hash, so a ResultSet can come from a live run,
// a persisted store, or any mix of the two.
type ResultSet map[string]JobResult

// get resolves one job's result, naming the job when it is missing.
func (rs ResultSet) get(j Job) (JobResult, error) {
	h, err := j.Hash()
	if err != nil {
		return JobResult{}, err
	}
	r, ok := rs[h]
	if !ok {
		return JobResult{}, fmt.Errorf("exp: no result for job %s (hash %.12s…)", j, h)
	}
	return r, nil
}

// Add records a computed result under the job's hash.
func (rs ResultSet) Add(j Job, r JobResult) error {
	h, err := j.Hash()
	if err != nil {
		return err
	}
	rs[h] = r
	return nil
}

// RunStats summarizes one scheduler invocation.
type RunStats struct {
	// Executed counts jobs actually computed by this run.
	Executed int
	// Cached counts jobs served from the persistent store.
	Cached int
	// Deduped counts job-list entries that shared a hash with an earlier
	// entry (identical cells referenced by several experiments).
	Deduped int
}

// RunJobs executes a job list on a bounded worker pool and returns the
// results keyed by job hash.
//
// The list is first deduplicated by content hash; then, if st is non-nil,
// finished cells are loaded from the store and skipped. Remaining jobs run
// on min(workers, pending) goroutines (workers <= 0 means GOMAXPROCS) via
// core.ParallelFor, and each result is flushed to the store the moment its
// job finishes — so a killed run loses at most in-flight cells and a
// -resume re-invocation completes from cache. Every job is deterministic
// at its spec (PR 1's exactness guarantee), so the ResultSet — and any
// rendering derived from it — is byte-identical for any worker count.
func RunJobs(jobs []Job, workers int, st *store.Store) (ResultSet, RunStats, error) {
	return RunJobsContext(context.Background(), jobs, workers, st)
}

// PendingJobs deduplicates a job list by canonical content hash and, when
// st is non-nil, strips cells whose results are already persisted, loading
// those into rs. It returns the jobs still to be computed alongside their
// hashes (parallel slices) and the Cached/Deduped counts — the shared
// prelude of the local scheduler and the distributed coordinator
// (internal/dispatch), which differ only in where the pending cells run.
func PendingJobs(jobs []Job, st *store.Store, rs ResultSet) (pending []Job, hashes []string, stats RunStats, err error) {
	seen := map[string]bool{}
	for _, j := range jobs {
		h, err := j.Hash()
		if err != nil {
			return nil, nil, stats, err
		}
		if seen[h] {
			stats.Deduped++
			continue
		}
		seen[h] = true
		if st != nil {
			var r JobResult
			ok, err := st.Decode(h, &r)
			if err != nil {
				return nil, nil, stats, err
			}
			if ok {
				rs[h] = r
				stats.Cached++
				continue
			}
		}
		pending = append(pending, j)
		hashes = append(hashes, h)
	}
	return pending, hashes, stats, nil
}

// RunJobsContext is RunJobs with cooperative cancellation: the context is
// checked before each job is claimed and once per optimizer iteration
// inside each running flow. Because every finished cell is flushed to the
// store the moment it completes, a cancelled invocation loses only
// in-flight cells — a re-run with the same store resumes from the last
// flushed cell. The returned error wraps ctx.Err() when the run was
// cancelled.
func RunJobsContext(ctx context.Context, jobs []Job, workers int, st *store.Store) (ResultSet, RunStats, error) {
	rs := ResultSet{}
	pending, hashes, stats, err := PendingJobs(jobs, st, rs)
	if err != nil {
		return nil, stats, err
	}

	// Split the machine between the job pool and each flow's internal
	// evaluation pool: with W concurrent cells, each flow gets
	// GOMAXPROCS/W evaluation workers, so total parallelism stays
	// GOMAXPROCS-bounded instead of multiplying. A serial job run keeps
	// the full inner pool (evalWorkers 0 = GOMAXPROCS).
	jobWorkers := workers
	if jobWorkers <= 0 {
		jobWorkers = runtime.GOMAXPROCS(0)
	}
	if jobWorkers > len(pending) {
		jobWorkers = len(pending)
	}
	evalWorkers := 0
	if jobWorkers > 1 {
		evalWorkers = runtime.GOMAXPROCS(0) / jobWorkers
		if evalWorkers < 1 {
			evalWorkers = 1
		}
	}

	var (
		mu       sync.Mutex
		executed atomic.Int64
	)
	lib := als.NewLibrary()
	err = core.ParallelFor(len(pending), jobWorkers, func(_, i int) error {
		if err := ctx.Err(); err != nil {
			return fmt.Errorf("exp: run cancelled: %w", err)
		}
		r, err := pending[i].RunContext(ctx, lib, evalWorkers)
		if err != nil {
			return err
		}
		executed.Add(1)
		if st != nil {
			if err := st.Put(hashes[i], r); err != nil {
				return err
			}
		}
		mu.Lock()
		rs[hashes[i]] = r
		mu.Unlock()
		return nil
	})
	stats.Executed = int(executed.Load())
	if err != nil {
		return nil, stats, err
	}
	return rs, stats, nil
}
