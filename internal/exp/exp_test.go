package exp

import (
	"strings"
	"testing"

	als "repro"
)

// tinyOpts keeps experiment tests to a couple of small circuits.
func tinyOpts() Opts {
	return Opts{
		Circuits:   []string{"c880", "Max16"},
		Methods:    []als.Method{als.MethodDCGWO, als.MethodHEDALS},
		Seed:       3,
		Population: 6,
		Iterations: 4,
		Vectors:    1024,
	}
}

func TestTable1AllRows(t *testing.T) {
	rows, err := Table1()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 15 {
		t.Fatalf("TABLE I has %d rows, want 15", len(rows))
	}
	for _, r := range rows {
		if r.Gates <= 0 || r.CPDOri <= 0 || r.AreaOri <= 0 {
			t.Errorf("%s: non-positive stats %+v", r.Circuit, r)
		}
	}
	text := RenderTable1(rows)
	for _, want := range []string{"Cavlc", "Sqrt", "CPDori"} {
		if !strings.Contains(text, want) {
			t.Errorf("rendered TABLE I missing %q", want)
		}
	}
}

func TestTable2Subset(t *testing.T) {
	tab, err := Table2(tinyOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 1 || tab.Rows[0].Circuit != "c880" {
		t.Fatalf("expected only c880 in the random/control subset, got %+v", tab.Rows)
	}
	for _, m := range tab.Methods {
		cell := tab.Rows[0].Cells[m]
		if cell.RatioCPD <= 0 || cell.RatioCPD > 1.5 {
			t.Errorf("%v: implausible Ratiocpd %v", m, cell.RatioCPD)
		}
		if cell.Err > 0.05 {
			t.Errorf("%v: error %v exceeds the 5%% ER budget", m, cell.Err)
		}
		if tab.Avg[m] != cell.RatioCPD {
			t.Errorf("single-row average must equal the cell")
		}
	}
	if !strings.Contains(RenderCompare(tab), "c880") {
		t.Error("rendered table missing circuit")
	}
}

func TestTable3Subset(t *testing.T) {
	tab, err := Table3(tinyOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 1 || tab.Rows[0].Circuit != "Max16" {
		t.Fatalf("expected only Max16 in the arithmetic subset, got %+v", tab.Rows)
	}
	for _, m := range tab.Methods {
		if tab.Rows[0].Cells[m].Err > 0.0244 {
			t.Errorf("%v: NMED budget violated", m)
		}
	}
}

func TestFig7Sweep(t *testing.T) {
	opts := tinyOpts()
	opts.Methods = []als.Method{als.MethodHEDALS}
	er, nmed, err := Fig7(opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(er) != 1 || len(nmed) != 1 {
		t.Fatal("one series per method expected")
	}
	if len(er[0].Ratio) != len(ERConstraints) {
		t.Error("ER sweep must cover all constraint points")
	}
	// Looser constraints can only help (within stochastic noise the
	// greedy HEDALS is monotone because a looser budget admits a
	// superset of moves). Allow small tolerance.
	r := er[0].Ratio
	if r[len(r)-1] > r[0]+0.05 {
		t.Errorf("loosest ER should not be clearly worse than tightest: %v", r)
	}
	if !strings.Contains(RenderSweep("Fig7a", "ER", er), "HEDALS") {
		t.Error("rendered sweep missing method")
	}
}

func TestFig8Sweep(t *testing.T) {
	opts := tinyOpts()
	opts.Methods = []als.Method{als.MethodDCGWO}
	er, nmed, err := Fig8(opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(er[0].Ratio) != len(AreaRatios) || len(nmed[0].Ratio) != len(AreaRatios) {
		t.Fatal("area sweep must cover all ratio points")
	}
	// More area headroom can only help the sizing step.
	r := er[0].Ratio
	if r[len(r)-1] > r[0]+0.05 {
		t.Errorf("1.2x area budget should not be clearly worse than 0.8x: %v", r)
	}
}

func TestFig6SmallSweep(t *testing.T) {
	opts := tinyOpts()
	series, err := Fig6(opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != 4 {
		t.Fatalf("Fig. 6 has %d curves, want 4 (ER/NMED x tight/loose)", len(series))
	}
	for _, s := range series {
		if len(s.Ratio) != len(Fig6Weights) {
			t.Errorf("%s: %d points, want %d", s.Label, len(s.Ratio), len(Fig6Weights))
		}
		for _, r := range s.Ratio {
			if r <= 0 || r > 1.5 {
				t.Errorf("%s: implausible ratio %v", s.Label, r)
			}
		}
	}
	if !strings.Contains(RenderWeights(series), "NMED 2.44%") {
		t.Error("rendered Fig. 6 missing series label")
	}
}

func TestPaperReferenceTables(t *testing.T) {
	if len(PaperTable2) != 7 || len(PaperTable3) != 8 {
		t.Fatal("paper reference tables must cover every circuit row")
	}
	for name, row := range PaperTable2 {
		if len(row) != 5 {
			t.Errorf("%s: %d methods, want 5", name, len(row))
		}
	}
	avg := PaperAverages(PaperTable2)
	// The paper reports 0.7287 average for Ours in TABLE II.
	if got := avg["Ours"]; got < 0.7286 || got > 0.7288 {
		t.Errorf("paper TABLE II average for Ours = %v, want ~0.7287", got)
	}
	avg3 := PaperAverages(PaperTable3)
	if got := avg3["Ours"]; got < 0.6145 || got > 0.6147 {
		t.Errorf("paper TABLE III average for Ours = %v, want ~0.6146", got)
	}
	// Paper headline: ours beats every baseline on average in both tables.
	for _, m := range []string{"VECBEE-S", "VaACS", "HEDALS", "GWO (single-chase)"} {
		if avg["Ours"] >= avg[m] {
			t.Errorf("TABLE II: paper's Ours (%v) must beat %s (%v)", avg["Ours"], m, avg[m])
		}
		if avg3["Ours"] >= avg3[m] {
			t.Errorf("TABLE III: paper's Ours (%v) must beat %s (%v)", avg3["Ours"], m, avg3[m])
		}
	}
}
