package exp

import (
	"context"
	"errors"
	"path/filepath"
	"strings"
	"testing"

	als "repro"
	"repro/internal/store"
)

// matrixOpts is a two-circuit (c880 × Max16), two-method matrix small
// enough for CI but covering both metrics.
func matrixOpts() Opts {
	return Opts{
		Circuits:   []string{"c880", "Max16"},
		Methods:    []als.Method{als.MethodDCGWO, als.MethodHEDALS},
		Seed:       3,
		Population: 6,
		Iterations: 3,
		Vectors:    512,
	}
}

func matrixJobs(t *testing.T, opts Opts) []Job {
	t.Helper()
	jobs := append(Table2Jobs(opts), Table3Jobs(opts)...)
	if len(jobs) != 4 {
		t.Fatalf("two-circuit matrix has %d jobs, want 4 (1 circuit × 2 methods per table)", len(jobs))
	}
	return jobs
}

// renderAll renders the matrix's experiments in every machine format so a
// byte comparison covers assembly and rendering, not just raw results.
func renderAll(t *testing.T, opts Opts, rs ResultSet) string {
	t.Helper()
	var out string
	for _, name := range []string{"table2", "table3"} {
		doc, err := JSONReport(name, opts, rs)
		if err != nil {
			t.Fatal(err)
		}
		j, err := MarshalReport(doc)
		if err != nil {
			t.Fatal(err)
		}
		c, err := CSVReport(name, opts, rs)
		if err != nil {
			t.Fatal(err)
		}
		out += j + c
	}
	return out
}

func TestSchedulerOutputIdenticalAcrossWorkerCounts(t *testing.T) {
	opts := matrixOpts()
	jobs := matrixJobs(t, opts)

	rs1, stats1, err := RunJobs(jobs, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	rs8, stats8, err := RunJobs(jobs, 8, nil)
	if err != nil {
		t.Fatal(err)
	}
	if stats1.Executed != len(jobs) || stats8.Executed != len(jobs) {
		t.Fatalf("executed %d/%d jobs, want %d each", stats1.Executed, stats8.Executed, len(jobs))
	}
	if len(rs1) != len(rs8) {
		t.Fatalf("result-set sizes differ: %d vs %d", len(rs1), len(rs8))
	}
	for h, r1 := range rs1 {
		r8, ok := rs8[h]
		if !ok {
			t.Fatalf("hash %.12s… missing from 8-worker run", h)
		}
		if r1.RatioCPD != r8.RatioCPD || r1.Err != r8.Err || r1.Evaluations != r8.Evaluations {
			t.Fatalf("hash %.12s…: serial %+v vs parallel %+v", h, r1, r8)
		}
	}
	if out1, out8 := renderAll(t, opts, rs1), renderAll(t, opts, rs8); out1 != out8 {
		t.Fatalf("rendered output differs between -jobs 1 and -jobs 8:\n--- jobs=1 ---\n%s\n--- jobs=8 ---\n%s", out1, out8)
	}
}

func TestSchedulerResumeSkipsFinishedJobs(t *testing.T) {
	opts := matrixOpts()
	jobs := matrixJobs(t, opts)
	path := filepath.Join(t.TempDir(), "results.jsonl")

	// "Killed" first run: only half the matrix got computed and persisted.
	st, err := store.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	rsPartial, stats, err := RunJobs(jobs[:2], 2, st)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Executed != 2 || stats.Cached != 0 {
		t.Fatalf("partial run stats %+v, want 2 executed / 0 cached", stats)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	// Re-invocation with -resume semantics: the finished cells come from
	// the store; only the remaining cells execute.
	st2, err := store.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	rs, stats2, err := RunJobs(jobs, 2, st2)
	if err != nil {
		t.Fatal(err)
	}
	if stats2.Cached != 2 {
		t.Fatalf("resume served %d cells from cache, want 2", stats2.Cached)
	}
	if stats2.Executed != len(jobs)-2 {
		t.Fatalf("resume executed %d jobs, want %d", stats2.Executed, len(jobs)-2)
	}
	// Cached results must be the ones computed before the "kill".
	for h, r := range rsPartial {
		if got := rs[h]; got != r {
			t.Fatalf("cached cell %.12s… changed across resume: %+v vs %+v", h, got, r)
		}
	}
	// A third invocation is a full cache hit.
	_, stats3, err := RunJobs(jobs, 2, st2)
	if err != nil {
		t.Fatal(err)
	}
	if stats3.Executed != 0 || stats3.Cached != len(jobs) {
		t.Fatalf("fully-cached run stats %+v, want 0 executed / %d cached", stats3, len(jobs))
	}
}

func TestSchedulerDeduplicatesSharedCells(t *testing.T) {
	opts := matrixOpts()
	jobs := matrixJobs(t, opts)
	// TABLE II cells are exactly the loosest Fig. 7(a) points for shared
	// methods; here just duplicate the list wholesale.
	doubled := append(append([]Job(nil), jobs...), jobs...)
	rs, stats, err := RunJobs(doubled, 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Deduped != len(jobs) {
		t.Fatalf("deduped %d, want %d", stats.Deduped, len(jobs))
	}
	if stats.Executed != len(jobs) {
		t.Fatalf("executed %d, want %d", stats.Executed, len(jobs))
	}
	if len(rs) != len(jobs) {
		t.Fatalf("result set has %d entries, want %d", len(rs), len(jobs))
	}
}

func TestJobHashIndependentOfFieldKnowledge(t *testing.T) {
	opts := matrixOpts()
	j := opts.cellJob("c880", als.MethodDCGWO, als.MetricER, 0.05)
	h1, err := j.Hash()
	if err != nil {
		t.Fatal(err)
	}
	// Same logical job built in a different order must hash identically…
	j2 := Job{Seed: 3, Scale: "quick", Budget: 0.05, Metric: "ER", Method: "Ours", Circuit: "c880",
		Population: 6, Iterations: 3, Vectors: 512}
	h2, err := j2.Hash()
	if err != nil {
		t.Fatal(err)
	}
	if h1 != h2 {
		t.Fatal("equivalent jobs hash differently")
	}
	// …and any parameter change must change the hash.
	j3 := j
	j3.Seed = 4
	h3, err := j3.Hash()
	if err != nil {
		t.Fatal(err)
	}
	if h3 == h1 {
		t.Fatal("seed change did not change the hash")
	}
}

func TestDefaultEquivalentJobsShareHashes(t *testing.T) {
	base := Opts{}.cellJob("c880", als.MethodDCGWO, als.MetricER, 0.05)
	hBase, err := base.Hash()
	if err != nil {
		t.Fatal(err)
	}
	// Fig. 8's ratio-1.0 point and Fig. 6's wd-0.8 point recompute exactly
	// the TABLE II cell (FlowConfig.resolve maps 0 to those defaults), so
	// they must share its hash — one flow, one cache entry.
	fig8 := base
	fig8.AreaConRatio = 1.0
	if h, err := fig8.Hash(); err != nil || h != hBase {
		t.Fatalf("AreaConRatio 1.0 must hash as the default: %v %v", h, err)
	}
	fig6 := base
	fig6.DepthWeight = 0.8
	if h, err := fig6.Hash(); err != nil || h != hBase {
		t.Fatalf("DepthWeight 0.8 must hash as the default: %v %v", h, err)
	}
	// Genuinely different parameters must still hash apart.
	other := base
	other.AreaConRatio = 1.2
	if h, err := other.Hash(); err != nil || h == hBase {
		t.Fatalf("AreaConRatio 1.2 must not hash as the default: %v %v", h, err)
	}
}

func TestFig8DefaultRatioDedupesAgainstTables(t *testing.T) {
	opts := matrixOpts()
	jobs := append(Table2Jobs(opts), Table3Jobs(opts)...)
	jobs = append(jobs, Fig8Jobs(Opts{
		Circuits: opts.Circuits, Methods: opts.Methods, Seed: opts.Seed,
		Population: opts.Population, Iterations: opts.Iterations, Vectors: opts.Vectors,
	})...)
	seen := map[string]int{}
	for _, j := range jobs {
		h, err := j.Hash()
		if err != nil {
			t.Fatal(err)
		}
		seen[h]++
	}
	// Every table cell must collide with the Fig. 8 ratio-1.0 cell of the
	// same (circuit, method): 4 table cells, each seen twice.
	dups := 0
	for _, n := range seen {
		if n > 1 {
			dups += n - 1
		}
	}
	if dups != 4 {
		t.Fatalf("expected the 4 table cells to dedupe against Fig. 8's 1.0 ratio, got %d collisions", dups)
	}
}

func TestSingleKindCircuitFilterRendersWithoutNaN(t *testing.T) {
	// c880 is random/control only: every arithmetic setting of fig6/7/8
	// has an empty circuit set and must be skipped, not averaged to NaN
	// (json.Marshal rejects NaN, so this used to fail after all jobs ran).
	opts := Opts{
		Circuits:   []string{"c880"},
		Methods:    []als.Method{als.MethodHEDALS},
		Seed:       3,
		Population: 6,
		Iterations: 2,
		Vectors:    512,
	}
	for _, name := range []string{"fig6", "fig7", "fig8"} {
		jobs, err := JobsFor(name, opts)
		if err != nil {
			t.Fatal(err)
		}
		rs, _, err := RunJobs(jobs, 0, nil)
		if err != nil {
			t.Fatal(err)
		}
		doc, err := JSONReport(name, opts, rs)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		out, err := MarshalReport(doc)
		if err != nil {
			t.Fatalf("%s: JSON rendering failed: %v", name, err)
		}
		if strings.Contains(out, "NaN") {
			t.Fatalf("%s: NaN leaked into the report:\n%s", name, out)
		}
	}
}

func TestJobsForUnknownExperiment(t *testing.T) {
	if _, err := JobsFor("fig9", Opts{}); err == nil {
		t.Fatal("unknown experiment must error")
	}
	for _, name := range Experiments() {
		if _, err := JobsFor(name, Opts{Circuits: []string{"c880"}}); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
}

func TestJobRunRejectsUnknownFields(t *testing.T) {
	lib := als.NewLibrary()
	for _, j := range []Job{
		{Circuit: "nope", Method: "Ours", Metric: "ER", Budget: 0.05, Scale: "quick", Seed: 1},
		{Circuit: "c880", Method: "nope", Metric: "ER", Budget: 0.05, Scale: "quick", Seed: 1},
		{Circuit: "c880", Method: "Ours", Metric: "nope", Budget: 0.05, Scale: "quick", Seed: 1},
		{Circuit: "c880", Method: "Ours", Metric: "ER", Budget: 0.05, Scale: "nope", Seed: 1},
	} {
		if _, err := j.Run(lib, 0); err == nil {
			t.Fatalf("job %s must fail to run", j)
		}
	}
}

// TestRunJobsContextCancelled checks that a cancelled scheduler run
// reports the cancellation, executes nothing new, and leaves previously
// flushed cells in the store so a resumed run completes purely from cache.
func TestRunJobsContextCancelled(t *testing.T) {
	opts := matrixOpts()
	jobs := matrixJobs(t, opts)
	path := filepath.Join(t.TempDir(), "results.jsonl")

	st, err := store.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := RunJobs(jobs, 1, st); err != nil {
		t.Fatal(err)
	}

	// A cancelled invocation must refuse to execute and say why.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, stats, err := RunJobsContext(ctx, matrixJobs(t, Opts{
		Circuits:   opts.Circuits,
		Methods:    opts.Methods,
		Seed:       99, // all-new cells, nothing cacheable
		Population: opts.Population,
		Iterations: opts.Iterations,
		Vectors:    opts.Vectors,
	}), 1, st)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if stats.Executed != 0 {
		t.Errorf("cancelled run executed %d jobs", stats.Executed)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	// The earlier run's cells survived; a resume completes from cache
	// even under a cancelled context (no work left to refuse).
	st2, err := store.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	rs, stats, err := RunJobsContext(ctx, jobs, 1, st2)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Cached != len(jobs) || stats.Executed != 0 {
		t.Fatalf("resume stats = %+v, want all %d cached", stats, len(jobs))
	}
	if _, err := Table2From(opts, rs); err != nil {
		t.Errorf("resumed results do not assemble: %v", err)
	}
}
