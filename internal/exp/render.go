package exp

import (
	"encoding/json"
	"fmt"
	"strconv"
	"strings"
)

// Renderers are pure functions over assembled tables/figures (which are
// themselves pure functions over a ResultSet), so rendered output depends
// only on the job specs and their results — never on worker count,
// scheduling order, or whether cells came from cache.
//
// Machine-readable formats (JSON/CSV) deliberately omit wall-clock
// runtimes: every field they carry is deterministic at a given job spec,
// which is what makes `experiments -check` an exact-equality regression
// gate and `-jobs N` byte-identical for every N.

// ---- text ------------------------------------------------------------------

// RenderTable1 prints TABLE I as aligned text.
func RenderTable1(rows []Table1Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-15s %-10s %6s %5s %5s %10s %10s  %s\n",
		"Type", "Circuit", "#gate", "#PI", "#PO", "CPDori(ps)", "Area(um2)", "Description")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-15s %-10s %6d %5d %5d %10.2f %10.2f  %s\n",
			r.Type, r.Circuit, r.Gates, r.PIs, r.POs, r.CPDOri, r.AreaOri, r.Description)
	}
	return b.String()
}

// RenderCompare prints a TABLE II/III-style comparison.
func RenderCompare(t *CompareTable) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Constraint: %s <= %.4g, post-optimization under Areacon\n", t.Metric, t.Budget)
	fmt.Fprintf(&b, "%-10s %10s", "Circuit", "Areacon")
	for _, m := range t.Methods {
		fmt.Fprintf(&b, " | %-18s", m)
	}
	b.WriteString("\n")
	fmt.Fprintf(&b, "%-10s %10s", "", "")
	for range t.Methods {
		fmt.Fprintf(&b, " | %8s %9s", "Ratiocpd", "time(s)")
	}
	b.WriteString("\n")
	for _, row := range t.Rows {
		fmt.Fprintf(&b, "%-10s %10.2f", row.Circuit, row.AreaCon)
		for _, m := range t.Methods {
			c := row.Cells[m]
			fmt.Fprintf(&b, " | %8.4f %9.3f", c.RatioCPD, c.Runtime.Seconds())
		}
		b.WriteString("\n")
	}
	fmt.Fprintf(&b, "%-10s %10s", "Average", "")
	for _, m := range t.Methods {
		fmt.Fprintf(&b, " | %8.4f %9s", t.Avg[m], "")
	}
	b.WriteString("\n")
	return b.String()
}

// RenderSweep prints one Fig. 7/8-style family of curves.
func RenderSweep(title, xlabel string, series []SweepSeries) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n%-20s", title, xlabel)
	if len(series) == 0 {
		return b.String() + "\n"
	}
	for _, x := range series[0].X {
		fmt.Fprintf(&b, " %8.4g", x)
	}
	b.WriteString("\n")
	for _, s := range series {
		fmt.Fprintf(&b, "%-20s", s.Method.String())
		for _, r := range s.Ratio {
			fmt.Fprintf(&b, " %8.4f", r)
		}
		b.WriteString("\n")
	}
	return b.String()
}

// RenderWeights prints the Fig. 6 curves.
func RenderWeights(series []WeightSeries) string {
	var b strings.Builder
	b.WriteString("Fig. 6: average Ratiocpd vs depth weight wd\n")
	if len(series) == 0 {
		return b.String()
	}
	fmt.Fprintf(&b, "%-14s", "wd")
	for _, w := range series[0].Weights {
		fmt.Fprintf(&b, " %8.2f", w)
	}
	b.WriteString("\n")
	for _, s := range series {
		fmt.Fprintf(&b, "%-14s", s.Label)
		for _, r := range s.Ratio {
			fmt.Fprintf(&b, " %8.4f", r)
		}
		b.WriteString("\n")
	}
	return b.String()
}

// ---- JSON ------------------------------------------------------------------

type jsonCell struct {
	Method      string  `json:"method"`
	RatioCPD    float64 `json:"ratio_cpd"`
	Err         float64 `json:"err"`
	Evaluations int     `json:"evaluations"`
}

type jsonCompareRow struct {
	Circuit string     `json:"circuit"`
	AreaCon float64    `json:"area_con"`
	Cells   []jsonCell `json:"cells"`
}

type jsonAvg struct {
	Method   string  `json:"method"`
	RatioCPD float64 `json:"ratio_cpd"`
}

type jsonCompare struct {
	Experiment string           `json:"experiment"`
	Metric     string           `json:"metric"`
	Budget     float64          `json:"budget"`
	Rows       []jsonCompareRow `json:"rows"`
	Avg        []jsonAvg        `json:"avg"`
}

type jsonWeightSeries struct {
	Label   string    `json:"label"`
	Metric  string    `json:"metric"`
	Budget  float64   `json:"budget"`
	Weights []float64 `json:"weights"`
	Ratio   []float64 `json:"ratio_cpd"`
}

type jsonSweepSeries struct {
	Method string    `json:"method"`
	X      []float64 `json:"x"`
	Ratio  []float64 `json:"ratio_cpd"`
}

type jsonSweep struct {
	Experiment string            `json:"experiment"`
	ER         []jsonSweepSeries `json:"er"`
	NMED       []jsonSweepSeries `json:"nmed"`
}

// JSONReport builds the deterministic machine-readable document of one
// experiment. Methods appear in table column order (slices, not maps), and
// runtimes are omitted, so marshaling the report yields identical bytes
// for any -jobs value and any cache state.
func JSONReport(name string, opts Opts, rs ResultSet) (any, error) {
	switch name {
	case "table1":
		rows, err := Table1()
		if err != nil {
			return nil, err
		}
		return struct {
			Experiment string      `json:"experiment"`
			Rows       []Table1Row `json:"rows"`
		}{"table1", rows}, nil

	case "table2", "table3":
		assemble := Table2From
		if name == "table3" {
			assemble = Table3From
		}
		t, err := assemble(opts, rs)
		if err != nil {
			return nil, err
		}
		doc := jsonCompare{Experiment: name, Metric: t.Metric.String(), Budget: t.Budget}
		for _, row := range t.Rows {
			jr := jsonCompareRow{Circuit: row.Circuit, AreaCon: row.AreaCon}
			for _, m := range t.Methods {
				c := row.Cells[m]
				jr.Cells = append(jr.Cells, jsonCell{
					Method: m.String(), RatioCPD: c.RatioCPD, Err: c.Err, Evaluations: c.Evaluations,
				})
			}
			doc.Rows = append(doc.Rows, jr)
		}
		for _, m := range t.Methods {
			doc.Avg = append(doc.Avg, jsonAvg{Method: m.String(), RatioCPD: t.Avg[m]})
		}
		return doc, nil

	case "fig6":
		series, err := Fig6From(opts, rs)
		if err != nil {
			return nil, err
		}
		doc := struct {
			Experiment string             `json:"experiment"`
			Series     []jsonWeightSeries `json:"series"`
		}{Experiment: "fig6"}
		for _, s := range series {
			doc.Series = append(doc.Series, jsonWeightSeries{
				Label: s.Label, Metric: s.Metric.String(), Budget: s.Budget,
				Weights: s.Weights, Ratio: s.Ratio,
			})
		}
		return doc, nil

	case "fig7", "fig8":
		assemble := Fig7From
		if name == "fig8" {
			assemble = Fig8From
		}
		er, nmed, err := assemble(opts, rs)
		if err != nil {
			return nil, err
		}
		doc := jsonSweep{Experiment: name}
		for _, s := range er {
			doc.ER = append(doc.ER, jsonSweepSeries{Method: s.Method.String(), X: s.X, Ratio: s.Ratio})
		}
		for _, s := range nmed {
			doc.NMED = append(doc.NMED, jsonSweepSeries{Method: s.Method.String(), X: s.X, Ratio: s.Ratio})
		}
		return doc, nil
	}
	return nil, fmt.Errorf("exp: unknown experiment %q", name)
}

// MarshalReport renders a JSONReport document as indented JSON with a
// trailing newline.
func MarshalReport(doc any) (string, error) {
	raw, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return "", err
	}
	return string(raw) + "\n", nil
}

// ---- CSV -------------------------------------------------------------------

// csvFloat formats a float with full round-trip precision.
func csvFloat(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// CSVReport renders one experiment as CSV. Job-cell experiments share one
// flat schema (one row per cell, in job-list order); table1 uses its own
// benchmark-statistics schema. Runtimes are omitted for determinism.
func CSVReport(name string, opts Opts, rs ResultSet) (string, error) {
	var b strings.Builder
	if name == "table1" {
		rows, err := Table1()
		if err != nil {
			return "", err
		}
		b.WriteString("type,circuit,gates,pis,pos,cpd_ori_ps,area_um2\n")
		for _, r := range rows {
			fmt.Fprintf(&b, "%s,%s,%d,%d,%d,%s,%s\n",
				r.Type, r.Circuit, r.Gates, r.PIs, r.POs, csvFloat(r.CPDOri), csvFloat(r.AreaOri))
		}
		return b.String(), nil
	}
	jobs, err := JobsFor(name, opts)
	if err != nil {
		return "", err
	}
	b.WriteString("experiment,circuit,method,metric,budget,depth_weight,area_ratio,scale,seed,ratio_cpd,err,evaluations\n")
	for _, j := range jobs {
		r, err := rs.get(j)
		if err != nil {
			return "", err
		}
		// The wd=0 sweep point is encoded as 1e-9 inside the job spec
		// (FlowConfig treats 0 as "default"); surface the true 0 to
		// consumers.
		wd := j.DepthWeight
		if wd == 1e-9 {
			wd = 0
		}
		fmt.Fprintf(&b, "%s,%s,%s,%s,%s,%s,%s,%s,%d,%s,%s,%d\n",
			name, j.Circuit, j.Method, j.Metric, csvFloat(j.Budget),
			csvFloat(wd), csvFloat(j.AreaConRatio), j.Scale, j.Seed,
			csvFloat(r.RatioCPD), csvFloat(r.Err), r.Evaluations)
	}
	return b.String(), nil
}
