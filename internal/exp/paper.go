package exp

// Paper reference values, embedded so reports can print paper-vs-measured
// side by side.

// PaperCell is the paper's reported (Ratiocpd, runtime seconds).
type PaperCell struct {
	Ratio   float64
	Seconds float64
}

// PaperTable2 holds the paper's TABLE II values for paper-vs-measured
// reports, keyed by circuit then method name.
var PaperTable2 = map[string]map[string]PaperCell{
	"Cavlc": {"VECBEE-S": {0.9219, 60.03}, "VaACS": {0.8745, 356.89}, "HEDALS": {0.9071, 194.43}, "GWO (single-chase)": {0.8963, 407.25}, "Ours": {0.8602, 310.42}},
	"c880":  {"VECBEE-S": {0.9026, 43.11}, "VaACS": {0.9221, 227.13}, "HEDALS": {0.8913, 104.00}, "GWO (single-chase)": {0.9183, 201.51}, "Ours": {0.8399, 193.86}},
	"c1908": {"VECBEE-S": {0.8679, 65.32}, "VaACS": {0.5166, 235.68}, "HEDALS": {0.3372, 310.42}, "GWO (single-chase)": {0.5021, 307.56}, "Ours": {0.3865, 202.79}},
	"c2670": {"VECBEE-S": {0.6708, 308.16}, "VaACS": {0.8101, 477.92}, "HEDALS": {0.7589, 250.28}, "GWO (single-chase)": {0.7703, 313.99}, "Ours": {0.6314, 339.63}},
	"c3540": {"VECBEE-S": {0.9670, 391.42}, "VaACS": {0.9729, 435.26}, "HEDALS": {0.9203, 373.26}, "GWO (single-chase)": {0.9224, 479.88}, "Ours": {0.8732, 324.59}},
	"c5315": {"VECBEE-S": {0.9113, 1857.32}, "VaACS": {0.8599, 1963.55}, "HEDALS": {0.8270, 1662.08}, "GWO (single-chase)": {0.8165, 1655.07}, "Ours": {0.8034, 1449.37}},
	"c7552": {"VECBEE-S": {0.9262, 1726.27}, "VaACS": {0.9133, 1336.64}, "HEDALS": {0.7391, 1315.85}, "GWO (single-chase)": {0.8877, 1420.32}, "Ours": {0.7063, 1279.18}},
}

// PaperTable3 holds the paper's TABLE III values.
var PaperTable3 = map[string]map[string]PaperCell{
	"Int2float": {"VECBEE-S": {0.9331, 71.23}, "VaACS": {0.5047, 151.73}, "HEDALS": {0.7649, 32.68}, "GWO (single-chase)": {0.6010, 178.30}, "Ours": {0.4496, 132.12}},
	"Adder16":   {"VECBEE-S": {0.9973, 67.20}, "VaACS": {0.5295, 173.85}, "HEDALS": {0.4513, 47.30}, "GWO (single-chase)": {0.5216, 189.01}, "Ours": {0.4275, 167.03}},
	"Max16":     {"VECBEE-S": {0.7087, 93.17}, "VaACS": {0.4209, 189.73}, "HEDALS": {0.4470, 105.97}, "GWO (single-chase)": {0.3928, 277.38}, "Ours": {0.3708, 208.55}},
	"c6288":     {"VECBEE-S": {0.9663, 4410.29}, "VaACS": {0.8696, 3279.62}, "HEDALS": {0.6368, 2563.41}, "GWO (single-chase)": {0.9079, 2991.00}, "Ours": {0.8313, 2103.88}},
	"Adder":     {"VECBEE-S": {0.7814, 1697.37}, "VaACS": {0.8133, 2083.15}, "HEDALS": {0.7110, 1362.70}, "GWO (single-chase)": {0.8008, 1550.03}, "Ours": {0.6917, 1193.71}},
	"Max":       {"VECBEE-S": {0.8809, 2600.78}, "VaACS": {0.8933, 3397.50}, "HEDALS": {0.8355, 2992.08}, "GWO (single-chase)": {0.7517, 3121.44}, "Ours": {0.6799, 2035.62}},
	"Sin":       {"VECBEE-S": {0.9187, 5391.68}, "VaACS": {0.8326, 3872.31}, "HEDALS": {0.7945, 3380.52}, "GWO (single-chase)": {0.8722, 4392.77}, "Ours": {0.7603, 3176.46}},
	"Sqrt":      {"VECBEE-S": {0.7993, 33117.12}, "VaACS": {0.8011, 20160.76}, "HEDALS": {0.7437, 11242.29}, "GWO (single-chase)": {0.7803, 17894.50}, "Ours": {0.7058, 9950.11}},
}

// PaperAverages returns the paper's average Ratiocpd per method for a
// reference table.
func PaperAverages(table map[string]map[string]PaperCell) map[string]float64 {
	sums := map[string]float64{}
	n := 0
	for _, row := range table {
		n++
		for m, cell := range row {
			sums[m] += cell.Ratio
		}
	}
	for m := range sums {
		sums[m] /= float64(n)
	}
	return sums
}
