package exp

import (
	"context"
	"fmt"
	"time"

	als "repro"
	"repro/internal/cell"
	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/store"
	"repro/internal/trace"
)

// Job is one cell of the evaluation's job graph: a single end-to-end Flow
// invocation pinned down by circuit, method, metric, budget and every
// stochastic or budget parameter. Identical cells shared between
// experiments (e.g. TABLE II and the loosest Fig. 7(a) point) carry the
// same canonical hash and therefore run — and persist — once.
//
// Method, metric and scale are stored by name rather than enum value so a
// persisted result store stays valid across constant renumbering, and the
// hash is computed from the canonical (sorted-key) JSON form, so it is
// independent of field order.
type Job struct {
	Circuit string  `json:"circuit"`
	Method  string  `json:"method"`
	Metric  string  `json:"metric"`
	Budget  float64 `json:"budget"`
	Scale   string  `json:"scale"`
	Seed    int64   `json:"seed"`
	// DepthWeight overrides wd (0 = the paper's default 0.8); Fig. 6 sets it.
	DepthWeight float64 `json:"depth_weight,omitempty"`
	// AreaConRatio scales the post-optimization area budget (0 = 1.0);
	// Fig. 8 sets it.
	AreaConRatio float64 `json:"area_con_ratio,omitempty"`
	// Population, Iterations, Vectors override the scale preset (0 = preset).
	Population int `json:"population,omitempty"`
	Iterations int `json:"iterations,omitempty"`
	Vectors    int `json:"vectors,omitempty"`
}

// normalized maps parameter spellings that FlowConfig.resolve treats as
// the default onto the zero value, so e.g. the Fig. 8 ratio-1.0 cells and
// the Fig. 6 wd-0.8 cells hash identically to the TABLE II/III cells they
// recompute — one flow, one cache entry.
func (j Job) normalized() Job {
	if j.AreaConRatio == 1.0 {
		j.AreaConRatio = 0
	}
	if j.DepthWeight == 0.8 {
		j.DepthWeight = 0
	}
	return j
}

// Hash returns the job's canonical content hash — the key under which its
// result is cached in a store.Store. Default-equivalent parameter
// spellings (AreaConRatio 1.0, DepthWeight 0.8) hash as the default.
func (j Job) Hash() (string, error) { return store.Hash(j.normalized()) }

// String identifies the job in error messages and diffs.
func (j Job) String() string {
	s := fmt.Sprintf("%s/%s %s<=%g seed=%d scale=%s", j.Circuit, j.Method, j.Metric, j.Budget, j.Seed, j.Scale)
	if j.DepthWeight != 0 {
		s += fmt.Sprintf(" wd=%g", j.DepthWeight)
	}
	if j.AreaConRatio != 0 {
		s += fmt.Sprintf(" area=%gx", j.AreaConRatio)
	}
	return s
}

// JobResult is the persisted outcome of one job, in the units of the
// paper's tables. RatioCPD, Err and Evaluations are deterministic at a
// given job spec (PR 1's exactness guarantee) and are what the golden
// regression gate compares; RuntimeNS is wall clock and is never part of
// a hash, a golden diff, or machine-readable output.
type JobResult struct {
	RatioCPD    float64 `json:"ratio_cpd"`
	Err         float64 `json:"err"`
	Evaluations int     `json:"evaluations"`
	CPDOri      float64 `json:"cpd_ori"`
	CPDFac      float64 `json:"cpd_fac"`
	AreaCon     float64 `json:"area_con"`
	AreaFinal   float64 `json:"area_final"`
	RuntimeNS   int64   `json:"runtime_ns"`
}

// Run executes the job's flow. It is pure apart from wall-clock timing:
// the same job always yields the same RatioCPD/Err/Evaluations.
// evalWorkers caps the flow's internal candidate-evaluation pool (0 =
// GOMAXPROCS); it is a scheduling knob, never part of the job spec or its
// hash, because it cannot affect results.
func (j Job) Run(lib *cell.Library, evalWorkers int) (JobResult, error) {
	return j.RunContext(context.Background(), lib, evalWorkers)
}

// RunContext is Run with cooperative cancellation, forwarded to the flow's
// per-iteration context check. When ctx carries a trace span, the whole
// execution becomes a "job.run" child span (with the flow's per-generation
// spans under it); tracing observes the run without perturbing it.
func (j Job) RunContext(ctx context.Context, lib *cell.Library, evalWorkers int) (res JobResult, err error) {
	if sp := trace.FromContext(ctx).StartChild("job.run"); sp != nil {
		sp.SetAttr("circuit", j.Circuit)
		sp.SetAttr("method", j.Method)
		sp.SetAttr("metric", j.Metric)
		sp.SetAttr("seed", j.Seed)
		ctx = trace.ContextWith(ctx, sp)
		defer func() {
			status := "ok"
			if err != nil {
				status = "error"
			}
			sp.SetAttr("status", status)
			sp.End()
		}()
	}
	circuit, err := als.BenchmarkByName(j.Circuit)
	if err != nil {
		return JobResult{}, fmt.Errorf("exp: job %s: %w", j, err)
	}
	method, err := als.ParseMethod(j.Method)
	if err != nil {
		return JobResult{}, fmt.Errorf("exp: job %s: %w", j, err)
	}
	metric, err := als.ParseMetric(j.Metric)
	if err != nil {
		return JobResult{}, fmt.Errorf("exp: job %s: %w", j, err)
	}
	scale, err := als.ParseScale(j.Scale)
	if err != nil {
		return JobResult{}, fmt.Errorf("exp: job %s: %w", j, err)
	}
	fr, err := als.FlowContext(ctx, circuit, lib, als.FlowConfig{
		Metric:       metric,
		ErrorBudget:  j.Budget,
		Method:       method,
		Scale:        scale,
		AreaConRatio: j.AreaConRatio,
		DepthWeight:  j.DepthWeight,
		Population:   j.Population,
		Iterations:   j.Iterations,
		Vectors:      j.Vectors,
		EvalWorkers:  evalWorkers,
		Seed:         j.Seed,
	})
	if err != nil {
		return JobResult{}, fmt.Errorf("exp: job %s: %w", j, err)
	}
	return JobResult{
		RatioCPD:    fr.RatioCPD,
		Err:         fr.Err,
		Evaluations: fr.Evaluations,
		CPDOri:      fr.CPDOri,
		CPDFac:      fr.CPDFac,
		AreaCon:     fr.AreaCon,
		AreaFinal:   fr.AreaFinal,
		RuntimeNS:   int64(fr.Runtime),
	}, nil
}

// cellJob builds the job for one (circuit, method) cell under this Opts.
func (o Opts) cellJob(circuit string, m als.Method, metric core.Metric, budget float64) Job {
	return Job{
		Circuit:    circuit,
		Method:     m.String(),
		Metric:     metric.String(),
		Budget:     budget,
		Scale:      o.Scale.String(),
		Seed:       o.seed(),
		Population: o.Population,
		Iterations: o.Iterations,
		Vectors:    o.Vectors,
	}
}

// ---- per-experiment job lists ----------------------------------------------

// JobsFor returns the job list of one experiment by CLI name. table1 is
// pure analysis and has no jobs.
func JobsFor(name string, opts Opts) ([]Job, error) {
	switch name {
	case "table1":
		return nil, nil
	case "table2":
		return Table2Jobs(opts), nil
	case "table3":
		return Table3Jobs(opts), nil
	case "fig6":
		return Fig6Jobs(opts), nil
	case "fig7":
		return Fig7Jobs(opts), nil
	case "fig8":
		return Fig8Jobs(opts), nil
	}
	return nil, fmt.Errorf("exp: unknown experiment %q", name)
}

func compareJobs(opts Opts, kind gen.Kind, metric core.Metric, budget float64) []Job {
	var jobs []Job
	for _, name := range opts.circuitSet(kind) {
		for _, m := range opts.methods() {
			jobs = append(jobs, opts.cellJob(name, m, metric, budget))
		}
	}
	return jobs
}

// Table2Jobs lists the TABLE II cells (5% ER, random/control circuits).
func Table2Jobs(opts Opts) []Job {
	return compareJobs(opts, gen.RandomControl, core.MetricER, 0.05)
}

// Table3Jobs lists the TABLE III cells (2.44% NMED, arithmetic circuits).
func Table3Jobs(opts Opts) []Job {
	return compareJobs(opts, gen.Arithmetic, core.MetricNMED, 0.0244)
}

// fig6Weight maps a Fig. 6 sweep point to the job's DepthWeight field:
// FlowConfig treats 0 as "use the default", so wd=0 is encoded as 1e-9.
func fig6Weight(wd float64) float64 {
	if wd == 0 {
		return 1e-9
	}
	return wd
}

// Fig6Jobs lists the depth-weight sweep cells (DCGWO only).
func Fig6Jobs(opts Opts) []Job {
	var jobs []Job
	for _, s := range fig6Settings {
		for _, wd := range Fig6Weights {
			for _, name := range opts.circuitSet(s.kind) {
				j := opts.cellJob(name, als.MethodDCGWO, s.metric, s.budget)
				j.DepthWeight = fig6Weight(wd)
				jobs = append(jobs, j)
			}
		}
	}
	return jobs
}

// Fig7Jobs lists the error-constraint sweep cells.
func Fig7Jobs(opts Opts) []Job {
	var jobs []Job
	for _, m := range opts.sweepMethods() {
		for _, budget := range ERConstraints {
			for _, name := range opts.circuitSet(gen.RandomControl) {
				jobs = append(jobs, opts.cellJob(name, m, core.MetricER, budget))
			}
		}
		for _, budget := range NMEDConstraints {
			for _, name := range opts.circuitSet(gen.Arithmetic) {
				jobs = append(jobs, opts.cellJob(name, m, core.MetricNMED, budget))
			}
		}
	}
	return jobs
}

// Fig8Jobs lists the area-constraint sweep cells.
func Fig8Jobs(opts Opts) []Job {
	var jobs []Job
	for _, m := range opts.sweepMethods() {
		for _, ratio := range AreaRatios {
			for _, name := range opts.circuitSet(gen.RandomControl) {
				j := opts.cellJob(name, m, core.MetricER, 0.05)
				j.AreaConRatio = ratio
				jobs = append(jobs, j)
			}
			for _, name := range opts.circuitSet(gen.Arithmetic) {
				j := opts.cellJob(name, m, core.MetricNMED, 0.0244)
				j.AreaConRatio = ratio
				jobs = append(jobs, j)
			}
		}
	}
	return jobs
}

// ---- assemblers: pure functions (Opts, ResultSet) → table/figure -----------

// Cell is one (circuit, method) measurement.
type Cell struct {
	RatioCPD    float64
	Err         float64
	Evaluations int
	Runtime     time.Duration
}

// CompareRow is one circuit row of TABLE II/III.
type CompareRow struct {
	Circuit string
	AreaCon float64
	Cells   map[als.Method]Cell
}

// CompareTable holds a full method-comparison table plus averages.
type CompareTable struct {
	Metric  core.Metric
	Budget  float64
	Methods []als.Method
	Rows    []CompareRow
	// Avg maps each method to its average Ratiocpd across rows.
	Avg map[als.Method]float64
}

// Table2From assembles TABLE II from stored results.
func Table2From(opts Opts, rs ResultSet) (*CompareTable, error) {
	return compareFrom(opts, gen.RandomControl, core.MetricER, 0.05, rs)
}

// Table3From assembles TABLE III from stored results.
func Table3From(opts Opts, rs ResultSet) (*CompareTable, error) {
	return compareFrom(opts, gen.Arithmetic, core.MetricNMED, 0.0244, rs)
}

func compareFrom(opts Opts, kind gen.Kind, metric core.Metric, budget float64, rs ResultSet) (*CompareTable, error) {
	methods := opts.methods()
	table := &CompareTable{
		Metric:  metric,
		Budget:  budget,
		Methods: methods,
		Avg:     map[als.Method]float64{},
	}
	for _, name := range opts.circuitSet(kind) {
		row := CompareRow{Circuit: name, Cells: map[als.Method]Cell{}}
		for _, m := range methods {
			r, err := rs.get(opts.cellJob(name, m, metric, budget))
			if err != nil {
				return nil, err
			}
			row.AreaCon = r.AreaCon
			row.Cells[m] = Cell{RatioCPD: r.RatioCPD, Err: r.Err, Evaluations: r.Evaluations, Runtime: time.Duration(r.RuntimeNS)}
		}
		table.Rows = append(table.Rows, row)
	}
	for _, m := range methods {
		sum := 0.0
		for _, row := range table.Rows {
			sum += row.Cells[m].RatioCPD
		}
		if len(table.Rows) > 0 {
			table.Avg[m] = sum / float64(len(table.Rows))
		}
	}
	return table, nil
}

// WeightSeries is one Fig. 6 curve: average Ratiocpd per depth weight wd
// under one constraint setting.
type WeightSeries struct {
	Label   string
	Metric  core.Metric
	Budget  float64
	Weights []float64
	Ratio   []float64
}

// Fig6From assembles the Fig. 6 curves from stored results. Settings
// whose circuit set is emptied by a -circuits filter are skipped (their
// average would be undefined, and Fig6Jobs scheduled nothing for them).
func Fig6From(opts Opts, rs ResultSet) ([]WeightSeries, error) {
	var out []WeightSeries
	for _, s := range fig6Settings {
		names := opts.circuitSet(s.kind)
		if len(names) == 0 {
			continue
		}
		series := WeightSeries{Label: s.label, Metric: s.metric, Budget: s.budget, Weights: Fig6Weights}
		for _, wd := range Fig6Weights {
			sum := 0.0
			for _, name := range names {
				j := opts.cellJob(name, als.MethodDCGWO, s.metric, s.budget)
				j.DepthWeight = fig6Weight(wd)
				r, err := rs.get(j)
				if err != nil {
					return nil, err
				}
				sum += r.RatioCPD
			}
			series.Ratio = append(series.Ratio, sum/float64(len(names)))
		}
		out = append(out, series)
	}
	return out, nil
}

// SweepSeries is one curve of Fig. 7/8: average Ratiocpd per x-value for
// one method.
type SweepSeries struct {
	Method als.Method
	X      []float64
	Ratio  []float64
}

// sweepPoint is one x-axis point of a Fig. 7/8 curve: the error budget
// and post-optimization area ratio of its cells.
type sweepPoint struct{ budget, ratio float64 }

func budgetPoints(budgets []float64) []sweepPoint {
	points := make([]sweepPoint, len(budgets))
	for i, b := range budgets {
		points[i] = sweepPoint{budget: b}
	}
	return points
}

func ratioPoints(budget float64, ratios []float64) []sweepPoint {
	points := make([]sweepPoint, len(ratios))
	for i, r := range ratios {
		points[i] = sweepPoint{budget: budget, ratio: r}
	}
	return points
}

// Fig7From assembles the error-constraint sweep from stored results.
func Fig7From(opts Opts, rs ResultSet) (er, nmed []SweepSeries, err error) {
	er, err = sweepFrom(opts, rs, gen.RandomControl, core.MetricER, ERConstraints, budgetPoints(ERConstraints))
	if err != nil {
		return nil, nil, err
	}
	nmed, err = sweepFrom(opts, rs, gen.Arithmetic, core.MetricNMED, NMEDConstraints, budgetPoints(NMEDConstraints))
	return er, nmed, err
}

// Fig8From assembles the area-constraint sweep from stored results.
func Fig8From(opts Opts, rs ResultSet) (er, nmed []SweepSeries, err error) {
	er, err = sweepFrom(opts, rs, gen.RandomControl, core.MetricER, AreaRatios, ratioPoints(0.05, AreaRatios))
	if err != nil {
		return nil, nil, err
	}
	nmed, err = sweepFrom(opts, rs, gen.Arithmetic, core.MetricNMED, AreaRatios, ratioPoints(0.0244, AreaRatios))
	return er, nmed, err
}

// sweepFrom averages RatioCPD per sweep point over the kind's circuit
// set, one series per method. An empty circuit set (a -circuits filter
// that excludes the whole kind) yields no series rather than NaN points.
func sweepFrom(opts Opts, rs ResultSet, kind gen.Kind, metric core.Metric, xs []float64, points []sweepPoint) ([]SweepSeries, error) {
	names := opts.circuitSet(kind)
	if len(names) == 0 {
		return nil, nil
	}
	var out []SweepSeries
	for _, m := range opts.sweepMethods() {
		series := SweepSeries{Method: m, X: xs}
		for _, p := range points {
			sum := 0.0
			for _, name := range names {
				j := opts.cellJob(name, m, metric, p.budget)
				j.AreaConRatio = p.ratio
				r, err := rs.get(j)
				if err != nil {
					return nil, err
				}
				sum += r.RatioCPD
			}
			series.Ratio = append(series.Ratio, sum/float64(len(names)))
		}
		out = append(out, series)
	}
	return out, nil
}
