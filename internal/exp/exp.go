// Package exp regenerates every table and figure of the paper's
// evaluation section on the from-scratch substrate: TABLE I (benchmark
// statistics), TABLE II (5% ER comparison), TABLE III (2.44% NMED
// comparison), Fig. 6 (depth-weight sweep), Fig. 7 (error-constraint
// sweep) and Fig. 8 (area-constraint sweep).
//
// Absolute numbers differ from the paper (synthetic library and
// generators); the reproduced quantities are the Ratiocpd orderings and
// trend shapes. PaperTable2/PaperTable3 embed the paper's reported values
// so reports can print paper-vs-measured side by side.
package exp

import (
	"fmt"
	"strings"
	"time"

	als "repro"
	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/sta"
)

// Opts tunes how heavy an experiment run is.
type Opts struct {
	// Scale presets the optimizer budget (quick vs paper-scale).
	Scale als.Scale
	// Circuits restricts the benchmark set (nil = the full TABLE row
	// set for that experiment).
	Circuits []string
	// Methods restricts the optimizer columns (nil = all five).
	Methods []als.Method
	// Seed fixes every stochastic choice.
	Seed int64
	// Population, Iterations, Vectors override the scale preset when
	// non-zero (forwarded to als.FlowConfig).
	Population, Iterations, Vectors int
}

func (o Opts) methods() []als.Method {
	if o.Methods != nil {
		return o.Methods
	}
	return als.AllMethods()
}

func (o Opts) seed() int64 {
	if o.Seed == 0 {
		return 1
	}
	return o.Seed
}

func (o Opts) flowConfig(metric core.Metric, budget float64) als.FlowConfig {
	return als.FlowConfig{
		Metric:      metric,
		ErrorBudget: budget,
		Scale:       o.Scale,
		Seed:        o.seed(),
		Population:  o.Population,
		Iterations:  o.Iterations,
		Vectors:     o.Vectors,
	}
}

// circuitSet returns the experiment's benchmark names filtered by Opts.
func (o Opts) circuitSet(kind gen.Kind) []string {
	var names []string
	for _, b := range gen.ByKind(kind) {
		names = append(names, b.Name)
	}
	if o.Circuits == nil {
		return names
	}
	allowed := map[string]bool{}
	for _, c := range o.Circuits {
		allowed[c] = true
	}
	var out []string
	for _, n := range names {
		if allowed[n] {
			out = append(out, n)
		}
	}
	return out
}

// The paper's constraint grids.
var (
	// ERConstraints are the Fig. 7(a) error-rate points; the last is the
	// TABLE II setting.
	ERConstraints = []float64{0.01, 0.02, 0.03, 0.04, 0.05}
	// NMEDConstraints are the Fig. 7(b) points; the last is TABLE III's.
	NMEDConstraints = []float64{0.0048, 0.0098, 0.0147, 0.0196, 0.0244}
	// AreaRatios are the Fig. 8 area-constraint sweep points.
	AreaRatios = []float64{0.8, 0.9, 1.0, 1.1, 1.2}
	// Fig6Weights are the depth-weight sweep points of Fig. 6.
	Fig6Weights = []float64{0, 0.2, 0.4, 0.6, 0.8, 1.0}
)

// ---- TABLE I -------------------------------------------------------------

// Table1Row is one benchmark-statistics row.
type Table1Row struct {
	Type        string
	Circuit     string
	Gates       int
	PIs, POs    int
	CPDOri      float64 // ps
	AreaOri     float64 // µm²
	Description string
}

// Table1 regenerates the benchmark statistics table.
func Table1() ([]Table1Row, error) {
	lib := als.NewLibrary()
	var rows []Table1Row
	for _, b := range gen.All() {
		c := b.Build()
		rep, err := sta.Analyze(c, lib)
		if err != nil {
			return nil, fmt.Errorf("exp: %s: %w", b.Name, err)
		}
		s := c.Summarize(lib)
		rows = append(rows, Table1Row{
			Type:        b.Kind.String(),
			Circuit:     b.Name,
			Gates:       s.Gates,
			PIs:         s.PIs,
			POs:         s.POs,
			CPDOri:      rep.CPD,
			AreaOri:     s.Area,
			Description: b.Description,
		})
	}
	return rows, nil
}

// ---- TABLE II / III -------------------------------------------------------

// Cell is one (circuit, method) measurement.
type Cell struct {
	RatioCPD float64
	Err      float64
	Runtime  time.Duration
}

// CompareRow is one circuit row of TABLE II/III.
type CompareRow struct {
	Circuit string
	AreaCon float64
	Cells   map[als.Method]Cell
}

// CompareTable holds a full method-comparison table plus averages.
type CompareTable struct {
	Metric  core.Metric
	Budget  float64
	Methods []als.Method
	Rows    []CompareRow
	// Avg maps each method to its average Ratiocpd across rows.
	Avg map[als.Method]float64
}

// Table2 reproduces the 5% ER comparison on the random/control circuits.
func Table2(opts Opts) (*CompareTable, error) {
	return compare(opts, gen.RandomControl, core.MetricER, 0.05)
}

// Table3 reproduces the 2.44% NMED comparison on the arithmetic circuits.
func Table3(opts Opts) (*CompareTable, error) {
	return compare(opts, gen.Arithmetic, core.MetricNMED, 0.0244)
}

func compare(opts Opts, kind gen.Kind, metric core.Metric, budget float64) (*CompareTable, error) {
	lib := als.NewLibrary()
	methods := opts.methods()
	table := &CompareTable{
		Metric:  metric,
		Budget:  budget,
		Methods: methods,
		Avg:     map[als.Method]float64{},
	}
	for _, name := range opts.circuitSet(kind) {
		c := gen.MustBuild(name)
		row := CompareRow{Circuit: name, Cells: map[als.Method]Cell{}}
		for _, m := range methods {
			cfg := opts.flowConfig(metric, budget)
			cfg.Method = m
			res, err := als.Flow(c, lib, cfg)
			if err != nil {
				return nil, fmt.Errorf("exp: %s/%s: %w", name, m, err)
			}
			row.AreaCon = res.AreaCon
			row.Cells[m] = Cell{RatioCPD: res.RatioCPD, Err: res.Err, Runtime: res.Runtime}
		}
		table.Rows = append(table.Rows, row)
	}
	for _, m := range methods {
		sum := 0.0
		for _, row := range table.Rows {
			sum += row.Cells[m].RatioCPD
		}
		if len(table.Rows) > 0 {
			table.Avg[m] = sum / float64(len(table.Rows))
		}
	}
	return table, nil
}

// ---- Fig. 6: depth-weight sweep -------------------------------------------

// WeightSeries is one Fig. 6 curve: average Ratiocpd per depth weight wd
// under one constraint setting.
type WeightSeries struct {
	Label   string
	Metric  core.Metric
	Budget  float64
	Weights []float64
	Ratio   []float64
}

// Fig6 sweeps wd under the tightest and loosest ER and NMED constraints.
func Fig6(opts Opts) ([]WeightSeries, error) {
	settings := []struct {
		label  string
		metric core.Metric
		budget float64
		kind   gen.Kind
	}{
		{"ER 1%", core.MetricER, 0.01, gen.RandomControl},
		{"ER 5%", core.MetricER, 0.05, gen.RandomControl},
		{"NMED 0.48%", core.MetricNMED, 0.0048, gen.Arithmetic},
		{"NMED 2.44%", core.MetricNMED, 0.0244, gen.Arithmetic},
	}
	lib := als.NewLibrary()
	var out []WeightSeries
	for _, s := range settings {
		series := WeightSeries{Label: s.label, Metric: s.metric, Budget: s.budget, Weights: Fig6Weights}
		for _, wd := range Fig6Weights {
			sum, n := 0.0, 0
			for _, name := range opts.circuitSet(s.kind) {
				cfg := opts.flowConfig(s.metric, s.budget)
				cfg.Method = als.MethodDCGWO
				cfg.DepthWeight = wd
				if wd == 0 {
					cfg.DepthWeight = 1e-9 // FlowConfig treats 0 as "default"
				}
				res, err := als.Flow(gen.MustBuild(name), lib, cfg)
				if err != nil {
					return nil, err
				}
				sum += res.RatioCPD
				n++
			}
			series.Ratio = append(series.Ratio, sum/float64(n))
		}
		out = append(out, series)
	}
	return out, nil
}

// ---- Fig. 7: error-constraint sweep ----------------------------------------

// SweepSeries is one curve of Fig. 7/8: average Ratiocpd per x-value for
// one method.
type SweepSeries struct {
	Method als.Method
	X      []float64
	Ratio  []float64
}

// Fig7Methods are the methods the paper plots in Figs. 7 and 8.
func Fig7Methods() []als.Method {
	return []als.Method{als.MethodHEDALS, als.MethodSingleChaseGWO, als.MethodDCGWO}
}

// Fig7 sweeps the error constraint for HEDALS, single-chase GWO and ours;
// part (a) covers random/control circuits under ER, part (b) arithmetic
// circuits under NMED.
func Fig7(opts Opts) (er, nmed []SweepSeries, err error) {
	er, err = errorSweep(opts, gen.RandomControl, core.MetricER, ERConstraints)
	if err != nil {
		return nil, nil, err
	}
	nmed, err = errorSweep(opts, gen.Arithmetic, core.MetricNMED, NMEDConstraints)
	return er, nmed, err
}

func errorSweep(opts Opts, kind gen.Kind, metric core.Metric, budgets []float64) ([]SweepSeries, error) {
	lib := als.NewLibrary()
	methods := opts.Methods
	if methods == nil {
		methods = Fig7Methods()
	}
	var out []SweepSeries
	for _, m := range methods {
		series := SweepSeries{Method: m, X: budgets}
		for _, budget := range budgets {
			sum, n := 0.0, 0
			for _, name := range opts.circuitSet(kind) {
				cfg := opts.flowConfig(metric, budget)
				cfg.Method = m
				res, err := als.Flow(gen.MustBuild(name), lib, cfg)
				if err != nil {
					return nil, err
				}
				sum += res.RatioCPD
				n++
			}
			series.Ratio = append(series.Ratio, sum/float64(n))
		}
		out = append(out, series)
	}
	return out, nil
}

// Fig8 sweeps the post-optimization area constraint (0.8×–1.2× Areacon)
// under the loosest ER and NMED constraints.
func Fig8(opts Opts) (er, nmed []SweepSeries, err error) {
	er, err = areaSweep(opts, gen.RandomControl, core.MetricER, 0.05)
	if err != nil {
		return nil, nil, err
	}
	nmed, err = areaSweep(opts, gen.Arithmetic, core.MetricNMED, 0.0244)
	return er, nmed, err
}

func areaSweep(opts Opts, kind gen.Kind, metric core.Metric, budget float64) ([]SweepSeries, error) {
	lib := als.NewLibrary()
	methods := opts.Methods
	if methods == nil {
		methods = Fig7Methods()
	}
	var out []SweepSeries
	for _, m := range methods {
		series := SweepSeries{Method: m, X: AreaRatios}
		for _, ratio := range AreaRatios {
			sum, n := 0.0, 0
			for _, name := range opts.circuitSet(kind) {
				cfg := opts.flowConfig(metric, budget)
				cfg.Method = m
				cfg.AreaConRatio = ratio
				res, err := als.Flow(gen.MustBuild(name), lib, cfg)
				if err != nil {
					return nil, err
				}
				sum += res.RatioCPD
				n++
			}
			series.Ratio = append(series.Ratio, sum/float64(n))
		}
		out = append(out, series)
	}
	return out, nil
}

// ---- rendering -------------------------------------------------------------

// RenderTable1 prints TABLE I as aligned text.
func RenderTable1(rows []Table1Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-15s %-10s %6s %5s %5s %10s %10s  %s\n",
		"Type", "Circuit", "#gate", "#PI", "#PO", "CPDori(ps)", "Area(um2)", "Description")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-15s %-10s %6d %5d %5d %10.2f %10.2f  %s\n",
			r.Type, r.Circuit, r.Gates, r.PIs, r.POs, r.CPDOri, r.AreaOri, r.Description)
	}
	return b.String()
}

// RenderCompare prints a TABLE II/III-style comparison.
func RenderCompare(t *CompareTable) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Constraint: %s <= %.4g, post-optimization under Areacon\n", t.Metric, t.Budget)
	fmt.Fprintf(&b, "%-10s %10s", "Circuit", "Areacon")
	for _, m := range t.Methods {
		fmt.Fprintf(&b, " | %-18s", m)
	}
	b.WriteString("\n")
	fmt.Fprintf(&b, "%-10s %10s", "", "")
	for range t.Methods {
		fmt.Fprintf(&b, " | %8s %9s", "Ratiocpd", "time(s)")
	}
	b.WriteString("\n")
	for _, row := range t.Rows {
		fmt.Fprintf(&b, "%-10s %10.2f", row.Circuit, row.AreaCon)
		for _, m := range t.Methods {
			c := row.Cells[m]
			fmt.Fprintf(&b, " | %8.4f %9.3f", c.RatioCPD, c.Runtime.Seconds())
		}
		b.WriteString("\n")
	}
	fmt.Fprintf(&b, "%-10s %10s", "Average", "")
	for _, m := range t.Methods {
		fmt.Fprintf(&b, " | %8.4f %9s", t.Avg[m], "")
	}
	b.WriteString("\n")
	return b.String()
}

// RenderSweep prints one Fig. 7/8-style family of curves.
func RenderSweep(title, xlabel string, series []SweepSeries) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n%-20s", title, xlabel)
	if len(series) == 0 {
		return b.String() + "\n"
	}
	for _, x := range series[0].X {
		fmt.Fprintf(&b, " %8.4g", x)
	}
	b.WriteString("\n")
	for _, s := range series {
		fmt.Fprintf(&b, "%-20s", s.Method.String())
		for _, r := range s.Ratio {
			fmt.Fprintf(&b, " %8.4f", r)
		}
		b.WriteString("\n")
	}
	return b.String()
}

// RenderWeights prints the Fig. 6 curves.
func RenderWeights(series []WeightSeries) string {
	var b strings.Builder
	b.WriteString("Fig. 6: average Ratiocpd vs depth weight wd\n")
	if len(series) == 0 {
		return b.String()
	}
	fmt.Fprintf(&b, "%-14s", "wd")
	for _, w := range series[0].Weights {
		fmt.Fprintf(&b, " %8.2f", w)
	}
	b.WriteString("\n")
	for _, s := range series {
		fmt.Fprintf(&b, "%-14s", s.Label)
		for _, r := range s.Ratio {
			fmt.Fprintf(&b, " %8.4f", r)
		}
		b.WriteString("\n")
	}
	return b.String()
}

// ---- paper reference values -------------------------------------------------

// PaperCell is the paper's reported (Ratiocpd, runtime seconds).
type PaperCell struct {
	Ratio   float64
	Seconds float64
}

// PaperTable2 holds the paper's TABLE II values for paper-vs-measured
// reports, keyed by circuit then method name.
var PaperTable2 = map[string]map[string]PaperCell{
	"Cavlc": {"VECBEE-S": {0.9219, 60.03}, "VaACS": {0.8745, 356.89}, "HEDALS": {0.9071, 194.43}, "GWO (single-chase)": {0.8963, 407.25}, "Ours": {0.8602, 310.42}},
	"c880":  {"VECBEE-S": {0.9026, 43.11}, "VaACS": {0.9221, 227.13}, "HEDALS": {0.8913, 104.00}, "GWO (single-chase)": {0.9183, 201.51}, "Ours": {0.8399, 193.86}},
	"c1908": {"VECBEE-S": {0.8679, 65.32}, "VaACS": {0.5166, 235.68}, "HEDALS": {0.3372, 310.42}, "GWO (single-chase)": {0.5021, 307.56}, "Ours": {0.3865, 202.79}},
	"c2670": {"VECBEE-S": {0.6708, 308.16}, "VaACS": {0.8101, 477.92}, "HEDALS": {0.7589, 250.28}, "GWO (single-chase)": {0.7703, 313.99}, "Ours": {0.6314, 339.63}},
	"c3540": {"VECBEE-S": {0.9670, 391.42}, "VaACS": {0.9729, 435.26}, "HEDALS": {0.9203, 373.26}, "GWO (single-chase)": {0.9224, 479.88}, "Ours": {0.8732, 324.59}},
	"c5315": {"VECBEE-S": {0.9113, 1857.32}, "VaACS": {0.8599, 1963.55}, "HEDALS": {0.8270, 1662.08}, "GWO (single-chase)": {0.8165, 1655.07}, "Ours": {0.8034, 1449.37}},
	"c7552": {"VECBEE-S": {0.9262, 1726.27}, "VaACS": {0.9133, 1336.64}, "HEDALS": {0.7391, 1315.85}, "GWO (single-chase)": {0.8877, 1420.32}, "Ours": {0.7063, 1279.18}},
}

// PaperTable3 holds the paper's TABLE III values.
var PaperTable3 = map[string]map[string]PaperCell{
	"Int2float": {"VECBEE-S": {0.9331, 71.23}, "VaACS": {0.5047, 151.73}, "HEDALS": {0.7649, 32.68}, "GWO (single-chase)": {0.6010, 178.30}, "Ours": {0.4496, 132.12}},
	"Adder16":   {"VECBEE-S": {0.9973, 67.20}, "VaACS": {0.5295, 173.85}, "HEDALS": {0.4513, 47.30}, "GWO (single-chase)": {0.5216, 189.01}, "Ours": {0.4275, 167.03}},
	"Max16":     {"VECBEE-S": {0.7087, 93.17}, "VaACS": {0.4209, 189.73}, "HEDALS": {0.4470, 105.97}, "GWO (single-chase)": {0.3928, 277.38}, "Ours": {0.3708, 208.55}},
	"c6288":     {"VECBEE-S": {0.9663, 4410.29}, "VaACS": {0.8696, 3279.62}, "HEDALS": {0.6368, 2563.41}, "GWO (single-chase)": {0.9079, 2991.00}, "Ours": {0.8313, 2103.88}},
	"Adder":     {"VECBEE-S": {0.7814, 1697.37}, "VaACS": {0.8133, 2083.15}, "HEDALS": {0.7110, 1362.70}, "GWO (single-chase)": {0.8008, 1550.03}, "Ours": {0.6917, 1193.71}},
	"Max":       {"VECBEE-S": {0.8809, 2600.78}, "VaACS": {0.8933, 3397.50}, "HEDALS": {0.8355, 2992.08}, "GWO (single-chase)": {0.7517, 3121.44}, "Ours": {0.6799, 2035.62}},
	"Sin":       {"VECBEE-S": {0.9187, 5391.68}, "VaACS": {0.8326, 3872.31}, "HEDALS": {0.7945, 3380.52}, "GWO (single-chase)": {0.8722, 4392.77}, "Ours": {0.7603, 3176.46}},
	"Sqrt":      {"VECBEE-S": {0.7993, 33117.12}, "VaACS": {0.8011, 20160.76}, "HEDALS": {0.7437, 11242.29}, "GWO (single-chase)": {0.7803, 17894.50}, "Ours": {0.7058, 9950.11}},
}

// PaperAverages returns the paper's average Ratiocpd per method for a
// reference table.
func PaperAverages(table map[string]map[string]PaperCell) map[string]float64 {
	sums := map[string]float64{}
	n := 0
	for _, row := range table {
		n++
		for m, cell := range row {
			sums[m] += cell.Ratio
		}
	}
	for m := range sums {
		sums[m] /= float64(n)
	}
	return sums
}
