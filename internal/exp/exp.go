// Package exp regenerates every table and figure of the paper's
// evaluation section on the from-scratch substrate: TABLE I (benchmark
// statistics), TABLE II (5% ER comparison), TABLE III (2.44% NMED
// comparison), Fig. 6 (depth-weight sweep), Fig. 7 (error-constraint
// sweep) and Fig. 8 (area-constraint sweep).
//
// The evaluation is organized as a job graph: every (experiment, circuit,
// method, seed, budget) cell is one Job with a canonical content hash
// (jobs.go), a scheduler runs deduplicated jobs on a bounded worker pool
// with store-backed caching (scheduler.go), and the table/figure
// assemblers and renderers are pure functions over the resulting
// ResultSet (render.go) — so re-runs skip finished cells, output is
// independent of worker count, and quick-scale metrics can be diffed
// exactly against a committed golden file (golden.go).
//
// Absolute numbers differ from the paper (synthetic library and
// generators); the reproduced quantities are the Ratiocpd orderings and
// trend shapes. PaperTable2/PaperTable3 (paper.go) embed the paper's
// reported values so reports can print paper-vs-measured side by side.
package exp

import (
	"fmt"

	als "repro"
	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/sta"
)

// Opts tunes how heavy an experiment run is.
type Opts struct {
	// Scale presets the optimizer budget (quick vs paper-scale).
	Scale als.Scale
	// Circuits restricts the benchmark set (nil = the full TABLE row
	// set for that experiment).
	Circuits []string
	// Methods restricts the optimizer columns (nil = all five).
	Methods []als.Method
	// Seed fixes every stochastic choice.
	Seed int64
	// Population, Iterations, Vectors override the scale preset when
	// non-zero (forwarded to als.FlowConfig).
	Population, Iterations, Vectors int
}

func (o Opts) methods() []als.Method {
	if o.Methods != nil {
		return o.Methods
	}
	return als.AllMethods()
}

func (o Opts) seed() int64 {
	if o.Seed == 0 {
		return 1
	}
	return o.Seed
}

// circuitSet returns the experiment's benchmark names filtered by Opts.
func (o Opts) circuitSet(kind gen.Kind) []string {
	var names []string
	for _, b := range gen.ByKind(kind) {
		names = append(names, b.Name)
	}
	if o.Circuits == nil {
		return names
	}
	allowed := map[string]bool{}
	for _, c := range o.Circuits {
		allowed[c] = true
	}
	var out []string
	for _, n := range names {
		if allowed[n] {
			out = append(out, n)
		}
	}
	return out
}

// The paper's constraint grids.
var (
	// ERConstraints are the Fig. 7(a) error-rate points; the last is the
	// TABLE II setting.
	ERConstraints = []float64{0.01, 0.02, 0.03, 0.04, 0.05}
	// NMEDConstraints are the Fig. 7(b) points; the last is TABLE III's.
	NMEDConstraints = []float64{0.0048, 0.0098, 0.0147, 0.0196, 0.0244}
	// AreaRatios are the Fig. 8 area-constraint sweep points.
	AreaRatios = []float64{0.8, 0.9, 1.0, 1.1, 1.2}
	// Fig6Weights are the depth-weight sweep points of Fig. 6.
	Fig6Weights = []float64{0, 0.2, 0.4, 0.6, 0.8, 1.0}
)

// Experiments lists the valid experiment names in run order.
func Experiments() []string {
	return []string{"table1", "table2", "table3", "fig6", "fig7", "fig8"}
}

// ---- TABLE I -------------------------------------------------------------

// Table1Row is one benchmark-statistics row.
type Table1Row struct {
	Type        string  `json:"type"`
	Circuit     string  `json:"circuit"`
	Gates       int     `json:"gates"`
	PIs         int     `json:"pis"`
	POs         int     `json:"pos"`
	CPDOri      float64 `json:"cpd_ori_ps"`
	AreaOri     float64 `json:"area_um2"`
	Description string  `json:"description"`
}

// Table1 regenerates the benchmark statistics table. It is pure circuit
// analysis — no optimization — so it is not part of the job graph.
func Table1() ([]Table1Row, error) {
	lib := als.NewLibrary()
	var rows []Table1Row
	for _, b := range gen.All() {
		c := b.Build()
		rep, err := sta.Analyze(c, lib)
		if err != nil {
			return nil, fmt.Errorf("exp: %s: %w", b.Name, err)
		}
		s := c.Summarize(lib)
		rows = append(rows, Table1Row{
			Type:        b.Kind.String(),
			Circuit:     b.Name,
			Gates:       s.Gates,
			PIs:         s.PIs,
			POs:         s.POs,
			CPDOri:      rep.CPD,
			AreaOri:     s.Area,
			Description: b.Description,
		})
	}
	return rows, nil
}

// ---- convenience wrappers --------------------------------------------------
//
// The historical one-call-per-table API: build the experiment's job list,
// run it (default worker count, no store) and assemble. Callers that want
// sharding, caching or resume use JobsFor + RunJobs + the *From assemblers
// directly, as cmd/experiments does.

// Table2 reproduces the 5% ER comparison on the random/control circuits.
func Table2(opts Opts) (*CompareTable, error) {
	rs, _, err := RunJobs(Table2Jobs(opts), 0, nil)
	if err != nil {
		return nil, err
	}
	return Table2From(opts, rs)
}

// Table3 reproduces the 2.44% NMED comparison on the arithmetic circuits.
func Table3(opts Opts) (*CompareTable, error) {
	rs, _, err := RunJobs(Table3Jobs(opts), 0, nil)
	if err != nil {
		return nil, err
	}
	return Table3From(opts, rs)
}

// Fig6 sweeps wd under the tightest and loosest ER and NMED constraints.
func Fig6(opts Opts) ([]WeightSeries, error) {
	rs, _, err := RunJobs(Fig6Jobs(opts), 0, nil)
	if err != nil {
		return nil, err
	}
	return Fig6From(opts, rs)
}

// Fig7 sweeps the error constraint for HEDALS, single-chase GWO and ours;
// part (a) covers random/control circuits under ER, part (b) arithmetic
// circuits under NMED.
func Fig7(opts Opts) (er, nmed []SweepSeries, err error) {
	rs, _, err := RunJobs(Fig7Jobs(opts), 0, nil)
	if err != nil {
		return nil, nil, err
	}
	return Fig7From(opts, rs)
}

// Fig8 sweeps the post-optimization area constraint (0.8×–1.2× Areacon)
// under the loosest ER and NMED constraints.
func Fig8(opts Opts) (er, nmed []SweepSeries, err error) {
	rs, _, err := RunJobs(Fig8Jobs(opts), 0, nil)
	if err != nil {
		return nil, nil, err
	}
	return Fig8From(opts, rs)
}

// Fig7Methods are the methods the paper plots in Figs. 7 and 8.
func Fig7Methods() []als.Method {
	return []als.Method{als.MethodHEDALS, als.MethodSingleChaseGWO, als.MethodDCGWO}
}

func (o Opts) sweepMethods() []als.Method {
	if o.Methods != nil {
		return o.Methods
	}
	return Fig7Methods()
}

// fig6Settings are the four Fig. 6 curves: metric × tight/loose budget.
var fig6Settings = []struct {
	label  string
	metric core.Metric
	budget float64
	kind   gen.Kind
}{
	{"ER 1%", core.MetricER, 0.01, gen.RandomControl},
	{"ER 5%", core.MetricER, 0.05, gen.RandomControl},
	{"NMED 0.48%", core.MetricNMED, 0.0048, gen.Arithmetic},
	{"NMED 2.44%", core.MetricNMED, 0.0244, gen.Arithmetic},
}
