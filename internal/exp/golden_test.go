package exp

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// fakeGolden builds a golden reference from synthetic results so diff
// tests need no flow runs.
func fakeGolden(t *testing.T) (*Golden, ResultSet) {
	t.Helper()
	jobs := GoldenJobs(1)[:3]
	rs := ResultSet{}
	for i, j := range jobs {
		if err := rs.Add(j, JobResult{
			RatioCPD:    0.5 + float64(i)/10,
			Err:         0.01 * float64(i),
			Evaluations: 100 + i,
			RuntimeNS:   int64(i) * 1e9, // runtime must never affect diffs
		}); err != nil {
			t.Fatal(err)
		}
	}
	g, err := NewGolden(jobs, rs)
	if err != nil {
		t.Fatal(err)
	}
	return g, rs
}

func TestGoldenJobsSuite(t *testing.T) {
	jobs := GoldenJobs(1)
	if len(jobs) != 15 {
		t.Fatalf("golden suite has %d cells, want 15 (3 circuits × 5 methods)", len(jobs))
	}
	for _, j := range jobs {
		if j.Scale != "quick" {
			t.Fatalf("golden job %s is not quick-scale", j)
		}
		if j.Seed != 1 {
			t.Fatalf("golden job %s seed != 1", j)
		}
	}
	// The suite must be duplicate-free.
	seen := map[string]bool{}
	for _, j := range jobs {
		h, err := j.Hash()
		if err != nil {
			t.Fatal(err)
		}
		if seen[h] {
			t.Fatalf("duplicate golden job %s", j)
		}
		seen[h] = true
	}
}

func TestDiffGoldenPassesOnIdenticalResults(t *testing.T) {
	g, rs := fakeGolden(t)
	if diffs := DiffGolden(g, rs); len(diffs) != 0 {
		t.Fatalf("identical results must produce an empty diff, got %v", diffs)
	}
	// Runtime perturbation must not trip the gate.
	for h, r := range rs {
		r.RuntimeNS += 12345
		rs[h] = r
	}
	if diffs := DiffGolden(g, rs); len(diffs) != 0 {
		t.Fatalf("runtime change must not fail the gate, got %v", diffs)
	}
}

func TestDiffGoldenFailsOnInjectedPerturbation(t *testing.T) {
	g, rs := fakeGolden(t)

	// Perturb one cell's RatioCPD in the last decimal place the store can
	// represent: exact equality must still catch it.
	h, err := g.Cells[1].Job.Hash()
	if err != nil {
		t.Fatal(err)
	}
	r := rs[h]
	r.RatioCPD += 1e-15
	rs[h] = r
	diffs := DiffGolden(g, rs)
	if len(diffs) != 1 || len(diffs[0].Fields) != 1 {
		t.Fatalf("perturbed RatioCPD must produce exactly one single-field diff, got %v", diffs)
	}
	if !strings.Contains(diffs[0].String(), "RatioCPD") || !strings.Contains(diffs[0].String(), g.Cells[1].Job.Circuit) {
		t.Fatalf("diff must name the metric and the cell: %q", diffs[0])
	}

	// An off-by-one evaluation count on the same cell joins that cell's
	// diff as a second field rather than a separate entry.
	r.Evaluations++
	rs[h] = r
	diffs = DiffGolden(g, rs)
	if len(diffs) != 1 || len(diffs[0].Fields) != 2 {
		t.Fatalf("want one diff with 2 fields after also perturbing Evaluations, got %v", diffs)
	}
	if diffs[0].Fields[0].Field != "RatioCPD" || diffs[0].Fields[1].Field != "Evaluations" {
		t.Fatalf("fields misnamed: %+v", diffs[0].Fields)
	}

	// A missing cell is reported rather than silently passing.
	delete(rs, h)
	diffs = DiffGolden(g, rs)
	if len(diffs) != 1 || !diffs[0].Missing || !strings.Contains(diffs[0].String(), "missing") {
		t.Fatalf("missing cell must be one 'missing result' diff, got %v", diffs)
	}
}

// TestDiffGoldenReportsEveryMismatchedCell pins the -check contract: the
// gate never stops at the first bad cell — every mismatch is listed, each
// with a got/want pair per field, in golden-file order.
func TestDiffGoldenReportsEveryMismatchedCell(t *testing.T) {
	g, rs := fakeGolden(t)

	// Perturb cells 0 and 2 (two fields each), leave cell 1 clean.
	for _, idx := range []int{0, 2} {
		h, err := g.Cells[idx].Job.Hash()
		if err != nil {
			t.Fatal(err)
		}
		r := rs[h]
		r.Err += 0.001
		r.Evaluations += 7
		rs[h] = r
	}

	diffs := DiffGolden(g, rs)
	if len(diffs) != 2 {
		t.Fatalf("want both perturbed cells reported, got %d: %v", len(diffs), diffs)
	}
	for i, wantIdx := range []int{0, 2} {
		d := diffs[i]
		wantJob := g.Cells[wantIdx].Job
		if d.Job != wantJob {
			t.Fatalf("diff %d is for %s, want %s (golden-file order)", i, d.Job, wantJob)
		}
		if len(d.Fields) != 2 {
			t.Fatalf("diff %d must carry both mismatched fields, got %+v", i, d.Fields)
		}
		for _, f := range d.Fields {
			if f.Field != "Err" && f.Field != "Evaluations" {
				t.Fatalf("unexpected field %q", f.Field)
			}
			if f.Got == "" || f.Want == "" || f.Got == f.Want {
				t.Fatalf("field %s must carry distinct got/want: %+v", f.Field, f)
			}
		}
	}
}

func TestGoldenFileRoundTrip(t *testing.T) {
	g, _ := fakeGolden(t)
	path := filepath.Join(t.TempDir(), "golden.json")
	if err := WriteGolden(path, g); err != nil {
		t.Fatal(err)
	}
	re, err := LoadGolden(path)
	if err != nil {
		t.Fatal(err)
	}
	if re.Recipe != GoldenRecipe {
		t.Fatalf("recipe header lost: %q", re.Recipe)
	}
	if len(re.Cells) != len(g.Cells) {
		t.Fatalf("cells lost: %d vs %d", len(re.Cells), len(g.Cells))
	}
	for i := range re.Cells {
		if re.Cells[i] != g.Cells[i] {
			t.Fatalf("cell %d round-tripped to %+v, want %+v", i, re.Cells[i], g.Cells[i])
		}
	}
	if diffs := DiffGolden(re, mustResults(t, g)); len(diffs) != 0 {
		t.Fatalf("reloaded golden must match its own cells: %v", diffs)
	}
}

// mustResults rebuilds a ResultSet from a golden's own cells.
func mustResults(t *testing.T, g *Golden) ResultSet {
	t.Helper()
	rs := ResultSet{}
	for _, c := range g.Cells {
		if err := rs.Add(c.Job, JobResult{RatioCPD: c.RatioCPD, Err: c.Err, Evaluations: c.Evaluations}); err != nil {
			t.Fatal(err)
		}
	}
	return rs
}

func TestLoadGoldenRejectsGarbage(t *testing.T) {
	path := filepath.Join(t.TempDir(), "golden.json")
	if _, err := LoadGolden(path); err == nil {
		t.Fatal("absent file must error")
	}
	if err := os.WriteFile(path, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadGolden(path); err == nil {
		t.Fatal("malformed file must error")
	}
	if err := os.WriteFile(path, []byte(`{"_recipe":"x","cells":[]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadGolden(path); err == nil {
		t.Fatal("empty cell list must error")
	}
}
