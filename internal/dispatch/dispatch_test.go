package dispatch

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	als "repro"
	"repro/internal/exp"
	"repro/internal/service"
	"repro/internal/store"
)

// testJobs is the cheapest real cross-experiment matrix: TABLE II on c880
// plus TABLE III on Adder16/Max16, five methods each, tiny budgets — 15
// cells, milliseconds apiece.
func testJobs(seed int64) []exp.Job {
	opts := exp.Opts{
		Scale: als.ScaleQuick, Seed: seed,
		Population: 6, Iterations: 3, Vectors: 512,
		Circuits: []string{"c880", "Adder16", "Max16"},
	}
	return append(exp.Table2Jobs(opts), exp.Table3Jobs(opts)...)
}

// newWorker boots an in-process alsd equivalent and returns its base URL.
func newWorker(t *testing.T, opts service.Options) *httptest.Server {
	t.Helper()
	if opts.Workers == 0 {
		opts.Workers = 2
	}
	if opts.Logf == nil {
		opts.Logf = t.Logf
	}
	s := service.New(opts)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return ts
}

// fastOpts keeps retry/poll pacing test-friendly.
func fastOpts(o Options) Options {
	o.PollInterval = 2 * time.Millisecond
	o.Backoff = 2 * time.Millisecond
	o.MaxBackoff = 10 * time.Millisecond
	o.RetryBudget = 2
	return o
}

// wantResults computes the reference ResultSet on the local scheduler.
func wantResults(t *testing.T, jobs []exp.Job) exp.ResultSet {
	t.Helper()
	rs, _, err := exp.RunJobs(jobs, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	return rs
}

// assertSameMetrics requires got to hold exactly want's cells with
// identical deterministic metrics (RuntimeNS is wall clock and excluded).
func assertSameMetrics(t *testing.T, got, want exp.ResultSet) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("result set has %d cells, want %d", len(got), len(want))
	}
	for h, w := range want {
		g, ok := got[h]
		if !ok {
			t.Fatalf("missing cell %.12s…", h)
		}
		if g.RatioCPD != w.RatioCPD || g.Err != w.Err || g.Evaluations != w.Evaluations {
			t.Fatalf("cell %.12s… = (%v, %v, %d), want (%v, %v, %d)",
				h, g.RatioCPD, g.Err, g.Evaluations, w.RatioCPD, w.Err, w.Evaluations)
		}
	}
}

func TestDistributedMatchesLocalRun(t *testing.T) {
	jobs := testJobs(3)
	want := wantResults(t, jobs)

	w1 := newWorker(t, service.Options{})
	w2 := newWorker(t, service.Options{})
	got, stats, err := Run(context.Background(), jobs, fastOpts(Options{
		Workers: []string{w1.URL, w2.URL},
		Logf:    t.Logf,
	}))
	if err != nil {
		t.Fatal(err)
	}
	assertSameMetrics(t, got, want)
	if stats.Executed != len(want) {
		t.Fatalf("executed = %d, want %d", stats.Executed, len(want))
	}
	total := 0
	for lane, n := range stats.ByLane {
		if lane != w1.URL && lane != w2.URL {
			t.Fatalf("unexpected lane %q", lane)
		}
		total += n
	}
	if total != len(want) {
		t.Fatalf("per-lane counts sum to %d, want %d", total, len(want))
	}
	if len(stats.DeadLanes) != 0 || stats.FailedOver != 0 {
		t.Fatalf("healthy fleet reported deaths: %+v", stats)
	}
}

func TestLocalShareOnlyMatchesLocalRun(t *testing.T) {
	jobs := testJobs(4)
	want := wantResults(t, jobs)
	got, stats, err := Run(context.Background(), jobs, fastOpts(Options{
		LocalJobs: 3,
		Logf:      t.Logf,
	}))
	if err != nil {
		t.Fatal(err)
	}
	assertSameMetrics(t, got, want)
	if stats.ByLane[localLaneName] != len(want) {
		t.Fatalf("local lane ran %d cells, want %d", stats.ByLane[localLaneName], len(want))
	}
}

func TestMixedWorkersAndLocalShare(t *testing.T) {
	jobs := testJobs(5)
	want := wantResults(t, jobs)
	w1 := newWorker(t, service.Options{})
	got, stats, err := Run(context.Background(), jobs, fastOpts(Options{
		Workers:   []string{w1.URL},
		LocalJobs: 2,
		Logf:      t.Logf,
	}))
	if err != nil {
		t.Fatal(err)
	}
	assertSameMetrics(t, got, want)
	if stats.ByLane[w1.URL] == 0 || stats.ByLane[localLaneName] == 0 {
		t.Fatalf("both the worker and the local share must execute cells: %+v", stats.ByLane)
	}
}

// flakyWorker proxies a real worker but starts failing every request with
// 500 once allow requests have been served — a deterministic mid-run
// death.
func flakyWorker(t *testing.T, allow int64) (*httptest.Server, *atomic.Int64) {
	t.Helper()
	real := newWorker(t, service.Options{})
	var served atomic.Int64
	proxy := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if served.Add(1) > allow {
			http.Error(w, `{"error":"injected worker death"}`, http.StatusInternalServerError)
			return
		}
		resp, err := http.Get(real.URL + r.URL.Path)
		if r.Method == http.MethodPost {
			resp, err = http.Post(real.URL+r.URL.Path, "application/json", r.Body)
		}
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadGateway)
			return
		}
		defer resp.Body.Close()
		w.WriteHeader(resp.StatusCode)
		buf := make([]byte, 32<<10)
		for {
			n, err := resp.Body.Read(buf)
			if n > 0 {
				w.Write(buf[:n]) //nolint:errcheck
			}
			if err != nil {
				return
			}
		}
	}))
	t.Cleanup(proxy.Close)
	return proxy, &served
}

// TestFailoverMidRun kills one of two workers after it has accepted work
// (healthz + first submit round succeed, then nothing but 500s): the
// survivor must absorb the dead lane's cells and the run must still match
// the local reference exactly.
func TestFailoverMidRun(t *testing.T) {
	jobs := testJobs(6)
	want := wantResults(t, jobs)
	healthy := newWorker(t, service.Options{})
	flaky, _ := flakyWorker(t, 2) // healthz + one submit, then dead
	got, stats, err := Run(context.Background(), jobs, fastOpts(Options{
		Workers: []string{healthy.URL, flaky.URL},
		Logf:    t.Logf,
	}))
	if err != nil {
		t.Fatal(err)
	}
	assertSameMetrics(t, got, want)
	if len(stats.DeadLanes) != 1 || stats.DeadLanes[0] != flaky.URL {
		t.Fatalf("flaky lane must be reported dead: %+v", stats.DeadLanes)
	}
	if stats.FailedOver == 0 {
		t.Fatal("dead lane owned cells, so failover count must be positive")
	}
	if stats.ByLane[healthy.URL] != len(want) {
		t.Fatalf("survivor must complete every cell: %+v", stats.ByLane)
	}
}

// TestDeadAtStartWorkerFailsOver: a worker that never comes up (connection
// refused from the first request) loses its share to the survivor.
func TestDeadAtStartWorkerFailsOver(t *testing.T) {
	jobs := testJobs(7)
	want := wantResults(t, jobs)
	healthy := newWorker(t, service.Options{})
	dead := httptest.NewServer(http.NotFoundHandler())
	dead.Close() // keep the URL, kill the listener

	got, stats, err := Run(context.Background(), jobs, fastOpts(Options{
		Workers: []string{healthy.URL, dead.URL},
		Logf:    t.Logf,
	}))
	if err != nil {
		t.Fatal(err)
	}
	assertSameMetrics(t, got, want)
	if len(stats.DeadLanes) != 1 || stats.DeadLanes[0] != dead.URL {
		t.Fatalf("dead-at-start lane must be reported: %+v", stats.DeadLanes)
	}
}

// TestAllLanesDeadIsResumable: when every lane dies the run errors, but
// the store keeps what finished, and a local re-run with the same store
// completes the sweep — the distributed path never forfeits -resume.
func TestAllLanesDeadIsResumable(t *testing.T) {
	jobs := testJobs(8)
	st, err := store.Open(filepath.Join(t.TempDir(), "results.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()

	f1, _ := flakyWorker(t, 1) // healthz only, dead at first submit
	f2, _ := flakyWorker(t, 1)
	_, stats, err := Run(context.Background(), jobs, fastOpts(Options{
		Workers: []string{f1.URL, f2.URL},
		Store:   st,
		Logf:    t.Logf,
	}))
	if err == nil {
		t.Fatal("run with every lane dead must fail")
	}
	if !strings.Contains(err.Error(), "unfinished") {
		t.Fatalf("error must report unfinished cells: %v", err)
	}
	if len(stats.DeadLanes) != 2 {
		t.Fatalf("both lanes must be dead: %+v", stats.DeadLanes)
	}

	rs, runStats, err := exp.RunJobs(jobs, 0, st)
	if err != nil {
		t.Fatal(err)
	}
	if runStats.Executed+runStats.Cached != len(rs) {
		t.Fatalf("resume accounting: %+v over %d cells", runStats, len(rs))
	}
	assertSameMetrics(t, rs, wantResults(t, jobs))
}

// TestUnreachableFleetWithoutLocalShareFailsFast: the readiness preflight
// turns a typo'd fleet into an immediate, clear error.
func TestUnreachableFleetWithoutLocalShareFailsFast(t *testing.T) {
	dead := httptest.NewServer(http.NotFoundHandler())
	dead.Close()
	_, _, err := Run(context.Background(), testJobs(9), fastOpts(Options{
		Workers: []string{dead.URL},
		Logf:    t.Logf,
	}))
	if err == nil || !strings.Contains(err.Error(), "healthz") {
		t.Fatalf("unreachable fleet must fail the preflight: %v", err)
	}
}

// TestOverCapOverrideFailsFastWithWorkers: a spec the worker API would
// 400 (here: a population override beyond the service resource cap)
// fails the run up front with the job named — before any worker is
// contacted — while a pure local share still runs it.
func TestOverCapOverrideFailsFastWithWorkers(t *testing.T) {
	jobs := testJobs(13)
	jobs[0].Population = service.MaxPopulation + 1
	dead := httptest.NewServer(http.NotFoundHandler())
	dead.Close() // never contacted: validation precedes the preflight
	_, _, err := Run(context.Background(), jobs[:1], fastOpts(Options{
		Workers: []string{dead.URL},
		Logf:    t.Logf,
	}))
	if err == nil || !strings.Contains(err.Error(), "population") || !strings.Contains(err.Error(), "-workers") {
		t.Fatalf("over-cap spec must fail fast naming the cap: %v", err)
	}
}

func TestNoLanesConfiguredErrors(t *testing.T) {
	_, _, err := Run(context.Background(), testJobs(1), Options{})
	if err == nil || !strings.Contains(err.Error(), "no workers") {
		t.Fatalf("lane-less run must error: %v", err)
	}
}

// TestCachedRunNeedsNoWorkers: a fully cached sweep returns before any
// HTTP traffic — resubmitting a finished sweep costs nothing even when
// the fleet is gone.
func TestCachedRunNeedsNoWorkers(t *testing.T) {
	jobs := testJobs(10)
	st, err := store.Open(filepath.Join(t.TempDir(), "results.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	want, _, err := exp.RunJobs(jobs, 0, st)
	if err != nil {
		t.Fatal(err)
	}

	dead := httptest.NewServer(http.NotFoundHandler())
	dead.Close()
	got, stats, err := Run(context.Background(), jobs, fastOpts(Options{
		Workers: []string{dead.URL},
		Store:   st,
		Logf:    t.Logf,
	}))
	if err != nil {
		t.Fatal(err)
	}
	assertSameMetrics(t, got, want)
	if stats.Executed != 0 || stats.Cached != len(want) {
		t.Fatalf("cached run must not execute: %+v", stats.RunStats)
	}
}

// TestWorkerAmnesiaResubmits: a worker that 404s a submitted hash (table
// eviction, restart without store) gets the cell resubmitted rather than
// losing it.
func TestWorkerAmnesiaResubmits(t *testing.T) {
	jobs := testJobs(11)
	want := wantResults(t, jobs)
	real := newWorker(t, service.Options{})
	var forgot atomic.Bool
	proxy := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method == http.MethodGet && strings.HasPrefix(r.URL.Path, "/v1/jobs/") && forgot.CompareAndSwap(false, true) {
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusNotFound)
			w.Write([]byte(`{"error":"service: unknown job hash"}`)) //nolint:errcheck
			return
		}
		resp, err := http.Get(real.URL + r.URL.Path)
		if r.Method == http.MethodPost {
			resp, err = http.Post(real.URL+r.URL.Path, "application/json", r.Body)
		}
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadGateway)
			return
		}
		defer resp.Body.Close()
		w.WriteHeader(resp.StatusCode)
		buf := make([]byte, 32<<10)
		for {
			n, rerr := resp.Body.Read(buf)
			if n > 0 {
				w.Write(buf[:n]) //nolint:errcheck
			}
			if rerr != nil {
				return
			}
		}
	}))
	t.Cleanup(proxy.Close)

	got, _, err := Run(context.Background(), jobs, fastOpts(Options{
		Workers: []string{proxy.URL},
		Logf:    t.Logf,
	}))
	if err != nil {
		t.Fatal(err)
	}
	if !forgot.Load() {
		t.Fatal("the injected 404 never triggered")
	}
	assertSameMetrics(t, got, want)
}

// TestCancelledRunWrapsContextCanceled mirrors the local scheduler's
// contract so cmd/experiments prints the same -resume hint either way.
func TestCancelledRunWrapsContextCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, _, err := Run(ctx, testJobs(12), fastOpts(Options{
		LocalJobs: 2,
		Logf:      t.Logf,
	}))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled run error = %v, want context.Canceled wrap", err)
	}
}

// TestPartitionIsDeterministicAndTotal: every hash maps to exactly one
// lane, stably.
func TestPartitionIsDeterministicAndTotal(t *testing.T) {
	jobs := testJobs(3)
	for _, lanes := range []int{1, 2, 3, 7} {
		counts := make([]int, lanes)
		for _, j := range jobs {
			h, err := j.Hash()
			if err != nil {
				t.Fatal(err)
			}
			lane := laneForHash(h, lanes)
			if lane != laneForHash(h, lanes) {
				t.Fatal("placement must be deterministic")
			}
			if lane < 0 || lane >= lanes {
				t.Fatalf("lane %d out of range [0,%d)", lane, lanes)
			}
			counts[lane]++
		}
		total := 0
		for _, c := range counts {
			total += c
		}
		if total != len(jobs) {
			t.Fatalf("partition dropped cells: %v over %d jobs", counts, len(jobs))
		}
	}
}
