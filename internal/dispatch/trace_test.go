package dispatch

import (
	"context"
	"testing"

	"repro/internal/service"
	"repro/internal/trace"
)

// A traced two-worker sweep must produce ONE trace ID that spans the
// coordinator's sweep/submit/poll spans and, on every worker that
// executed jobs, remote-parent request spans with job.run children — the
// fleet-wide causal chain the tracing subsystem exists to provide. The
// results must stay bit-identical to the untraced local run.
func TestFleetTraceSpansCoordinatorAndWorkers(t *testing.T) {
	jobs := testJobs(5)
	want := wantResults(t, jobs)

	coord := trace.New(trace.Options{Service: "experiments"})
	workerTracers := []*trace.Tracer{
		trace.New(trace.Options{Service: "w1"}),
		trace.New(trace.Options{Service: "w2"}),
	}
	w1 := newWorker(t, service.Options{Tracer: workerTracers[0]})
	w2 := newWorker(t, service.Options{Tracer: workerTracers[1]})

	got, stats, err := Run(context.Background(), jobs, fastOpts(Options{
		Workers: []string{w1.URL, w2.URL},
		Tracer:  coord,
		Logf:    t.Logf,
	}))
	if err != nil {
		t.Fatal(err)
	}
	assertSameMetrics(t, got, want)

	fleetID := stats.TraceID
	if len(fleetID) != 32 {
		t.Fatalf("stats.TraceID = %q, want a 32-hex trace ID", fleetID)
	}

	// Coordinator side: the sweep root plus at least one submit and one
	// poll span, all under the fleet trace.
	var sawSweep, sawSubmit, sawPoll bool
	for _, r := range coord.Snapshot() {
		if r.TraceID != fleetID {
			t.Fatalf("coordinator span %q escaped the fleet trace: %s", r.Name, r.TraceID)
		}
		switch r.Name {
		case "dispatch.sweep":
			sawSweep = true
			if !r.Root() {
				t.Errorf("dispatch.sweep is not the root: %+v", r)
			}
		case "dispatch.submit":
			sawSubmit = true
		case "dispatch.poll":
			sawPoll = true
		}
	}
	if !sawSweep || !sawSubmit || !sawPoll {
		t.Fatalf("coordinator trace incomplete: sweep=%v submit=%v poll=%v", sawSweep, sawSubmit, sawPoll)
	}

	// Worker side: each lane that executed jobs must carry the SAME trace
	// ID, stitched in via remote-parent request spans, with terminal
	// job.run spans underneath. (Health probes root their own traces —
	// they carry no traceparent — so membership is checked per span.)
	lanes := []string{w1.URL, w2.URL}
	for i, wt := range workerTracers {
		if stats.ByLane[lanes[i]] == 0 {
			continue
		}
		var sawRemote, sawJobRun bool
		for _, r := range wt.Snapshot() {
			if r.TraceID != fleetID {
				continue
			}
			if r.RemoteParent {
				sawRemote = true
			}
			if r.Name == "job.run" && r.Attrs["status"] != nil {
				sawJobRun = true
			}
		}
		if !sawRemote || !sawJobRun {
			t.Errorf("worker %d (%d jobs) missing fleet spans: remote=%v job.run=%v",
				i+1, stats.ByLane[lanes[i]], sawRemote, sawJobRun)
		}
	}
}
