package dispatch

import "repro/internal/telemetry"

// Metrics is the dispatcher's instrument set. Unlike the serving stack,
// where one Server owns one registry for its whole lifetime, dispatch
// runs are transient — a coordinator may execute several sweeps in one
// process — so the instruments are created once with NewMetrics and
// handed to every Run via Options.Metrics; counters then accumulate
// across runs on the same registry without re-registration panics.
//
// A nil *Metrics is valid everywhere and records nothing, so library
// callers that don't scrape pay only a nil check per event.
type Metrics struct {
	cellsCompleted *telemetry.CounterVec // lane
	retries        *telemetry.CounterVec // lane
	resubmits      *telemetry.CounterVec // lane
	failovers      *telemetry.Counter
	deadLanes      *telemetry.Counter
	cellsRemaining *telemetry.Gauge
}

// NewMetrics registers the dispatch instruments on reg. Call once per
// registry; the returned Metrics may be shared by any number of
// sequential or concurrent Runs.
func NewMetrics(reg *telemetry.Registry) *Metrics {
	return &Metrics{
		cellsCompleted: reg.CounterVec("als_dispatch_cells_completed_total",
			"Sweep cells finished, by lane (worker URL or \"local\").", "lane"),
		retries: reg.CounterVec("als_dispatch_retries_total",
			"Transport-level failures that were retried, by lane.", "lane"),
		resubmits: reg.CounterVec("als_dispatch_resubmits_total",
			"Cells requeued after a worker forgot or cancelled them, by lane.", "lane"),
		failovers: reg.Counter("als_dispatch_failovers_total",
			"Cells reassigned away from a dead lane."),
		deadLanes: reg.Counter("als_dispatch_dead_lanes_total",
			"Lanes that exhausted their retry budget."),
		cellsRemaining: reg.Gauge("als_dispatch_cells_remaining",
			"Unfinished cells of the dispatch run(s) in flight."),
	}
}

func (m *Metrics) runStarted(pending int) {
	if m != nil {
		m.cellsRemaining.Add(int64(pending))
	}
}

func (m *Metrics) runEnded(leftover int64) {
	if m != nil {
		m.cellsRemaining.Add(-leftover)
	}
}

func (m *Metrics) cellCompleted(lane string) {
	if m != nil {
		m.cellsCompleted.With(lane).Inc()
		m.cellsRemaining.Dec()
	}
}

func (m *Metrics) retried(lane string) {
	if m != nil {
		m.retries.With(lane).Inc()
	}
}

func (m *Metrics) resubmitted(lane string) {
	if m != nil {
		m.resubmits.With(lane).Inc()
	}
}

func (m *Metrics) laneDead(failedOver int) {
	if m != nil {
		m.deadLanes.Inc()
		m.failovers.Add(int64(failedOver))
	}
}
