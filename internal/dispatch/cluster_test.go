package dispatch

import (
	"context"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"

	"repro/internal/service"
	"repro/internal/store"
	"repro/internal/telemetry"
)

// TestResubmitConsultsStoreFirst: when a worker 404s a hash the shared
// store already holds (another party computed it), the lane must complete
// the cell from the store instead of resubmitting — zero
// als_dispatch_resubmits_total, identical results. The proxy simulates
// the race by writing the reference result into the store at the moment
// it fakes the worker's amnesia.
func TestResubmitConsultsStoreFirst(t *testing.T) {
	jobs := testJobs(21)
	want := wantResults(t, jobs)
	st, err := store.Open(filepath.Join(t.TempDir(), "results.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()

	real := newWorker(t, service.Options{})
	var forgot atomic.Bool
	proxy := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method == http.MethodGet && strings.HasPrefix(r.URL.Path, "/v1/jobs/") && forgot.CompareAndSwap(false, true) {
			// Another fleet member "already computed" this hash: persist it,
			// then deny all knowledge.
			hash := strings.TrimPrefix(r.URL.Path, "/v1/jobs/")
			if res, ok := want[hash]; ok {
				if err := st.Put(hash, res); err != nil {
					t.Errorf("store put: %v", err)
				}
			}
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusNotFound)
			w.Write([]byte(`{"error":"service: unknown job hash"}`)) //nolint:errcheck
			return
		}
		resp, err := http.Get(real.URL + r.URL.Path)
		if r.Method == http.MethodPost {
			resp, err = http.Post(real.URL+r.URL.Path, "application/json", r.Body)
		}
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadGateway)
			return
		}
		defer resp.Body.Close()
		w.WriteHeader(resp.StatusCode)
		io.Copy(w, resp.Body) //nolint:errcheck
	}))
	t.Cleanup(proxy.Close)

	reg := telemetry.NewRegistry()
	m := NewMetrics(reg)
	got, _, err := Run(context.Background(), jobs, fastOpts(Options{
		Workers: []string{proxy.URL},
		Store:   st,
		Metrics: m,
		Logf:    t.Logf,
	}))
	if err != nil {
		t.Fatal(err)
	}
	if !forgot.Load() {
		t.Fatal("the injected 404 never triggered")
	}
	assertSameMetrics(t, got, want)
	if n := m.resubmits.With(proxy.URL).Value(); n != 0 {
		t.Fatalf("store-resolvable 404 caused %d resubmit(s), want 0", n)
	}
}

// TestDeadBaseIsNotReprobed: once any lane declares a base dead, a
// sibling lane against the same base reports Hopeless, so its transient
// handling gives up on the first failure instead of burning a fresh
// retry budget against a daemon already known to be gone.
func TestDeadBaseIsNotReprobed(t *testing.T) {
	s := &shared{
		opts:      Options{Logf: t.Logf}.withDefaults(),
		failover:  make(chan *Task, 4),
		done:      make(chan struct{}),
		stats:     &Stats{ByLane: map[string]int{}},
		deadBases: map[string]bool{},
	}
	s.ctx, s.cancel = context.WithCancel(context.Background())
	defer s.cancel()
	s.live.Store(2)
	s.remaining.Store(1)

	r := &runSched{s: s, name: "http://w1:8080#2", base: "http://w1:8080"}
	if r.Hopeless() {
		t.Fatal("base must not start out dead")
	}
	s.laneDied("http://w1:8080#1", "http://w1:8080", errors.New("retry budget exhausted"), nil)
	if !r.Hopeless() {
		t.Fatal("sibling lane must see the base declared dead")
	}
	other := &runSched{s: s, name: "http://w2:8080", base: "http://w2:8080"}
	if other.Hopeless() {
		t.Fatal("an unrelated base must stay probeable")
	}
}

// TestLocalLaneNeverHopeless: the in-process lane has no base URL and
// must never inherit a worker's death sentence.
func TestLocalLaneNeverHopeless(t *testing.T) {
	s := &shared{
		opts:      Options{Logf: t.Logf}.withDefaults(),
		failover:  make(chan *Task, 4),
		done:      make(chan struct{}),
		stats:     &Stats{ByLane: map[string]int{}},
		deadBases: map[string]bool{},
	}
	s.ctx, s.cancel = context.WithCancel(context.Background())
	defer s.cancel()
	s.live.Store(2)
	s.remaining.Store(1)
	s.laneDied("http://w1:8080", "http://w1:8080", errors.New("dead"), nil)

	local := &runSched{s: s, name: "local", base: ""}
	if local.Hopeless() {
		t.Fatal("the local lane must never be hopeless")
	}
}
