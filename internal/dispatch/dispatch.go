// Package dispatch fans an experiment job set out to a fleet of alsd
// workers over HTTP, assembling the same ResultSet a single-machine run
// produces. It is the horizontal-scale-out layer above internal/exp's job
// graph: every cell is a pure function of its content hash, so where it
// runs cannot change what it returns — the coordinator only decides
// placement.
//
// The deduplicated, cache-filtered job set (exp.PendingJobs) is
// partitioned across lanes by content hash; a lane is either one remote
// worker URL (driven through the worker job API of internal/service:
// batch submit, poll by hash) or one local executor slot (the -jobs
// "local share"). Each finished cell streams into the persistent store
// the moment its lane observes it, so an interrupted or failed
// distributed run resumes exactly like a local one. Transient transport
// failures retry with capped exponential backoff; a lane that exhausts
// its retry budget is declared dead and its unfinished cells fail over to
// the surviving lanes. The run fails only when a cell itself fails
// (deterministic — it would fail anywhere) or when no live lane remains.
//
// Runs are observable two ways: Options.Logf receives lane lifecycle and
// failover events as text, and Options.Metrics (created once per
// telemetry.Registry with NewMetrics, shared across runs) exports
// per-lane throughput, retries, failovers and the remaining-cell gauge —
// what `experiments -metrics-addr` serves during a sweep.
package dispatch

import (
	"bytes"
	"context"
	crand "crypto/rand"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	als "repro"
	"repro/internal/cell"
	"repro/internal/exp"
	"repro/internal/service"
	"repro/internal/store"
	"repro/internal/trace"
)

// Options configures one distributed run.
type Options struct {
	// Workers are alsd base URLs (e.g. http://h1:8080); each becomes one
	// lane. A URL listed twice becomes two lanes feeding the same daemon.
	Workers []string
	// LocalJobs > 0 adds that many local executor lanes, so the
	// coordinator machine contributes its own cores to the sweep.
	LocalJobs int
	// Store persists finished cells as they stream back (nil disables
	// persistence; cached cells are skipped up front either way).
	Store *store.Store
	// Lib is the cell library for local lanes (default: the synthetic
	// 28nm library).
	Lib *cell.Library
	// Client issues all worker HTTP requests (default: 30s timeout).
	Client *http.Client
	// PollInterval spaces result polls per lane (default 50ms).
	PollInterval time.Duration
	// SubmitBatch caps job specs per submission (default 16, so a worker
	// at the default 64-deep queue absorbs several lanes' bursts).
	SubmitBatch int
	// RetryBudget is how many consecutive transport failures a lane
	// tolerates before it is declared dead (default 4).
	RetryBudget int
	// Backoff is the first retry delay; it doubles per consecutive
	// failure up to MaxBackoff (defaults 100ms and 2s).
	Backoff    time.Duration
	MaxBackoff time.Duration
	// Logf, when non-nil, receives lane lifecycle and failover events.
	Logf func(format string, args ...any)
	// Metrics, when non-nil, records per-lane throughput, retries and
	// failovers (create once with NewMetrics and share across runs).
	Metrics *Metrics
	// Tracer records the sweep as one trace: a root span per run, a child
	// span per worker submit/poll round trip (each carrying a traceparent
	// header the worker's middleware continues, so the whole fleet shares
	// one trace ID), and the local lanes' job spans. Nil disables tracing;
	// the X-Request-Id run correlation below works either way.
	Tracer *trace.Tracer
}

func (o Options) withDefaults() Options {
	if o.Client == nil {
		o.Client = &http.Client{Timeout: 30 * time.Second}
	}
	if o.PollInterval <= 0 {
		o.PollInterval = 50 * time.Millisecond
	}
	if o.SubmitBatch <= 0 {
		o.SubmitBatch = 16
	}
	if o.SubmitBatch > service.MaxBatchJobs {
		o.SubmitBatch = service.MaxBatchJobs
	}
	if o.RetryBudget <= 0 {
		o.RetryBudget = 4
	}
	if o.Backoff <= 0 {
		o.Backoff = 100 * time.Millisecond
	}
	if o.MaxBackoff <= 0 {
		o.MaxBackoff = 2 * time.Second
	}
	if o.Lib == nil {
		o.Lib = als.NewLibrary()
	}
	if o.Logf == nil {
		o.Logf = func(string, ...any) {}
	}
	return o
}

// Stats extends the scheduler's counters with placement detail.
type Stats struct {
	exp.RunStats
	// ByLane counts completed cells per lane name ("local" aggregates
	// every local slot).
	ByLane map[string]int
	// FailedOver counts cells reassigned away from a dead lane.
	FailedOver int
	// DeadLanes lists lanes that exhausted their retry budget.
	DeadLanes []string
	// TraceID is the fleet-wide trace of this run ("" without a Tracer):
	// every coordinator span and every worker-side request span of the
	// sweep shares it, so one /debug/traces?trace= lookup per host
	// reassembles the whole run.
	TraceID string
}

// task is one pending cell and its cache key.
type task struct {
	job  exp.Job
	hash string
}

// localLaneName aggregates every local executor slot in Stats.ByLane.
const localLaneName = "local"

// errPermanent marks failures that must abort the whole run rather than
// fail over: an invalid spec, a deterministic job failure, a store write
// error. The run error itself is recorded via shared.fail.
var errPermanent = errors.New("dispatch: permanent failure")

// shared is the state every lane goroutine works against.
type shared struct {
	ctx    context.Context
	cancel context.CancelFunc
	opts   Options
	// span is the sweep's root span (nil without a Tracer); runID is the
	// run's log-correlation token — the trace ID when tracing, a random
	// "sweep-…" tag otherwise — forwarded as X-Request-Id on every worker
	// request so worker logs grep by coordinator run either way.
	span  *trace.Span
	runID string
	// failover receives the unfinished cells of dead lanes; its capacity
	// is the full pending count, so pushes never block.
	failover chan *task
	// done closes when remaining reaches zero.
	done      chan struct{}
	remaining atomic.Int64
	live      atomic.Int64

	mu       sync.Mutex
	rs       exp.ResultSet
	stats    *Stats
	firstErr error
}

// Run executes jobs across the configured lanes and returns the ResultSet
// keyed by job hash — element-for-element identical to what
// exp.RunJobsContext computes for the same list, wall-clock fields aside.
// On cancellation the returned error wraps ctx.Err(), and the store holds
// every cell that finished, so the run is resumable.
func Run(ctx context.Context, jobs []exp.Job, opts Options) (exp.ResultSet, Stats, error) {
	opts = opts.withDefaults()
	stats := Stats{ByLane: map[string]int{}}
	if len(opts.Workers) == 0 && opts.LocalJobs <= 0 {
		return nil, stats, errors.New("dispatch: no workers and no local share")
	}

	rs := exp.ResultSet{}
	pending, hashes, runStats, err := exp.PendingJobs(jobs, opts.Store, rs)
	if err != nil {
		return nil, stats, err
	}
	stats.RunStats = runStats
	if len(pending) == 0 {
		return rs, stats, nil
	}

	// One span roots the whole sweep — as a child when the caller already
	// carries one on ctx (cmd/experiments roots a per-invocation span),
	// fresh otherwise. Its trace ID doubles as the run's log-correlation
	// token; without a tracer a random tag fills that role.
	var sweep *trace.Span
	if parent := trace.FromContext(ctx); parent != nil {
		sweep = parent.StartChild("dispatch.sweep")
	} else {
		sweep = opts.Tracer.StartRoot("dispatch.sweep")
	}
	sweep.SetAttr("jobs", len(jobs))
	sweep.SetAttr("pending", len(pending))
	sweep.SetAttr("workers", len(opts.Workers))
	sweep.SetAttr("local_jobs", opts.LocalJobs)
	runID := sweep.TraceID()
	stats.TraceID = runID
	if runID == "" {
		var b [8]byte
		crand.Read(b[:]) //nolint:errcheck // never fails on supported platforms
		runID = "sweep-" + hex.EncodeToString(b[:])
	}
	defer func() {
		sweep.SetAttr("executed", stats.Executed)
		sweep.SetAttr("failed_over", stats.FailedOver)
		sweep.End()
	}()

	// The worker job API enforces the service's untrusted-input resource
	// caps; a spec beyond them (e.g. a -pop override over MaxPopulation)
	// would 400 the first batch that carries it. Check the whole set up
	// front so the run fails immediately with the offending job named,
	// instead of mid-sweep — but only when remote lanes exist: a pure
	// local share runs anything the local scheduler would.
	if len(opts.Workers) > 0 {
		for _, j := range pending {
			if err := service.ValidateJobSpec(j); err != nil {
				return nil, stats, fmt.Errorf("dispatch: job %s would be rejected by the worker API: %w (lower the override or run without -workers)", j, err)
			}
		}
	}

	// Readiness preflight: one concurrent /healthz probe per worker
	// (unreachable hosts cost one shared 2s deadline, not 2s each).
	// Unreachable workers still get a lane (a transient outage heals
	// under the lane's own retry budget, and a truly dead worker's share
	// fails over), but when nothing at all is reachable the run aborts
	// with a clear error instead of burning the full retry budget
	// everywhere.
	var (
		reachable int32
		probeWG   sync.WaitGroup
	)
	for _, w := range opts.Workers {
		probeWG.Add(1)
		go func(w string) {
			defer probeWG.Done()
			if err := probeHealth(ctx, opts.Client, w, runID); err != nil {
				opts.Logf("dispatch: worker %s not ready: %v", w, err)
				return
			}
			atomic.AddInt32(&reachable, 1)
		}(w)
	}
	probeWG.Wait()
	if reachable == 0 && opts.LocalJobs <= 0 {
		return nil, stats, fmt.Errorf("dispatch: none of the %d worker(s) answered /healthz and no local share is configured", len(opts.Workers))
	}

	// Local lanes run under the sweep span, so their job.run (and
	// per-generation) spans join the same trace as the remote workers'.
	runCtx, cancel := context.WithCancel(trace.ContextWith(ctx, sweep))
	defer cancel()
	s := &shared{
		ctx:      runCtx,
		cancel:   cancel,
		opts:     opts,
		span:     sweep,
		runID:    runID,
		failover: make(chan *task, len(pending)),
		done:     make(chan struct{}),
		rs:       rs,
		stats:    &stats,
	}
	s.remaining.Store(int64(len(pending)))
	opts.Metrics.runStarted(len(pending))
	defer func() { opts.Metrics.runEnded(s.remaining.Load()) }()

	// Partition by content hash: lane i owns every cell whose hash maps
	// to it. Placement is deterministic for a given fleet shape, but has
	// no bearing on results — only on who computes what first.
	laneCount := len(opts.Workers) + max(opts.LocalJobs, 0)
	assigned := make([][]*task, laneCount)
	for i := range pending {
		t := &task{job: pending[i], hash: hashes[i]}
		lane := laneForHash(t.hash, laneCount)
		assigned[lane] = append(assigned[lane], t)
	}

	s.live.Store(int64(laneCount))
	var wg sync.WaitGroup
	for i, url := range opts.Workers {
		wg.Add(1)
		go func(url string, own []*task) {
			defer wg.Done()
			l := &remoteLane{s: s, name: url, base: strings.TrimRight(url, "/")}
			l.run(own)
		}(url, assigned[i])
	}
	// Each local slot is its own lane; the flow-internal evaluation pool
	// is split so total local parallelism stays GOMAXPROCS-bounded,
	// mirroring the local scheduler.
	evalWorkers := 0
	if opts.LocalJobs > 1 {
		evalWorkers = runtime.GOMAXPROCS(0) / opts.LocalJobs
		if evalWorkers < 1 {
			evalWorkers = 1
		}
	}
	for i := 0; i < opts.LocalJobs; i++ {
		wg.Add(1)
		go func(own []*task) {
			defer wg.Done()
			runLocalLane(s, evalWorkers, own)
		}(assigned[len(opts.Workers)+i])
	}
	wg.Wait()

	if s.remaining.Load() == 0 {
		if len(stats.DeadLanes) > 0 {
			opts.Logf("dispatch: completed despite %d dead lane(s); %d cell(s) failed over", len(stats.DeadLanes), stats.FailedOver)
		}
		opts.Logf("dispatch: %d cell(s) done: %s", stats.Executed, laneSummary(stats.ByLane))
		return s.rs, stats, nil
	}
	if err := ctx.Err(); err != nil {
		return nil, stats, fmt.Errorf("dispatch: run cancelled: %w", err)
	}
	s.mu.Lock()
	err = s.firstErr
	s.mu.Unlock()
	if err == nil {
		err = fmt.Errorf("dispatch: %d cell(s) unfinished", s.remaining.Load())
	}
	return nil, stats, err
}

// laneForHash maps a content hash onto [0, lanes) via its leading hex
// digits.
func laneForHash(hash string, lanes int) int {
	const digits = 15 // 60 bits, always within uint64
	h := hash
	if len(h) > digits {
		h = h[:digits]
	}
	v, err := strconv.ParseUint(h, 16, 64)
	if err != nil {
		// Content hashes are hex by construction; fall back to a byte sum
		// for anything else rather than crashing placement.
		for i := 0; i < len(hash); i++ {
			v += uint64(hash[i])
		}
	}
	return int(v % uint64(lanes))
}

func laneSummary(byLane map[string]int) string {
	parts := make([]string, 0, len(byLane))
	for lane, n := range byLane {
		parts = append(parts, fmt.Sprintf("%s=%d", lane, n))
	}
	if len(parts) == 0 {
		return "(nothing executed)"
	}
	sort.Strings(parts)
	return strings.Join(parts, " ")
}

// probeHealth issues one short-deadline readiness probe, tagged with the
// run ID so even the preflight is greppable in worker logs.
func probeHealth(ctx context.Context, client *http.Client, base, runID string) error {
	probeCtx, cancel := context.WithTimeout(ctx, 2*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(probeCtx, http.MethodGet, strings.TrimRight(base, "/")+"/healthz", nil)
	if err != nil {
		return err
	}
	req.Header.Set("X-Request-Id", runID)
	resp, err := client.Do(req)
	if err != nil {
		return err
	}
	io.Copy(io.Discard, resp.Body) //nolint:errcheck // drain for connection reuse
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("healthz: HTTP %d", resp.StatusCode)
	}
	return nil
}

// ---- shared-state transitions ----------------------------------------------

// stamp adds the correlation headers every worker request carries: the
// run ID for log grepping (meaningful with tracing on or off) and, when
// sp is a live span, the traceparent the worker's middleware continues.
func (s *shared) stamp(req *http.Request, sp *trace.Span) {
	req.Header.Set("X-Request-Id", s.runID)
	if sc := sp.Context(); sc.Valid() {
		req.Header.Set("traceparent", sc.Traceparent())
	}
}

// complete records one finished cell: persist first (a cell the store
// never saw must not count as done for -resume), then publish.
func (s *shared) complete(lane string, t *task, r exp.JobResult) error {
	if s.opts.Store != nil {
		putSpan := s.span.StartChild("store.put")
		putSpan.SetAttr("lane", lane)
		putSpan.SetAttr("hash", t.hash)
		err := s.opts.Store.Put(t.hash, r)
		putSpan.End()
		if err != nil {
			return err
		}
	}
	s.mu.Lock()
	s.rs[t.hash] = r
	s.stats.Executed++
	s.stats.ByLane[lane]++
	s.mu.Unlock()
	s.opts.Metrics.cellCompleted(lane)
	if s.remaining.Add(-1) == 0 {
		close(s.done)
	}
	return nil
}

// fail records the run's first fatal error and cancels every lane.
func (s *shared) fail(err error) {
	s.mu.Lock()
	if s.firstErr == nil {
		s.firstErr = err
	}
	s.mu.Unlock()
	s.cancel()
}

// laneDied pushes a dead lane's unfinished cells to the failover pool; if
// it was the last live lane and work remains, the run fails (the store
// already holds every finished cell, so a -resume completes it later).
func (s *shared) laneDied(name string, cause error, leftovers []*task) {
	s.opts.Logf("dispatch: lane %s dead (%v); failing over %d cell(s)", name, cause, len(leftovers))
	s.opts.Metrics.laneDead(len(leftovers))
	s.mu.Lock()
	s.stats.DeadLanes = append(s.stats.DeadLanes, name)
	s.stats.FailedOver += len(leftovers)
	s.mu.Unlock()
	for _, t := range leftovers {
		s.failover <- t
	}
	if s.live.Add(-1) == 0 && s.remaining.Load() > 0 {
		s.fail(fmt.Errorf("dispatch: every lane is dead with %d cell(s) unfinished (last: %s: %w)", s.remaining.Load(), name, cause))
	}
}

// next pops the lane's own queue, then blocks on the failover pool until
// a task arrives, the run completes, or the run is cancelled.
func (s *shared) next(own *[]*task) (*task, bool) {
	if len(*own) > 0 {
		t := (*own)[0]
		*own = (*own)[1:]
		return t, true
	}
	select {
	case <-s.done:
		return nil, false
	case <-s.ctx.Done():
		return nil, false
	case t := <-s.failover:
		return t, true
	}
}

// sleep waits d, returning early on completion or cancellation.
func (s *shared) sleep(d time.Duration) {
	timer := time.NewTimer(d)
	defer timer.Stop()
	select {
	case <-timer.C:
	case <-s.done:
	case <-s.ctx.Done():
	}
}

// ---- local lane ------------------------------------------------------------

// runLocalLane executes cells in-process, one at a time. A job error here
// is deterministic (the same cell fails identically everywhere), so it
// aborts the run rather than failing over.
func runLocalLane(s *shared, evalWorkers int, own []*task) {
	for {
		t, ok := s.next(&own)
		if !ok {
			return
		}
		r, err := t.job.RunContext(s.ctx, s.opts.Lib, evalWorkers)
		if err != nil {
			if s.ctx.Err() == nil {
				s.fail(fmt.Errorf("dispatch: local: %w", err))
			}
			return
		}
		if err := s.complete(localLaneName, t, r); err != nil {
			s.fail(err)
			return
		}
	}
}

// ---- remote lane -----------------------------------------------------------

// remoteLane drives one worker URL: submit batches of specs, poll results
// by hash, stream completions back. All fields are goroutine-local.
type remoteLane struct {
	s    *shared
	name string
	base string
	// unsubmitted holds cells the worker has not accepted yet;
	// outstanding maps accepted cells by hash until a poll resolves them.
	unsubmitted []*task
	outstanding map[string]*task
	// failures counts consecutive transport-level failures; any success
	// resets it, exceeding the retry budget kills the lane.
	failures int
	// resubmits counts cells this lane requeued because the worker forgot
	// or cancelled them. Only the first one logs a line (a worker restart
	// typically forgets a whole batch at once, and per-cell lines buried
	// the interesting logs); the rest ride the als_dispatch_resubmits_total
	// counter and the lane's exit summary.
	resubmits int
}

func (l *remoteLane) run(own []*task) {
	l.unsubmitted = own
	l.outstanding = map[string]*task{}
	defer func() {
		if l.resubmits > 1 {
			l.s.opts.Logf("dispatch: lane %s resubmitted %d cells total", l.name, l.resubmits)
		}
	}()
	for {
		if l.idle() {
			t, ok := l.s.next(&l.unsubmitted)
			if !ok {
				return
			}
			l.unsubmitted = append(l.unsubmitted, t)
			l.drainFailover()
		}
		if err := l.step(); err != nil {
			if errors.Is(err, errPermanent) {
				return // the run itself is failing; nothing to fail over to
			}
			l.die(err)
			return
		}
		if l.s.ctx.Err() != nil {
			return
		}
	}
}

func (l *remoteLane) idle() bool {
	return len(l.unsubmitted) == 0 && len(l.outstanding) == 0
}

// drainFailover opportunistically batches up additional failed-over cells
// behind the one next() delivered.
func (l *remoteLane) drainFailover() {
	for len(l.unsubmitted) < l.s.opts.SubmitBatch {
		select {
		case t := <-l.s.failover:
			l.unsubmitted = append(l.unsubmitted, t)
		default:
			return
		}
	}
}

// step advances the lane one round: submit what the worker will take,
// sweep outstanding results, pace the next poll.
func (l *remoteLane) step() error {
	if len(l.unsubmitted) > 0 {
		if err := l.submit(); err != nil {
			return err
		}
	}
	if len(l.outstanding) > 0 {
		if err := l.poll(); err != nil {
			return err
		}
		if len(l.outstanding) > 0 {
			l.s.sleep(l.s.opts.PollInterval)
		}
	}
	return nil
}

// transient handles one transport-level failure: back off and retry until
// the consecutive-failure budget is spent, then report the lane dead.
func (l *remoteLane) transient(op string, err error) error {
	l.failures++
	if l.failures > l.s.opts.RetryBudget {
		return fmt.Errorf("%s failed %d consecutive time(s): %w", op, l.failures, err)
	}
	l.s.opts.Metrics.retried(l.name)
	backoff := l.s.opts.Backoff << (l.failures - 1)
	if backoff > l.s.opts.MaxBackoff {
		backoff = l.s.opts.MaxBackoff
	}
	l.s.opts.Logf("dispatch: lane %s: %s failed (attempt %d/%d, retrying in %v): %v",
		l.name, op, l.failures, l.s.opts.RetryBudget+1, backoff, err)
	l.s.sleep(backoff)
	return nil
}

// die hands every cell this lane still owns to the failover pool.
func (l *remoteLane) die(cause error) {
	leftovers := append([]*task(nil), l.unsubmitted...)
	for _, t := range l.outstanding {
		leftovers = append(leftovers, t)
	}
	l.s.laneDied(l.name, cause, leftovers)
}

// submit offers the worker one batch of specs. The accepted prefix moves
// to outstanding; on queue-full the remainder simply waits for a later
// round (the worker is alive, just saturated), while draining and
// validation failures are terminal for the lane and run respectively.
func (l *remoteLane) submit() error {
	n := min(len(l.unsubmitted), l.s.opts.SubmitBatch)
	batch := l.unsubmitted[:n]
	jobs := make([]exp.Job, n)
	for i, t := range batch {
		jobs[i] = t.job
	}
	body, err := json.Marshal(service.BatchRequest{Jobs: jobs})
	if err != nil {
		l.s.fail(fmt.Errorf("dispatch: marshal batch: %w", err))
		return errPermanent
	}
	req, err := http.NewRequestWithContext(l.s.ctx, http.MethodPost, l.base+"/v1/jobs", bytes.NewReader(body))
	if err != nil {
		l.s.fail(err)
		return errPermanent
	}
	req.Header.Set("Content-Type", "application/json")
	sp := l.s.span.StartChild("dispatch.submit")
	sp.SetAttr("lane", l.name)
	sp.SetAttr("jobs", n)
	l.s.stamp(req, sp)
	resp, err := l.s.opts.Client.Do(req)
	if err != nil {
		sp.SetAttr("error", err.Error())
		sp.End()
		if l.s.ctx.Err() != nil {
			return nil
		}
		return l.transient("submit", err)
	}
	raw, err := io.ReadAll(io.LimitReader(resp.Body, 4<<20))
	resp.Body.Close()
	sp.SetAttr("http.status", resp.StatusCode)
	sp.End()
	if err != nil {
		return l.transient("submit", err)
	}

	switch resp.StatusCode {
	case http.StatusOK, http.StatusServiceUnavailable:
		var br service.BatchResponse
		if err := json.Unmarshal(raw, &br); err != nil {
			return l.transient("submit", fmt.Errorf("undecodable response: %w", err))
		}
		if len(br.Jobs) > len(batch) {
			return l.transient("submit", fmt.Errorf("worker accepted %d of %d jobs", len(br.Jobs), len(batch)))
		}
		for i, v := range br.Jobs {
			if v.Hash != batch[i].hash {
				l.s.fail(fmt.Errorf("dispatch: %s: job %s hashed to %.12s… on the worker, %.12s… here — incompatible worker build",
					l.name, batch[i].job, v.Hash, batch[i].hash))
				return errPermanent
			}
			l.outstanding[v.Hash] = batch[i]
		}
		l.unsubmitted = l.unsubmitted[len(br.Jobs):]
		if resp.StatusCode == http.StatusServiceUnavailable {
			if br.Reason == service.ReasonDraining {
				return fmt.Errorf("worker is draining: %s", br.Error)
			}
			// Queue full: not a failure — the worker is alive and will make
			// room as it finishes cells. Let the poll pace the next attempt.
			l.failures = 0
			if len(l.outstanding) == 0 {
				l.s.sleep(l.s.opts.PollInterval)
			}
			return nil
		}
		l.failures = 0
		return nil
	case http.StatusBadRequest:
		l.s.fail(fmt.Errorf("dispatch: %s rejected batch: %s", l.name, errorBody(raw)))
		return errPermanent
	default:
		return l.transient("submit", fmt.Errorf("HTTP %d: %s", resp.StatusCode, errorBody(raw)))
	}
}

// poll sweeps the outstanding set once. Finished cells complete, failed
// cells abort the run (job failures are deterministic), a 404 — a worker
// restarted or evicted between submit and poll — requeues the cell for
// resubmission.
func (l *remoteLane) poll() error {
	for hash, t := range l.outstanding {
		if l.s.ctx.Err() != nil {
			return nil
		}
		req, err := http.NewRequestWithContext(l.s.ctx, http.MethodGet, l.base+"/v1/jobs/"+hash, nil)
		if err != nil {
			l.s.fail(err)
			return errPermanent
		}
		sp := l.s.span.StartChild("dispatch.poll")
		sp.SetAttr("lane", l.name)
		sp.SetAttr("hash", hash)
		l.s.stamp(req, sp)
		resp, err := l.s.opts.Client.Do(req)
		if err != nil {
			sp.SetAttr("error", err.Error())
			sp.End()
			if l.s.ctx.Err() != nil {
				return nil
			}
			return l.transient("poll", err)
		}
		raw, err := io.ReadAll(io.LimitReader(resp.Body, 4<<20))
		resp.Body.Close()
		sp.SetAttr("http.status", resp.StatusCode)
		sp.End()
		if err != nil {
			return l.transient("poll", err)
		}
		switch resp.StatusCode {
		case http.StatusOK:
		case http.StatusNotFound:
			l.failures = 0
			delete(l.outstanding, hash)
			l.unsubmitted = append(l.unsubmitted, t)
			l.noteResubmit(fmt.Sprintf("dispatch: lane %s forgot %.12s… (worker restarted?); resubmitting", l.name, hash))
			continue
		default:
			return l.transient("poll", fmt.Errorf("HTTP %d: %s", resp.StatusCode, errorBody(raw)))
		}
		var v service.JobView
		if err := json.Unmarshal(raw, &v); err != nil {
			return l.transient("poll", fmt.Errorf("undecodable job view: %w", err))
		}
		l.failures = 0
		switch v.Status {
		case service.StatusDone:
			if v.Result == nil {
				return l.transient("poll", fmt.Errorf("done view for %.12s… carries no result", hash))
			}
			delete(l.outstanding, hash)
			if err := l.s.complete(l.name, t, *v.Result); err != nil {
				l.s.fail(err)
				return errPermanent
			}
		case service.StatusFailed:
			l.s.fail(fmt.Errorf("dispatch: job %s failed on %s: %s", t.job, l.name, v.Error))
			return errPermanent
		case service.StatusCancelled:
			// The worker cancelled it (drain timeout, operator action); the
			// cell itself is fine — run it elsewhere.
			delete(l.outstanding, hash)
			l.unsubmitted = append(l.unsubmitted, t)
			l.noteResubmit(fmt.Sprintf("dispatch: lane %s cancelled %.12s…; resubmitting", l.name, hash))
		}
	}
	return nil
}

// noteResubmit counts one requeued cell. The first one per lane logs the
// given line (with a pointer to the counter); later ones stay quiet — a
// restarted worker forgets its whole outstanding set at once, and one
// line per cell used to drown the run log.
func (l *remoteLane) noteResubmit(line string) {
	l.s.opts.Metrics.resubmitted(l.name)
	l.resubmits++
	if l.resubmits == 1 {
		l.s.opts.Logf("%s (further lane resubmissions counted in als_dispatch_resubmits_total)", line)
	}
}

// errorBody extracts {"error": ...} from a response body for messages.
func errorBody(raw []byte) string {
	var e struct {
		Error string `json:"error"`
	}
	if json.Unmarshal(raw, &e) == nil && e.Error != "" {
		return e.Error
	}
	s := strings.TrimSpace(string(raw))
	if len(s) > 200 {
		s = s[:200] + "…"
	}
	if s == "" {
		return "(empty body)"
	}
	return s
}
