// Package dispatch fans an experiment job set out to a fleet of alsd
// workers over HTTP, assembling the same ResultSet a single-machine run
// produces. It is the horizontal-scale-out layer above internal/exp's job
// graph: every cell is a pure function of its content hash, so where it
// runs cannot change what it returns — the coordinator only decides
// placement.
//
// The deduplicated, cache-filtered job set (exp.PendingJobs) is
// partitioned across lanes by content hash; a lane is either one remote
// worker URL (driven through the worker job API of internal/service:
// batch submit, poll by hash) or one local executor slot (the -jobs
// "local share"). Each finished cell streams into the persistent store
// the moment its lane observes it, so an interrupted or failed
// distributed run resumes exactly like a local one. Transient transport
// failures retry with capped exponential backoff; a lane that exhausts
// its retry budget is declared dead and its unfinished cells fail over to
// the surviving lanes. The run fails only when a cell itself fails
// (deterministic — it would fail anywhere) or when no live lane remains.
//
// Runs are observable two ways: Options.Logf receives lane lifecycle and
// failover events as text, and Options.Metrics (created once per
// telemetry.Registry with NewMetrics, shared across runs) exports
// per-lane throughput, retries, failovers and the remaining-cell gauge —
// what `experiments -metrics-addr` serves during a sweep.
package dispatch

import (
	"context"
	crand "crypto/rand"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	als "repro"
	"repro/internal/cell"
	"repro/internal/exp"
	"repro/internal/service"
	"repro/internal/store"
	"repro/internal/trace"
)

// Options configures one distributed run.
type Options struct {
	// Workers are alsd base URLs (e.g. http://h1:8080); each becomes one
	// lane. A URL listed twice becomes two lanes feeding the same daemon.
	Workers []string
	// LocalJobs > 0 adds that many local executor lanes, so the
	// coordinator machine contributes its own cores to the sweep.
	LocalJobs int
	// Store persists finished cells as they stream back (nil disables
	// persistence; cached cells are skipped up front either way).
	Store *store.Store
	// Lib is the cell library for local lanes (default: the synthetic
	// 28nm library).
	Lib *cell.Library
	// Client issues all worker HTTP requests (default: 30s timeout).
	Client *http.Client
	// PollInterval spaces result polls per lane (default 50ms).
	PollInterval time.Duration
	// SubmitBatch caps job specs per submission (default 16, so a worker
	// at the default 64-deep queue absorbs several lanes' bursts).
	SubmitBatch int
	// RetryBudget is how many consecutive transport failures a lane
	// tolerates before it is declared dead (default 4).
	RetryBudget int
	// Backoff is the first retry delay; it doubles per consecutive
	// failure up to MaxBackoff (defaults 100ms and 2s).
	Backoff    time.Duration
	MaxBackoff time.Duration
	// Logf, when non-nil, receives lane lifecycle and failover events.
	Logf func(format string, args ...any)
	// Metrics, when non-nil, records per-lane throughput, retries and
	// failovers (create once with NewMetrics and share across runs).
	Metrics *Metrics
	// Tracer records the sweep as one trace: a root span per run, a child
	// span per worker submit/poll round trip (each carrying a traceparent
	// header the worker's middleware continues, so the whole fleet shares
	// one trace ID), and the local lanes' job spans. Nil disables tracing;
	// the X-Request-Id run correlation below works either way.
	Tracer *trace.Tracer
}

func (o Options) withDefaults() Options {
	if o.Client == nil {
		o.Client = &http.Client{Timeout: 30 * time.Second}
	}
	if o.PollInterval <= 0 {
		o.PollInterval = 50 * time.Millisecond
	}
	if o.SubmitBatch <= 0 {
		o.SubmitBatch = 16
	}
	if o.SubmitBatch > service.MaxBatchJobs {
		o.SubmitBatch = service.MaxBatchJobs
	}
	if o.RetryBudget <= 0 {
		o.RetryBudget = 4
	}
	if o.Backoff <= 0 {
		o.Backoff = 100 * time.Millisecond
	}
	if o.MaxBackoff <= 0 {
		o.MaxBackoff = 2 * time.Second
	}
	if o.Lib == nil {
		o.Lib = als.NewLibrary()
	}
	if o.Logf == nil {
		o.Logf = func(string, ...any) {}
	}
	return o
}

// Stats extends the scheduler's counters with placement detail.
type Stats struct {
	exp.RunStats
	// ByLane counts completed cells per lane name ("local" aggregates
	// every local slot).
	ByLane map[string]int
	// FailedOver counts cells reassigned away from a dead lane.
	FailedOver int
	// DeadLanes lists lanes that exhausted their retry budget.
	DeadLanes []string
	// TraceID is the fleet-wide trace of this run ("" without a Tracer):
	// every coordinator span and every worker-side request span of the
	// sweep shares it, so one /debug/traces?trace= lookup per host
	// reassembles the whole run.
	TraceID string
}

// localLaneName aggregates every local executor slot in Stats.ByLane.
const localLaneName = "local"

// errPermanent marks failures that must abort the whole run rather than
// fail over: an invalid spec, a deterministic job failure, a store write
// error. The run error itself is recorded via shared.fail.
var errPermanent = errors.New("dispatch: permanent failure")

// shared is the state every lane goroutine works against.
type shared struct {
	ctx    context.Context
	cancel context.CancelFunc
	opts   Options
	// span is the sweep's root span (nil without a Tracer); runID is the
	// run's log-correlation token — the trace ID when tracing, a random
	// "sweep-…" tag otherwise — forwarded as X-Request-Id on every worker
	// request so worker logs grep by coordinator run either way.
	span  *trace.Span
	runID string
	// failover receives the unfinished cells of dead lanes; its capacity
	// is the full pending count, so pushes never block.
	failover chan *Task
	// done closes when remaining reaches zero.
	done      chan struct{}
	remaining atomic.Int64
	live      atomic.Int64

	mu       sync.Mutex
	rs       exp.ResultSet
	stats    *Stats
	firstErr error
	// deadBases records base URLs whose lane exhausted its retry budget,
	// so a second lane configured against the same daemon dies on its
	// first failure instead of re-probing a base already declared dead.
	deadBases map[string]bool
}

// baseDead reports whether some lane already declared this base dead.
func (s *shared) baseDead(base string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.deadBases[base]
}

// Run executes jobs across the configured lanes and returns the ResultSet
// keyed by job hash — element-for-element identical to what
// exp.RunJobsContext computes for the same list, wall-clock fields aside.
// On cancellation the returned error wraps ctx.Err(), and the store holds
// every cell that finished, so the run is resumable.
func Run(ctx context.Context, jobs []exp.Job, opts Options) (exp.ResultSet, Stats, error) {
	opts = opts.withDefaults()
	stats := Stats{ByLane: map[string]int{}}
	if len(opts.Workers) == 0 && opts.LocalJobs <= 0 {
		return nil, stats, errors.New("dispatch: no workers and no local share")
	}

	rs := exp.ResultSet{}
	pending, hashes, runStats, err := exp.PendingJobs(jobs, opts.Store, rs)
	if err != nil {
		return nil, stats, err
	}
	stats.RunStats = runStats
	if len(pending) == 0 {
		return rs, stats, nil
	}

	// One span roots the whole sweep — as a child when the caller already
	// carries one on ctx (cmd/experiments roots a per-invocation span),
	// fresh otherwise. Its trace ID doubles as the run's log-correlation
	// token; without a tracer a random tag fills that role.
	var sweep *trace.Span
	if parent := trace.FromContext(ctx); parent != nil {
		sweep = parent.StartChild("dispatch.sweep")
	} else {
		sweep = opts.Tracer.StartRoot("dispatch.sweep")
	}
	sweep.SetAttr("jobs", len(jobs))
	sweep.SetAttr("pending", len(pending))
	sweep.SetAttr("workers", len(opts.Workers))
	sweep.SetAttr("local_jobs", opts.LocalJobs)
	runID := sweep.TraceID()
	stats.TraceID = runID
	if runID == "" {
		var b [8]byte
		crand.Read(b[:]) //nolint:errcheck // never fails on supported platforms
		runID = "sweep-" + hex.EncodeToString(b[:])
	}
	defer func() {
		sweep.SetAttr("executed", stats.Executed)
		sweep.SetAttr("failed_over", stats.FailedOver)
		sweep.End()
	}()

	// The worker job API enforces the service's untrusted-input resource
	// caps; a spec beyond them (e.g. a -pop override over MaxPopulation)
	// would 400 the first batch that carries it. Check the whole set up
	// front so the run fails immediately with the offending job named,
	// instead of mid-sweep — but only when remote lanes exist: a pure
	// local share runs anything the local scheduler would.
	if len(opts.Workers) > 0 {
		for _, j := range pending {
			if err := service.ValidateJobSpec(j); err != nil {
				return nil, stats, fmt.Errorf("dispatch: job %s would be rejected by the worker API: %w (lower the override or run without -workers)", j, err)
			}
		}
	}

	// Readiness preflight: one concurrent /healthz probe per worker
	// (unreachable hosts cost one shared 2s deadline, not 2s each).
	// Unreachable workers still get a lane (a transient outage heals
	// under the lane's own retry budget, and a truly dead worker's share
	// fails over), but when nothing at all is reachable the run aborts
	// with a clear error instead of burning the full retry budget
	// everywhere.
	var (
		reachable int32
		probeWG   sync.WaitGroup
	)
	for _, w := range opts.Workers {
		probeWG.Add(1)
		go func(w string) {
			defer probeWG.Done()
			if err := probeHealth(ctx, opts.Client, w, runID); err != nil {
				opts.Logf("dispatch: worker %s not ready: %v", w, err)
				return
			}
			atomic.AddInt32(&reachable, 1)
		}(w)
	}
	probeWG.Wait()
	if reachable == 0 && opts.LocalJobs <= 0 {
		return nil, stats, fmt.Errorf("dispatch: none of the %d worker(s) answered /healthz and no local share is configured", len(opts.Workers))
	}

	// Local lanes run under the sweep span, so their job.run (and
	// per-generation) spans join the same trace as the remote workers'.
	runCtx, cancel := context.WithCancel(trace.ContextWith(ctx, sweep))
	defer cancel()
	s := &shared{
		ctx:       runCtx,
		cancel:    cancel,
		opts:      opts,
		span:      sweep,
		runID:     runID,
		failover:  make(chan *Task, len(pending)),
		done:      make(chan struct{}),
		rs:        rs,
		stats:     &stats,
		deadBases: map[string]bool{},
	}
	s.remaining.Store(int64(len(pending)))
	opts.Metrics.runStarted(len(pending))
	defer func() { opts.Metrics.runEnded(s.remaining.Load()) }()

	// Partition by content hash: lane i owns every cell whose hash maps
	// to it. Placement is deterministic for a given fleet shape, but has
	// no bearing on results — only on who computes what first.
	laneCount := len(opts.Workers) + max(opts.LocalJobs, 0)
	assigned := make([][]*Task, laneCount)
	for i := range pending {
		t := &Task{Job: pending[i], Hash: hashes[i]}
		lane := laneForHash(t.Hash, laneCount)
		assigned[lane] = append(assigned[lane], t)
	}

	s.live.Store(int64(laneCount))
	var wg sync.WaitGroup
	for i, url := range opts.Workers {
		wg.Add(1)
		go func(url string, own []*Task) {
			defer wg.Done()
			base := strings.TrimRight(url, "/")
			sched := &runSched{s: s, name: url, base: base, own: own}
			l := &Lane{
				Name:         url,
				Base:         base,
				Client:       opts.Client,
				SubmitBatch:  opts.SubmitBatch,
				RetryBudget:  opts.RetryBudget,
				Backoff:      opts.Backoff,
				MaxBackoff:   opts.MaxBackoff,
				PollInterval: opts.PollInterval,
				Logf:         opts.Logf,
				Metrics:      opts.Metrics,
				Sched:        sched,
			}
			if leftovers, cause := l.Run(); cause != nil {
				// The lane claims its partition lazily through Next/Fill, so
				// on death the unclaimed remainder is still in sched.own —
				// fail it over along with the cells the lane had in flight.
				s.laneDied(url, base, cause, append(leftovers, sched.own...))
			}
		}(url, assigned[i])
	}
	// Each local slot is its own lane; the flow-internal evaluation pool
	// is split so total local parallelism stays GOMAXPROCS-bounded,
	// mirroring the local scheduler.
	evalWorkers := 0
	if opts.LocalJobs > 1 {
		evalWorkers = runtime.GOMAXPROCS(0) / opts.LocalJobs
		if evalWorkers < 1 {
			evalWorkers = 1
		}
	}
	for i := 0; i < opts.LocalJobs; i++ {
		wg.Add(1)
		go func(own []*Task) {
			defer wg.Done()
			runLocalLane(s, evalWorkers, own)
		}(assigned[len(opts.Workers)+i])
	}
	wg.Wait()

	if s.remaining.Load() == 0 {
		if len(stats.DeadLanes) > 0 {
			opts.Logf("dispatch: completed despite %d dead lane(s); %d cell(s) failed over", len(stats.DeadLanes), stats.FailedOver)
		}
		opts.Logf("dispatch: %d cell(s) done: %s", stats.Executed, laneSummary(stats.ByLane))
		return s.rs, stats, nil
	}
	if err := ctx.Err(); err != nil {
		return nil, stats, fmt.Errorf("dispatch: run cancelled: %w", err)
	}
	s.mu.Lock()
	err = s.firstErr
	s.mu.Unlock()
	if err == nil {
		err = fmt.Errorf("dispatch: %d cell(s) unfinished", s.remaining.Load())
	}
	return nil, stats, err
}

// laneForHash maps a content hash onto [0, lanes) via its leading hex
// digits.
func laneForHash(hash string, lanes int) int {
	const digits = 15 // 60 bits, always within uint64
	h := hash
	if len(h) > digits {
		h = h[:digits]
	}
	v, err := strconv.ParseUint(h, 16, 64)
	if err != nil {
		// Content hashes are hex by construction; fall back to a byte sum
		// for anything else rather than crashing placement.
		for i := 0; i < len(hash); i++ {
			v += uint64(hash[i])
		}
	}
	return int(v % uint64(lanes))
}

func laneSummary(byLane map[string]int) string {
	parts := make([]string, 0, len(byLane))
	for lane, n := range byLane {
		parts = append(parts, fmt.Sprintf("%s=%d", lane, n))
	}
	if len(parts) == 0 {
		return "(nothing executed)"
	}
	sort.Strings(parts)
	return strings.Join(parts, " ")
}

// probeHealth issues one short-deadline readiness probe, tagged with the
// run ID so even the preflight is greppable in worker logs.
func probeHealth(ctx context.Context, client *http.Client, base, runID string) error {
	probeCtx, cancel := context.WithTimeout(ctx, 2*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(probeCtx, http.MethodGet, strings.TrimRight(base, "/")+"/healthz", nil)
	if err != nil {
		return err
	}
	req.Header.Set("X-Request-Id", runID)
	resp, err := client.Do(req)
	if err != nil {
		return err
	}
	io.Copy(io.Discard, resp.Body) //nolint:errcheck // drain for connection reuse
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("healthz: HTTP %d", resp.StatusCode)
	}
	return nil
}

// ---- shared-state transitions ----------------------------------------------

// stamp adds the correlation headers every worker request carries: the
// run ID for log grepping (meaningful with tracing on or off) and, when
// sp is a live span, the traceparent the worker's middleware continues.
func (s *shared) stamp(req *http.Request, sp *trace.Span) {
	req.Header.Set("X-Request-Id", s.runID)
	if sc := sp.Context(); sc.Valid() {
		req.Header.Set("traceparent", sc.Traceparent())
	}
}

// complete records one finished cell: persist first (a cell the store
// never saw must not count as done for -resume), then publish.
func (s *shared) complete(lane string, t *Task, r exp.JobResult) error {
	if s.opts.Store != nil {
		putSpan := s.span.StartChild("store.put")
		putSpan.SetAttr("lane", lane)
		putSpan.SetAttr("hash", t.Hash)
		err := s.opts.Store.Put(t.Hash, r)
		putSpan.End()
		if err != nil {
			return err
		}
	}
	s.mu.Lock()
	s.rs[t.Hash] = r
	s.stats.Executed++
	s.stats.ByLane[lane]++
	s.mu.Unlock()
	s.opts.Metrics.cellCompleted(lane)
	if s.remaining.Add(-1) == 0 {
		close(s.done)
	}
	return nil
}

// fail records the run's first fatal error and cancels every lane.
func (s *shared) fail(err error) {
	s.mu.Lock()
	if s.firstErr == nil {
		s.firstErr = err
	}
	s.mu.Unlock()
	s.cancel()
}

// laneDied pushes a dead lane's unfinished cells to the failover pool; if
// it was the last live lane and work remains, the run fails (the store
// already holds every finished cell, so a -resume completes it later).
func (s *shared) laneDied(name, base string, cause error, leftovers []*Task) {
	s.opts.Logf("dispatch: lane %s dead (%v); failing over %d cell(s)", name, cause, len(leftovers))
	s.opts.Metrics.laneDead(len(leftovers))
	s.mu.Lock()
	s.stats.DeadLanes = append(s.stats.DeadLanes, name)
	s.stats.FailedOver += len(leftovers)
	if base != "" {
		s.deadBases[base] = true
	}
	s.mu.Unlock()
	for _, t := range leftovers {
		s.failover <- t
	}
	if s.live.Add(-1) == 0 && s.remaining.Load() > 0 {
		s.fail(fmt.Errorf("dispatch: every lane is dead with %d cell(s) unfinished (last: %s: %w)", s.remaining.Load(), name, cause))
	}
}

// next pops the lane's own queue, then blocks on the failover pool until
// a task arrives, the run completes, or the run is cancelled.
func (s *shared) next(own *[]*Task) (*Task, bool) {
	if len(*own) > 0 {
		t := (*own)[0]
		*own = (*own)[1:]
		return t, true
	}
	select {
	case <-s.done:
		return nil, false
	case <-s.ctx.Done():
		return nil, false
	case t := <-s.failover:
		return t, true
	}
}

// sleep waits d, returning early on completion or cancellation.
func (s *shared) sleep(d time.Duration) {
	timer := time.NewTimer(d)
	defer timer.Stop()
	select {
	case <-timer.C:
	case <-s.done:
	case <-s.ctx.Done():
	}
}

// ---- local lane ------------------------------------------------------------

// runLocalLane executes cells in-process, one at a time. A job error here
// is deterministic (the same cell fails identically everywhere), so it
// aborts the run rather than failing over.
func runLocalLane(s *shared, evalWorkers int, own []*Task) {
	for {
		t, ok := s.next(&own)
		if !ok {
			return
		}
		r, err := t.Job.RunContext(s.ctx, s.opts.Lib, evalWorkers)
		if err != nil {
			if s.ctx.Err() == nil {
				s.fail(fmt.Errorf("dispatch: local: %w", err))
			}
			return
		}
		if err := s.complete(localLaneName, t, r); err != nil {
			s.fail(err)
			return
		}
	}
}

// ---- static-fleet lane scheduler -------------------------------------------

// runSched binds one lane of a static-fleet Run to the run's shared
// state: the lane's own hash partition feeds it first, then the failover
// pool; completions and failures land in the run's ResultSet and
// first-error slot. It is the LaneScheduler the legacy -workers mode has
// always effectively been.
type runSched struct {
	s    *shared
	name string
	base string
	own  []*Task
}

func (r *runSched) Next() (*Task, bool) { return r.s.next(&r.own) }

// Fill opportunistically batches additional failed-over cells behind the
// one Next delivered.
func (r *runSched) Fill(n int) []*Task {
	var out []*Task
	for len(out) < n {
		select {
		case t := <-r.s.failover:
			out = append(out, t)
		default:
			return out
		}
	}
	return out
}

func (r *runSched) Context() context.Context { return r.s.ctx }

// Offload keeps queue-full remainders lane-local: in the static fleet
// the partition already is this lane's fair share.
func (r *runSched) Offload([]*Task) bool { return false }

func (r *runSched) Sleep(d time.Duration) { r.s.sleep(d) }

func (r *runSched) Complete(t *Task, res exp.JobResult) error {
	return r.s.complete(r.name, t, res)
}

// JobFailed aborts the whole run: the failure is deterministic, so the
// cell would fail identically on every other lane too.
func (r *runSched) JobFailed(t *Task, msg string) error {
	err := fmt.Errorf("dispatch: job %s failed on %s: %s", t.Job, r.name, msg)
	r.s.fail(err)
	return err
}

func (r *runSched) Fatal(err error) { r.s.fail(err) }

// Lookup consults the run's (possibly fleet-shared) store, so a cell a
// worker forgot is completed from persisted state instead of re-running
// when any other party already computed it.
func (r *runSched) Lookup(hash string) (exp.JobResult, bool) {
	if r.s.opts.Store == nil {
		return exp.JobResult{}, false
	}
	var res exp.JobResult
	if ok, err := r.s.opts.Store.Decode(hash, &res); err != nil || !ok {
		return exp.JobResult{}, false
	}
	return res, true
}

func (r *runSched) Stamp(req *http.Request, sp *trace.Span) { r.s.stamp(req, sp) }

func (r *runSched) StartSpan(name string) *trace.Span { return r.s.span.StartChild(name) }

func (r *runSched) Hopeless() bool { return r.s.baseDead(r.base) }

// errorBody extracts {"error": ...} from a response body for messages.
func errorBody(raw []byte) string {
	var e struct {
		Error string `json:"error"`
	}
	if json.Unmarshal(raw, &e) == nil && e.Error != "" {
		return e.Error
	}
	s := strings.TrimSpace(string(raw))
	if len(s) > 200 {
		s = s[:200] + "…"
	}
	if s == "" {
		return "(empty body)"
	}
	return s
}
