// The lane engine: the reusable half of the dispatcher. A Lane drives
// one worker URL through the worker job API — submit batches of specs,
// poll results by content hash, retry transient transport failures with
// capped exponential backoff, requeue cells the worker forgot or
// cancelled — exactly the machinery cmd/experiments' static fleet mode
// has always used, extracted behind a LaneScheduler so the coordinator
// daemon (internal/coord) can reuse it with a different scheduling
// policy (shared weighted-fair queue, throughput-adaptive windows, work
// stealing) instead of static hash partitioning.
package dispatch

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"time"

	"repro/internal/exp"
	"repro/internal/service"
	"repro/internal/trace"
)

// Task is one schedulable cell: its job spec and the content hash that
// keys its result everywhere (store, worker job table, ResultSet).
type Task struct {
	Job  exp.Job
	Hash string
}

// LaneScheduler is the scheduling half of a lane: it feeds tasks in,
// receives results out, and decides how failures propagate. One
// scheduler instance is bound to one lane, so implementations carry the
// lane's identity themselves.
type LaneScheduler interface {
	// Next blocks until a task is available for this lane; ok=false shuts
	// the lane down cleanly (run finished, worker drained, …).
	Next() (t *Task, ok bool)
	// Fill returns up to n more tasks without blocking, letting the lane
	// batch several cells into one submission. An adaptive scheduler caps
	// this by the worker's observed throughput.
	Fill(n int) []*Task
	// Context governs the lane's lifetime: its cancellation stops the
	// lane between steps and aborts in-flight worker requests.
	Context() context.Context
	// Offload hands unsubmitted tasks back when the worker reports a full
	// queue. Returning false keeps them lane-local (the static fleet
	// mode); returning true lets an idle lane steal them (the
	// coordinator's shared queue).
	Offload(tasks []*Task) bool
	// Sleep pauses between polls and backoffs, waking early on shutdown.
	Sleep(d time.Duration)
	// Complete publishes one finished cell; a non-nil error is fatal to
	// the lane's run (e.g. the result could not be persisted).
	Complete(t *Task, r exp.JobResult) error
	// JobFailed reports a deterministic job failure (the cell would fail
	// identically anywhere). A non-nil return aborts the lane without
	// failover; nil lets it continue with its other cells.
	JobFailed(t *Task, errMsg string) error
	// Fatal reports an error that poisons the whole run (incompatible
	// worker build, rejected batch, marshalling failure).
	Fatal(err error)
	// Lookup consults the shared result store before a 404 resubmission:
	// a worker that forgot a cell may still be beaten by another lane (or
	// another coordinator) that already persisted it.
	Lookup(hash string) (exp.JobResult, bool)
	// Stamp adds correlation headers to an outgoing worker request.
	Stamp(req *http.Request, sp *trace.Span)
	// StartSpan opens a child span for one worker round trip (nil is
	// fine; trace spans are nil-safe).
	StartSpan(name string) *trace.Span
	// Hopeless reports that this lane's base URL has already been
	// declared dead elsewhere (another lane to the same daemon exhausted
	// its budget), so burning a second retry budget re-probing it is
	// pointless.
	Hopeless() bool
}

// Lane drives one worker base URL. Configure the exported fields, then
// call Run from a single goroutine; all internal state is
// goroutine-local.
type Lane struct {
	Name         string // label for logs and metrics (usually the URL)
	Base         string // worker base URL, no trailing slash
	Client       *http.Client
	SubmitBatch  int
	RetryBudget  int
	Backoff      time.Duration
	MaxBackoff   time.Duration
	PollInterval time.Duration
	Logf         func(format string, args ...any)
	Metrics      *Metrics
	Sched        LaneScheduler

	// unsubmitted holds cells the worker has not accepted yet;
	// outstanding maps accepted cells by hash until a poll resolves them.
	unsubmitted []*Task
	outstanding map[string]*Task
	// failures counts consecutive transport-level failures; any success
	// resets it, exceeding the retry budget kills the lane.
	failures int
	// resubmits counts cells this lane requeued because the worker forgot
	// or cancelled them. Only the first one logs a line (a worker restart
	// typically forgets a whole batch at once, and per-cell lines buried
	// the interesting logs); the rest ride the als_dispatch_resubmits_total
	// counter and the lane's exit summary.
	resubmits int
}

// Run drives the lane until the scheduler shuts it down, the run is
// cancelled, or the lane dies. It returns every task the lane still
// owned and, when the lane died (retry budget exhausted, worker
// draining), the cause — nil means a clean exit whose leftovers need no
// failover (the run is ending anyway) unless the caller wants to
// requeue them.
func (l *Lane) Run() ([]*Task, error) {
	if l.Logf == nil {
		l.Logf = func(string, ...any) {}
	}
	l.outstanding = map[string]*Task{}
	defer func() {
		if l.resubmits > 1 {
			l.Logf("dispatch: lane %s resubmitted %d cells total", l.Name, l.resubmits)
		}
	}()
	for {
		if len(l.unsubmitted) == 0 && len(l.outstanding) == 0 {
			t, ok := l.Sched.Next()
			if !ok {
				return l.leftovers(), nil
			}
			l.unsubmitted = append(l.unsubmitted, t)
			if n := l.SubmitBatch - len(l.unsubmitted); n > 0 {
				l.unsubmitted = append(l.unsubmitted, l.Sched.Fill(n)...)
			}
		}
		if err := l.step(); err != nil {
			if errors.Is(err, errPermanent) {
				return l.leftovers(), nil // the run itself is failing; nothing to fail over to
			}
			return l.leftovers(), err
		}
		if l.cancelled() {
			return l.leftovers(), nil
		}
	}
}

// cancelled reports whether the scheduler's context has ended.
func (l *Lane) cancelled() bool { return l.Sched.Context().Err() != nil }

// leftovers collects everything the lane still owns, clearing its state.
func (l *Lane) leftovers() []*Task {
	out := append([]*Task(nil), l.unsubmitted...)
	for _, t := range l.outstanding {
		out = append(out, t)
	}
	l.unsubmitted = nil
	l.outstanding = map[string]*Task{}
	return out
}

// step advances the lane one round: submit what the worker will take,
// sweep outstanding results, pace the next poll.
func (l *Lane) step() error {
	if len(l.unsubmitted) > 0 {
		if err := l.submit(); err != nil {
			return err
		}
	}
	if len(l.outstanding) > 0 {
		if err := l.poll(); err != nil {
			return err
		}
		if len(l.outstanding) > 0 {
			l.Sched.Sleep(l.PollInterval)
		}
	}
	return nil
}

// transient handles one transport-level failure: back off and retry until
// the consecutive-failure budget is spent, then report the lane dead. A
// base another lane already declared dead is not worth a second budget —
// the lane dies on its first failure instead of re-probing it.
func (l *Lane) transient(op string, err error) error {
	l.failures++
	if l.failures > l.RetryBudget {
		return fmt.Errorf("%s failed %d consecutive time(s): %w", op, l.failures, err)
	}
	if l.Sched.Hopeless() {
		return fmt.Errorf("%s failed and %s is already declared dead: %w", op, l.Base, err)
	}
	l.Metrics.retried(l.Name)
	backoff := l.Backoff << (l.failures - 1)
	if backoff > l.MaxBackoff {
		backoff = l.MaxBackoff
	}
	l.Logf("dispatch: lane %s: %s failed (attempt %d/%d, retrying in %v): %v",
		l.Name, op, l.failures, l.RetryBudget+1, backoff, err)
	l.Sched.Sleep(backoff)
	return nil
}

// complete publishes one finished cell through the scheduler, converting
// a publication failure into a run-fatal error.
func (l *Lane) complete(t *Task, r exp.JobResult) error {
	if err := l.Sched.Complete(t, r); err != nil {
		l.Sched.Fatal(err)
		return errPermanent
	}
	return nil
}

// submit offers the worker one batch of specs. The accepted prefix moves
// to outstanding; on queue-full the remainder waits for a later round or
// is offloaded back to the scheduler (the worker is alive, just
// saturated), while draining and validation failures are terminal for
// the lane and run respectively.
func (l *Lane) submit() error {
	n := min(len(l.unsubmitted), l.SubmitBatch)
	batch := l.unsubmitted[:n]
	jobs := make([]exp.Job, n)
	for i, t := range batch {
		jobs[i] = t.Job
	}
	body, err := json.Marshal(service.BatchRequest{Jobs: jobs})
	if err != nil {
		l.Sched.Fatal(fmt.Errorf("dispatch: marshal batch: %w", err))
		return errPermanent
	}
	req, err := http.NewRequestWithContext(l.Sched.Context(), http.MethodPost, l.Base+"/v1/jobs", bytes.NewReader(body))
	if err != nil {
		l.Sched.Fatal(err)
		return errPermanent
	}
	req.Header.Set("Content-Type", "application/json")
	sp := l.Sched.StartSpan("dispatch.submit")
	sp.SetAttr("lane", l.Name)
	sp.SetAttr("jobs", n)
	l.Sched.Stamp(req, sp)
	resp, err := l.Client.Do(req)
	if err != nil {
		sp.SetAttr("error", err.Error())
		sp.End()
		if l.cancelled() {
			return nil
		}
		return l.transient("submit", err)
	}
	raw, err := io.ReadAll(io.LimitReader(resp.Body, 4<<20))
	resp.Body.Close()
	sp.SetAttr("http.status", resp.StatusCode)
	sp.End()
	if err != nil {
		return l.transient("submit", err)
	}

	switch resp.StatusCode {
	case http.StatusOK, http.StatusServiceUnavailable:
		var br service.BatchResponse
		if err := json.Unmarshal(raw, &br); err != nil {
			return l.transient("submit", fmt.Errorf("undecodable response: %w", err))
		}
		if len(br.Jobs) > len(batch) {
			return l.transient("submit", fmt.Errorf("worker accepted %d of %d jobs", len(br.Jobs), len(batch)))
		}
		for i, v := range br.Jobs {
			if v.Hash != batch[i].Hash {
				l.Sched.Fatal(fmt.Errorf("dispatch: %s: job %s hashed to %.12s… on the worker, %.12s… here — incompatible worker build",
					l.Name, batch[i].Job, v.Hash, batch[i].Hash))
				return errPermanent
			}
			l.outstanding[v.Hash] = batch[i]
		}
		l.unsubmitted = l.unsubmitted[len(br.Jobs):]
		if resp.StatusCode == http.StatusServiceUnavailable {
			if br.Reason == service.ReasonDraining {
				return fmt.Errorf("worker is draining: %s", br.Error)
			}
			// Queue full: not a failure — the worker is alive and will make
			// room as it finishes cells. Offer the remainder back to the
			// scheduler so an idle lane can steal it; otherwise let the
			// poll pace the next attempt.
			l.failures = 0
			if len(l.unsubmitted) > 0 && l.Sched.Offload(l.unsubmitted) {
				l.unsubmitted = nil
			}
			if len(l.outstanding) == 0 {
				l.Sched.Sleep(l.PollInterval)
			}
			return nil
		}
		l.failures = 0
		return nil
	case http.StatusBadRequest:
		l.Sched.Fatal(fmt.Errorf("dispatch: %s rejected batch: %s", l.Name, errorBody(raw)))
		return errPermanent
	default:
		return l.transient("submit", fmt.Errorf("HTTP %d: %s", resp.StatusCode, errorBody(raw)))
	}
}

// poll sweeps the outstanding set once. Finished cells complete, failed
// cells go through JobFailed (deterministic — the scheduler decides
// whether that aborts everything), a 404 — a worker restarted or evicted
// between submit and poll — first consults the shared store (another
// lane may have persisted the cell already) and only then requeues it
// for resubmission.
func (l *Lane) poll() error {
	for hash, t := range l.outstanding {
		if l.cancelled() {
			return nil
		}
		req, err := http.NewRequestWithContext(l.Sched.Context(), http.MethodGet, l.Base+"/v1/jobs/"+hash, nil)
		if err != nil {
			l.Sched.Fatal(err)
			return errPermanent
		}
		sp := l.Sched.StartSpan("dispatch.poll")
		sp.SetAttr("lane", l.Name)
		sp.SetAttr("hash", hash)
		l.Sched.Stamp(req, sp)
		resp, err := l.Client.Do(req)
		if err != nil {
			sp.SetAttr("error", err.Error())
			sp.End()
			if l.cancelled() {
				return nil
			}
			return l.transient("poll", err)
		}
		raw, err := io.ReadAll(io.LimitReader(resp.Body, 4<<20))
		resp.Body.Close()
		sp.SetAttr("http.status", resp.StatusCode)
		sp.End()
		if err != nil {
			return l.transient("poll", err)
		}
		switch resp.StatusCode {
		case http.StatusOK:
		case http.StatusNotFound:
			l.failures = 0
			delete(l.outstanding, hash)
			if r, ok := l.Sched.Lookup(hash); ok {
				// The shared store already holds this cell — another lane
				// (or a previous run) computed it while the worker forgot
				// it. Complete from the store instead of re-running.
				l.Logf("dispatch: lane %s forgot %.12s… but the shared store has it; skipping resubmit", l.Name, hash)
				if err := l.complete(t, r); err != nil {
					return err
				}
				continue
			}
			l.unsubmitted = append(l.unsubmitted, t)
			l.noteResubmit(fmt.Sprintf("dispatch: lane %s forgot %.12s… (worker restarted?); resubmitting", l.Name, hash))
			continue
		default:
			return l.transient("poll", fmt.Errorf("HTTP %d: %s", resp.StatusCode, errorBody(raw)))
		}
		var v service.JobView
		if err := json.Unmarshal(raw, &v); err != nil {
			return l.transient("poll", fmt.Errorf("undecodable job view: %w", err))
		}
		l.failures = 0
		switch v.Status {
		case service.StatusDone:
			if v.Result == nil {
				return l.transient("poll", fmt.Errorf("done view for %.12s… carries no result", hash))
			}
			delete(l.outstanding, hash)
			if err := l.complete(t, *v.Result); err != nil {
				return err
			}
		case service.StatusFailed:
			delete(l.outstanding, hash)
			if err := l.Sched.JobFailed(t, v.Error); err != nil {
				return errPermanent
			}
		case service.StatusCancelled:
			// The worker cancelled it (drain timeout, operator action); the
			// cell itself is fine — run it elsewhere.
			delete(l.outstanding, hash)
			l.unsubmitted = append(l.unsubmitted, t)
			l.noteResubmit(fmt.Sprintf("dispatch: lane %s cancelled %.12s…; resubmitting", l.Name, hash))
		}
	}
	return nil
}

// noteResubmit counts one requeued cell. The first one per lane logs the
// given line (with a pointer to the counter); later ones stay quiet — a
// restarted worker forgets its whole outstanding set at once, and one
// line per cell used to drown the run log.
func (l *Lane) noteResubmit(line string) {
	l.Metrics.resubmitted(l.Name)
	l.resubmits++
	if l.resubmits == 1 {
		l.Logf("%s (further lane resubmissions counted in als_dispatch_resubmits_total)", line)
	}
}
