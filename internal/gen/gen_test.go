package gen

import (
	"math/rand"
	"testing"

	"repro/internal/netlist"
	"repro/internal/sim"
)

// ---- shared test helpers ------------------------------------------------

// runRandom simulates the circuit on n random vectors with a fixed seed.
func runRandom(t testing.TB, c *netlist.Circuit, seed int64, n int) (*sim.Vectors, *sim.Result) {
	t.Helper()
	v := sim.Random(rand.New(rand.NewSource(seed)), len(c.PIs), n)
	res, err := sim.Run(c, v)
	if err != nil {
		t.Fatal(err)
	}
	return v, res
}

// piVal decodes PI bits [lo, lo+width) of vector k as a little-endian
// uint64 (width <= 64).
func piVal(v *sim.Vectors, lo, width, k int) uint64 {
	var val uint64
	for i := 0; i < width; i++ {
		val |= v.PerPI[lo+i][k/64] >> (k % 64) & 1 << i
	}
	return val
}

// poVal decodes PO bits [lo, lo+width) of vector k.
func poVal(c *netlist.Circuit, res *sim.Result, lo, width, k int) uint64 {
	var val uint64
	for i := 0; i < width; i++ {
		val |= res.Signals[c.POs[lo+i]][k/64] >> (k % 64) & 1 << i
	}
	return val
}

// poBit reads PO index i of vector k.
func poBit(c *netlist.Circuit, res *sim.Result, i, k int) uint64 {
	return res.Signals[c.POs[i]][k/64] >> (k % 64) & 1
}

// ---- registry -----------------------------------------------------------

var wantIO = map[string][2]int{ // name -> {PIs, POs}
	"Cavlc":     {10, 11},
	"c880":      {19, 13},
	"c1908":     {23, 23},
	"c2670":     {31, 36},
	"c3540":     {23, 13},
	"c5315":     {42, 57},
	"c7552":     {96, 40},
	"Int2float": {11, 7},
	"Adder16":   {32, 17},
	"Max16":     {32, 16},
	"c6288":     {32, 32},
	"Adder":     {256, 129},
	"Max":       {512, 128},
	"Sin":       {24, 25},
	"Sqrt":      {128, 64},
}

func TestRegistryComplete(t *testing.T) {
	if len(All()) != 15 {
		t.Fatalf("registry has %d benchmarks, want 15 (TABLE I)", len(All()))
	}
	if len(ByKind(RandomControl)) != 7 || len(ByKind(Arithmetic)) != 8 {
		t.Error("kind split must be 7 random/control + 8 arithmetic")
	}
	if _, ok := ByName("nope"); ok {
		t.Error("ByName must reject unknown names")
	}
	for i, name := range Names() {
		if All()[i].Name != name {
			t.Error("Names() order must match All()")
		}
	}
}

func TestAllBenchmarksBuildValid(t *testing.T) {
	for _, b := range All() {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			t.Parallel()
			c := b.Build()
			if err := c.Validate(); err != nil {
				t.Fatalf("invalid netlist: %v", err)
			}
			io, ok := wantIO[b.Name]
			if !ok {
				t.Fatalf("no expected I/O entry for %s", b.Name)
			}
			if len(c.PIs) != io[0] || len(c.POs) != io[1] {
				t.Errorf("I/O = %d/%d, want %d/%d", len(c.PIs), len(c.POs), io[0], io[1])
			}
			t.Logf("%s: %d gates, %d PIs, %d POs", b.Name, c.NumPhysical(), len(c.PIs), len(c.POs))
		})
	}
}

func TestMustBuildPanicsOnUnknown(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustBuild must panic on unknown name")
		}
	}()
	MustBuild("bogus")
}

func TestBuildersAreDeterministic(t *testing.T) {
	a := MustBuild("Cavlc")
	b := MustBuild("Cavlc")
	if a.NumGates() != b.NumGates() {
		t.Fatal("two builds differ in size")
	}
	for id := range a.Gates {
		ga, gb := a.Gates[id], b.Gates[id]
		if ga.Func != gb.Func || len(ga.Fanin) != len(gb.Fanin) {
			t.Fatal("two builds differ in structure")
		}
		for p := range ga.Fanin {
			if ga.Fanin[p] != gb.Fanin[p] {
				t.Fatal("two builds differ in adjacency")
			}
		}
	}
}

// ---- Cavlc (no closed-form model: structural/behavioural checks) -------

func TestCavlcOutputsAreAlive(t *testing.T) {
	c := MustBuild("Cavlc")
	v, err := sim.Exhaustive(10)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run(c, v)
	if err != nil {
		t.Fatal(err)
	}
	for i, po := range c.POs {
		ones := sim.CountOnes(res.Signals[po])
		if ones == 0 || ones == v.N {
			t.Errorf("PO %d (%s) is constant across all 1024 inputs", i, c.Gates[po].Name)
		}
	}
}

func TestCavlcDepthNontrivial(t *testing.T) {
	c := MustBuild("Cavlc")
	if c.NumPhysical() < 300 {
		t.Errorf("Cavlc has %d gates; expected a few hundred", c.NumPhysical())
	}
}

// ---- SEC/DED ------------------------------------------------------------

// hammingEncode builds the 22-bit codeword (positions 1..22, index p-1)
// for 16 data bits, plus the overall parity bit.
func hammingEncode(data uint16) (code [22]bool, overall bool) {
	dataPos := secdedDataPositions()
	for i, p := range dataPos {
		code[p-1] = data>>i&1 == 1
	}
	for j := 0; j < 5; j++ {
		cp := 1 << j
		par := false
		for p := 1; p <= 22; p++ {
			if p != cp && p>>j&1 == 1 && code[p-1] {
				par = !par
			}
		}
		code[cp-1] = par
	}
	for p := 1; p <= 22; p++ {
		if code[p-1] {
			overall = !overall
		}
	}
	return code, overall
}

// runSECDED simulates one codeword (with optional injected bit flips) and
// returns corrected data, syndrome, sec, ded.
func runSECDED(t *testing.T, c *netlist.Circuit, code [22]bool, overall bool, flips ...int) (data uint16, syn uint64, sec, ded bool) {
	t.Helper()
	for _, f := range flips {
		if f == 22 {
			overall = !overall
		} else {
			code[f] = !code[f]
		}
	}
	v := &sim.Vectors{PerPI: make([][]uint64, 23), N: 1}
	for i := 0; i < 22; i++ {
		v.PerPI[i] = []uint64{0}
		if code[i] {
			v.PerPI[i][0] = 1
		}
	}
	v.PerPI[22] = []uint64{0}
	if overall {
		v.PerPI[22][0] = 1
	}
	res, err := sim.Run(c, v)
	if err != nil {
		t.Fatal(err)
	}
	data = uint16(poVal(c, res, 0, 16, 0))
	syn = poVal(c, res, 16, 5, 0)
	sec = poBit(c, res, 21, 0) == 1
	ded = poBit(c, res, 22, 0) == 1
	return
}

func TestSECDEDCleanCodeword(t *testing.T) {
	c := MustBuild("c1908")
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 30; trial++ {
		d := uint16(rng.Uint32())
		code, ov := hammingEncode(d)
		got, syn, sec, ded := runSECDED(t, c, code, ov)
		if got != d || syn != 0 || sec || ded {
			t.Fatalf("clean codeword %04x: got data %04x syn %d sec %v ded %v", d, got, syn, sec, ded)
		}
	}
}

func TestSECDEDSingleErrorCorrected(t *testing.T) {
	c := MustBuild("c1908")
	rng := rand.New(rand.NewSource(6))
	for trial := 0; trial < 30; trial++ {
		d := uint16(rng.Uint32())
		code, ov := hammingEncode(d)
		pos := rng.Intn(22) // flip any codeword bit
		got, syn, sec, ded := runSECDED(t, c, code, ov, pos)
		if !sec || ded {
			t.Fatalf("single error at %d: sec=%v ded=%v", pos, sec, ded)
		}
		if syn != uint64(pos+1) {
			t.Fatalf("single error at %d: syndrome %d, want %d", pos, syn, pos+1)
		}
		if got != d {
			t.Fatalf("single error at %d: data %04x, want %04x", pos, got, d)
		}
	}
}

func TestSECDEDDoubleErrorDetected(t *testing.T) {
	c := MustBuild("c1908")
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 30; trial++ {
		d := uint16(rng.Uint32())
		code, ov := hammingEncode(d)
		p1 := rng.Intn(22)
		p2 := rng.Intn(22)
		for p2 == p1 {
			p2 = rng.Intn(22)
		}
		_, _, sec, ded := runSECDED(t, c, code, ov, p1, p2)
		if !ded || sec {
			t.Fatalf("double error at %d,%d: sec=%v ded=%v, want ded only", p1, p2, sec, ded)
		}
	}
}
