// Package gen generates the benchmark netlists of the paper's TABLE I from
// scratch: functional equivalents of the ISCAS'85 random/control circuits
// and the EPFL arithmetic circuits, expressed directly over the cell
// library. They substitute for the proprietary DC-synthesized netlists the
// paper evaluates on, preserving the functional class, I/O widths and the
// critical-path structure (carry chains, comparator trees, multiplier
// arrays) that approximate logic synthesis exploits.
package gen

import (
	"fmt"
	"sort"

	"repro/internal/cell"
	"repro/internal/netlist"
	"repro/internal/synth"
)

// cleaned runs the synthesis cleanup passes so generators hand out
// "post-synthesis" netlists: constants folded, buffers gone, IDs dense.
func cleaned(c *netlist.Circuit) *netlist.Circuit {
	res, err := synth.Cleanup(c)
	if err != nil {
		panic(fmt.Sprintf("gen: cleanup of %q failed: %v", c.Name, err))
	}
	res.Circuit.Name = c.Name
	return res.Circuit
}

// Kind classifies a benchmark by the error metric the paper optimizes it
// under.
type Kind uint8

const (
	// RandomControl circuits are optimized under error-rate (ER)
	// constraints.
	RandomControl Kind = iota
	// Arithmetic circuits are optimized under NMED constraints.
	Arithmetic
)

// String names the kind as in TABLE I.
func (k Kind) String() string {
	if k == RandomControl {
		return "Random/Control"
	}
	return "Arithmetic"
}

// Benchmark describes one generated circuit.
type Benchmark struct {
	// Name matches the paper's TABLE I row.
	Name string
	// Kind selects the error metric (ER vs NMED).
	Kind Kind
	// Description mirrors TABLE I's description column.
	Description string
	// Build generates a fresh netlist.
	Build func() *netlist.Circuit
}

var registry = []Benchmark{
	{"Cavlc", RandomControl, "coding CAVLC-style block", Cavlc},
	{"c880", RandomControl, "8-bit ALU", ALU8},
	{"c1908", RandomControl, "16-bit SEC/DED circuit", SECDED16},
	{"c2670", RandomControl, "12-bit ALU and controller", ALU12Ctrl},
	{"c3540", RandomControl, "8-bit ALU with shifter", ALU8Shift},
	{"c5315", RandomControl, "9-bit ALU", ALU9},
	{"c7552", RandomControl, "32-bit adder/comparator", AdderCmp32},
	{"Int2float", Arithmetic, "int to float converter", Int2Float},
	{"Adder16", Arithmetic, "16-bit adder", func() *netlist.Circuit { return Adder(16) }},
	{"Max16", Arithmetic, "16-bit 2-1 max unit", Max2x16},
	{"c6288", Arithmetic, "16x16 multiplier", func() *netlist.Circuit { return Multiplier(16) }},
	{"Adder", Arithmetic, "128-bit adder", func() *netlist.Circuit { return Adder(128) }},
	{"Max", Arithmetic, "128-bit 4-1 max unit", Max4x128},
	{"Sin", Arithmetic, "24-bit sine unit", Sin24},
	{"Sqrt", Arithmetic, "128-bit square root unit", func() *netlist.Circuit { return Sqrt(128) }},
}

// All returns every benchmark in TABLE I order.
func All() []Benchmark { return append([]Benchmark(nil), registry...) }

// Names returns the benchmark names in TABLE I order.
func Names() []string {
	names := make([]string, len(registry))
	for i, b := range registry {
		names[i] = b.Name
	}
	return names
}

// ByName looks a benchmark up by its TABLE I name.
func ByName(name string) (Benchmark, bool) {
	for _, b := range registry {
		if b.Name == name {
			return b, true
		}
	}
	return Benchmark{}, false
}

// ByKind returns the benchmarks of one kind, in TABLE I order.
func ByKind(k Kind) []Benchmark {
	var out []Benchmark
	for _, b := range registry {
		if b.Kind == k {
			out = append(out, b)
		}
	}
	return out
}

// MustBuild builds a benchmark by name, panicking on unknown names (for
// use in examples and benchmarks where the name is a literal).
func MustBuild(name string) *netlist.Circuit {
	b, ok := ByName(name)
	if !ok {
		known := Names()
		sort.Strings(known)
		panic(fmt.Sprintf("gen: unknown benchmark %q (known: %v)", name, known))
	}
	return b.Build()
}

// ---- bus-level building blocks ----------------------------------------
//
// A bus is a little-endian slice of gate IDs: bus[0] is the LSB.

// inputBus adds width named inputs "name0..name{width-1}".
func inputBus(c *netlist.Circuit, name string, width int) []int {
	bus := make([]int, width)
	for i := range bus {
		bus[i] = c.AddInput(fmt.Sprintf("%s%d", name, i))
	}
	return bus
}

// outputBus exposes every bit of the bus as outputs "name0..".
func outputBus(c *netlist.Circuit, name string, bus []int) {
	for i, b := range bus {
		c.AddOutput(fmt.Sprintf("%s%d", name, i), b)
	}
}

// notBus inverts every bit.
func notBus(c *netlist.Circuit, bus []int) []int {
	out := make([]int, len(bus))
	for i, b := range bus {
		out[i] = c.AddGate(cell.Inv, b)
	}
	return out
}

// fullAdder returns (sum, carry) of three bits: sum = a XOR b XOR cin,
// carry = MAJ3(a, b, cin).
func fullAdder(c *netlist.Circuit, a, b, cin int) (sum, carry int) {
	x := c.AddGate(cell.Xor2, a, b)
	sum = c.AddGate(cell.Xor2, x, cin)
	carry = c.AddGate(cell.Maj3, a, b, cin)
	return sum, carry
}

// halfAdder returns (sum, carry) of two bits.
func halfAdder(c *netlist.Circuit, a, b int) (sum, carry int) {
	return c.AddGate(cell.Xor2, a, b), c.AddGate(cell.And2, a, b)
}

// rippleAdd returns the |a|-bit sum bus plus the final carry of a + b +
// cin. Buses must have equal width; pass cin < 0 for no carry-in.
func rippleAdd(c *netlist.Circuit, a, b []int, cin int) (sum []int, cout int) {
	if len(a) != len(b) {
		panic("gen: rippleAdd bus width mismatch")
	}
	sum = make([]int, len(a))
	carry := cin
	for i := range a {
		if carry < 0 {
			sum[i], carry = halfAdder(c, a[i], b[i])
		} else {
			sum[i], carry = fullAdder(c, a[i], b[i], carry)
		}
	}
	return sum, carry
}

// prefixAdd returns the |a|-bit sum and carry-out of a + b + cin using a
// Kogge-Stone parallel-prefix carry network (depth O(log n)). Wide adder
// blocks use it because a timing-driven synthesis (the paper flows Design
// Compiler) never emits deep ripple chains — the paper's Adder16 has a
// 58.9 ps CPD, which only a prefix structure achieves. Pass cin < 0 for
// no carry-in.
func prefixAdd(c *netlist.Circuit, a, b []int, cin int) (sum []int, cout int) {
	if len(a) != len(b) {
		panic("gen: prefixAdd bus width mismatch")
	}
	n := len(a)
	if n == 0 {
		panic("gen: prefixAdd of empty bus")
	}
	g := bitwise(c, cell.And2, a, b)
	p := bitwise(c, cell.Xor2, a, b)
	// Fold the carry-in into bit 0's generate: g0' = g0 | (p0 & cin).
	if cin >= 0 {
		t := c.AddGate(cell.And2, p[0], cin)
		g[0] = c.AddGate(cell.Or2, g[0], t)
	}
	G := append([]int(nil), g...)
	P := append([]int(nil), p...)
	for d := 1; d < n; d <<= 1 {
		nextG := append([]int(nil), G...)
		nextP := append([]int(nil), P...)
		for i := d; i < n; i++ {
			t := c.AddGate(cell.And2, P[i], G[i-d])
			nextG[i] = c.AddGate(cell.Or2, G[i], t)
			nextP[i] = c.AddGate(cell.And2, P[i], P[i-d])
		}
		G, P = nextG, nextP
	}
	sum = make([]int, n)
	if cin >= 0 {
		sum[0] = c.AddGate(cell.Xor2, p[0], cin)
	} else {
		sum[0] = p[0]
	}
	for i := 1; i < n; i++ {
		sum[i] = c.AddGate(cell.Xor2, p[i], G[i-1])
	}
	return sum, G[n-1]
}

// prefixSub returns a - b and the borrow via the prefix adder.
func prefixSub(c *netlist.Circuit, a, b []int) (diff []int, borrow int) {
	nb := notBus(c, b)
	sum, cout := prefixAdd(c, a, nb, c.Const1())
	return sum, c.AddGate(cell.Inv, cout)
}

// rippleSub returns a - b as (diff, borrowOut) using two's complement:
// diff = a + NOT(b) + 1; borrow is the inverted carry (1 when a < b).
func rippleSub(c *netlist.Circuit, a, b []int) (diff []int, borrow int) {
	nb := notBus(c, b)
	sum, cout := rippleAdd(c, a, nb, c.Const1())
	return sum, c.AddGate(cell.Inv, cout)
}

// muxBus selects a (sel=0) or b (sel=1) bit-wise.
func muxBus(c *netlist.Circuit, a, b []int, sel int) []int {
	if len(a) != len(b) {
		panic("gen: muxBus width mismatch")
	}
	out := make([]int, len(a))
	for i := range a {
		out[i] = c.AddGate(cell.Mux2, a[i], b[i], sel)
	}
	return out
}

// bitwise applies a 2-input function across two buses.
func bitwise(c *netlist.Circuit, f cell.Func, a, b []int) []int {
	if len(a) != len(b) {
		panic("gen: bitwise width mismatch")
	}
	out := make([]int, len(a))
	for i := range a {
		out[i] = c.AddGate(f, a[i], b[i])
	}
	return out
}

// reduce folds a bus with a 2-input associative function into one bit
// using a balanced tree.
func reduce(c *netlist.Circuit, f cell.Func, bus []int) int {
	if len(bus) == 0 {
		panic("gen: reduce of empty bus")
	}
	for len(bus) > 1 {
		var next []int
		for i := 0; i+1 < len(bus); i += 2 {
			next = append(next, c.AddGate(f, bus[i], bus[i+1]))
		}
		if len(bus)%2 == 1 {
			next = append(next, bus[len(bus)-1])
		}
		bus = next
	}
	return bus[0]
}

// isZero returns 1 when the whole bus is zero.
func isZero(c *netlist.Circuit, bus []int) int {
	return c.AddGate(cell.Inv, reduce(c, cell.Or2, bus))
}

// lessThan returns 1 when unsigned a < b (the borrow of a-b, computed
// with the prefix subtractor so comparator blocks get the log-depth
// structure a timing-driven synthesis would emit). The diff gates dangle
// unless the caller also uses them.
func lessThan(c *netlist.Circuit, a, b []int) int {
	_, borrow := prefixSub(c, a, b)
	return borrow
}

// equal returns 1 when the buses match bit-for-bit.
func equal(c *netlist.Circuit, a, b []int) int {
	return reduce(c, cell.And2, bitwise(c, cell.Xnor2, a, b))
}

// maxBus returns max(a, b) and the a<b flag.
func maxBus(c *netlist.Circuit, a, b []int) (mx []int, aLess int) {
	aLess = lessThan(c, a, b)
	return muxBus(c, a, b, aLess), aLess
}

// shiftLeftConst shifts the bus left by k, dropping high bits and filling
// with fill (a gate ID, typically Const0); width is preserved.
func shiftLeftConst(c *netlist.Circuit, bus []int, k int, fill int) []int {
	out := make([]int, len(bus))
	for i := range out {
		if i-k >= 0 && i-k < len(bus) {
			out[i] = bus[i-k]
		} else {
			out[i] = fill
		}
	}
	return out
}

// shiftRightConst shifts right by k with fill.
func shiftRightConst(c *netlist.Circuit, bus []int, k int, fill int) []int {
	out := make([]int, len(bus))
	for i := range out {
		if i+k < len(bus) {
			out[i] = bus[i+k]
		} else {
			out[i] = fill
		}
	}
	return out
}

// barrelShift shifts the bus left (dir=false) or right (dir=true) by the
// binary amount encoded on sel (little-endian), filling with Const0.
func barrelShift(c *netlist.Circuit, bus []int, sel []int, right bool) []int {
	fill := c.Const0()
	cur := append([]int(nil), bus...)
	for s, selBit := range sel {
		k := 1 << s
		var shifted []int
		if right {
			shifted = shiftRightConst(c, cur, k, fill)
		} else {
			shifted = shiftLeftConst(c, cur, k, fill)
		}
		cur = muxBus(c, cur, shifted, selBit)
	}
	return cur
}

// constBus materializes a little-endian constant of the given width.
func constBus(c *netlist.Circuit, value uint64, width int) []int {
	bus := make([]int, width)
	for i := range bus {
		if value>>i&1 == 1 {
			bus[i] = c.Const1()
		} else {
			bus[i] = c.Const0()
		}
	}
	return bus
}

// popcount sums the bits of the bus into a ceil(log2(n+1))-bit count
// using a full-adder reduction tree (carry-save counter).
func popcount(c *netlist.Circuit, bus []int) []int {
	// Column-based: cols[w] holds bits of weight 2^w awaiting reduction.
	cols := [][]int{append([]int(nil), bus...)}
	for w := 0; w < len(cols); w++ {
		for len(cols[w]) > 1 {
			if len(cols) == w+1 {
				cols = append(cols, nil)
			}
			if len(cols[w]) >= 3 {
				a, b, ci := cols[w][0], cols[w][1], cols[w][2]
				cols[w] = cols[w][3:]
				s, cy := fullAdder(c, a, b, ci)
				cols[w] = append(cols[w], s)
				cols[w+1] = append(cols[w+1], cy)
			} else {
				a, b := cols[w][0], cols[w][1]
				cols[w] = cols[w][2:]
				s, cy := halfAdder(c, a, b)
				cols[w] = append(cols[w], s)
				cols[w+1] = append(cols[w+1], cy)
			}
		}
	}
	out := make([]int, len(cols))
	for w := range cols {
		if len(cols[w]) == 1 {
			out[w] = cols[w][0]
		} else {
			out[w] = c.Const0()
		}
	}
	return out
}
