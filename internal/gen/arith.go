package gen

import (
	"repro/internal/cell"
	"repro/internal/netlist"
)

// Adder builds the n-bit ripple-carry adder (TABLE I rows "Adder16" and
// "Adder"): inputs a, b (n bits each), outputs s (n+1 bits, carry out as
// the MSB).
func Adder(n int) *netlist.Circuit {
	c := netlist.New(adderName(n))
	a := inputBus(c, "a", n)
	b := inputBus(c, "b", n)
	sum, cout := prefixAdd(c, a, b, -1)
	outputBus(c, "s", append(sum, cout))
	return cleaned(c)
}

func adderName(n int) string {
	if n == 128 {
		return "Adder"
	}
	if n == 16 {
		return "Adder16"
	}
	return "adder"
}

// Max2x16 builds the 16-bit 2-to-1 max unit (TABLE I "Max16").
func Max2x16() *netlist.Circuit { return maxUnit("Max16", 16, 2) }

// Max4x128 builds the 128-bit 4-to-1 max unit (TABLE I "Max").
func Max4x128() *netlist.Circuit { return maxUnit("Max", 128, 4) }

func maxUnit(name string, width, ways int) *netlist.Circuit {
	c := netlist.New(name)
	ops := make([][]int, ways)
	for i := range ops {
		ops[i] = inputBus(c, string(rune('a'+i)), width)
	}
	cur := ops[0]
	for i := 1; i < ways; i++ {
		cur, _ = maxBus(c, cur, ops[i])
	}
	outputBus(c, "m", cur)
	return cleaned(c)
}

// multiplyBus returns the full 2n-bit product of two n-bit buses using a
// carry-save array: AND partial products per column, 3:2 compression with
// full adders, then one final prefix carry-propagate addition. Carries out
// of the top column are mathematically always zero (product < 2^2n) and
// are dropped.
func multiplyBus(c *netlist.Circuit, a, b []int) []int {
	n, m := len(a), len(b)
	width := n + m
	cols := make([][]int, width+2)
	for i := 0; i < n; i++ {
		for j := 0; j < m; j++ {
			cols[i+j] = append(cols[i+j], c.AddGate(cell.And2, a[i], b[j]))
		}
	}
	// 3:2 / 2:2 compression until every column holds at most two bits.
	for w := 0; w < width; w++ {
		for len(cols[w]) > 2 {
			x, y, z := cols[w][0], cols[w][1], cols[w][2]
			cols[w] = cols[w][3:]
			s, cy := fullAdder(c, x, y, z)
			cols[w] = append(cols[w], s)
			cols[w+1] = append(cols[w+1], cy)
		}
	}
	// Final carry-propagate addition of the two remaining rows.
	rowA := make([]int, width)
	rowB := make([]int, width)
	for w := 0; w < width; w++ {
		rowA[w], rowB[w] = c.Const0(), c.Const0()
		if len(cols[w]) > 0 {
			rowA[w] = cols[w][0]
		}
		if len(cols[w]) > 1 {
			rowB[w] = cols[w][1]
		}
	}
	product, _ := prefixAdd(c, rowA, rowB, -1)
	return product
}

// Multiplier builds the n×n array multiplier (TABLE I "c6288" for n=16):
// inputs a, b; output the 2n-bit product p.
func Multiplier(n int) *netlist.Circuit {
	c := netlist.New(multName(n))
	a := inputBus(c, "a", n)
	b := inputBus(c, "b", n)
	outputBus(c, "p", multiplyBus(c, a, b))
	return cleaned(c)
}

func multName(n int) string {
	if n == 16 {
		return "c6288"
	}
	return "mult"
}

// Int2Float builds the 11-bit integer to 7-bit float converter (TABLE I
// "Int2float", the EPFL block): output f = exp(3 bits) · mant(4 bits).
// Semantics (mirrored by the reference model in tests):
//
//	pos  = index of the leading one of x (x > 15), else denormal
//	exp  = pos - 3 for x > 15, else 0
//	mant = (x >> (pos-4)) & 0xF for x > 15, else x & 0xF
func Int2Float() *netlist.Circuit {
	const n = 11
	c := netlist.New("Int2float")
	x := inputBus(c, "x", n)

	// oneAt[p] = 1 iff the leading one of x sits at position p (p=4..10).
	// higherZero tracks "all bits above p are zero".
	higher := c.Const1()
	oneAt := make([]int, n)
	for p := n - 1; p >= 0; p-- {
		oneAt[p] = c.AddGate(cell.And2, x[p], higher)
		notBit := c.AddGate(cell.Inv, x[p])
		higher = c.AddGate(cell.And2, higher, notBit)
	}

	// exp = pos-3 when pos >= 4 else 0; encode binary over p=4..10.
	exp := make([]int, 3)
	for bit := 0; bit < 3; bit++ {
		var terms []int
		for p := 4; p < n; p++ {
			if (p-3)>>bit&1 == 1 {
				terms = append(terms, oneAt[p])
			}
		}
		exp[bit] = reduce(c, cell.Or2, terms)
	}

	// shift amount = pos-4 for pos >= 4 (0..6), else 0; 3-bit select.
	shamt := make([]int, 3)
	for bit := 0; bit < 3; bit++ {
		var terms []int
		for p := 4; p < n; p++ {
			if (p-4)>>bit&1 == 1 {
				terms = append(terms, oneAt[p])
			}
		}
		if len(terms) == 0 {
			shamt[bit] = c.Const0()
		} else {
			shamt[bit] = reduce(c, cell.Or2, terms)
		}
	}
	shifted := barrelShift(c, x, shamt, true)
	mant := shifted[:4]

	outputBus(c, "f", append(append([]int{}, mant...), exp...))
	return cleaned(c)
}

// Sqrt builds the n-bit restoring square-root unit (TABLE I "Sqrt" for
// n=128): input x (n bits, n even), output r = floor(sqrt(x)) (n/2 bits).
// The classic digit-recurrence: two radicand bits enter the remainder per
// step; a trial subtraction of (R<<2)|1 decides each root bit.
func Sqrt(n int) *netlist.Circuit {
	if n%2 != 0 {
		panic("gen: Sqrt width must be even")
	}
	c := netlist.New(sqrtName(n))
	x := inputBus(c, "x", n)
	half := n / 2
	remW := half + 2

	zero := c.Const0()
	rem := make([]int, remW)
	for i := range rem {
		rem[i] = zero
	}
	root := make([]int, half) // filled MSB-first; unknown bits read as 0
	for i := range root {
		root[i] = zero
	}

	for step := 0; step < half; step++ {
		i := half - 1 - step
		// rem = (rem << 2) | x[2i+1..2i]
		shifted := make([]int, remW)
		shifted[0], shifted[1] = x[2*i], x[2*i+1]
		copy(shifted[2:], rem[:remW-2])
		// trial = (root << 2) | 1
		trial := make([]int, remW)
		trial[0] = c.Const1()
		trial[1] = zero
		copy(trial[2:], root[:remW-2])
		diff, borrow := rippleSub(c, shifted, trial)
		fits := c.AddGate(cell.Inv, borrow) // 1 when shifted >= trial
		rem = muxBus(c, shifted, diff, fits)
		// root = (root << 1) | fits
		next := make([]int, half)
		next[0] = fits
		copy(next[1:], root[:half-1])
		root = next
	}
	outputBus(c, "r", root)
	return cleaned(c)
}

func sqrtName(n int) string {
	if n == 128 {
		return "Sqrt"
	}
	return "sqrt"
}

// mulHigh returns the top len(a) bits of the product of two equal-width
// buses — fixed-point multiply with truncation.
func mulHigh(c *netlist.Circuit, a, b []int) []int {
	p := multiplyBus(c, a, b)
	return p[len(a):]
}

// Sin24 builds the 24-bit fixed-point sine unit (TABLE I "Sin"). The
// input x is an unsigned Q0.24 fraction of a quarter turn; the output is
// the 24-bit polynomial approximation plus a guard bit:
//
//	x2 = (x*x) >> 24
//	t  = C1 - ((x2*C2) >> 24)        (C1 = pi/2 in Q1.23-ish scale)
//	y  = (x*t) >> 24, plus the borrow bit of the subtraction
//
// The unit's specification IS this fixed-point dataflow (mirrored exactly
// by the tests' reference model); it reproduces the multiplier-dominated
// structure of the EPFL sin block.
func Sin24() *netlist.Circuit {
	const (
		n  = 24
		c1 = 0xC90FDA // ~ (pi/2) * 2^23
		c2 = 0x4EF4F3 // cubic-term coefficient in the same scale
	)
	c := netlist.New("Sin")
	x := inputBus(c, "x", n)

	x2 := mulHigh(c, x, x)
	c2bus := constBus(c, c2, n)
	x3term := mulHigh(c, x2, c2bus)
	c1bus := constBus(c, c1, n)
	t, borrow := prefixSub(c, c1bus, x3term)
	y := mulHigh(c, x, t)

	outputBus(c, "y", y)
	c.AddOutput("guard", borrow)
	return cleaned(c)
}
