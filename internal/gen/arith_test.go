package gen

import (
	"math/big"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/netlist"
	"repro/internal/sim"
)

// piBig / poBig decode wide buses into big.Int for the 128-bit units.
func piBig(v *sim.Vectors, lo, width, k int) *big.Int {
	x := new(big.Int)
	for i := 0; i < width; i++ {
		if v.PerPI[lo+i][k/64]>>(k%64)&1 == 1 {
			x.SetBit(x, i, 1)
		}
	}
	return x
}

func poBig(c *netlist.Circuit, res *sim.Result, lo, width, k int) *big.Int {
	x := new(big.Int)
	for i := 0; i < width; i++ {
		if res.Signals[c.POs[lo+i]][k/64]>>(k%64)&1 == 1 {
			x.SetBit(x, i, 1)
		}
	}
	return x
}

func TestAdder16Exact(t *testing.T) {
	c := MustBuild("Adder16")
	v, res := runRandom(t, c, 21, 2048)
	for k := 0; k < v.N; k++ {
		a := piVal(v, 0, 16, k)
		b := piVal(v, 16, 16, k)
		got := poVal(c, res, 0, 17, k)
		if want := a + b; got != want {
			t.Fatalf("vector %d: %d + %d = %d, want %d", k, a, b, got, want)
		}
	}
}

func TestAdder128Exact(t *testing.T) {
	c := MustBuild("Adder")
	v, res := runRandom(t, c, 22, 256)
	for k := 0; k < v.N; k++ {
		a := piBig(v, 0, 128, k)
		b := piBig(v, 128, 128, k)
		got := poBig(c, res, 0, 129, k)
		want := new(big.Int).Add(a, b)
		if got.Cmp(want) != 0 {
			t.Fatalf("vector %d: sum mismatch", k)
		}
	}
}

func TestMax16Exact(t *testing.T) {
	c := MustBuild("Max16")
	v, res := runRandom(t, c, 23, 2048)
	for k := 0; k < v.N; k++ {
		a := piVal(v, 0, 16, k)
		b := piVal(v, 16, 16, k)
		got := poVal(c, res, 0, 16, k)
		want := a
		if b > a {
			want = b
		}
		if got != want {
			t.Fatalf("vector %d: max(%d,%d) = %d, want %d", k, a, b, got, want)
		}
	}
}

func TestMax128Exact(t *testing.T) {
	c := MustBuild("Max")
	v, res := runRandom(t, c, 24, 128)
	for k := 0; k < v.N; k++ {
		want := piBig(v, 0, 128, k)
		for op := 1; op < 4; op++ {
			if x := piBig(v, op*128, 128, k); x.Cmp(want) > 0 {
				want = x
			}
		}
		if got := poBig(c, res, 0, 128, k); got.Cmp(want) != 0 {
			t.Fatalf("vector %d: 4-way max mismatch", k)
		}
	}
}

func TestMultiplier16Exact(t *testing.T) {
	c := MustBuild("c6288")
	v, res := runRandom(t, c, 25, 1024)
	for k := 0; k < v.N; k++ {
		a := piVal(v, 0, 16, k)
		b := piVal(v, 16, 16, k)
		got := poVal(c, res, 0, 32, k)
		if want := a * b; got != want {
			t.Fatalf("vector %d: %d * %d = %d, want %d", k, a, b, got, want)
		}
	}
}

func TestMultiplierSmallExhaustive(t *testing.T) {
	c := Multiplier(4)
	v, err := sim.Exhaustive(8)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run(c, v)
	if err != nil {
		t.Fatal(err)
	}
	for k := 0; k < v.N; k++ {
		a := piVal(v, 0, 4, k)
		b := piVal(v, 4, 4, k)
		if got := poVal(c, res, 0, 8, k); got != a*b {
			t.Fatalf("%d * %d = %d, want %d", a, b, got, a*b)
		}
	}
}

func isqrt(x uint64) uint64 {
	if x == 0 {
		return 0
	}
	r := uint64(1) << (64 - uint(len(bitsOf(x)))/2)
	_ = r
	// Newton iteration on uint64.
	y := x
	z := (y + 1) / 2
	for z < y {
		y = z
		z = (y + x/y) / 2
	}
	return y
}

func bitsOf(x uint64) []bool {
	var out []bool
	for ; x > 0; x >>= 1 {
		out = append(out, x&1 == 1)
	}
	return out
}

func TestSqrt16Exhaustive(t *testing.T) {
	c := Sqrt(16)
	v, err := sim.Exhaustive(16)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run(c, v)
	if err != nil {
		t.Fatal(err)
	}
	for k := 0; k < v.N; k++ {
		x := piVal(v, 0, 16, k)
		if got, want := poVal(c, res, 0, 8, k), isqrt(x); got != want {
			t.Fatalf("sqrt(%d) = %d, want %d", x, got, want)
		}
	}
}

func TestSqrt128Random(t *testing.T) {
	c := MustBuild("Sqrt")
	v, res := runRandom(t, c, 26, 64)
	for k := 0; k < v.N; k++ {
		x := piBig(v, 0, 128, k)
		want := new(big.Int).Sqrt(x)
		if got := poBig(c, res, 0, 64, k); got.Cmp(want) != 0 {
			t.Fatalf("vector %d: sqrt mismatch: got %s want %s (x=%s)", k, got, want, x)
		}
	}
}

// int2floatRef mirrors the generator's documented semantics.
func int2floatRef(x uint64) (mant, exp uint64) {
	if x < 16 {
		return x & 0xF, 0
	}
	pos := 63
	for x>>uint(pos)&1 == 0 {
		pos--
	}
	return (x >> uint(pos-4)) & 0xF, uint64(pos - 3)
}

func TestInt2FloatExhaustive(t *testing.T) {
	c := MustBuild("Int2float")
	v, err := sim.Exhaustive(11)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run(c, v)
	if err != nil {
		t.Fatal(err)
	}
	for k := 0; k < v.N; k++ {
		x := piVal(v, 0, 11, k)
		mant := poVal(c, res, 0, 4, k)
		exp := poVal(c, res, 4, 3, k)
		wm, we := int2floatRef(x)
		if mant != wm || exp != we {
			t.Fatalf("int2float(%d) = mant %d exp %d, want %d %d", x, mant, exp, wm, we)
		}
	}
}

// sin24Ref mirrors the generator's fixed-point dataflow exactly.
func sin24Ref(x uint64) (y uint64, guard bool) {
	const c1, c2 = 0xC90FDA, 0x4EF4F3
	const mask = (1 << 24) - 1
	x2 := (x * x) >> 24
	x3term := (x2 * c2) >> 24
	t := (c1 - x3term) & mask
	guard = c1 < x3term
	y = (x * t) >> 24
	return y & mask, guard
}

func TestSin24MatchesReference(t *testing.T) {
	c := MustBuild("Sin")
	v, res := runRandom(t, c, 27, 1024)
	for k := 0; k < v.N; k++ {
		x := piVal(v, 0, 24, k)
		got := poVal(c, res, 0, 24, k)
		guard := poBit(c, res, 24, k) == 1
		want, wantGuard := sin24Ref(x)
		if got != want || guard != wantGuard {
			t.Fatalf("sin(%06x) = %06x guard %v, want %06x %v", x, got, guard, want, wantGuard)
		}
	}
}

func TestSin24Monotonic(t *testing.T) {
	// Sanity: the polynomial rises over the first half of the range
	// (sin is increasing on [0, pi/2)).
	prev := uint64(0)
	for _, x := range []uint64{0, 1 << 20, 1 << 21, 1 << 22, 1 << 23} {
		y, _ := sin24Ref(x)
		if y < prev {
			t.Fatalf("sin24Ref not increasing at %d", x)
		}
		prev = y
	}
}

// Property: popcount helper matches bits.OnesCount via a tiny circuit.
func TestPopcountProperty(t *testing.T) {
	c := netlist.New("pc")
	x := inputBus(c, "x", 12)
	outputBus(c, "n", popcount(c, x))
	v, err := sim.Exhaustive(12)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run(c, v)
	if err != nil {
		t.Fatal(err)
	}
	width := len(c.POs)
	for k := 0; k < v.N; k++ {
		x := piVal(v, 0, 12, k)
		got := poVal(c, res, 0, width, k)
		want := uint64(0)
		for t := x; t > 0; t &= t - 1 {
			want++
		}
		if got != want {
			t.Fatalf("popcount(%012b) = %d, want %d", x, got, want)
		}
	}
}

// Property: barrelShift right matches x >> s.
func TestBarrelShiftProperty(t *testing.T) {
	c := netlist.New("bs")
	x := inputBus(c, "x", 8)
	s := inputBus(c, "s", 3)
	outputBus(c, "y", barrelShift(c, x, s, true))
	v, err := sim.Exhaustive(11)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run(c, v)
	if err != nil {
		t.Fatal(err)
	}
	for k := 0; k < v.N; k++ {
		xv := piVal(v, 0, 8, k)
		sv := piVal(v, 8, 3, k)
		if got := poVal(c, res, 0, 8, k); got != xv>>sv {
			t.Fatalf("%d >> %d = %d, want %d", xv, sv, got, xv>>sv)
		}
	}
}

// Property (testing/quick): the ripple adder circuit built at width 32
// adds any pair of uint32 correctly.
func TestRippleAddQuick(t *testing.T) {
	c := netlist.New("add32")
	a := inputBus(c, "a", 32)
	b := inputBus(c, "b", 32)
	sum, cout := rippleAdd(c, a, b, -1)
	outputBus(c, "s", append(sum, cout))

	f := func(x, y uint32) bool {
		v := &sim.Vectors{PerPI: make([][]uint64, 64), N: 1}
		for i := 0; i < 32; i++ {
			v.PerPI[i] = []uint64{uint64(x >> i & 1)}
			v.PerPI[32+i] = []uint64{uint64(y >> i & 1)}
		}
		res, err := sim.Run(c, v)
		if err != nil {
			return false
		}
		return poVal(c, res, 0, 33, 0) == uint64(x)+uint64(y)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(9))}); err != nil {
		t.Error(err)
	}
}
