package gen

import (
	"testing"

	"repro/internal/cell"
	"repro/internal/netlist"
	"repro/internal/sim"
	"repro/internal/sta"
)

func TestAdderArchExhaustive8(t *testing.T) {
	for _, arch := range Arches() {
		arch := arch
		t.Run(arch.String(), func(t *testing.T) {
			c := AdderArch(8, arch)
			if err := c.Validate(); err != nil {
				t.Fatal(err)
			}
			v, err := sim.Exhaustive(16)
			if err != nil {
				t.Fatal(err)
			}
			res, err := sim.Run(c, v)
			if err != nil {
				t.Fatal(err)
			}
			for k := 0; k < v.N; k++ {
				a := piVal(v, 0, 8, k)
				b := piVal(v, 8, 8, k)
				if got := poVal(c, res, 0, 9, k); got != a+b {
					t.Fatalf("%v: %d + %d = %d, want %d", arch, a, b, got, a+b)
				}
			}
		})
	}
}

func TestAdderArchRandom32(t *testing.T) {
	for _, arch := range Arches() {
		c := AdderArch(32, arch)
		v, res := runRandom(t, c, 41, 2048)
		for k := 0; k < v.N; k++ {
			a := piVal(v, 0, 32, k)
			b := piVal(v, 32, 32, k)
			if got := poVal(c, res, 0, 33, k); got != a+b {
				t.Fatalf("%v: add mismatch at vector %d", arch, k)
			}
		}
	}
}

func TestAdderArchDepthOrdering(t *testing.T) {
	lib := cell.Default28nm()
	depth := map[Arch]int{}
	for _, arch := range Arches() {
		c := AdderArch(32, arch)
		rep, err := sta.Analyze(c, lib)
		if err != nil {
			t.Fatal(err)
		}
		depth[arch] = rep.MaxDepth
	}
	// At 32 bits the sqrt-blocked carry-select lands near the prefix
	// depth; the hard requirements are prefix <= select << ripple.
	if !(depth[KoggeStone] <= depth[CarrySelect] && depth[CarrySelect] < depth[Ripple]) {
		t.Errorf("depth ordering violated: KS %d, CS %d, RCA %d",
			depth[KoggeStone], depth[CarrySelect], depth[Ripple])
	}
}

func TestAdderArchAreaOrdering(t *testing.T) {
	lib := cell.Default28nm()
	area := map[Arch]float64{}
	for _, arch := range Arches() {
		area[arch] = AdderArch(32, arch).Area(lib)
	}
	if !(area[Ripple] < area[CarrySelect]) {
		t.Errorf("ripple must be the smallest: RCA %.1f, CS %.1f", area[Ripple], area[CarrySelect])
	}
	if !(area[Ripple] < area[KoggeStone]) {
		t.Errorf("prefix network must cost area over ripple: RCA %.1f, KS %.1f", area[Ripple], area[KoggeStone])
	}
}

func TestArchString(t *testing.T) {
	want := map[Arch]string{Ripple: "ripple", CarrySelect: "carry-select", KoggeStone: "kogge-stone"}
	for a, s := range want {
		if a.String() != s {
			t.Errorf("%d.String() = %q", a, a.String())
		}
	}
}

func TestAdderArchUnknownPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("unknown architecture must panic")
		}
	}()
	AdderArch(8, Arch(9))
}

func TestCarrySelectOddWidth(t *testing.T) {
	// Widths that do not divide evenly into blocks must still be exact.
	c := AdderArch(13, CarrySelect)
	v, res := runRandom(t, c, 43, 4096)
	for k := 0; k < v.N; k++ {
		a := piVal(v, 0, 13, k)
		b := piVal(v, 13, 13, k)
		if got := poVal(c, res, 0, 14, k); got != a+b {
			t.Fatalf("13-bit CS: %d + %d = %d", a, b, got)
		}
	}
}

var sinkCircuit *netlist.Circuit

func BenchmarkBuildAdder128KoggeStone(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sinkCircuit = AdderArch(128, KoggeStone)
	}
}
