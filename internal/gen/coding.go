package gen

import (
	"fmt"

	"repro/internal/cell"
	"repro/internal/netlist"
)

// Cavlc builds a CAVLC-style coding block standing in for the EPFL
// "Cavlc" control benchmark (10 PI / 11 PO): the coefficient-token coder
// shape — a popcount of the input "coefficient" bits, a leading-one
// priority detector, and several rounds of nonlinear code mixing — which
// reproduces the irregular, reconvergent control logic ALS must handle.
func Cavlc() *netlist.Circuit {
	const n = 10
	c := netlist.New("Cavlc")
	x := inputBus(c, "x", n)

	// Coefficient count (4 bits).
	count := popcount(c, x)

	// Leading-one priority chain.
	higher := c.Const1()
	oneAt := make([]int, n)
	for p := n - 1; p >= 0; p-- {
		oneAt[p] = c.AddGate(cell.And2, x[p], higher)
		higher = c.AddGate(cell.And2, higher, c.AddGate(cell.Inv, x[p]))
	}
	// Binary position of the leading one (4 bits).
	pos := make([]int, 4)
	for bit := range pos {
		var terms []int
		for p := 0; p < n; p++ {
			if p>>bit&1 == 1 {
				terms = append(terms, oneAt[p])
			}
		}
		if len(terms) == 0 {
			pos[bit] = c.Const0()
		} else {
			pos[bit] = reduce(c, cell.Or2, terms)
		}
	}

	// Nonlinear mixing rounds over a 10-bit state (an abstracted
	// variable-length code table: deep, irregular, reconvergent).
	state := append([]int(nil), x...)
	for round := 0; round < 12; round++ {
		next := make([]int, n)
		for i := 0; i < n; i++ {
			and := c.AddGate(cell.And2, state[(i+1)%n], state[(i+3)%n])
			or := c.AddGate(cell.Or2, state[i], state[(i+7)%n])
			next[i] = c.AddGate(cell.Xor2, and, or)
		}
		// Fold in a count bit every third round to keep the cone tied
		// to the arithmetic part.
		if round%3 == 0 {
			next[round%n] = c.AddGate(cell.Xnor2, next[round%n], count[round/3%len(count)])
		}
		state = next
	}

	// Outputs: a 5-bit token = state msbs XOR pos/count digest, plus a
	// 4-bit level code and run parity — 11 POs total like the paper.
	for i := 0; i < 5; i++ {
		tok := c.AddGate(cell.Xor2, state[n-1-i], pos[i%4])
		c.AddOutput(fmt.Sprintf("token%d", i), tok)
	}
	for i := 0; i < 4; i++ {
		lvl := c.AddGate(cell.Xor2, state[i], count[i%len(count)])
		c.AddOutput(fmt.Sprintf("level%d", i), lvl)
	}
	c.AddOutput("run", reduce(c, cell.Xor2, state))
	c.AddOutput("sign", c.AddGate(cell.And2, state[2], state[5]))
	return cleaned(c)
}

// secdedDataPositions lists the Hamming codeword positions (1-based) that
// carry data bits for a (22,16) code: every position that is not a power
// of two, in increasing order.
func secdedDataPositions() []int {
	var pos []int
	for p := 1; p <= 22 && len(pos) < 16; p++ {
		if p&(p-1) != 0 { // not a power of two
			pos = append(pos, p)
		}
	}
	return pos
}

// SECDED16 builds the 16-bit SEC/DED checker/corrector standing in for
// ISCAS c1908. Inputs: the 22-bit received Hamming codeword (16 data + 5
// check bits at power-of-two positions, 1-based positions 1..22) plus an
// overall parity bit. Outputs: the 16 corrected data bits, the 5-bit
// syndrome, a single-error flag and a double-error flag.
func SECDED16() *netlist.Circuit {
	c := netlist.New("c1908")
	rx := inputBus(c, "rx", 22) // rx[i] is codeword position i+1
	ov := c.AddInput("ov")      // received overall parity

	// Syndrome bit j = XOR of all received positions with bit j set.
	syn := make([]int, 5)
	for j := 0; j < 5; j++ {
		var terms []int
		for p := 1; p <= 22; p++ {
			if p>>j&1 == 1 {
				terms = append(terms, rx[p-1])
			}
		}
		syn[j] = reduce(c, cell.Xor2, terms)
	}
	synNonZero := reduce(c, cell.Or2, syn)

	// Overall parity check: XOR of all 22 bits plus the received overall
	// parity; 1 means the total parity is violated (odd error count).
	all := append(append([]int{}, rx...), ov)
	parityErr := reduce(c, cell.Xor2, all)

	// Single error: syndrome nonzero and overall parity violated.
	// Double error: syndrome nonzero but overall parity consistent.
	sec := c.AddGate(cell.And2, synNonZero, parityErr)
	ded := c.AddGate(cell.And2, synNonZero, c.AddGate(cell.Inv, parityErr))

	// Correct each data position: flip when the syndrome equals the
	// position and a single error is indicated.
	dataPos := secdedDataPositions()
	corrected := make([]int, 16)
	for i, p := range dataPos {
		match := equal(c, syn, constBus(c, uint64(p), 5))
		flip := c.AddGate(cell.And2, match, sec)
		corrected[i] = c.AddGate(cell.Xor2, rx[p-1], flip)
	}

	outputBus(c, "d", corrected)
	outputBus(c, "syn", syn)
	c.AddOutput("sec", sec)
	c.AddOutput("ded", ded)
	return cleaned(c)
}
