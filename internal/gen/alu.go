package gen

import (
	"fmt"

	"repro/internal/cell"
	"repro/internal/netlist"
)

// aluCore builds the shared n-bit ALU datapath: operands a and b, a 3-bit
// opcode, returning the result bus and (carry, overflow) of the add/sub
// ops. Opcodes (mirrored by the tests' reference model):
//
//	000 ADD   001 SUB   010 AND   011 OR
//	100 XOR   101 NOR   110 SHL1  111 SHR1 (of a)
func aluCore(c *netlist.Circuit, a, b, op []int) (result []int, carry, overflow int) {
	n := len(a)
	addSum, addC := rippleAdd(c, a, b, -1)
	subDiff, borrow := rippleSub(c, a, b)
	andB := bitwise(c, cell.And2, a, b)
	orB := bitwise(c, cell.Or2, a, b)
	xorB := bitwise(c, cell.Xor2, a, b)
	norB := bitwise(c, cell.Nor2, a, b)
	shl := shiftLeftConst(c, a, 1, c.Const0())
	shr := shiftRightConst(c, a, 1, c.Const0())

	// 8:1 result mux per bit using a 3-level mux tree on op bits.
	lvl0a := muxBus(c, addSum, subDiff, op[0]) // 00x
	lvl0b := muxBus(c, andB, orB, op[0])       // 01x
	lvl0c := muxBus(c, xorB, norB, op[0])      // 10x
	lvl0d := muxBus(c, shl, shr, op[0])        // 11x
	lvl1a := muxBus(c, lvl0a, lvl0b, op[1])
	lvl1b := muxBus(c, lvl0c, lvl0d, op[1])
	result = muxBus(c, lvl1a, lvl1b, op[2])

	carry = c.AddGate(cell.Mux2, addC, borrow, op[0])
	// Signed overflow of a+b: carry into MSB xor carry out of MSB;
	// equivalent form: (a.msb == b.msb) AND (sum.msb != a.msb).
	sameSign := c.AddGate(cell.Xnor2, a[n-1], b[n-1])
	flipped := c.AddGate(cell.Xor2, addSum[n-1], a[n-1])
	overflow = c.AddGate(cell.And2, sameSign, flipped)
	return result, carry, overflow
}

// aluFlags derives the standard flag bits from a result bus.
func aluFlags(c *netlist.Circuit, result []int) (zero, negative, parity int) {
	zero = isZero(c, result)
	negative = result[len(result)-1]
	parity = reduce(c, cell.Xor2, result)
	return
}

// ALU8 builds the 8-bit ALU standing in for ISCAS c880: result bus plus
// carry/overflow/zero/negative flags.
func ALU8() *netlist.Circuit {
	c := netlist.New("c880")
	a := inputBus(c, "a", 8)
	b := inputBus(c, "b", 8)
	op := inputBus(c, "op", 3)
	result, carry, overflow := aluCore(c, a, b, op)
	zero, neg, par := aluFlags(c, result)
	outputBus(c, "r", result)
	c.AddOutput("carry", carry)
	c.AddOutput("ovf", overflow)
	c.AddOutput("zero", zero)
	c.AddOutput("neg", neg)
	c.AddOutput("par", par)
	return cleaned(c)
}

// ALU12Ctrl builds the 12-bit ALU plus controller standing in for ISCAS
// c2670: the ALU datapath, a 4→16 one-hot opcode decoder, comparator
// outputs and branch-control logic.
func ALU12Ctrl() *netlist.Circuit {
	c := netlist.New("c2670")
	a := inputBus(c, "a", 12)
	b := inputBus(c, "b", 12)
	op := inputBus(c, "op", 3)
	cond := inputBus(c, "cond", 4)

	result, carry, overflow := aluCore(c, a, b, op)
	zero, neg, par := aluFlags(c, result)

	// Controller: decode cond to one-hot (a 4→16 decoder built from the
	// literals), then branch = OR of (decoded line AND matching flag).
	lits := make([][2]int, 4)
	for i, bit := range cond {
		lits[i] = [2]int{c.AddGate(cell.Inv, bit), bit}
	}
	dec := make([]int, 16)
	for v := 0; v < 16; v++ {
		t1 := c.AddGate(cell.And2, lits[0][v&1], lits[1][v>>1&1])
		t2 := c.AddGate(cell.And2, lits[2][v>>2&1], lits[3][v>>3&1])
		dec[v] = c.AddGate(cell.And2, t1, t2)
	}
	flags := []int{zero, neg, carry, overflow}
	var taken []int
	for v := 0; v < 16; v++ {
		taken = append(taken, c.AddGate(cell.And2, dec[v], flags[v%4]))
	}
	branch := reduce(c, cell.Or2, taken)

	eq := equal(c, a, b)
	lt := lessThan(c, a, b)

	outputBus(c, "r", result)
	outputBus(c, "dec", dec)
	c.AddOutput("branch", branch)
	c.AddOutput("eq", eq)
	c.AddOutput("lt", lt)
	c.AddOutput("carry", carry)
	c.AddOutput("ovf", overflow)
	c.AddOutput("zero", zero)
	c.AddOutput("neg", neg)
	c.AddOutput("par", par)
	return cleaned(c)
}

// ALU8Shift builds the 8-bit ALU with a barrel shifter standing in for
// ISCAS c3540: the ALU result is additionally rotated/shifted by a 3-bit
// amount, with a mode bit selecting shift direction.
func ALU8Shift() *netlist.Circuit {
	c := netlist.New("c3540")
	a := inputBus(c, "a", 8)
	b := inputBus(c, "b", 8)
	op := inputBus(c, "op", 3)
	sh := inputBus(c, "sh", 3)
	dir := c.AddInput("dir")

	result, carry, overflow := aluCore(c, a, b, op)
	left := barrelShift(c, result, sh, false)
	right := barrelShift(c, result, sh, true)
	shifted := muxBus(c, left, right, dir)
	zero, neg, par := aluFlags(c, shifted)

	outputBus(c, "r", shifted)
	c.AddOutput("carry", carry)
	c.AddOutput("ovf", overflow)
	c.AddOutput("zero", zero)
	c.AddOutput("neg", neg)
	c.AddOutput("par", par)
	return cleaned(c)
}

// ALU9 builds the 9-bit double-datapath ALU standing in for ISCAS c5315:
// two independent 9-bit ALU slices whose results are cross-combined, plus
// a comparator block — reproducing c5315's wide-I/O, many-output shape.
func ALU9() *netlist.Circuit {
	c := netlist.New("c5315")
	a := inputBus(c, "a", 9)
	b := inputBus(c, "b", 9)
	d := inputBus(c, "d", 9)
	e := inputBus(c, "e", 9)
	op1 := inputBus(c, "op1", 3)
	op2 := inputBus(c, "op2", 3)

	r1, carry1, ovf1 := aluCore(c, a, b, op1)
	r2, carry2, ovf2 := aluCore(c, d, e, op2)

	// Cross combination: sum and xor of the two results.
	cross, crossC := rippleAdd(c, r1, r2, -1)
	mix := bitwise(c, cell.Xor2, r1, r2)
	mx, less := maxBus(c, r1, r2)

	z1, n1, p1 := aluFlags(c, r1)
	z2, n2, p2 := aluFlags(c, r2)

	outputBus(c, "r1", r1)
	outputBus(c, "r2", r2)
	outputBus(c, "sum", cross)
	outputBus(c, "mix", mix)
	outputBus(c, "mx", mx)
	for i, f := range []int{carry1, ovf1, carry2, ovf2, crossC, less, z1, n1, p1, z2, n2, p2} {
		c.AddOutput(fmt.Sprintf("f%d", i), f)
	}
	return cleaned(c)
}

// AdderCmp32 builds the 32-bit adder/comparator standing in for ISCAS
// c7552: a 32-bit add with carry, a three-way comparison of a against a
// third operand, and per-byte parity outputs.
func AdderCmp32() *netlist.Circuit {
	c := netlist.New("c7552")
	a := inputBus(c, "a", 32)
	b := inputBus(c, "b", 32)
	d := inputBus(c, "d", 32)

	sum, cout := prefixAdd(c, a, b, -1)
	lt := lessThan(c, a, d)
	eq := equal(c, a, d)
	gtOrEq := c.AddGate(cell.Inv, lt)
	gt := c.AddGate(cell.And2, gtOrEq, c.AddGate(cell.Inv, eq))

	outputBus(c, "s", sum)
	c.AddOutput("cout", cout)
	c.AddOutput("lt", lt)
	c.AddOutput("eq", eq)
	c.AddOutput("gt", gt)
	for byteIdx := 0; byteIdx < 4; byteIdx++ {
		par := reduce(c, cell.Xor2, sum[byteIdx*8:byteIdx*8+8])
		c.AddOutput(fmt.Sprintf("p%d", byteIdx), par)
	}
	return cleaned(c)
}
