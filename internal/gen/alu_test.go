package gen

import (
	"math/bits"
	"testing"
)

// aluRef mirrors aluCore + aluFlags for width n. It returns the result and
// the carry/overflow flags as produced by the hardware (carry = add carry
// for even opcodes, subtract borrow for odd ones; overflow always derived
// from the adder).
func aluRef(op, a, b uint64, n uint) (r uint64, carry, ovf bool) {
	mask := uint64(1)<<n - 1
	add := (a + b) & mask
	addC := (a+b)>>n&1 == 1
	sub := (a - b) & mask
	borrow := a < b
	switch op {
	case 0:
		r = add
	case 1:
		r = sub
	case 2:
		r = a & b
	case 3:
		r = a | b
	case 4:
		r = a ^ b
	case 5:
		r = ^(a | b) & mask
	case 6:
		r = (a << 1) & mask
	case 7:
		r = a >> 1
	}
	if op&1 == 1 {
		carry = borrow
	} else {
		carry = addC
	}
	msb := uint(n - 1)
	sameSign := a>>msb&1 == b>>msb&1
	flipped := add>>msb&1 != a>>msb&1
	ovf = sameSign && flipped
	return r, carry, ovf
}

func flagsRef(r uint64, n uint) (zero, neg, par bool) {
	zero = r == 0
	neg = r>>(n-1)&1 == 1
	par = bits.OnesCount64(r)%2 == 1
	return
}

func TestALU8AllOps(t *testing.T) {
	c := MustBuild("c880")
	v, res := runRandom(t, c, 31, 4096)
	for k := 0; k < v.N; k++ {
		a := piVal(v, 0, 8, k)
		b := piVal(v, 8, 8, k)
		op := piVal(v, 16, 3, k)
		wantR, wantC, wantO := aluRef(op, a, b, 8)
		wantZ, wantN, wantP := flagsRef(wantR, 8)
		if got := poVal(c, res, 0, 8, k); got != wantR {
			t.Fatalf("op %d: alu(%d,%d) = %d, want %d", op, a, b, got, wantR)
		}
		if got := poBit(c, res, 8, k) == 1; got != wantC {
			t.Fatalf("op %d: carry = %v, want %v", op, got, wantC)
		}
		if got := poBit(c, res, 9, k) == 1; got != wantO {
			t.Fatalf("op %d: ovf = %v, want %v", op, got, wantO)
		}
		if got := poBit(c, res, 10, k) == 1; got != wantZ {
			t.Fatalf("op %d: zero = %v, want %v", op, got, wantZ)
		}
		if got := poBit(c, res, 11, k) == 1; got != wantN {
			t.Fatalf("op %d: neg = %v, want %v", op, got, wantN)
		}
		if got := poBit(c, res, 12, k) == 1; got != wantP {
			t.Fatalf("op %d: par = %v, want %v", op, got, wantP)
		}
	}
}

func TestALU8ShiftAllOps(t *testing.T) {
	c := MustBuild("c3540")
	v, res := runRandom(t, c, 32, 4096)
	for k := 0; k < v.N; k++ {
		a := piVal(v, 0, 8, k)
		b := piVal(v, 8, 8, k)
		op := piVal(v, 16, 3, k)
		sh := piVal(v, 19, 3, k)
		dir := piVal(v, 22, 1, k)
		core, wantC, wantO := aluRef(op, a, b, 8)
		var want uint64
		if dir == 1 {
			want = core >> sh
		} else {
			want = (core << sh) & 0xFF
		}
		wantZ, wantN, wantP := flagsRef(want, 8)
		if got := poVal(c, res, 0, 8, k); got != want {
			t.Fatalf("vector %d: shifted result %d, want %d", k, got, want)
		}
		for i, wantF := range []bool{wantC, wantO, wantZ, wantN, wantP} {
			if got := poBit(c, res, 8+i, k) == 1; got != wantF {
				t.Fatalf("vector %d: flag %d = %v, want %v", k, i, got, wantF)
			}
		}
	}
}

func TestALU12CtrlDatapathAndController(t *testing.T) {
	c := MustBuild("c2670")
	v, res := runRandom(t, c, 33, 4096)
	for k := 0; k < v.N; k++ {
		a := piVal(v, 0, 12, k)
		b := piVal(v, 12, 12, k)
		op := piVal(v, 24, 3, k)
		cond := piVal(v, 27, 4, k)
		wantR, wantC, wantO := aluRef(op, a, b, 12)
		wantZ, wantN, wantP := flagsRef(wantR, 12)
		if got := poVal(c, res, 0, 12, k); got != wantR {
			t.Fatalf("vector %d: result %d, want %d", k, got, wantR)
		}
		// One-hot decoder outputs.
		if got := poVal(c, res, 12, 16, k); got != 1<<cond {
			t.Fatalf("vector %d: decoder %016b, want one-hot %d", k, got, cond)
		}
		// branch = flag[cond % 4] with flags (zero, neg, carry, ovf).
		flags := []bool{wantZ, wantN, wantC, wantO}
		if got := poBit(c, res, 28, k) == 1; got != flags[cond%4] {
			t.Fatalf("vector %d: branch %v, want %v (cond %d)", k, got, flags[cond%4], cond)
		}
		if got := poBit(c, res, 29, k) == 1; got != (a == b) {
			t.Fatalf("vector %d: eq mismatch", k)
		}
		if got := poBit(c, res, 30, k) == 1; got != (a < b) {
			t.Fatalf("vector %d: lt mismatch", k)
		}
		wantFlags := []bool{wantC, wantO, wantZ, wantN, wantP}
		for i, wf := range wantFlags {
			if got := poBit(c, res, 31+i, k) == 1; got != wf {
				t.Fatalf("vector %d: flag %d mismatch", k, i)
			}
		}
	}
}

func TestALU9DualDatapath(t *testing.T) {
	c := MustBuild("c5315")
	v, res := runRandom(t, c, 34, 2048)
	for k := 0; k < v.N; k++ {
		a := piVal(v, 0, 9, k)
		b := piVal(v, 9, 9, k)
		d := piVal(v, 18, 9, k)
		e := piVal(v, 27, 9, k)
		op1 := piVal(v, 36, 3, k)
		op2 := piVal(v, 39, 3, k)
		r1, c1, o1 := aluRef(op1, a, b, 9)
		r2, c2, o2 := aluRef(op2, d, e, 9)
		if got := poVal(c, res, 0, 9, k); got != r1 {
			t.Fatalf("vector %d: r1 = %d, want %d", k, got, r1)
		}
		if got := poVal(c, res, 9, 9, k); got != r2 {
			t.Fatalf("vector %d: r2 = %d, want %d", k, got, r2)
		}
		if got := poVal(c, res, 18, 9, k); got != (r1+r2)&0x1FF {
			t.Fatalf("vector %d: cross sum mismatch", k)
		}
		if got := poVal(c, res, 27, 9, k); got != r1^r2 {
			t.Fatalf("vector %d: mix mismatch", k)
		}
		mx := r1
		if r2 > r1 {
			mx = r2
		}
		if got := poVal(c, res, 36, 9, k); got != mx {
			t.Fatalf("vector %d: max mismatch", k)
		}
		z1, n1, p1 := flagsRef(r1, 9)
		z2, n2, p2 := flagsRef(r2, 9)
		crossC := (r1+r2)>>9&1 == 1
		wantF := []bool{c1, o1, c2, o2, crossC, r1 < r2, z1, n1, p1, z2, n2, p2}
		for i, wf := range wantF {
			if got := poBit(c, res, 45+i, k) == 1; got != wf {
				t.Fatalf("vector %d: f%d = %v, want %v", k, i, got, wf)
			}
		}
	}
}

func TestAdderCmp32(t *testing.T) {
	c := MustBuild("c7552")
	v, res := runRandom(t, c, 35, 2048)
	for k := 0; k < v.N; k++ {
		a := piVal(v, 0, 32, k)
		b := piVal(v, 32, 32, k)
		d := piVal(v, 64, 32, k)
		sum := a + b
		if got := poVal(c, res, 0, 32, k); got != sum&0xFFFFFFFF {
			t.Fatalf("vector %d: sum mismatch", k)
		}
		if got := poBit(c, res, 32, k) == 1; got != (sum>>32&1 == 1) {
			t.Fatalf("vector %d: cout mismatch", k)
		}
		if got := poBit(c, res, 33, k) == 1; got != (a < d) {
			t.Fatalf("vector %d: lt mismatch", k)
		}
		if got := poBit(c, res, 34, k) == 1; got != (a == d) {
			t.Fatalf("vector %d: eq mismatch", k)
		}
		if got := poBit(c, res, 35, k) == 1; got != (a > d) {
			t.Fatalf("vector %d: gt mismatch", k)
		}
		for byteIdx := 0; byteIdx < 4; byteIdx++ {
			wantP := bits.OnesCount64(sum>>(byteIdx*8)&0xFF)%2 == 1
			if got := poBit(c, res, 36+byteIdx, k) == 1; got != wantP {
				t.Fatalf("vector %d: parity %d mismatch", k, byteIdx)
			}
		}
	}
}
