package gen

import (
	"fmt"

	"repro/internal/cell"
	"repro/internal/netlist"
)

// Arch selects an adder micro-architecture. The ALS literature's results
// depend heavily on the adder structure (a ripple chain exposes one deep
// critical path; a prefix tree exposes many shallow ones), so the
// generators expose all three for architecture studies.
type Arch uint8

const (
	// Ripple is the linear carry chain: minimal area, O(n) depth.
	Ripple Arch = iota
	// CarrySelect splits the adder into blocks computing both carry
	// hypotheses, halving depth at ~2x block area.
	CarrySelect
	// KoggeStone is the parallel-prefix network: O(log n) depth, the
	// structure timing-driven synthesis emits for wide fast adders.
	KoggeStone
)

// String names the architecture.
func (a Arch) String() string {
	switch a {
	case Ripple:
		return "ripple"
	case CarrySelect:
		return "carry-select"
	case KoggeStone:
		return "kogge-stone"
	}
	return fmt.Sprintf("Arch(%d)", uint8(a))
}

// Arches lists all adder architectures.
func Arches() []Arch { return []Arch{Ripple, CarrySelect, KoggeStone} }

// AdderArch builds an n-bit adder with the selected architecture: inputs
// a and b, outputs s (n+1 bits, carry out as MSB).
func AdderArch(n int, arch Arch) *netlist.Circuit {
	c := netlist.New(fmt.Sprintf("adder%d_%s", n, arch))
	a := inputBus(c, "a", n)
	b := inputBus(c, "b", n)
	var sum []int
	var cout int
	switch arch {
	case Ripple:
		sum, cout = rippleAdd(c, a, b, -1)
	case CarrySelect:
		sum, cout = carrySelectAdd(c, a, b)
	case KoggeStone:
		sum, cout = prefixAdd(c, a, b, -1)
	default:
		panic(fmt.Sprintf("gen: unknown adder architecture %v", arch))
	}
	outputBus(c, "s", append(sum, cout))
	return cleaned(c)
}

// carrySelectAdd implements a carry-select adder with sqrt(n)-ish blocks:
// each block ripples both carry hypotheses and a mux chain picks the real
// one.
func carrySelectAdd(c *netlist.Circuit, a, b []int) (sum []int, cout int) {
	n := len(a)
	block := 4
	for block*block < n {
		block++
	}
	sum = make([]int, n)
	carry := -1 // no carry into block 0
	for lo := 0; lo < n; lo += block {
		hi := lo + block
		if hi > n {
			hi = n
		}
		as, bs := a[lo:hi], b[lo:hi]
		if lo == 0 {
			s, cy := rippleAdd(c, as, bs, -1)
			copy(sum[lo:hi], s)
			carry = cy
			continue
		}
		s0, c0 := rippleAdd(c, as, bs, c.Const0())
		s1, c1 := rippleAdd(c, as, bs, c.Const1())
		sel := muxBus(c, s0, s1, carry)
		copy(sum[lo:hi], sel)
		carry = c.AddGate(cell.Mux2, c0, c1, carry)
	}
	return sum, carry
}
