package sizing

import (
	"testing"

	"repro/internal/cell"
	"repro/internal/netlist"
	"repro/internal/sta"
)

var lib = cell.Default28nm()

// fanoutTree builds a circuit with a heavily loaded spine so upsizing has
// real CPD gains: a chain of ANDs where each stage also fans out to leaf
// inverters feeding POs.
func fanoutTree(depth, leaves int) *netlist.Circuit {
	c := netlist.New("tree")
	a := c.AddInput("a")
	b := c.AddInput("b")
	spine := c.AddGate(cell.And2, a, b)
	for d := 0; d < depth; d++ {
		for l := 0; l < leaves; l++ {
			leaf := c.AddGate(cell.Inv, spine)
			c.AddOutput("y", leaf)
		}
		spine = c.AddGate(cell.And2, spine, b)
	}
	c.AddOutput("z", spine)
	return c
}

func TestPostOptimizeReducesCPDWithHeadroom(t *testing.T) {
	c := fanoutTree(6, 5)
	base, err := sta.Analyze(c, lib)
	if err != nil {
		t.Fatal(err)
	}
	area := c.Area(lib)
	res, err := PostOptimize(c, lib, Options{AreaCon: area * 1.3})
	if err != nil {
		t.Fatal(err)
	}
	if res.Report.CPD >= base.CPD {
		t.Errorf("post-opt must reduce CPD with 30%% headroom: %.2f -> %.2f", base.CPD, res.Report.CPD)
	}
	if res.Area > area*1.3+1e-9 {
		t.Errorf("area %.2f exceeds budget %.2f", res.Area, area*1.3)
	}
	if res.Upsized == 0 {
		t.Error("expected at least one upsize move")
	}
}

func TestPostOptimizeRespectsTightBudget(t *testing.T) {
	c := fanoutTree(4, 3)
	area := c.Area(lib)
	res, err := PostOptimize(c, lib, Options{AreaCon: area}) // zero headroom
	if err != nil {
		t.Fatal(err)
	}
	if res.Area > area+1e-9 {
		t.Errorf("area %.2f exceeds zero-headroom budget %.2f", res.Area, area)
	}
}

func TestPostOptimizeDownsizesWhenOverBudget(t *testing.T) {
	c := fanoutTree(4, 3)
	// Pre-inflate every gate to X4 so the netlist is over an X1-ish
	// budget.
	for id := range c.Gates {
		if !c.Gates[id].Func.IsPseudo() {
			c.Gates[id].Drive = cell.X4
		}
	}
	inflated := c.Area(lib)
	budget := inflated * 0.5
	res, err := PostOptimize(c, lib, Options{AreaCon: budget})
	if err != nil {
		t.Fatal(err)
	}
	if res.Area > budget+1e-9 {
		t.Errorf("area %.2f exceeds budget %.2f after downsizing", res.Area, budget)
	}
	if res.Downsized == 0 {
		t.Error("expected downsize moves when over budget")
	}
}

func TestPostOptimizeDeletesDangling(t *testing.T) {
	c := fanoutTree(3, 2)
	// Dangle a subtree by rewiring the last PO to a constant.
	po := c.POs[len(c.POs)-1]
	c.SetFanin(po, 0, c.Const0())
	res, err := PostOptimize(c, lib, Options{AreaCon: c.Area(lib) * 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.RemovedGates == 0 {
		t.Error("dangling gates must be deleted")
	}
	live := res.Circuit.Live()
	for id := range res.Circuit.Gates {
		if !live[id] {
			t.Fatal("post-opt output still has dangling gates")
		}
	}
	if err := res.Circuit.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestPostOptimizeDoesNotMutateInput(t *testing.T) {
	c := fanoutTree(3, 2)
	drives := make([]cell.Drive, len(c.Gates))
	for id := range c.Gates {
		drives[id] = c.Gates[id].Drive
	}
	n := c.NumGates()
	if _, err := PostOptimize(c, lib, Options{AreaCon: c.Area(lib) * 1.5}); err != nil {
		t.Fatal(err)
	}
	if c.NumGates() != n {
		t.Error("input circuit gate count changed")
	}
	for id := range c.Gates {
		if c.Gates[id].Drive != drives[id] {
			t.Error("input circuit drive changed")
		}
	}
}

func TestMoreHeadroomNeverWorse(t *testing.T) {
	c := fanoutTree(5, 4)
	area := c.Area(lib)
	var prev float64
	for i, ratio := range []float64{1.0, 1.1, 1.2, 1.4} {
		res, err := PostOptimize(c, lib, Options{AreaCon: area * ratio})
		if err != nil {
			t.Fatal(err)
		}
		if i > 0 && res.Report.CPD > prev+1e-9 {
			t.Errorf("CPD at %.1fx budget (%.2f) worse than smaller budget (%.2f)", ratio, res.Report.CPD, prev)
		}
		prev = res.Report.CPD
	}
}

func TestMaxMovesBound(t *testing.T) {
	c := fanoutTree(6, 5)
	res, err := PostOptimize(c, lib, Options{AreaCon: c.Area(lib) * 2, MaxMoves: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.Upsized > 3 {
		t.Errorf("Upsized = %d, exceeds MaxMoves 3", res.Upsized)
	}
}
