// Package sizing implements the paper's step 3, post-optimization: dangling
// gate deletion followed by gate (re)sizing under an area constraint
// Areacon, converting the area freed by approximation into drive-strength
// (and therefore critical-path delay) improvement. It stands in for Design
// Compiler's structure-preserving incremental resize.
//
// The sizer is a greedy slack-driven loop: each pass evaluates, for every
// gate on (or near) the critical path, the true CPD delta of upsizing it
// one drive step — a full re-analysis, because upsizing also loads the
// gate's drivers — and applies the single best feasible move. When the
// netlist exceeds the area budget, high-slack gates are downsized first.
package sizing

import (
	"fmt"
	"sort"

	"repro/internal/cell"
	"repro/internal/netlist"
	"repro/internal/sta"
)

// Options tunes the post-optimization loop.
type Options struct {
	// AreaCon is the area budget in µm² the resized netlist must respect.
	AreaCon float64
	// MaxMoves bounds the number of accepted resize moves; zero means the
	// default of 4 moves per gate.
	MaxMoves int
	// CritMargin widens the candidate set to gates whose path arrival is
	// within this fraction of the CPD (default 0.05).
	CritMargin float64
	// MinGain is the smallest CPD improvement (ps) worth a move
	// (default 0.01).
	MinGain float64
	// MaxCandidates bounds how many critical gates one pass evaluates
	// (worst slack first, default 64) — each evaluation is a full STA.
	MaxCandidates int
}

func (o *Options) defaults(nGates int) {
	if o.MaxMoves <= 0 {
		o.MaxMoves = 4 * nGates
		// Each accepted move costs one STA per candidate; cap the loop so
		// post-optimization stays sub-quadratic on 10k+-gate netlists.
		if o.MaxMoves > 300 {
			o.MaxMoves = 300
		}
	}
	if o.CritMargin <= 0 {
		o.CritMargin = 0.05
	}
	if o.MinGain <= 0 {
		o.MinGain = 0.01
	}
	if o.MaxCandidates <= 0 {
		o.MaxCandidates = 64
	}
}

// Result reports what post-optimization did.
type Result struct {
	// Circuit is the compacted, resized netlist.
	Circuit *netlist.Circuit
	// Report is the final timing analysis.
	Report *sta.Report
	// Area is the final live area.
	Area float64
	// RemovedGates counts dangling gates deleted.
	RemovedGates int
	// Upsized and Downsized count accepted moves.
	Upsized, Downsized int
}

// PostOptimize deletes dangling gates and resizes the remainder under the
// area constraint, returning the final netlist (a new compacted circuit —
// the input is not modified) and its timing.
func PostOptimize(c *netlist.Circuit, lib *cell.Library, opts Options) (*Result, error) {
	opts.defaults(c.NumGates())
	before := c.NumGates()
	nc, _ := c.Compact()
	res := &Result{Circuit: nc, RemovedGates: before - nc.NumGates()}

	rep, err := sta.Analyze(nc, lib)
	if err != nil {
		return nil, fmt.Errorf("sizing: %w", err)
	}
	area := nc.Area(lib)

	// Phase 1: if over budget, recover area by downsizing the gates with
	// the most slack until feasible (accepting CPD degradation — the
	// constraint is hard, as in the paper's Fig. 8 sweep below 1.0×).
	for area > opts.AreaCon {
		id := bestDownsize(nc, lib, rep)
		if id < 0 {
			break // nothing left to shrink
		}
		nc.Gates[id].Drive--
		res.Downsized++
		rep, err = sta.Analyze(nc, lib)
		if err != nil {
			return nil, err
		}
		area = nc.Area(lib)
	}

	// Phase 2: greedy upsizing of critical gates within the remaining
	// headroom, accepting only moves that truly reduce the CPD.
	for moves := 0; moves < opts.MaxMoves; moves++ {
		bestID, bestGain := -1, opts.MinGain
		bestArea := 0.0
		cands := rep.CriticalGates(nc, opts.CritMargin)
		if len(cands) > opts.MaxCandidates {
			// Keep the worst-slack candidates: they bound the CPD.
			sort.Slice(cands, func(i, j int) bool {
				return rep.Slack[cands[i]] < rep.Slack[cands[j]]
			})
			cands = cands[:opts.MaxCandidates]
		}
		for _, id := range cands {
			g := &nc.Gates[id]
			if g.Drive+1 >= cell.NumDrives {
				continue
			}
			dArea := lib.Area(g.Func, g.Drive+1) - lib.Area(g.Func, g.Drive)
			if area+dArea > opts.AreaCon {
				continue
			}
			g.Drive++
			trial, err := sta.Analyze(nc, lib)
			g.Drive--
			if err != nil {
				return nil, err
			}
			if gain := rep.CPD - trial.CPD; gain > bestGain {
				bestID, bestGain, bestArea = id, gain, dArea
			}
		}
		if bestID < 0 {
			break
		}
		nc.Gates[bestID].Drive++
		area += bestArea
		res.Upsized++
		rep, err = sta.Analyze(nc, lib)
		if err != nil {
			return nil, err
		}
	}

	res.Report = rep
	res.Area = area
	return res, nil
}

// bestDownsize picks the live physical gate with the largest positive
// slack that can shrink a drive step, or -1.
func bestDownsize(c *netlist.Circuit, lib *cell.Library, rep *sta.Report) int {
	live := c.Live()
	best, bestSlack := -1, 0.0
	for id := range c.Gates {
		g := &c.Gates[id]
		if !live[id] || g.Func.IsPseudo() || g.Drive == cell.X1 {
			continue
		}
		if s := rep.Slack[id]; best < 0 || s > bestSlack {
			best, bestSlack = id, s
		}
	}
	return best
}
