package als

import (
	"fmt"
	"strings"

	"repro/internal/netlist"
)

// Solution is one point of the delay/error/area trade-off a flow
// explored.
//
// In a final Front every solution is fully post-optimized (dangling-gate
// deletion plus resizing under the session's area constraint), so
// RatioCPD/Area are directly comparable to FlowResult. In a streamed
// EventImproved the solution is the optimizer's raw best-so-far — its
// RatioCPD and Area are upper bounds that post-optimization can only
// improve, exactly like FlowProgress.BestRatioCPD.
type Solution struct {
	// RatioCPD is the solution's critical path delay over CPDori — the
	// paper's headline metric.
	RatioCPD float64
	// Err is the solution's error under the session's metric.
	Err float64
	// Area is the solution's live area in µm².
	Area float64
	// CPD is the absolute critical path delay in ps.
	CPD float64
	// Circuit is the solution netlist: the compacted, resized final
	// netlist for front members, the raw approximation for streamed
	// improvements.
	Circuit *netlist.Circuit
}

// Front is the set of trade-off solutions a session returns: the
// feasible, non-dominated subset of the optimizer's final population
// (capped at the session's top-K), post-optimized and sorted by ascending
// RatioCPD (Err, then Area, break ties). A front always holds at least
// one solution when the flow succeeds; single-solution optimizers (the
// greedy baselines) simply return a front of one.
type Front []Solution

// Best returns the lowest-delay solution (the first, by sort order); ok
// is false on an empty front.
func (f Front) Best() (sol Solution, ok bool) {
	if len(f) == 0 {
		return Solution{}, false
	}
	return f[0], true
}

// Within returns the sub-front whose solutions meet a tighter error
// budget, preserving order. It lets a caller run one session at the
// loosest budget of interest and read off the fronts of every tighter
// budget for free.
func (f Front) Within(errBudget float64) Front {
	var out Front
	for _, s := range f {
		if s.Err <= errBudget {
			out = append(out, s)
		}
	}
	return out
}

// String renders the front as a small fixed-width table (one line per
// solution), for CLIs and examples.
func (f Front) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-4s %-10s %-12s %-10s\n", "#", "Ratio_cpd", "Err", "Area")
	for i, s := range f {
		fmt.Fprintf(&b, "%-4d %-10.4f %-12.5g %-10.2f\n", i, s.RatioCPD, s.Err, s.Area)
	}
	return b.String()
}
