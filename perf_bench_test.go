// Micro-benchmarks for the incremental evaluation subsystem, next to the
// table benches so one `go test -bench=.` shows both the paper metrics
// and the engine's hot-path numbers:
//
//	BenchmarkSimRunFull          — from-scratch sim.Run of one candidate
//	BenchmarkSimRunIncremental   — same candidate through Simulator.Simulate
//	BenchmarkEvaluateBatch       — a population's worth of candidates through
//	                               Evaluator.EvaluateBatch (sim + STA + error
//	                               metrics per candidate)
//	BenchmarkEvaluateBatchShared — same, on a population with the redundancy
//	                               a real generation exhibits (duplicate
//	                               candidates + disjoint-cone changes), with
//	                               the evaluation cache reset per iteration
//
// All use the bench_workload_test.go workload shape (Adder16, 2048
// vectors, LAC-mutated candidates), pinned there so the committed
// benchgate baselines provably measure the same shape.
package als_test

import (
	"math/rand"
	"testing"

	als "repro"
	"repro/internal/core"
	"repro/internal/sim"
)

func BenchmarkSimRunFull(b *testing.B) {
	base := benchBase(b)
	v := sim.Random(rand.New(rand.NewSource(benchWorkloadSeed)), len(base.PIs), benchWorkloadVectors)
	cand := benchCandidates(b, base, 1, benchWorkloadLACs)[0]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sim.Run(cand, v); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSimRunIncremental(b *testing.B) {
	base := benchBase(b)
	v := sim.Random(rand.New(rand.NewSource(benchWorkloadSeed)), len(base.PIs), benchWorkloadVectors)
	cand := benchCandidates(b, base, 1, benchWorkloadLACs)[0]
	s, err := sim.NewSimulator(base, v, nil)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Simulate(cand); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEvaluateBatch(b *testing.B) {
	base := benchBase(b)
	v := sim.Random(rand.New(rand.NewSource(benchWorkloadSeed)), len(base.PIs), benchWorkloadVectors)
	eval, err := core.NewEvaluator(base, als.NewLibrary(), core.MetricNMED, 0.8, v)
	if err != nil {
		b.Fatal(err)
	}
	cands := benchCandidates(b, base, benchWorkloadBatch, benchWorkloadLACs)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eval.EvaluateBatch(cands); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEvaluateBatchShared measures one generation's worth of
// redundant candidates with the cache cold at the start of every
// iteration (BeginGeneration), so the number reflects steady-state
// per-generation reuse — duplicate candidates hitting the whole-candidate
// memo and disjoint-cone candidates composing cached per-change deltas —
// rather than cross-iteration accumulation.
func BenchmarkEvaluateBatchShared(b *testing.B) {
	base := benchBase(b)
	v := sim.Random(rand.New(rand.NewSource(benchWorkloadSeed)), len(base.PIs), benchWorkloadVectors)
	eval, err := core.NewEvaluator(base, als.NewLibrary(), core.MetricNMED, 0.8, v)
	if err != nil {
		b.Fatal(err)
	}
	cands := benchSharedCandidates(b, base, benchWorkloadBatch)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eval.BeginGeneration()
		if _, err := eval.EvaluateBatch(cands); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if st := eval.CacheStats(); st.Hits == 0 || st.Composed == 0 {
		b.Fatalf("shared batch exercised no reuse: %+v", st)
	}
}
