// Micro-benchmarks for the incremental evaluation subsystem, next to the
// table benches so one `go test -bench=.` shows both the paper metrics
// and the engine's hot-path numbers:
//
//	BenchmarkSimRunFull         — from-scratch sim.Run of one candidate
//	BenchmarkSimRunIncremental  — same candidate through Simulator.Simulate
//	BenchmarkEvaluateBatch      — a population's worth of candidates through
//	                              Evaluator.EvaluateBatch (sim + STA + error
//	                              metrics per candidate)
//
// All three use the BenchmarkFlowSingle workload shape: Adder16, 2048
// vectors, LAC-mutated candidates.
package als_test

import (
	"math/rand"
	"testing"

	als "repro"
	"repro/internal/core"
	"repro/internal/netlist"
	"repro/internal/sim"
)

// benchBase returns the constant-materialized Adder16 every candidate
// derives from.
func benchBase(b *testing.B) *netlist.Circuit {
	b.Helper()
	base := als.Benchmark("Adder16").Clone()
	base.Const0()
	base.Const1()
	if err := base.Validate(); err != nil {
		b.Fatal(err)
	}
	return base
}

// benchLAC applies one loop-safe rewire: a random live physical gate's
// consumers switch to a random TFI gate or constant.
func benchLAC(c *netlist.Circuit, rng *rand.Rand) {
	live := c.Live()
	var phys []int
	for id, g := range c.Gates {
		if live[id] && !g.Func.IsPseudo() {
			phys = append(phys, id)
		}
	}
	target := phys[rng.Intn(len(phys))]
	tfi := c.TFI(target)
	var cands []int
	for id := range c.Gates {
		if tfi[id] && id != target && !c.Gates[id].Func.IsPseudo() {
			cands = append(cands, id)
		}
	}
	if len(cands) == 0 {
		c.ReplaceFanin(target, c.Const0())
		return
	}
	c.ReplaceFanin(target, cands[rng.Intn(len(cands))])
}

func benchCandidates(b *testing.B, base *netlist.Circuit, n, lacs int) []*netlist.Circuit {
	b.Helper()
	rng := rand.New(rand.NewSource(1))
	out := make([]*netlist.Circuit, n)
	for i := range out {
		c := base.Clone()
		for k := 0; k < lacs; k++ {
			benchLAC(c, rng)
		}
		out[i] = c
	}
	return out
}

func BenchmarkSimRunFull(b *testing.B) {
	base := benchBase(b)
	v := sim.Random(rand.New(rand.NewSource(1)), len(base.PIs), 2048)
	cand := benchCandidates(b, base, 1, 2)[0]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sim.Run(cand, v); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSimRunIncremental(b *testing.B) {
	base := benchBase(b)
	v := sim.Random(rand.New(rand.NewSource(1)), len(base.PIs), 2048)
	cand := benchCandidates(b, base, 1, 2)[0]
	s, err := sim.NewSimulator(base, v, nil)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Simulate(cand); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEvaluateBatch(b *testing.B) {
	base := benchBase(b)
	v := sim.Random(rand.New(rand.NewSource(1)), len(base.PIs), 2048)
	eval, err := core.NewEvaluator(base, als.NewLibrary(), core.MetricNMED, 0.8, v)
	if err != nil {
		b.Fatal(err)
	}
	cands := benchCandidates(b, base, 16, 2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eval.EvaluateBatch(cands); err != nil {
			b.Fatal(err)
		}
	}
}
